(* The [slif serve] wire protocol, end to end: spawn the daemon on a
   Unix socket, issue one request of every type, and shut it down.

     dune exec examples/client.exe *)

module Client = Slif_server.Client
module Json = Slif_obs.Json

let cli_candidates =
  [ "_build/default/bin/slif_cli.exe"; "../_build/default/bin/slif_cli.exe" ]

let section title = Printf.printf "\n=== %s ===\n" title

let show_response json =
  List.iter
    (fun field ->
      match Json.member field json with
      | Some (Json.String s) when String.contains s '\n' ->
          Printf.printf "%s:\n%s" field s
      | Some v -> Printf.printf "%s: %s\n" field (Json.to_string v)
      | None -> ())
    [ "key"; "design"; "nodes"; "channels"; "output"; "requests"; "errors"; "lru" ]

let request client fields =
  match Client.request client (Json.Obj fields) with
  | Ok json -> show_response json
  | Error msg -> Printf.printf "error: %s\n" msg

let () =
  let cli =
    match List.find_opt Sys.file_exists cli_candidates with
    | Some path -> path
    | None -> (
        prerr_endline "build the CLI first: dune build bin/slif_cli.exe";
        exit 1)
  in
  let sock = Filename.temp_file "slif_client" ".sock" in
  Sys.remove sock;
  let pid =
    Unix.create_process cli
      [| cli; "serve"; "--socket"; sock; "--lru"; "4" |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  let rec wait_sock tries =
    if Sys.file_exists sock then ()
    else if tries = 0 then begin
      prerr_endline "daemon never came up";
      exit 1
    end
    else begin
      Unix.sleepf 0.05;
      wait_sock (tries - 1)
    end
  in
  wait_sock 100;
  let client = Client.connect_unix sock in
  Fun.protect
    ~finally:(fun () ->
      Client.close client;
      ignore (Unix.waitpid [] pid);
      if Sys.file_exists sock then Sys.remove sock)
    (fun () ->
      section "load: annotate the fuzzy controller, get its content key";
      request client [ ("op", Json.String "load"); ("spec", Json.String "fuzzy") ];

      section "estimate with bounds (identical bytes to `slif estimate fuzzy --bounds`)";
      request client
        [ ("op", Json.String "estimate"); ("spec", Json.String "fuzzy");
          ("bounds", Json.Bool true) ];

      section "partition under a deadline";
      request client
        [
          ("op", Json.String "partition");
          ("spec", Json.String "ether");
          ("algo", Json.String "gm");
          ("deadlines", Json.List [ Json.String "txctl=2000" ]);
        ];

      section "a malformed line never kills the connection";
      (match
         Slif_server.Protocol.response_of_line (Client.request_raw client "definitely not json")
       with
      | Error msg -> Printf.printf "rejected as expected: %s\n" msg
      | Ok _ -> print_endline "unexpectedly accepted!");

      section "stats";
      request client [ ("op", Json.String "stats") ];

      section "health: liveness, inflight connections, last error";
      (match Client.request client (Json.Obj [ ("op", Json.String "health") ]) with
      | Ok json ->
          List.iter
            (fun field ->
              match Json.member field json with
              | Some v -> Printf.printf "%s: %s\n" field (Json.to_string v)
              | None -> ())
            [ "uptime_s"; "inflight"; "requests"; "errors"; "lru"; "last_error" ]
      | Error msg -> Printf.printf "error: %s\n" msg);

      section "metrics: Prometheus text exposition (first lines)";
      (match Client.request client (Json.Obj [ ("op", Json.String "metrics") ]) with
      | Ok json -> (
          match Slif_server.Protocol.output_field json with
          | Some text ->
              String.split_on_char '\n' text
              |> List.filteri (fun i _ -> i < 12)
              |> List.iter print_endline;
              print_endline "..."
          | None -> print_endline "no output field")
      | Error msg -> Printf.printf "error: %s\n" msg);

      section "shutdown";
      request client [ ("op", Json.String "shutdown") ])
