(* Format-size comparison (the paper's Results section).

   Builds the SLIF access graph, the ADD/VT-like format and the CDFG for
   each benchmark and prints node/edge counts plus the cost an n-squared
   partitioning algorithm would pay on each, and contrasts SLIF's
   preprocessed size estimation with rough synthesis over the CDFG.

   Run with: dune exec examples/compare_formats.exe *)

let () =
  print_endline "== Format sizes per benchmark ==\n";
  List.iter
    (fun (spec : Specs.Registry.spec) ->
      let design = Vhdl.Parser.parse spec.source in
      let sem = Vhdl.Sem.build design in
      let stats = Slif.Stats.of_slif (Slif.Build.build sem) in
      let add = Addfmt.Add.of_design design in
      let cdfg = Cdfg.Graph.of_design design in
      let table = Slif_util.Table.create ~header:[ "format"; "nodes"; "edges"; "n^2 cost" ] in
      let row name n e =
        Slif_util.Table.add_row table
          [ name; string_of_int n; string_of_int e; string_of_int (n * n) ]
      in
      row "SLIF-AG" stats.Slif.Stats.bv stats.Slif.Stats.channels;
      row "ADD/VT" (Addfmt.Add.node_count add) (Addfmt.Add.edge_count add);
      row "CDFG" (Cdfg.Graph.node_count cdfg) (Cdfg.Graph.edge_count cdfg);
      Printf.printf "--- %s ---\n" spec.spec_name;
      Slif_util.Table.print table;
      print_newline ())
    Specs.Registry.all;

  (* Size-estimation cost: preprocessed lookups vs rough synthesis. *)
  print_endline "== Size estimation: SLIF lookups vs CDFG rough synthesis (fuzzy) ==\n";
  let spec = Specs.Registry.find_exn "fuzzy" in
  let design = Vhdl.Parser.parse spec.source in
  let sem = Vhdl.Sem.build design in
  let slif = Slif.Annotate.run ~techs:Tech.Parts.all sem (Slif.Build.build sem) in
  let s = Specsyn.Alloc.apply slif (Specsyn.Alloc.proc_asic ()) in
  let graph = Slif.Graph.make s in
  let part = Specsyn.Search.seed_partition s in
  let est = Specsyn.Search.estimator graph part in
  let queries = 1000 in
  let t_slif =
    Slif_obs.Clock.time_n queries (fun () ->
        Slif.Estimate.invalidate_all est;
        Slif.Estimate.size est (Slif.Partition.Cproc 0))
  in
  let cdfg = Cdfg.Graph.of_design design in
  let t_synth =
    Slif_obs.Clock.time_n 50 (fun () ->
        Cdfg.Synthest.rough_synthesis Tech.Parts.asic_gal cdfg)
  in
  Printf.printf "SLIF size query:      %.3f us\n" (t_slif *. 1e6);
  Printf.printf "CDFG rough synthesis: %.3f us\n" (t_synth *. 1e6);
  Printf.printf "speedup:              %.0fx\n" (t_synth /. t_slif);
  Printf.printf
    "\nAt 1000 candidate partitions, SLIF answers in %.3f ms; re-synthesis needs %.1f ms.\n"
    (t_slif *. 1e3 *. float_of_int queries)
    (t_synth *. 1e3 *. float_of_int queries)
