(** Named monotonically increasing event counters.

    Names are dotted paths ([estimate.memo_hit],
    [search.partitions_scored]); the registry aggregates across every
    instance of the producing component, so two estimators both feed the
    same [estimate.*] counters. *)

val incr : ?by:int -> string -> unit
(** Add [by] (default 1) to the named counter, creating it at zero
    first.  No-op while the registry is disabled. *)

val add : string -> int -> unit
(** [add name n] = [incr ~by:n name]. *)

type cell
(** A counter cell resolved to the calling domain, padded to its own
    cache lines so bumps never contend with another domain's counters. *)

val cell : string -> cell
(** Resolve (creating if needed) the calling domain's cell for [name].
    The handle stays valid across {!Registry.reset} (cells are zeroed in
    place, never dropped) but belongs to the domain that resolved it:
    a component meant to run on a pool worker must resolve its cells on
    that worker — which the share-nothing per-domain replicas do by
    construction. *)

val bump : ?by:int -> cell -> unit
(** {!incr} through a resolved handle: one branch and one store, no hash
    lookup — what the estimate memo path uses at tens of millions of
    bumps per sweep.  No-op while the registry is disabled. *)

val get : string -> int
(** Current value; 0 for a counter that never fired. *)

val snapshot : unit -> (string * int) list
(** All counters, sorted by name. *)

val snapshot_by_domain : unit -> (int * (string * int) list) list
(** Per-domain unmerged counters, ascending domain id; domains that
    never counted are omitted.  Names sorted within each domain. *)
