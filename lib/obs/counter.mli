(** Named monotonically increasing event counters.

    Names are dotted paths ([estimate.memo_hit],
    [search.partitions_scored]); the registry aggregates across every
    instance of the producing component, so two estimators both feed the
    same [estimate.*] counters. *)

val incr : ?by:int -> string -> unit
(** Add [by] (default 1) to the named counter, creating it at zero
    first.  No-op while the registry is disabled. *)

val add : string -> int -> unit
(** [add name n] = [incr ~by:n name]. *)

val get : string -> int
(** Current value; 0 for a counter that never fired. *)

val snapshot : unit -> (string * int) list
(** All counters, sorted by name. *)

val snapshot_by_domain : unit -> (int * (string * int) list) list
(** Per-domain unmerged counters, ascending domain id; domains that
    never counted are omitted.  Names sorted within each domain. *)
