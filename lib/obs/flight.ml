(* The always-on flight recorder: one fixed-size ring of compact records
   per domain, written on every span and event whether or not the span
   registry is armed.  The black box for the daemon — when a request
   turns out slow or failing *after the fact*, its spans are still in
   the window and can be retained, without paying list allocation or
   the registry's unbounded buffers on the fast path.

   Hot-path cost budget: one atomic load (the [enabled] switch), one
   atomic fetch-and-add per span id, and a handful of array stores into
   the calling domain's ring.  No locks, no allocation (the record is
   spread over parallel arrays), no formatting.

   Readers (the daemon's [dump]/[traces] ops, SIGQUIT dumps) merge the
   rings racily: a live writer may overwrite the oldest slots while a
   snapshot walks them, so a reader can see a torn oldest record.  That
   is the black-box trade — snapshots are for forensics, and the
   records of a completed request are only at risk once the ring has
   wrapped past them. *)

type kind = Span | Event

type record = {
  fr_kind : kind;
  fr_name : string;
  fr_ts_ns : int;  (* absolute monotonic clock, ns *)
  fr_dur_ns : int;
  fr_id : int;  (* span id; 0 for events *)
  fr_parent : int;  (* parent span id; 0 = root *)
  fr_dom : int;
  fr_trace : string;  (* ambient trace id; "" = none *)
}

let default_capacity = 4096
let capacity = Atomic.make default_capacity

(* On by default — the whole point is that the window exists before
   anyone asks for it.  [disable] exists for the telemetry-off ablation
   baseline and for tests that need a quiet ring. *)
let enabled = Atomic.make true

let on () = Atomic.get enabled
let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false

(* One ring per domain, parallel arrays so a record is a few plain
   stores.  [rg_head] counts records ever written; the live window is
   the last [min head cap] slots.  Only the owning domain writes. *)
type ring = {
  rg_dom : int;
  mutable rg_cap : int;
  mutable rg_head : int;
  mutable rg_kinds : Bytes.t;
  mutable rg_names : string array;
  mutable rg_ts : int array;
  mutable rg_durs : int array;
  mutable rg_ids : int array;
  mutable rg_parents : int array;
  mutable rg_traces : string array;
}

let alloc dom cap =
  {
    rg_dom = dom;
    rg_cap = cap;
    rg_head = 0;
    rg_kinds = Bytes.make cap '\000';
    rg_names = Array.make cap "";
    rg_ts = Array.make cap 0;
    rg_durs = Array.make cap 0;
    rg_ids = Array.make cap 0;
    rg_parents = Array.make cap 0;
    rg_traces = Array.make cap "";
  }

(* Same registration discipline as [Registry]: rings live on a global
   list so exporters can merge them, and a ring outlives its domain so
   a joined worker's tail stays readable. *)
let rings_mu = Mutex.create ()
let rings : ring list ref = ref []

let key =
  Domain.DLS.new_key (fun () ->
      let r = alloc (Domain.self () :> int) (Atomic.get capacity) in
      Mutex.lock rings_mu;
      rings := r :: !rings;
      Mutex.unlock rings_mu;
      r)

let ring () = Domain.DLS.get key

let fold_rings f acc =
  Mutex.lock rings_mu;
  let rs = !rings in
  Mutex.unlock rings_mu;
  List.fold_left f acc (List.sort (fun a b -> compare a.rg_dom b.rg_dom) rs)

(* Span ids are process-unique: the dispatch side mints one and the
   executing side (possibly another domain) parents under it, so one
   atomic counter is the simplest id space that cannot collide. *)
let ids = Atomic.make 1

let next_id () = Atomic.fetch_and_add ids 1

let write r kind ~name ~ts_ns ~dur_ns ~id ~parent ~trace =
  let i = r.rg_head mod r.rg_cap in
  Bytes.unsafe_set r.rg_kinds i (if kind = Span then '\000' else '\001');
  r.rg_names.(i) <- name;
  r.rg_ts.(i) <- ts_ns;
  r.rg_durs.(i) <- dur_ns;
  r.rg_ids.(i) <- id;
  r.rg_parents.(i) <- parent;
  r.rg_traces.(i) <- trace;
  r.rg_head <- r.rg_head + 1

let record_span ?(trace = "") ~id ~parent ~name ~t0_ns ~dur_ns () =
  if Atomic.get enabled then
    write (ring ()) Span ~name ~ts_ns:t0_ns ~dur_ns ~id ~parent ~trace

(* Events take their causality from the calling domain's ambient
   context, so [Event.emit] and ad-hoc markers need no plumbing. *)
let record_event ?dur_ns name =
  if Atomic.get enabled then begin
    let trace = Option.value (Registry.current_trace ()) ~default:"" in
    let parent = Registry.current_span () in
    write (ring ()) Event ~name
      ~ts_ns:(Int64.to_int (Clock.now_ns ()))
      ~dur_ns:(Option.value dur_ns ~default:0)
      ~id:0 ~parent ~trace
  end

(* --- Stats ----------------------------------------------------------------- *)

type ring_stat = {
  rs_dom : int;
  rs_capacity : int;
  rs_records : int;  (* ever written *)
  rs_dropped : int;  (* overwritten by the ring wrapping *)
  rs_occupancy : int;  (* live records in the window *)
}

let stat_of r =
  {
    rs_dom = r.rg_dom;
    rs_capacity = r.rg_cap;
    rs_records = r.rg_head;
    rs_dropped = max 0 (r.rg_head - r.rg_cap);
    rs_occupancy = min r.rg_head r.rg_cap;
  }

let ring_stats () = List.rev (fold_rings (fun acc r -> stat_of r :: acc) [])
let records_total () = fold_rings (fun acc r -> acc + r.rg_head) 0
let dropped_total () = fold_rings (fun acc r -> acc + max 0 (r.rg_head - r.rg_cap)) 0

(* --- Reads ----------------------------------------------------------------- *)

let ring_records acc r =
  let head = r.rg_head in
  let lo = max 0 (head - r.rg_cap) in
  let out = ref acc in
  for n = head - 1 downto lo do
    let i = n mod r.rg_cap in
    out :=
      {
        fr_kind = (if Bytes.get r.rg_kinds i = '\000' then Span else Event);
        fr_name = r.rg_names.(i);
        fr_ts_ns = r.rg_ts.(i);
        fr_dur_ns = r.rg_durs.(i);
        fr_id = r.rg_ids.(i);
        fr_parent = r.rg_parents.(i);
        fr_dom = r.rg_dom;
        fr_trace = r.rg_traces.(i);
      }
      :: !out
  done;
  !out

let snapshot () =
  fold_rings ring_records []
  |> List.stable_sort (fun a b -> compare a.fr_ts_ns b.fr_ts_ns)

let by_trace trace = List.filter (fun r -> r.fr_trace = trace) (snapshot ())

(* --- Chrome trace_event export --------------------------------------------- *)

(* The flight window as a Chrome/Perfetto trace: spans are complete
   events on their domain's lane, events are instants.  Timestamps are
   rebased to the window's oldest record so the view opens at zero. *)
let to_chrome () =
  let records = snapshot () in
  let t0 = match records with [] -> 0 | r :: _ -> r.fr_ts_ns in
  let json_of r =
    let args =
      [ ("id", Json.Int r.fr_id); ("parent", Json.Int r.fr_parent) ]
      @ if r.fr_trace = "" then [] else [ ("trace_id", Json.String r.fr_trace) ]
    in
    let base =
      [
        ("name", Json.String r.fr_name);
        ("ts", Json.Float (float_of_int (r.fr_ts_ns - t0) /. 1e3));
        ("pid", Json.Int 1);
        ("tid", Json.Int r.fr_dom);
        ("args", Json.Obj args);
      ]
    in
    match r.fr_kind with
    | Span ->
        Json.Obj
          (base
          @ [
              ("ph", Json.String "X");
              ("dur", Json.Float (float_of_int r.fr_dur_ns /. 1e3));
            ])
    | Event -> Json.Obj (base @ [ ("ph", Json.String "i"); ("s", Json.String "t") ])
  in
  Json.Obj
    [
      ("traceEvents", Json.List (List.map json_of records));
      ("displayTimeUnit", Json.String "ms");
      ("flightRecords", Json.Int (records_total ()));
      ("flightDropped", Json.Int (dropped_total ()));
    ]

(* --- Maintenance ------------------------------------------------------------ *)

(* Resize every ring (new rings pick the capacity up at creation).
   Meant for startup or quiescent points: a concurrent writer could
   race the swap and lose a record, never crash. *)
let set_capacity n =
  if n < 1 then invalid_arg "Flight.set_capacity";
  Atomic.set capacity n;
  fold_rings
    (fun () r ->
      r.rg_cap <- n;
      r.rg_head <- 0;
      r.rg_kinds <- Bytes.make n '\000';
      r.rg_names <- Array.make n "";
      r.rg_ts <- Array.make n 0;
      r.rg_durs <- Array.make n 0;
      r.rg_ids <- Array.make n 0;
      r.rg_parents <- Array.make n 0;
      r.rg_traces <- Array.make n "")
    ()

let reset () =
  fold_rings
    (fun () r ->
      r.rg_head <- 0;
      Array.fill r.rg_names 0 r.rg_cap "";
      Array.fill r.rg_traces 0 r.rg_cap "")
    ()
