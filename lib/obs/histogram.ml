type summary = { count : int; sum : float; min : float; max : float; mean : float }

let observe name v =
  if Registry.on () then begin
    let l = Registry.local () in
    match Hashtbl.find_opt l.Registry.hists name with
    | Some h ->
        h.Registry.h_count <- h.Registry.h_count + 1;
        h.h_sum <- h.h_sum +. v;
        if v < h.h_min then h.h_min <- v;
        if v > h.h_max then h.h_max <- v
    | None ->
        Hashtbl.add l.Registry.hists name
          { Registry.h_count = 1; h_sum = v; h_min = v; h_max = v }
  end

let summary_of (h : Registry.hist) =
  {
    count = h.h_count;
    sum = h.h_sum;
    min = h.h_min;
    max = h.h_max;
    mean = (if h.h_count = 0 then 0.0 else h.h_sum /. float_of_int h.h_count);
  }

let merge a (b : Registry.hist) =
  {
    Registry.h_count = a.Registry.h_count + b.h_count;
    h_sum = a.h_sum +. b.h_sum;
    h_min = Float.min a.h_min b.h_min;
    h_max = Float.max a.h_max b.h_max;
  }

(* Reads merge every domain's observations of the name. *)
let merged_tbl () =
  let merged = Hashtbl.create 64 in
  Registry.fold_locals
    (fun () l ->
      Hashtbl.iter
        (fun name h ->
          match Hashtbl.find_opt merged name with
          | Some acc -> Hashtbl.replace merged name (merge acc h)
          | None ->
              Hashtbl.add merged name
                { Registry.h_count = h.Registry.h_count; h_sum = h.h_sum;
                  h_min = h.h_min; h_max = h.h_max })
        l.Registry.hists)
    ();
  merged

let summary name = Option.map summary_of (Hashtbl.find_opt (merged_tbl ()) name)

let snapshot () =
  Hashtbl.fold (fun name h acc -> (name, summary_of h) :: acc) (merged_tbl ()) []
  |> List.sort compare
