type summary = { count : int; sum : float; min : float; max : float; mean : float }

let observe name v =
  if Registry.on () then
    match Hashtbl.find_opt Registry.hists name with
    | Some h ->
        h.Registry.h_count <- h.Registry.h_count + 1;
        h.h_sum <- h.h_sum +. v;
        if v < h.h_min then h.h_min <- v;
        if v > h.h_max then h.h_max <- v
    | None ->
        Hashtbl.add Registry.hists name
          { Registry.h_count = 1; h_sum = v; h_min = v; h_max = v }

let summary_of (h : Registry.hist) =
  {
    count = h.h_count;
    sum = h.h_sum;
    min = h.h_min;
    max = h.h_max;
    mean = (if h.h_count = 0 then 0.0 else h.h_sum /. float_of_int h.h_count);
  }

let summary name = Option.map summary_of (Hashtbl.find_opt Registry.hists name)

let snapshot () =
  Hashtbl.fold (fun name h acc -> (name, summary_of h) :: acc) Registry.hists []
  |> List.sort compare
