type summary = { count : int; sum : float; min : float; max : float; mean : float }

type quantiles = {
  q_count : int;
  q_p50 : float;
  q_p90 : float;
  q_p99 : float;
  q_max : float;
}

(* --- Log-bucket geometry ---------------------------------------------------

   Observations land in geometrically spaced buckets: bucket [i] covers
   [gamma^(i-offset-1), gamma^(i-offset)).  gamma = 1.15 gives ~16.5
   buckets per decade, so a quantile read back from a bucket midpoint is
   within ~7% of the true value; 256 buckets span ~1.5e-5 .. 4e11, which
   in microseconds covers nanosecond probes up to multi-day runs. *)

let gamma = 1.15
let log_gamma = log gamma
let n_buckets = 256
let bucket_offset = 64

let bucket_of v =
  if not (Float.is_finite v) || v <= 0.0 then 0
  else
    let i = bucket_offset + 1 + int_of_float (Float.floor (log v /. log_gamma)) in
    if i < 0 then 0 else if i >= n_buckets then n_buckets - 1 else i

(* Geometric midpoint of the bucket: the representative value quantile
   estimation reports. *)
let bucket_value i = Float.exp (log_gamma *. (float_of_int (i - bucket_offset) -. 0.5))

(* The observation count at or below which the q-quantile sits. *)
let rank_of q count =
  let r = int_of_float (Float.ceil (q *. float_of_int count)) in
  if r < 1 then 1 else if r > count then count else r

let quantile_of_buckets ~count ~max_seen buckets q =
  if count = 0 then nan
  else begin
    let rank = rank_of q count in
    let cum = ref 0 and result = ref max_seen in
    (try
       for i = 0 to n_buckets - 1 do
         cum := !cum + buckets.(i);
         if !cum >= rank then begin
           result := bucket_value i;
           raise Exit
         end
       done
     with Exit -> ());
    (* Never report past the true extreme of the distribution. *)
    Float.min !result max_seen
  end

let quantiles_of_buckets ~count ~max_seen buckets =
  let q x = quantile_of_buckets ~count ~max_seen buckets x in
  { q_count = count; q_p50 = q 0.5; q_p90 = q 0.9; q_p99 = q 0.99; q_max = max_seen }

(* --- Registry-named histograms -------------------------------------------- *)

let observe name v =
  if Registry.on () then begin
    let l = Registry.local () in
    match Hashtbl.find_opt l.Registry.hists name with
    | Some h ->
        h.Registry.h_count <- h.Registry.h_count + 1;
        h.h_sum <- h.h_sum +. v;
        if v < h.h_min then h.h_min <- v;
        if v > h.h_max then h.h_max <- v;
        let b = bucket_of v in
        h.h_buckets.(b) <- h.h_buckets.(b) + 1
    | None ->
        let buckets = Array.make n_buckets 0 in
        buckets.(bucket_of v) <- 1;
        Hashtbl.add l.Registry.hists name
          { Registry.h_count = 1; h_sum = v; h_min = v; h_max = v; h_buckets = buckets }
  end

let summary_of (h : Registry.hist) =
  {
    count = h.h_count;
    sum = h.h_sum;
    min = h.h_min;
    max = h.h_max;
    mean = (if h.h_count = 0 then 0.0 else h.h_sum /. float_of_int h.h_count);
  }

let merge a (b : Registry.hist) =
  {
    Registry.h_count = a.Registry.h_count + b.h_count;
    h_sum = a.h_sum +. b.h_sum;
    h_min = Float.min a.h_min b.h_min;
    h_max = Float.max a.h_max b.h_max;
    h_buckets = Array.map2 ( + ) a.h_buckets b.h_buckets;
  }

(* Reads merge every domain's observations of the name. *)
let merged_tbl () =
  let merged = Hashtbl.create 64 in
  Registry.fold_locals
    (fun () l ->
      Hashtbl.iter
        (fun name h ->
          match Hashtbl.find_opt merged name with
          | Some acc -> Hashtbl.replace merged name (merge acc h)
          | None ->
              Hashtbl.add merged name
                { Registry.h_count = h.Registry.h_count; h_sum = h.h_sum;
                  h_min = h.h_min; h_max = h.h_max;
                  h_buckets = Array.copy h.h_buckets })
        l.Registry.hists)
    ();
  merged

let summary name = Option.map summary_of (Hashtbl.find_opt (merged_tbl ()) name)

let quantiles name =
  Option.map
    (fun (h : Registry.hist) ->
      quantiles_of_buckets ~count:h.h_count ~max_seen:h.h_max h.h_buckets)
    (Hashtbl.find_opt (merged_tbl ()) name)

let snapshot () =
  Hashtbl.fold (fun name h acc -> (name, summary_of h) :: acc) (merged_tbl ()) []
  |> List.sort compare

let snapshot_quantiles () =
  Hashtbl.fold
    (fun name (h : Registry.hist) acc ->
      (name, quantiles_of_buckets ~count:h.h_count ~max_seen:h.h_max h.h_buckets) :: acc)
    (merged_tbl ()) []
  |> List.sort compare

(* One merged read feeding both views, so the pairs cannot drift under
   concurrent observation. *)
let snapshot_full () =
  Hashtbl.fold
    (fun name (h : Registry.hist) acc ->
      ( name,
        summary_of h,
        quantiles_of_buckets ~count:h.h_count ~max_seen:h.h_max h.h_buckets )
      :: acc)
    (merged_tbl ()) []
  |> List.sort compare

(* --- Standalone log-bucket histogram --------------------------------------

   Same geometry, no registry: always-on server telemetry records into
   these regardless of the master switch. *)

type t = {
  mutable t_count : int;
  mutable t_sum : float;
  mutable t_min : float;
  mutable t_max : float;
  t_buckets : int array;
}

let create () =
  {
    t_count = 0;
    t_sum = 0.0;
    t_min = Float.infinity;
    t_max = Float.neg_infinity;
    t_buckets = Array.make n_buckets 0;
  }

let record t v =
  t.t_count <- t.t_count + 1;
  t.t_sum <- t.t_sum +. v;
  if v < t.t_min then t.t_min <- v;
  if v > t.t_max then t.t_max <- v;
  let b = bucket_of v in
  t.t_buckets.(b) <- t.t_buckets.(b) + 1

let count t = t.t_count
let sum t = t.t_sum

let clear t =
  t.t_count <- 0;
  t.t_sum <- 0.0;
  t.t_min <- Float.infinity;
  t.t_max <- Float.neg_infinity;
  Array.fill t.t_buckets 0 n_buckets 0

let stats t =
  {
    count = t.t_count;
    sum = t.t_sum;
    min = t.t_min;
    max = t.t_max;
    mean = (if t.t_count = 0 then 0.0 else t.t_sum /. float_of_int t.t_count);
  }

let quantile t q =
  quantile_of_buckets ~count:t.t_count ~max_seen:t.t_max t.t_buckets q

let quantile_summary t =
  quantiles_of_buckets ~count:t.t_count ~max_seen:t.t_max t.t_buckets

(* --- Sliding window --------------------------------------------------------

   A ring of the most recent observations; quantiles over it are exact
   (sort of at most [capacity] floats at read time), so "recent p99"
   reflects what the daemon is doing now, not its lifetime average. *)

type window = { w_ring : float array; mutable w_next : int; mutable w_seen : int }

let default_window_capacity = 512

let window ?(capacity = default_window_capacity) () =
  if capacity < 1 then invalid_arg "Histogram.window: capacity must be at least 1";
  { w_ring = Array.make capacity 0.0; w_next = 0; w_seen = 0 }

let window_record w v =
  w.w_ring.(w.w_next) <- v;
  w.w_next <- (w.w_next + 1) mod Array.length w.w_ring;
  w.w_seen <- w.w_seen + 1

let window_size w = min w.w_seen (Array.length w.w_ring)

let window_quantiles w =
  let n = window_size w in
  if n = 0 then None
  else begin
    let sorted = Array.sub w.w_ring 0 n in
    Array.sort compare sorted;
    let at q = sorted.(rank_of q n - 1) in
    Some { q_count = n; q_p50 = at 0.5; q_p90 = at 0.9; q_p99 = at 0.99; q_max = sorted.(n - 1) }
  end
