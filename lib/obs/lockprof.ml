let enabled = Atomic.make false

type t = {
  name : string;
  category : Attribution.category;
  mu : Mutex.t;
  wait : Histogram.t;
  hold : Histogram.t;
  mutable acquisitions : int;
  mutable contended : int;
  (* Acquisition timestamp of the current holder; [nan] when the holder
     was not profiled (so a disable between lock and unlock never records
     a bogus hold).  Only ever written while the mutex is held. *)
  mutable acquired_at : float;
}

let locks_mu = Mutex.create ()
let locks : t list ref = ref []

let create ?(category = Attribution.Lock_wait) name =
  let t =
    {
      name;
      category;
      mu = Mutex.create ();
      wait = Histogram.create ();
      hold = Histogram.create ();
      acquisitions = 0;
      contended = 0;
      acquired_at = Float.nan;
    }
  in
  Mutex.lock locks_mu;
  locks := t :: !locks;
  Mutex.unlock locks_mu;
  t

let name t = t.name
let mutex t = t.mu

let set_enabled b = Atomic.set enabled b
let on () = Atomic.get enabled

(* The stat cells are only ever mutated by the thread currently holding
   [t.mu]: the wait is recorded right after acquisition, the hold right
   before release.  The profiling therefore needs no lock of its own. *)
let lock t =
  if not (Atomic.get enabled) then Mutex.lock t.mu
  else if Mutex.try_lock t.mu then begin
    t.acquisitions <- t.acquisitions + 1;
    Histogram.record t.wait 0.0;
    t.acquired_at <- Clock.now_us ()
  end
  else begin
    let t0 = Clock.now_us () in
    Mutex.lock t.mu;
    let t1 = Clock.now_us () in
    let waited = t1 -. t0 in
    t.acquisitions <- t.acquisitions + 1;
    t.contended <- t.contended + 1;
    Histogram.record t.wait waited;
    Attribution.add t.category waited;
    t.acquired_at <- t1
  end

let unlock t =
  if Atomic.get enabled && Float.is_finite t.acquired_at then
    Histogram.record t.hold (Clock.now_us () -. t.acquired_at);
  t.acquired_at <- Float.nan;
  Mutex.unlock t.mu

(* Close the hold segment before parking, reopen it on wake: blocked
   time belongs to the wait's category (idle by default), never to the
   hold histogram. *)
let wait ?(category = Attribution.Idle) t cond =
  if not (Atomic.get enabled) then Condition.wait cond t.mu
  else begin
    let t0 = Clock.now_us () in
    if Float.is_finite t.acquired_at then Histogram.record t.hold (t0 -. t.acquired_at);
    t.acquired_at <- Float.nan;
    Condition.wait cond t.mu;
    let t1 = Clock.now_us () in
    Attribution.add category (t1 -. t0);
    if Atomic.get enabled then t.acquired_at <- t1
  end

let with_lock t f =
  lock t;
  match f () with
  | v ->
      unlock t;
      v
  | exception e ->
      unlock t;
      raise e

type stat = {
  s_name : string;
  acquisitions : int;
  contended : int;
  wait_us : Histogram.summary;
  wait_quantiles : Histogram.quantiles;
  hold_us : Histogram.summary;
  hold_quantiles : Histogram.quantiles;
}

let stats t =
  {
    s_name = t.name;
    acquisitions = t.acquisitions;
    contended = t.contended;
    wait_us = Histogram.stats t.wait;
    wait_quantiles = Histogram.quantile_summary t.wait;
    hold_us = Histogram.stats t.hold;
    hold_quantiles = Histogram.quantile_summary t.hold;
  }

let all () =
  Mutex.lock locks_mu;
  let ls = !locks in
  Mutex.unlock locks_mu;
  List.map stats ls |> List.sort (fun a b -> compare a.s_name b.s_name)

let reset () =
  Mutex.lock locks_mu;
  let ls = !locks in
  Mutex.unlock locks_mu;
  List.iter
    (fun (t : t) ->
      t.acquisitions <- 0;
      t.contended <- 0;
      Histogram.clear t.wait;
      Histogram.clear t.hold)
    ls
