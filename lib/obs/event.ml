type level = Debug | Info | Warn | Error

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" -> Some Warn
  | "error" -> Some Error
  | _ -> None

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

(* One sink per process.  [emit] can be called from several domains (the
   daemon's select loop plus test harnesses), so the channel and the
   sampling counter sit behind one mutex; the no-sink fast path is a
   single atomic load. *)
let active = Atomic.make false
let mu = Mutex.create ()
let sink : out_channel option ref = ref None
let owns_sink = ref false
let min_level = ref Info
let sample_every = ref 1
let sample_tick = ref 0
let emitted_count = ref 0
let sampled_out_count = ref 0

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let close_log () =
  locked (fun () ->
      (match !sink with
      | Some oc when !owns_sink -> close_out_noerr oc
      | Some oc -> ( try flush oc with Sys_error _ -> ())
      | None -> ());
      sink := None;
      owns_sink := false;
      Atomic.set active false)

let set_channel oc =
  locked (fun () ->
      sink := Some oc;
      owns_sink := false;
      Atomic.set active true)

let open_log path =
  close_log ();
  let oc = open_out path in
  locked (fun () ->
      sink := Some oc;
      owns_sink := true;
      (* Fresh log, fresh accounting. *)
      emitted_count := 0;
      sampled_out_count := 0;
      sample_tick := 0;
      Atomic.set active true)

let set_level l = locked (fun () -> min_level := l)

let set_sample n =
  if n < 1 then invalid_arg "Event.set_sample: keep-1-in-n needs n >= 1";
  locked (fun () ->
      sample_every := n;
      sample_tick := 0)

let emitted () = locked (fun () -> !emitted_count)
let sampled_out () = locked (fun () -> !sampled_out_count)

let emit ?(level = Info) ?(fields = []) name =
  (* The flight recorder sees every event whether or not a log sink is
     open — black-box instants are not conditional on --events. *)
  Flight.record_event name;
  if Atomic.get active then begin
    (* Trace id and domain come from the calling domain's cell, outside
       the lock. *)
    let trace = Registry.current_trace () in
    let dom = (Domain.self () :> int) in
    let ts_us = Clock.now_us () in
    locked (fun () ->
        match !sink with
        | None -> ()
        | Some oc ->
            if severity level >= severity !min_level then begin
              (* Warn and Error always land; Debug/Info are kept 1-in-N
                 under --sample so a hot daemon can keep the log on
                 without drowning in it.  Counter-based, so the kept set
                 is deterministic. *)
              let keep =
                if severity level >= severity Warn || !sample_every = 1 then true
                else begin
                  sample_tick := !sample_tick + 1;
                  if !sample_tick >= !sample_every then begin
                    sample_tick := 0;
                    true
                  end
                  else false
                end
              in
              if keep then begin
                let base =
                  [
                    ("ts_us", Json.Float ts_us);
                    ("level", Json.String (level_to_string level));
                    ("event", Json.String name);
                    ("dom", Json.Int dom);
                  ]
                in
                let base =
                  match trace with
                  | Some id -> base @ [ ("trace_id", Json.String id) ]
                  | None -> base
                in
                (try
                   Json.to_channel oc (Json.Obj (base @ fields));
                   output_char oc '\n';
                   flush oc
                 with Sys_error _ -> ());
                emitted_count := !emitted_count + 1
              end
              else sampled_out_count := !sampled_out_count + 1
            end)
  end
