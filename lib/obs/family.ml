type t = {
  f_name : string;
  f_label : string;
  mu : Mutex.t;
  series : (string, int ref) Hashtbl.t;
}

let registry_mu = Mutex.create ()
let registry : (string, t) Hashtbl.t = Hashtbl.create 16

let create name ~label =
  Mutex.lock registry_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_mu)
    (fun () ->
      match Hashtbl.find_opt registry name with
      | Some t ->
          if t.f_label <> label then
            invalid_arg
              (Printf.sprintf
                 "Family.create: %S already registered with label %S (asked for %S)"
                 name t.f_label label);
          t
      | None ->
          let t =
            { f_name = name; f_label = label; mu = Mutex.create (); series = Hashtbl.create 8 }
          in
          Hashtbl.add registry name t;
          t)

let name t = t.f_name
let label t = t.f_label

let incr ?(by = 1) t v =
  Mutex.lock t.mu;
  (match Hashtbl.find_opt t.series v with
  | Some cell -> cell := !cell + by
  | None -> Hashtbl.add t.series v (ref by));
  Mutex.unlock t.mu

let get t v =
  Mutex.lock t.mu;
  let r = match Hashtbl.find_opt t.series v with Some cell -> !cell | None -> 0 in
  Mutex.unlock t.mu;
  r

let snapshot t =
  Mutex.lock t.mu;
  let items = Hashtbl.fold (fun k cell acc -> (k, !cell) :: acc) t.series [] in
  Mutex.unlock t.mu;
  List.sort compare items

let total t = List.fold_left (fun acc (_, v) -> acc + v) 0 (snapshot t)

let all () =
  Mutex.lock registry_mu;
  let fams = Hashtbl.fold (fun _ t acc -> t :: acc) registry [] in
  Mutex.unlock registry_mu;
  List.sort (fun a b -> compare a.f_name b.f_name) fams

let reset () =
  List.iter
    (fun t ->
      Mutex.lock t.mu;
      Hashtbl.iter (fun _ cell -> cell := 0) t.series;
      Mutex.unlock t.mu)
    (all ())
