(** Per-domain GC pressure and runtime/GC pause-time profiling.

    Two independent layers:

    {b Counters} — {!sample} snapshots [Gc.quick_stat] for the calling
    domain and folds the delta since its previous sample into a
    per-domain cell (minor/major collections, minor/promoted/major
    words, compactions).  [quick_stat] reads the domain's own counters
    without stopping the world, so sampling at task boundaries costs
    well under a microsecond; the pool does it after every task and the
    daemon at every telemetry scrape, which is what puts live GC
    pressure in [slif stats --watch].  The first sample of a domain only
    pins its baseline.

    {b Pause timing} — OCaml gives no "time spent in GC" counter, but
    the runtime ships {!Runtime_events}: a per-domain ring buffer of
    timestamped begin/end events for every runtime phase (minor
    collection, major slices, ...).  {!start_timing} turns the ring on
    and {!poll} drains it, accumulating the time under top-level runtime
    phases per {e ring} domain index.  Ring indices are runtime slots
    (reused across domain lifetimes), not [Domain.self] ids, so pause
    time is reported process-wide and per-ring, never per-[Domain.self];
    {!Attribution.report} spreads it over domains proportionally to
    their task time.  The ring file lives in [Filename.temp_dir_name]
    (unless [OCAML_RUNTIME_EVENTS_DIR] is already set) and the runtime
    unlinks it at exit. *)

type counts = {
  minor_collections : int;
  major_collections : int;
  compactions : int;
  forced_major_collections : int;
  minor_words : float;  (** words allocated on minor heaps *)
  promoted_words : float;
  major_words : float;  (** words allocated directly on the major heap, plus promotions *)
}

val zero_counts : counts

val sample : unit -> unit
(** Fold the calling domain's [Gc.quick_stat] delta into its cell (the
    first call pins the baseline).  Always on — cheap enough that task
    boundaries and telemetry scrapes call it unconditionally. *)

val counts : unit -> counts
(** Accumulated deltas merged across every sampled domain. *)

val per_domain : unit -> (int * counts) list
(** Per-domain accumulated deltas, ascending [Domain.self] id. *)

val heap_words : unit -> int
(** Current major-heap size of the process ([Gc.quick_stat]), a gauge. *)

val reset : unit -> unit
(** Zero the accumulated deltas and the pause-time totals.  Baselines
    are kept, so the next {!sample} measures from now. *)

(** {2 Pause timing (runtime_events)} *)

val start_timing : unit -> bool
(** Start the runtime-events ring and the in-process cursor.  Idempotent;
    [false] when the runtime refuses (already started elsewhere with an
    incompatible configuration, or the ring file cannot be created) — in
    that case pause time simply reads 0 and the counter layer still
    works. *)

val timing_on : unit -> bool

val poll : unit -> unit
(** Drain pending runtime events into the accumulated pause totals.
    Call at region boundaries (end of a sweep); a no-op when timing is
    off. *)

val gc_time_us : unit -> float
(** Total time under runtime phases since the last {!reset}, across all
    ring domains.  Requires {!poll} to be current. *)

val gc_time_by_ring : unit -> (int * float) list
(** Pause time per runtime ring index (slot, not [Domain.self]). *)

val lost_events : unit -> int
(** Ring-overflow drops reported by the consumer — nonzero means the
    pause totals undercount. *)
