(** Minimal JSON tree, printer and parser.

    The exporters ({!Trace}, {!Metrics}) need to emit strictly valid JSON
    and the test suite needs to check the emitted files parse back; the
    sealed image has no JSON library, so this is a small self-contained
    implementation.  Floats that are not finite print as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit

val to_string : t -> string

val to_channel : out_channel -> t -> unit

val write_file : string -> t -> unit
(** Serialize to [path] followed by a trailing newline. *)

val parse : string -> (t, string) result
(** Strict recursive-descent parser (objects, arrays, strings with
    escapes, numbers, [true]/[false]/[null]); used by the tests to
    validate exported files. *)

val member : string -> t -> t option
(** [member key (Obj _)] looks up [key]; [None] on any other
    constructor. *)
