(** Process-global observability state.

    One registry per process: a master switch, the counter and histogram
    tables, and the span-event buffer.  Everything the instrumented hot
    paths do funnels through {!on}, so a disabled registry costs exactly
    one [bool] load and branch per probe (target: <5% overhead on
    [bench/main.ml]; measured in its A6 section). *)

val on : unit -> bool
(** True when recording is enabled.  Every probe in {!Counter},
    {!Histogram} and {!Span} checks this first and is a no-op when it is
    false. *)

val enable : unit -> unit
(** Turn recording on.  The first call pins the trace epoch (timestamp
    zero for exported spans). *)

val disable : unit -> unit
(** Turn recording off; accumulated data is kept for export. *)

val reset : unit -> unit
(** Drop all counters, histograms and span events and re-pin the epoch.
    Does not change the enabled flag. *)

(** {2 Internal surface used by the sibling modules} *)

type span_event = {
  ev_name : string;
  ev_ts_ns : int64;  (** start, relative to the epoch *)
  ev_dur_ns : int64;
  ev_depth : int;  (** nesting depth at entry; 0 = top level *)
  ev_args : (string * string) list;
}

val epoch_ns : unit -> int64

val counters : (string, int ref) Hashtbl.t

type hist = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

val hists : (string, hist) Hashtbl.t

val depth : int ref
(** Current span nesting depth (maintained by {!Span.with_}). *)

val push_event : span_event -> unit
(** Append a completed span, dropping it (and counting the drop) past
    {!set_max_events}. *)

val all_events : unit -> span_event list
(** Completed spans in completion order. *)

val dropped_events : unit -> int

val set_max_events : int -> unit
(** Cap the span buffer (default 200_000 events) so a runaway annealing
    trace cannot exhaust memory. *)
