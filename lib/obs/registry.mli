(** Process-global observability state, domain-safe.

    One registry per process: a master switch and, per domain that ever
    probed, a private cell of counter/histogram tables, a span-event
    buffer and the span nesting depth.  Probes touch only their own
    domain's cell (reached through [Domain.DLS], never a lock), so the
    instrumented hot paths stay race-free when they run inside a
    {!Slif_util.Pool} worker; exporters merge the cells at read time.
    Everything funnels through {!on} first, so a disabled registry costs
    exactly one atomic [bool] load and branch per probe (target: <5%
    overhead on [bench/main.ml]; measured in its A6 section).

    Merge semantics: counters sum across domains; histograms combine
    count/sum/min/max; span events interleave (the trace export orders
    them by timestamp and tags each with its domain id).  A domain's cell
    outlives the domain, so the data of joined pool workers survives
    until export.  {!enable}, {!disable}, {!reset} and the exporters are
    meant to be called from quiescent points (no concurrent probes), as
    the CLI and bench drivers do. *)

val on : unit -> bool
(** True when recording is enabled.  Every probe in {!Counter},
    {!Histogram} and {!Span} checks this first and is a no-op when it is
    false. *)

val enable : unit -> unit
(** Turn recording on.  The first call pins the trace epoch (timestamp
    zero for exported spans). *)

val disable : unit -> unit
(** Turn recording off; accumulated data is kept for export. *)

val reset : unit -> unit
(** Zero every domain's counters, histograms and span events and re-pin
    the epoch.  Does not change the enabled flag. *)

(** {2 Internal surface used by the sibling modules} *)

type span_event = {
  ev_name : string;
  ev_ts_ns : int64;  (** start, relative to the epoch *)
  ev_dur_ns : int64;
  ev_depth : int;  (** nesting depth at entry in its domain; 0 = top level *)
  ev_dom : int;  (** id of the domain that recorded the span *)
  ev_args : (string * string) list;
}

val epoch_ns : unit -> int64

type hist = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : int array;
      (** log-spaced observation counts; the geometry (base, offset,
          width) is owned by {!Histogram} *)
}

type counter_sample = {
  sa_name : string;
  sa_ts_ns : int64;  (** relative to the epoch, like span timestamps *)
  sa_value : float;
  sa_dom : int;  (** domain that took the sample *)
}

val cell_words : int
(** Size of a padded counter cell in words.  The live value sits in slot
    0; the rest is padding so a cell owns its cache lines outright and a
    domain bumping its counter never invalidates a line another domain's
    counter lives on (the false-sharing fix the scaling work needed). *)

val new_cell : unit -> int array
(** A fresh zeroed padded cell. *)

type local = {
  dom : int;  (** [Domain.self] of the owning domain *)
  counters : (string, int array) Hashtbl.t;
      (** padded cells ({!cell_words} words, value in slot 0); zeroed in
          place by {!reset} so resolved {!Counter.cell} handles survive *)
  hists : (string, hist) Hashtbl.t;
  mutable events : span_event list;  (** newest first *)
  mutable n_events : int;
  mutable dropped : int;
  mutable samples : counter_sample list;  (** newest first *)
  mutable n_samples : int;
  mutable depth : int;  (** span nesting depth (maintained by {!Span.with_}) *)
  mutable trace : string option;  (** ambient request trace id, if any *)
  mutable span : int;
      (** innermost open span id (minted by {!Flight.next_id}, maintained
          by {!Span.with_}); 0 = none.  Children parent under it, and
          {!with_causality} carries it across domain hops. *)
}

val local : unit -> local
(** The calling domain's cell, created (and registered for export) on
    first use. *)

val fold_locals : ('a -> local -> 'a) -> 'a -> 'a
(** Fold over every domain's cell in ascending domain-id order — how the
    exporters merge.  Takes the registration lock only to snapshot the
    cell list. *)

val depth : unit -> int
(** Current span nesting depth of the calling domain. *)

val set_trace : string option -> unit
(** Set (or clear) the calling domain's ambient trace id.  Spans opened
    while it is set carry a [trace_id] arg, and {!Event.emit} tags its
    lines with it.  Works whether or not recording is enabled. *)

val current_trace : unit -> string option

val with_trace : string -> (unit -> 'a) -> 'a
(** Run [f] with the trace id set, restoring the previous id afterwards
    (even on raise). *)

val current_span : unit -> int
(** The calling domain's innermost open span id (0 = none).  Like
    {!current_trace}, live whether or not recording is enabled — the
    always-on flight recorder is its main consumer. *)

val with_causality : ?trace:string -> ?parent:int -> (unit -> 'a) -> 'a
(** Run [f] with the ambient trace id and/or parent span id set,
    restoring both afterwards (even on raise).  This is how request
    causality crosses a domain hop: the dispatching side captures
    {!current_trace}/{!current_span}, the executing side re-enters them
    here, and every span or event recorded inside parents correctly. *)

val push_event : local -> span_event -> unit
(** Append a completed span to the domain's buffer, dropping it (and
    counting the drop) past {!set_max_events}. *)

val all_events : unit -> span_event list
(** Completed spans, per-domain completion order, domains in ascending
    id order. *)

val dropped_events : unit -> int
(** Total drops across all domains. *)

val sample : string -> float -> unit
(** Record a timestamped gauge sample in the calling domain's cell —
    the trace export turns each name into a Perfetto counter track
    ([ph:"C"]).  No-op while disabled; bounded by {!set_max_events}
    (excess samples count as drops). *)

val all_samples : unit -> counter_sample list
(** All gauge samples, per-domain chronological order, domains in
    ascending id order. *)

val set_max_events : int -> unit
(** Cap each domain's span buffer (default 200_000 events) so a runaway
    annealing trace cannot exhaust memory. *)
