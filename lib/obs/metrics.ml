let hist_json (s : Histogram.summary) (q : Histogram.quantiles) =
  Json.Obj
    [
      ("count", Json.Int s.count);
      ("sum", Json.Float s.sum);
      ("min", Json.Float s.min);
      ("max", Json.Float s.max);
      ("mean", Json.Float s.mean);
      ("p50", Json.Float q.q_p50);
      ("p90", Json.Float q.q_p90);
      ("p99", Json.Float q.q_p99);
    ]

let to_json () =
  Json.Obj
    [
      ( "counters",
        Json.Obj (List.map (fun (name, v) -> (name, Json.Int v)) (Counter.snapshot ())) );
      ( "histograms",
        Json.Obj
          (List.map (fun (name, s, q) -> (name, hist_json s q)) (Histogram.snapshot_full ())) );
      ("dropped_span_events", Json.Int (Registry.dropped_events ()));
    ]

let write_file path = Json.write_file path (to_json ())

let write_jsonl path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun (name, v) ->
          Json.to_channel oc
            (Json.Obj
               [
                 ("type", Json.String "counter");
                 ("name", Json.String name);
                 ("value", Json.Int v);
               ]);
          output_char oc '\n')
        (Counter.snapshot ());
      List.iter
        (fun (name, (s : Histogram.summary), (q : Histogram.quantiles)) ->
          Json.to_channel oc
            (Json.Obj
               [
                 ("type", Json.String "histogram");
                 ("name", Json.String name);
                 ("count", Json.Int s.count);
                 ("sum", Json.Float s.sum);
                 ("min", Json.Float s.min);
                 ("max", Json.Float s.max);
                 ("mean", Json.Float s.mean);
                 ("p50", Json.Float q.q_p50);
                 ("p90", Json.Float q.q_p90);
                 ("p99", Json.Float q.q_p99);
               ]);
          output_char oc '\n')
        (Histogram.snapshot_full ()))

let summary_string () =
  let counters = Counter.snapshot () in
  let hists = Histogram.snapshot_full () in
  if counters = [] && hists = [] then ""
  else begin
    let buf = Buffer.create 512 in
    if counters <> [] then begin
      Buffer.add_string buf "counters:\n";
      let width =
        List.fold_left (fun acc (name, _) -> max acc (String.length name)) 0 counters
      in
      List.iter
        (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "  %-*s %d\n" width name v))
        counters
    end;
    if hists <> [] then begin
      Buffer.add_string buf "histograms (count / mean / p50 / p99 / min / max):\n";
      let width =
        List.fold_left (fun acc (name, _, _) -> max acc (String.length name)) 0 hists
      in
      List.iter
        (fun (name, (s : Histogram.summary), (q : Histogram.quantiles)) ->
          Buffer.add_string buf
            (Printf.sprintf "  %-*s %d / %.3f / %.3f / %.3f / %.3f / %.3f\n" width name
               s.count s.mean q.q_p50 q.q_p99 s.min s.max))
        hists
    end;
    Buffer.contents buf
  end
