(** Labeled counter families: one named metric, many label values.

    The daemon's multi-domain refactor needs counters that are keyed by
    a small dynamic dimension — requests per {e worker} domain, batch
    items per {e op}, hits per LRU {e shard} — and exported as one
    Prometheus family with a label per series.  {!Counter} only knows
    flat names; encoding the label into the name
    ([server.worker.requests.3]) would leak the cardinality into every
    snapshot consumer.  A family instead owns its label dimension:

    {v
      let served = Family.create "server.worker.requests" ~label:"worker" in
      Family.incr served (string_of_int w);
      Family.snapshot served  (* [("0", 812); ("1", 790); ...] *)
    v}

    Families are {e always on} — like the daemon's per-op latency
    histograms and unlike {!Counter}, they do not consult the registry
    switch, because the serving layer's operational counters must answer
    [stats]/[metrics] scrapes even in an unprofiled daemon.

    Domain safety: each series value is a plain [int ref] mutated under
    the family's own mutex; {!incr} from any domain is exact (the
    sharded-LRU hammer test counts on it).  Snapshots take the same
    mutex, so a scrape never sees a torn series list. *)

type t

val create : string -> label:string -> t
(** [create name ~label] registers (or returns the existing) family
    [name] whose series are distinguished by label key [label].
    Re-creating an existing name with a different [label] raises
    [Invalid_argument] — one family, one label dimension. *)

val name : t -> string

val label : t -> string
(** The label key, e.g. ["worker"] or ["shard"]. *)

val incr : ?by:int -> t -> string -> unit
(** [incr t v] adds [by] (default 1) to the series labeled [v],
    creating it at zero first.  Always on, exact across domains. *)

val get : t -> string -> int
(** Current value of one series; 0 if it never fired. *)

val snapshot : t -> (string * int) list
(** All series of the family, sorted by label value. *)

val total : t -> int
(** Sum over every series. *)

val all : unit -> t list
(** Every registered family, sorted by name. *)

val reset : unit -> unit
(** Zero every series of every family (the families and their series
    stay registered).  For test isolation, like {!Registry.reset}. *)
