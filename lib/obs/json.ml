type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- Printing ----------------------------------------------------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string v =
  if not (Float.is_finite v) then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else
    (* %.17g round-trips every float but is noisy; %.12g is plenty for
       timings and always a valid JSON number. *)
    Printf.sprintf "%.12g" v

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float v -> Buffer.add_string buf (float_to_string v)
  | String s -> escape_to buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (key, value) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf key;
          Buffer.add_char buf ':';
          to_buffer buf value)
        fields;
      Buffer.add_char buf '}'

let to_string json =
  let buf = Buffer.create 1024 in
  to_buffer buf json;
  Buffer.contents buf

let to_channel oc json =
  let buf = Buffer.create 4096 in
  to_buffer buf json;
  Buffer.output_buffer oc buf

let write_file path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      to_channel oc json;
      output_char oc '\n')

(* --- Parsing ------------------------------------------------------------ *)

exception Bad of string

type state = { text : string; mutable pos : int }

let peek st = if st.pos < String.length st.text then Some st.text.[st.pos] else None

let fail st msg = raise (Bad (Printf.sprintf "%s at offset %d" msg st.pos))

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      st.pos <- st.pos + 1;
      skip_ws st
  | _ -> ()

let expect st c =
  if peek st = Some c then st.pos <- st.pos + 1
  else fail st (Printf.sprintf "expected %C" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.text && String.sub st.text st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let parse_string_body st =
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' -> (
        st.pos <- st.pos + 1;
        match peek st with
        | None -> fail st "unterminated escape"
        | Some c ->
            st.pos <- st.pos + 1;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                if st.pos + 4 > String.length st.text then fail st "truncated \\u escape";
                let hex = String.sub st.text st.pos 4 in
                let code =
                  match int_of_string_opt ("0x" ^ hex) with
                  | Some c -> c
                  | None -> fail st "bad \\u escape"
                in
                st.pos <- st.pos + 4;
                (* Encode the code point as UTF-8; surrogate pairs are not
                   recombined (the exporters never emit them). *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
            | c -> fail st (Printf.sprintf "bad escape %C" c));
            loop ())
    | Some c ->
        st.pos <- st.pos + 1;
        Buffer.add_char buf c;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while match peek st with Some c when is_num_char c -> true | _ -> false do
    st.pos <- st.pos + 1
  done;
  let lexeme = String.sub st.text start (st.pos - start) in
  match int_of_string_opt lexeme with
  | Some n -> Int n
  | None -> (
      match float_of_string_opt lexeme with
      | Some v -> Float v
      | None -> fail st (Printf.sprintf "bad number %S" lexeme))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws st;
          expect st '"';
          let key = parse_string_body st in
          skip_ws st;
          expect st ':';
          let value = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              fields ((key, value) :: acc)
          | Some '}' ->
              st.pos <- st.pos + 1;
              List.rev ((key, value) :: acc)
          | _ -> fail st "expected ',' or '}'"
        in
        Obj (fields [])
      end
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        List []
      end
      else begin
        let rec items acc =
          let value = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              items (value :: acc)
          | Some ']' ->
              st.pos <- st.pos + 1;
              List.rev (value :: acc)
          | _ -> fail st "expected ',' or ']'"
        in
        List (items [])
      end
  | Some '"' ->
      st.pos <- st.pos + 1;
      String (parse_string_body st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected %C" c)

let parse text =
  let st = { text; pos = 0 } in
  match parse_value st with
  | value ->
      skip_ws st;
      if st.pos <> String.length text then Error "trailing input after JSON value"
      else Ok value
  | exception Bad msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
