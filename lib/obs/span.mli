(** Nested monotonic-clock spans.

    [with_ "estimate.exectime" f] times [f ()] on the monotonic clock
    and records a completed span carrying the nesting depth at entry, so
    the Chrome trace export reconstructs the call structure.  A span is
    recorded even when [f] raises.  Each span also feeds the
    [span.<name>] histogram with its duration in microseconds.

    Every span additionally carries a process-unique id and its parent's
    id (the innermost span open on the calling domain, or whatever
    {!Registry.with_causality} installed across a domain hop), and is
    written into the always-on {!Flight} ring — so the black box holds
    the request tree even with the registry off.

    Fully disabled (registry off *and* flight off): the only cost is two
    atomic loads before calling [f]. *)

val with_ : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the function under a named span.  [args] become the trace
    event's [args] object (rendered as strings). *)
