(** Nested monotonic-clock spans.

    [with_ "estimate.exectime" f] times [f ()] on the monotonic clock
    and records a completed span carrying the nesting depth at entry, so
    the Chrome trace export reconstructs the call structure.  A span is
    recorded even when [f] raises.  Each span also feeds the
    [span.<name>] histogram with its duration in microseconds.

    Disabled registry: the only cost is one [bool] check before calling
    [f]. *)

val with_ : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the function under a named span.  [args] become the trace
    event's [args] object (rendered as strings). *)
