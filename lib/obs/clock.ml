let now_ns () = Monotonic_clock.now ()

let now_us () = Int64.to_float (now_ns ()) /. 1e3

let seconds_between t0 t1 = Int64.to_float (Int64.sub t1 t0) /. 1e9

let time f =
  let t0 = now_ns () in
  let result = f () in
  (result, seconds_between t0 (now_ns ()))

let time_n n f =
  if n <= 0 then invalid_arg "Clock.time_n";
  let t0 = now_ns () in
  for _ = 1 to n do
    ignore (Sys.opaque_identity (f ()))
  done;
  seconds_between t0 (now_ns ()) /. float_of_int n
