(** Monotonic time source for every timestamp in the observability layer.

    [Unix.gettimeofday] jumps under NTP adjustment, so durations measured
    with it can come out negative; everything here reads
    [CLOCK_MONOTONIC] instead (via the bechamel stub already in the
    image). *)

val now_ns : unit -> int64
(** Nanoseconds on the monotonic clock.  Only differences are
    meaningful. *)

val now_us : unit -> float
(** {!now_ns} scaled to microseconds. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result together with the
    elapsed monotonic seconds. *)

val time_n : int -> (unit -> 'a) -> float
(** [time_n n f] runs [f] [n] times and returns the average elapsed
    seconds per run.  Raises [Invalid_argument] when [n <= 0]. *)
