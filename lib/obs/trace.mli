(** Chrome [trace_event] export of the recorded spans.

    The output is the JSON-object flavor of the trace-event format
    ({v {"traceEvents":[...]} v}) with one complete ("ph":"X") event per
    span, timestamps in microseconds relative to the registry epoch.  It
    loads directly in [chrome://tracing] and {{:https://ui.perfetto.dev}
    Perfetto}. *)

type event = {
  name : string;
  ts_us : float;  (** start, microseconds since the epoch *)
  dur_us : float;
  depth : int;
  dom : int;  (** recording domain — the exported [tid], one row per domain *)
  args : (string * string) list;
}

val events : unit -> event list
(** Recorded spans sorted by start time (the export order). *)

val to_json : unit -> Json.t

val write_file : string -> unit
