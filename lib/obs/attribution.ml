type category = Task_run | Queue_wait | Lock_wait | Gc | Copy | Idle

let categories = [ Task_run; Queue_wait; Lock_wait; Gc; Copy; Idle ]

let category_name = function
  | Task_run -> "task-run"
  | Queue_wait -> "queue-wait"
  | Lock_wait -> "lock-wait"
  | Gc -> "gc"
  | Copy -> "copy"
  | Idle -> "idle"

let index_of = function
  | Task_run -> 0
  | Queue_wait -> 1
  | Lock_wait -> 2
  | Gc -> 3
  | Copy -> 4
  | Idle -> 5

let n_categories = 6

(* Same shape as the span registry: one cell per domain reached through
   DLS (the producers never lock), a global list of the cells for the
   readers, and one atomic gate in front of everything.

   The per-category accumulators and the wall figure share one float
   array padded to [cell_slots] words (two cache lines including the
   header): every task completion writes these cells, and unpadded
   cells from different domains promoted next to each other in the
   major heap would false-share — precisely the contention this module
   exists to measure. *)
let enabled = Atomic.make false

let wall_slot = n_categories
let cell_slots = 15

type cell = { dom : int; by_cat : float array (* categories, then wall, then padding *) }

let cells_mu = Mutex.create ()
let cells : cell list ref = ref []

let key =
  Domain.DLS.new_key (fun () ->
      let c =
        { dom = (Domain.self () :> int); by_cat = Array.make cell_slots 0.0 }
      in
      Mutex.lock cells_mu;
      cells := c :: !cells;
      Mutex.unlock cells_mu;
      c)

let on () = Atomic.get enabled
let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false

let add cat us =
  if Atomic.get enabled && Float.is_finite us && us > 0.0 then begin
    let c = Domain.DLS.get key in
    let i = index_of cat in
    c.by_cat.(i) <- c.by_cat.(i) +. us
  end

let add_wall us =
  if Atomic.get enabled && Float.is_finite us && us > 0.0 then begin
    let c = Domain.DLS.get key in
    c.by_cat.(wall_slot) <- c.by_cat.(wall_slot) +. us
  end

let fold_cells f acc =
  Mutex.lock cells_mu;
  let cs = !cells in
  Mutex.unlock cells_mu;
  List.fold_left f acc (List.sort (fun a b -> compare a.dom b.dom) cs)

let reset () = fold_cells (fun () c -> Array.fill c.by_cat 0 cell_slots 0.0) ()

type per_domain = {
  dom : int;
  wall_us : float;
  raw : (category * float) list;
  net : (category * float) list;
  other_us : float;
}

type report = {
  domains : per_domain list;
  total_wall_us : float;
  totals : (category * float) list;
  total_other_us : float;
  coverage : float;
}

let raw_of_cell c = List.map (fun cat -> (cat, c.by_cat.(index_of cat))) categories

let snapshot () =
  fold_cells
    (fun acc c ->
      let named =
        List.fold_left (fun acc cat -> acc +. c.by_cat.(index_of cat)) 0.0 categories
      in
      {
        dom = c.dom;
        wall_us = c.by_cat.(wall_slot);
        raw = raw_of_cell c;
        net = raw_of_cell c;
        other_us = Float.max 0.0 (c.by_cat.(wall_slot) -. named);
      }
      :: acc)
    []
  |> List.rev

(* The GC/lock/copy time measured inside a task is already part of the
   gross task-run figure; carving it out keeps one domain's categories
   summing to at most its wall.  A process-wide GC time (runtime_events
   cannot attribute pauses to [Domain.self] ids) is spread over the
   domains in proportion to their gross task time — the allocation the
   pauses interrupted. *)
let report ?gc_us () =
  (* Cells persist across profiled runs (a domain's DLS outlives a
     reset only as zeros); all-zero cells are domains that took no part
     in this run and would only pad the report. *)
  let live (c : cell) = Array.exists (fun v -> v > 0.0) c.by_cat in
  let cs =
    fold_cells (fun acc c -> if live c then c :: acc else acc) []
    |> List.sort (fun (a : cell) (b : cell) -> compare a.dom b.dom)
  in
  let gross_task c = c.by_cat.(index_of Task_run) in
  let total_gross_task = List.fold_left (fun acc c -> acc +. gross_task c) 0.0 cs in
  let recorded_gc = List.fold_left (fun acc c -> acc +. c.by_cat.(index_of Gc)) 0.0 cs in
  let gc_total = match gc_us with Some g -> Float.max g recorded_gc | None -> recorded_gc in
  let domains =
    List.map
      (fun c ->
        let gc_share =
          if gc_us = None then c.by_cat.(index_of Gc)
          else if total_gross_task <= 0.0 then 0.0
          else gc_total *. gross_task c /. total_gross_task
        in
        let carve =
          c.by_cat.(index_of Lock_wait) +. c.by_cat.(index_of Copy) +. gc_share
        in
        let net_task = Float.max 0.0 (gross_task c -. carve) in
        let net =
          List.map
            (fun cat ->
              match cat with
              | Task_run -> (cat, net_task)
              | Gc -> (cat, gc_share)
              | _ -> (cat, c.by_cat.(index_of cat)))
            categories
        in
        let named = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 net in
        {
          dom = c.dom;
          wall_us = c.by_cat.(wall_slot);
          raw = raw_of_cell c;
          net;
          other_us = Float.max 0.0 (c.by_cat.(wall_slot) -. named);
        })
      cs
  in
  let total_wall_us = List.fold_left (fun acc d -> acc +. d.wall_us) 0.0 domains in
  let totals =
    List.map
      (fun cat ->
        ( cat,
          List.fold_left (fun acc d -> acc +. List.assoc cat d.net) 0.0 domains ))
      categories
  in
  let named = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 totals in
  let total_other_us = Float.max 0.0 (total_wall_us -. named) in
  let coverage =
    if total_wall_us <= 0.0 then 1.0 else Float.min 1.0 (named /. total_wall_us)
  in
  { domains; total_wall_us; totals; total_other_us; coverage }
