type labels = (string * string) list

type family =
  | Counter of { name : string; help : string; samples : (labels * float) list }
  | Gauge of { name : string; help : string; samples : (labels * float) list }
  | Summary of {
      name : string;
      help : string;
      series : (labels * Histogram.quantiles * float) list;
    }

let is_name_char first c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || c = '_' || c = ':'
  || ((not first) && c >= '0' && c <= '9')

(* Metric names may only be [a-zA-Z_:][a-zA-Z0-9_:]*; dotted registry
   names like [server.request.estimate] become [server_request_estimate]. *)
let sanitize_name s =
  if s = "" then "_"
  else
    String.mapi (fun i c -> if is_name_char (i = 0) c then c else '_') s

let add_escaped_label_value buf s =
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s

let add_labels buf = function
  | [] -> ()
  | labels ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (sanitize_name k);
          Buffer.add_string buf "=\"";
          add_escaped_label_value buf v;
          Buffer.add_char buf '"')
        labels;
      Buffer.add_char buf '}'

let add_value buf v =
  if Float.is_nan v then Buffer.add_string buf "NaN"
  else if v = Float.infinity then Buffer.add_string buf "+Inf"
  else if v = Float.neg_infinity then Buffer.add_string buf "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" v)
  else Buffer.add_string buf (Printf.sprintf "%.9g" v)

let add_sample buf name labels v =
  Buffer.add_string buf name;
  add_labels buf labels;
  Buffer.add_char buf ' ';
  add_value buf v;
  Buffer.add_char buf '\n'

let add_header buf name help kind =
  Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
  Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)

let add_family buf family =
  match family with
  | Counter { name; help; samples } ->
      let name = sanitize_name name in
      add_header buf name help "counter";
      List.iter (fun (labels, v) -> add_sample buf name labels v) samples
  | Gauge { name; help; samples } ->
      let name = sanitize_name name in
      add_header buf name help "gauge";
      List.iter (fun (labels, v) -> add_sample buf name labels v) samples
  | Summary { name; help; series } ->
      let name = sanitize_name name in
      add_header buf name help "summary";
      List.iter
        (fun (labels, (q : Histogram.quantiles), sum) ->
          List.iter
            (fun (tag, v) -> add_sample buf name (labels @ [ ("quantile", tag) ]) v)
            [ ("0.5", q.q_p50); ("0.9", q.q_p90); ("0.99", q.q_p99) ];
          add_sample buf (name ^ "_sum") labels sum;
          add_sample buf (name ^ "_count") labels (float_of_int q.q_count))
        series

let to_string families =
  let buf = Buffer.create 4096 in
  List.iter (add_family buf) families;
  Buffer.contents buf
