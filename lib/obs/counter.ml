let add name n =
  if Registry.on () then
    match Hashtbl.find_opt Registry.counters name with
    | Some r -> r := !r + n
    | None -> Hashtbl.add Registry.counters name (ref n)

let incr ?(by = 1) name = add name by

let get name =
  match Hashtbl.find_opt Registry.counters name with Some r -> !r | None -> 0

let snapshot () =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) Registry.counters []
  |> List.sort compare
