let add name n =
  if Registry.on () then begin
    let l = Registry.local () in
    match Hashtbl.find_opt l.Registry.counters name with
    | Some r -> r := !r + n
    | None -> Hashtbl.add l.Registry.counters name (ref n)
  end

let incr ?(by = 1) name = add name by

(* Reads merge every domain's cell: two pool workers bumping the same
   name contribute to one exported total. *)
let get name =
  Registry.fold_locals
    (fun acc l ->
      match Hashtbl.find_opt l.Registry.counters name with
      | Some r -> acc + !r
      | None -> acc)
    0

let snapshot () =
  let merged = Hashtbl.create 64 in
  Registry.fold_locals
    (fun () l ->
      Hashtbl.iter
        (fun name r ->
          match Hashtbl.find_opt merged name with
          | Some total -> Hashtbl.replace merged name (total + !r)
          | None -> Hashtbl.add merged name !r)
        l.Registry.counters)
    ();
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) merged [] |> List.sort compare

(* Unmerged view: which domain did the counting.  The scaling report
   uses it to show per-domain memo hit rates. *)
let snapshot_by_domain () =
  Registry.fold_locals
    (fun acc l ->
      let cs =
        Hashtbl.fold (fun name r acc -> (name, !r) :: acc) l.Registry.counters []
        |> List.sort compare
      in
      if cs = [] then acc else (l.Registry.dom, cs) :: acc)
    []
  |> List.rev
