(* Counters live in padded per-domain cells (Registry.cell_words words,
   value in slot 0) so two domains bumping different counters never
   contend on a cache line.  A cell that exists with value 0 is treated
   as absent everywhere below, which keeps [Registry.reset] — which
   zeroes cells in place instead of dropping them — invisible to
   readers. *)

let find_cell name =
  let l = Registry.local () in
  match Hashtbl.find_opt l.Registry.counters name with
  | Some c -> c
  | None ->
      let c = Registry.new_cell () in
      Hashtbl.add l.Registry.counters name c;
      c

let add name n =
  if Registry.on () then begin
    let c = find_cell name in
    c.(0) <- c.(0) + n
  end

let incr ?(by = 1) name = add name by

(* --- Resolved handles ---------------------------------------------------

   The estimate memo path bumps its hit/miss counters tens of millions of
   times per profiled sweep; paying a hash lookup per bump there is the
   kind of shared-path overhead this layer exists to measure, not add.
   A handle resolves the (domain, name) cell once; bumping is then one
   predictable branch and one store into a cache line the owning domain
   has exclusive use of. *)

type cell = int array

let cell name = find_cell name

let bump ?(by = 1) (c : cell) = if Registry.on () then c.(0) <- c.(0) + by

(* Reads merge every domain's cell: two pool workers bumping the same
   name contribute to one exported total. *)
let get name =
  Registry.fold_locals
    (fun acc l ->
      match Hashtbl.find_opt l.Registry.counters name with
      | Some c -> acc + c.(0)
      | None -> acc)
    0

let snapshot () =
  let merged = Hashtbl.create 64 in
  Registry.fold_locals
    (fun () l ->
      Hashtbl.iter
        (fun name (c : cell) ->
          if c.(0) <> 0 then
            match Hashtbl.find_opt merged name with
            | Some total -> Hashtbl.replace merged name (total + c.(0))
            | None -> Hashtbl.add merged name c.(0))
        l.Registry.counters)
    ();
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) merged [] |> List.sort compare

(* Unmerged view: which domain did the counting.  The scaling report
   uses it to show per-domain memo hit rates. *)
let snapshot_by_domain () =
  Registry.fold_locals
    (fun acc l ->
      let cs =
        Hashtbl.fold
          (fun name (c : cell) acc -> if c.(0) <> 0 then (name, c.(0)) :: acc else acc)
          l.Registry.counters []
        |> List.sort compare
      in
      if cs = [] then acc else (l.Registry.dom, cs) :: acc)
    []
  |> List.rev
