(** Per-domain wall-time attribution for the parallel stack.

    BENCH A8 shows exploration getting {e slower} with domains; spans and
    counters alone cannot say why — they time work, not waiting.  This
    module folds each domain's wall time into named categories so a
    scaling report can answer "where did the cores go":

    - [Task_run] — executing pool task bodies (gross, including any GC
      pauses, lock waits and engine copies that happened inside);
    - [Queue_wait] — pool-internal queue machinery: waiting on and
      holding the pool's queue lock between tasks;
    - [Lock_wait] — blocked acquiring an instrumented {!Lockprof} lock;
    - [Gc] — runtime/GC pauses ({!Gcprof} timing, process-wide);
    - [Copy] — [Specsyn.Engine.copy] per-task clone cost;
    - [Idle] — parked on the pool's condition variable with no work.

    Producers ({!Slif_util.Pool}, {!Lockprof}, the engine) call {!add}
    from the domain the time was spent on; the cells live in
    domain-local storage exactly like {!Registry}'s, so the hot paths
    never lock.  The accounting is gated by its own switch, independent
    of the span registry: a disabled profiler costs one atomic load per
    probe site.  {!report} resolves the double counting: the sub-costs
    measured inside tasks (lock wait, GC, copy) are carved out of the
    gross task-run time, so the categories of one domain sum to at most
    its measured wall time and the [coverage] ratio says how much of the
    wall the profiler could name.  Readers are meant to run at quiescent
    points (between sweeps), as all registry exporters are. *)

type category = Task_run | Queue_wait | Lock_wait | Gc | Copy | Idle

val categories : category list
(** All categories, in report order. *)

val category_name : category -> string
(** ["task-run"], ["queue-wait"], ["lock-wait"], ["gc"], ["copy"],
    ["idle"]. *)

val on : unit -> bool
(** True while profiling is enabled.  Every producer checks this first
    and is a no-op (one atomic load) when it is false. *)

val enable : unit -> unit

val disable : unit -> unit

val add : category -> float -> unit
(** [add cat us] charges [us] microseconds of the calling domain's time
    to [cat].  No-op while disabled. *)

val add_wall : float -> unit
(** Charge measured wall time (microseconds) to the calling domain: the
    denominator the categories are compared against.  Pool workers
    record their loop lifetime; the submitting domain records each map
    call's duration.  No-op while disabled. *)

type per_domain = {
  dom : int;  (** [Domain.self] of the recording domain *)
  wall_us : float;
  raw : (category * float) list;  (** as recorded, task-run gross *)
  net : (category * float) list;
      (** task-run with the lock/GC/copy sub-costs carved out (clamped
          at zero); other categories unchanged *)
  other_us : float;  (** wall minus the net categories, clamped at 0 *)
}

type report = {
  domains : per_domain list;  (** ascending domain id *)
  total_wall_us : float;
  totals : (category * float) list;  (** net, summed across domains *)
  total_other_us : float;
  coverage : float;
      (** named time / wall time, in [0, 1]; 1.0 when wall is 0 *)
}

val snapshot : unit -> per_domain list
(** Raw cells of every domain that ever recorded, ascending id. *)

val report : ?gc_us:float -> unit -> report
(** Fold the cells into the deduplicated report.  [gc_us] (default: the
    cells' recorded [Gc] time) substitutes a process-wide GC time
    measured elsewhere ({!Gcprof.gc_time_us}); it is charged against the
    domains' gross task time proportionally to their share of it. *)

val reset : unit -> unit
(** Zero every domain's cell.  Call between profiled sweeps. *)
