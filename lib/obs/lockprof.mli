(** Contention-profiled mutexes.

    A {!t} wraps a [Mutex.t] under a stable name and, while profiling is
    enabled, records two log-bucket histograms per lock — microseconds
    spent {e waiting} to acquire it and microseconds spent {e holding}
    it — plus acquisition and contended-acquisition counts.  The wait
    time is also charged to the lock's {!Attribution} category, so a
    scaling report can show lock contention per domain.

    Cost model: while disabled, {!lock} is one atomic load, a branch and
    [Mutex.lock] — indistinguishable from a bare mutex.  While enabled,
    the uncontended path is a [Mutex.try_lock] plus two clock reads; the
    stat cells are mutated only by the lock's holder (wait is recorded
    just after acquiring, hold just before releasing), so the telemetry
    adds no synchronization of its own.

    {!stats} and {!all} read the histograms without taking the lock —
    they are meant for quiescent points or monitoring scrapes where a
    torn read of one bucket is acceptable, like every other exporter in
    this library. *)

type t

val create : ?category:Attribution.category -> string -> t
(** [create name] registers a new profiled lock.  [category] (default
    {!Attribution.Lock_wait}) is where acquisition waits are charged;
    the pool's queue lock passes {!Attribution.Queue_wait}. *)

val name : t -> string

val mutex : t -> Mutex.t
(** The underlying mutex — for [Condition.signal]/[broadcast] call
    sites and for code that must interoperate with a bare mutex.  For
    condition waits prefer {!wait}, which keeps the hold histogram
    honest. *)

val wait : ?category:Attribution.category -> t -> Condition.t -> unit
(** [wait t cond] is [Condition.wait cond (mutex t)] with the profiling
    kept consistent: the current hold segment is closed before parking
    and a fresh one opened on wake, so time blocked on the condition
    never counts as holding the lock.  The parked time is charged to
    [category] (default {!Attribution.Idle}) — a pool worker with an
    empty queue is idle, not contending. *)

val lock : t -> unit

val unlock : t -> unit

val with_lock : t -> (unit -> 'a) -> 'a
(** [lock], run, [unlock] — even on exceptions. *)

val set_enabled : bool -> unit
(** Master switch for every profiled lock (independent of the span
    registry's switch). *)

val on : unit -> bool

type stat = {
  s_name : string;
  acquisitions : int;  (** successful [lock] calls while enabled *)
  contended : int;  (** acquisitions that had to wait *)
  wait_us : Histogram.summary;
  wait_quantiles : Histogram.quantiles;
  hold_us : Histogram.summary;
  hold_quantiles : Histogram.quantiles;
}

val stats : t -> stat

val all : unit -> stat list
(** Every registered lock's stats, sorted by name. *)

val reset : unit -> unit
(** Zero every lock's counters and histograms.  Only meaningful at a
    quiescent point (no lock held or contended). *)
