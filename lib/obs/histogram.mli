(** Named value distributions: count / sum / min / max / mean plus
    log-bucketed quantile estimation (p50 / p90 / p99 / max).

    {!Span.with_} feeds a [span.<name>] histogram with every span's
    duration in microseconds, so per-phase timing statistics come for
    free in the metrics export.

    Three shapes share one bucket geometry (base 1.15, ~16.5 buckets per
    decade, so estimated quantiles are within ~7% of the true value):

    - the registry-named histograms below ({!observe}, {!summary},
      {!quantiles}) — per-domain cells merged at read time, gated by the
      registry switch;
    - a standalone lifetime histogram {!t} — no registry, no switch;
      the daemon's always-on per-op latency telemetry;
    - a sliding {!window} of the most recent observations with {e exact}
      quantiles, so [stats] can report what the process is doing now
      rather than its lifetime average. *)

type summary = { count : int; sum : float; min : float; max : float; mean : float }

type quantiles = {
  q_count : int;
  q_p50 : float;
  q_p90 : float;
  q_p99 : float;
  q_max : float;  (** exact, not bucketed *)
}

val observe : string -> float -> unit
(** Record one observation.  No-op while the registry is disabled. *)

val summary : string -> summary option
(** [None] for a histogram that never observed a value. *)

val quantiles : string -> quantiles option
(** Estimated p50/p90/p99 (bucket midpoints, never above the true max)
    plus the exact max. *)

val snapshot : unit -> (string * summary) list
(** All histograms, sorted by name. *)

val snapshot_quantiles : unit -> (string * quantiles) list
(** All histograms' quantile estimates, sorted by name. *)

val snapshot_full : unit -> (string * summary * quantiles) list
(** Summary and quantiles from one merged read, sorted by name. *)

(** {2 Standalone lifetime histogram} *)

type t

val create : unit -> t

val record : t -> float -> unit

val count : t -> int

val sum : t -> float

val clear : t -> unit
(** Zero the histogram in place (count, sum, extremes, buckets). *)

val stats : t -> summary

val quantile : t -> float -> float
(** [quantile t q] for [q] in [0,1]; [nan] when empty. *)

val quantile_summary : t -> quantiles

(** {2 Sliding window} *)

type window

val default_window_capacity : int
(** 512 observations. *)

val window : ?capacity:int -> unit -> window
(** Raises [Invalid_argument] when [capacity < 1]. *)

val window_record : window -> float -> unit
(** O(1); overwrites the oldest observation once full. *)

val window_size : window -> int
(** Observations currently held (≤ capacity). *)

val window_quantiles : window -> quantiles option
(** Exact quantiles of the held observations; [None] when empty. *)
