(** Named value distributions (count / sum / min / max / mean).

    {!Span.with_} feeds a [span.<name>] histogram with every span's
    duration in microseconds, so per-phase timing statistics come for
    free in the metrics export. *)

type summary = { count : int; sum : float; min : float; max : float; mean : float }

val observe : string -> float -> unit
(** Record one observation.  No-op while the registry is disabled. *)

val summary : string -> summary option
(** [None] for a histogram that never observed a value. *)

val snapshot : unit -> (string * summary) list
(** All histograms, sorted by name. *)
