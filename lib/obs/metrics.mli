(** Metrics export: counters and histograms as one summary-JSON object,
    as JSONL (one metric per line, stream-friendly), or as an aligned
    text summary for [--verbose]. *)

val to_json : unit -> Json.t
(** {v {"counters":{...},
       "histograms":{name:{count,sum,min,max,mean,p50,p90,p99}},
       "dropped_span_events":n} v}
    The p50/p90/p99 fields are log-bucket estimates
    ({!Histogram.quantiles}); a bare lifetime summary without them is no
    longer emitted. *)

val write_file : string -> unit
(** Write the summary-JSON form. *)

val write_jsonl : string -> unit
(** One JSON object per line:
    {v {"type":"counter","name":...,"value":...} v} then
    {v {"type":"histogram","name":...,"count":...,...} v}. *)

val summary_string : unit -> string
(** Human-readable table of every counter and histogram (empty string
    when nothing was recorded). *)
