let record ?(args = []) name ~t0 ~depth =
  let t1 = Clock.now_ns () in
  let dur = Int64.sub t1 t0 in
  Registry.push_event
    {
      Registry.ev_name = name;
      ev_ts_ns = Int64.sub t0 (Registry.epoch_ns ());
      ev_dur_ns = dur;
      ev_depth = depth;
      ev_args = args;
    };
  Histogram.observe ("span." ^ name) (Int64.to_float dur /. 1e3)

let with_ ?args name f =
  if not (Registry.on ()) then f ()
  else begin
    let t0 = Clock.now_ns () in
    let d = !Registry.depth in
    Registry.depth := d + 1;
    let finish () =
      Registry.depth := d;
      record ?args name ~t0 ~depth:d
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end
