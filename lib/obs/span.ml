let record ?(args = []) l name ~t0 ~dur ~depth ~id ~parent =
  (* Every span opened while a request trace id is set carries it, so
     the Chrome trace can be filtered to one request even though the
     events stay on their domain's lane.  The flight-recorder span id
     and parent ride along for tree reconstruction. *)
  let args =
    ("span_id", string_of_int id)
    :: ("parent_id", string_of_int parent)
    ::
    (match l.Registry.trace with
    | Some tid -> ("trace_id", tid) :: args
    | None -> args)
  in
  Registry.push_event l
    {
      Registry.ev_name = name;
      ev_ts_ns = Int64.sub t0 (Registry.epoch_ns ());
      ev_dur_ns = dur;
      ev_depth = depth;
      ev_dom = l.Registry.dom;
      ev_args = args;
    };
  Histogram.observe ("span." ^ name) (Int64.to_float dur /. 1e3)

let with_ ?args name f =
  let fl = Flight.on () in
  let reg = Registry.on () in
  if not (fl || reg) then f ()
  else begin
    (* All mutation lands in the calling domain's cell: the nesting
       depth, the open-span id and the event buffer are per-domain, so
       spans opened inside pool workers never race.  The flight write
       happens whether or not the registry is armed — that is the
       always-on black box. *)
    let l = Registry.local () in
    let t0 = Clock.now_ns () in
    let d = l.Registry.depth in
    let parent = l.Registry.span in
    let id = Flight.next_id () in
    l.Registry.depth <- d + 1;
    l.Registry.span <- id;
    let finish () =
      l.Registry.depth <- d;
      l.Registry.span <- parent;
      let dur = Int64.sub (Clock.now_ns ()) t0 in
      if fl then
        Flight.record_span
          ?trace:l.Registry.trace ~id ~parent ~name
          ~t0_ns:(Int64.to_int t0) ~dur_ns:(Int64.to_int dur) ();
      if reg then record ?args l name ~t0 ~dur ~depth:d ~id ~parent
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end
