let record ?(args = []) l name ~t0 ~depth =
  let t1 = Clock.now_ns () in
  let dur = Int64.sub t1 t0 in
  (* Every span opened while a request trace id is set carries it, so
     the Chrome trace can be filtered to one request even though the
     events stay on their domain's lane. *)
  let args =
    match l.Registry.trace with
    | Some id -> ("trace_id", id) :: args
    | None -> args
  in
  Registry.push_event l
    {
      Registry.ev_name = name;
      ev_ts_ns = Int64.sub t0 (Registry.epoch_ns ());
      ev_dur_ns = dur;
      ev_depth = depth;
      ev_dom = l.Registry.dom;
      ev_args = args;
    };
  Histogram.observe ("span." ^ name) (Int64.to_float dur /. 1e3)

let with_ ?args name f =
  if not (Registry.on ()) then f ()
  else begin
    (* All mutation lands in the calling domain's cell: the nesting depth
       and the event buffer are per-domain, so spans opened inside pool
       workers never race. *)
    let l = Registry.local () in
    let t0 = Clock.now_ns () in
    let d = l.Registry.depth in
    l.Registry.depth <- d + 1;
    let finish () =
      l.Registry.depth <- d;
      record ?args l name ~t0 ~depth:d
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end
