type event = {
  name : string;
  ts_us : float;
  dur_us : float;
  depth : int;
  dom : int;
  args : (string * string) list;
}

let events () =
  Registry.all_events ()
  |> List.map (fun (ev : Registry.span_event) ->
         {
           name = ev.ev_name;
           ts_us = Int64.to_float ev.ev_ts_ns /. 1e3;
           dur_us = Int64.to_float ev.ev_dur_ns /. 1e3;
           depth = ev.ev_depth;
           dom = ev.ev_dom;
           args = ev.ev_args;
         })
  |> List.stable_sort (fun a b -> compare a.ts_us b.ts_us)

let event_json ev =
  let args =
    ("depth", Json.Int ev.depth)
    :: List.map (fun (k, v) -> (k, Json.String v)) ev.args
  in
  Json.Obj
    [
      ("name", Json.String ev.name);
      ("cat", Json.String "slif");
      ("ph", Json.String "X");
      ("ts", Json.Float ev.ts_us);
      ("dur", Json.Float ev.dur_us);
      ("pid", Json.Int 1);
      (* One trace row per domain: spans from pool workers land on their
         own timeline instead of overlapping the submitter's. *)
      ("tid", Json.Int ev.dom);
      ("args", Json.Obj args);
    ]

(* Perfetto counter tracks: one "ph":"C" event per gauge sample.  The
   (pid, name) pair identifies the track, so samples from different
   domains fold into one line per counter name; the sampling domain is
   kept as an arg for filtering. *)
let sample_json (s : Registry.counter_sample) =
  Json.Obj
    [
      ("name", Json.String s.sa_name);
      ("cat", Json.String "slif");
      ("ph", Json.String "C");
      ("ts", Json.Float (Int64.to_float s.sa_ts_ns /. 1e3));
      ("pid", Json.Int 1);
      ("tid", Json.Int 0);
      ("args", Json.Obj [ ("value", Json.Float s.sa_value); ("dom", Json.Int s.sa_dom) ]);
    ]

let process_name_event =
  Json.Obj
    [
      ("name", Json.String "process_name");
      ("ph", Json.String "M");
      ("pid", Json.Int 1);
      ("args", Json.Obj [ ("name", Json.String "slif") ]);
    ]

let to_json () =
  Json.Obj
    [
      ( "traceEvents",
        Json.List
          ((process_name_event :: List.map event_json (events ()))
          @ List.map sample_json (Registry.all_samples ())) );
      ("displayTimeUnit", Json.String "ms");
      ("droppedSpanEvents", Json.Int (Registry.dropped_events ()));
    ]

let write_file path = Json.write_file path (to_json ())
