(** Prometheus text exposition format v0.0.4.

    Renders metric families — [# HELP] / [# TYPE] headers followed by
    [name{label="value"} number] sample lines — exactly as a Prometheus
    scraper expects.  Dotted registry names are sanitized to the legal
    character set; label values are escaped.  The daemon's [metrics] op
    is the consumer: registry counters become counter families, latency
    histograms become summary families with p50/p90/p99 quantile
    samples plus [_sum] / [_count]. *)

type labels = (string * string) list

type family =
  | Counter of { name : string; help : string; samples : (labels * float) list }
  | Gauge of { name : string; help : string; samples : (labels * float) list }
  | Summary of {
      name : string;
      help : string;
      series : (labels * Histogram.quantiles * float) list;
          (** labels, quantiles, sum; [q_count] supplies [_count] *)
    }

val sanitize_name : string -> string
(** Map every character outside [[a-zA-Z0-9_:]] (or a leading digit) to
    ['_']. *)

val to_string : family list -> string
(** Render the families in order, one exposition document. *)
