type span_event = {
  ev_name : string;
  ev_ts_ns : int64;
  ev_dur_ns : int64;
  ev_depth : int;
  ev_args : (string * string) list;
}

type hist = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

let enabled = ref false
let epoch = ref 0L
let counters : (string, int ref) Hashtbl.t = Hashtbl.create 64
let hists : (string, hist) Hashtbl.t = Hashtbl.create 64
let events : span_event list ref = ref []
let n_events = ref 0
let max_events = ref 200_000
let dropped = ref 0
let depth = ref 0

let on () = !enabled

let enable () =
  if not !enabled then begin
    enabled := true;
    if !epoch = 0L then epoch := Clock.now_ns ()
  end

let disable () = enabled := false

let reset () =
  Hashtbl.reset counters;
  Hashtbl.reset hists;
  events := [];
  n_events := 0;
  dropped := 0;
  depth := 0;
  epoch := Clock.now_ns ()

let epoch_ns () = !epoch

let push_event ev =
  if !n_events >= !max_events then incr dropped
  else begin
    events := ev :: !events;
    incr n_events
  end

let all_events () = List.rev !events

let dropped_events () = !dropped

let set_max_events n =
  if n < 0 then invalid_arg "Registry.set_max_events";
  max_events := n
