type span_event = {
  ev_name : string;
  ev_ts_ns : int64;
  ev_dur_ns : int64;
  ev_depth : int;
  ev_dom : int;
  ev_args : (string * string) list;
}

type hist = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : int array;  (* log-spaced; geometry lives in Histogram *)
}

type counter_sample = { sa_name : string; sa_ts_ns : int64; sa_value : float; sa_dom : int }

(* Counter cells are padded out to [cell_words] machine words (two 64-byte
   cache lines including the array header) with the live value in slot 0.
   Each cell is written by exactly one domain — its owner — but cells from
   different domains end up adjacent in the major heap once promoted, and
   an unpadded cell would then share a cache line with a neighbour that
   another domain hammers.  The padding buys true share-nothing counting:
   a domain bumping its hot cell never invalidates another domain's line. *)
let cell_words = 15

let new_cell () : int array = Array.make cell_words 0

type local = {
  dom : int;
  counters : (string, int array) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
  mutable events : span_event list;  (* newest first *)
  mutable n_events : int;
  mutable dropped : int;
  mutable samples : counter_sample list;  (* newest first *)
  mutable n_samples : int;
  mutable depth : int;
  mutable trace : string option;
  mutable span : int;  (* innermost open span id (Flight); 0 = none *)
}

(* The master switch is the only cell every probe reads; an [Atomic] load
   keeps the disabled-mode cost at one load and branch while staying
   race-free under domains. *)
let enabled = Atomic.make false
let epoch = ref 0L
let max_events = Atomic.make 200_000

(* One [local] per domain that ever probed, handed out through
   domain-local storage so the hot paths never lock.  The cells are also
   kept on a global list (guarded by [locals_mu]) so exporters can merge
   them; a cell outlives its domain, preserving the data of joined pool
   workers.  [reset] zeroes the cells in place rather than dropping them —
   a live domain keeps writing into its registered cell. *)
let locals_mu = Mutex.create ()
let locals : local list ref = ref []

let key =
  Domain.DLS.new_key (fun () ->
      let l =
        {
          dom = (Domain.self () :> int);
          counters = Hashtbl.create 64;
          hists = Hashtbl.create 64;
          events = [];
          n_events = 0;
          dropped = 0;
          samples = [];
          n_samples = 0;
          depth = 0;
          trace = None;
          span = 0;
        }
      in
      Mutex.lock locals_mu;
      locals := l :: !locals;
      Mutex.unlock locals_mu;
      l)

let local () = Domain.DLS.get key

let fold_locals f acc =
  Mutex.lock locals_mu;
  let ls = !locals in
  Mutex.unlock locals_mu;
  (* Ascending domain id: a deterministic merge order for exporters. *)
  List.fold_left f acc (List.sort (fun a b -> compare a.dom b.dom) ls)

let on () = Atomic.get enabled

let enable () =
  if not (Atomic.get enabled) then begin
    Atomic.set enabled true;
    if !epoch = 0L then epoch := Clock.now_ns ()
  end

let disable () = Atomic.set enabled false

let reset () =
  fold_locals
    (fun () l ->
      (* Counter cells are zeroed in place, not dropped: hot-path probes
         (Counter.cell) cache a cell across resets, and a dropped cell
         would silently swallow their writes after the next profiled run
         re-arms the registry. *)
      Hashtbl.iter (fun _ c -> Array.fill c 0 cell_words 0) l.counters;
      Hashtbl.reset l.hists;
      l.events <- [];
      l.n_events <- 0;
      l.dropped <- 0;
      l.samples <- [];
      l.n_samples <- 0;
      l.depth <- 0;
      l.span <- 0)
    ();
  epoch := Clock.now_ns ()

let epoch_ns () = !epoch

let depth () = (local ()).depth

(* The ambient request identity of the calling domain.  Deliberately
   independent of [on ()]: the event log tags lines with the trace id
   even when span/counter recording is off. *)
let set_trace id = (local ()).trace <- id

let current_trace () = (local ()).trace

let with_trace id f =
  let l = local () in
  let saved = l.trace in
  l.trace <- Some id;
  Fun.protect ~finally:(fun () -> l.trace <- saved) f

(* The causality context: the innermost open span id, minted by the
   flight recorder.  Like the trace id it is independent of [on ()] —
   the always-on flight path is exactly the consumer that needs it when
   the registry is off. *)
let current_span () = (local ()).span

let with_causality ?trace ?parent f =
  let l = local () in
  let saved_trace = l.trace and saved_span = l.span in
  (match trace with Some _ -> l.trace <- trace | None -> ());
  (match parent with Some p -> l.span <- p | None -> ());
  Fun.protect
    ~finally:(fun () ->
      l.trace <- saved_trace;
      l.span <- saved_span)
    f

let push_event l ev =
  if l.n_events >= Atomic.get max_events then l.dropped <- l.dropped + 1
  else begin
    l.events <- ev :: l.events;
    l.n_events <- l.n_events + 1
  end

let all_events () =
  fold_locals (fun acc l -> acc @ List.rev l.events) []

(* Timestamped gauge samples for the trace export's counter tracks.
   Same cell discipline as spans: the producer touches only its own
   domain, the reader merges.  Shares the span cap so a runaway sampler
   is bounded by the same knob. *)
let sample name value =
  if Atomic.get enabled then begin
    let l = local () in
    if l.n_samples >= Atomic.get max_events then l.dropped <- l.dropped + 1
    else begin
      l.samples <-
        {
          sa_name = name;
          sa_ts_ns = Int64.sub (Clock.now_ns ()) !epoch;
          sa_value = value;
          sa_dom = l.dom;
        }
        :: l.samples;
      l.n_samples <- l.n_samples + 1
    end
  end

let all_samples () = fold_locals (fun acc l -> acc @ List.rev l.samples) []

let dropped_events () = fold_locals (fun acc l -> acc + l.dropped) 0

let set_max_events n =
  if n < 0 then invalid_arg "Registry.set_max_events";
  Atomic.set max_events n
