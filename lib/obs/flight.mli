(** Always-on flight recorder: per-domain fixed-size rings of compact
    span/event records.

    Unlike the {!Registry} span buffers (armed explicitly, unbounded up
    to a cap, list-allocated), the flight recorder runs from process
    start: every {!Span.with_} and {!Event.emit} lands one record in the
    calling domain's ring, whether or not the registry switch is on.
    When a request later proves slow or failing, its complete span tree
    is still in the window and can be retained — tail-based sampling
    without deciding anything up front.

    Cost per record: one atomic load ({!on}), a handful of array stores.
    Span ids come from one process-wide atomic counter ({!next_id}) so
    parent links survive domain hops (acceptor dispatch → pool worker).

    Readers merge the rings without locks; a live writer can overwrite
    the oldest slots mid-snapshot, so treat the oldest records of a
    busy ring as best-effort.  Everything else — ids, parents, trace
    ids — is exact. *)

type kind = Span | Event

type record = {
  fr_kind : kind;
  fr_name : string;
  fr_ts_ns : int;  (** absolute monotonic clock, ns *)
  fr_dur_ns : int;  (** 0 for instant events *)
  fr_id : int;  (** span id; 0 for events *)
  fr_parent : int;  (** parent span id; 0 = root *)
  fr_dom : int;  (** domain that wrote the record *)
  fr_trace : string;  (** ambient trace id; [""] = none *)
}

val on : unit -> bool
(** True (the default) when records are being written. *)

val enable : unit -> unit

val disable : unit -> unit
(** For the telemetry-off ablation baseline and quiet-ring tests. *)

val default_capacity : int
(** Per-domain ring slots (4096). *)

val set_capacity : int -> unit
(** Resize every ring (clearing them) and set the capacity future
    domains allocate with.  Call at startup or a quiescent point. *)

val next_id : unit -> int
(** Mint a process-unique span id (one atomic fetch-and-add). *)

val record_span :
  ?trace:string ->
  id:int ->
  parent:int ->
  name:string ->
  t0_ns:int ->
  dur_ns:int ->
  unit ->
  unit
(** Write one completed span into the calling domain's ring. *)

val record_event : ?dur_ns:int -> string -> unit
(** Write one instant event; trace id and parent span come from the
    calling domain's ambient {!Registry} context. *)

type ring_stat = {
  rs_dom : int;
  rs_capacity : int;
  rs_records : int;  (** records ever written *)
  rs_dropped : int;  (** overwritten by the ring wrapping *)
  rs_occupancy : int;  (** live records in the window *)
}

val ring_stats : unit -> ring_stat list
(** Per-domain ring health, ascending domain id. *)

val records_total : unit -> int

val dropped_total : unit -> int

val snapshot : unit -> record list
(** The whole window, all domains, ascending timestamp. *)

val by_trace : string -> record list
(** The window filtered to one trace id — the raw material for a
    retained trace tree. *)

val to_chrome : unit -> Json.t
(** The window as a Chrome [trace_event] object: spans as ["X"]
    complete events (one lane per domain), events as instants,
    timestamps rebased to the window's oldest record. *)

val reset : unit -> unit
(** Empty every ring (tests). *)
