type counts = {
  minor_collections : int;
  major_collections : int;
  compactions : int;
  forced_major_collections : int;
  minor_words : float;
  promoted_words : float;
  major_words : float;
}

let zero_counts =
  {
    minor_collections = 0;
    major_collections = 0;
    compactions = 0;
    forced_major_collections = 0;
    minor_words = 0.0;
    promoted_words = 0.0;
    major_words = 0.0;
  }

let add_counts a b =
  {
    minor_collections = a.minor_collections + b.minor_collections;
    major_collections = a.major_collections + b.major_collections;
    compactions = a.compactions + b.compactions;
    forced_major_collections = a.forced_major_collections + b.forced_major_collections;
    minor_words = a.minor_words +. b.minor_words;
    promoted_words = a.promoted_words +. b.promoted_words;
    major_words = a.major_words +. b.major_words;
  }

(* --- Per-domain quick_stat deltas ----------------------------------------- *)

type cell = { dom : int; mutable base : Gc.stat option; mutable acc : counts }

let cells_mu = Mutex.create ()
let cells : cell list ref = ref []

let key =
  Domain.DLS.new_key (fun () ->
      let c = { dom = (Domain.self () :> int); base = None; acc = zero_counts } in
      Mutex.lock cells_mu;
      cells := c :: !cells;
      Mutex.unlock cells_mu;
      c)

(* Deltas of a domain's own monotonic counters; clamped so a counter
   surprise (e.g. a ravel across Gc.counters internals) can never make
   the accumulated pressure go backwards. *)
let delta (b : Gc.stat) (q : Gc.stat) =
  let di x y = max 0 (y - x) in
  let df x y = Float.max 0.0 (y -. x) in
  {
    minor_collections = di b.minor_collections q.minor_collections;
    major_collections = di b.major_collections q.major_collections;
    compactions = di b.compactions q.compactions;
    forced_major_collections = di b.forced_major_collections q.forced_major_collections;
    minor_words = df b.minor_words q.minor_words;
    promoted_words = df b.promoted_words q.promoted_words;
    major_words = df b.major_words q.major_words;
  }

let sample () =
  let c = Domain.DLS.get key in
  let q = Gc.quick_stat () in
  (match c.base with
  | Some b -> c.acc <- add_counts c.acc (delta b q)
  | None -> ());
  c.base <- Some q

let fold_cells f acc =
  Mutex.lock cells_mu;
  let cs = !cells in
  Mutex.unlock cells_mu;
  List.fold_left f acc (List.sort (fun a b -> compare a.dom b.dom) cs)

let counts () = fold_cells (fun acc c -> add_counts acc c.acc) zero_counts

let per_domain () = fold_cells (fun acc c -> (c.dom, c.acc) :: acc) [] |> List.rev

let heap_words () = (Gc.quick_stat ()).Gc.heap_words

(* --- Pause timing over runtime_events -------------------------------------- *)

(* Ring cells are keyed by the runtime's domain slot index (what the
   event stream reports), not [Domain.self]: slots are reused when
   domains come and go, so pause time is only meaningful process-wide
   and per-slot.  Nesting depth folds the runtime's nested phase events
   (a minor collection emits EV_MINOR around EV_MINOR_* sub-phases) into
   one top-level interval, so nothing is double counted. *)
type ring = { mutable depth : int; mutable t0 : int64; mutable total_ns : int64 }

let timing = Atomic.make false
let poll_mu = Mutex.create ()
let rings : (int, ring) Hashtbl.t = Hashtbl.create 8
let cursor : Runtime_events.cursor option ref = ref None
let lost = ref 0

let ring_cell id =
  match Hashtbl.find_opt rings id with
  | Some r -> r
  | None ->
      let r = { depth = 0; t0 = 0L; total_ns = 0L } in
      Hashtbl.add rings id r;
      r

let callbacks =
  lazy
    (let ts_ns ts = Runtime_events.Timestamp.to_int64 ts in
     let runtime_begin id ts _phase =
       let r = ring_cell id in
       if r.depth = 0 then r.t0 <- ts_ns ts;
       r.depth <- r.depth + 1
     in
     let runtime_end id ts _phase =
       let r = ring_cell id in
       if r.depth > 0 then begin
         r.depth <- r.depth - 1;
         if r.depth = 0 then r.total_ns <- Int64.add r.total_ns (Int64.sub (ts_ns ts) r.t0)
       end
     in
     let lost_events _id n = lost := !lost + n in
     Runtime_events.Callbacks.create ~runtime_begin ~runtime_end ~lost_events ())

let start_timing () =
  if Atomic.get timing then true
  else begin
    Mutex.lock poll_mu;
    let ok =
      if Atomic.get timing then true
      else
        try
          (* Keep the ring file out of the working directory unless the
             user already chose a location. *)
          if Sys.getenv_opt "OCAML_RUNTIME_EVENTS_DIR" = None then
            Unix.putenv "OCAML_RUNTIME_EVENTS_DIR" (Filename.get_temp_dir_name ());
          Runtime_events.start ();
          cursor := Some (Runtime_events.create_cursor None);
          Atomic.set timing true;
          true
        with Failure _ | Invalid_argument _ | Sys_error _ | Unix.Unix_error _ -> false
    in
    Mutex.unlock poll_mu;
    ok
  end

let timing_on () = Atomic.get timing

let poll () =
  if Atomic.get timing then begin
    Mutex.lock poll_mu;
    (match !cursor with
    | Some c -> (
        try ignore (Runtime_events.read_poll c (Lazy.force callbacks) None)
        with Failure _ -> ())
    | None -> ());
    Mutex.unlock poll_mu
  end

let gc_time_us () =
  Mutex.lock poll_mu;
  let total = Hashtbl.fold (fun _ r acc -> Int64.add acc r.total_ns) rings 0L in
  Mutex.unlock poll_mu;
  Int64.to_float total /. 1e3

let gc_time_by_ring () =
  Mutex.lock poll_mu;
  let l = Hashtbl.fold (fun id r acc -> (id, Int64.to_float r.total_ns /. 1e3) :: acc) rings [] in
  Mutex.unlock poll_mu;
  List.sort compare l

let lost_events () = !lost

let reset () =
  fold_cells (fun () c -> c.acc <- zero_counts) ();
  Mutex.lock poll_mu;
  Hashtbl.iter
    (fun _ r ->
      r.total_ns <- 0L;
      r.depth <- 0)
    rings;
  lost := 0;
  Mutex.unlock poll_mu
