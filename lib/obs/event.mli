(** Structured JSONL event log.

    One JSON object per line: [ts_us] (monotonic clock), [level],
    [event], the recording domain, the ambient trace id when one is set
    ({!Registry.with_trace}), then caller fields.  The daemon writes its
    per-request lines and slow-request warnings here ([serve
    --event-log FILE]); the sink is process-global.

    Independent of the registry's master switch: with no sink installed
    every {!emit} is one atomic load, and installing a sink does not
    require enabling span/counter recording.

    Volume knobs: {!set_level} drops lines below a severity;
    {!set_sample} keeps one in N of the Debug/Info lines that remain
    (counter-based, deterministic — Warn/Error always land). *)

type level = Debug | Info | Warn | Error

val level_to_string : level -> string

val level_of_string : string -> level option

val open_log : string -> unit
(** Truncate-open [path] as the sink (closing any previous one) and
    reset the {!emitted}/{!sampled_out} accounting.  Raises [Sys_error]
    when it cannot be created. *)

val set_channel : out_channel -> unit
(** Use an existing channel as the sink; {!close_log} will flush but not
    close it. *)

val close_log : unit -> unit
(** Flush and detach the sink (closing it only if {!open_log} opened
    it).  Subsequent emits are no-ops. *)

val set_level : level -> unit
(** Minimum severity that reaches the sink.  Default [Info]. *)

val set_sample : int -> unit
(** Keep one in [n] Debug/Info lines.  Default 1 (keep all).  Raises
    [Invalid_argument] when [n < 1]. *)

val emit : ?level:level -> ?fields:(string * Json.t) list -> string -> unit
(** Write one event line.  No-op without a sink; never raises on a
    broken sink (the daemon must not die because its log pipe did). *)

val emitted : unit -> int
(** Lines written since the sink was opened. *)

val sampled_out : unit -> int
(** Debug/Info lines dropped by the sampling knob. *)
