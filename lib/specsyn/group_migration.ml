let run ?(max_passes = 8) ?initial ?replica (problem : Search.problem) =
  Slif_obs.Span.with_ "search.group_migration" @@ fun () ->
  let s = Slif.Graph.slif problem.graph in
  let part =
    match initial with Some p -> Slif.Partition.copy p | None -> Search.seed_partition s
  in
  let eng =
    match replica with
    | Some eng ->
        Engine.acquire eng part;
        eng
    | None -> Engine.of_problem problem part
  in
  let n = Array.length s.nodes in
  let current_cost = ref (Engine.cost eng) in
  let improved = ref true in
  let passes = ref 0 in
  while !improved && !passes < max_passes do
    improved := false;
    incr passes;
    Slif_obs.Counter.incr "search.gm_passes";
    let locked = Array.make n false in
    (* A pass: commit the best single move among unlocked nodes, lock the
       moved node, repeat; keep the best state seen during the pass. *)
    let best_pass_cost = ref !current_cost in
    let best_pass_part = ref (Slif.Partition.copy part) in
    let continue_pass = ref true in
    while !continue_pass do
      let best_move = ref None in
      for id = 0 to n - 1 do
        if not locked.(id) then begin
          let original = Slif.Partition.comp_of_exn part id in
          Array.iter
            (fun comp ->
              if comp <> original then begin
                let c = Engine.propose eng (Engine.Move_node { node = id; to_ = comp }) in
                Engine.rollback eng;
                match !best_move with
                | Some (_, _, bc) when bc <= c -> ()
                | _ -> best_move := Some (id, comp, c)
              end)
            (Engine.candidates eng id)
        end
      done;
      match !best_move with
      | None -> continue_pass := false
      | Some (id, comp, c) ->
          ignore (Engine.propose eng (Engine.Move_node { node = id; to_ = comp }));
          Engine.commit eng;
          locked.(id) <- true;
          current_cost := c;
          if c < !best_pass_cost then begin
            best_pass_cost := c;
            best_pass_part := Slif.Partition.copy part;
            improved := true
          end;
          (* Stop early when every node is locked. *)
          if Array.for_all (fun l -> l) locked then continue_pass := false
    done;
    (* Revert to the best prefix of the pass, as one atomic group move. *)
    (match Engine.moves_to eng !best_pass_part with
    | [] -> ()
    | moves ->
        ignore (Engine.propose eng (Engine.Move_group moves));
        Engine.commit eng);
    current_cost := !best_pass_cost
  done;
  { Search.part; cost = !current_cost; evaluated = Engine.moves_scored eng + 1 }
