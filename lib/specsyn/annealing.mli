(** Simulated-annealing partitioner.

    Random single-object moves (a node to a feasible component, or a
    channel to another bus when the allocation has several) accepted by
    the Metropolis criterion under a geometric cooling schedule.  This is
    the "algorithms that explore thousands of possible designs" workload
    the paper's estimation speed enables; the run reports how many
    partitions were scored.

    With [restarts > 1] the run anneals that many independent chains and
    keeps the best (ties: lowest chain index).  Chain [k] draws from the
    private stream [Slif_util.Prng.derive ~root:params.seed k] over its
    own cloned partition and engine, so the sweep result is a pure
    function of [(params, restarts)] — identical with or without a pool,
    at any [jobs].  A single-restart run keeps the historical stream
    [Prng.create params.seed]. *)

type params = {
  initial_temp : float;
  cooling : float;        (* geometric factor per step, e.g. 0.995 *)
  steps : int;
  seed : int;
}

val default_params : params

val run :
  ?pool:Slif_util.Pool.t ->
  ?restarts:int ->
  ?params:params ->
  ?initial:Slif.Partition.t ->
  Search.problem ->
  Search.solution
(** [run problem] anneals [restarts] chains (default 1) from [initial]
    (default: the all-software seed partition).  [evaluated] sums over
    chains.  With [?pool], chains run in parallel with identical
    results.  Raises [Invalid_argument] when [restarts <= 0]. *)
