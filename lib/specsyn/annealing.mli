(** Simulated-annealing partitioner.

    Random single-object moves (a node to a feasible component, or a
    channel to another bus when the allocation has several) accepted by
    the Metropolis criterion under a geometric cooling schedule.  This is
    the "algorithms that explore thousands of possible designs" workload
    the paper's estimation speed enables; the run reports how many
    partitions were scored.

    With [restarts > 1] the run anneals that many independent chains and
    keeps the best (ties: lowest chain index).  Chain [k] draws from the
    private stream [Slif_util.Prng.derive ~root:params.seed k] over its
    own cloned partition and engine, so the sweep result is a pure
    function of [(params, restarts)] — identical with or without a pool,
    at any [jobs].  A single-restart run keeps the historical stream
    [Prng.create params.seed]. *)

type params = {
  initial_temp : float;
  cooling : float;        (* geometric factor per step, e.g. 0.995 *)
  steps : int;
  seed : int;
}

val default_params : params

val run :
  ?pool:Slif_util.Pool.t ->
  ?restarts:int ->
  ?params:params ->
  ?initial:Slif.Partition.t ->
  ?chunk:int ->
  ?replica:(unit -> Engine.t) ->
  Search.problem ->
  Search.solution
(** [run problem] anneals [restarts] chains (default 1) from [initial]
    (default: the all-software seed partition).  [evaluated] sums over
    chains.  With [?pool], chains run in parallel with identical
    results.

    Multi-restart runs process chains as contiguous index chunks of
    size [chunk] (default {!Slif_util.Pool.default_chunk}) — coarse
    work units whose per-chunk winners fold exactly like the chains
    themselves, so results are byte-identical for every [chunk] and
    [jobs].  [replica] supplies the calling domain's reusable engine
    (resolved inside each task); every chain then starts from one
    {!Engine.acquire} rescoring instead of a full engine build, with
    bitwise-identical costs.  Raises [Invalid_argument] when
    [restarts <= 0]. *)
