let random_partition rng (s : Slif.Types.t) =
  let part = Slif.Partition.create s in
  Array.iteri
    (fun i node ->
      let choices = Search.comps_for_node s node in
      let comp = List.nth choices (Slif_util.Prng.int rng (List.length choices)) in
      Slif.Partition.assign_node part ~node:i comp)
    s.nodes;
  Array.iteri
    (fun i _ ->
      Slif.Partition.assign_chan part ~chan:i
        ~bus:(Slif_util.Prng.int rng (Array.length s.buses)))
    s.chans;
  part

let run ?(seed = 1) ~restarts (problem : Search.problem) =
  if restarts <= 0 then invalid_arg "Random_part.run: restarts must be positive";
  Slif_obs.Span.with_ "search.random"
    ~args:[ ("restarts", string_of_int restarts) ]
  @@ fun () ->
  Slif_obs.Counter.add "search.restarts" restarts;
  let s = Slif.Graph.slif problem.graph in
  let rng = Slif_util.Prng.create seed in
  let best = ref None in
  for _ = 1 to restarts do
    let part = random_partition rng s in
    let est = Search.estimator problem.graph part in
    let cost = Search.evaluate problem est in
    match !best with
    | Some (_, c) when c <= cost -> ()
    | _ -> best := Some (part, cost)
  done;
  match !best with
  | Some (part, cost) -> { Search.part; cost; evaluated = restarts }
  | None -> assert false
