let random_partition rng (s : Slif.Types.t) =
  let part = Slif.Partition.create s in
  (* Candidate arrays are built once per partition, so each draw is O(1)
     instead of the List.nth walk this used to do. *)
  let procs = Array.init (Array.length s.procs) (fun i -> Slif.Partition.Cproc i) in
  let all =
    Array.append procs (Array.init (Array.length s.mems) (fun m -> Slif.Partition.Cmem m))
  in
  Array.iteri
    (fun i (node : Slif.Types.node) ->
      let choices =
        match node.n_kind with Slif.Types.Behavior _ -> procs | Slif.Types.Variable _ -> all
      in
      let comp = choices.(Slif_util.Prng.int rng (Array.length choices)) in
      Slif.Partition.assign_node part ~node:i comp)
    s.nodes;
  Array.iteri
    (fun i _ ->
      Slif.Partition.assign_chan part ~chan:i
        ~bus:(Slif_util.Prng.int rng (Array.length s.buses)))
    s.chans;
  part

let run ?(seed = 1) ~restarts (problem : Search.problem) =
  if restarts <= 0 then invalid_arg "Random_part.run: restarts must be positive";
  Slif_obs.Span.with_ "search.random"
    ~args:[ ("restarts", string_of_int restarts) ]
  @@ fun () ->
  Slif_obs.Counter.add "search.restarts" restarts;
  let s = Slif.Graph.slif problem.graph in
  let rng = Slif_util.Prng.create seed in
  let best = ref None in
  for _ = 1 to restarts do
    let part = random_partition rng s in
    let cost = Engine.cost (Engine.of_problem problem part) in
    match !best with
    | Some (_, c) when c <= cost -> ()
    | _ -> best := Some (part, cost)
  done;
  match !best with
  | Some (part, cost) -> { Search.part; cost; evaluated = restarts }
  | None -> assert false
