let random_partition rng (s : Slif.Types.t) =
  let part = Slif.Partition.create s in
  (* Candidate arrays are built once per partition, so each draw is O(1)
     instead of the List.nth walk this used to do. *)
  let procs = Array.init (Array.length s.procs) (fun i -> Slif.Partition.Cproc i) in
  let all =
    Array.append procs (Array.init (Array.length s.mems) (fun m -> Slif.Partition.Cmem m))
  in
  Array.iteri
    (fun i (node : Slif.Types.node) ->
      let choices =
        match node.n_kind with Slif.Types.Behavior _ -> procs | Slif.Types.Variable _ -> all
      in
      let comp = choices.(Slif_util.Prng.int rng (Array.length choices)) in
      Slif.Partition.assign_node part ~node:i comp)
    s.nodes;
  Array.iteri
    (fun i _ ->
      Slif.Partition.assign_chan part ~chan:i
        ~bus:(Slif_util.Prng.int rng (Array.length s.buses)))
    s.chans;
  part

(* Earlier restart wins ties, matching the serial first-strictly-better
   fold — so the selected solution is independent of execution order. *)
let best_of solutions =
  match solutions with
  | [] -> invalid_arg "Random_part: no solutions"
  | first :: rest ->
      List.fold_left
        (fun (best : Search.solution) (sol : Search.solution) ->
          if sol.Search.cost < best.Search.cost then sol else best)
        first rest

(* Restart [k] draws from its own derived stream, never from a shared
   generator, so every restart is a pure function of (seed, k) and a
   sweep result is bit-identical whether the pool runs it on one domain
   or eight — and, because [Engine.acquire] rescoring is bitwise
   [Engine.create]'s, whether it scored on a per-domain replica or a
   fresh engine. *)
let eval_one ?replica ~seed (problem : Search.problem) s k =
  let rng = Slif_util.Prng.derive ~root:seed k in
  let part = random_partition rng s in
  let cost =
    match replica with
    | Some get ->
        let eng = get () in
        Engine.acquire eng part;
        Engine.cost eng
    | None -> Engine.cost (Engine.of_problem problem part)
  in
  { Search.part; cost; evaluated = 1 }

(* A range evaluates a contiguous index run and keeps its earliest
   strict minimum — the same left fold [best_of] does, so folding
   per-range winners afterwards selects the same restart for every
   slicing of the index space. *)
let run_range ?replica ?(seed = 1) ~start ~len (problem : Search.problem) =
  if start < 0 || len <= 0 then invalid_arg "Random_part.run_range: bad range";
  Slif_obs.Counter.add "search.restarts" len;
  let s = Slif.Graph.slif problem.Search.graph in
  let best = ref (eval_one ?replica ~seed problem s start) in
  for k = start + 1 to start + len - 1 do
    let sol = eval_one ?replica ~seed problem s k in
    if sol.Search.cost < !best.Search.cost then best := sol
  done;
  { !best with Search.evaluated = len }

let run ?pool ?(seed = 1) ?chunk ?replica ~restarts (problem : Search.problem) =
  if restarts <= 0 then invalid_arg "Random_part.run: restarts must be positive";
  Slif_obs.Span.with_ "search.random"
    ~args:[ ("restarts", string_of_int restarts) ]
  @@ fun () ->
  let jobs = match pool with Some p -> Slif_util.Pool.jobs p | None -> 1 in
  let chunk =
    match chunk with Some c -> c | None -> Slif_util.Pool.default_chunk ~jobs restarts
  in
  let pieces = Slif_util.Pool.chunks ~chunk restarts in
  let run_chunk (start, len) = run_range ?replica ~seed ~start ~len problem in
  let bests =
    match pool with
    | Some pool -> Slif_util.Pool.map pool run_chunk pieces
    | None -> List.map run_chunk pieces
  in
  { (best_of bests) with Search.evaluated = restarts }
