let random_partition rng (s : Slif.Types.t) =
  let part = Slif.Partition.create s in
  (* Candidate arrays are built once per partition, so each draw is O(1)
     instead of the List.nth walk this used to do. *)
  let procs = Array.init (Array.length s.procs) (fun i -> Slif.Partition.Cproc i) in
  let all =
    Array.append procs (Array.init (Array.length s.mems) (fun m -> Slif.Partition.Cmem m))
  in
  Array.iteri
    (fun i (node : Slif.Types.node) ->
      let choices =
        match node.n_kind with Slif.Types.Behavior _ -> procs | Slif.Types.Variable _ -> all
      in
      let comp = choices.(Slif_util.Prng.int rng (Array.length choices)) in
      Slif.Partition.assign_node part ~node:i comp)
    s.nodes;
  Array.iteri
    (fun i _ ->
      Slif.Partition.assign_chan part ~chan:i
        ~bus:(Slif_util.Prng.int rng (Array.length s.buses)))
    s.chans;
  part

(* Earlier restart wins ties, matching the serial first-strictly-better
   fold — so the selected solution is independent of execution order. *)
let best_of solutions =
  match solutions with
  | [] -> invalid_arg "Random_part: no solutions"
  | first :: rest ->
      List.fold_left
        (fun (best : Search.solution) (sol : Search.solution) ->
          if sol.Search.cost < best.Search.cost then sol else best)
        first rest

let run ?pool ?(seed = 1) ~restarts (problem : Search.problem) =
  if restarts <= 0 then invalid_arg "Random_part.run: restarts must be positive";
  Slif_obs.Span.with_ "search.random"
    ~args:[ ("restarts", string_of_int restarts) ]
  @@ fun () ->
  Slif_obs.Counter.add "search.restarts" restarts;
  let s = Slif.Graph.slif problem.Search.graph in
  (* Restart [k] draws from its own derived stream, never from a shared
     generator, so every restart is a pure function of (seed, k) and the
     sweep result is bit-identical whether the pool runs it on one domain
     or eight. *)
  let restart rng () =
    let part = random_partition rng s in
    let cost = Engine.cost (Engine.of_problem problem part) in
    { Search.part; cost; evaluated = 1 }
  in
  let tasks = List.init restarts (fun _ -> ()) in
  let solutions =
    match pool with
    | Some pool -> Slif_util.Pool.map_seeded pool ~seed restart tasks
    | None -> List.mapi (fun k () -> restart (Slif_util.Prng.derive ~root:seed k) ()) tasks
  in
  let best = best_of solutions in
  { best with Search.evaluated = restarts }
