(** Transactional move engine with delta cost evaluation.

    Every partitioning algorithm explores the design space by perturbing a
    partition one object at a time, and the paper's claim is that SLIF
    annotations make each perturbation cheap to re-score.  {!Cost.evaluate},
    however, re-sweeps every processor, memory, bus and deadline per score.
    The engine restores the advertised asymptotics: it maintains the cost
    terms of equations 1-6 as incremental aggregates —

    - per-component size sums (eqs. 4-5),
    - per-component x per-bus counts of boundary-crossing channels, from
      which I/O pins follow (eq. 6),
    - per-channel bitrates and their per-bus sums (eqs. 2-3),
    - per-deadline execution-time slack (eq. 1, via the memoizing
      {!Slif.Estimate}) —

    so scoring a move recomputes only the violations of the components,
    buses and deadlines the move actually perturbs.  A node move touches
    its source and destination components; a channel move touches the two
    buses and invalidates only the channel's source node and its
    transitive accessors (replacing the old [invalidate_all]).

    The API is transactional: {!propose} applies a move and returns the
    would-be total cost, then exactly one of {!commit} or {!rollback}
    resolves it.  Rollback replays an undo journal, restoring the exact
    prior partition (mapping and version) and aggregate state — every
    touched cell is written back to its previous bit pattern, so no
    floating-point drift accumulates over long searches.  {!Cost.evaluate}
    on a fresh estimator remains the oracle the engine is property-tested
    against (test/test_engine.ml). *)

type move =
  | Move_node of { node : int; to_ : Slif.Partition.comp }
  | Move_chan of { chan : int; to_bus : int }
  | Move_group of move list
      (** Compound move, applied in order and committed or rolled back
          atomically.  Submoves may touch the same objects repeatedly. *)

type t

val create :
  ?weights:Cost.weights ->
  ?constraints:Cost.constraints ->
  Slif.Graph.t ->
  Slif.Partition.t ->
  t
(** Build the aggregates for the partition's current (total) state.  The
    engine owns the partition from here on: mutating it behind the
    engine's back leaves the aggregates stale.  Raises [Invalid_argument]
    when the partition is partial or a node lacks a weight for its
    component's technology (as {!Cost.evaluate} would). *)

val of_problem : Search.problem -> Slif.Partition.t -> t
(** {!create} with the problem's weights and constraints. *)

val copy : t -> t
(** An engine over a {!Slif.Partition.copy} of the current partition with
    the same weights and constraints, sharing no mutable cell with the
    original.  Costs one full initial scoring (the aggregates are
    rebuilt, which also bumps the partitions-scored counter like
    {!create}).  Raises [Invalid_argument] while a transaction is
    pending.

    @deprecated as the parallel-sweep isolation primitive.  A copy per
    task rebuilds the incident lists and the estimator on every clone
    and was the dominant per-task overhead of the old sweeps; the
    share-nothing architecture keeps one engine per domain and
    {!acquire}s it per work item instead (DESIGN.md §13).  [copy]
    remains for callers that genuinely need two live engines over
    snapshots of the same state. *)

val acquire : t -> Slif.Partition.t -> unit
(** [acquire t part] re-points the engine (and its estimator) at [part]
    — a fresh total partition of the same SLIF — zeroes the aggregates
    and rescores them with exactly {!create}'s arithmetic, so costs
    reported afterwards are bitwise what a fresh engine over [part]
    would report.  The immutable precompute (incident channel lists,
    candidate arrays, resolved deadlines, the estimator's memo arrays)
    is reused, and {!moves_scored} restarts at zero.  This is the
    per-domain replica primitive of the share-nothing sweeps: one engine
    per pool worker, re-acquired per work item, no allocation shared
    across domains.  Weights and constraints keep their {!create}-time
    values.  Raises [Invalid_argument] while a transaction is pending
    (and, like {!create}, when [part] is partial or a weight is
    missing). *)

val graph : t -> Slif.Graph.t

val partition : t -> Slif.Partition.t
(** The live partition — reflects the pending move while a transaction is
    open.  Copy it (e.g. to snapshot a best-so-far) rather than mutating. *)

val estimate : t -> Slif.Estimate.t
(** The engine's estimator, kept incrementally coherent; algorithms may
    query it for metrics beyond the cost terms (memoized values are
    shared with the engine's own scoring). *)

val cost : t -> float
(** Total weighted violation of the current state (pending move
    included), equal to {!Cost.total} on a fresh estimator. *)

val breakdown : t -> Cost.breakdown
(** Per-term violations of the current state, equal to {!Cost.evaluate}. *)

val comp_size : t -> Slif.Partition.comp -> float
(** The maintained size aggregate of one component (eqs. 4-5) — what
    {!Slif.Estimate.size} would recompute by sweeping the component's
    members.  O(1). *)

(* --- Transactions ------------------------------------------------------- *)

val propose : t -> move -> float
(** Apply the move, delta-update the aggregates, and return the new total
    cost.  The transaction stays pending until {!commit} or {!rollback}.
    Raises [Invalid_argument] when a transaction is already pending, or
    when the move is infeasible (e.g. a behavior onto a memory, an
    out-of-range id) — in that case the engine state is unchanged.
    Moves to an object's current location are legal no-ops. *)

val commit : t -> unit
(** Keep the pending move.  Raises [Invalid_argument] when none is. *)

val rollback : t -> unit
(** Undo the pending move: partition mapping, partition version,
    estimator cache validity and every aggregate return to their exact
    pre-{!propose} state.  Raises [Invalid_argument] when no transaction
    is pending. *)

val pending : t -> bool

val moves_scored : t -> int
(** Number of {!propose} calls so far — the engine's partitions-scored
    counter, reported by the algorithms as {!Search.solution.evaluated}. *)

(* --- Move generation ----------------------------------------------------- *)

val candidates : t -> int -> Slif.Partition.comp array
(** Feasible components for a node (behaviors: processors; variables:
    processors then memories), as a precomputed array shared across calls
    — O(1) uniform choice, unlike the list-walking the algorithms used to
    do.  Do not mutate. *)

val random_move : t -> Slif_util.Prng.t -> move option
(** One uniform single-object move: with probability 1/4 (when the
    allocation has several buses) a channel re-bussing, otherwise a node
    move to a feasible component.  [None] when the draw lands on the
    object's current location — callers just skip that step, keeping
    acceptance statistics comparable across algorithms. *)

val moves_to : t -> Slif.Partition.t -> move list
(** The single-object moves transforming the engine's current partition
    into [target] (same SLIF), suitable for one atomic {!Move_group} —
    how group migration rewinds to the best prefix of a pass. *)
