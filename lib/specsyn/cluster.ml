type params = { w_comm : float; w_shared : float; balance_limit : float }

let default_params = { w_comm = 1.0; w_shared = 0.2; balance_limit = 0.6 }

let size_proxy (node : Slif.Types.node) =
  match node.n_size with [] -> 1.0 | (_, v) :: _ -> max 1.0 v

(* Direct traffic between two nodes: bits x frequency over channels in
   either direction. *)
let traffic graph a b =
  let one src dst =
    List.fold_left
      (fun acc (c : Slif.Types.channel) ->
        match c.c_dst with
        | Slif.Types.Dnode d when d = dst ->
            acc +. (c.c_accfreq *. float_of_int c.c_bits)
        | _ -> acc)
      0.0
      (Slif.Graph.out_chans graph src)
  in
  one a b +. one b a

let shares_accessor graph a b =
  let srcs id =
    List.sort_uniq compare
      (List.map (fun (c : Slif.Types.channel) -> c.c_src) (Slif.Graph.in_chans graph id))
  in
  List.exists (fun s -> List.mem s (srcs b)) (srcs a)

let closeness ?(params = default_params) graph a b =
  if a = b then 0.0
  else
    let comm = params.w_comm *. traffic graph a b in
    let shared = if shares_accessor graph a b then params.w_shared else 0.0 in
    comm +. shared

let clusters ?(params = default_params) graph ~k =
  if k < 1 then invalid_arg "Cluster.clusters: k must be positive";
  let s = Slif.Graph.slif graph in
  let n = Array.length s.Slif.Types.nodes in
  let total_size =
    Array.fold_left (fun acc node -> acc +. size_proxy node) 0.0 s.Slif.Types.nodes
  in
  (* Union-find over nodes, with cluster sizes for the balance penalty. *)
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let cluster_size = Array.map size_proxy s.Slif.Types.nodes in
  (* Pairwise closeness matrix between cluster representatives, updated on
     merge by summation (group-average-free linkage keeps it O(n^2)). *)
  let close = Array.make_matrix n n 0.0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let c = closeness ~params graph i j in
      close.(i).(j) <- c;
      close.(j).(i) <- c
    done
  done;
  let n_clusters = ref n in
  let continue_ = ref true in
  while !n_clusters > k && !continue_ do
    (* Best feasible pair of representatives. *)
    let best = ref None in
    for i = 0 to n - 1 do
      if find i = i then
        for j = i + 1 to n - 1 do
          if find j = j && close.(i).(j) > 0.0 then begin
            let merged_share = (cluster_size.(i) +. cluster_size.(j)) /. total_size in
            if merged_share <= params.balance_limit || !n_clusters <= k + 1 then
              match !best with
              | Some (_, _, c) when c >= close.(i).(j) -> ()
              | _ -> best := Some (i, j, close.(i).(j))
          end
        done
    done;
    match !best with
    | None -> continue_ := false
    | Some (i, j, _) ->
        Slif_obs.Counter.incr "search.cluster_merges";
        parent.(j) <- i;
        cluster_size.(i) <- cluster_size.(i) +. cluster_size.(j);
        for m = 0 to n - 1 do
          if m <> i then begin
            close.(i).(m) <- close.(i).(m) +. close.(j).(m);
            close.(m).(i) <- close.(i).(m)
          end
        done;
        decr n_clusters
  done;
  let buckets = Hashtbl.create 16 in
  for i = n - 1 downto 0 do
    let root = find i in
    Hashtbl.replace buckets root (i :: Option.value (Hashtbl.find_opt buckets root) ~default:[])
  done;
  Hashtbl.fold (fun _ members acc -> members :: acc) buckets []
  |> List.sort (fun a b -> compare (List.hd a) (List.hd b))

let run ?(params = default_params) ?replica ~k (problem : Search.problem) =
  Slif_obs.Span.with_ "search.clustering" ~args:[ ("k", string_of_int k) ]
  @@ fun () ->
  let graph = problem.Search.graph in
  let s = Slif.Graph.slif graph in
  let groups = clusters ~params graph ~k in
  let part = Search.seed_partition s in
  (* Assign clusters largest-first onto the processor with the least
     accumulated size (memories only take all-variable clusters). *)
  let procs = Array.mapi (fun i _ -> (Slif.Partition.Cproc i, ref 0.0)) s.Slif.Types.procs in
  let group_size members =
    List.fold_left (fun acc id -> acc +. size_proxy s.Slif.Types.nodes.(id)) 0.0 members
  in
  let ordered =
    List.sort (fun a b -> compare (group_size b) (group_size a)) groups
  in
  List.iter
    (fun members ->
      let lightest =
        Array.fold_left
          (fun acc pair ->
            match acc with
            | None -> Some pair
            | Some (_, best_load) -> if !(snd pair) < !best_load then Some pair else acc)
          None procs
      in
      match lightest with
      | None -> ()
      | Some (target, load_ref) ->
          List.iter
            (fun id ->
              Slif.Partition.assign_node part ~node:id target;
              load_ref := !load_ref +. size_proxy s.Slif.Types.nodes.(id))
            members)
    ordered;
  let cost =
    match replica with
    | Some eng ->
        Engine.acquire eng part;
        Engine.cost eng
    | None -> Engine.cost (Engine.of_problem problem part)
  in
  { Search.part; cost; evaluated = 1 }
