type params = { initial_temp : float; cooling : float; steps : int; seed : int }

let default_params = { initial_temp = 1.0; cooling = 0.995; steps = 2000; seed = 7 }

(* One annealing chain over its own partition, engine and generator. *)
let run_chain ~params ~initial ~rng (problem : Search.problem) =
  let s = Slif.Graph.slif problem.Search.graph in
  let part =
    match initial with Some p -> Slif.Partition.copy p | None -> Search.seed_partition s
  in
  let eng = Engine.of_problem problem part in
  let cost = ref (Engine.cost eng) in
  let best_part = ref (Slif.Partition.copy part) in
  let best_cost = ref !cost in
  let temp = ref params.initial_temp in
  for _ = 1 to params.steps do
    (match Engine.random_move eng rng with
    | None -> ()
    | Some move ->
        let c = Engine.propose eng move in
        Slif_obs.Counter.incr "search.moves_proposed";
        let accept =
          c <= !cost
          || (!temp > 1e-9
             && Slif_util.Prng.float rng 1.0 < exp ((!cost -. c) /. !temp))
        in
        if accept then begin
          Engine.commit eng;
          Slif_obs.Counter.incr "search.moves_accepted";
          cost := c;
          if c < !best_cost then begin
            best_cost := c;
            best_part := Slif.Partition.copy (Engine.partition eng)
          end
        end
        else begin
          Slif_obs.Counter.incr "search.moves_rejected";
          Engine.rollback eng
        end);
    temp := !temp *. params.cooling
  done;
  { Search.part = !best_part; cost = !best_cost; evaluated = Engine.moves_scored eng + 1 }

let run ?pool ?(restarts = 1) ?(params = default_params) ?initial
    (problem : Search.problem) =
  if restarts <= 0 then invalid_arg "Annealing.run: restarts must be positive";
  Slif_obs.Span.with_ "search.annealing"
    ~args:
      [ ("steps", string_of_int params.steps); ("restarts", string_of_int restarts) ]
  @@ fun () ->
  if restarts = 1 then
    (* The single-chain path keeps the historical stream: the chain draws
       from [Prng.create params.seed] directly. *)
    run_chain ~params ~initial ~rng:(Slif_util.Prng.create params.seed) problem
  else begin
    (* Chain [k] anneals from its own derived stream over its own cloned
       partition and engine; the best chain (ties: lowest index) wins, so
       the restart sweep is a pure function of (params.seed, restarts). *)
    let chain rng () = run_chain ~params ~initial ~rng problem in
    let tasks = List.init restarts (fun _ -> ()) in
    let solutions =
      match pool with
      | Some pool -> Slif_util.Pool.map_seeded pool ~seed:params.seed chain tasks
      | None ->
          List.mapi
            (fun k () -> chain (Slif_util.Prng.derive ~root:params.seed k) ())
            tasks
    in
    match solutions with
    | [] -> assert false
    | first :: rest ->
        let best =
          List.fold_left
            (fun (best : Search.solution) (sol : Search.solution) ->
              if sol.Search.cost < best.Search.cost then sol else best)
            first rest
        in
        let evaluated =
          List.fold_left (fun acc (s : Search.solution) -> acc + s.Search.evaluated) 0
            solutions
        in
        { best with Search.evaluated }
  end
