type params = { initial_temp : float; cooling : float; steps : int; seed : int }

let default_params = { initial_temp = 1.0; cooling = 0.995; steps = 2000; seed = 7 }

type move =
  | Node_move of int * Slif.Partition.comp * Slif.Partition.comp  (* node, from, to *)
  | Chan_move of int * int * int                                  (* chan, from, to *)

let random_move rng (s : Slif.Types.t) part =
  let n_nodes = Array.length s.nodes in
  let n_buses = Array.length s.buses in
  let try_chan = n_buses > 1 && Slif_util.Prng.int rng 4 = 0 in
  if try_chan then begin
    let c = Slif_util.Prng.int rng (Array.length s.chans) in
    let from = Slif.Partition.bus_of_exn part c in
    let to_ = Slif_util.Prng.int rng n_buses in
    if to_ = from then None else Some (Chan_move (c, from, to_))
  end
  else begin
    let id = Slif_util.Prng.int rng n_nodes in
    let from = Slif.Partition.comp_of_exn part id in
    let choices = Search.comps_for_node s s.nodes.(id) in
    let to_ = List.nth choices (Slif_util.Prng.int rng (List.length choices)) in
    if to_ = from then None else Some (Node_move (id, from, to_))
  end

let apply_move est part = function
  | Node_move (id, _, to_) ->
      Slif.Partition.assign_node part ~node:id to_;
      Slif.Estimate.note_node_moved est id
  | Chan_move (c, _, to_) ->
      Slif.Partition.assign_chan part ~chan:c ~bus:to_;
      Slif.Estimate.invalidate_all est

let undo_move est part = function
  | Node_move (id, from, _) ->
      Slif.Partition.assign_node part ~node:id from;
      Slif.Estimate.note_node_moved est id
  | Chan_move (c, from, _) ->
      Slif.Partition.assign_chan part ~chan:c ~bus:from;
      Slif.Estimate.invalidate_all est

let run ?(params = default_params) ?initial (problem : Search.problem) =
  Slif_obs.Span.with_ "search.annealing"
    ~args:[ ("steps", string_of_int params.steps) ]
  @@ fun () ->
  let s = Slif.Graph.slif problem.graph in
  let part =
    match initial with Some p -> Slif.Partition.copy p | None -> Search.seed_partition s
  in
  let est = Search.estimator problem.graph part in
  let rng = Slif_util.Prng.create params.seed in
  let evaluated = ref 1 in
  let cost = ref (Search.evaluate problem est) in
  let best_part = ref (Slif.Partition.copy part) in
  let best_cost = ref !cost in
  let temp = ref params.initial_temp in
  for _ = 1 to params.steps do
    (match random_move rng s part with
    | None -> ()
    | Some move ->
        apply_move est part move;
        incr evaluated;
        Slif_obs.Counter.incr "search.moves_proposed";
        let c = Search.evaluate problem est in
        let accept =
          c <= !cost
          || (!temp > 1e-9
             && Slif_util.Prng.float rng 1.0 < exp ((!cost -. c) /. !temp))
        in
        if accept then begin
          Slif_obs.Counter.incr "search.moves_accepted";
          cost := c;
          if c < !best_cost then begin
            best_cost := c;
            best_part := Slif.Partition.copy part
          end
        end
        else begin
          Slif_obs.Counter.incr "search.moves_rejected";
          undo_move est part move
        end);
    temp := !temp *. params.cooling
  done;
  { Search.part = !best_part; cost = !best_cost; evaluated = !evaluated }
