type params = { initial_temp : float; cooling : float; steps : int; seed : int }

let default_params = { initial_temp = 1.0; cooling = 0.995; steps = 2000; seed = 7 }

(* One annealing chain over its own partition, engine and generator.
   [replica] substitutes a re-acquired per-domain engine for the fresh
   build — bitwise the same scoring, none of the construction cost. *)
let run_chain ?replica ~params ~initial ~rng (problem : Search.problem) =
  let s = Slif.Graph.slif problem.Search.graph in
  let part =
    match initial with Some p -> Slif.Partition.copy p | None -> Search.seed_partition s
  in
  let eng =
    match replica with
    | Some eng ->
        Engine.acquire eng part;
        eng
    | None -> Engine.of_problem problem part
  in
  let cost = ref (Engine.cost eng) in
  let best_part = ref (Slif.Partition.copy part) in
  let best_cost = ref !cost in
  let temp = ref params.initial_temp in
  for _ = 1 to params.steps do
    (match Engine.random_move eng rng with
    | None -> ()
    | Some move ->
        let c = Engine.propose eng move in
        Slif_obs.Counter.incr "search.moves_proposed";
        let accept =
          c <= !cost
          || (!temp > 1e-9
             && Slif_util.Prng.float rng 1.0 < exp ((!cost -. c) /. !temp))
        in
        if accept then begin
          Engine.commit eng;
          Slif_obs.Counter.incr "search.moves_accepted";
          cost := c;
          if c < !best_cost then begin
            best_cost := c;
            best_part := Slif.Partition.copy (Engine.partition eng)
          end
        end
        else begin
          Slif_obs.Counter.incr "search.moves_rejected";
          Engine.rollback eng
        end);
    temp := !temp *. params.cooling
  done;
  { Search.part = !best_part; cost = !best_cost; evaluated = Engine.moves_scored eng + 1 }

let run ?pool ?(restarts = 1) ?(params = default_params) ?initial ?chunk ?replica
    (problem : Search.problem) =
  if restarts <= 0 then invalid_arg "Annealing.run: restarts must be positive";
  Slif_obs.Span.with_ "search.annealing"
    ~args:
      [ ("steps", string_of_int params.steps); ("restarts", string_of_int restarts) ]
  @@ fun () ->
  if restarts = 1 then
    (* The single-chain path keeps the historical stream: the chain draws
       from [Prng.create params.seed] directly. *)
    let replica = Option.map (fun get -> get ()) replica in
    run_chain ?replica ~params ~initial ~rng:(Slif_util.Prng.create params.seed) problem
  else begin
    (* Chain [k] anneals from its own derived stream over its own cloned
       partition; the best chain (ties: lowest index) wins, so the
       restart sweep is a pure function of (params.seed, restarts).
       Chains are processed as contiguous chunks — one coarse task per
       chunk, all of a chunk's chains sharing the executing domain's
       replica when one is supplied — and per-chunk winners fold exactly
       like the chains themselves, so the chunk size never shows. *)
    let run_chunk (start, len) =
      let replica = Option.map (fun get -> get ()) replica in
      let chain k =
        run_chain ?replica ~params ~initial
          ~rng:(Slif_util.Prng.derive ~root:params.seed k)
          problem
      in
      let best = ref (chain start) in
      let evaluated = ref !best.Search.evaluated in
      for k = start + 1 to start + len - 1 do
        let sol = chain k in
        evaluated := !evaluated + sol.Search.evaluated;
        if sol.Search.cost < !best.Search.cost then best := sol
      done;
      (!best, !evaluated)
    in
    let jobs = match pool with Some p -> Slif_util.Pool.jobs p | None -> 1 in
    let chunk =
      match chunk with Some c -> c | None -> Slif_util.Pool.default_chunk ~jobs restarts
    in
    let pieces = Slif_util.Pool.chunks ~chunk restarts in
    let results =
      match pool with
      | Some pool -> Slif_util.Pool.map pool run_chunk pieces
      | None -> List.map run_chunk pieces
    in
    match results with
    | [] -> assert false
    | (first, first_eval) :: rest ->
        let best, evaluated =
          List.fold_left
            (fun ((best : Search.solution), acc) ((sol : Search.solution), ev) ->
              ((if sol.Search.cost < best.Search.cost then sol else best), acc + ev))
            (first, first_eval) rest
        in
        { best with Search.evaluated }
  end
