type params = { initial_temp : float; cooling : float; steps : int; seed : int }

let default_params = { initial_temp = 1.0; cooling = 0.995; steps = 2000; seed = 7 }

let run ?(params = default_params) ?initial (problem : Search.problem) =
  Slif_obs.Span.with_ "search.annealing"
    ~args:[ ("steps", string_of_int params.steps) ]
  @@ fun () ->
  let s = Slif.Graph.slif problem.graph in
  let part =
    match initial with Some p -> Slif.Partition.copy p | None -> Search.seed_partition s
  in
  let eng = Engine.of_problem problem part in
  let rng = Slif_util.Prng.create params.seed in
  let cost = ref (Engine.cost eng) in
  let best_part = ref (Slif.Partition.copy part) in
  let best_cost = ref !cost in
  let temp = ref params.initial_temp in
  for _ = 1 to params.steps do
    (match Engine.random_move eng rng with
    | None -> ()
    | Some move ->
        let c = Engine.propose eng move in
        Slif_obs.Counter.incr "search.moves_proposed";
        let accept =
          c <= !cost
          || (!temp > 1e-9
             && Slif_util.Prng.float rng 1.0 < exp ((!cost -. c) /. !temp))
        in
        if accept then begin
          Engine.commit eng;
          Slif_obs.Counter.incr "search.moves_accepted";
          cost := c;
          if c < !best_cost then begin
            best_cost := c;
            best_part := Slif.Partition.copy (Engine.partition eng)
          end
        end
        else begin
          Slif_obs.Counter.incr "search.moves_rejected";
          Engine.rollback eng
        end);
    temp := !temp *. params.cooling
  done;
  { Search.part = !best_part; cost = !best_cost; evaluated = Engine.moves_scored eng + 1 }
