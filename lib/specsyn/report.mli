(** Formatted design reports: per-component size / I/O / members, bus
    bitrates, process execution times — the rapid feedback a designer sees
    during interactive exploration. *)

val partition_report :
  ?constraints:Cost.constraints -> Slif.Estimate.t -> string

val explore_report : ?timings:bool -> Explore.entry list -> string
(** [timings] (default true) includes the wall-clock columns; pass false
    for schedule-independent output (byte-identical across [-j] values). *)
