(** Greedy constructive partitioning.

    Starting from the all-software seed, nodes are visited in decreasing
    size order (largest objects are placed while the most freedom
    remains) and each is moved to the feasible component that minimizes
    total cost given the placements made so far.  One pass; deterministic. *)

val run : ?replica:Engine.t -> Search.problem -> Search.solution
(** [replica] reuses the calling domain's engine via {!Engine.acquire}
    (bitwise-identical scoring, no per-run engine build) — the
    share-nothing sweep's fast path. *)
