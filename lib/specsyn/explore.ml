type algo =
  | Random of int
  | Greedy
  | Group_migration
  | Annealing of Annealing.params
  | Clustering of int

let algo_name = function
  | Random n -> Printf.sprintf "random-%d" n
  | Greedy -> "greedy"
  | Group_migration -> "group-migration"
  | Annealing p -> Printf.sprintf "annealing-%d" p.Annealing.steps
  | Clustering k -> Printf.sprintf "clustering-%d" k

type entry = {
  alloc : Alloc.t;
  algo : algo;
  solution : Search.solution;
  elapsed_s : float;
  partitions_per_s : float;
}

let default_algos =
  [ Random 50; Greedy; Group_migration; Annealing Annealing.default_params; Clustering 4 ]

let run ?(jobs = 1) ?constraints ?weights ?(algos = default_algos)
    ?(allocs = Alloc.catalog) slif =
  Slif_obs.Span.with_ "explore.run" ~args:[ ("jobs", string_of_int jobs) ] @@ fun () ->
  (* Every (alloc x algo) combination is an independent task: it applies
     the allocation, builds its own graph, problem and engines, and the
     algorithms seed their own generators — no mutable state crosses task
     boundaries, so the pool can run the sweep on any number of domains.
     Pool.map merges in submission order and the cost sort below is
     stable, hence the report is bit-identical regardless of [jobs]. *)
  let tasks =
    List.concat_map (fun alloc -> List.map (fun algo -> (alloc, algo)) algos) allocs
  in
  let solve_one (alloc, algo) =
    let s = Alloc.apply slif alloc in
    let graph = Slif.Graph.make s in
    let problem = Search.problem ?constraints ?weights graph in
    let solve () =
      match algo with
      | Random restarts -> Random_part.run ~restarts problem
      | Greedy -> Greedy.run problem
      | Group_migration -> Group_migration.run problem
      | Annealing params -> Annealing.run ~params problem
      | Clustering k -> Cluster.run ~k problem
    in
    let solve () =
      Slif_obs.Span.with_ "explore.entry"
        ~args:[ ("alloc", alloc.Alloc.alloc_name); ("algo", algo_name algo) ]
        solve
    in
    let solution, elapsed_s = Slif_obs.Clock.time solve in
    let partitions_per_s =
      if elapsed_s > 0.0 then float_of_int solution.Search.evaluated /. elapsed_s
      else 0.0
    in
    Slif_obs.Counter.add "explore.partitions_evaluated" solution.Search.evaluated;
    { alloc; algo; solution; elapsed_s; partitions_per_s }
  in
  (* Even [jobs = 1] goes through the pool: its single-domain path runs
     the same thunks inline, so the serial and parallel sweeps share one
     code path and the profiler's task instrumentation covers both. *)
  let entries =
    Slif_util.Pool.with_pool ~jobs (fun pool -> Slif_util.Pool.map pool solve_one tasks)
  in
  List.sort (fun a b -> compare a.solution.Search.cost b.solution.Search.cost) entries
