type algo =
  | Random of int
  | Greedy
  | Group_migration
  | Annealing of Annealing.params
  | Clustering of int

let algo_name = function
  | Random n -> Printf.sprintf "random-%d" n
  | Greedy -> "greedy"
  | Group_migration -> "group-migration"
  | Annealing p -> Printf.sprintf "annealing-%d" p.Annealing.steps
  | Clustering k -> Printf.sprintf "clustering-%d" k

type entry = {
  alloc : Alloc.t;
  algo : algo;
  solution : Search.solution;
  elapsed_s : float;
  partitions_per_s : float;
}

let default_algos =
  [ Random 50; Greedy; Group_migration; Annealing Annealing.default_params; Clustering 4 ]

(* Everything one allocation's work items need, built at most once per
   (domain, allocation): the applied SLIF, its graph and problem, and
   the domain's private engine replica.  Nothing in here is ever seen by
   another domain — the share-nothing invariant — so the replica's memo
   and aggregate arrays stay hot in exactly one cache hierarchy. *)
type ctx = {
  c_problem : Search.problem;
  c_eng : Engine.t;
}

(* One schedulable unit: a (alloc x algo) pair, or — for multi-restart
   algorithms, whose natural tasks are far too small and too uneven to
   schedule one by one — a contiguous restart slice of one. *)
type work = {
  w_pair : int;                  (* index into the pair array *)
  w_slice : (int * int) option;  (* Random restart range (start, len) *)
}

let run ?(jobs = 1) ?(chunk = 0) ?constraints ?weights ?(algos = default_algos)
    ?(allocs = Alloc.catalog) slif =
  Slif_obs.Span.with_ "explore.run"
    ~args:[ ("jobs", string_of_int jobs); ("chunk", string_of_int chunk) ]
  @@ fun () ->
  (* Every (alloc x algo) combination is independent: it gets its own
     graph, problem and engine state, and the algorithms seed their own
     generators — no mutable state crosses work-unit boundaries, so the
     pool can run the sweep on any number of domains.  Pool.map merges
     in submission order, slice winners fold in index order, and the
     cost sort below is stable, hence the report is bit-identical
     regardless of [jobs] and [chunk]. *)
  let alloc_arr = Array.of_list allocs in
  let pairs =
    Array.of_list
      (List.concat
         (List.mapi
            (fun ai _ -> List.map (fun algo -> (ai, algo)) algos)
            allocs))
  in
  let chunk_for n =
    if chunk >= 1 then chunk else Slif_util.Pool.default_chunk ~jobs n
  in
  let works =
    List.concat
      (List.mapi
         (fun p (_, algo) ->
           match algo with
           | Random n when n > 0 ->
               (* Slice the restarts so they load-balance across domains
                  instead of arriving as one monolithic task. *)
               List.map
                 (fun sl -> { w_pair = p; w_slice = Some sl })
                 (Slif_util.Pool.chunks ~chunk:(chunk_for n) n)
           | _ -> [ { w_pair = p; w_slice = None } ])
         (Array.to_list pairs))
  in
  (* Even [jobs = 1] goes through the pool: its single-domain path runs
     the same thunks inline, so the serial and parallel sweeps share one
     code path and the profiler's task instrumentation covers both. *)
  let results =
    Slif_util.Pool.with_pool ~jobs (fun pool ->
        (* The per-domain context cache, keyed by allocation index.  A
           domain builds an allocation's graph, problem and engine
           replica the first time it meets it and reuses them for every
           later work item of that allocation — replacing today's
           rebuild-per-task (and the Engine.copy-per-task design before
           it) with one [Engine.acquire] per candidate. *)
        let ctxs = Slif_util.Pool.local pool (fun () -> Hashtbl.create 8) in
        let ctx_for ai =
          let tbl = Slif_util.Pool.get ctxs in
          match Hashtbl.find_opt tbl ai with
          | Some c -> c
          | None ->
              let s = Alloc.apply slif alloc_arr.(ai) in
              let graph = Slif.Graph.make s in
              let problem = Search.problem ?constraints ?weights graph in
              let eng = Engine.of_problem problem (Search.seed_partition s) in
              let c = { c_problem = problem; c_eng = eng } in
              Hashtbl.add tbl ai c;
              c
        in
        let solve_work w =
          let ai, algo = pairs.(w.w_pair) in
          let ctx = ctx_for ai in
          let problem = ctx.c_problem in
          let replica () = ctx.c_eng in
          let solve () =
            match (algo, w.w_slice) with
            | Random _, Some (start, len) ->
                Random_part.run_range ~replica ~seed:1 ~start ~len problem
            | Random restarts, None -> Random_part.run ~replica ~restarts problem
            | Greedy, _ -> Greedy.run ~replica:ctx.c_eng problem
            | Group_migration, _ -> Group_migration.run ~replica:ctx.c_eng problem
            | Annealing params, _ -> Annealing.run ~replica ~params problem
            | Clustering k, _ -> Cluster.run ~replica:ctx.c_eng ~k problem
          in
          let solve () =
            Slif_obs.Span.with_ "explore.entry"
              ~args:
                [
                  ("alloc", alloc_arr.(ai).Alloc.alloc_name); ("algo", algo_name algo);
                ]
              solve
          in
          Slif_obs.Clock.time solve
        in
        Slif_util.Pool.map pool solve_work works)
  in
  (* Deterministic merge: group the results back onto their pairs in
     submission order (works of one pair are contiguous and slice order
     equals index order), fold each pair's slice winners
     earliest-strictly-best — the same fold the serial restart loop does
     — and restore the serial [evaluated] semantics. *)
  let by_pair = Array.make (Array.length pairs) [] in
  List.iter2
    (fun w (solution, elapsed_s) ->
      by_pair.(w.w_pair) <- (solution, elapsed_s) :: by_pair.(w.w_pair))
    works results;
  let entries =
    Array.to_list
      (Array.mapi
         (fun p (ai, algo) ->
           match List.rev by_pair.(p) with
           | [] -> assert false
           | (first, first_s) :: rest ->
               let best, elapsed_s =
                 List.fold_left
                   (fun ((best : Search.solution), acc_s)
                        ((sol : Search.solution), s) ->
                     ((if sol.Search.cost < best.Search.cost then sol else best), acc_s +. s))
                   (first, first_s) rest
               in
               let solution =
                 match algo with
                 | Random restarts -> { best with Search.evaluated = restarts }
                 | _ -> best
               in
               let partitions_per_s =
                 if elapsed_s > 0.0 then
                   float_of_int solution.Search.evaluated /. elapsed_s
                 else 0.0
               in
               Slif_obs.Counter.add "explore.partitions_evaluated"
                 solution.Search.evaluated;
               { alloc = alloc_arr.(ai); algo; solution; elapsed_s; partitions_per_s })
         pairs)
  in
  List.sort (fun a b -> compare a.solution.Search.cost b.solution.Search.cost) entries
