(* Size proxy used for the visiting order: the node's weight on the first
   technology that carries one. *)
let size_proxy (node : Slif.Types.node) =
  match node.n_size with [] -> 0.0 | (_, v) :: _ -> v

let run (problem : Search.problem) =
  Slif_obs.Span.with_ "search.greedy" @@ fun () ->
  let s = Slif.Graph.slif problem.graph in
  let part = Search.seed_partition s in
  let est = Search.estimator problem.graph part in
  let evaluated = ref 0 in
  let score () =
    incr evaluated;
    Search.evaluate problem est
  in
  let order =
    Array.to_list s.nodes
    |> List.sort (fun a b -> compare (size_proxy b) (size_proxy a))
  in
  List.iter
    (fun (node : Slif.Types.node) ->
      let id = node.n_id in
      let best = ref (Slif.Partition.comp_of_exn part id, score ()) in
      List.iter
        (fun comp ->
          if comp <> fst !best then begin
            Slif.Partition.assign_node part ~node:id comp;
            Slif.Estimate.note_node_moved est id;
            let c = score () in
            if c < snd !best then best := (comp, c)
          end)
        (Search.comps_for_node s node);
      Slif.Partition.assign_node part ~node:id (fst !best);
      Slif.Estimate.note_node_moved est id;
      Slif_obs.Counter.incr "search.moves_committed")
    order;
  { Search.part; cost = Search.evaluate problem est; evaluated = !evaluated }
