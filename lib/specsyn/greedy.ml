(* Size proxy used for the visiting order: the node's weight on the first
   technology that carries one. *)
let size_proxy (node : Slif.Types.node) =
  match node.n_size with [] -> 0.0 | (_, v) :: _ -> v

let run ?replica (problem : Search.problem) =
  Slif_obs.Span.with_ "search.greedy" @@ fun () ->
  let s = Slif.Graph.slif problem.graph in
  let part = Search.seed_partition s in
  let eng =
    match replica with
    | Some eng ->
        Engine.acquire eng part;
        eng
    | None -> Engine.of_problem problem part
  in
  let order =
    Array.to_list s.nodes
    |> List.sort (fun a b -> compare (size_proxy b) (size_proxy a))
  in
  List.iter
    (fun (node : Slif.Types.node) ->
      let id = node.n_id in
      let current = Slif.Partition.comp_of_exn (Engine.partition eng) id in
      let best = ref (current, Engine.cost eng) in
      Array.iter
        (fun comp ->
          if comp <> fst !best then begin
            let c = Engine.propose eng (Engine.Move_node { node = id; to_ = comp }) in
            Engine.rollback eng;
            if c < snd !best then best := (comp, c)
          end)
        (Engine.candidates eng id);
      if fst !best <> current then begin
        ignore (Engine.propose eng (Engine.Move_node { node = id; to_ = fst !best }));
        Engine.commit eng
      end;
      Slif_obs.Counter.incr "search.moves_committed")
    order;
  { Search.part; cost = Engine.cost eng; evaluated = Engine.moves_scored eng + 1 }
