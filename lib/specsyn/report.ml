let partition_report ?(constraints = Cost.no_constraints) est =
  let s = Slif.Graph.slif (Slif.Estimate.graph est) in
  let part = Slif.Estimate.partition est in
  let buf = Buffer.create 1024 in
  let comp_table = Slif_util.Table.create ~header:[ "component"; "tech"; "size"; "pins"; "members" ] in
  let describe comp =
    let members = Slif.Partition.nodes_of_comp part comp in
    let names =
      List.map (fun id -> s.Slif.Types.nodes.(id).Slif.Types.n_name) members
    in
    let shown =
      match names with
      | a :: b :: c :: _ :: _ -> Printf.sprintf "%s,%s,%s,... (%d)" a b c (List.length names)
      | _ -> String.concat "," names
    in
    Slif_util.Table.add_row comp_table
      [
        Slif.Partition.comp_name s comp;
        Slif.Partition.comp_tech s comp;
        Printf.sprintf "%.0f" (Slif.Estimate.size est comp);
        string_of_int (Slif.Estimate.io_pins est comp);
        shown;
      ]
  in
  Array.iteri (fun i _ -> describe (Slif.Partition.Cproc i)) s.Slif.Types.procs;
  Array.iteri (fun i _ -> describe (Slif.Partition.Cmem i)) s.Slif.Types.mems;
  Buffer.add_string buf (Slif_util.Table.render comp_table);
  Buffer.add_string buf "\n\n";
  let bus_table = Slif_util.Table.create ~header:[ "bus"; "width"; "bitrate(Mb/s)"; "capacity" ] in
  Array.iteri
    (fun i (b : Slif.Types.bus) ->
      Slif_util.Table.add_row bus_table
        [
          b.b_name;
          string_of_int b.b_bitwidth;
          Printf.sprintf "%.2f" (Slif.Estimate.bus_bitrate_mbps est i);
          (match b.b_capacity_mbps with None -> "-" | Some c -> Printf.sprintf "%.0f" c);
        ])
    s.Slif.Types.buses;
  Buffer.add_string buf (Slif_util.Table.render bus_table);
  Buffer.add_string buf "\n\n";
  let time_table = Slif_util.Table.create ~header:[ "process"; "exectime(us)"; "deadline(us)" ] in
  Array.iter
    (fun (n : Slif.Types.node) ->
      if Slif.Types.is_process n then
        Slif_util.Table.add_row time_table
          [
            n.n_name;
            Printf.sprintf "%.2f" (Slif.Estimate.exectime_us est n.n_id);
            (match List.assoc_opt n.n_name constraints.Cost.deadlines_us with
            | None -> "-"
            | Some d -> Printf.sprintf "%.0f" d);
          ])
    s.Slif.Types.nodes;
  Buffer.add_string buf (Slif_util.Table.render time_table);
  let b = Cost.evaluate ~constraints est in
  Buffer.add_string buf
    (Printf.sprintf
       "\n\ncost: total=%.4f (size=%.4f io=%.4f time=%.4f bitrate=%.4f)\n"
       b.Cost.total b.Cost.size_violation b.Cost.io_violation b.Cost.time_violation
       b.Cost.bitrate_violation);
  Buffer.contents buf

(* [timings:false] drops the wall-clock columns — the only
   schedule-dependent cells — so the report of a parallel sweep is
   byte-identical to the serial one (how the -j differential is tested). *)
let explore_report ?(timings = true) entries =
  let header = [ "allocation"; "algorithm"; "cost"; "partitions" ] in
  let header = if timings then header @ [ "seconds"; "parts/s" ] else header in
  let table = Slif_util.Table.create ~header in
  List.iter
    (fun (e : Explore.entry) ->
      let row =
        [
          e.alloc.Alloc.alloc_name;
          Explore.algo_name e.algo;
          Printf.sprintf "%.4f" e.solution.Search.cost;
          string_of_int e.solution.Search.evaluated;
        ]
      in
      let row =
        if timings then
          row
          @ [ Printf.sprintf "%.3f" e.elapsed_s; Printf.sprintf "%.0f" e.partitions_per_s ]
        else row
      in
      Slif_util.Table.add_row table row)
    entries;
  Slif_util.Table.render table
