(** Design-space exploration: allocations x partitioning algorithms.

    For each candidate allocation, runs the selected partitioning
    algorithms and records cost, partitions scored and wall-clock time —
    the interactive exploration workload SpecSyn supports and that
    experiment R4 measures (partitions per second). *)

type algo =
  | Random of int                  (* restarts *)
  | Greedy
  | Group_migration
  | Annealing of Annealing.params
  | Clustering of int              (* number of clusters *)

val algo_name : algo -> string

type entry = {
  alloc : Alloc.t;
  algo : algo;
  solution : Search.solution;
  elapsed_s : float;
  partitions_per_s : float;
}

val run :
  ?jobs:int ->
  ?chunk:int ->
  ?constraints:Cost.constraints ->
  ?weights:Cost.weights ->
  ?algos:algo list ->
  ?allocs:Alloc.t list ->
  Slif.Types.t ->
  entry list
(** [run slif] explores the full stock catalog with all algorithms by
    default; the SLIF must already be annotated.  Results are sorted by
    cost (cheapest first), stably over (alloc, algo) submission order.

    [jobs] (default 1) runs the work on a {!Slif_util.Pool} of that many
    domains.  The schedulable unit is an (alloc x algo) combination,
    except multi-restart algorithms ([Random n]), whose restarts are
    sliced into contiguous chunks of [chunk] (default [0] = the
    {!Slif_util.Pool.default_chunk} heuristic over [jobs]) so they
    load-balance instead of arriving as one monolithic task.

    Each domain lazily builds one private context per allocation — the
    applied SLIF, graph, problem and an engine replica — and every work
    item re-engages the replica through {!Engine.acquire}, whose
    rescoring is bitwise {!Engine.create}'s.  No mutable state crosses
    domains (share-nothing); results merge in submission order and slice
    winners fold earliest-strictly-best, so the entry list — order,
    costs, evaluation counts — is identical for every [jobs] and every
    [chunk]; only [elapsed_s]/[partitions_per_s] reflect the actual
    schedule.  For sliced entries [elapsed_s] sums the slices' task
    times (CPU time, not the sweep's wall clock). *)
