(** Design-space exploration: allocations x partitioning algorithms.

    For each candidate allocation, runs the selected partitioning
    algorithms and records cost, partitions scored and wall-clock time —
    the interactive exploration workload SpecSyn supports and that
    experiment R4 measures (partitions per second). *)

type algo =
  | Random of int                  (* restarts *)
  | Greedy
  | Group_migration
  | Annealing of Annealing.params
  | Clustering of int              (* number of clusters *)

val algo_name : algo -> string

type entry = {
  alloc : Alloc.t;
  algo : algo;
  solution : Search.solution;
  elapsed_s : float;
  partitions_per_s : float;
}

val run :
  ?jobs:int ->
  ?constraints:Cost.constraints ->
  ?weights:Cost.weights ->
  ?algos:algo list ->
  ?allocs:Alloc.t list ->
  Slif.Types.t ->
  entry list
(** [run slif] explores the full stock catalog with all algorithms by
    default; the SLIF must already be annotated.  Results are sorted by
    cost (cheapest first), stably over (alloc, algo) submission order.

    [jobs] (default 1) runs the (alloc x algo) combinations on a
    {!Slif_util.Pool} of that many domains.  Every combination builds its
    own graph, problem and engines, and results merge in submission
    order, so the entry list — order, costs, evaluation counts — is
    identical for every [jobs]; only [elapsed_s]/[partitions_per_s]
    reflect the actual schedule. *)
