module Obs = Slif_obs

type run = {
  p_jobs : int;
  p_elapsed_s : float;
  p_speedup : float;
  p_tasks : int;
  p_designs : int;
  p_designs_per_s : float;
  p_digest : string;
  p_report : Obs.Attribution.report;
  p_gc : Obs.Gcprof.counts;
  p_gc_time_us : float;
  p_gc_lost_events : int;
  p_locks : Obs.Lockprof.stat list;
  p_task_run : Obs.Histogram.quantiles option;
  p_task_queue_wait : Obs.Histogram.quantiles option;
  p_memo : (int * (int * int)) list;
}

type t = {
  spec_name : string;
  jobs : int list;
  runs : run list;
  identical : bool;
}

(* Everything deterministic about a sweep's outcome, nothing about its
   timing: the [-j] differential check hashes this. *)
let digest_entries entries =
  let b = Buffer.create 256 in
  List.iter
    (fun (e : Explore.entry) ->
      Buffer.add_string b e.Explore.alloc.Alloc.alloc_name;
      Buffer.add_char b '|';
      Buffer.add_string b (Explore.algo_name e.Explore.algo);
      Buffer.add_char b '|';
      Buffer.add_string b (Int64.to_string (Int64.bits_of_float e.Explore.solution.Search.cost));
      Buffer.add_char b '|';
      Buffer.add_string b (string_of_int e.Explore.solution.Search.evaluated);
      Buffer.add_char b '\n')
    entries;
  Digest.to_hex (Digest.string (Buffer.contents b))

let arm () =
  Obs.Registry.reset ();
  Obs.Attribution.reset ();
  Obs.Lockprof.reset ();
  Obs.Gcprof.reset ();
  Obs.Registry.enable ();
  Obs.Attribution.enable ();
  Obs.Lockprof.set_enabled true;
  (* Pause timing is best-effort: when the runtime refuses the ring,
     the report's GC line falls back to the pressure counters alone. *)
  ignore (Obs.Gcprof.start_timing ());
  (* Advance the driving domain's GC baseline to the run boundary. *)
  Obs.Gcprof.sample ()

let disarm () =
  Obs.Lockprof.set_enabled false;
  Obs.Attribution.disable ();
  Obs.Registry.disable ()

let memo_by_domain () =
  List.filter_map
    (fun (dom, counters) ->
      let get n = match List.assoc_opt n counters with Some v -> v | None -> 0 in
      let hit = get "estimate.memo_hit" and miss = get "estimate.memo_miss" in
      if hit = 0 && miss = 0 then None else Some (dom, (hit, miss)))
    (Obs.Counter.snapshot_by_domain ())

let run ?constraints ?weights ?algos ?allocs ?chunk ?trace ~name ~jobs slif =
  let jobs = List.sort_uniq compare jobs in
  if jobs = [] then invalid_arg "Profiler.run: no domain counts";
  List.iter (fun j -> if j < 1 then invalid_arg "Profiler.run: jobs must be >= 1") jobs;
  let one j =
    arm ();
    Fun.protect ~finally:disarm @@ fun () ->
    let t0 = Obs.Clock.now_us () in
    let entries = Explore.run ~jobs:j ?chunk ?constraints ?weights ?algos ?allocs slif in
    let elapsed_s = (Obs.Clock.now_us () -. t0) /. 1e6 in
    Obs.Gcprof.poll ();
    Obs.Gcprof.sample ();
    let gc_time_us = Obs.Gcprof.gc_time_us () in
    let report =
      if gc_time_us > 0.0 then Obs.Attribution.report ~gc_us:gc_time_us ()
      else Obs.Attribution.report ()
    in
    let r =
      {
        p_jobs = j;
        p_elapsed_s = elapsed_s;
        p_speedup = 1.0;
        p_tasks = Obs.Counter.get "pool.tasks";
        (* The same counter BENCH A8 divides by elapsed time, so the
           profile's throughput column and the benchmark's designs/s
           agree by construction. *)
        p_designs = Obs.Counter.get "explore.partitions_evaluated";
        p_designs_per_s =
          (let d = Obs.Counter.get "explore.partitions_evaluated" in
           if elapsed_s > 0.0 then float_of_int d /. elapsed_s else 0.0);
        p_digest = digest_entries entries;
        p_report = report;
        p_gc = Obs.Gcprof.counts ();
        p_gc_time_us = gc_time_us;
        p_gc_lost_events = Obs.Gcprof.lost_events ();
        p_locks =
          List.filter (fun (s : Obs.Lockprof.stat) -> s.acquisitions > 0) (Obs.Lockprof.all ());
        p_task_run = Obs.Histogram.quantiles "pool.task_run_us";
        p_task_queue_wait = Obs.Histogram.quantiles "pool.task_queue_wait_us";
        p_memo = memo_by_domain ();
      }
    in
    (* The trace must be exported before the next run resets the
       registry. *)
    (match trace with Some path_of -> Obs.Trace.write_file (path_of j) | None -> ());
    r
  in
  let runs = List.map one jobs in
  let base =
    match runs with r :: _ -> r.p_elapsed_s | [] -> 0.0
  in
  let runs =
    List.map
      (fun r ->
        { r with p_speedup = (if r.p_elapsed_s > 0.0 then base /. r.p_elapsed_s else 0.0) })
      runs
  in
  let identical =
    match runs with
    | [] -> true
    | r :: rest -> List.for_all (fun r' -> r'.p_digest = r.p_digest) rest
  in
  { spec_name = name; jobs; runs; identical }

(* --- JSON ------------------------------------------------------------------ *)

let quantiles_json (q : Obs.Histogram.quantiles) =
  let module J = Obs.Json in
  J.Obj
    [
      ("count", J.Int q.q_count);
      ("p50", J.Float q.q_p50);
      ("p90", J.Float q.q_p90);
      ("p99", J.Float q.q_p99);
      ("max", J.Float q.q_max);
    ]

let categories_json cats =
  let module J = Obs.Json in
  J.Obj (List.map (fun (c, us) -> (Obs.Attribution.category_name c, J.Float us)) cats)

let report_json (r : Obs.Attribution.report) =
  let module J = Obs.Json in
  J.Obj
    [
      ("total_wall_us", J.Float r.total_wall_us);
      ("coverage", J.Float r.coverage);
      ("categories", categories_json r.totals);
      ("other_us", J.Float r.total_other_us);
      ( "per_domain",
        J.List
          (List.map
             (fun (d : Obs.Attribution.per_domain) ->
               J.Obj
                 [
                   ("dom", J.Int d.dom);
                   ("wall_us", J.Float d.wall_us);
                   ("categories", categories_json d.net);
                   ("other_us", J.Float d.other_us);
                 ])
             r.domains) );
    ]

let run_json r =
  let module J = Obs.Json in
  let opt_q = function Some q -> quantiles_json q | None -> J.Null in
  J.Obj
    [
      ("jobs", J.Int r.p_jobs);
      ("elapsed_s", J.Float r.p_elapsed_s);
      ("speedup", J.Float r.p_speedup);
      ("tasks", J.Int r.p_tasks);
      ("designs", J.Int r.p_designs);
      ("designs_per_s", J.Float r.p_designs_per_s);
      ("digest", J.String r.p_digest);
      ("attribution", report_json r.p_report);
      ( "gc",
        J.Obj
          [
            ("minor_collections", J.Int r.p_gc.minor_collections);
            ("major_collections", J.Int r.p_gc.major_collections);
            ("compactions", J.Int r.p_gc.compactions);
            ("minor_words", J.Float r.p_gc.minor_words);
            ("promoted_words", J.Float r.p_gc.promoted_words);
            ("major_words", J.Float r.p_gc.major_words);
            ("pause_us", J.Float r.p_gc_time_us);
            ("lost_events", J.Int r.p_gc_lost_events);
          ] );
      ( "locks",
        J.List
          (List.map
             (fun (s : Obs.Lockprof.stat) ->
               J.Obj
                 [
                   ("name", J.String s.s_name);
                   ("acquisitions", J.Int s.acquisitions);
                   ("contended", J.Int s.contended);
                   ("wait_us", quantiles_json s.wait_quantiles);
                   ("wait_total_us", J.Float s.wait_us.sum);
                   ("hold_us", quantiles_json s.hold_quantiles);
                 ])
             r.p_locks) );
      ("task_run_us", opt_q r.p_task_run);
      ("task_queue_wait_us", opt_q r.p_task_queue_wait);
      ( "memo",
        J.List
          (List.map
             (fun (dom, (hit, miss)) ->
               J.Obj [ ("dom", J.Int dom); ("hits", J.Int hit); ("misses", J.Int miss) ])
             r.p_memo) );
    ]

let to_json t =
  let module J = Obs.Json in
  J.Obj
    [
      ("schema", J.String "slif-profile/1");
      ("spec", J.String t.spec_name);
      ("jobs", J.List (List.map (fun j -> J.Int j) t.jobs));
      ("identical", J.Bool t.identical);
      ("runs", J.List (List.map run_json t.runs));
    ]

(* --- Human rendering ------------------------------------------------------- *)

let to_text t =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.bprintf b fmt in
  pf "slif profile: %s\n" t.spec_name;
  pf "results identical across domain counts: %s\n\n"
    (if t.identical then "yes" else "NO — investigate");
  pf "  jobs  elapsed_s  speedup  tasks  designs/s  coverage\n";
  List.iter
    (fun r ->
      pf "  %4d  %9.3f  %6.2fx  %5d  %9.0f  %7.1f%%\n" r.p_jobs r.p_elapsed_s
        r.p_speedup r.p_tasks r.p_designs_per_s
        (100.0 *. r.p_report.coverage))
    t.runs;
  List.iter
    (fun r ->
      pf "\n-- attribution, -j %d (wall %.3f s across %d domains) --\n" r.p_jobs
        (r.p_report.total_wall_us /. 1e6)
        (List.length r.p_report.domains);
      let wall = r.p_report.total_wall_us in
      List.iter
        (fun (c, us) ->
          pf "  %-10s %9.3f s  %5.1f%%\n" (Obs.Attribution.category_name c) (us /. 1e6)
            (if wall > 0.0 then 100.0 *. us /. wall else 0.0))
        r.p_report.totals;
      pf "  %-10s %9.3f s  %5.1f%%\n" "other"
        (r.p_report.total_other_us /. 1e6)
        (if wall > 0.0 then 100.0 *. r.p_report.total_other_us /. wall else 0.0);
      pf "  gc: %d minor / %d major collections, %.0f promoted words, pause %.1f ms%s\n"
        r.p_gc.minor_collections r.p_gc.major_collections r.p_gc.promoted_words
        (r.p_gc_time_us /. 1e3)
        (if r.p_gc_lost_events > 0 then
           Printf.sprintf " (%d events lost)" r.p_gc_lost_events
         else "");
      List.iter
        (fun (s : Obs.Lockprof.stat) ->
          pf "  lock %-12s %6d acq, %5d contended, wait p50/p99 %.1f/%.1f us, hold p50/p99 %.1f/%.1f us\n"
            s.s_name s.acquisitions s.contended s.wait_quantiles.q_p50
            s.wait_quantiles.q_p99 s.hold_quantiles.q_p50 s.hold_quantiles.q_p99)
        r.p_locks;
      (match r.p_task_run with
      | Some q ->
          pf "  task run us: p50 %.0f  p90 %.0f  p99 %.0f  max %.0f  (n=%d)\n" q.q_p50
            q.q_p90 q.q_p99 q.q_max q.q_count
      | None -> ());
      (match r.p_task_queue_wait with
      | Some q ->
          pf "  queue wait us: p50 %.0f  p90 %.0f  p99 %.0f  max %.0f\n" q.q_p50 q.q_p90
            q.q_p99 q.q_max
      | None -> ());
      match r.p_memo with
      | [] -> ()
      | memo ->
          pf "  memo:";
          List.iter
            (fun (dom, (hit, miss)) ->
              let total = hit + miss in
              pf " d%d %d/%d (%.0f%%)" dom hit total
                (if total > 0 then 100.0 *. float_of_int hit /. float_of_int total
                 else 0.0))
            memo;
          pf "\n")
    t.runs;
  Buffer.contents b
