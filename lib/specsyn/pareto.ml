type point = {
  part : Slif.Partition.t;
  worst_exectime_us : float;
  hw_gates : float;
  sw_bytes : float;
  weight_time : float;
}

let measure graph part =
  let s = Slif.Graph.slif graph in
  let est = Search.estimator graph part in
  let worst = ref 0.0 in
  Array.iter
    (fun (n : Slif.Types.node) ->
      if Slif.Types.is_process n then
        worst := Float.max !worst (Slif.Estimate.exectime_us est n.n_id))
    s.Slif.Types.nodes;
  let hw = ref 0.0 and sw = ref 0.0 in
  Array.iteri
    (fun i (p : Slif.Types.processor) ->
      let size = Slif.Estimate.size est (Slif.Partition.Cproc i) in
      match p.p_kind with
      | Slif.Types.Custom -> hw := !hw +. size
      | Slif.Types.Standard -> sw := !sw +. size)
    s.Slif.Types.procs;
  (!worst, !hw, !sw)

let score graph part ~weight_time =
  let worst_exectime_us, hw_gates, sw_bytes = measure graph part in
  { part = Slif.Partition.copy part; worst_exectime_us; hw_gates; sw_bytes; weight_time }

let dominated a b =
  b.worst_exectime_us <= a.worst_exectime_us
  && b.hw_gates <= a.hw_gates
  && (b.worst_exectime_us < a.worst_exectime_us || b.hw_gates < a.hw_gates)

let front points =
  points
  |> List.filter (fun p -> not (List.exists (fun q -> q != p && dominated p q) points))
  |> List.sort (fun a b -> compare a.worst_exectime_us b.worst_exectime_us)

(* Scalarized objective: normalized worst-case time against normalized
   custom-hardware area, with a penalty for violated constraints.  All
   three terms come from the engine's incrementally maintained state —
   the old code built two fresh estimators per step. *)
let objective (s : Slif.Types.t) ~weight_time eng =
  let est = Engine.estimate eng in
  let worst = ref 0.0 in
  Array.iter
    (fun (n : Slif.Types.node) ->
      if Slif.Types.is_process n then
        worst := Float.max !worst (Slif.Estimate.exectime_us est n.n_id))
    s.Slif.Types.nodes;
  let hw = ref 0.0 in
  Array.iteri
    (fun i (p : Slif.Types.processor) ->
      if p.p_kind = Slif.Types.Custom then
        hw := !hw +. Engine.comp_size eng (Slif.Partition.Cproc i))
    s.Slif.Types.procs;
  (weight_time *. !worst /. 1000.0) +. (!hw /. 100_000.0) +. (10.0 *. Engine.cost eng)

let default_weights_time = [ 0.1; 0.3; 1.0; 2.0; 4.0; 8.0; 16.0 ]

let sweep ?(jobs = 1) ?(constraints = Cost.no_constraints) ?(steps_per_point = 400)
    ?(weights_time = default_weights_time) ?chunk graph =
  let s = Slif.Graph.slif graph in
  let n_nodes = Array.length s.Slif.Types.nodes in
  (* Each weight point is an independent computation: its generator seed
     is a function of the point's index alone, and the partition it
     anneals is point-private — the sweep produces the same candidates
     at any [jobs] and any chunking.  The engine is the executing
     domain's replica, re-acquired per point ([Engine.acquire] rescoring
     is bitwise [Engine.create]'s, so sharing it changes nothing). *)
  let anneal_point replica i weight_time =
    let rng = Slif_util.Prng.create (1000 + i) in
    let part = Search.seed_partition s in
    let eng =
      match replica with
      | Some eng ->
          Engine.acquire eng part;
          eng
      | None -> Engine.create ~constraints graph part
    in
    let cost = ref (objective s ~weight_time eng) in
    let temp = ref 0.5 in
    for _ = 1 to steps_per_point do
      let node = Slif_util.Prng.int rng n_nodes in
      let from = Slif.Partition.comp_of_exn part node in
      let choices = Engine.candidates eng node in
      let to_ = choices.(Slif_util.Prng.int rng (Array.length choices)) in
      if to_ <> from then begin
        ignore (Engine.propose eng (Engine.Move_node { node; to_ }));
        let c = objective s ~weight_time eng in
        let accept =
          c <= !cost
          || (!temp > 1e-9 && Slif_util.Prng.float rng 1.0 < exp ((!cost -. c) /. !temp))
        in
        if accept then begin
          Engine.commit eng;
          cost := c
        end
        else Engine.rollback eng
      end;
      temp := !temp *. 0.99
    done;
    score graph part ~weight_time
  in
  let wt = Array.of_list weights_time in
  let n = Array.length wt in
  let candidates =
    if jobs = 1 then begin
      (* One engine for the whole serial sweep, re-acquired per point. *)
      let replica =
        if n = 0 then None
        else Some (Engine.create ~constraints graph (Search.seed_partition s))
      in
      List.mapi (fun i w -> anneal_point replica i w) weights_time
    end
    else
      Slif_util.Pool.with_pool ~jobs (fun pool ->
          (* One engine replica per domain, created on the domain that
             uses it; points are grouped into contiguous chunks so each
             task amortizes its replica acquisition over several points. *)
          let replica =
            Slif_util.Pool.local pool (fun () ->
                Engine.create ~constraints graph (Search.seed_partition s))
          in
          let chunk =
            match chunk with
            | Some c -> c
            | None -> Slif_util.Pool.default_chunk ~jobs n
          in
          let pieces = Slif_util.Pool.chunks ~chunk n in
          Slif_util.Pool.map pool
            (fun (start, len) ->
              let eng = Some (Slif_util.Pool.get replica) in
              List.init len (fun d -> anneal_point eng (start + d) wt.(start + d)))
            pieces
          |> List.concat)
  in
  (* The serial accumulator consed points in reverse; keep feeding [front]
     the same order so tie-breaks in its stable sort never move. *)
  front (List.rev candidates)
