(** Random-restart partitioning: the baseline search.

    Draws uniformly random proper partitions (nodes onto feasible
    components, channels onto buses) and keeps the cheapest — the simplest
    consumer of SLIF's fast estimation, and the baseline the heuristics
    are compared against.

    Restart [k] draws from the private stream
    [Slif_util.Prng.derive ~root:seed k] (no state is shared between
    restarts), and ties select the lowest restart index, so the result is
    a pure function of [(seed, restarts)] — identical with or without a
    pool, at any [jobs]. *)

val run :
  ?pool:Slif_util.Pool.t -> ?seed:int -> restarts:int -> Search.problem -> Search.solution
(** [run ~restarts problem] evaluates [restarts] independent random
    partitions ([seed] defaults to 1) and returns the cheapest.  With
    [?pool], restarts are scored in parallel — each on a private
    partition and engine — with identical results. *)
