(** Random-restart partitioning: the baseline search.

    Draws uniformly random proper partitions (nodes onto feasible
    components, channels onto buses) and keeps the cheapest — the simplest
    consumer of SLIF's fast estimation, and the baseline the heuristics
    are compared against.

    Restart [k] draws from the private stream
    [Slif_util.Prng.derive ~root:seed k] (no state is shared between
    restarts), and ties select the lowest restart index, so the result is
    a pure function of [(seed, restarts)] — identical with or without a
    pool, at any [jobs]. *)

val run_range :
  ?replica:(unit -> Engine.t) ->
  ?seed:int ->
  start:int ->
  len:int ->
  Search.problem ->
  Search.solution
(** [run_range ~start ~len problem] evaluates restarts
    [start .. start + len - 1] on the calling domain and returns the
    range's earliest strict minimum, with [evaluated = len].  This is
    the work-unit body {!Explore.run} schedules directly when it slices
    one [Random n] algorithm across pool tasks; folding range winners in
    index order reproduces {!run}'s answer exactly.  Raises
    [Invalid_argument] on an empty or negative range. *)

val run :
  ?pool:Slif_util.Pool.t ->
  ?seed:int ->
  ?chunk:int ->
  ?replica:(unit -> Engine.t) ->
  restarts:int ->
  Search.problem ->
  Search.solution
(** [run ~restarts problem] evaluates [restarts] independent random
    partitions ([seed] defaults to 1) and returns the cheapest.

    Restarts are processed as contiguous index chunks of size [chunk]
    (default: {!Slif_util.Pool.default_chunk} over the pool's jobs) so a
    pooled sweep enqueues a few coarse tasks instead of one tiny task
    per restart; each chunk is a pure function of its index range and
    the root seed, and the earliest strict minimum wins within and
    across chunks, so the answer is byte-identical for every [chunk]
    and [jobs].

    [replica] supplies the calling domain's reusable engine (the
    share-nothing per-domain replica, resolved inside each task, e.g.
    via {!Slif_util.Pool.get}); each restart then costs one
    {!Engine.acquire} rescoring — bitwise {!Engine.create}'s — instead
    of a full engine build.  Without it, every restart builds a fresh
    engine, as before. *)
