(** Closeness-based hierarchical clustering.

    This is the n-squared algorithm the paper's Results section sizes
    against each format's node count: compute a closeness value for every
    pair of functional objects, repeatedly merge the closest pair, and
    stop at the requested number of clusters.  Closeness here combines
    communication affinity (bits x access frequency on channels between
    the pair, the dominant term), a bonus for sharing a common accessor,
    and a penalty on oversized pairings that would overflow components.

    The result seeds a partition: clusters are assigned whole to
    components, largest cluster first onto the component with the most
    remaining headroom. *)

type params = {
  w_comm : float;        (* weight of direct communication *)
  w_shared : float;      (* weight of a shared accessor *)
  balance_limit : float; (* soft cap on a cluster's share of total size, in (0,1] *)
}

val default_params : params

val closeness : ?params:params -> Slif.Graph.t -> int -> int -> float
(** [closeness graph a b] for two node ids; symmetric, non-negative. *)

val clusters : ?params:params -> Slif.Graph.t -> k:int -> int list list
(** [clusters graph ~k] merges until [k] clusters remain (or no positive-
    closeness merge is possible).  Raises [Invalid_argument] when
    [k < 1]. *)

val run : ?params:params -> ?replica:Engine.t -> k:int -> Search.problem -> Search.solution
(** Cluster, then assign clusters to components (behaviors force their
    cluster onto processors), and score the resulting partition. *)
