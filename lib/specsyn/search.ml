type problem = {
  graph : Slif.Graph.t;
  constraints : Cost.constraints;
  weights : Cost.weights;
}

let problem ?(constraints = Cost.no_constraints) ?(weights = Cost.default_weights) graph =
  { graph; constraints; weights }

type solution = { part : Slif.Partition.t; cost : float; evaluated : int }

let all_comps (s : Slif.Types.t) =
  Array.to_list (Array.mapi (fun i _ -> Slif.Partition.Cproc i) s.procs)
  @ Array.to_list (Array.mapi (fun i _ -> Slif.Partition.Cmem i) s.mems)

let comps_for_node (s : Slif.Types.t) (node : Slif.Types.node) =
  match node.n_kind with
  | Slif.Types.Behavior _ ->
      Array.to_list (Array.mapi (fun i _ -> Slif.Partition.Cproc i) s.procs)
  | Slif.Types.Variable _ -> all_comps s

let seed_partition (s : Slif.Types.t) =
  if Array.length s.procs = 0 then invalid_arg "Search.seed_partition: no processor";
  if Array.length s.buses = 0 then invalid_arg "Search.seed_partition: no bus";
  let part = Slif.Partition.create s in
  Array.iteri
    (fun i _ -> Slif.Partition.assign_node part ~node:i (Slif.Partition.Cproc 0))
    s.nodes;
  Slif.Partition.assign_all_chans part ~bus:0;
  part

let evaluate problem est =
  Slif_obs.Counter.incr "search.partitions_scored";
  Cost.total ~weights:problem.weights ~constraints:problem.constraints est

let estimator graph part = Slif.Estimate.create ~recursion_depth:4 graph part
