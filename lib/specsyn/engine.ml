type move =
  | Move_node of { node : int; to_ : Slif.Partition.comp }
  | Move_chan of { chan : int; to_bus : int }
  | Move_group of move list

(* Undo journal: every mutation made while a transaction is open records
   the previous value of the cell it overwrites.  Rollback replays the
   journal newest-first, so each cell ends on its exact pre-transaction
   bit pattern no matter how often a group move touched it. *)
type undo =
  | U_node of int * Slif.Partition.comp  (* node, previous component *)
  | U_chan of int * int                  (* chan, previous bus *)
  | U_float of float array * int * float
  | U_int of int array * int * int

type txn = {
  saved_version : int;
  mutable undos : undo list;   (* newest first *)
  mutable inval : int list;    (* nodes whose exectime memo entries were dropped *)
}

type t = {
  graph : Slif.Graph.t;
  mutable part : Slif.Partition.t;  (* mutable so [acquire] can re-point a replica *)
  est : Slif.Estimate.t;
  weights : Cost.weights;
  constraints : Cost.constraints;  (* kept so [copy] can rebuild deadlines *)
  deadlines : (int * float) array;  (* resolved (node id, deadline us) *)
  n_procs : int;
  n_comps : int;
  (* Aggregates.  Components are indexed processors-first, then memories
     (matching Cost.evaluate's sweep order). *)
  comp_size : float array;          (* eqs. 4-5: summed size weights *)
  cut_count : int array array;      (* [comp][bus] boundary-crossing channels *)
  chan_rate : float array;          (* eq. 2 per channel *)
  (* Violation terms, one cell per constrained object; totals are summed
     on demand so untouched cells never drift. *)
  size_viol : float array;          (* per component *)
  io_viol : float array;            (* per component (memories stay 0) *)
  time_viol : float array;          (* per deadline *)
  bitrate_viol : float array;       (* per bus *)
  (* Move generation. *)
  proc_comps : Slif.Partition.comp array;
  all_comps : Slif.Partition.comp array;
  incident : int array array;       (* per node: channel ids, deduplicated *)
  mark : bool array;                (* scratch: node membership tests *)
  mutable txn : txn option;
  mutable scored : int;
}

let slif t = Slif.Graph.slif t.graph
let graph t = t.graph
let partition t = t.part
let estimate t = t.est
let pending t = t.txn <> None
let moves_scored t = t.scored

(* --- Component indexing --------------------------------------------------- *)

let ci t = function
  | Slif.Partition.Cproc p -> p
  | Slif.Partition.Cmem m -> t.n_procs + m

let comp_of_index t k =
  if k < t.n_procs then Slif.Partition.Cproc k else Slif.Partition.Cmem (k - t.n_procs)

(* --- Per-term recomputation (each mirrors one Cost.evaluate term) --------- *)

let size_weight t node tech =
  let s = slif t in
  match Slif.Types.size_on s.Slif.Types.nodes.(node) tech with
  | Some v -> v
  | None ->
      invalid_arg
        (Printf.sprintf "Engine: node %s has no size weight for technology %s"
           s.Slif.Types.nodes.(node).Slif.Types.n_name tech)

let size_viol_of t k =
  let s = slif t in
  let cap =
    if k < t.n_procs then s.Slif.Types.procs.(k).Slif.Types.p_size_constraint
    else s.Slif.Types.mems.(k - t.n_procs).Slif.Types.m_size_constraint
  in
  Cost.excess t.comp_size.(k) cap

let io_pins_of t k =
  let s = slif t in
  let row = t.cut_count.(k) in
  let pins = ref 0 in
  Array.iteri
    (fun b (bus : Slif.Types.bus) -> if row.(b) > 0 then pins := !pins + bus.b_bitwidth)
    s.Slif.Types.buses;
  !pins

let io_viol_of t k =
  let s = slif t in
  if k >= t.n_procs then 0.0
  else
    match s.Slif.Types.procs.(k).Slif.Types.p_io_constraint with
    | None -> 0.0
    | Some cap ->
        Cost.excess (float_of_int (io_pins_of t k)) (Some (float_of_int cap))

let time_viol_of t i =
  let node, deadline = t.deadlines.(i) in
  Cost.excess (Slif.Estimate.exectime_us t.est node) (Some deadline)

(* Channels are summed in ascending id order, the same order
   Partition.chans_of_bus feeds Cost.evaluate, so the totals agree to the
   last bit when the per-channel rates do. *)
let bitrate_viol_of t b =
  let s = slif t in
  match s.Slif.Types.buses.(b).Slif.Types.b_capacity_mbps with
  | None -> 0.0
  | Some cap ->
      let rate = ref 0.0 in
      Array.iteri
        (fun c _ ->
          if Slif.Partition.bus_of t.part c = Some b then rate := !rate +. t.chan_rate.(c))
        s.Slif.Types.chans;
      Cost.excess !rate (Some cap)

(* --- Journaled writes ----------------------------------------------------- *)

let journal t u = match t.txn with None -> () | Some txn -> txn.undos <- u :: txn.undos

let setf t arr i v =
  journal t (U_float (arr, i, arr.(i)));
  arr.(i) <- v

let seti t arr i v =
  journal t (U_int (arr, i, arr.(i)));
  arr.(i) <- v

(* --- Crossing bookkeeping ------------------------------------------------- *)

(* Whether the channel crosses the boundary of component index [k] under
   the partition's current mapping (same rule as Estimate.crosses). *)
let crosses t k (c : Slif.Types.channel) =
  let comp = comp_of_index t k in
  let src_in = Slif.Partition.comp_of t.part c.c_src = Some comp in
  let dst_in =
    match c.c_dst with
    | Slif.Types.Dport _ -> false
    | Slif.Types.Dnode d -> Slif.Partition.comp_of t.part d = Some comp
  in
  src_in <> dst_in

(* Add [delta] to the crossing count of every incident channel of [node]
   that currently crosses component [k]. *)
let shift_cuts_at_node t k node delta =
  let s = slif t in
  Array.iter
    (fun cid ->
      let c = s.Slif.Types.chans.(cid) in
      if crosses t k c then begin
        let b = Slif.Partition.bus_of_exn t.part cid in
        seti t t.cut_count.(k) b (t.cut_count.(k).(b) + delta)
      end)
    t.incident.(node)

(* Component indices whose boundary the channel currently crosses (at most
   two: the source's and the destination's). *)
let crossed_comps t (c : Slif.Types.channel) =
  let a = ci t (Slif.Partition.comp_of_exn t.part c.c_src) in
  match c.c_dst with
  | Slif.Types.Dport _ -> [ a ]
  | Slif.Types.Dnode d ->
      let b = ci t (Slif.Partition.comp_of_exn t.part d) in
      if a = b then [] else [ a; b ]

(* --- Delta refresh after an invalidation --------------------------------- *)

(* Recompute the bitrates of all channels sourced at nodes of the
   invalidation set [set] (their execution times may have changed) and
   return the buses whose aggregate rate moved. *)
let refresh_rates t set =
  let cg = Slif.Graph.compact t.graph in
  let touched = ref [] in
  List.iter
    (fun id ->
      if not t.mark.(id) then begin
        t.mark.(id) <- true;
        for k = cg.Slif.Compact.out_off.(id) to cg.Slif.Compact.out_off.(id + 1) - 1 do
          let cid = cg.Slif.Compact.out_chan.(k) in
          let r = Slif.Estimate.chan_bitrate_by_id t.est cid in
          if r <> t.chan_rate.(cid) then begin
            setf t t.chan_rate cid r;
            touched := Slif.Partition.bus_of_exn t.part cid :: !touched
          end
        done
      end)
    set;
  List.iter (fun id -> t.mark.(id) <- false) set;
  !touched

let refresh_time t set =
  List.iter (fun id -> t.mark.(id) <- true) set;
  Array.iteri
    (fun i (node, _) -> if t.mark.(node) then setf t t.time_viol i (time_viol_of t i))
    t.deadlines;
  List.iter (fun id -> t.mark.(id) <- false) set

let refresh_bitrate t buses =
  let buses = List.sort_uniq compare buses in
  List.iter (fun b -> setf t t.bitrate_viol b (bitrate_viol_of t b)) buses

let refresh_comp_viol t comps =
  List.iter
    (fun k ->
      setf t t.size_viol k (size_viol_of t k);
      setf t t.io_viol k (io_viol_of t k))
    comps

(* --- Applying moves ------------------------------------------------------- *)

let invalidate t txn set =
  Slif.Estimate.invalidate_nodes t.est set;
  txn.inval <- List.rev_append set txn.inval

let apply_node t txn node to_ =
  let s = slif t in
  if node < 0 || node >= Array.length s.Slif.Types.nodes then
    invalid_arg "Engine.propose: no such node";
  (match (s.Slif.Types.nodes.(node).Slif.Types.n_kind, to_) with
  | Slif.Types.Behavior _, Slif.Partition.Cmem _ ->
      invalid_arg "Engine.propose: behaviors may only move to processors"
  | _ -> ());
  let from = Slif.Partition.comp_of_exn t.part node in
  if from <> to_ then begin
    let ki = ci t from and kj = ci t to_ in
    (* Size weights first: a missing weight must fail before any state
       changes. *)
    let w_from = size_weight t node (Slif.Partition.comp_tech s from) in
    let w_to = size_weight t node (Slif.Partition.comp_tech s to_) in
    (* Crossing contributions of the node's channels, under the old
       placement, leave the two perturbed components ... *)
    shift_cuts_at_node t ki node (-1);
    shift_cuts_at_node t kj node (-1);
    setf t t.comp_size ki (t.comp_size.(ki) -. w_from);
    setf t t.comp_size kj (t.comp_size.(kj) +. w_to);
    Slif.Partition.assign_node t.part ~node to_;
    txn.undos <- U_node (node, from) :: txn.undos;
    (* ... and re-enter under the new placement. *)
    shift_cuts_at_node t ki node 1;
    shift_cuts_at_node t kj node 1;
    (* Execution times of the node and its transitive accessors changed
       (new ict/transfer technologies), so their memo entries, dependent
       channel bitrates and dependent deadlines are refreshed. *)
    let set = Slif.Graph.transitive_callers t.graph node in
    invalidate t txn set;
    let touched_buses = refresh_rates t set in
    refresh_comp_viol t (if ki = kj then [ ki ] else [ ki; kj ]);
    refresh_time t set;
    refresh_bitrate t touched_buses
  end

let apply_chan t txn chan to_bus =
  let s = slif t in
  if chan < 0 || chan >= Array.length s.Slif.Types.chans then
    invalid_arg "Engine.propose: no such channel";
  if to_bus < 0 || to_bus >= Array.length s.Slif.Types.buses then
    invalid_arg "Engine.propose: no such bus";
  let from_bus = Slif.Partition.bus_of_exn t.part chan in
  if from_bus <> to_bus then begin
    let c = s.Slif.Types.chans.(chan) in
    (* The crossing status is a property of the endpoints' components and
       does not change; only the bus it is attributed to does. *)
    let ks = crossed_comps t c in
    List.iter
      (fun k ->
        seti t t.cut_count.(k) from_bus (t.cut_count.(k).(from_bus) - 1);
        seti t t.cut_count.(k) to_bus (t.cut_count.(k).(to_bus) + 1))
      ks;
    Slif.Partition.assign_chan t.part ~chan ~bus:to_bus;
    txn.undos <- U_chan (chan, from_bus) :: txn.undos;
    (* The new bus changes the channel's transfer time, hence the source
       node's execution time and everything upstream of it — the
       fine-grained invalidation that replaces invalidate_all. *)
    let set = Slif.Graph.transitive_callers t.graph c.c_src in
    invalidate t txn set;
    let touched_buses = refresh_rates t set in
    refresh_comp_viol t ks;
    refresh_time t set;
    refresh_bitrate t (from_bus :: to_bus :: touched_buses)
  end

let rec apply t txn = function
  | Move_node { node; to_ } -> apply_node t txn node to_
  | Move_chan { chan; to_bus } -> apply_chan t txn chan to_bus
  | Move_group moves -> List.iter (apply t txn) moves

(* --- Totals --------------------------------------------------------------- *)

let sum arr = Array.fold_left ( +. ) 0.0 arr

let breakdown t =
  let size_violation = sum t.size_viol in
  let io_violation = sum t.io_viol in
  let time_violation = sum t.time_viol in
  let bitrate_violation = sum t.bitrate_viol in
  {
    Cost.size_violation;
    io_violation;
    time_violation;
    bitrate_violation;
    total =
      (t.weights.Cost.w_size *. size_violation)
      +. (t.weights.Cost.w_io *. io_violation)
      +. (t.weights.Cost.w_time *. time_violation)
      +. (t.weights.Cost.w_bitrate *. bitrate_violation);
  }

let cost t = (breakdown t).Cost.total
let comp_size t comp = t.comp_size.(ci t comp)

(* --- Transactions --------------------------------------------------------- *)

let rollback_txn t txn =
  List.iter
    (function
      | U_node (node, comp) -> Slif.Partition.assign_node t.part ~node comp
      | U_chan (chan, bus) -> Slif.Partition.assign_chan t.part ~chan ~bus
      | U_float (arr, i, v) -> arr.(i) <- v
      | U_int (arr, i, v) -> arr.(i) <- v)
    txn.undos;
  Slif.Partition.restore_version t.part txn.saved_version;
  (* The memo entries recomputed under the proposed placement are stale
     again; the invalidation set only depends on the static graph, so
     re-dropping the same nodes restores coherence. *)
  Slif.Estimate.invalidate_nodes t.est txn.inval;
  t.txn <- None

let propose t move =
  if t.txn <> None then invalid_arg "Engine.propose: a transaction is already pending";
  let txn =
    { saved_version = Slif.Partition.version t.part; undos = []; inval = [] }
  in
  t.txn <- Some txn;
  (match apply t txn move with
  | () -> ()
  | exception e ->
      (* An infeasible submove must not leave a half-applied group. *)
      rollback_txn t txn;
      raise e);
  t.scored <- t.scored + 1;
  Slif_obs.Counter.incr "search.partitions_scored";
  Slif_obs.Counter.incr "engine.moves_proposed";
  cost t

let commit t =
  match t.txn with
  | None -> invalid_arg "Engine.commit: no pending transaction"
  | Some _ ->
      t.txn <- None;
      Slif_obs.Counter.incr "engine.moves_committed"

let rollback t =
  match t.txn with
  | None -> invalid_arg "Engine.rollback: no pending transaction"
  | Some txn ->
      rollback_txn t txn;
      Slif_obs.Counter.incr "engine.moves_rolled_back"

(* --- Construction --------------------------------------------------------- *)

(* Score the partition's current (total) state into zeroed aggregates.
   [create] and [acquire] both come through here, with the same loop
   order and arithmetic, so a re-acquired replica's aggregates are
   bitwise those of a freshly created engine over the same partition. *)
let init_aggregates t =
  let s = slif t in
  Array.iteri
    (fun i _ ->
      let comp = Slif.Partition.comp_of_exn t.part i in
      let k = ci t comp in
      t.comp_size.(k) <-
        t.comp_size.(k) +. size_weight t i (Slif.Partition.comp_tech s comp))
    s.Slif.Types.nodes;
  Array.iter
    (fun (c : Slif.Types.channel) ->
      let bus = Slif.Partition.bus_of_exn t.part c.c_id in
      List.iter
        (fun k -> t.cut_count.(k).(bus) <- t.cut_count.(k).(bus) + 1)
        (crossed_comps t c);
      t.chan_rate.(c.c_id) <- Slif.Estimate.chan_bitrate_mbps t.est c)
    s.Slif.Types.chans;
  for k = 0 to t.n_comps - 1 do
    t.size_viol.(k) <- size_viol_of t k;
    t.io_viol.(k) <- io_viol_of t k
  done;
  Array.iteri (fun i _ -> t.time_viol.(i) <- time_viol_of t i) t.deadlines;
  for b = 0 to Array.length t.bitrate_viol - 1 do
    t.bitrate_viol.(b) <- bitrate_viol_of t b
  done;
  (* Building the aggregates scores the partition in full. *)
  Slif_obs.Counter.incr "search.partitions_scored"

let create ?(weights = Cost.default_weights) ?(constraints = Cost.no_constraints) graph part
    =
  Slif_obs.Span.with_ "engine.create" @@ fun () ->
  let s = Slif.Graph.slif graph in
  let n_nodes = Array.length s.Slif.Types.nodes in
  let n_chans = Array.length s.Slif.Types.chans in
  let n_procs = Array.length s.Slif.Types.procs in
  let n_mems = Array.length s.Slif.Types.mems in
  let n_buses = Array.length s.Slif.Types.buses in
  let n_comps = n_procs + n_mems in
  let est = Search.estimator graph part in
  let proc_comps = Array.init n_procs (fun i -> Slif.Partition.Cproc i) in
  let all_comps =
    Array.append proc_comps (Array.init n_mems (fun m -> Slif.Partition.Cmem m))
  in
  let incident =
    (* Channel ids incident to each node (out-row then in-row, first
       occurrence kept), straight off the compact CSR — no channel-record
       lists are materialized for engine construction. *)
    let cg = Slif.Graph.compact graph in
    Array.init n_nodes (fun i ->
        let seen = Hashtbl.create 8 in
        let acc = ref [] in
        let add cid =
          if not (Hashtbl.mem seen cid) then begin
            Hashtbl.add seen cid ();
            acc := cid :: !acc
          end
        in
        for k = cg.Slif.Compact.out_off.(i) to cg.Slif.Compact.out_off.(i + 1) - 1 do
          add cg.Slif.Compact.out_chan.(k)
        done;
        for k = cg.Slif.Compact.in_off.(i) to cg.Slif.Compact.in_off.(i + 1) - 1 do
          add cg.Slif.Compact.in_chan.(k)
        done;
        Array.of_list (List.rev !acc))
  in
  let deadlines =
    Array.of_list
      (List.filter_map
         (fun (name, deadline) ->
           match Slif.Types.node_by_name s name with
           | Some node -> Some (node.Slif.Types.n_id, deadline)
           | None -> None)
         constraints.Cost.deadlines_us)
  in
  let t =
    {
      graph;
      part;
      est;
      weights;
      constraints;
      deadlines;
      n_procs;
      n_comps;
      comp_size = Array.make n_comps 0.0;
      cut_count = Array.init n_comps (fun _ -> Array.make n_buses 0);
      chan_rate = Array.make n_chans 0.0;
      size_viol = Array.make n_comps 0.0;
      io_viol = Array.make n_comps 0.0;
      time_viol = Array.make (Array.length deadlines) 0.0;
      bitrate_viol = Array.make n_buses 0.0;
      proc_comps;
      all_comps;
      incident;
      mark = Array.make n_nodes false;
      txn = None;
      scored = 0;
    }
  in
  (* Initial aggregates from the partition's current state (requires a
     total mapping, like Cost.evaluate). *)
  init_aggregates t;
  t

let of_problem (problem : Search.problem) part =
  create ~weights:problem.Search.weights ~constraints:problem.Search.constraints
    problem.Search.graph part

(* Re-point an existing engine at a fresh partition of the same SLIF.
   Everything immutable — incident lists, candidate arrays, resolved
   deadlines, the estimator's preallocated memo — is kept; only the
   aggregates are zeroed and rescored.  This is the per-domain replica
   primitive: a pool worker creates one engine at domain start-up and
   re-acquires it for every work item, so the per-task cost drops from a
   full [create] (incident-list and estimator construction included) to
   one initial scoring over arrays that are already hot in its cache,
   with zero allocation shared across domains. *)
let acquire t part =
  if t.txn <> None then invalid_arg "Engine.acquire: a transaction is pending";
  let rebind () =
    Slif_obs.Span.with_ "engine.acquire" @@ fun () ->
    Slif_obs.Counter.incr "engine.acquires";
    t.part <- part;
    Slif.Estimate.rebind t.est part;
    t.scored <- 0;
    (* The additive aggregates must restart from zero; the remaining
       arrays are fully overwritten by [init_aggregates]. *)
    Array.fill t.comp_size 0 t.n_comps 0.0;
    Array.iter (fun row -> Array.fill row 0 (Array.length row) 0) t.cut_count;
    init_aggregates t
  in
  if not (Slif_obs.Attribution.on ()) then rebind ()
  else begin
    let t0 = Slif_obs.Clock.now_us () in
    rebind ();
    (* Like [copy]: the re-acquisition cost is engine-setup work inside
       the task body, carved out of gross task-run by the report. *)
    Slif_obs.Attribution.add Slif_obs.Attribution.Copy (Slif_obs.Clock.now_us () -. t0)
  end

(* A copy clones the partition and rebuilds the aggregates from it.
   Rebuilding (rather than cloning every array and the estimator's memo
   tables) costs one full initial scoring, but yields an engine with no
   cell shared with the original — the isolation a per-task clone in a
   parallel sweep needs. *)
let copy t =
  if t.txn <> None then invalid_arg "Engine.copy: a transaction is pending";
  let clone () =
    Slif_obs.Span.with_ "engine.copy" @@ fun () ->
    Slif_obs.Counter.incr "engine.copies";
    create ~weights:t.weights ~constraints:t.constraints t.graph
      (Slif.Partition.copy t.part)
  in
  if not (Slif_obs.Attribution.on ()) then clone ()
  else begin
    let t0 = Slif_obs.Clock.now_us () in
    let r = clone () in
    (* The clone cost is part of the task body that requested it; the
       attribution report carves it out of gross task-run. *)
    Slif_obs.Attribution.add Slif_obs.Attribution.Copy (Slif_obs.Clock.now_us () -. t0);
    r
  end

(* --- Move generation ------------------------------------------------------ *)

let candidates t node =
  let s = slif t in
  match s.Slif.Types.nodes.(node).Slif.Types.n_kind with
  | Slif.Types.Behavior _ -> t.proc_comps
  | Slif.Types.Variable _ -> t.all_comps

let random_move t rng =
  let s = slif t in
  let n_nodes = Array.length s.Slif.Types.nodes in
  let n_chans = Array.length s.Slif.Types.chans in
  let n_buses = Array.length s.Slif.Types.buses in
  let try_chan = n_buses > 1 && n_chans > 0 && Slif_util.Prng.int rng 4 = 0 in
  if try_chan then begin
    let chan = Slif_util.Prng.int rng n_chans in
    let to_bus = Slif_util.Prng.int rng n_buses in
    if to_bus = Slif.Partition.bus_of_exn t.part chan then None
    else Some (Move_chan { chan; to_bus })
  end
  else begin
    let node = Slif_util.Prng.int rng n_nodes in
    let cands = candidates t node in
    let to_ = cands.(Slif_util.Prng.int rng (Array.length cands)) in
    if to_ = Slif.Partition.comp_of_exn t.part node then None
    else Some (Move_node { node; to_ })
  end

let moves_to t target =
  let s = slif t in
  let nodes =
    Array.to_list
      (Array.mapi
         (fun i _ ->
           let want = Slif.Partition.comp_of_exn target i in
           if Slif.Partition.comp_of t.part i <> Some want then
             Some (Move_node { node = i; to_ = want })
           else None)
         s.Slif.Types.nodes)
  in
  let chans =
    Array.to_list
      (Array.mapi
         (fun i _ ->
           let want = Slif.Partition.bus_of_exn target i in
           if Slif.Partition.bus_of t.part i <> Some want then
             Some (Move_chan { chan = i; to_bus = want })
           else None)
         s.Slif.Types.chans)
  in
  List.filter_map Fun.id (nodes @ chans)
