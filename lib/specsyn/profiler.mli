(** Scaling profiler for the parallel exploration stack.

    [slif profile] answers the question BENCH A8 raised: when doubling
    [-j] does not double throughput, where do the cores go?  The driver
    runs the same {!Explore} sweep once per requested domain count with
    the full profiling stack armed — span registry, {!Slif_obs.Lockprof},
    {!Slif_obs.Attribution}, {!Slif_obs.Gcprof} pause timing — and folds
    each run into one {!run} record: elapsed time and speedup versus the
    slowest-parallelism run, the per-domain wall-time attribution
    (task-run / queue-wait / lock-wait / GC / copy / idle), GC pressure
    and pause time, per-lock contention, task-duration and queue-latency
    quantiles, and per-domain memo hit rates.

    Profiling must never change what exploration computes, so every run
    also digests its result entries ((alloc, algo, cost, evaluated) per
    entry — everything except timing); {!t.identical} says the digests
    agreed across all domain counts, and the [-j] differential test
    holds it to [true].

    All switches the driver flips are restored to off when it returns;
    registry contents are reset between runs, so each {!run} reflects
    exactly one sweep. *)

type run = {
  p_jobs : int;
  p_elapsed_s : float;
  p_speedup : float;  (** elapsed of the lowest-jobs run / this run's elapsed *)
  p_tasks : int;  (** pool tasks the sweep submitted *)
  p_designs : int;  (** partitions evaluated ([explore.partitions_evaluated]) *)
  p_designs_per_s : float;
      (** [p_designs / p_elapsed_s] — the same counter BENCH A8 reads, so
          the profile's throughput column is comparable with
          [bench.a8.designs_per_s.jN] *)
  p_digest : string;  (** hex digest of the result entries, timing excluded *)
  p_report : Slif_obs.Attribution.report;
  p_gc : Slif_obs.Gcprof.counts;
  p_gc_time_us : float;  (** runtime/GC pause time (0.0 when timing unavailable) *)
  p_gc_lost_events : int;
  p_locks : Slif_obs.Lockprof.stat list;  (** locks that recorded acquisitions *)
  p_task_run : Slif_obs.Histogram.quantiles option;  (** [pool.task_run_us] *)
  p_task_queue_wait : Slif_obs.Histogram.quantiles option;  (** [pool.task_queue_wait_us] *)
  p_memo : (int * (int * int)) list;  (** per domain: (memo hits, misses) *)
}

type t = {
  spec_name : string;
  jobs : int list;  (** as requested, ascending *)
  runs : run list;  (** one per entry of [jobs], same order *)
  identical : bool;  (** all runs produced byte-identical result digests *)
}

val run :
  ?constraints:Cost.constraints ->
  ?weights:Cost.weights ->
  ?algos:Explore.algo list ->
  ?allocs:Alloc.t list ->
  ?chunk:int ->
  ?trace:(int -> string) ->
  name:string ->
  jobs:int list ->
  Slif.Types.t ->
  t
(** [run ~name ~jobs slif] sweeps the annotated SLIF once per domain
    count in [jobs] (deduplicated, ascending; [Invalid_argument] when
    empty or containing a count below 1).  [chunk] is forwarded to
    {!Explore.run}'s restart slicing (default: the
    {!Slif_util.Pool.default_chunk} heuristic).  [trace] maps a domain
    count to a file path: when given, each run's Chrome trace — spans
    plus the pool's counter tracks — is written there before the
    registry is reset for the next run. *)

val to_json : t -> Slif_obs.Json.t
(** The machine-readable scaling report, schema ["slif-profile/1"]. *)

val to_text : t -> string
(** The human rendering: a speedup curve and, per run, the attribution
    table with coverage, GC, lock and task-latency summaries. *)
