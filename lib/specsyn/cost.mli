(** Cost function scoring a candidate partition.

    System design searches for a partition satisfying constraints on size,
    I/O, performance and bus bitrate (paper, Section 1).  The cost is a
    weighted sum of normalized constraint violations, zero when all
    constraints hold; algorithms minimize it.  All terms are computed from
    SLIF annotations through {!Slif.Estimate} — this is what makes
    thousands-of-partitions searches affordable. *)

type constraints = {
  deadlines_us : (string * float) list;
      (* per-process execution-time bounds; missing processes are unconstrained *)
}

val no_constraints : constraints

type weights = {
  w_size : float;
  w_io : float;
  w_time : float;
  w_bitrate : float;
}

val default_weights : weights

val excess : float -> float option -> float
(** [excess value cap] is the relative excess of [value] over [cap]:
    [(value - cap) / cap] clamped at zero, and zero when there is no cap
    (or a non-positive one).  Exported so {!Engine}'s delta evaluation
    reproduces {!evaluate} bit-for-bit per term. *)

type breakdown = {
  size_violation : float;     (* sum over components of relative excess *)
  io_violation : float;
  time_violation : float;
  bitrate_violation : float;
  total : float;
}

val evaluate :
  ?weights:weights -> constraints:constraints -> Slif.Estimate.t -> breakdown
(** Scores the estimator's current partition.  The partition must be
    proper (see {!Slif.Validate}); behaviors mapped to memories or missing
    weights raise [Invalid_argument]. *)

val total :
  ?weights:weights -> constraints:constraints -> Slif.Estimate.t -> float
