(** Pareto-front extraction over the performance/area trade-off.

    Interactive system design is about trade-offs: faster designs buy
    speed with gates.  This module sweeps the time-vs-size weighting of
    the cost function, collects the designs the searches produce, scores
    each design by (worst process execution time, total custom-hardware
    area), and keeps the non-dominated set — the curve a designer actually
    chooses from. *)

type point = {
  part : Slif.Partition.t;
  worst_exectime_us : float;   (* max over processes *)
  hw_gates : float;            (* total size over custom processors *)
  sw_bytes : float;            (* total size over standard processors *)
  weight_time : float;         (* the sweep position that produced it *)
}

val score : Slif.Graph.t -> Slif.Partition.t -> weight_time:float -> point
(** Evaluate one partition.  Raises like {!Slif.Estimate} on improper
    partitions. *)

val dominated : point -> point -> bool
(** [dominated a b] is true when [b] is at least as good as [a] on both
    axes and strictly better on one. *)

val front : point list -> point list
(** Non-dominated subset, sorted by execution time (fastest first). *)

val sweep :
  ?jobs:int ->
  ?constraints:Cost.constraints ->
  ?steps_per_point:int ->
  ?weights_time:float list ->
  ?chunk:int ->
  Slif.Graph.t ->
  point list
(** [sweep graph] runs simulated annealing once per time-weight in
    [weights_time] (default seven points between 0.1 and 16) and returns
    the Pareto front of all solutions found.

    [jobs] (default 1) anneals the weight points on a {!Slif_util.Pool}
    of that many domains, grouped into contiguous chunks of [chunk]
    points (default {!Slif_util.Pool.default_chunk}) so each task
    amortizes per-task setup over several points.  Each point's
    generator is seeded by its index and anneals a point-private
    partition on the executing domain's engine replica (re-acquired per
    point, with {!Engine.create}-bitwise rescoring), so the front is
    identical for every [jobs] and every [chunk]. *)
