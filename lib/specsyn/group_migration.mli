(** Group-migration (Kernighan-Lin-style) improvement.

    Repeated passes over the nodes: in each pass every unlocked node is
    tentatively moved to its best alternative component; the best single
    move is committed and the node locked; the pass's best prefix of moves
    is kept.  Passes repeat until one yields no improvement.  This is the
    classic hill-climbing-with-escape partitioner the paper's complexity
    argument (the n-squared algorithm of Section 5) refers to. *)

val run :
  ?max_passes:int ->
  ?initial:Slif.Partition.t ->
  ?replica:Engine.t ->
  Search.problem ->
  Search.solution
(** [replica] reuses the calling domain's engine via {!Engine.acquire}
    (bitwise-identical scoring, no per-run engine build) — the
    share-nothing sweep's fast path. *)
