let auto ?(runs = 10) ?(seed = 1) ?limits sem =
  Slif_obs.Span.with_ "flow.auto_profile" ~args:[ ("runs", string_of_int runs) ]
  @@ fun () ->
  let rng = Slif_util.Prng.create seed in
  let machine =
    Interp.create ?limits ~inputs:(fun _ -> Slif_util.Prng.int rng 256) sem
  in
  let design = Vhdl.Sem.design sem in
  for _ = 1 to runs do
    List.iter
      (fun (p : Vhdl.Ast.process) ->
        (* A pass that dies keeps its partial observations. *)
        try Interp.run_process machine p.Vhdl.Ast.proc_name with
        | Interp.Limit_exceeded _ | Interp.Runtime_error _ -> ())
      design.Vhdl.Ast.processes
  done;
  Slif_obs.Counter.add "flow.interp_steps" (Interp.steps machine);
  Interp.profile machine
