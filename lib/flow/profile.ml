module Smap = Map.Make (String)

type t = { branches : float Smap.t; whiles : float Smap.t }

let empty = { branches = Smap.empty; whiles = Smap.empty }

let default_while_trips = 8.0

let branch_key ~behavior ~site ~arm = Printf.sprintf "%s.branch%d.arm%d" behavior site arm
let while_key ~behavior ~site = Printf.sprintf "%s.while%d" behavior site

let set_branch t ~behavior ~site ~arm p =
  if p < 0.0 || p > 1.0 then invalid_arg "Profile.set_branch: probability out of range";
  { t with branches = Smap.add (branch_key ~behavior ~site ~arm) p t.branches }

let set_while t ~behavior ~site ~trips =
  if trips < 0.0 then invalid_arg "Profile.set_while: negative trip count";
  { t with whiles = Smap.add (while_key ~behavior ~site) trips t.whiles }

let branch_prob t ~behavior ~site ~arm ~arms =
  match Smap.find_opt (branch_key ~behavior ~site ~arm) t.branches with
  | Some p -> p
  | None -> 1.0 /. float_of_int (max 1 arms)

let while_trips t ~behavior ~site =
  match Smap.find_opt (while_key ~behavior ~site) t.whiles with
  | Some n -> n
  | None -> default_while_trips

let of_string text =
  Slif_obs.Span.with_ "flow.profile.parse" @@ fun () ->
  let lines = String.split_on_char '\n' text in
  let parse (lineno, acc) line =
    let line =
      match String.index_opt line '#' with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    let line = String.trim line in
    if line = "" then (lineno + 1, acc)
    else
      match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
      | [ key; value ] -> (
          let value =
            match float_of_string_opt value with
            | Some v -> v
            | None -> failwith (Printf.sprintf "profile line %d: bad number %S" lineno value)
          in
          match String.split_on_char '.' key with
          | [ behavior; site; arm ]
            when String.length site > 6 && String.sub site 0 6 = "branch"
                 && String.length arm > 3 && String.sub arm 0 3 = "arm" -> (
              match
                ( int_of_string_opt (String.sub site 6 (String.length site - 6)),
                  int_of_string_opt (String.sub arm 3 (String.length arm - 3)) )
              with
              | Some site, Some arm ->
                  (lineno + 1, set_branch acc ~behavior ~site ~arm value)
              | _ -> failwith (Printf.sprintf "profile line %d: bad site %S" lineno key))
          | [ behavior; site ]
            when String.length site > 5 && String.sub site 0 5 = "while" -> (
              match int_of_string_opt (String.sub site 5 (String.length site - 5)) with
              | Some site -> (lineno + 1, set_while acc ~behavior ~site ~trips:value)
              | None -> failwith (Printf.sprintf "profile line %d: bad site %S" lineno key))
          | _ -> failwith (Printf.sprintf "profile line %d: bad key %S" lineno key))
      | _ -> failwith (Printf.sprintf "profile line %d: expected 'key value'" lineno)
  in
  snd (List.fold_left parse (1, empty) lines)

let to_string t =
  let buf = Buffer.create 256 in
  Smap.iter (fun k v -> Buffer.add_string buf (Printf.sprintf "%s %g\n" k v)) t.branches;
  Smap.iter (fun k v -> Buffer.add_string buf (Printf.sprintf "%s %g\n" k v)) t.whiles;
  Buffer.contents buf
