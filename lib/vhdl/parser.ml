open Ast

type state = { toks : (Token.t * Loc.t) array; mutable pos : int }

let current st = fst st.toks.(st.pos)
let current_loc st = snd st.toks.(st.pos)
let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let fail st fmt =
  Printf.ksprintf
    (fun msg ->
      Loc.error (current_loc st) "%s (found %s)" msg (Token.to_string (current st)))
    fmt

let eat st tok =
  if current st = tok then advance st
  else fail st "expected %s" (Token.to_string tok)

let eat_kw st k = eat st (Token.Keyword k)

let accept st tok =
  if current st = tok then begin
    advance st;
    true
  end
  else false

let accept_kw st k = accept st (Token.Keyword k)

let ident st =
  match current st with
  | Token.Ident s ->
      advance st;
      s
  | _ -> fail st "expected identifier"

let int_lit st =
  match current st with
  | Token.Int_lit n ->
      advance st;
      n
  | Token.Minus -> (
      advance st;
      match current st with
      | Token.Int_lit n ->
          advance st;
          -n
      | _ -> fail st "expected integer literal")
  | _ -> fail st "expected integer literal"

(* --- Types ------------------------------------------------------------ *)

let rec parse_type st =
  match current st with
  | Token.Keyword Token.K_integer ->
      advance st;
      if accept_kw st Token.K_range then begin
        let lo = int_lit st in
        eat_kw st Token.K_to;
        let hi = int_lit st in
        Int_range (lo, hi)
      end
      else Integer
  | Token.Keyword Token.K_natural ->
      advance st;
      Natural
  | Token.Keyword Token.K_boolean ->
      advance st;
      Boolean
  | Token.Keyword Token.K_bit ->
      advance st;
      Bit
  | Token.Keyword Token.K_bit_vector ->
      advance st;
      eat st Token.Lparen;
      let a = int_lit st in
      let width =
        if accept_kw st Token.K_downto then begin
          let b = int_lit st in
          a - b + 1
        end
        else if accept_kw st Token.K_to then begin
          let b = int_lit st in
          b - a + 1
        end
        else a
      in
      eat st Token.Rparen;
      Bit_vector width
  | Token.Ident name ->
      advance st;
      Named name
  | _ -> fail st "expected a type"

(* A full type definition, as in [type t is array (1 to 384) of integer]. *)
and parse_type_def st =
  if accept_kw st Token.K_array then begin
    eat st Token.Lparen;
    let a = int_lit st in
    let downto_ = accept_kw st Token.K_downto in
    if not downto_ then eat_kw st Token.K_to;
    let b = int_lit st in
    eat st Token.Rparen;
    eat_kw st Token.K_of;
    let elem = parse_type st in
    let lo = min a b and hi = max a b in
    Array_of { length = hi - lo + 1; lo; elem }
  end
  else if accept_kw st Token.K_range then begin
    let lo = int_lit st in
    eat_kw st Token.K_to;
    let hi = int_lit st in
    Int_range (lo, hi)
  end
  else parse_type st

(* --- Expressions ------------------------------------------------------ *)

let rec parse_expr_prec st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  let rec loop lhs =
    if accept_kw st Token.K_or then loop (Binop (Or, lhs, parse_and st))
    else if accept_kw st Token.K_xor then loop (Binop (Xor, lhs, parse_and st))
    else lhs
  in
  loop lhs

and parse_and st =
  let lhs = parse_rel st in
  let rec loop lhs =
    if accept_kw st Token.K_and then loop (Binop (And, lhs, parse_rel st)) else lhs
  in
  loop lhs

and parse_rel st =
  let lhs = parse_add st in
  match current st with
  | Token.Eq ->
      advance st;
      Binop (Eq, lhs, parse_add st)
  | Token.Neq ->
      advance st;
      Binop (Neq, lhs, parse_add st)
  | Token.Lt ->
      advance st;
      Binop (Lt, lhs, parse_add st)
  | Token.Le_or_sigassign ->
      advance st;
      Binop (Le, lhs, parse_add st)
  | Token.Gt ->
      advance st;
      Binop (Gt, lhs, parse_add st)
  | Token.Ge ->
      advance st;
      Binop (Ge, lhs, parse_add st)
  | _ -> lhs

and parse_add st =
  let lhs = parse_mul st in
  let rec loop lhs =
    match current st with
    | Token.Plus ->
        advance st;
        loop (Binop (Add, lhs, parse_mul st))
    | Token.Minus ->
        advance st;
        loop (Binop (Sub, lhs, parse_mul st))
    | Token.Amp ->
        advance st;
        loop (Binop (Concat, lhs, parse_mul st))
    | _ -> lhs
  in
  loop lhs

and parse_mul st =
  let lhs = parse_unary st in
  let rec loop lhs =
    match current st with
    | Token.Star ->
        advance st;
        loop (Binop (Mul, lhs, parse_unary st))
    | Token.Slash ->
        advance st;
        loop (Binop (Div, lhs, parse_unary st))
    | Token.Keyword Token.K_mod ->
        advance st;
        loop (Binop (Mod, lhs, parse_unary st))
    | Token.Keyword Token.K_rem ->
        advance st;
        loop (Binop (Rem, lhs, parse_unary st))
    | _ -> lhs
  in
  loop lhs

and parse_unary st =
  match current st with
  | Token.Minus ->
      advance st;
      Unop (Neg, parse_unary st)
  | Token.Keyword Token.K_not ->
      advance st;
      Unop (Not, parse_unary st)
  | Token.Keyword Token.K_abs ->
      advance st;
      Unop (Abs, parse_unary st)
  | _ -> parse_primary st

and parse_primary st =
  match current st with
  | Token.Int_lit n ->
      advance st;
      Int_lit n
  | Token.Keyword Token.K_true ->
      advance st;
      Bool_lit true
  | Token.Keyword Token.K_false ->
      advance st;
      Bool_lit false
  | Token.Lparen ->
      advance st;
      let e = parse_expr_prec st in
      eat st Token.Rparen;
      e
  | Token.Ident name -> (
      advance st;
      match current st with
      | Token.Tick ->
          advance st;
          let attr = ident st in
          Attr (name, attr)
      | Token.Lparen ->
          advance st;
          let args = parse_args st in
          eat st Token.Rparen;
          (* A single argument could be an array index or a one-argument
             call; {!Sem} disambiguates from the symbol kind.  We encode as
             [Index] when one argument, [Call] otherwise, and let Sem
             re-interpret [Index] of a function name as a call. *)
          (match args with [ e ] -> Index (name, e) | _ -> Call (name, args))
      | _ -> Name name)
  | _ -> fail st "expected an expression"

and parse_args st =
  let first = parse_expr_prec st in
  let rec loop acc = if accept st Token.Comma then loop (parse_expr_prec st :: acc) else acc in
  List.rev (loop [ first ])

(* --- Statements ------------------------------------------------------- *)

let parse_target_of_expr st e =
  match e with
  | Name n -> Tname n
  | Index (n, i) -> Tindex (n, i)
  | _ -> fail st "expected an assignable name"

let rec parse_stmts st stop =
  let rec loop acc =
    if stop (current st) then List.rev acc else loop (parse_stmt st :: acc)
  in
  loop []

and stop_end tok = tok = Token.Keyword Token.K_end
and stop_end_or tok kws = tok = Token.Keyword Token.K_end || List.exists (fun k -> tok = Token.Keyword k) kws

and parse_stmt st =
  match current st with
  | Token.Keyword Token.K_if -> parse_if st
  | Token.Keyword Token.K_case -> parse_case st
  | Token.Keyword Token.K_for -> parse_for st
  | Token.Keyword Token.K_while ->
      advance st;
      let cond = parse_expr_prec st in
      eat_kw st Token.K_loop;
      let body = parse_stmts st stop_end in
      eat_kw st Token.K_end;
      eat_kw st Token.K_loop;
      eat st Token.Semicolon;
      While (cond, body)
  | Token.Keyword Token.K_loop ->
      advance st;
      let body = parse_stmts st stop_end in
      eat_kw st Token.K_end;
      eat_kw st Token.K_loop;
      eat st Token.Semicolon;
      Loop_forever body
  | Token.Keyword Token.K_par -> parse_par st
  | Token.Keyword Token.K_wait -> parse_wait st
  | Token.Keyword Token.K_return ->
      advance st;
      if accept st Token.Semicolon then Return None
      else begin
        let e = parse_expr_prec st in
        eat st Token.Semicolon;
        Return (Some e)
      end
  | Token.Keyword Token.K_null ->
      advance st;
      eat st Token.Semicolon;
      Null_stmt
  | Token.Ident "exit" ->
      advance st;
      eat st Token.Semicolon;
      Exit_loop
  | Token.Ident _ -> parse_simple st
  | _ -> fail st "expected a statement"

and parse_simple st =
  (* Assignment, signal assignment, or procedure call, all beginning with a
     name.  [send]/[receive] calls become message-pass statements. *)
  let e = parse_primary st in
  match current st with
  | Token.Assign ->
      let tgt = parse_target_of_expr st e in
      advance st;
      let rhs = parse_expr_prec st in
      eat st Token.Semicolon;
      Assign (tgt, rhs)
  | Token.Le_or_sigassign ->
      let tgt = parse_target_of_expr st e in
      advance st;
      let rhs = parse_expr_prec st in
      eat st Token.Semicolon;
      Signal_assign (tgt, rhs)
  | Token.Semicolon ->
      advance st;
      (match e with
      | Name n -> Pcall (n, [])
      | Index ("send", _) | Call ("send", _) ->
          let args = (match e with Index (_, a) -> [ a ] | Call (_, a) -> a | _ -> []) in
          (match args with
          | [ Name ch; payload ] -> Send (ch, payload)
          | _ -> fail st "send expects (channel, expression)")
      | Index ("receive", _) | Call ("receive", _) ->
          let args = (match e with Index (_, a) -> [ a ] | Call (_, a) -> a | _ -> []) in
          (match args with
          | [ Name ch; Name v ] -> Receive (ch, Tname v)
          | [ Name ch; Index (v, i) ] -> Receive (ch, Tindex (v, i))
          | _ -> fail st "receive expects (channel, target)")
      | Index (n, arg) -> Pcall (n, [ arg ])
      | Call (n, args) -> Pcall (n, args)
      | _ -> fail st "expected a call or assignment")
  | _ -> fail st "expected ':=', '<=' or ';'"

and parse_if st =
  eat_kw st Token.K_if;
  let cond = parse_expr_prec st in
  eat_kw st Token.K_then;
  let stop tok =
    stop_end_or tok [ Token.K_elsif; Token.K_else ]
  in
  let body = parse_stmts st stop in
  let rec arms acc =
    if accept_kw st Token.K_elsif then begin
      let c = parse_expr_prec st in
      eat_kw st Token.K_then;
      let b = parse_stmts st stop in
      arms ((c, b) :: acc)
    end
    else List.rev acc
  in
  let all_arms = arms [ (cond, body) ] in
  let else_body =
    if accept_kw st Token.K_else then parse_stmts st stop_end else []
  in
  eat_kw st Token.K_end;
  eat_kw st Token.K_if;
  eat st Token.Semicolon;
  If (all_arms, else_body)

and parse_case st =
  eat_kw st Token.K_case;
  let subject = parse_expr_prec st in
  eat_kw st Token.K_is;
  let rec alts acc =
    if accept_kw st Token.K_when then begin
      let rec choices acc =
        let c =
          if accept_kw st Token.K_others then Ch_others else Ch_expr (parse_expr_prec st)
        in
        if accept st Token.Bar then choices (c :: acc) else List.rev (c :: acc)
      in
      let cs = choices [] in
      eat st Token.Arrow;
      let stop tok = stop_end_or tok [ Token.K_when ] in
      let body = parse_stmts st stop in
      alts ((cs, body) :: acc)
    end
    else List.rev acc
  in
  let alternatives = alts [] in
  eat_kw st Token.K_end;
  eat_kw st Token.K_case;
  eat st Token.Semicolon;
  Case (subject, alternatives)

and parse_for st =
  eat_kw st Token.K_for;
  let var = ident st in
  eat_kw st Token.K_in;
  let a = int_lit st in
  let downto_ = accept_kw st Token.K_downto in
  if not downto_ then eat_kw st Token.K_to;
  let b = int_lit st in
  eat_kw st Token.K_loop;
  let body = parse_stmts st stop_end in
  eat_kw st Token.K_end;
  eat_kw st Token.K_loop;
  eat st Token.Semicolon;
  let lo = min a b and hi = max a b in
  For (var, lo, hi, body)

and parse_par st =
  eat_kw st Token.K_par;
  let rec calls acc =
    if current st = Token.Keyword Token.K_end then List.rev acc
    else begin
      let name = ident st in
      let args =
        if accept st Token.Lparen then begin
          let a = parse_args st in
          eat st Token.Rparen;
          a
        end
        else []
      in
      eat st Token.Semicolon;
      calls ((name, args) :: acc)
    end
  in
  let body = calls [] in
  eat_kw st Token.K_end;
  eat_kw st Token.K_par;
  eat st Token.Semicolon;
  Par body

and parse_wait st =
  eat_kw st Token.K_wait;
  if accept_kw st Token.K_for then begin
    let n = int_lit st in
    let unit_ =
      if accept_kw st Token.K_ns then Ns
      else if accept_kw st Token.K_us then Us
      else if accept_kw st Token.K_ms then Ms
      else fail st "expected a time unit (ns/us/ms)"
    in
    eat st Token.Semicolon;
    Wait_for (n, unit_)
  end
  else if accept_kw st Token.K_until then begin
    let e = parse_expr_prec st in
    eat st Token.Semicolon;
    Wait_until e
  end
  else if accept_kw st Token.K_on then begin
    let rec names acc =
      let n = ident st in
      if accept st Token.Comma then names (n :: acc) else List.rev (n :: acc)
    in
    let ns = names [] in
    eat st Token.Semicolon;
    Wait_on ns
  end
  else begin
    eat st Token.Semicolon;
    Wait_on []
  end

(* --- Declarations ------------------------------------------------------ *)

let parse_ident_list st =
  let rec loop acc =
    let n = ident st in
    if accept st Token.Comma then loop (n :: acc) else List.rev (n :: acc)
  in
  loop []

let rec parse_decls st =
  let rec loop acc =
    match current st with
    | Token.Keyword Token.K_shared ->
        advance st;
        eat_kw st Token.K_variable;
        loop (List.rev_append (parse_var_decl st ~shared:true) acc)
    | Token.Keyword Token.K_variable ->
        advance st;
        loop (List.rev_append (parse_var_decl st ~shared:false) acc)
    | Token.Keyword Token.K_signal ->
        advance st;
        let names = parse_ident_list st in
        eat st Token.Colon;
        let ty = parse_type st in
        eat st Token.Semicolon;
        loop (List.rev_append (List.map (fun s_name -> Sig_decl { s_name; s_type = ty }) names) acc)
    | Token.Keyword Token.K_constant ->
        advance st;
        let name = ident st in
        eat st Token.Colon;
        let ty = parse_type st in
        eat st Token.Assign;
        let v = parse_expr_prec st in
        eat st Token.Semicolon;
        loop (Const_decl { c_name = name; c_type = ty; c_value = v } :: acc)
    | Token.Keyword Token.K_type ->
        advance st;
        let name = ident st in
        eat_kw st Token.K_is;
        let td = parse_type_def st in
        eat st Token.Semicolon;
        loop (Type_decl (name, td) :: acc)
    | _ -> List.rev acc
  in
  loop []

and parse_var_decl st ~shared =
  let names = parse_ident_list st in
  eat st Token.Colon;
  let ty = parse_type st in
  let init = if accept st Token.Assign then Some (parse_expr_prec st) else None in
  eat st Token.Semicolon;
  List.map
    (fun v_name -> Var_decl { v_name; v_type = ty; v_init = init; v_shared = shared })
    names

(* --- Subprograms, processes, design ------------------------------------ *)

let parse_params st =
  if accept st Token.Lparen then begin
    let rec group acc =
      let names = parse_ident_list st in
      eat st Token.Colon;
      let mode =
        if accept_kw st Token.K_in then In
        else if accept_kw st Token.K_out then Out
        else if accept_kw st Token.K_inout then Inout
        else In
      in
      let ty = parse_type st in
      let params =
        List.map (fun par_name -> { par_name; par_mode = mode; par_type = ty }) names
      in
      if accept st Token.Semicolon then group (List.rev_append params acc)
      else List.rev (List.rev_append params acc)
    in
    let ps = group [] in
    eat st Token.Rparen;
    ps
  end
  else []

let parse_subprogram st ~is_function =
  let name = ident st in
  let params = parse_params st in
  let ret =
    if is_function then begin
      eat_kw st Token.K_return;
      Some (parse_type st)
    end
    else None
  in
  eat_kw st Token.K_is;
  let decls = parse_decls st in
  eat_kw st Token.K_begin;
  let body = parse_stmts st stop_end in
  eat_kw st Token.K_end;
  (match current st with
  | Token.Ident _ -> ignore (ident st)
  | Token.Keyword Token.K_procedure | Token.Keyword Token.K_function -> advance st
  | _ -> ());
  (match current st with Token.Ident _ -> ignore (ident st) | _ -> ());
  eat st Token.Semicolon;
  { sub_name = name; sub_params = params; sub_ret = ret; sub_decls = decls; sub_body = body }

let parse_process st ~label =
  eat_kw st Token.K_process;
  if accept st Token.Lparen then begin
    ignore (parse_ident_list st);
    eat st Token.Rparen
  end;
  ignore (accept_kw st Token.K_is);
  let decls = parse_decls st in
  eat_kw st Token.K_begin;
  let body = parse_stmts st stop_end in
  eat_kw st Token.K_end;
  eat_kw st Token.K_process;
  (match current st with Token.Ident _ -> ignore (ident st) | _ -> ());
  eat st Token.Semicolon;
  { proc_name = label; proc_decls = decls; proc_body = body }

let parse_entity st =
  eat_kw st Token.K_entity;
  let name = ident st in
  eat_kw st Token.K_is;
  let ports =
    if accept_kw st Token.K_port then begin
      eat st Token.Lparen;
      let rec group acc =
        let names = parse_ident_list st in
        eat st Token.Colon;
        let mode =
          if accept_kw st Token.K_in then In
          else if accept_kw st Token.K_out then Out
          else if accept_kw st Token.K_inout then Inout
          else fail st "expected a port mode"
        in
        let ty = parse_type st in
        let ps = List.map (fun port_name -> { port_name; port_mode = mode; port_type = ty }) names in
        if accept st Token.Semicolon then group (List.rev_append ps acc)
        else List.rev (List.rev_append ps acc)
      in
      let ps = group [] in
      eat st Token.Rparen;
      eat st Token.Semicolon;
      ps
    end
    else []
  in
  eat_kw st Token.K_end;
  (match current st with
  | Token.Ident _ -> ignore (ident st)
  | Token.Keyword Token.K_entity ->
      advance st;
      (match current st with Token.Ident _ -> ignore (ident st) | _ -> ())
  | _ -> ());
  eat st Token.Semicolon;
  (name, ports)

let parse_architecture st =
  eat_kw st Token.K_architecture;
  let arch_name = ident st in
  eat_kw st Token.K_of;
  let _entity = ident st in
  eat_kw st Token.K_is;
  let rec decl_part decls subs =
    match current st with
    | Token.Keyword Token.K_procedure ->
        advance st;
        let s = parse_subprogram st ~is_function:false in
        decl_part decls (s :: subs)
    | Token.Keyword Token.K_function ->
        advance st;
        let s = parse_subprogram st ~is_function:true in
        decl_part decls (s :: subs)
    | Token.Keyword (Token.K_variable | Token.K_shared | Token.K_signal | Token.K_constant | Token.K_type) ->
        let ds = parse_decls st in
        decl_part (decls @ ds) subs
    | _ -> (decls, List.rev subs)
  in
  let decls, subs = decl_part [] [] in
  eat_kw st Token.K_begin;
  let rec procs acc =
    match current st with
    | Token.Ident label ->
        advance st;
        eat st Token.Colon;
        let p = parse_process st ~label in
        procs (p :: acc)
    | _ -> List.rev acc
  in
  let processes = procs [] in
  eat_kw st Token.K_end;
  (match current st with
  | Token.Ident _ -> ignore (ident st)
  | Token.Keyword Token.K_architecture ->
      advance st;
      (match current st with Token.Ident _ -> ignore (ident st) | _ -> ())
  | _ -> ());
  eat st Token.Semicolon;
  (arch_name, decls, subs, processes)

let parse source =
  Slif_obs.Span.with_ "vhdl.parse" @@ fun () ->
  let st = { toks = Array.of_list (Lexer.tokenize source); pos = 0 } in
  Slif_obs.Counter.add "parse.tokens" (Array.length st.toks);
  let entity_name, ports = parse_entity st in
  let arch_name, arch_decls, subprograms, processes = parse_architecture st in
  if current st <> Token.Eof then fail st "trailing input after design";
  { entity_name; ports; arch_name; arch_decls; subprograms; processes }

let parse_expr source =
  let st = { toks = Array.of_list (Lexer.tokenize source); pos = 0 } in
  let e = parse_expr_prec st in
  if current st <> Token.Eof then fail st "trailing input after expression";
  e
