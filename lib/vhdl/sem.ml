module Smap = Map.Make (String)

type kind =
  | Local_var of Ast.type_def
  | Global_var of Ast.type_def
  | Port of Ast.mode * Ast.type_def
  | Param of Ast.mode * Ast.type_def
  | Constant of Ast.type_def * Ast.expr
  | Subprogram of Ast.subprogram

type t = {
  design : Ast.design;
  types : Ast.type_def Smap.t;
  globals : kind Smap.t;          (* ports, arch vars/signals/constants, subprograms *)
  locals : kind Smap.t Smap.t;    (* behavior name -> local scope *)
}

type env = { table : t; local : kind Smap.t }

exception Unbound of string

let design t = t.design

let add_decl ~global map = function
  | Ast.Var_decl { v_name; v_type; _ } ->
      Smap.add v_name (if global then Global_var v_type else Local_var v_type) map
  | Ast.Sig_decl { s_name; s_type } -> Smap.add s_name (Global_var s_type) map
  | Ast.Const_decl { c_name; c_type; c_value } ->
      Smap.add c_name (Constant (c_type, c_value)) map
  | Ast.Type_decl _ -> map

let collect_types decls map =
  List.fold_left
    (fun m d -> match d with Ast.Type_decl (n, td) -> Smap.add n td m | _ -> m)
    map decls

let build design =
  Slif_obs.Span.with_ "vhdl.sem" @@ fun () ->
  let types =
    let all_decls =
      design.Ast.arch_decls
      @ List.concat_map (fun p -> p.Ast.proc_decls) design.Ast.processes
      @ List.concat_map (fun s -> s.Ast.sub_decls) design.Ast.subprograms
    in
    collect_types all_decls Smap.empty
  in
  let globals =
    let with_ports =
      List.fold_left
        (fun m p -> Smap.add p.Ast.port_name (Port (p.Ast.port_mode, p.Ast.port_type)) m)
        Smap.empty design.Ast.ports
    in
    let with_arch =
      List.fold_left (add_decl ~global:true) with_ports design.Ast.arch_decls
    in
    List.fold_left
      (fun m s -> Smap.add s.Ast.sub_name (Subprogram s) m)
      with_arch design.Ast.subprograms
  in
  let local_scope decls params =
    let with_params =
      List.fold_left
        (fun m p -> Smap.add p.Ast.par_name (Param (p.Ast.par_mode, p.Ast.par_type)) m)
        Smap.empty params
    in
    List.fold_left (add_decl ~global:false) with_params decls
  in
  let locals =
    let m =
      List.fold_left
        (fun m p -> Smap.add p.Ast.proc_name (local_scope p.Ast.proc_decls []) m)
        Smap.empty design.Ast.processes
    in
    List.fold_left
      (fun m s -> Smap.add s.Ast.sub_name (local_scope s.Ast.sub_decls s.Ast.sub_params) m)
      m design.Ast.subprograms
  in
  { design; types; globals; locals }

let env_of_behavior t name =
  match Smap.find_opt name t.locals with
  | Some local -> { table = t; local }
  | None -> raise (Unbound name)

let global_env t = { table = t; local = Smap.empty }

let lookup env name =
  match Smap.find_opt name env.local with
  | Some k -> Some k
  | None -> Smap.find_opt name env.table.globals

let lookup_exn env name =
  match lookup env name with Some k -> k | None -> raise (Unbound name)

let rec resolve t = function
  | Ast.Named n -> (
      match Smap.find_opt n t.types with
      | Some td -> resolve t td
      | None -> raise (Unbound n))
  | ty -> ty

(* Default widths: integers without a range use 32 bits; a natural uses
   32; booleans and bits use 1. *)
let rec scalar_bits t ty =
  match resolve t ty with
  | Ast.Integer -> 32
  | Ast.Natural -> 32
  | Ast.Boolean | Ast.Bit -> 1
  | Ast.Bit_vector w -> w
  | Ast.Int_range (lo, hi) -> Slif_util.Bitmath.bits_for_range ~lo ~hi
  | Ast.Array_of { elem; _ } -> scalar_bits t elem
  | Ast.Named _ -> assert false

let transfer_bits t ty =
  match resolve t ty with
  | Ast.Array_of { length; elem; _ } ->
      scalar_bits t elem + Slif_util.Bitmath.address_bits ~length
  | other -> scalar_bits t other

let storage_bits t ty =
  match resolve t ty with
  | Ast.Array_of { length; elem; _ } -> length * scalar_bits t elem
  | other -> scalar_bits t other

let array_length t ty =
  match resolve t ty with
  | Ast.Array_of { length; _ } -> Some length
  | _ -> None

let is_function_name t name =
  match Smap.find_opt name t.globals with Some (Subprogram _) -> true | _ -> false

let params_bits t sub =
  let ret_bits =
    match sub.Ast.sub_ret with Some ty -> transfer_bits t ty | None -> 0
  in
  List.fold_left (fun acc p -> acc + transfer_bits t p.Ast.par_type) ret_bits
    sub.Ast.sub_params

let behavior_names t =
  List.map (fun p -> p.Ast.proc_name) t.design.Ast.processes
  @ List.map (fun s -> s.Ast.sub_name) t.design.Ast.subprograms
