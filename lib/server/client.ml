type t = { fd : Unix.file_descr; rbuf : Buffer.t }

let connect fd addr =
  Unix.connect fd addr;
  { fd; rbuf = Buffer.create 1024 }

let connect_unix path = connect (Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0) (Unix.ADDR_UNIX path)

let connect_tcp port =
  connect
    (Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0)
    (Unix.ADDR_INET (Unix.inet_addr_loopback, port))

let write_all fd s =
  let len = String.length s in
  let pos = ref 0 in
  while !pos < len do
    pos := !pos + Unix.write_substring fd s !pos (len - !pos)
  done

(* Pull the next newline-terminated line out of the buffer, reading more
   from the socket as needed. *)
let read_line t =
  let chunk = Bytes.create 65536 in
  let rec go () =
    let text = Buffer.contents t.rbuf in
    match String.index_opt text '\n' with
    | Some nl ->
        let line = String.sub text 0 nl in
        Buffer.clear t.rbuf;
        Buffer.add_substring t.rbuf text (nl + 1) (String.length text - nl - 1);
        line
    | None -> (
        match Unix.read t.fd chunk 0 (Bytes.length chunk) with
        | 0 -> raise End_of_file
        | n ->
            Buffer.add_subbytes t.rbuf chunk 0 n;
            go ())
  in
  go ()

let request_raw t line =
  let line = if String.length line > 0 && line.[String.length line - 1] = '\n' then line else line ^ "\n" in
  write_all t.fd line;
  read_line t

let request t json =
  Protocol.response_of_line (request_raw t (Slif_obs.Json.to_string json))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
