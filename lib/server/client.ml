type t = { fd : Unix.file_descr; rbuf : Buffer.t }

exception Timeout

(* Non-blocking connect + select, so an unreachable daemon fails after
   [timeout_ms] instead of hanging the caller in [Unix.connect]. *)
let connect_with_deadline fd addr timeout_ms =
  let timeout_s = float_of_int timeout_ms /. 1e3 in
  Unix.set_nonblock fd;
  (match Unix.connect fd addr with
  | () -> ()
  | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK | Unix.EAGAIN), _, _)
    -> (
      match Unix.select [] [ fd ] [] timeout_s with
      | _, [], _ -> raise Timeout
      | _, _ :: _, _ -> (
          match Unix.getsockopt_error fd with
          | None -> ()
          | Some err -> raise (Unix.Unix_error (err, "connect", "")))));
  Unix.clear_nonblock fd

let connect ?timeout_ms fd addr =
  (match timeout_ms with
  | None -> Unix.connect fd addr
  | Some ms ->
      if ms < 1 then invalid_arg "Client.connect: timeout_ms must be >= 1";
      connect_with_deadline fd addr ms;
      (* From here on the kernel enforces the deadline on every read and
         write; a stalled server surfaces as EAGAIN, mapped to Timeout
         below. *)
      let timeout_s = float_of_int ms /. 1e3 in
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s;
      Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout_s);
  { fd; rbuf = Buffer.create 1024 }

let connect_unix ?timeout_ms path =
  connect ?timeout_ms (Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0) (Unix.ADDR_UNIX path)

let connect_tcp ?timeout_ms port =
  connect ?timeout_ms
    (Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0)
    (Unix.ADDR_INET (Unix.inet_addr_loopback, port))

let write_all fd s =
  let len = String.length s in
  let pos = ref 0 in
  while !pos < len do
    match Unix.write_substring fd s !pos (len - !pos) with
    | n -> pos := !pos + n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> raise Timeout
  done

(* Pull the next newline-terminated line out of the buffer, reading more
   from the socket as needed. *)
let read_line t =
  let chunk = Bytes.create 65536 in
  let rec go () =
    let text = Buffer.contents t.rbuf in
    match String.index_opt text '\n' with
    | Some nl ->
        let line = String.sub text 0 nl in
        Buffer.clear t.rbuf;
        Buffer.add_substring t.rbuf text (nl + 1) (String.length text - nl - 1);
        line
    | None -> (
        match Unix.read t.fd chunk 0 (Bytes.length chunk) with
        | 0 -> raise End_of_file
        | n ->
            Buffer.add_subbytes t.rbuf chunk 0 n;
            go ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            raise Timeout)
  in
  go ()

let request_raw t line =
  let line = if String.length line > 0 && line.[String.length line - 1] = '\n' then line else line ^ "\n" in
  write_all t.fd line;
  read_line t

let request t json =
  Protocol.response_of_line (request_raw t (Slif_obs.Json.to_string json))

(* Write every line before reading anything: the daemon's per-connection
   sequence numbers guarantee the k-th response line answers the k-th
   request line, so one round trip carries the whole pipeline. *)
let pipeline_raw t lines =
  let buf = Buffer.create 256 in
  List.iter
    (fun line ->
      Buffer.add_string buf line;
      if String.length line = 0 || line.[String.length line - 1] <> '\n' then
        Buffer.add_char buf '\n')
    lines;
  write_all t.fd (Buffer.contents buf);
  List.map (fun _ -> read_line t) lines

let pipeline t jsons = List.map Protocol.response_of_line
    (pipeline_raw t (List.map Slif_obs.Json.to_string jsons))

(* The [batch] op's request object: one wire line, many items. *)
let batch_request items =
  Slif_obs.Json.Obj
    [ ("op", Slif_obs.Json.String "batch"); ("items", Slif_obs.Json.List items) ]

let batch t items =
  match request t (batch_request items) with
  | Error _ as e -> e
  | Ok json -> (
      match Slif_obs.Json.member "results" json with
      | Some (Slif_obs.Json.List results) -> Ok results
      | Some _ | None -> Error "batch response carries no \"results\" list")

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
