let parse_any source =
  match Vhdl.Lexer.tokenize source with
  | (Vhdl.Token.Ident "spec", _) :: _ ->
      Spc.Lower.design_of_spec (Spc.Parser.parse source)
  | _ -> Vhdl.Parser.parse source

let build_annotated ?profile source =
  let design = parse_any source in
  let sem = Vhdl.Sem.build design in
  let slif = Slif.Build.build ?profile sem in
  Slif.Annotate.run ?profile ~techs:Tech.Parts.all sem slif

let annotated ?cache_dir ?profile_text source =
  let profile = Option.map Flow.Profile.of_string profile_text in
  let build () = build_annotated ?profile source in
  match cache_dir with
  | None -> build ()
  | Some dir ->
      fst (Slif_store.Cache.load_or_build ~dir ~source ?profile:profile_text ~build ())

let algo_of_string = function
  | "random" -> Ok (Specsyn.Explore.Random 200)
  | "greedy" -> Ok Specsyn.Explore.Greedy
  | "gm" | "group-migration" -> Ok Specsyn.Explore.Group_migration
  | "sa" | "annealing" -> Ok (Specsyn.Explore.Annealing Specsyn.Annealing.default_params)
  | "cluster" | "clustering" -> Ok (Specsyn.Explore.Clustering 4)
  | s -> Error (Printf.sprintf "unknown algorithm %S" s)

let run_algo algo problem =
  match algo with
  | Specsyn.Explore.Random restarts -> Specsyn.Random_part.run ~restarts problem
  | Specsyn.Explore.Greedy -> Specsyn.Greedy.run problem
  | Specsyn.Explore.Group_migration -> Specsyn.Group_migration.run problem
  | Specsyn.Explore.Annealing params -> Specsyn.Annealing.run ~params problem
  | Specsyn.Explore.Clustering k -> Specsyn.Cluster.run ~k problem

let parse_deadline spec =
  match String.split_on_char '=' spec with
  | [ name; us ] -> (
      match float_of_string_opt us with
      | Some v -> Ok (name, v)
      | None -> Error (Printf.sprintf "bad deadline %S (expected name=microseconds)" spec))
  | _ -> Error (Printf.sprintf "bad deadline %S (expected name=microseconds)" spec)

let constraints_of_deadlines deadlines = { Specsyn.Cost.deadlines_us = deadlines }

let apply_proc_asic slif = Specsyn.Alloc.apply slif (Specsyn.Alloc.proc_asic ())

let build_stats_output (slif : Slif.Types.t) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%s: %s\n" slif.Slif.Types.design_name
       (Slif.Stats.to_string (Slif.Stats.of_slif slif)));
  Array.iter
    (fun (n : Slif.Types.node) ->
      let kind =
        match n.n_kind with
        | Slif.Types.Behavior { is_process = true } -> "process "
        | Slif.Types.Behavior _ -> "behavior"
        | Slif.Types.Variable _ -> "variable"
      in
      Buffer.add_string buf (Printf.sprintf "  %-8s %s\n" kind n.n_name))
    slif.Slif.Types.nodes;
  Buffer.contents buf

let estimate_output ?(bounds = false) slif =
  let s = apply_proc_asic slif in
  let graph = Slif.Graph.make s in
  let part = Specsyn.Search.seed_partition s in
  let est = Specsyn.Search.estimator graph part in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "all-software partition (everything on the cpu):\n";
  Buffer.add_string buf (Specsyn.Report.partition_report est);
  Buffer.add_char buf '\n';
  if bounds then begin
    (* The paper's min/max access-frequency extension: best- and
       worst-case execution times alongside the average. *)
    let est_min = Slif.Estimate.create ~mode:Slif.Estimate.Min ~recursion_depth:4 graph part in
    let est_max = Slif.Estimate.create ~mode:Slif.Estimate.Max ~recursion_depth:4 graph part in
    let table =
      Slif_util.Table.create ~header:[ "process"; "min(us)"; "avg(us)"; "max(us)" ]
    in
    Array.iter
      (fun (n : Slif.Types.node) ->
        if Slif.Types.is_process n then
          Slif_util.Table.add_row table
            [
              n.n_name;
              Printf.sprintf "%.2f" (Slif.Estimate.exectime_us est_min n.n_id);
              Printf.sprintf "%.2f" (Slif.Estimate.exectime_us est n.n_id);
              Printf.sprintf "%.2f" (Slif.Estimate.exectime_us est_max n.n_id);
            ])
      s.Slif.Types.nodes;
    Buffer.add_string buf "\nexecution-time bounds (min / avg / max access frequencies):\n";
    Buffer.add_string buf (Slif_util.Table.render table);
    Buffer.add_char buf '\n'
  end;
  Buffer.contents buf

let partition_output ~algo ~constraints slif =
  let s = apply_proc_asic slif in
  let graph = Slif.Graph.make s in
  let problem = Specsyn.Search.problem ~constraints graph in
  let solution = run_algo algo problem in
  let est = Specsyn.Search.estimator graph solution.Specsyn.Search.part in
  let header =
    Printf.sprintf "algorithm=%s cost=%.4f partitions-evaluated=%d\n"
      (Specsyn.Explore.algo_name algo) solution.Specsyn.Search.cost
      solution.Specsyn.Search.evaluated
  in
  ( header ^ "\n" ^ Specsyn.Report.partition_report ~constraints est ^ "\n",
    solution.Specsyn.Search.part )

let partition_report_for ~constraints s part =
  let graph = Slif.Graph.make s in
  let est = Specsyn.Search.estimator graph part in
  Specsyn.Report.partition_report ~constraints est ^ "\n"

let explore_output ?(jobs = 1) ?chunk ?(timings = false) ~constraints slif =
  let entries = Specsyn.Explore.run ~jobs ?chunk ~constraints slif in
  Specsyn.Report.explore_report ~timings entries ^ "\n"
