(** The [slif serve] wire protocol: newline-delimited JSON.

    Every request is one JSON object on one line; every response is one
    JSON object on one line.  Responses carry ["ok": true] plus
    op-specific fields, or ["ok": false, "error": <one-line message>].
    A malformed line never kills the connection, let alone the daemon —
    it just earns an error response.

    Request shapes (fields beyond [op] are op-specific):
    {v
      {"op":"load",      "spec":"fuzzy" | "source":"<text>" [, "profile":"<text>"]}
      {"op":"estimate",  <target> [, "bounds":true]}
      {"op":"partition", <target> [, "algo":"greedy"] [, "deadlines":["p=2000",...]]}
      {"op":"explore",   <target> [, "jobs":4] [, "deadlines":[...]]}
      {"op":"stats"}
      {"op":"health"}
      {"op":"metrics"}
      {"op":"shutdown"}
    v}
    where [<target>] is ["spec"] (a bundled benchmark name), ["source"]
    (full specification text) or ["key"] (the content hash of a
    previously loaded graph — only valid while it is resident). *)

type target =
  | Bundled of string
  | Source of string
  | Key of string

type request =
  | Load of { target : target; profile : string option }
  | Estimate of { target : target; profile : string option; bounds : bool }
  | Partition of {
      target : target;
      profile : string option;
      algo : string;
      deadlines : string list;
    }
  | Explore of {
      target : target;
      profile : string option;
      jobs : int option;
      deadlines : string list;
    }
  | Stats
  | Health
  | Metrics
  | Shutdown

val op_name : request -> string

val request_of_line : string -> (request, string) result

val ok : (string * Slif_obs.Json.t) list -> string
(** Serialize a success response (adds ["ok": true] first). *)

val error : string -> string
(** Serialize an error response. *)

val response_of_line : string -> (Slif_obs.Json.t, string) result
(** Client side: parse a response line; [Error] carries either the JSON
    parse failure or the server's ["error"] field. *)

val output_field : Slif_obs.Json.t -> string option
(** The ["output"] string of a parsed response, when present. *)
