(** The [slif serve] wire protocol: newline-delimited JSON.

    Every request is one JSON object on one line; every response is one
    JSON object on one line.  Responses carry ["ok": true] plus
    op-specific fields, or ["ok": false, "error": <one-line message>]
    with an optional machine-readable ["kind"] (e.g. ["graph_too_large"]
    when a store-file target is over the [--max-graph-mb] admission
    budget).  A malformed line never kills the connection, let alone the
    daemon — it just earns an error response.

    Request shapes (fields beyond [op] are op-specific):
    {v
      {"op":"load",      "spec":"fuzzy" | "source":"<text>" [, "profile":"<text>"]}
      {"op":"estimate",  <target> [, "bounds":true]}
      {"op":"partition", <target> [, "algo":"greedy"] [, "deadlines":["p=2000",...]]}
      {"op":"explore",   <target> [, "jobs":4] [, "deadlines":[...]]}
      {"op":"batch",     "items":[<request>, ...]}
      {"op":"stats"}
      {"op":"health"}
      {"op":"metrics"}
      {"op":"dump"}
      {"op":"traces"    [, "id":"c3-r17"]}
      {"op":"shutdown"}
    v}
    where [<target>] is ["spec"] (a bundled benchmark name), ["source"]
    (full specification text), ["key"] (the content hash of a
    previously loaded graph — only valid while it is resident) or
    ["store"] (the path of a store container on the daemon's
    filesystem; a v2 container answers [load] from its metadata alone,
    without decoding the graph). *)

type target =
  | Bundled of string
  | Source of string
  | Key of string
  | Stored of string

type request =
  | Load of { target : target; profile : string option }
  | Estimate of { target : target; profile : string option; bounds : bool }
  | Partition of {
      target : target;
      profile : string option;
      algo : string;
      deadlines : string list;
    }
  | Explore of {
      target : target;
      profile : string option;
      jobs : int option;
      deadlines : string list;
    }
  | Batch of (request, string) result list
      (** Items in request order.  A malformed item (bad JSON shape,
          disallowed op) is carried as its error message — the batch
          still parses, the error is isolated to that slot.  Nested
          batches and control ops (stats/health/metrics/shutdown) are
          not allowed as items. *)
  | Stats
  | Health
  | Metrics
  | Dump
      (** the flight-recorder window as a Chrome trace_event string plus
          per-domain ring stats *)
  | Traces of string option
      (** retained slow/error traces: the summary list, or — with an
          [id] — one full span tree *)
  | Shutdown

val op_name : request -> string

val is_control : request -> bool
(** Stats, health, metrics, dump, traces and shutdown: ops that read or
    mutate the acceptor's own accounting, executed inline on the
    acceptor rather than dispatched to a domain worker. *)

val default_max_batch_items : int
(** 4096. *)

val request_of_line : ?max_batch_items:int -> string -> (request, string) result
(** [max_batch_items] (default {!default_max_batch_items}) bounds one
    batch; a longer [items] list fails the whole request with an error
    naming the cap. *)

val ok : (string * Slif_obs.Json.t) list -> string
(** Serialize a success response (adds ["ok": true] first). *)

val error : ?kind:string -> string -> string
(** Serialize an error response; [kind] adds the machine-readable
    ["kind"] field (typed errors clients can dispatch on without
    parsing the message). *)

val ok_obj : (string * Slif_obs.Json.t) list -> Slif_obs.Json.t
(** The unserialized form of {!ok} — what batch results embed. *)

val error_obj : ?kind:string -> string -> Slif_obs.Json.t
(** The unserialized form of {!error}. *)

val response_of_line : string -> (Slif_obs.Json.t, string) result
(** Client side: parse a response line; [Error] carries either the JSON
    parse failure or the server's ["error"] field. *)

val output_field : Slif_obs.Json.t -> string option
(** The ["output"] string of a parsed response, when present. *)
