type 'a entry = { value : 'a; mutable stamp : int }

type 'a t = {
  tbl : (string, 'a entry) Hashtbl.t;
  cap : int;
  mutable tick : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be at least 1";
  { tbl = Hashtbl.create (2 * capacity); cap = capacity; tick = 0 }

let capacity t = t.cap
let size t = Hashtbl.length t.tbl

let touch t e =
  t.tick <- t.tick + 1;
  e.stamp <- t.tick

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> None
  | Some e ->
      touch t e;
      Some e.value

let evict_oldest t =
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, stamp) when stamp <= e.stamp -> ()
      | _ -> victim := Some (k, e.stamp))
    t.tbl;
  match !victim with Some (k, _) -> Hashtbl.remove t.tbl k | None -> ()

let add t key value =
  (match Hashtbl.find_opt t.tbl key with
  | Some _ -> Hashtbl.remove t.tbl key
  | None -> if Hashtbl.length t.tbl >= t.cap then evict_oldest t);
  let e = { value; stamp = 0 } in
  touch t e;
  Hashtbl.replace t.tbl key e

let remove t key = Hashtbl.remove t.tbl key

let keys t =
  Hashtbl.fold (fun k e acc -> (k, e.stamp) :: acc) t.tbl []
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.map fst

(* --- Sharded, domain-safe wrapper ------------------------------------------- *)

module Sharded = struct
  (* The plain single-domain implementation above, captured before this
     module shadows the names. *)
  let plain_create = create
  let plain_find = find
  let plain_add = add
  let plain_remove = remove
  let plain_size = size
  let plain_keys = keys
  let plain_capacity = capacity

  type 'a shard = {
    core : 'a t;
    lock : Slif_obs.Lockprof.t;
    mutable hits : int;  (* under [lock]; exact across domains *)
    mutable misses : int;
  }

  type 'a t = { shards : 'a shard array }

  let create ?(shards = 8) ~capacity () =
    if shards < 1 then invalid_arg "Lru.Sharded.create: shards must be at least 1";
    if capacity < 1 then invalid_arg "Lru.Sharded.create: capacity must be at least 1";
    (* Round the capacity up so every shard holds at least one entry;
       the reported total is therefore shards * per-shard, >= requested. *)
    let per_shard = max 1 ((capacity + shards - 1) / shards) in
    {
      shards =
        Array.init shards (fun i ->
            {
              core = plain_create ~capacity:per_shard;
              lock = Slif_obs.Lockprof.create (Printf.sprintf "server.lru.%d" i);
              hits = 0;
              misses = 0;
            });
    }

  let shards t = Array.length t.shards
  let capacity t = Array.fold_left (fun acc s -> acc + plain_capacity s.core) 0 t.shards

  (* Routing is a pure function of the key bytes ([Hashtbl.hash] is
     deterministic on strings), so a key lives in exactly one shard for
     the daemon's whole life — the differential tests count on it. *)
  let shard_of_key t key = Hashtbl.hash key mod Array.length t.shards

  let with_shard t key f =
    let s = t.shards.(shard_of_key t key) in
    Slif_obs.Lockprof.lock s.lock;
    Fun.protect ~finally:(fun () -> Slif_obs.Lockprof.unlock s.lock) (fun () -> f s)

  let find t key =
    with_shard t key (fun s ->
        match plain_find s.core key with
        | Some v ->
            s.hits <- s.hits + 1;
            Some v
        | None ->
            s.misses <- s.misses + 1;
            None)

  let add t key value = with_shard t key (fun s -> plain_add s.core key value)
  let remove t key = with_shard t key (fun s -> plain_remove s.core key)

  let locked s f =
    Slif_obs.Lockprof.lock s.lock;
    Fun.protect ~finally:(fun () -> Slif_obs.Lockprof.unlock s.lock) (fun () -> f s)

  let size t = Array.fold_left (fun acc s -> acc + locked s (fun s -> plain_size s.core)) 0 t.shards

  let keys t =
    Array.to_list t.shards |> List.concat_map (fun s -> locked s (fun s -> plain_keys s.core))

  let hits t = Array.fold_left (fun acc s -> acc + locked s (fun s -> s.hits)) 0 t.shards
  let misses t = Array.fold_left (fun acc s -> acc + locked s (fun s -> s.misses)) 0 t.shards

  type shard_stat = { sh_index : int; sh_size : int; sh_capacity : int; sh_hits : int; sh_misses : int }

  let shard_stats t =
    Array.to_list
      (Array.mapi
         (fun i s ->
           locked s (fun s ->
               {
                 sh_index = i;
                 sh_size = plain_size s.core;
                 sh_capacity = plain_capacity s.core;
                 sh_hits = s.hits;
                 sh_misses = s.misses;
               }))
         t.shards)
end
