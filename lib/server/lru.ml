type 'a entry = { value : 'a; mutable stamp : int }

type 'a t = {
  tbl : (string, 'a entry) Hashtbl.t;
  cap : int;
  mutable tick : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be at least 1";
  { tbl = Hashtbl.create (2 * capacity); cap = capacity; tick = 0 }

let capacity t = t.cap
let size t = Hashtbl.length t.tbl

let touch t e =
  t.tick <- t.tick + 1;
  e.stamp <- t.tick

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> None
  | Some e ->
      touch t e;
      Some e.value

let evict_oldest t =
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, stamp) when stamp <= e.stamp -> ()
      | _ -> victim := Some (k, e.stamp))
    t.tbl;
  match !victim with Some (k, _) -> Hashtbl.remove t.tbl k | None -> ()

let add t key value =
  (match Hashtbl.find_opt t.tbl key with
  | Some _ -> Hashtbl.remove t.tbl key
  | None -> if Hashtbl.length t.tbl >= t.cap then evict_oldest t);
  let e = { value; stamp = 0 } in
  touch t e;
  Hashtbl.replace t.tbl key e

let keys t =
  Hashtbl.fold (fun k e acc -> (k, e.stamp) :: acc) t.tbl []
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.map fst
