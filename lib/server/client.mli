(** A small synchronous client for the [slif serve] wire protocol.

    One request line out, one response line back.  Used by the test
    suite (differential CLI-vs-server checks), the bench A9 section and
    the bundled example client; [slif serve --probe] also goes through
    it. *)

type t

val connect_unix : string -> t
(** Connect to a Unix-domain socket path.  Raises [Unix.Unix_error]. *)

val connect_tcp : int -> t
(** Connect to loopback TCP.  Raises [Unix.Unix_error]. *)

val request_raw : t -> string -> string
(** Send one line (newline appended if missing) and block for one
    response line.  Raises [End_of_file] if the server closes first. *)

val request : t -> Slif_obs.Json.t -> (Slif_obs.Json.t, string) result
(** Serialize a request object, send it, parse the response through
    {!Protocol.response_of_line}. *)

val close : t -> unit
