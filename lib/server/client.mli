(** A small synchronous client for the [slif serve] wire protocol.

    One request line out, one response line back.  Used by the test
    suite (differential CLI-vs-server checks), the bench A9/A10 sections
    and the bundled example client; [slif serve --probe] and
    [slif stats] also go through it.

    Pass [?timeout_ms] at connect time to bound every blocking step:
    the connect itself (non-blocking + select) and, via
    [SO_RCVTIMEO] / [SO_SNDTIMEO], each subsequent read and write.  A
    deadline miss raises {!Timeout}; without the option the client
    blocks indefinitely, as before. *)

type t

exception Timeout
(** A connect, read or write exceeded the [timeout_ms] deadline. *)

val connect_unix : ?timeout_ms:int -> string -> t
(** Connect to a Unix-domain socket path.  Raises [Unix.Unix_error], or
    {!Timeout} when [timeout_ms] elapses first.
    [Invalid_argument] when [timeout_ms < 1]. *)

val connect_tcp : ?timeout_ms:int -> int -> t
(** Connect to loopback TCP.  Same errors as {!connect_unix}. *)

val request_raw : t -> string -> string
(** Send one line (newline appended if missing) and block for one
    response line.  Raises [End_of_file] if the server closes first,
    {!Timeout} if a [timeout_ms]-configured socket stalls. *)

val request : t -> Slif_obs.Json.t -> (Slif_obs.Json.t, string) result
(** Serialize a request object, send it, parse the response through
    {!Protocol.response_of_line}. *)

val close : t -> unit
