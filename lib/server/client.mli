(** A small synchronous client for the [slif serve] wire protocol.

    One request line out, one response line back.  Used by the test
    suite (differential CLI-vs-server checks), the bench A9/A10 sections
    and the bundled example client; [slif serve --probe] and
    [slif stats] also go through it.

    Pass [?timeout_ms] at connect time to bound every blocking step:
    the connect itself (non-blocking + select) and, via
    [SO_RCVTIMEO] / [SO_SNDTIMEO], each subsequent read and write.  A
    deadline miss raises {!Timeout}; without the option the client
    blocks indefinitely, as before. *)

type t

exception Timeout
(** A connect, read or write exceeded the [timeout_ms] deadline. *)

val connect_unix : ?timeout_ms:int -> string -> t
(** Connect to a Unix-domain socket path.  Raises [Unix.Unix_error], or
    {!Timeout} when [timeout_ms] elapses first.
    [Invalid_argument] when [timeout_ms < 1]. *)

val connect_tcp : ?timeout_ms:int -> int -> t
(** Connect to loopback TCP.  Same errors as {!connect_unix}. *)

val request_raw : t -> string -> string
(** Send one line (newline appended if missing) and block for one
    response line.  Raises [End_of_file] if the server closes first,
    {!Timeout} if a [timeout_ms]-configured socket stalls. *)

val request : t -> Slif_obs.Json.t -> (Slif_obs.Json.t, string) result
(** Serialize a request object, send it, parse the response through
    {!Protocol.response_of_line}. *)

val pipeline_raw : t -> string list -> string list
(** Send every line, then read exactly as many response lines.  The
    daemon answers a connection in request order however its workers
    interleave, so response [k] matches request [k].  Same exceptions as
    {!request_raw}. *)

val pipeline : t -> Slif_obs.Json.t list -> (Slif_obs.Json.t, string) result list
(** {!pipeline_raw} over request objects, each response parsed through
    {!Protocol.response_of_line}. *)

val batch_request : Slif_obs.Json.t list -> Slif_obs.Json.t
(** The [batch] request object wrapping [items] — one wire line, many
    operations. *)

val batch : t -> Slif_obs.Json.t list -> (Slif_obs.Json.t list, string) result
(** Send one [batch] request; [Ok] carries the per-item result objects
    in item order (inspect each item's ["ok"] field — item failures do
    not fail the batch). *)

val close : t -> unit
