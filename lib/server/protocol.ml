module Json = Slif_obs.Json

type target =
  | Bundled of string
  | Source of string
  | Key of string
  | Stored of string

type request =
  | Load of { target : target; profile : string option }
  | Estimate of { target : target; profile : string option; bounds : bool }
  | Partition of {
      target : target;
      profile : string option;
      algo : string;
      deadlines : string list;
    }
  | Explore of {
      target : target;
      profile : string option;
      jobs : int option;
      deadlines : string list;
    }
  | Batch of (request, string) result list
      (** parsed items in request order; a malformed item is carried as
          its error message, isolated from its neighbours *)
  | Stats
  | Health
  | Metrics
  | Dump
  | Traces of string option
  | Shutdown

let op_name = function
  | Load _ -> "load"
  | Estimate _ -> "estimate"
  | Partition _ -> "partition"
  | Explore _ -> "explore"
  | Batch _ -> "batch"
  | Stats -> "stats"
  | Health -> "health"
  | Metrics -> "metrics"
  | Dump -> "dump"
  | Traces _ -> "traces"
  | Shutdown -> "shutdown"

(* Control ops read or mutate the acceptor's own accounting; the
   acceptor executes them inline instead of dispatching to a worker. *)
let is_control = function
  | Stats | Health | Metrics | Dump | Traces _ | Shutdown -> true
  | Load _ | Estimate _ | Partition _ | Explore _ | Batch _ -> false

let default_max_batch_items = 4096

let ( let* ) = Result.bind

let str_field name json =
  match Json.member name json with
  | Some (Json.String s) -> Ok (Some s)
  | Some _ -> Error (Printf.sprintf "field %S must be a string" name)
  | None -> Ok None

let bool_field name json =
  match Json.member name json with
  | Some (Json.Bool b) -> Ok b
  | Some _ -> Error (Printf.sprintf "field %S must be a boolean" name)
  | None -> Ok false

let int_field name json =
  match Json.member name json with
  | Some (Json.Int n) -> Ok (Some n)
  | Some _ -> Error (Printf.sprintf "field %S must be an integer" name)
  | None -> Ok None

let strings_field name json =
  match Json.member name json with
  | None -> Ok []
  | Some (Json.List items) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | Json.String s :: rest -> go (s :: acc) rest
        | _ -> Error (Printf.sprintf "field %S must be a list of strings" name)
      in
      go [] items
  | Some _ -> Error (Printf.sprintf "field %S must be a list of strings" name)

let target_of json =
  let* spec = str_field "spec" json in
  let* source = str_field "source" json in
  let* key = str_field "key" json in
  let* store = str_field "store" json in
  match (spec, source, key, store) with
  | Some s, None, None, None -> Ok (Bundled s)
  | None, Some s, None, None -> Ok (Source s)
  | None, None, Some k, None -> Ok (Key k)
  | None, None, None, Some p -> Ok (Stored p)
  | None, None, None, None ->
      Error "request needs a target: one of \"spec\", \"source\", \"key\", \"store\""
  | _ -> Error "give exactly one of \"spec\", \"source\", \"key\", \"store\""

let rec request_of_json ?(max_batch_items = default_max_batch_items) ?(in_batch = false)
    json =
  let* () = match json with Json.Obj _ -> Ok () | _ -> Error "request must be a JSON object" in
  let* op =
    match Json.member "op" json with
    | Some (Json.String s) -> Ok s
    | Some _ -> Error "field \"op\" must be a string"
    | None -> Error "missing field \"op\""
  in
  let* () =
    if
      in_batch
      && (op = "batch"
         || List.mem op [ "stats"; "health"; "metrics"; "dump"; "traces"; "shutdown" ])
    then Error (Printf.sprintf "op %S is not allowed inside a batch" op)
    else Ok ()
  in
  match op with
  | "stats" -> Ok Stats
  | "health" -> Ok Health
  | "metrics" -> Ok Metrics
  | "dump" -> Ok Dump
  | "traces" ->
      let* id = str_field "id" json in
      Ok (Traces id)
  | "shutdown" -> Ok Shutdown
  | "load" ->
      let* target = target_of json in
      let* profile = str_field "profile" json in
      Ok (Load { target; profile })
  | "estimate" ->
      let* target = target_of json in
      let* profile = str_field "profile" json in
      let* bounds = bool_field "bounds" json in
      Ok (Estimate { target; profile; bounds })
  | "partition" ->
      let* target = target_of json in
      let* profile = str_field "profile" json in
      let* algo =
        let* a = str_field "algo" json in
        Ok (Option.value a ~default:"greedy")
      in
      let* deadlines = strings_field "deadlines" json in
      Ok (Partition { target; profile; algo; deadlines })
  | "explore" ->
      let* target = target_of json in
      let* profile = str_field "profile" json in
      let* jobs = int_field "jobs" json in
      let* deadlines = strings_field "deadlines" json in
      Ok (Explore { target; profile; jobs; deadlines })
  | "batch" -> (
      match Json.member "items" json with
      | None -> Error "batch needs an \"items\" list"
      | Some (Json.List items) ->
          if List.length items > max_batch_items then
            Error
              (Printf.sprintf "batch has %d items (cap %d)" (List.length items)
                 max_batch_items)
          else
            (* A malformed item stays an [Error _] slot: its neighbours
               are still executed and every slot answers in order. *)
            Ok
              (Batch
                 (List.map
                    (fun item -> request_of_json ~max_batch_items ~in_batch:true item)
                    items))
      | Some _ -> Error "field \"items\" must be a list")
  | op -> Error (Printf.sprintf "unknown op %S" op)

let request_of_line ?max_batch_items line =
  let* json =
    match Json.parse line with
    | Ok j -> Ok j
    | Error msg -> Error (Printf.sprintf "invalid JSON: %s" msg)
  in
  request_of_json ?max_batch_items json

let ok_obj fields = Json.Obj (("ok", Json.Bool true) :: fields)

let error_obj ?kind msg =
  Json.Obj
    (("ok", Json.Bool false)
    :: ("error", Json.String msg)
    :: (match kind with None -> [] | Some k -> [ ("kind", Json.String k) ]))

let ok fields = Json.to_string (ok_obj fields)
let error ?kind msg = Json.to_string (error_obj ?kind msg)

let response_of_line line =
  match Json.parse line with
  | Error msg -> Error (Printf.sprintf "invalid response JSON: %s" msg)
  | Ok json -> (
      match Json.member "ok" json with
      | Some (Json.Bool true) -> Ok json
      | Some (Json.Bool false) -> (
          match Json.member "error" json with
          | Some (Json.String msg) -> Error msg
          | _ -> Error "request failed (no error message)")
      | _ -> Error "response carries no \"ok\" field")

let output_field json =
  match Json.member "output" json with Some (Json.String s) -> Some s | _ -> None
