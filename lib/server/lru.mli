(** Small least-recently-used cache for resident annotated SLIFs.

    The daemon keeps hot graphs in memory keyed by their content hash
    ({!Slif_store.Cache.key}); capacity bounds the resident set so a
    stream of distinct specs cannot grow the heap without limit.
    Eviction scans for the oldest stamp — O(capacity), which is single
    digits here, so no linked-list bookkeeping. *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] when [capacity < 1]. *)

val capacity : 'a t -> int
val size : 'a t -> int

val find : 'a t -> string -> 'a option
(** Refreshes the entry's recency on a hit. *)

val add : 'a t -> string -> 'a -> unit
(** Inserts (or refreshes) the binding, evicting the least recently used
    entry when full. *)

val keys : 'a t -> string list
(** Resident keys, most recently used first. *)
