(** Small least-recently-used cache for resident annotated SLIFs.

    The daemon keeps hot graphs in memory keyed by their content hash
    ({!Slif_store.Cache.key}); capacity bounds the resident set so a
    stream of distinct specs cannot grow the heap without limit.
    Eviction scans for the oldest stamp — O(capacity), which is single
    digits here, so no linked-list bookkeeping. *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] when [capacity < 1]. *)

val capacity : 'a t -> int
val size : 'a t -> int

val find : 'a t -> string -> 'a option
(** Refreshes the entry's recency on a hit. *)

val add : 'a t -> string -> 'a -> unit
(** Inserts (or refreshes) the binding, evicting the least recently used
    entry when full. *)

val remove : 'a t -> string -> unit
(** Drops the binding if present; a no-op otherwise. *)

val keys : 'a t -> string list
(** Resident keys, most recently used first. *)

(** Domain-safe sharded wrapper — the multi-worker daemon's resident
    set.

    Keys route to a shard by a deterministic hash of the key bytes;
    each shard is an independent plain {!t} guarded by its own
    {!Slif_obs.Lockprof} lock ([server.lru.<i>]), so concurrent workers
    only contend when their keys collide on a shard — there is no
    global lock.  Eviction, touch and re-insert semantics within a
    shard are exactly the plain cache's; a shard never evicts another
    shard's entries.  Per-shard hit/miss counters are mutated under the
    shard lock, so totals are exact however many domains hammer the
    cache. *)
module Sharded : sig
  type 'a t

  val create : ?shards:int -> capacity:int -> unit -> 'a t
  (** [create ~shards ~capacity ()] (default 8 shards) splits [capacity]
      over the shards, rounding up so every shard holds at least one
      entry — {!capacity} reports the rounded total, [>=] the request.
      Raises [Invalid_argument] when [shards < 1] or [capacity < 1]. *)

  val shards : 'a t -> int
  val capacity : 'a t -> int
  val size : 'a t -> int

  val shard_of_key : 'a t -> string -> int
  (** The shard a key routes to — a pure function of the key bytes,
      stable for the cache's whole life. *)

  val find : 'a t -> string -> 'a option
  (** Refreshes recency within the key's shard on a hit; counts a hit
      or a miss. *)

  val add : 'a t -> string -> 'a -> unit
  (** Inserts (or refreshes) the binding in the key's shard, evicting
      that shard's least recently used entry when it is full. *)

  val remove : 'a t -> string -> unit
  (** Drops the binding from its shard if present; a no-op otherwise.
      Counts neither a hit nor a miss. *)

  val keys : 'a t -> string list
  (** Resident keys, grouped by shard (ascending), most recently used
      first within each shard. *)

  val hits : 'a t -> int
  val misses : 'a t -> int

  type shard_stat = {
    sh_index : int;
    sh_size : int;
    sh_capacity : int;
    sh_hits : int;
    sh_misses : int;
  }

  val shard_stats : 'a t -> shard_stat list
  (** One entry per shard, ascending index. *)
end
