(** The [slif serve] daemon.

    A single-process event loop (select-multiplexed, so one stalled
    client never blocks another) accepting newline-delimited JSON
    requests over a Unix-domain or loopback TCP socket.  Annotated
    graphs are resident in an {!Lru} keyed by content hash; a
    [--cache-dir] additionally persists them across restarts through
    {!Slif_store.Cache}.  Request handling is hardened: any malformed
    line or failing operation becomes an error response, and the loop
    survives client disconnects mid-request.

    Observability: each request runs under a [server.request.<op>] span
    (so per-request-type latency histograms come for free) and bumps
    [server.request.<op>] / [server.error] counters;
    [server.lru_hit] / [server.lru_miss] count graph residency. *)

type addr =
  | Unix_sock of string  (** path of a Unix-domain socket (created; stale file replaced) *)
  | Tcp of int  (** loopback TCP port; 0 picks a free port *)

type config = {
  addr : addr;
  cache_dir : string option;  (** persist annotated graphs here too *)
  lru_capacity : int;
  jobs : int;  (** domain-pool width for [explore] requests without their own ["jobs"] *)
  max_requests : int option;  (** stop after this many requests (soak/smoke harnesses) *)
}

val default_config : addr -> config
(** lru_capacity 8, jobs 1, no cache dir, no request limit. *)

val run : ?on_ready:(Unix.sockaddr -> unit) -> config -> unit
(** Bind, listen and serve until a [shutdown] request (or the request
    limit) — then flush pending responses, close every connection and
    remove the socket file.  [on_ready] fires once the socket is bound
    and listening (tests use it to synchronize, and to learn the port
    when [Tcp 0] picked one).  Raises [Unix.Unix_error] if the socket
    cannot be bound. *)
