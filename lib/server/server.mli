(** The [slif serve] daemon: one acceptor, N worker domains.

    The acceptor owns the sockets — a select-multiplexed loop that
    accepts connections, frames newline-delimited JSON request lines and
    writes responses — and dispatches every framed line to a fixed pool
    of worker domains over a condition-parked job queue.  Workers
    execute requests against the shared sharded {!Lru} (content-hash
    keyed, one lock per shard) and push completions back through a queue
    plus a self-pipe that wakes the acceptor's select.  Each connection
    carries sequence numbers and a reorder buffer, so responses hit the
    wire in request order no matter which worker finishes first; control
    ops ([stats]/[health]/[metrics]/[shutdown]) are rendered by the
    acceptor itself — which owns all accounting, lock-free — at their
    wire position.  A [batch] request executes its items on one worker
    with per-item error isolation and in-order results.

    Hardening: any malformed line or failing operation becomes an error
    response; a request line over {!field-config.max_line_bytes} earns a
    protocol error before the connection is closed; a reader whose
    unwritten responses exceed {!field-config.max_outq_bytes} is sent
    one [slow reader] protocol error and disconnected instead of growing
    the heap; {!field-config.max_connections} bounds concurrent clients;
    and the loop survives client disconnects mid-request.  On shutdown
    (the [shutdown] op or {!field-config.max_requests}) in-flight
    requests drain and their responses flush before the sockets close.

    Observability: every request is assigned a trace id
    ([c<conn>-r<serial>]) installed via {!Slif_obs.Registry.with_trace}
    on the worker that executes it, so the [server.request.<op>] span
    and every {!Slif_obs.Event} line emitted while serving it share the
    id.  Per-op latency is recorded in always-on lifetime histograms
    plus a sliding window; per-worker requests and batch items feed
    {!Slif_obs.Family} counters, per-shard LRU hit/miss/occupancy and
    queue depth/wait are exported by [stats] and [metrics] regardless of
    the registry switch.  Requests slower than [slow_ms] are logged to
    stderr and the event log at [Warn]; [SIGUSR1] dumps the live
    telemetry to stderr without stopping the loop.

    The flight recorder is the black box: every span and event also
    lands in {!Slif_obs.Flight}'s always-on per-domain rings, and any
    request that errors or outlives [slow_ms] has its cross-domain
    span tree reconstructed at completion and retained (bounded by
    {!field-config.retain_traces}, mirrored to
    {!field-config.trace_dir} when set).  The [dump] op exports the
    whole window as Chrome [trace_event] JSON, [traces] lists or
    fetches retained trees, [SIGQUIT] (or an acceptor crash) writes
    the window to a dump file without stopping the loop. *)

type addr =
  | Unix_sock of string  (** path of a Unix-domain socket (created; stale file replaced) *)
  | Tcp of int  (** loopback TCP port; 0 picks a free port *)

type config = {
  addr : addr;
  cache_dir : string option;  (** persist annotated graphs here too *)
  lru_capacity : int;
  lru_shards : int;  (** shards of the resident set (locks scale with this) *)
  workers : int;  (** worker domains executing requests (min 1) *)
  jobs : int;  (** domain-pool width for [explore] requests without their own ["jobs"] *)
  max_requests : int option;  (** stop after this many requests (soak/smoke harnesses) *)
  slow_ms : float option;
      (** log requests at least this slow to stderr and the event log *)
  max_line_bytes : int;
      (** request lines over this earn a protocol error and a close *)
  max_batch_items : int;  (** cap on one [batch] request's item count *)
  max_outq_bytes : int;
      (** unread response bytes per connection before the slow reader is
          disconnected with a protocol error *)
  max_connections : int option;
      (** concurrent connections; extras get an error response and a close *)
  max_graph_mb : int option;
      (** admission control for store-file targets: reject (typed error
          kind ["graph_too_large"]) any load whose decoded graph would
          exceed this many megabytes — META's decoded-heap estimate for
          a v2 container, the file size for a v1 one.  Metadata-only
          [load]s of v2 containers are always admitted: they decode
          nothing. *)
  retain_traces : int;
      (** how many slow/error span trees the tail-based retention keeps
          (oldest evicted); 0 disables retention without touching the
          flight recorder itself *)
  trace_dir : string option;
      (** also persist each retained trace as
          [<dir>/trace-<id>.json], and write SIGQUIT/crash flight dumps
          here (default: the system temp dir) *)
}

val default_max_line_bytes : int
(** 64 MB. *)

val default_max_outq_bytes : int
(** 32 MB. *)

val default_config : addr -> config
(** lru_capacity 8 over 8 shards, 1 worker, jobs 1, no cache dir, no
    request limit, no slow-log, 64 MB line cap, 4096 batch items, 32 MB
    outq cap, unlimited connections, no graph budget, 32 retained
    traces, no trace dir. *)

val run : ?on_ready:(Unix.sockaddr -> unit) -> config -> unit
(** Bind, listen and serve until a [shutdown] request (or the request
    limit) — then drain in-flight requests, flush pending responses,
    join the worker domains, close every connection and remove the
    socket file.  [on_ready] fires once the socket is bound and
    listening (tests use it to synchronize, and to learn the port when
    [Tcp 0] picked one).  Raises [Unix.Unix_error] if the socket cannot
    be bound. *)
