(** The [slif serve] daemon.

    A single-process event loop (select-multiplexed, so one stalled
    client never blocks another) accepting newline-delimited JSON
    requests over a Unix-domain or loopback TCP socket.  Annotated
    graphs are resident in an {!Lru} keyed by content hash; a
    [--cache-dir] additionally persists them across restarts through
    {!Slif_store.Cache}.  Request handling is hardened: any malformed
    line or failing operation becomes an error response, a request line
    over {!field-config.max_line_bytes} earns a protocol error before
    the connection is closed, and the loop survives client disconnects
    mid-request.

    Observability: every request is assigned a trace id
    ([c<conn>-r<serial>]) installed via {!Slif_obs.Registry.with_trace},
    so the [server.request.<op>] span and every {!Slif_obs.Event} line
    emitted while serving it share the id.  Per-op latency is recorded
    in always-on lifetime histograms plus a sliding window — the
    [stats], [health] and [metrics] ops report them regardless of the
    registry switch.  Requests slower than [slow_ms] are logged to
    stderr and the event log at [Warn]; [SIGUSR1] dumps the live
    telemetry to stderr without stopping the loop. *)

type addr =
  | Unix_sock of string  (** path of a Unix-domain socket (created; stale file replaced) *)
  | Tcp of int  (** loopback TCP port; 0 picks a free port *)

type config = {
  addr : addr;
  cache_dir : string option;  (** persist annotated graphs here too *)
  lru_capacity : int;
  jobs : int;  (** domain-pool width for [explore] requests without their own ["jobs"] *)
  max_requests : int option;  (** stop after this many requests (soak/smoke harnesses) *)
  slow_ms : float option;
      (** log requests at least this slow to stderr and the event log *)
  max_line_bytes : int;
      (** request lines over this earn a protocol error and a close *)
}

val default_max_line_bytes : int
(** 64 MB. *)

val default_config : addr -> config
(** lru_capacity 8, jobs 1, no cache dir, no request limit, no slow-log,
    64 MB line cap. *)

val run : ?on_ready:(Unix.sockaddr -> unit) -> config -> unit
(** Bind, listen and serve until a [shutdown] request (or the request
    limit) — then flush pending responses, close every connection and
    remove the socket file.  [on_ready] fires once the socket is bound
    and listening (tests use it to synchronize, and to learn the port
    when [Tcp 0] picked one).  Raises [Unix.Unix_error] if the socket
    cannot be bound. *)
