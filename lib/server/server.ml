module Obs = Slif_obs

type addr =
  | Unix_sock of string
  | Tcp of int

type config = {
  addr : addr;
  cache_dir : string option;
  lru_capacity : int;
  jobs : int;
  max_requests : int option;
  slow_ms : float option;
  max_line_bytes : int;
}

(* A line that long is not a query; answer with a protocol error and
   drop the connection instead of buffering without bound. *)
let default_max_line_bytes = 64 * 1024 * 1024

let default_config addr =
  {
    addr;
    cache_dir = None;
    lru_capacity = 8;
    jobs = 1;
    max_requests = None;
    slow_ms = None;
    max_line_bytes = default_max_line_bytes;
  }

type conn = {
  fd : Unix.file_descr;
  cid : int;  (** connection serial, part of every trace id *)
  rbuf : Buffer.t;
  mutable outq : string;  (** bytes accepted but not yet written *)
  mutable close_after_flush : bool;
}

(* Per-op latency telemetry: a lifetime log-bucket histogram and a
   sliding window of recent requests.  Always on (the cost per request
   is two bucket increments), independent of the registry switch, so
   [metrics] and [stats] answer even when span recording is off. *)
type op_lat = { lt : Obs.Histogram.t; win : Obs.Histogram.window }

type state = {
  cfg : config;
  lru : Slif.Types.t Lru.t;
  started_us : float;
  mutable served : int;
  mutable errors : int;
  mutable next_req : int;
  mutable inflight : int;  (** open client connections *)
  mutable last_error : string option;
  per_op : (string, int ref) Hashtbl.t;
  lat : (string, op_lat) Hashtbl.t;
  mutable select_idle_us : float;  (** time parked in [select] with nothing to do *)
  mutable loop_iters : int;
  mutable stop : bool;
}

(* Every op the daemon can ever serve, so one [metrics] scrape exposes
   the full family set even before traffic arrives. *)
let known_ops =
  [ "load"; "estimate"; "partition"; "explore"; "stats"; "health"; "metrics";
    "shutdown"; "malformed" ]

let lat_for st op =
  match Hashtbl.find_opt st.lat op with
  | Some l -> l
  | None ->
      let l = { lt = Obs.Histogram.create (); win = Obs.Histogram.window () } in
      Hashtbl.add st.lat op l;
      l

let record_latency st op dur_us =
  let l = lat_for st op in
  Obs.Histogram.record l.lt dur_us;
  Obs.Histogram.window_record l.win dur_us

let count_op st op =
  st.served <- st.served + 1;
  Obs.Counter.incr ("server.request." ^ op);
  let cell =
    match Hashtbl.find_opt st.per_op op with
    | Some c -> c
    | None ->
        let c = ref 0 in
        Hashtbl.add st.per_op op c;
        c
  in
  incr cell

let note_error st msg =
  st.errors <- st.errors + 1;
  st.last_error <- Some msg;
  Obs.Counter.incr "server.error"

(* --- Target resolution ----------------------------------------------------- *)

let source_of_bundled name =
  match Specs.Registry.find name with
  | Some s -> Ok s.Specs.Registry.source
  | None ->
      Error
        (Printf.sprintf "unknown spec %S (expected one of: %s)" name
           (String.concat ", "
              (List.map (fun s -> s.Specs.Registry.spec_name) Specs.Registry.all)))

(* Resolve a request target to (content key, annotated SLIF), going
   through the LRU and, below it, the on-disk cache. *)
let resolve st target profile =
  match target with
  | Protocol.Key key -> (
      match Lru.find st.lru key with
      | Some slif ->
          Obs.Counter.incr "server.lru_hit";
          Ok (key, slif)
      | None ->
          Obs.Counter.incr "server.lru_miss";
          Error (Printf.sprintf "key %S is not resident (load it first)" key))
  | Protocol.Bundled _ | Protocol.Source _ -> (
      let source =
        match target with
        | Protocol.Bundled name -> source_of_bundled name
        | Protocol.Source text -> Ok text
        | Protocol.Key _ -> assert false
      in
      match source with
      | Error _ as e -> e
      | Ok source -> (
          let key = Slif_store.Cache.key ~source ?profile () in
          match Lru.find st.lru key with
          | Some slif ->
              Obs.Counter.incr "server.lru_hit";
              Ok (key, slif)
          | None ->
              Obs.Counter.incr "server.lru_miss";
              let slif =
                Ops.annotated ?cache_dir:st.cfg.cache_dir ?profile_text:profile source
              in
              Lru.add st.lru key slif;
              Ok (key, slif)))

(* --- Telemetry views -------------------------------------------------------- *)

let uptime_s st = (Obs.Clock.now_us () -. st.started_us) /. 1e6

let gc_counts_fields (c : Obs.Gcprof.counts) =
  let module J = Obs.Json in
  [
    ("minor_collections", J.Int c.minor_collections);
    ("major_collections", J.Int c.major_collections);
    ("compactions", J.Int c.compactions);
    ("minor_words", J.Float c.minor_words);
    ("promoted_words", J.Float c.promoted_words);
    ("major_words", J.Float c.major_words);
  ]

(* The GC block served by [stats] and [health]: process totals, current
   heap size, and the per-domain split (a hot pool worker shows up as
   the domain doing the collecting). *)
let gc_json () =
  let module J = Obs.Json in
  Obs.Gcprof.sample ();
  J.Obj
    (gc_counts_fields (Obs.Gcprof.counts ())
    @ [
        ("heap_words", J.Int (Obs.Gcprof.heap_words ()));
        ( "per_domain",
          J.Obj
            (List.map
               (fun (dom, c) -> (string_of_int dom, J.Obj (gc_counts_fields c)))
               (Obs.Gcprof.per_domain ())) );
      ])

let pool_json () =
  let module J = Obs.Json in
  let g = Slif_util.Pool.global_stats () in
  J.Obj
    [
      ("pools_created", J.Int g.Slif_util.Pool.g_pools_created);
      ("pools_live", J.Int g.Slif_util.Pool.g_pools_live);
      ("tasks_submitted", J.Int g.Slif_util.Pool.g_tasks_submitted);
      ("tasks_completed", J.Int g.Slif_util.Pool.g_tasks_completed);
    ]

let sorted_ops st =
  Hashtbl.fold (fun op l acc -> (op, l) :: acc) st.lat [] |> List.sort compare

let quantiles_json (q : Obs.Histogram.quantiles) =
  let module J = Obs.Json in
  J.Obj
    [
      ("count", J.Int q.q_count);
      ("p50", J.Float q.q_p50);
      ("p90", J.Float q.q_p90);
      ("p99", J.Float q.q_p99);
      ("max", J.Float q.q_max);
    ]

(* The [stats] latency block reports the sliding window — what the
   daemon is doing now — not lifetime averages. *)
let latency_json st =
  let module J = Obs.Json in
  J.Obj
    (List.filter_map
       (fun (op, l) ->
         Option.map (fun q -> (op, quantiles_json q)) (Obs.Histogram.window_quantiles l.win))
       (sorted_ops st))

let prometheus_text st =
  let module P = Obs.Prometheus in
  let per_op_counts =
    Hashtbl.fold (fun op c acc -> ([ ("op", op) ], float_of_int !c) :: acc) st.per_op []
    |> List.sort compare
  in
  let lifetime_series =
    List.filter_map
      (fun (op, l) ->
        if Obs.Histogram.count l.lt = 0 then None
        else
          Some
            ([ ("op", op) ], Obs.Histogram.quantile_summary l.lt, Obs.Histogram.sum l.lt))
      (sorted_ops st)
  in
  let recent_series =
    List.filter_map
      (fun (op, l) ->
        Option.map
          (fun q -> ([ ("op", op) ], q, 0.0))
          (Obs.Histogram.window_quantiles l.win))
      (sorted_ops st)
  in
  Obs.Gcprof.sample ();
  let dom_label d = [ ("domain", string_of_int d) ] in
  let gc_per_domain = Obs.Gcprof.per_domain () in
  let gc_counter name help pick =
    P.Counter
      {
        name;
        help;
        samples = List.map (fun (d, c) -> (dom_label d, pick c)) gc_per_domain;
      }
  in
  let gc_families =
    [
      gc_counter "slif_gc_minor_collections_total" "Minor collections, by domain."
        (fun (c : Obs.Gcprof.counts) -> float_of_int c.minor_collections);
      gc_counter "slif_gc_major_collections_total" "Major collection cycles, by domain."
        (fun c -> float_of_int c.major_collections);
      gc_counter "slif_gc_compactions_total" "Heap compactions, by domain." (fun c ->
          float_of_int c.compactions);
      gc_counter "slif_gc_minor_words_total" "Words allocated on minor heaps, by domain."
        (fun c -> c.minor_words);
      gc_counter "slif_gc_promoted_words_total"
        "Words promoted from minor to major heap, by domain." (fun c -> c.promoted_words);
      gc_counter "slif_gc_major_words_total"
        "Words allocated on the major heap (including promotions), by domain." (fun c ->
          c.major_words);
      P.Gauge
        {
          name = "slif_gc_heap_words";
          help = "Current major-heap size of the process, in words.";
          samples = [ ([], float_of_int (Obs.Gcprof.heap_words ())) ];
        };
    ]
  in
  let pg = Slif_util.Pool.global_stats () in
  let pool_families =
    [
      P.Counter
        {
          name = "slif_pool_pools_created_total";
          help = "Domain pools ever created.";
          samples = [ ([], float_of_int pg.Slif_util.Pool.g_pools_created) ];
        };
      P.Gauge
        {
          name = "slif_pool_pools_live";
          help = "Domain pools currently alive.";
          samples = [ ([], float_of_int pg.Slif_util.Pool.g_pools_live) ];
        };
      P.Counter
        {
          name = "slif_pool_tasks_submitted_total";
          help = "Tasks handed to pool map calls.";
          samples = [ ([], float_of_int pg.Slif_util.Pool.g_tasks_submitted) ];
        };
      P.Counter
        {
          name = "slif_pool_tasks_completed_total";
          help = "Pool tasks that ran to completion.";
          samples = [ ([], float_of_int pg.Slif_util.Pool.g_tasks_completed) ];
        };
    ]
  in
  (* Lock families only appear once a profiled lock recorded something:
     with Lockprof disabled (the default) the histograms stay empty. *)
  let lock_stats =
    List.filter (fun (s : Obs.Lockprof.stat) -> s.acquisitions > 0) (Obs.Lockprof.all ())
  in
  let lock_label (s : Obs.Lockprof.stat) = [ ("lock", s.s_name) ] in
  let lock_families =
    if lock_stats = [] then []
    else
      [
        P.Counter
          {
            name = "slif_lock_acquisitions_total";
            help = "Profiled-lock acquisitions, by lock.";
            samples =
              List.map
                (fun (s : Obs.Lockprof.stat) ->
                  (lock_label s, float_of_int s.acquisitions))
                lock_stats;
          };
        P.Counter
          {
            name = "slif_lock_contended_total";
            help = "Acquisitions that had to wait, by lock.";
            samples =
              List.map
                (fun (s : Obs.Lockprof.stat) -> (lock_label s, float_of_int s.contended))
                lock_stats;
          };
        P.Summary
          {
            name = "slif_lock_wait_microseconds";
            help = "Time spent waiting to acquire each profiled lock.";
            series =
              List.map
                (fun (s : Obs.Lockprof.stat) ->
                  (lock_label s, s.wait_quantiles, s.wait_us.sum))
                lock_stats;
          };
        P.Summary
          {
            name = "slif_lock_hold_microseconds";
            help = "Time each profiled lock was held.";
            series =
              List.map
                (fun (s : Obs.Lockprof.stat) ->
                  (lock_label s, s.hold_quantiles, s.hold_us.sum))
                lock_stats;
          };
      ]
  in
  let select_families =
    [
      P.Counter
        {
          name = "slif_server_select_idle_seconds_total";
          help = "Time the event loop spent parked in select with nothing to do.";
          samples = [ ([], st.select_idle_us /. 1e6) ];
        };
      P.Counter
        {
          name = "slif_server_loop_iterations_total";
          help = "Event-loop wake-ups.";
          samples = [ ([], float_of_int st.loop_iters) ];
        };
    ]
  in
  let registry_counters =
    List.map
      (fun (name, v) ->
        P.Counter
          {
            name = "slif_" ^ P.sanitize_name name ^ "_total";
            help = Printf.sprintf "Registry counter %s." name;
            samples = [ ([], float_of_int v) ];
          })
      (Obs.Counter.snapshot ())
  in
  let registry_hists =
    List.map
      (fun (name, (s : Obs.Histogram.summary), q) ->
        P.Summary
          {
            name = "slif_" ^ P.sanitize_name name;
            help = Printf.sprintf "Registry histogram %s." name;
            series = [ ([], q, s.sum) ];
          })
      (Obs.Histogram.snapshot_full ())
  in
  P.to_string
    ([
       P.Gauge
         {
           name = "slif_server_uptime_seconds";
           help = "Seconds since the daemon started.";
           samples = [ ([], uptime_s st) ];
         };
       P.Gauge
         {
           name = "slif_server_inflight_connections";
           help = "Open client connections.";
           samples = [ ([], float_of_int st.inflight) ];
         };
       P.Counter
         {
           name = "slif_server_requests_total";
           help = "Requests served, by op.";
           samples = per_op_counts;
         };
       P.Counter
         {
           name = "slif_server_errors_total";
           help = "Requests answered with an error.";
           samples = [ ([], float_of_int st.errors) ];
         };
       P.Gauge
         {
           name = "slif_server_lru_entries";
           help = "Annotated graphs resident in the LRU.";
           samples = [ ([], float_of_int (Lru.size st.lru)) ];
         };
       P.Gauge
         {
           name = "slif_server_lru_capacity";
           help = "LRU capacity.";
           samples = [ ([], float_of_int (Lru.capacity st.lru)) ];
         };
       P.Summary
         {
           name = "slif_server_request_duration_microseconds";
           help = "Lifetime per-op request latency (log-bucket quantiles).";
           series = lifetime_series;
         };
       P.Summary
         {
           name = "slif_server_recent_request_duration_microseconds";
           help =
             Printf.sprintf
               "Exact quantiles over the most recent requests per op (window %d)."
               Obs.Histogram.default_window_capacity;
           series = recent_series;
         };
     ]
    @ select_families @ gc_families @ pool_families @ lock_families @ registry_counters
    @ registry_hists)

(* The SIGUSR1 runtime dump: everything [stats] and the quantile block
   know, to stderr (or wherever [oc] points), without stopping the
   select loop. *)
let dump_telemetry st oc =
  Printf.fprintf oc
    "--- slif serve telemetry ---\nuptime_s: %.1f\nrequests: %d\nerrors:   %d\ninflight: %d\nlru:      %d/%d\n"
    (uptime_s st) st.served st.errors st.inflight (Lru.size st.lru)
    (Lru.capacity st.lru);
  (match st.last_error with
  | Some msg -> Printf.fprintf oc "last_error: %s\n" msg
  | None -> ());
  Printf.fprintf oc "per-op latency, microseconds (lifetime p50/p90/p99/max | recent):\n";
  List.iter
    (fun (op, l) ->
      if Obs.Histogram.count l.lt > 0 then begin
        let q = Obs.Histogram.quantile_summary l.lt in
        let r =
          match Obs.Histogram.window_quantiles l.win with
          | Some r -> Printf.sprintf "%.0f/%.0f/%.0f/%.0f" r.q_p50 r.q_p90 r.q_p99 r.q_max
          | None -> "-"
        in
        Printf.fprintf oc "  %-10s %6d reqs  %.0f/%.0f/%.0f/%.0f | %s\n" op q.q_count
          q.q_p50 q.q_p90 q.q_p99 q.q_max r
      end)
    (sorted_ops st);
  Printf.fprintf oc "--- end telemetry ---\n";
  flush oc

(* --- Request handling ------------------------------------------------------ *)

let deadlines_of specs =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | spec :: rest -> (
        match Ops.parse_deadline spec with
        | Ok d -> go (d :: acc) rest
        | Error msg -> Error msg)
  in
  go [] specs

let handle_request st req =
  let module J = Obs.Json in
  let with_target target profile f =
    match resolve st target profile with
    | Error msg -> Protocol.error msg
    | Ok (key, slif) -> f key slif
  in
  match req with
  | Protocol.Load { target; profile } ->
      with_target target profile (fun key (slif : Slif.Types.t) ->
          Protocol.ok
            [
              ("key", J.String key);
              ("design", J.String slif.Slif.Types.design_name);
              ("nodes", J.Int (Array.length slif.Slif.Types.nodes));
              ("channels", J.Int (Array.length slif.Slif.Types.chans));
            ])
  | Protocol.Estimate { target; profile; bounds } ->
      with_target target profile (fun key slif ->
          let output = Ops.estimate_output ~bounds slif in
          Protocol.ok [ ("key", J.String key); ("output", J.String output) ])
  | Protocol.Partition { target; profile; algo; deadlines } ->
      with_target target profile (fun key slif ->
          match Ops.algo_of_string algo with
          | Error msg -> Protocol.error msg
          | Ok algo -> (
              match deadlines_of deadlines with
              | Error msg -> Protocol.error msg
              | Ok ds ->
                  let constraints = Ops.constraints_of_deadlines ds in
                  let output, _part = Ops.partition_output ~algo ~constraints slif in
                  Protocol.ok [ ("key", J.String key); ("output", J.String output) ]))
  | Protocol.Explore { target; profile; jobs; deadlines } ->
      with_target target profile (fun key slif ->
          match deadlines_of deadlines with
          | Error msg -> Protocol.error msg
          | Ok ds ->
              let jobs =
                match jobs with Some j when j >= 1 -> j | Some _ | None -> st.cfg.jobs
              in
              let constraints = Ops.constraints_of_deadlines ds in
              let output = Ops.explore_output ~jobs ~constraints slif in
              Protocol.ok [ ("key", J.String key); ("output", J.String output) ])
  | Protocol.Stats ->
      let per_op =
        Hashtbl.fold (fun op c acc -> (op, J.Int !c) :: acc) st.per_op []
        |> List.sort compare
      in
      Protocol.ok
        [
          ("uptime_s", J.Float (uptime_s st));
          ("requests", J.Int st.served);
          ("errors", J.Int st.errors);
          ("by_op", J.Obj per_op);
          ( "lru",
            J.Obj
              [
                ("size", J.Int (Lru.size st.lru));
                ("capacity", J.Int (Lru.capacity st.lru));
                ("keys", J.List (List.map (fun k -> J.String k) (Lru.keys st.lru)));
              ] );
          ("latency_us", latency_json st);
          ("gc", gc_json ());
          ("pool", pool_json ());
        ]
  | Protocol.Health ->
      Protocol.ok
        [
          ("uptime_s", J.Float (uptime_s st));
          ("inflight", J.Int st.inflight);
          ("requests", J.Int st.served);
          ("errors", J.Int st.errors);
          ( "lru",
            J.Obj
              [
                ("size", J.Int (Lru.size st.lru));
                ("capacity", J.Int (Lru.capacity st.lru));
              ] );
          ( "gc",
            (Obs.Gcprof.sample ();
             let c = Obs.Gcprof.counts () in
             J.Obj
               [
                 ("minor_collections", J.Int c.minor_collections);
                 ("major_collections", J.Int c.major_collections);
                 ("promoted_words", J.Float c.promoted_words);
                 ("heap_words", J.Int (Obs.Gcprof.heap_words ()));
               ]) );
          ("pool", pool_json ());
          ( "last_error",
            match st.last_error with Some msg -> J.String msg | None -> J.Null );
        ]
  | Protocol.Metrics ->
      Protocol.ok [ ("output", J.String (prometheus_text st)) ]
  | Protocol.Shutdown ->
      st.stop <- true;
      Protocol.ok [ ("bye", J.Bool true) ]

let response_is_ok response =
  String.length response >= 10 && String.sub response 0 10 = {|{"ok":true|}

let handle_line st c line =
  st.next_req <- st.next_req + 1;
  (* The trace id names the connection and the request; every span and
     event-log line below carries it. *)
  let tid = Printf.sprintf "c%d-r%d" c.cid st.next_req in
  Obs.Registry.with_trace tid @@ fun () ->
  let t0 = Obs.Clock.now_us () in
  let op, response =
    match Protocol.request_of_line line with
    | Error msg ->
        note_error st msg;
        count_op st "malformed";
        ("malformed", Protocol.error msg)
    | Ok req -> (
        let op = Protocol.op_name req in
        count_op st op;
        ( op,
          Obs.Span.with_ ("server.request." ^ op) @@ fun () ->
          match handle_request st req with
          | response -> response
          | exception e ->
              (* A failing operation is the client's problem, not the
                 daemon's: report and keep serving. *)
              let msg =
                match e with
                | Slif_store.Store.Store_error err -> Slif_store.Store.error_message err
                | Failure msg -> msg
                | Invalid_argument msg -> msg
                | e -> Printexc.to_string e
              in
              note_error st msg;
              Protocol.error msg ))
  in
  let dur_us = Obs.Clock.now_us () -. t0 in
  record_latency st op dur_us;
  let ok = response_is_ok response in
  Obs.Event.emit "server.request"
    ~fields:
      [
        ("op", Obs.Json.String op);
        ("dur_us", Obs.Json.Float dur_us);
        ("ok", Obs.Json.Bool ok);
      ];
  (match st.cfg.slow_ms with
  | Some limit when dur_us /. 1e3 >= limit ->
      Obs.Counter.incr "server.slow_request";
      Obs.Event.emit ~level:Obs.Event.Warn "server.slow_request"
        ~fields:
          [
            ("op", Obs.Json.String op);
            ("dur_ms", Obs.Json.Float (dur_us /. 1e3));
            ("limit_ms", Obs.Json.Float limit);
          ];
      Printf.eprintf "slif serve: slow request %s op=%s %.1f ms (limit %.1f ms)\n%!" tid
        op (dur_us /. 1e3) limit
  | Some _ | None -> ());
  (match st.cfg.max_requests with
  | Some limit when st.served >= limit -> st.stop <- true
  | _ -> ());
  response

(* --- Event loop ------------------------------------------------------------ *)

let listen_socket addr =
  match addr with
  | Unix_sock path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      if Sys.file_exists path then Unix.unlink path;
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd
  | Tcp port ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.listen fd 64;
      fd

let close_conn st conns c =
  (try Unix.close c.fd with Unix.Unix_error _ -> ());
  let before = List.length !conns in
  conns := List.filter (fun c' -> c'.fd != c.fd) !conns;
  st.inflight <- st.inflight - (before - List.length !conns)

(* Drain complete lines out of the connection's read buffer. *)
let process_buffer st c =
  let continue = ref true in
  while !continue do
    let text = Buffer.contents c.rbuf in
    match String.index_opt text '\n' with
    | None ->
        if Buffer.length c.rbuf > st.cfg.max_line_bytes then begin
          (* Answer with a well-formed protocol error, then close once
             the response has flushed — never buffer without bound. *)
          note_error st "request line over the byte cap";
          Obs.Counter.incr "server.line_cap";
          Buffer.clear c.rbuf;
          c.outq <-
            c.outq
            ^ Protocol.error
                (Printf.sprintf "request line exceeds the %d-byte cap"
                   st.cfg.max_line_bytes)
            ^ "\n";
          c.close_after_flush <- true
        end;
        continue := false
    | Some nl ->
        let line = String.sub text 0 nl in
        Buffer.clear c.rbuf;
        Buffer.add_substring c.rbuf text (nl + 1) (String.length text - nl - 1);
        let line =
          (* Tolerate CRLF clients. *)
          if String.length line > 0 && line.[String.length line - 1] = '\r' then
            String.sub line 0 (String.length line - 1)
          else line
        in
        if String.trim line <> "" then c.outq <- c.outq ^ handle_line st c line ^ "\n";
        if st.stop then continue := false
  done

let try_read st conns c =
  let chunk = Bytes.create 65536 in
  match Unix.read c.fd chunk 0 (Bytes.length chunk) with
  | 0 -> close_conn st conns c
  | n ->
      Buffer.add_subbytes c.rbuf chunk 0 n;
      process_buffer st c
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      close_conn st conns c
  | exception Unix.Unix_error (Unix.EAGAIN, _, _) -> ()

let try_write st conns c =
  match Unix.write_substring c.fd c.outq 0 (String.length c.outq) with
  | n ->
      c.outq <- String.sub c.outq n (String.length c.outq - n);
      if c.outq = "" && c.close_after_flush then close_conn st conns c
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      close_conn st conns c
  | exception Unix.Unix_error (Unix.EAGAIN, _, _) -> ()

(* SIGUSR1 just raises a flag; the loop notices on its next wake-up (the
   signal interrupts a pending select with EINTR, so the dump is prompt)
   and writes the telemetry dump outside the handler. *)
let dump_requested = Atomic.make false

let run ?on_ready cfg =
  (* A client closing mid-response must not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let prev_usr1 =
    try
      Some
        (Sys.signal Sys.sigusr1
           (Sys.Signal_handle (fun _ -> Atomic.set dump_requested true)))
    with Invalid_argument _ | Sys_error _ -> None
  in
  let listen_fd = listen_socket cfg.addr in
  (match on_ready with Some f -> f (Unix.getsockname listen_fd) | None -> ());
  let st =
    {
      cfg;
      lru = Lru.create ~capacity:cfg.lru_capacity;
      started_us = Obs.Clock.now_us ();
      served = 0;
      errors = 0;
      next_req = 0;
      inflight = 0;
      last_error = None;
      per_op = Hashtbl.create 8;
      lat = Hashtbl.create 8;
      select_idle_us = 0.0;
      loop_iters = 0;
      stop = false;
    }
  in
  List.iter (fun op -> ignore (lat_for st op)) known_ops;
  Obs.Event.emit "server.start"
    ~fields:
      [
        ( "addr",
          Obs.Json.String
            (match cfg.addr with Unix_sock p -> p | Tcp p -> Printf.sprintf "tcp:%d" p)
        );
      ];
  let next_cid = ref 0 in
  let conns = ref [] in
  let pending () = List.exists (fun c -> c.outq <> "") !conns in
  while (not st.stop) || pending () do
    if Atomic.get dump_requested then begin
      Atomic.set dump_requested false;
      dump_telemetry st stderr
    end;
    let reads =
      if st.stop then []
      else
        listen_fd
        :: List.filter_map
             (fun c -> if c.close_after_flush then None else Some c.fd)
             !conns
    in
    let writes = List.filter_map (fun c -> if c.outq <> "" then Some c.fd else None) !conns in
    st.loop_iters <- st.loop_iters + 1;
    let sel_t0 = Obs.Clock.now_us () in
    let sel =
      match Unix.select reads writes [] 0.2 with
      | r -> Some r
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> None
    in
    (* Blocking in select with nothing ready is the daemon's idle time:
       part of its wall, useful both for the metrics scrape and — when a
       profiled sweep runs in-process — for the attribution report. *)
    let sel_dur = Obs.Clock.now_us () -. sel_t0 in
    (match sel with
    | Some ([], [], _) | None ->
        st.select_idle_us <- st.select_idle_us +. sel_dur;
        Obs.Attribution.add Obs.Attribution.Idle sel_dur
    | Some _ -> ());
    match sel with
    | None -> ()
    | Some (readable, writable, _) ->
        if List.memq listen_fd readable then begin
          match Unix.accept listen_fd with
          | fd, _ ->
              incr next_cid;
              st.inflight <- st.inflight + 1;
              conns :=
                {
                  fd;
                  cid = !next_cid;
                  rbuf = Buffer.create 1024;
                  outq = "";
                  close_after_flush = false;
                }
                :: !conns
          | exception Unix.Unix_error _ -> ()
        end;
        List.iter
          (fun c -> if List.memq c.fd readable then try_read st conns c)
          (List.filter (fun c -> c.fd != listen_fd) !conns);
        List.iter (fun c -> if List.memq c.fd writable then try_write st conns c) !conns
  done;
  Obs.Event.emit "server.stop"
    ~fields:
      [ ("requests", Obs.Json.Int st.served); ("errors", Obs.Json.Int st.errors) ];
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) !conns;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (match prev_usr1 with
  | Some behavior -> ( try Sys.set_signal Sys.sigusr1 behavior with Invalid_argument _ -> ())
  | None -> ());
  match cfg.addr with
  | Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
  | Tcp _ -> ()
