module Obs = Slif_obs

type addr =
  | Unix_sock of string
  | Tcp of int

type config = {
  addr : addr;
  cache_dir : string option;
  lru_capacity : int;
  lru_shards : int;
  workers : int;
  jobs : int;
  max_requests : int option;
  slow_ms : float option;
  max_line_bytes : int;
  max_batch_items : int;
  max_outq_bytes : int;
  max_connections : int option;
  max_graph_mb : int option;
  retain_traces : int;  (** tail-retention bound: slow/error traces kept in memory *)
  trace_dir : string option;  (** also persist retained traces (and dumps) here *)
}

(* A line that long is not a query; answer with a protocol error and
   drop the connection instead of buffering without bound. *)
let default_max_line_bytes = 64 * 1024 * 1024

(* Unread responses past this mark the reader as too slow to keep. *)
let default_max_outq_bytes = 32 * 1024 * 1024

let default_config addr =
  {
    addr;
    cache_dir = None;
    lru_capacity = 8;
    lru_shards = 8;
    workers = 1;
    jobs = 1;
    max_requests = None;
    slow_ms = None;
    max_line_bytes = default_max_line_bytes;
    max_batch_items = Protocol.default_max_batch_items;
    max_outq_bytes = default_max_outq_bytes;
    max_connections = None;
    max_graph_mb = None;
    retain_traces = 32;
    trace_dir = None;
  }

type conn = {
  fd : Unix.file_descr;
  cid : int;  (** connection serial, part of every trace id *)
  rbuf : Buffer.t;
  out : Buffer.t;  (** bytes accepted but not yet written *)
  mutable out_off : int;  (** prefix of [out] already written *)
  mutable close_after_flush : bool;
  mutable dropping : bool;
      (** backpressure tripped: responses are discarded, the connection
          closes once the error line flushes *)
  mutable next_seq : int;  (** next sequence number to assign at framing *)
  mutable next_flush : int;  (** next sequence number to move into [out] *)
  pending : (int, string) Hashtbl.t;
      (** completed responses waiting for their turn on the wire —
          workers finish out of order, clients read in order *)
}

(* What a worker measured about one executed request; the acceptor owns
   every counter, so accounting rides back on the completion. *)
type acct = {
  a_op : string;
  a_wire : bool;  (** a request line (counts toward [served]) vs a batch item *)
  a_dur_us : float;
  a_err : string option;
}

type job = {
  jb_cid : int;
  jb_seq : int;
  jb_tid : string;
  jb_root : int;  (** flight span id of the request root, minted at dispatch *)
  jb_line : string;
  jb_enq_us : float;
  jb_enq_ns : int;  (** same instant on the ns clock, for flight spans *)
}

type outcome =
  | Resp of string * acct list  (** serialized response + accounting *)
  | Control of Protocol.request
      (** stats/health/metrics/shutdown: rendered by the acceptor, which
          owns the state they report *)

type completion = {
  cp_cid : int;
  cp_seq : int;
  cp_tid : string;
  cp_root : int;  (** the request's root flight span id *)
  cp_enq_ns : int;  (** dispatch instant: the root span opens here *)
  cp_worker : int;
  cp_wait_us : float;  (** time the job sat in the queue *)
  cp_out : outcome;
}

(* Everything the acceptor and the worker domains share: the job queue
   (condition-parked workers), the completion queue, and the self-pipe
   that wakes the acceptor's select when a completion lands. *)
type shared = {
  jq_lock : Obs.Lockprof.t;
  jq_cond : Condition.t;
  jq : job Queue.t;
  mutable jq_stop : bool;
  cq_lock : Obs.Lockprof.t;
  cq : completion Queue.t;
  wake_w : Unix.file_descr;
}

(* Per-op latency telemetry: a lifetime log-bucket histogram and a
   sliding window of recent requests.  Always on (the cost per request
   is two bucket increments), independent of the registry switch, so
   [metrics] and [stats] answer even when span recording is off. *)
type op_lat = { lt : Obs.Histogram.t; win : Obs.Histogram.window }

(* One tail-retained trace: the span tree of a request that finished
   slow or failing, reconstructed from the flight window at completion
   time.  Bounded by [cfg.retain_traces] (oldest evicted first, its
   on-disk file removed with it). *)
type retained = {
  rt_id : string;
  rt_reason : string;  (* "slow" | "error" *)
  rt_op : string;
  rt_dur_us : float;
  rt_spans : int;
  rt_json : Obs.Json.t;
  rt_file : string option;
}

type state = {
  cfg : config;
  lru : Slif.Types.t Lru.Sharded.t;
  sh : shared;
  started_us : float;
  mutable served : int;
  mutable errors : int;
  mutable next_req : int;
  mutable inflight : int;  (** open client connections *)
  mutable jobs_inflight : int;  (** dispatched lines whose completion has not drained *)
  mutable outq_overflows : int;
  mutable dropped_responses : int;
  mutable rejected_conns : int;
  worker_served : int array;  (** per-worker completions, drained single-threaded *)
  queue_wait : Obs.Histogram.t;
  mutable last_error : string option;
  per_op : (string, int ref) Hashtbl.t;
  lat : (string, op_lat) Hashtbl.t;
  mutable select_idle_us : float;  (** time parked in [select] with nothing to do *)
  mutable loop_iters : int;
  retained : retained Queue.t;  (** oldest first, bounded by [cfg.retain_traces] *)
  mutable retained_total : int;  (** traces ever retained (evictions included) *)
  mutable dump_bytes : int;  (** bytes of flight dumps written ([dump] op + SIGQUIT) *)
  mutable stop : bool;
}

(* The execution environment workers see: configuration, the sharded
   resident set, and the open store-file handles — no acceptor-owned
   mutable accounting.  Handles are keyed by path and shared across
   workers; a [Lazy_store.t] is domain-safe, so the cache's mutex only
   guards the cache itself.  The cache is a bounded LRU: a stream of
   distinct store paths evicts the least recently used handle (its
   mapping is reclaimed once unreferenced) instead of growing a table
   without limit. *)
type exec_env = {
  x_cfg : config;
  x_lru : Slif.Types.t Lru.Sharded.t;
  x_stores : Slif_store.Lazy_store.t Lru.t;
  x_stores_lock : Mutex.t;
}

(* Handles are metadata-sized (mmap + directory + META), so the bound
   only guards against pathological path churn. *)
let store_handle_capacity = 64

(* A handler-level error with a machine-readable kind ("kind" in the
   error response) — admission-control rejections, which clients
   dispatch on without parsing the message. *)
exception Typed_error of string * string

(* Every op the daemon can ever serve, so one [metrics] scrape exposes
   the full family set even before traffic arrives. *)
let known_ops =
  [ "load"; "estimate"; "partition"; "explore"; "batch"; "stats"; "health";
    "metrics"; "dump"; "traces"; "shutdown"; "malformed" ]

(* Process-wide labeled families (per-worker requests, batch items by
   op); the [stats] op reports daemon-local exact figures from [state]
   instead, since families outlive any one daemon in a test process. *)
let worker_family () = Obs.Family.create "server.worker.requests" ~label:"worker"
let batch_family () = Obs.Family.create "server.batch.items" ~label:"op"

let lat_for st op =
  match Hashtbl.find_opt st.lat op with
  | Some l -> l
  | None ->
      let l = { lt = Obs.Histogram.create (); win = Obs.Histogram.window () } in
      Hashtbl.add st.lat op l;
      l

let record_latency st op dur_us =
  let l = lat_for st op in
  Obs.Histogram.record l.lt dur_us;
  Obs.Histogram.window_record l.win dur_us

let note_error st msg =
  st.errors <- st.errors + 1;
  st.last_error <- Some msg;
  Obs.Counter.incr "server.error"

(* Acceptor-side accounting for one executed request or batch item. *)
let account st (a : acct) =
  if a.a_wire then st.served <- st.served + 1
  else Obs.Family.incr (batch_family ()) a.a_op;
  Obs.Counter.incr ("server.request." ^ a.a_op);
  let cell =
    match Hashtbl.find_opt st.per_op a.a_op with
    | Some c -> c
    | None ->
        let c = ref 0 in
        Hashtbl.add st.per_op a.a_op c;
        c
  in
  incr cell;
  record_latency st a.a_op a.a_dur_us;
  match a.a_err with Some msg -> note_error st msg | None -> ()

let queue_depth st =
  Obs.Lockprof.with_lock st.sh.jq_lock (fun () -> Queue.length st.sh.jq)

(* --- Target resolution ----------------------------------------------------- *)

let source_of_bundled name =
  match Specs.Registry.find name with
  | Some s -> Ok s.Specs.Registry.source
  | None ->
      Error
        (Printf.sprintf "unknown spec %S (expected one of: %s)" name
           (String.concat ", "
              (List.map (fun s -> s.Specs.Registry.spec_name) Specs.Registry.all)))

(* A store-file target resolves to either a shared lazy v2 handle or a
   v1 marker (v1 containers can only be decoded whole). *)
type stored = Lazy of Slif_store.Lazy_store.t | Eager_v1

let stored_key path = "store:" ^ path

(* Resolve a path to a cached handle, revalidating on every hit: the
   mmap pins the inode it mapped, and [save_slif] replaces stores by
   atomic rename, so a hit whose (dev, ino, size, mtime) no longer
   matches the path means the file was regenerated — drop the stale
   handle *and* its decoded [store:<path>] LRU entry, then reopen. *)
let store_handle env path =
  Mutex.lock env.x_stores_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock env.x_stores_lock)
    (fun () ->
      let reopen () =
        match Slif_store.Lazy_store.open_file path with
        | Ok h ->
            Lru.add env.x_stores path h;
            Ok (Lazy h)
        | Error (Slif_store.Store.Unsupported_version 1) -> Ok Eager_v1
        | Error err -> Error (Slif_store.Store.error_message err)
      in
      match Lru.find env.x_stores path with
      | Some h when not (Slif_store.Lazy_store.stale h) -> Ok (Lazy h)
      | Some _ ->
          Obs.Counter.incr "server.store.reopen";
          Lru.remove env.x_stores path;
          Lru.Sharded.remove env.x_lru (stored_key path);
          reopen ()
      | None -> reopen ())

(* Admission control: decode nothing whose decoded form would not fit
   the [--max-graph-mb] budget.  [bytes] is META's decoded-heap estimate
   for a v2 container and the file size (a lower bound on the decoded
   heap) for a v1 one. *)
let check_graph_budget env ~path ~bytes =
  match env.x_cfg.max_graph_mb with
  | Some mb when bytes > mb * 1024 * 1024 ->
      raise
        (Typed_error
           ( "graph_too_large",
             Printf.sprintf
               "%s: decoded graph needs ~%d MB, over the --max-graph-mb budget (%d MB)"
               path
               ((bytes + (1024 * 1024) - 1) / (1024 * 1024))
               mb ))
  | Some _ | None -> ()

(* LRU shard ops as black-box instants: a retained trace shows whether
   the request hit the resident set or paid a decode/rebuild. *)
let lru_hit () =
  Obs.Counter.incr "server.lru_hit";
  Obs.Flight.record_event "server.lru.hit"

let lru_miss () =
  Obs.Counter.incr "server.lru_miss";
  Obs.Flight.record_event "server.lru.miss"

(* Resolve a request target to (content key, annotated SLIF), going
   through the sharded LRU and, below it, the on-disk cache.  Two
   workers missing on the same key concurrently both build it; the
   second [add] refreshes the first — graphs are immutable, so the
   duplicate work is idempotent and briefly-doubled, never wrong. *)
let resolve env target profile =
  match target with
  | Protocol.Stored path -> (
      match profile with
      | Some _ -> Error "store targets are already annotated: \"profile\" does not apply"
      | None -> (
          (* Handle first, LRU second: the hit-side stat revalidation in
             [store_handle] is what invalidates a stale [store:<path>]
             entry before we consult it. *)
          match store_handle env path with
          | Error _ as e -> e
          | Ok stored -> (
              let key = stored_key path in
              match Lru.Sharded.find env.x_lru key with
              | Some slif ->
                  lru_hit ();
                  Ok (key, slif)
              | None -> (
                  lru_miss ();
                  match stored with
                  | Lazy h -> (
                      check_graph_budget env ~path
                        ~bytes:(Slif_store.Lazy_store.decoded_bytes_estimate h);
                      match
                        Obs.Span.with_ "server.store.decode" (fun () ->
                            Slif_store.Lazy_store.slif h)
                      with
                      | Error err -> Error (Slif_store.Store.error_message err)
                      | Ok (slif, _prov) ->
                          Lru.Sharded.add env.x_lru key slif;
                          Ok (key, slif))
                  | Eager_v1 -> (
                      match Slif_store.Store.read_file path with
                      | Error err -> Error (Slif_store.Store.error_message err)
                      | Ok text -> (
                          check_graph_budget env ~path ~bytes:(String.length text);
                          match
                            Obs.Span.with_ "server.store.decode" (fun () ->
                                Slif_store.Store.slif_of_string text)
                          with
                          | Error err -> Error (Slif_store.Store.error_message err)
                          | Ok (slif, _prov) ->
                              Lru.Sharded.add env.x_lru key slif;
                              Ok (key, slif)))))))
  | Protocol.Key key -> (
      match Lru.Sharded.find env.x_lru key with
      | Some slif ->
          lru_hit ();
          Ok (key, slif)
      | None ->
          lru_miss ();
          Error (Printf.sprintf "key %S is not resident (load it first)" key))
  | Protocol.Bundled _ | Protocol.Source _ -> (
      let source =
        match target with
        | Protocol.Bundled name -> source_of_bundled name
        | Protocol.Source text -> Ok text
        | Protocol.Key _ | Protocol.Stored _ -> assert false
      in
      match source with
      | Error _ as e -> e
      | Ok source -> (
          let key = Slif_store.Cache.key ~source ?profile () in
          match Lru.Sharded.find env.x_lru key with
          | Some slif ->
              lru_hit ();
              Ok (key, slif)
          | None ->
              lru_miss ();
              let slif =
                Obs.Span.with_ "server.annotate" (fun () ->
                    Ops.annotated ?cache_dir:env.x_cfg.cache_dir ?profile_text:profile
                      source)
              in
              Lru.Sharded.add env.x_lru key slif;
              Ok (key, slif)))

(* --- Telemetry views -------------------------------------------------------- *)

let uptime_s st = (Obs.Clock.now_us () -. st.started_us) /. 1e6

let gc_counts_fields (c : Obs.Gcprof.counts) =
  let module J = Obs.Json in
  [
    ("minor_collections", J.Int c.minor_collections);
    ("major_collections", J.Int c.major_collections);
    ("compactions", J.Int c.compactions);
    ("minor_words", J.Float c.minor_words);
    ("promoted_words", J.Float c.promoted_words);
    ("major_words", J.Float c.major_words);
  ]

(* The GC block served by [stats] and [health]: process totals, current
   heap size, and the per-domain split (a hot worker shows up as the
   domain doing the collecting). *)
let gc_json () =
  let module J = Obs.Json in
  Obs.Gcprof.sample ();
  J.Obj
    (gc_counts_fields (Obs.Gcprof.counts ())
    @ [
        ("heap_words", J.Int (Obs.Gcprof.heap_words ()));
        ( "per_domain",
          J.Obj
            (List.map
               (fun (dom, c) -> (string_of_int dom, J.Obj (gc_counts_fields c)))
               (Obs.Gcprof.per_domain ())) );
      ])

let pool_json () =
  let module J = Obs.Json in
  let g = Slif_util.Pool.global_stats () in
  J.Obj
    [
      ("pools_created", J.Int g.Slif_util.Pool.g_pools_created);
      ("pools_live", J.Int g.Slif_util.Pool.g_pools_live);
      ("tasks_submitted", J.Int g.Slif_util.Pool.g_tasks_submitted);
      ("tasks_completed", J.Int g.Slif_util.Pool.g_tasks_completed);
    ]

(* The flight-recorder block served by [stats] and the SIGUSR1 dump:
   per-domain ring health plus the tail-retention ledger — black-box
   health without stopping the daemon. *)
let flight_json st =
  let module J = Obs.Json in
  J.Obj
    [
      ("records", J.Int (Obs.Flight.records_total ()));
      ("dropped", J.Int (Obs.Flight.dropped_total ()));
      ("retained", J.Int st.retained_total);
      ("retained_live", J.Int (Queue.length st.retained));
      ("dump_bytes", J.Int st.dump_bytes);
      ( "rings",
        J.List
          (List.map
             (fun (r : Obs.Flight.ring_stat) ->
               J.Obj
                 [
                   ("domain", J.Int r.rs_dom);
                   ("capacity", J.Int r.rs_capacity);
                   ("records", J.Int r.rs_records);
                   ("dropped", J.Int r.rs_dropped);
                   ("occupancy", J.Int r.rs_occupancy);
                 ])
             (Obs.Flight.ring_stats ())) );
    ]

(* The worker/queue block served by [stats] and [health]: daemon-local
   exact figures (the Family counters are process-wide). *)
let server_json st =
  let module J = Obs.Json in
  J.Obj
    [
      ("workers", J.Int st.cfg.workers);
      ("queue_depth", J.Int (queue_depth st));
      ("jobs_inflight", J.Int st.jobs_inflight);
      ( "per_worker",
        J.Obj
          (Array.to_list (Array.mapi (fun w n -> (string_of_int w, J.Int n)) st.worker_served))
      );
      ("outq_overflows", J.Int st.outq_overflows);
      ("dropped_responses", J.Int st.dropped_responses);
      ("rejected_connections", J.Int st.rejected_conns);
    ]

let lru_shards_json st =
  let module J = Obs.Json in
  J.List
    (List.map
       (fun (s : Lru.Sharded.shard_stat) ->
         J.Obj
           [
             ("shard", J.Int s.sh_index);
             ("size", J.Int s.sh_size);
             ("capacity", J.Int s.sh_capacity);
             ("hits", J.Int s.sh_hits);
             ("misses", J.Int s.sh_misses);
           ])
       (Lru.Sharded.shard_stats st.lru))

let sorted_ops st =
  Hashtbl.fold (fun op l acc -> (op, l) :: acc) st.lat [] |> List.sort compare

let quantiles_json (q : Obs.Histogram.quantiles) =
  let module J = Obs.Json in
  J.Obj
    [
      ("count", J.Int q.q_count);
      ("p50", J.Float q.q_p50);
      ("p90", J.Float q.q_p90);
      ("p99", J.Float q.q_p99);
      ("max", J.Float q.q_max);
    ]

(* The [stats] latency block reports the sliding window — what the
   daemon is doing now — not lifetime averages. *)
let latency_json st =
  let module J = Obs.Json in
  J.Obj
    (List.filter_map
       (fun (op, l) ->
         Option.map (fun q -> (op, quantiles_json q)) (Obs.Histogram.window_quantiles l.win))
       (sorted_ops st))

let prometheus_text st =
  let module P = Obs.Prometheus in
  let per_op_counts =
    Hashtbl.fold (fun op c acc -> ([ ("op", op) ], float_of_int !c) :: acc) st.per_op []
    |> List.sort compare
  in
  let lifetime_series =
    List.filter_map
      (fun (op, l) ->
        if Obs.Histogram.count l.lt = 0 then None
        else
          Some
            ([ ("op", op) ], Obs.Histogram.quantile_summary l.lt, Obs.Histogram.sum l.lt))
      (sorted_ops st)
  in
  let recent_series =
    List.filter_map
      (fun (op, l) ->
        Option.map
          (fun q -> ([ ("op", op) ], q, 0.0))
          (Obs.Histogram.window_quantiles l.win))
      (sorted_ops st)
  in
  Obs.Gcprof.sample ();
  let dom_label d = [ ("domain", string_of_int d) ] in
  let gc_per_domain = Obs.Gcprof.per_domain () in
  let gc_counter name help pick =
    P.Counter
      {
        name;
        help;
        samples = List.map (fun (d, c) -> (dom_label d, pick c)) gc_per_domain;
      }
  in
  let gc_families =
    [
      gc_counter "slif_gc_minor_collections_total" "Minor collections, by domain."
        (fun (c : Obs.Gcprof.counts) -> float_of_int c.minor_collections);
      gc_counter "slif_gc_major_collections_total" "Major collection cycles, by domain."
        (fun c -> float_of_int c.major_collections);
      gc_counter "slif_gc_compactions_total" "Heap compactions, by domain." (fun c ->
          float_of_int c.compactions);
      gc_counter "slif_gc_minor_words_total" "Words allocated on minor heaps, by domain."
        (fun c -> c.minor_words);
      gc_counter "slif_gc_promoted_words_total"
        "Words promoted from minor to major heap, by domain." (fun c -> c.promoted_words);
      gc_counter "slif_gc_major_words_total"
        "Words allocated on the major heap (including promotions), by domain." (fun c ->
          c.major_words);
      P.Gauge
        {
          name = "slif_gc_heap_words";
          help = "Current major-heap size of the process, in words.";
          samples = [ ([], float_of_int (Obs.Gcprof.heap_words ())) ];
        };
    ]
  in
  let pg = Slif_util.Pool.global_stats () in
  let pool_families =
    [
      P.Counter
        {
          name = "slif_pool_pools_created_total";
          help = "Domain pools ever created.";
          samples = [ ([], float_of_int pg.Slif_util.Pool.g_pools_created) ];
        };
      P.Gauge
        {
          name = "slif_pool_pools_live";
          help = "Domain pools currently alive.";
          samples = [ ([], float_of_int pg.Slif_util.Pool.g_pools_live) ];
        };
      P.Counter
        {
          name = "slif_pool_tasks_submitted_total";
          help = "Tasks handed to pool map calls.";
          samples = [ ([], float_of_int pg.Slif_util.Pool.g_tasks_submitted) ];
        };
      P.Counter
        {
          name = "slif_pool_tasks_completed_total";
          help = "Pool tasks that ran to completion.";
          samples = [ ([], float_of_int pg.Slif_util.Pool.g_tasks_completed) ];
        };
    ]
  in
  (* Lock families only appear once a profiled lock recorded something:
     with Lockprof disabled (the default) the histograms stay empty. *)
  let lock_stats =
    List.filter (fun (s : Obs.Lockprof.stat) -> s.acquisitions > 0) (Obs.Lockprof.all ())
  in
  let lock_label (s : Obs.Lockprof.stat) = [ ("lock", s.s_name) ] in
  let lock_families =
    if lock_stats = [] then []
    else
      [
        P.Counter
          {
            name = "slif_lock_acquisitions_total";
            help = "Profiled-lock acquisitions, by lock.";
            samples =
              List.map
                (fun (s : Obs.Lockprof.stat) ->
                  (lock_label s, float_of_int s.acquisitions))
                lock_stats;
          };
        P.Counter
          {
            name = "slif_lock_contended_total";
            help = "Acquisitions that had to wait, by lock.";
            samples =
              List.map
                (fun (s : Obs.Lockprof.stat) -> (lock_label s, float_of_int s.contended))
                lock_stats;
          };
        P.Summary
          {
            name = "slif_lock_wait_microseconds";
            help = "Time spent waiting to acquire each profiled lock.";
            series =
              List.map
                (fun (s : Obs.Lockprof.stat) ->
                  (lock_label s, s.wait_quantiles, s.wait_us.sum))
                lock_stats;
          };
        P.Summary
          {
            name = "slif_lock_hold_microseconds";
            help = "Time each profiled lock was held.";
            series =
              List.map
                (fun (s : Obs.Lockprof.stat) ->
                  (lock_label s, s.hold_quantiles, s.hold_us.sum))
                lock_stats;
          };
      ]
  in
  let select_families =
    [
      P.Counter
        {
          name = "slif_server_select_idle_seconds_total";
          help = "Time the acceptor spent parked in select with nothing to do.";
          samples = [ ([], st.select_idle_us /. 1e6) ];
        };
      P.Counter
        {
          name = "slif_server_loop_iterations_total";
          help = "Acceptor-loop wake-ups.";
          samples = [ ([], float_of_int st.loop_iters) ];
        };
    ]
  in
  let worker_families =
    [
      P.Gauge
        {
          name = "slif_server_workers";
          help = "Worker domains executing requests.";
          samples = [ ([], float_of_int st.cfg.workers) ];
        };
      P.Gauge
        {
          name = "slif_server_queue_depth";
          help = "Jobs waiting in the dispatch queue.";
          samples = [ ([], float_of_int (queue_depth st)) ];
        };
      P.Gauge
        {
          name = "slif_server_jobs_inflight";
          help = "Dispatched request lines whose completion has not drained.";
          samples = [ ([], float_of_int st.jobs_inflight) ];
        };
      P.Counter
        {
          name = "slif_server_outq_overflows_total";
          help = "Connections dropped for reading too slowly.";
          samples = [ ([], float_of_int st.outq_overflows) ];
        };
      P.Counter
        {
          name = "slif_server_dropped_responses_total";
          help = "Responses discarded because their connection was gone.";
          samples = [ ([], float_of_int st.dropped_responses) ];
        };
      P.Counter
        {
          name = "slif_server_rejected_connections_total";
          help = "Connections refused over the connection limit.";
          samples = [ ([], float_of_int st.rejected_conns) ];
        };
    ]
    @
    if Obs.Histogram.count st.queue_wait = 0 then []
    else
      [
        P.Summary
          {
            name = "slif_server_queue_wait_microseconds";
            help = "Time jobs sat in the dispatch queue before a worker took them.";
            series =
              [ ([], Obs.Histogram.quantile_summary st.queue_wait,
                 Obs.Histogram.sum st.queue_wait) ];
          };
      ]
  in
  let flight_rings = Obs.Flight.ring_stats () in
  let flight_ring_samples pick =
    List.map
      (fun (r : Obs.Flight.ring_stat) -> (dom_label r.rs_dom, float_of_int (pick r)))
      flight_rings
  in
  let flight_families =
    [
      P.Counter
        {
          name = "slif_flight_records_total";
          help = "Flight-recorder records written, by domain.";
          samples = flight_ring_samples (fun r -> r.rs_records);
        };
      P.Counter
        {
          name = "slif_flight_dropped_total";
          help = "Flight records overwritten by their ring wrapping, by domain.";
          samples = flight_ring_samples (fun r -> r.rs_dropped);
        };
      P.Gauge
        {
          name = "slif_flight_ring_occupancy";
          help = "Live records in each domain's flight ring.";
          samples = flight_ring_samples (fun r -> r.rs_occupancy);
        };
      P.Counter
        {
          name = "slif_flight_retained_traces_total";
          help = "Slow/error traces tail-retained since startup.";
          samples = [ ([], float_of_int st.retained_total) ];
        };
      P.Counter
        {
          name = "slif_flight_dump_bytes_total";
          help = "Bytes of flight-window dumps written (dump op and SIGQUIT).";
          samples = [ ([], float_of_int st.dump_bytes) ];
        };
    ]
  in
  let shard_label i = [ ("shard", string_of_int i) ] in
  let shard_stats = Lru.Sharded.shard_stats st.lru in
  let shard_samples pick =
    List.map
      (fun (s : Lru.Sharded.shard_stat) -> (shard_label s.sh_index, float_of_int (pick s)))
      shard_stats
  in
  let lru_shard_families =
    [
      P.Gauge
        {
          name = "slif_server_lru_shard_entries";
          help = "Resident graphs, by LRU shard.";
          samples = shard_samples (fun s -> s.sh_size);
        };
      P.Counter
        {
          name = "slif_server_lru_shard_hits_total";
          help = "Cache hits, by LRU shard.";
          samples = shard_samples (fun s -> s.sh_hits);
        };
      P.Counter
        {
          name = "slif_server_lru_shard_misses_total";
          help = "Cache misses, by LRU shard.";
          samples = shard_samples (fun s -> s.sh_misses);
        };
    ]
  in
  (* Every labeled family (per-worker requests, batch items by op, and
     whatever future subsystems register) exports generically. *)
  let labeled_families =
    List.filter_map
      (fun f ->
        match Obs.Family.snapshot f with
        | [] -> None
        | series ->
            Some
              (P.Counter
                 {
                   name = "slif_" ^ P.sanitize_name (Obs.Family.name f) ^ "_total";
                   help =
                     Printf.sprintf "Family %s, by %s." (Obs.Family.name f)
                       (Obs.Family.label f);
                   samples =
                     List.map
                       (fun (v, n) -> ([ (Obs.Family.label f, v) ], float_of_int n))
                       series;
                 }))
      (Obs.Family.all ())
  in
  let registry_counters =
    List.map
      (fun (name, v) ->
        P.Counter
          {
            name = "slif_" ^ P.sanitize_name name ^ "_total";
            help = Printf.sprintf "Registry counter %s." name;
            samples = [ ([], float_of_int v) ];
          })
      (Obs.Counter.snapshot ())
  in
  let registry_hists =
    List.map
      (fun (name, (s : Obs.Histogram.summary), q) ->
        P.Summary
          {
            name = "slif_" ^ P.sanitize_name name;
            help = Printf.sprintf "Registry histogram %s." name;
            series = [ ([], q, s.sum) ];
          })
      (Obs.Histogram.snapshot_full ())
  in
  P.to_string
    ([
       P.Gauge
         {
           name = "slif_server_uptime_seconds";
           help = "Seconds since the daemon started.";
           samples = [ ([], uptime_s st) ];
         };
       P.Gauge
         {
           name = "slif_server_inflight_connections";
           help = "Open client connections.";
           samples = [ ([], float_of_int st.inflight) ];
         };
       P.Counter
         {
           name = "slif_server_requests_total";
           help = "Requests served, by op.";
           samples = per_op_counts;
         };
       P.Counter
         {
           name = "slif_server_errors_total";
           help = "Requests answered with an error.";
           samples = [ ([], float_of_int st.errors) ];
         };
       P.Gauge
         {
           name = "slif_server_lru_entries";
           help = "Annotated graphs resident in the LRU.";
           samples = [ ([], float_of_int (Lru.Sharded.size st.lru)) ];
         };
       P.Gauge
         {
           name = "slif_server_lru_capacity";
           help = "LRU capacity.";
           samples = [ ([], float_of_int (Lru.Sharded.capacity st.lru)) ];
         };
       P.Summary
         {
           name = "slif_server_request_duration_microseconds";
           help = "Lifetime per-op request latency (log-bucket quantiles).";
           series = lifetime_series;
         };
       P.Summary
         {
           name = "slif_server_recent_request_duration_microseconds";
           help =
             Printf.sprintf
               "Exact quantiles over the most recent requests per op (window %d)."
               Obs.Histogram.default_window_capacity;
           series = recent_series;
         };
     ]
    @ worker_families @ flight_families @ lru_shard_families @ select_families
    @ gc_families @ pool_families @ lock_families @ labeled_families
    @ registry_counters @ registry_hists)

(* The SIGUSR1 runtime dump: everything [stats] and the quantile block
   know, to stderr (or wherever [oc] points), without stopping the
   acceptor loop. *)
let dump_telemetry st oc =
  Printf.fprintf oc
    "--- slif serve telemetry ---\n\
     uptime_s: %.1f\n\
     requests: %d\n\
     errors:   %d\n\
     inflight: %d\n\
     workers:  %d (queue %d, jobs inflight %d)\n\
     lru:      %d/%d (hits %d, misses %d)\n"
    (uptime_s st) st.served st.errors st.inflight st.cfg.workers (queue_depth st)
    st.jobs_inflight (Lru.Sharded.size st.lru)
    (Lru.Sharded.capacity st.lru)
    (Lru.Sharded.hits st.lru) (Lru.Sharded.misses st.lru);
  (match st.last_error with
  | Some msg -> Printf.fprintf oc "last_error: %s\n" msg
  | None -> ());
  Printf.fprintf oc
    "flight:   %d records (%d dropped), %d traces retained (%d live), %d dump bytes\n"
    (Obs.Flight.records_total ())
    (Obs.Flight.dropped_total ())
    st.retained_total (Queue.length st.retained) st.dump_bytes;
  List.iter
    (fun (r : Obs.Flight.ring_stat) ->
      Printf.fprintf oc "  ring dom %d: %d/%d occupied, %d written, %d dropped\n" r.rs_dom
        r.rs_occupancy r.rs_capacity r.rs_records r.rs_dropped)
    (Obs.Flight.ring_stats ());
  Printf.fprintf oc "per-op latency, microseconds (lifetime p50/p90/p99/max | recent):\n";
  List.iter
    (fun (op, l) ->
      if Obs.Histogram.count l.lt > 0 then begin
        let q = Obs.Histogram.quantile_summary l.lt in
        let r =
          match Obs.Histogram.window_quantiles l.win with
          | Some r -> Printf.sprintf "%.0f/%.0f/%.0f/%.0f" r.q_p50 r.q_p90 r.q_p99 r.q_max
          | None -> "-"
        in
        Printf.fprintf oc "  %-10s %6d reqs  %.0f/%.0f/%.0f/%.0f | %s\n" op q.q_count
          q.q_p50 q.q_p90 q.q_p99 q.q_max r
      end)
    (sorted_ops st);
  Printf.fprintf oc "--- end telemetry ---\n";
  flush oc

(* --- Request execution (worker side) --------------------------------------- *)

let deadlines_of specs =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | spec :: rest -> (
        match Ops.parse_deadline spec with
        | Ok d -> go (d :: acc) rest
        | Error msg -> Error msg)
  in
  go [] specs

let exn_message = function
  | Slif_store.Store.Store_error err -> Slif_store.Store.error_message err
  | Failure msg -> msg
  | Invalid_argument msg -> msg
  | e -> Printexc.to_string e

(* The response fields for one non-control, non-batch request. *)
let fields_of_request env req =
  let module J = Obs.Json in
  let with_target target profile f =
    match resolve env target profile with Error _ as e -> e | Ok (key, slif) -> f key slif
  in
  match req with
  | Protocol.Load { target = Protocol.Stored path; profile = None } -> (
      (* A v2 container answers from its mapped directory + META — the
         graph sections stay undecoded however large the file is, so
         the daemon can describe graphs far over its LRU (or
         --max-graph-mb) budget.  v1 cannot be decoded piecemeal and
         takes the ordinary resolve path below. *)
      match store_handle env path with
      | Error _ as e -> e
      | Ok (Lazy h) ->
          let m = Slif_store.Lazy_store.meta h in
          Ok
            [
              ("key", J.String (stored_key path));
              ("design", J.String m.Slif_store.Store.vm_design);
              ("nodes", J.Int m.Slif_store.Store.vm_nodes);
              ("channels", J.Int m.Slif_store.Store.vm_chans);
              ("lazy", J.Bool (not (Slif_store.Lazy_store.decoded h)));
              ( "decoded_bytes_estimate",
                J.Int (Slif_store.Lazy_store.decoded_bytes_estimate h) );
              ("file_bytes", J.Int (Slif_store.Lazy_store.file_size h));
            ]
      | Ok Eager_v1 ->
          with_target (Protocol.Stored path) None (fun key (slif : Slif.Types.t) ->
              Ok
                [
                  ("key", J.String key);
                  ("design", J.String slif.Slif.Types.design_name);
                  ("nodes", J.Int (Array.length slif.Slif.Types.nodes));
                  ("channels", J.Int (Array.length slif.Slif.Types.chans));
                  ("lazy", J.Bool false);
                ]))
  | Protocol.Load { target; profile } ->
      with_target target profile (fun key (slif : Slif.Types.t) ->
          Ok
            [
              ("key", J.String key);
              ("design", J.String slif.Slif.Types.design_name);
              ("nodes", J.Int (Array.length slif.Slif.Types.nodes));
              ("channels", J.Int (Array.length slif.Slif.Types.chans));
            ])
  | Protocol.Estimate { target; profile; bounds } ->
      with_target target profile (fun key slif ->
          let output = Ops.estimate_output ~bounds slif in
          Ok [ ("key", J.String key); ("output", J.String output) ])
  | Protocol.Partition { target; profile; algo; deadlines } ->
      with_target target profile (fun key slif ->
          match Ops.algo_of_string algo with
          | Error _ as e -> e
          | Ok algo -> (
              match deadlines_of deadlines with
              | Error _ as e -> e
              | Ok ds ->
                  let constraints = Ops.constraints_of_deadlines ds in
                  let output, _part = Ops.partition_output ~algo ~constraints slif in
                  Ok [ ("key", J.String key); ("output", J.String output) ]))
  | Protocol.Explore { target; profile; jobs; deadlines } ->
      with_target target profile (fun key slif ->
          match deadlines_of deadlines with
          | Error _ as e -> e
          | Ok ds ->
              let jobs =
                match jobs with Some j when j >= 1 -> j | Some _ | None -> env.x_cfg.jobs
              in
              let constraints = Ops.constraints_of_deadlines ds in
              let output = Ops.explore_output ~jobs ~constraints slif in
              Ok [ ("key", J.String key); ("output", J.String output) ])
  | Protocol.Batch _ | Protocol.Stats | Protocol.Health | Protocol.Metrics
  | Protocol.Dump | Protocol.Traces _ | Protocol.Shutdown ->
      assert false

(* A failing operation is the client's problem, not the daemon's:
   report and keep serving.  Returns the response object plus the
   message to charge to the error counter (handler-level errors —
   unknown spec, bad deadline — are answers, not daemon errors). *)
let exec_obj env req =
  match fields_of_request env req with
  | Ok fields -> (Protocol.ok_obj fields, None)
  | Error msg -> (Protocol.error_obj msg, None)
  | exception Typed_error (kind, msg) ->
      (* An admission-control rejection is an answer, not a daemon
         error: typed so clients can dispatch on "kind". *)
      (Protocol.error_obj ~kind msg, None)
  | exception e ->
      let msg = exn_message e in
      (Protocol.error_obj msg, Some msg)

(* One batch slot: its own span, its own timing, its own error
   isolation — a malformed or failing item never touches its
   neighbours. *)
let exec_item env item =
  let t0 = Obs.Clock.now_us () in
  match item with
  | Error msg ->
      ( Protocol.error_obj msg,
        {
          a_op = "malformed";
          a_wire = false;
          a_dur_us = Obs.Clock.now_us () -. t0;
          a_err = Some msg;
        } )
  | Ok req ->
      let op = Protocol.op_name req in
      let obj, err = Obs.Span.with_ ("server.request." ^ op) (fun () -> exec_obj env req) in
      (obj, { a_op = op; a_wire = false; a_dur_us = Obs.Clock.now_us () -. t0; a_err = err })

let execute env job =
  let module J = Obs.Json in
  let t0 = Obs.Clock.now_us () in
  match
    Protocol.request_of_line ~max_batch_items:env.x_cfg.max_batch_items job.jb_line
  with
  | Error msg ->
      Resp
        ( Protocol.error msg,
          [
            {
              a_op = "malformed";
              a_wire = true;
              a_dur_us = Obs.Clock.now_us () -. t0;
              a_err = Some msg;
            };
          ] )
  | Ok req when Protocol.is_control req -> Control req
  | Ok (Protocol.Batch items) ->
      Obs.Span.with_ "server.request.batch" @@ fun () ->
      let pairs = List.map (exec_item env) items in
      let resp =
        Protocol.ok
          [
            ("count", J.Int (List.length pairs));
            ("results", J.List (List.map fst pairs));
          ]
      in
      let wire =
        {
          a_op = "batch";
          a_wire = true;
          a_dur_us = Obs.Clock.now_us () -. t0;
          a_err = None;
        }
      in
      Resp (resp, wire :: List.map snd pairs)
  | Ok req ->
      let op = Protocol.op_name req in
      let obj, err = Obs.Span.with_ ("server.request." ^ op) (fun () -> exec_obj env req) in
      Resp
        ( J.to_string obj,
          [
            { a_op = op; a_wire = true; a_dur_us = Obs.Clock.now_us () -. t0; a_err = err };
          ] )

let response_is_ok response =
  String.length response >= 10 && String.sub response 0 10 = {|{"ok":true|}

(* --- Tail-based trace retention --------------------------------------------

   Every request writes its spans into the flight window for free; only
   when the completion turns out slow (over [--slow-ms]) or failing does
   the acceptor reconstruct the cross-domain span tree from the window
   and keep it — bounded in memory by [retain_traces], mirrored to
   [trace_dir] when set.  Fast requests never pay more than the ring
   writes. *)

(* One flight record as JSON, timestamps rebased to the tree's oldest
   record so a retained trace is self-contained. *)
let span_json t0 (r : Obs.Flight.record) =
  let module J = Obs.Json in
  J.Obj
    [
      ("name", J.String r.Obs.Flight.fr_name);
      ( "kind",
        J.String
          (match r.Obs.Flight.fr_kind with
          | Obs.Flight.Span -> "span"
          | Obs.Flight.Event -> "event") );
      ("dom", J.Int r.Obs.Flight.fr_dom);
      ("id", J.Int r.Obs.Flight.fr_id);
      ("parent", J.Int r.Obs.Flight.fr_parent);
      ("ts_ns", J.Int (r.Obs.Flight.fr_ts_ns - t0));
      ("dur_ns", J.Int r.Obs.Flight.fr_dur_ns);
    ]

let retained_summary rt =
  let module J = Obs.Json in
  J.Obj
    [
      ("id", J.String rt.rt_id);
      ("reason", J.String rt.rt_reason);
      ("op", J.String rt.rt_op);
      ("dur_us", J.Float rt.rt_dur_us);
      ("spans", J.Int rt.rt_spans);
    ]

let retain_trace st ~tid ~op ~dur_us ~reason =
  let module J = Obs.Json in
  match Obs.Flight.by_trace tid with
  | [] -> () (* the window already wrapped past this request *)
  | first :: _ as records ->
      let t0 = first.Obs.Flight.fr_ts_ns in
      let json =
        J.Obj
          [
            ("id", J.String tid);
            ("reason", J.String reason);
            ("op", J.String op);
            ("dur_us", J.Float dur_us);
            ("spans", J.List (List.map (span_json t0) records));
          ]
      in
      let file =
        match st.cfg.trace_dir with
        | None -> None
        | Some dir -> (
            (try if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
             with Unix.Unix_error _ -> ());
            let path = Filename.concat dir (tid ^ ".json") in
            try
              J.write_file path json;
              Some path
            with Sys_error _ -> None)
      in
      Queue.add
        {
          rt_id = tid;
          rt_reason = reason;
          rt_op = op;
          rt_dur_us = dur_us;
          rt_spans = List.length records;
          rt_json = json;
          rt_file = file;
        }
        st.retained;
      st.retained_total <- st.retained_total + 1;
      Obs.Counter.incr "server.flight.retained";
      while Queue.length st.retained > max 0 st.cfg.retain_traces do
        let old = Queue.pop st.retained in
        match old.rt_file with
        | Some p -> ( try Sys.remove p with Sys_error _ -> ())
        | None -> ()
      done

(* Retention decision for one drained completion: errors always keep
   their trace; slow requests keep theirs when [--slow-ms] is set. *)
let retain_reason st ~dur_us ~ok =
  if not ok then Some "error"
  else
    match st.cfg.slow_ms with
    | Some limit when dur_us /. 1e3 >= limit -> Some "slow"
    | Some _ | None -> None

(* The request event and the slow-request log, shared by workers (for
   executed requests) and the acceptor (for control ops). *)
let emit_request_event cfg tid op dur_us ok =
  Obs.Event.emit "server.request"
    ~fields:
      [
        ("op", Obs.Json.String op);
        ("dur_us", Obs.Json.Float dur_us);
        ("ok", Obs.Json.Bool ok);
      ];
  match cfg.slow_ms with
  | Some limit when dur_us /. 1e3 >= limit ->
      Obs.Counter.incr "server.slow_request";
      Obs.Event.emit ~level:Obs.Event.Warn "server.slow_request"
        ~fields:
          [
            ("op", Obs.Json.String op);
            ("dur_ms", Obs.Json.Float (dur_us /. 1e3));
            ("limit_ms", Obs.Json.Float limit);
          ];
      Printf.eprintf "slif serve: slow request %s op=%s %.1f ms (limit %.1f ms)\n%!" tid op
        (dur_us /. 1e3) limit
  | Some _ | None -> ()

let wake sh =
  try ignore (Unix.write_substring sh.wake_w "x" 0 1)
  with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE | Unix.EBADF), _, _) ->
    ()

(* One worker domain: park on the job queue, execute under the job's
   trace id, push the completion and poke the acceptor's self-pipe.
   Workers never touch acceptor-owned accounting — it rides back on the
   completion. *)
let worker_loop sh env w =
  let fam = worker_family () in
  let rec go () =
    Obs.Lockprof.lock sh.jq_lock;
    while Queue.is_empty sh.jq && not sh.jq_stop do
      Obs.Lockprof.wait sh.jq_lock sh.jq_cond
    done;
    if Queue.is_empty sh.jq then Obs.Lockprof.unlock sh.jq_lock
    else begin
      let job = Queue.pop sh.jq in
      Obs.Lockprof.unlock sh.jq_lock;
      let wait_us = Obs.Clock.now_us () -. job.jb_enq_us in
      (* The queue wait as a span on the worker's lane, parented under
         the root the acceptor minted — the first cross-domain edge of
         the request tree. *)
      if Obs.Flight.on () then begin
        let now_ns = Int64.to_int (Obs.Clock.now_ns ()) in
        Obs.Flight.record_span ~trace:job.jb_tid ~id:(Obs.Flight.next_id ())
          ~parent:job.jb_root ~name:"server.queue_wait" ~t0_ns:job.jb_enq_ns
          ~dur_ns:(now_ns - job.jb_enq_ns) ()
      end;
      let out =
        Obs.Registry.with_causality ~trace:job.jb_tid ~parent:job.jb_root @@ fun () ->
        let out =
          match execute env job with
          | out -> out
          | exception e ->
              (* [execute] guards each op; this is the last-ditch net
                 under the parser itself. *)
              let msg = exn_message e in
              Resp
                ( Protocol.error msg,
                  [ { a_op = "malformed"; a_wire = true; a_dur_us = 0.0; a_err = Some msg } ]
                )
        in
        (match out with
        | Resp (resp, { a_op; a_dur_us; _ } :: _) ->
            emit_request_event env.x_cfg job.jb_tid a_op a_dur_us (response_is_ok resp)
        | Resp (_, []) | Control _ -> ());
        out
      in
      Obs.Family.incr fam (string_of_int w);
      Obs.Lockprof.with_lock sh.cq_lock (fun () ->
          Queue.add
            {
              cp_cid = job.jb_cid;
              cp_seq = job.jb_seq;
              cp_tid = job.jb_tid;
              cp_root = job.jb_root;
              cp_enq_ns = job.jb_enq_ns;
              cp_worker = w;
              cp_wait_us = wait_us;
              cp_out = out;
            }
            sh.cq);
      wake sh;
      go ()
    end
  in
  go ()

(* --- Control ops (acceptor side) ------------------------------------------- *)

(* Stats, health, metrics and shutdown read (or flip) acceptor-owned
   accounting, so the acceptor renders them itself when the completion
   drains — single-threaded, no locks, and still at the request's wire
   position so per-connection ordering holds. *)
let render_control st ~tid ~root req =
  let module J = Obs.Json in
  Obs.Registry.with_causality ~trace:tid ~parent:root @@ fun () ->
  let t0 = Obs.Clock.now_us () in
  let op = Protocol.op_name req in
  let resp =
    Obs.Span.with_ ("server.request." ^ op) @@ fun () ->
    match req with
    | Protocol.Stats ->
        let per_op =
          Hashtbl.fold (fun op c acc -> (op, J.Int !c) :: acc) st.per_op []
          |> List.sort compare
        in
        Protocol.ok
          [
            ("uptime_s", J.Float (uptime_s st));
            ("requests", J.Int st.served);
            ("errors", J.Int st.errors);
            ("by_op", J.Obj per_op);
            ( "lru",
              J.Obj
                [
                  ("size", J.Int (Lru.Sharded.size st.lru));
                  ("capacity", J.Int (Lru.Sharded.capacity st.lru));
                  ("hits", J.Int (Lru.Sharded.hits st.lru));
                  ("misses", J.Int (Lru.Sharded.misses st.lru));
                  ( "keys",
                    J.List (List.map (fun k -> J.String k) (Lru.Sharded.keys st.lru)) );
                  ("shards", lru_shards_json st);
                ] );
            ("server", server_json st);
            ("latency_us", latency_json st);
            ("gc", gc_json ());
            ("pool", pool_json ());
            ("flight", flight_json st);
          ]
    | Protocol.Health ->
        Protocol.ok
          [
            ("uptime_s", J.Float (uptime_s st));
            ("inflight", J.Int st.inflight);
            ("requests", J.Int st.served);
            ("errors", J.Int st.errors);
            ("workers", J.Int st.cfg.workers);
            ("queue_depth", J.Int (queue_depth st));
            ( "lru",
              J.Obj
                [
                  ("size", J.Int (Lru.Sharded.size st.lru));
                  ("capacity", J.Int (Lru.Sharded.capacity st.lru));
                ] );
            ( "gc",
              (Obs.Gcprof.sample ();
               let c = Obs.Gcprof.counts () in
               J.Obj
                 [
                   ("minor_collections", J.Int c.minor_collections);
                   ("major_collections", J.Int c.major_collections);
                   ("promoted_words", J.Float c.promoted_words);
                   ("heap_words", J.Int (Obs.Gcprof.heap_words ()));
                 ]) );
            ("pool", pool_json ());
            ( "last_error",
              match st.last_error with Some msg -> J.String msg | None -> J.Null );
          ]
    | Protocol.Metrics -> Protocol.ok [ ("output", J.String (prometheus_text st)) ]
    | Protocol.Dump ->
        (* The whole flight window as a Chrome trace_event string —
           what [slif trace --export] saves. *)
        let chrome = J.to_string (Obs.Flight.to_chrome ()) in
        st.dump_bytes <- st.dump_bytes + String.length chrome;
        Obs.Counter.add "server.flight.dump_bytes" (String.length chrome);
        Protocol.ok
          [
            ("output", J.String chrome);
            ("records", J.Int (Obs.Flight.records_total ()));
            ("dropped", J.Int (Obs.Flight.dropped_total ()));
            ("flight", flight_json st);
          ]
    | Protocol.Traces None ->
        let summaries =
          Queue.fold (fun acc rt -> retained_summary rt :: acc) [] st.retained
          |> List.rev
        in
        Protocol.ok
          [
            ("count", J.Int (List.length summaries));
            ("retained_total", J.Int st.retained_total);
            ("traces", J.List summaries);
          ]
    | Protocol.Traces (Some id) -> (
        let found =
          Queue.fold (fun acc rt -> if rt.rt_id = id then Some rt else acc) None st.retained
        in
        match found with
        | Some rt -> Protocol.ok [ ("trace", rt.rt_json) ]
        | None ->
            Protocol.error ~kind:"trace_not_retained"
              (Printf.sprintf "trace %S is not retained (kept: last %d slow/error traces)"
                 id st.cfg.retain_traces))
    | Protocol.Shutdown ->
        st.stop <- true;
        Protocol.ok [ ("bye", J.Bool true) ]
    | Protocol.Load _ | Protocol.Estimate _ | Protocol.Partition _ | Protocol.Explore _
    | Protocol.Batch _ ->
        assert false
  in
  let dur_us = Obs.Clock.now_us () -. t0 in
  emit_request_event st.cfg tid op dur_us (response_is_ok resp);
  (resp, { a_op = op; a_wire = true; a_dur_us = dur_us; a_err = None })

(* --- Event loop (acceptor) -------------------------------------------------- *)

let listen_socket addr =
  match addr with
  | Unix_sock path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      if Sys.file_exists path then Unix.unlink path;
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd
  | Tcp port ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.listen fd 64;
      fd

let close_conn st conns c =
  (try Unix.close c.fd with Unix.Unix_error _ -> ());
  let before = List.length !conns in
  conns := List.filter (fun c' -> c'.fd != c.fd) !conns;
  st.inflight <- st.inflight - (before - List.length !conns)

let outq_bytes c = Buffer.length c.out - c.out_off

(* Backpressure: a reader this far behind is never catching up.  Stop
   queueing for it, answer with one protocol error, and close once that
   line flushes — the daemon's memory is not the client's buffer. *)
let overflow st c =
  c.dropping <- true;
  c.close_after_flush <- true;
  st.outq_overflows <- st.outq_overflows + 1;
  Obs.Counter.incr "server.outq_overflow";
  let msg =
    Printf.sprintf "slow reader: %d unread response bytes exceed the %d-byte cap; closing"
      (outq_bytes c) st.cfg.max_outq_bytes
  in
  note_error st msg;
  Buffer.add_string c.out (Protocol.error msg);
  Buffer.add_char c.out '\n'

(* Move consecutive completed responses into the write buffer.  Workers
   finish out of order; the wire never shows it. *)
let rec flush_ready st c =
  match Hashtbl.find_opt c.pending c.next_flush with
  | None -> ()
  | Some resp ->
      Hashtbl.remove c.pending c.next_flush;
      c.next_flush <- c.next_flush + 1;
      if c.dropping then st.dropped_responses <- st.dropped_responses + 1
      else begin
        Buffer.add_string c.out resp;
        Buffer.add_char c.out '\n';
        if outq_bytes c > st.cfg.max_outq_bytes then overflow st c
      end;
      flush_ready st c

(* An acceptor-generated response (line cap, connection limit) still
   takes a sequence number, so it interleaves correctly with whatever
   the connection already has in flight. *)
let local_response st c resp =
  let seq = c.next_seq in
  c.next_seq <- seq + 1;
  Hashtbl.replace c.pending seq resp;
  flush_ready st c

let dispatch st c line =
  st.next_req <- st.next_req + 1;
  let seq = c.next_seq in
  c.next_seq <- seq + 1;
  (* The trace id names the connection and the request; every span and
     event-log line emitted while serving it carries the id.  The root
     flight span id minted here is the causality anchor: the worker
     parents its queue-wait and execution spans under it, and the
     acceptor closes it when the completion drains. *)
  let tid = Printf.sprintf "c%d-r%d" c.cid st.next_req in
  let root = Obs.Flight.next_id () in
  let enq_ns = Int64.to_int (Obs.Clock.now_ns ()) in
  (* The accept marker: dispatch instant on the acceptor's lane. *)
  Obs.Flight.record_span ~trace:tid ~id:(Obs.Flight.next_id ()) ~parent:root
    ~name:"server.accept" ~t0_ns:enq_ns ~dur_ns:0 ();
  st.jobs_inflight <- st.jobs_inflight + 1;
  let job =
    { jb_cid = c.cid; jb_seq = seq; jb_tid = tid; jb_root = root; jb_line = line;
      jb_enq_us = Obs.Clock.now_us (); jb_enq_ns = enq_ns }
  in
  Obs.Lockprof.lock st.sh.jq_lock;
  Queue.add job st.sh.jq;
  Condition.signal st.sh.jq_cond;
  Obs.Lockprof.unlock st.sh.jq_lock

(* Frame complete lines out of the connection's read buffer and hand
   them to the workers. *)
let process_buffer st c =
  let continue = ref true in
  while !continue do
    let text = Buffer.contents c.rbuf in
    match String.index_opt text '\n' with
    | None ->
        if Buffer.length c.rbuf > st.cfg.max_line_bytes then begin
          (* Answer with a well-formed protocol error, then close once
             the response has flushed — never buffer without bound. *)
          note_error st "request line over the byte cap";
          Obs.Counter.incr "server.line_cap";
          Buffer.clear c.rbuf;
          local_response st c
            (Protocol.error
               (Printf.sprintf "request line exceeds the %d-byte cap"
                  st.cfg.max_line_bytes));
          c.close_after_flush <- true
        end;
        continue := false
    | Some nl ->
        let line = String.sub text 0 nl in
        Buffer.clear c.rbuf;
        Buffer.add_substring c.rbuf text (nl + 1) (String.length text - nl - 1);
        let line =
          (* Tolerate CRLF clients. *)
          if String.length line > 0 && line.[String.length line - 1] = '\r' then
            String.sub line 0 (String.length line - 1)
          else line
        in
        if String.trim line <> "" then dispatch st c line
  done

(* A connection may close only after everything it was owed has been
   written (or deliberately dropped). *)
let flushed_out c = outq_bytes c = 0 && (c.dropping || c.next_flush = c.next_seq)

let try_read st conns c =
  let chunk = Bytes.create 65536 in
  match Unix.read c.fd chunk 0 (Bytes.length chunk) with
  | 0 -> close_conn st conns c
  | n ->
      Buffer.add_subbytes c.rbuf chunk 0 n;
      process_buffer st c
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      close_conn st conns c
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()

let try_write st conns c =
  let len = outq_bytes c in
  if len = 0 then begin
    if c.close_after_flush && flushed_out c then close_conn st conns c
  end
  else
    match Unix.write_substring c.fd (Buffer.contents c.out) c.out_off len with
    | n ->
        c.out_off <- c.out_off + n;
        if c.out_off >= Buffer.length c.out then begin
          Buffer.clear c.out;
          c.out_off <- 0;
          if c.close_after_flush && flushed_out c then close_conn st conns c
        end
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        close_conn st conns c
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()

(* Pull every queued completion, account it, and slot its response at
   the connection's wire position. *)
let drain_completions st conns =
  let comps =
    Obs.Lockprof.with_lock st.sh.cq_lock (fun () ->
        let l = List.of_seq (Queue.to_seq st.sh.cq) in
        Queue.clear st.sh.cq;
        l)
  in
  List.iter
    (fun cp ->
      st.jobs_inflight <- st.jobs_inflight - 1;
      if cp.cp_worker >= 0 && cp.cp_worker < Array.length st.worker_served then
        st.worker_served.(cp.cp_worker) <- st.worker_served.(cp.cp_worker) + 1;
      Obs.Histogram.record st.queue_wait cp.cp_wait_us;
      let resp, op, dur_us =
        match cp.cp_out with
        | Resp (resp, accts) ->
            List.iter (account st) accts;
            let op, dur_us =
              match accts with a :: _ -> (a.a_op, a.a_dur_us) | [] -> ("?", 0.0)
            in
            (resp, op, dur_us)
        | Control req ->
            let resp, a = render_control st ~tid:cp.cp_tid ~root:cp.cp_root req in
            account st a;
            (resp, a.a_op, a.a_dur_us)
      in
      (match st.cfg.max_requests with
      | Some limit when st.served >= limit -> st.stop <- true
      | _ -> ());
      (* Mark the response write, close the request's root span
         (dispatch → response framed) into the flight window, then
         decide retention: slow or failing completions keep their whole
         cross-domain tree, fast ones paid only the ring writes. *)
      if Obs.Flight.on () then begin
        let now_ns = Int64.to_int (Obs.Clock.now_ns ()) in
        Obs.Flight.record_span ~trace:cp.cp_tid ~id:(Obs.Flight.next_id ())
          ~parent:cp.cp_root ~name:"server.respond" ~t0_ns:now_ns ~dur_ns:0 ();
        Obs.Flight.record_span ~trace:cp.cp_tid ~id:cp.cp_root ~parent:0
          ~name:"server.request" ~t0_ns:cp.cp_enq_ns ~dur_ns:(now_ns - cp.cp_enq_ns) ();
        match retain_reason st ~dur_us ~ok:(response_is_ok resp) with
        | Some reason -> retain_trace st ~tid:cp.cp_tid ~op ~dur_us ~reason
        | None -> ()
      end;
      match List.find_opt (fun c -> c.cid = cp.cp_cid) !conns with
      | Some c ->
          Hashtbl.replace c.pending cp.cp_seq resp;
          flush_ready st c
      | None ->
          (* The connection died while its request ran. *)
          st.dropped_responses <- st.dropped_responses + 1)
    comps

(* SIGUSR1 just raises a flag; the loop notices on its next wake-up (the
   signal interrupts a pending select with EINTR, so the dump is prompt)
   and writes the telemetry dump outside the handler. *)
let dump_requested = Atomic.make false

(* SIGQUIT is the black-box eject button: same flag discipline, but the
   loop answers by writing the whole flight window as a Chrome
   trace_event file and keeps serving. *)
let flight_dump_requested = Atomic.make false

(* Write the flight window to [slif-flight-<pid>.json] under the trace
   dir (or the system temp dir) — the SIGQUIT path, and the last act
   before an acceptor crash propagates.  Never raises: a black box that
   can take the process down is worse than no black box. *)
let write_flight_dump st ~reason =
  try
    let dir =
      match st.cfg.trace_dir with Some d -> d | None -> Filename.get_temp_dir_name ()
    in
    (try Unix.mkdir dir 0o755 with Unix.Unix_error _ | Sys_error _ -> ());
    let path =
      Filename.concat dir (Printf.sprintf "slif-flight-%d.json" (Unix.getpid ()))
    in
    let chrome = Obs.Flight.to_chrome () in
    let text = Obs.Json.to_string chrome in
    st.dump_bytes <- st.dump_bytes + String.length text;
    Obs.Counter.add "server.flight.dump_bytes" (String.length text);
    Obs.Json.write_file path chrome;
    Printf.eprintf "slif serve: flight dump (%s) -> %s (%d bytes)\n%!" reason path
      (String.length text)
  with _ -> ()

let run ?on_ready cfg =
  (* A client closing mid-response must not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let prev_usr1 =
    try
      Some
        (Sys.signal Sys.sigusr1
           (Sys.Signal_handle (fun _ -> Atomic.set dump_requested true)))
    with Invalid_argument _ | Sys_error _ -> None
  in
  let prev_quit =
    try
      Some
        (Sys.signal Sys.sigquit
           (Sys.Signal_handle (fun _ -> Atomic.set flight_dump_requested true)))
    with Invalid_argument _ | Sys_error _ -> None
  in
  let workers = max 1 cfg.workers in
  let cfg = { cfg with workers } in
  let listen_fd = listen_socket cfg.addr in
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let sh =
    {
      jq_lock = Obs.Lockprof.create ~category:Obs.Attribution.Queue_wait "server.jobq";
      jq_cond = Condition.create ();
      jq = Queue.create ();
      jq_stop = false;
      cq_lock = Obs.Lockprof.create "server.compq";
      cq = Queue.create ();
      wake_w;
    }
  in
  let st =
    {
      cfg;
      lru = Lru.Sharded.create ~shards:cfg.lru_shards ~capacity:cfg.lru_capacity ();
      sh;
      started_us = Obs.Clock.now_us ();
      served = 0;
      errors = 0;
      next_req = 0;
      inflight = 0;
      jobs_inflight = 0;
      outq_overflows = 0;
      dropped_responses = 0;
      rejected_conns = 0;
      worker_served = Array.make workers 0;
      queue_wait = Obs.Histogram.create ();
      last_error = None;
      per_op = Hashtbl.create 8;
      lat = Hashtbl.create 8;
      select_idle_us = 0.0;
      loop_iters = 0;
      retained = Queue.create ();
      retained_total = 0;
      dump_bytes = 0;
      stop = false;
    }
  in
  List.iter (fun op -> ignore (lat_for st op)) known_ops;
  let env =
    {
      x_cfg = cfg;
      x_lru = st.lru;
      x_stores = Lru.create ~capacity:store_handle_capacity;
      x_stores_lock = Mutex.create ();
    }
  in
  (* The worker fleet: an oversubscribed pool (condition-parked workers
     do not compute, so the hardware-domain cap does not apply) driven
     by one spawned domain whose [Pool.map] call carries every worker
     loop until shutdown. *)
  let pool = Slif_util.Pool.create ~name:"server" ~jobs:workers ~oversubscribe:true () in
  let driver =
    Domain.spawn (fun () ->
        ignore
          (Slif_util.Pool.map pool (fun w -> worker_loop sh env w)
             (List.init workers Fun.id)))
  in
  (match on_ready with Some f -> f (Unix.getsockname listen_fd) | None -> ());
  Obs.Event.emit "server.start"
    ~fields:
      [
        ( "addr",
          Obs.Json.String
            (match cfg.addr with Unix_sock p -> p | Tcp p -> Printf.sprintf "tcp:%d" p)
        );
        ("workers", Obs.Json.Int workers);
      ];
  let next_cid = ref 0 in
  let conns = ref [] in
  let pending_work () =
    st.jobs_inflight > 0
    || List.exists (fun c -> outq_bytes c > 0 || Hashtbl.length c.pending > 0) !conns
  in
  (try
     while (not st.stop) || pending_work () do
    if Atomic.get dump_requested then begin
      Atomic.set dump_requested false;
      dump_telemetry st stderr
    end;
    if Atomic.get flight_dump_requested then begin
      Atomic.set flight_dump_requested false;
      write_flight_dump st ~reason:"SIGQUIT"
    end;
    drain_completions st conns;
    let reads =
      wake_r
      ::
      (if st.stop then []
       else
         listen_fd
         :: List.filter_map
              (fun c -> if c.close_after_flush then None else Some c.fd)
              !conns)
    in
    let writes =
      List.filter_map
        (fun c -> if outq_bytes c > 0 || c.close_after_flush then Some c.fd else None)
        !conns
    in
    st.loop_iters <- st.loop_iters + 1;
    let sel_t0 = Obs.Clock.now_us () in
    let sel =
      match Unix.select reads writes [] 0.2 with
      | r -> Some r
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> None
    in
    (* Blocking in select with nothing ready is the acceptor's idle
       time: part of its wall, useful both for the metrics scrape and —
       when a profiled sweep runs in-process — for the attribution
       report. *)
    let sel_dur = Obs.Clock.now_us () -. sel_t0 in
    (match sel with
    | Some ([], [], _) | None ->
        st.select_idle_us <- st.select_idle_us +. sel_dur;
        Obs.Attribution.add Obs.Attribution.Idle sel_dur
    | Some _ -> ());
    match sel with
    | None -> ()
    | Some (readable, writable, _) ->
        if List.memq wake_r readable then begin
          let buf = Bytes.create 256 in
          let rec drain () =
            match Unix.read wake_r buf 0 (Bytes.length buf) with
            | n when n > 0 -> drain ()
            | _ -> ()
            | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
          in
          drain ()
        end;
        if List.memq listen_fd readable then begin
          match Unix.accept listen_fd with
          | fd, _ ->
              incr next_cid;
              st.inflight <- st.inflight + 1;
              let c =
                {
                  fd;
                  cid = !next_cid;
                  rbuf = Buffer.create 1024;
                  out = Buffer.create 1024;
                  out_off = 0;
                  close_after_flush = false;
                  dropping = false;
                  next_seq = 0;
                  next_flush = 0;
                  pending = Hashtbl.create 8;
                }
              in
              conns := c :: !conns;
              (match cfg.max_connections with
              | Some cap when st.inflight > cap ->
                  st.rejected_conns <- st.rejected_conns + 1;
                  Obs.Counter.incr "server.conn_rejected";
                  local_response st c
                    (Protocol.error
                       (Printf.sprintf "connection limit reached (%d)" cap));
                  c.close_after_flush <- true
              | _ -> ())
          | exception Unix.Unix_error _ -> ()
        end;
        List.iter
          (fun c -> if List.memq c.fd readable then try_read st conns c)
          (List.filter (fun c -> c.fd != listen_fd) !conns);
        List.iter (fun c -> if List.memq c.fd writable then try_write st conns c) !conns
     done
   with e ->
     (* The acceptor dying is exactly what the black box exists for:
        dump the window, then let the crash propagate. *)
     write_flight_dump st ~reason:(Printexc.to_string e);
     raise e);
  drain_completions st conns;
  (* Stop the workers: flag, wake everyone, let the pool wind down. *)
  Obs.Lockprof.with_lock sh.jq_lock (fun () ->
      sh.jq_stop <- true;
      Condition.broadcast sh.jq_cond);
  Domain.join driver;
  Slif_util.Pool.shutdown pool;
  Obs.Event.emit "server.stop"
    ~fields:
      [ ("requests", Obs.Json.Int st.served); ("errors", Obs.Json.Int st.errors) ];
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) !conns;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (try Unix.close wake_r with Unix.Unix_error _ -> ());
  (try Unix.close wake_w with Unix.Unix_error _ -> ());
  (match prev_usr1 with
  | Some behavior -> ( try Sys.set_signal Sys.sigusr1 behavior with Invalid_argument _ -> ())
  | None -> ());
  (match prev_quit with
  | Some behavior -> ( try Sys.set_signal Sys.sigquit behavior with Invalid_argument _ -> ())
  | None -> ());
  match cfg.addr with
  | Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
  | Tcp _ -> ()
