type addr =
  | Unix_sock of string
  | Tcp of int

type config = {
  addr : addr;
  cache_dir : string option;
  lru_capacity : int;
  jobs : int;
  max_requests : int option;
}

let default_config addr =
  { addr; cache_dir = None; lru_capacity = 8; jobs = 1; max_requests = None }

(* A line that long is not a query; cut the connection instead of
   buffering without bound. *)
let max_line_bytes = 64 * 1024 * 1024

type conn = {
  fd : Unix.file_descr;
  rbuf : Buffer.t;
  mutable outq : string;  (** bytes accepted but not yet written *)
}

type state = {
  cfg : config;
  lru : Slif.Types.t Lru.t;
  started_us : float;
  mutable served : int;
  mutable errors : int;
  per_op : (string, int ref) Hashtbl.t;
  mutable stop : bool;
}

let count_op st op =
  st.served <- st.served + 1;
  Slif_obs.Counter.incr ("server.request." ^ op);
  let cell =
    match Hashtbl.find_opt st.per_op op with
    | Some c -> c
    | None ->
        let c = ref 0 in
        Hashtbl.add st.per_op op c;
        c
  in
  incr cell

(* --- Target resolution ----------------------------------------------------- *)

let source_of_bundled name =
  match Specs.Registry.find name with
  | Some s -> Ok s.Specs.Registry.source
  | None ->
      Error
        (Printf.sprintf "unknown spec %S (expected one of: %s)" name
           (String.concat ", "
              (List.map (fun s -> s.Specs.Registry.spec_name) Specs.Registry.all)))

(* Resolve a request target to (content key, annotated SLIF), going
   through the LRU and, below it, the on-disk cache. *)
let resolve st target profile =
  match target with
  | Protocol.Key key -> (
      match Lru.find st.lru key with
      | Some slif ->
          Slif_obs.Counter.incr "server.lru_hit";
          Ok (key, slif)
      | None ->
          Slif_obs.Counter.incr "server.lru_miss";
          Error (Printf.sprintf "key %S is not resident (load it first)" key))
  | Protocol.Bundled _ | Protocol.Source _ -> (
      let source =
        match target with
        | Protocol.Bundled name -> source_of_bundled name
        | Protocol.Source text -> Ok text
        | Protocol.Key _ -> assert false
      in
      match source with
      | Error _ as e -> e
      | Ok source -> (
          let key = Slif_store.Cache.key ~source ?profile () in
          match Lru.find st.lru key with
          | Some slif ->
              Slif_obs.Counter.incr "server.lru_hit";
              Ok (key, slif)
          | None ->
              Slif_obs.Counter.incr "server.lru_miss";
              let slif =
                Ops.annotated ?cache_dir:st.cfg.cache_dir ?profile_text:profile source
              in
              Lru.add st.lru key slif;
              Ok (key, slif)))

(* --- Request handling ------------------------------------------------------ *)

let deadlines_of specs =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | spec :: rest -> (
        match Ops.parse_deadline spec with
        | Ok d -> go (d :: acc) rest
        | Error msg -> Error msg)
  in
  go [] specs

let handle_request st req =
  let module J = Slif_obs.Json in
  let with_target target profile f =
    match resolve st target profile with
    | Error msg -> Protocol.error msg
    | Ok (key, slif) -> f key slif
  in
  match req with
  | Protocol.Load { target; profile } ->
      with_target target profile (fun key (slif : Slif.Types.t) ->
          Protocol.ok
            [
              ("key", J.String key);
              ("design", J.String slif.Slif.Types.design_name);
              ("nodes", J.Int (Array.length slif.Slif.Types.nodes));
              ("channels", J.Int (Array.length slif.Slif.Types.chans));
            ])
  | Protocol.Estimate { target; profile; bounds } ->
      with_target target profile (fun key slif ->
          let output = Ops.estimate_output ~bounds slif in
          Protocol.ok [ ("key", J.String key); ("output", J.String output) ])
  | Protocol.Partition { target; profile; algo; deadlines } ->
      with_target target profile (fun key slif ->
          match Ops.algo_of_string algo with
          | Error msg -> Protocol.error msg
          | Ok algo -> (
              match deadlines_of deadlines with
              | Error msg -> Protocol.error msg
              | Ok ds ->
                  let constraints = Ops.constraints_of_deadlines ds in
                  let output, _part = Ops.partition_output ~algo ~constraints slif in
                  Protocol.ok [ ("key", J.String key); ("output", J.String output) ]))
  | Protocol.Explore { target; profile; jobs; deadlines } ->
      with_target target profile (fun key slif ->
          match deadlines_of deadlines with
          | Error msg -> Protocol.error msg
          | Ok ds ->
              let jobs =
                match jobs with Some j when j >= 1 -> j | Some _ | None -> st.cfg.jobs
              in
              let constraints = Ops.constraints_of_deadlines ds in
              let output = Ops.explore_output ~jobs ~constraints slif in
              Protocol.ok [ ("key", J.String key); ("output", J.String output) ])
  | Protocol.Stats ->
      let per_op =
        Hashtbl.fold (fun op c acc -> (op, J.Int !c) :: acc) st.per_op []
        |> List.sort compare
      in
      Protocol.ok
        [
          ("uptime_s", J.Float ((Slif_obs.Clock.now_us () -. st.started_us) /. 1e6));
          ("requests", J.Int st.served);
          ("errors", J.Int st.errors);
          ("by_op", J.Obj per_op);
          ( "lru",
            J.Obj
              [
                ("size", J.Int (Lru.size st.lru));
                ("capacity", J.Int (Lru.capacity st.lru));
                ("keys", J.List (List.map (fun k -> J.String k) (Lru.keys st.lru)));
              ] );
        ]
  | Protocol.Shutdown ->
      st.stop <- true;
      Protocol.ok [ ("bye", J.Bool true) ]

let handle_line st line =
  let response =
    match Protocol.request_of_line line with
    | Error msg ->
        st.errors <- st.errors + 1;
        count_op st "malformed";
        Slif_obs.Counter.incr "server.error";
        Protocol.error msg
    | Ok req ->
        let op = Protocol.op_name req in
        count_op st op;
        Slif_obs.Span.with_ ("server.request." ^ op) @@ fun () ->
        (match handle_request st req with
        | response -> response
        | exception e ->
            (* A failing operation is the client's problem, not the
               daemon's: report and keep serving. *)
            st.errors <- st.errors + 1;
            Slif_obs.Counter.incr "server.error";
            let msg =
              match e with
              | Slif_store.Store.Store_error err -> Slif_store.Store.error_message err
              | Failure msg -> msg
              | Invalid_argument msg -> msg
              | e -> Printexc.to_string e
            in
            Protocol.error msg)
  in
  (match st.cfg.max_requests with
  | Some limit when st.served >= limit -> st.stop <- true
  | _ -> ());
  response

(* --- Event loop ------------------------------------------------------------ *)

let listen_socket addr =
  match addr with
  | Unix_sock path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      if Sys.file_exists path then Unix.unlink path;
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd
  | Tcp port ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.listen fd 64;
      fd

let close_conn conns c =
  (try Unix.close c.fd with Unix.Unix_error _ -> ());
  conns := List.filter (fun c' -> c'.fd != c.fd) !conns

(* Drain complete lines out of the connection's read buffer. *)
let process_buffer st conns c =
  let continue = ref true in
  while !continue do
    let text = Buffer.contents c.rbuf in
    match String.index_opt text '\n' with
    | None ->
        if Buffer.length c.rbuf > max_line_bytes then close_conn conns c;
        continue := false
    | Some nl ->
        let line = String.sub text 0 nl in
        Buffer.clear c.rbuf;
        Buffer.add_substring c.rbuf text (nl + 1) (String.length text - nl - 1);
        let line =
          (* Tolerate CRLF clients. *)
          if String.length line > 0 && line.[String.length line - 1] = '\r' then
            String.sub line 0 (String.length line - 1)
          else line
        in
        if String.trim line <> "" then c.outq <- c.outq ^ handle_line st line ^ "\n";
        if st.stop then continue := false
  done

let try_read st conns c =
  let chunk = Bytes.create 65536 in
  match Unix.read c.fd chunk 0 (Bytes.length chunk) with
  | 0 -> close_conn conns c
  | n ->
      Buffer.add_subbytes c.rbuf chunk 0 n;
      process_buffer st conns c
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> close_conn conns c
  | exception Unix.Unix_error (Unix.EAGAIN, _, _) -> ()

let try_write conns c =
  match Unix.write_substring c.fd c.outq 0 (String.length c.outq) with
  | n -> c.outq <- String.sub c.outq n (String.length c.outq - n)
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> close_conn conns c
  | exception Unix.Unix_error (Unix.EAGAIN, _, _) -> ()

let run ?on_ready cfg =
  (* A client closing mid-response must not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listen_fd = listen_socket cfg.addr in
  (match on_ready with Some f -> f (Unix.getsockname listen_fd) | None -> ());
  let st =
    {
      cfg;
      lru = Lru.create ~capacity:cfg.lru_capacity;
      started_us = Slif_obs.Clock.now_us ();
      served = 0;
      errors = 0;
      per_op = Hashtbl.create 8;
      stop = false;
    }
  in
  let conns = ref [] in
  let pending () = List.exists (fun c -> c.outq <> "") !conns in
  while (not st.stop) || pending () do
    let reads = if st.stop then [] else listen_fd :: List.map (fun c -> c.fd) !conns in
    let writes = List.filter_map (fun c -> if c.outq <> "" then Some c.fd else None) !conns in
    match Unix.select reads writes [] 0.2 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, writable, _ ->
        if List.memq listen_fd readable then begin
          match Unix.accept listen_fd with
          | fd, _ -> conns := { fd; rbuf = Buffer.create 1024; outq = "" } :: !conns
          | exception Unix.Unix_error _ -> ()
        end;
        List.iter
          (fun c -> if List.memq c.fd readable then try_read st conns c)
          (List.filter (fun c -> c.fd != listen_fd) !conns);
        List.iter (fun c -> if List.memq c.fd writable then try_write conns c) !conns
  done;
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) !conns;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  match cfg.addr with
  | Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
  | Tcp _ -> ()
