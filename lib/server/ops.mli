(** The one shared implementation of the query operations.

    Both front ends — the one-shot CLI subcommands and the [slif serve]
    daemon — call these functions, so a server response is byte-identical
    to the corresponding CLI stdout by construction, not by parallel
    maintenance.  All [*_output] results end with a newline, exactly as
    the CLI prints them. *)

val parse_any : string -> Vhdl.Ast.design
(** A source whose first token is the word [spec] is SpecCharts-lite and
    is lowered to the VHDL subset; anything else parses as VHDL
    directly. *)

val annotated :
  ?cache_dir:string -> ?profile_text:string -> string -> Slif.Types.t
(** Parse + build + annotate — or, with [cache_dir], the load-or-build
    step through {!Slif_store.Cache} keyed on (source, profile, tech
    catalog).  [profile_text] is branch-probability file text
    ({!Flow.Profile.of_string} syntax).  Raises
    [Slif_store.Store.Store_error] on an unusable cache directory and
    [Failure] on a malformed profile. *)

val algo_of_string : string -> (Specsyn.Explore.algo, string) result
(** The CLI's algorithm vocabulary: random, greedy, gm/group-migration,
    sa/annealing, cluster/clustering. *)

val run_algo : Specsyn.Explore.algo -> Specsyn.Search.problem -> Specsyn.Search.solution

val parse_deadline : string -> (string * float, string) result
(** ["proc=us"] → [(proc, us)]. *)

val constraints_of_deadlines : (string * float) list -> Specsyn.Cost.constraints

val build_stats_output : Slif.Types.t -> string
(** The default [slif build] listing: stats line plus one row per node. *)

val estimate_output : ?bounds:bool -> Slif.Types.t -> string
(** The [slif estimate [--bounds]] report on the all-software seed
    partition of the processor+ASIC architecture. *)

val partition_output :
  algo:Specsyn.Explore.algo ->
  constraints:Specsyn.Cost.constraints ->
  Slif.Types.t ->
  string * Slif.Partition.t
(** The [slif partition] header + report, and the winning partition (the
    CLI's [--save] persists it). *)

val partition_report_for :
  constraints:Specsyn.Cost.constraints -> Slif.Types.t -> Slif.Partition.t -> string
(** Report for an externally supplied partition (the [--load] replay
    path); the partition must target the processor+ASIC application of
    this SLIF. *)

val apply_proc_asic : Slif.Types.t -> Slif.Types.t
(** The stock evaluation architecture every query runs on. *)

val explore_output :
  ?jobs:int ->
  ?chunk:int ->
  ?timings:bool ->
  constraints:Specsyn.Cost.constraints ->
  Slif.Types.t ->
  string
(** The [slif partition --explore] report.  [chunk] is the restart slice
    size forwarded to {!Specsyn.Explore.run} (default: the pool
    heuristic); the report is identical for every value.  [timings]
    defaults to false (the daemon needs schedule-independent responses;
    it equals the CLI run with [--no-timings]); the CLI passes true
    unless asked not to. *)
