(** Deterministic synthetic access-graph generator ([slif synth]).

    Real specifications top out at a few thousand nodes; the scalability
    claims (struct-of-arrays estimation, the lazily decodable store v2,
    the daemon's admission control) need graphs three orders of magnitude
    larger.  This module manufactures them: a fully annotated
    {!Slif.Types.t} — weights on every node, frequencies and bitwidths on
    every channel, an embedded proc+asic+ram allocation — whose every
    byte is a pure function of [(seed, params)].

    {2 Determinism contract}

    Node [i]'s kind, name, weights and the channels it {e generates} are
    drawn from the private stream [Prng.derive ~root:seed i] in a fixed
    order; channel ids come from a serial prefix sum over per-node
    channel {e counts} that are plain index arithmetic (no draws).  The
    parallel fill therefore writes disjoint, precomputed slots: the
    resulting graph — and any store file serialized from it — is
    byte-identical for every [jobs] value and every run.

    {2 Topology families}

    - {!Call_tree}: chains of [depth] calls hanging off the root — the
      estimator's recursive worst case (depth is clamped so the
      recursion cannot overflow the stack);
    - {!Fanout}: a [fanout]-ary call tree — wide, shallow, the CSR
      row-iteration stress case;
    - {!Shared_vars}: a shallow call tree whose behaviors hammer a pool
      of shared variables (a hot subset absorbs ~1/4 of accesses) — the
      dense-sharing / concurrency-tag case;
    - {!Mixed}: chains broken by periodic fanout reattachment plus the
      variable pool — all three shapes in one graph. *)

type family = Call_tree | Fanout | Shared_vars | Mixed

val all_families : family list
val family_to_string : family -> string
val family_of_string : string -> (family, string) result

type params = {
  seed : int;
  nodes : int;  (** total node count (behaviors + variables), >= 2 *)
  family : family;
  depth : int;  (** max call-chain length (clamped to {!max_depth}) *)
  fanout : int;  (** children per node in fanout shapes, >= 1 *)
  var_fraction : float;  (** fraction of nodes that are variables, in [0, 1] *)
  sharing : int;  (** variable accesses generated per sharing behavior *)
}

val max_depth : int
(** Hard clamp on [depth] (the estimator and cycle check recurse once
    per call level). *)

val default_params : ?seed:int -> ?nodes:int -> family -> params

val behaviors : params -> int
val variables : params -> int
val channels : params -> int
(** Exact object counts for the graph [generate] would build — pure
    arithmetic, no generation.  [behaviors p + variables p = p.nodes]. *)

val generate : ?pool:Slif_util.Pool.t -> params -> Slif.Types.t
(** Build the annotated graph.  With [pool] the per-node fill is chunked
    across the pool's domains; output is byte-identical with or without
    it (see the determinism contract).  Raises [Invalid_argument] on
    [nodes < 2], [fanout < 1], [sharing < 0] or a [var_fraction]
    outside [0, 1]. *)

val describe : Slif.Types.t -> string
(** One-line [name nodes=... chans=... behaviors=... vars=...] summary
    (what [slif synth] prints to stderr). *)
