(** The SLIF data structure (paper, Sections 2.2 and 2.5).

    A SLIF is the sextuple <BV, IO, C, P, M, I>: behavior and variable
    nodes, external ports, access channels, and the structural objects —
    processors, memories and buses — onto which the functional objects are
    partitioned.  Nodes and channels carry the preprocessed annotations
    that make estimation a matter of lookups:
    - behaviors/variables: one ict and one size weight per candidate
      technology ([ict_list], [size_list]);
    - channels: average / min / max access frequency, bits per access, and
      an optional concurrency tag;
    - buses: bitwidth, same-component and cross-component transfer times. *)

type tech_name = string
(** Identifier of a component technology from the {!Tech.Parts} catalog. *)

type node_kind =
  | Behavior of { is_process : bool }
  | Variable of { storage_bits : int; transfer_bits : int }

type node = {
  n_id : int;
  n_name : string;
  n_kind : node_kind;
  n_ict : (tech_name * float) list;   (* internal computation time, us *)
  n_size : (tech_name * float) list;  (* bytes / gates / words *)
}

type port_dir = Pin | Pout | Pinout

type port = { pt_id : int; pt_name : string; pt_bits : int; pt_dir : port_dir }

type dest = Dnode of int | Dport of int

type chan_kind = Call | Var_access | Port_access | Message

type channel = {
  c_id : int;
  c_src : int;                (* accessor behavior node *)
  c_dst : dest;
  c_accfreq : float;          (* accesses per start-to-finish run of src *)
  c_accfreq_min : float;
  c_accfreq_max : float;
  c_bits : int;               (* bits moved per access *)
  c_tag : int option;         (* same src + same tag => concurrent *)
  c_kind : chan_kind;
}

type proc_kind = Standard | Custom

type processor = {
  p_id : int;
  p_name : string;
  p_kind : proc_kind;
  p_tech : tech_name;
  p_size_constraint : float option;   (* max bytes (standard) or gates (custom) *)
  p_io_constraint : int option;       (* available pins *)
}

type memory = {
  m_id : int;
  m_name : string;
  m_tech : tech_name;
  m_size_constraint : float option;   (* max words *)
}

type bus = {
  b_id : int;
  b_name : string;
  b_bitwidth : int;
  b_ts_us : float;                                      (* default same-component time *)
  b_td_us : float;                                      (* default cross-component time *)
  b_capacity_mbps : float option;
  (* The "more extensive set of annotations" the paper mentions but leaves
     unexplored: a ts per component technology and a td per (unordered)
     technology pair.  Missing entries fall back to the defaults. *)
  b_ts_by_tech : (tech_name * float) list;
  b_td_by_pair : ((tech_name * tech_name) * float) list;
}

(** Same-component transfer time on [bus] for a component of technology
    [tech]. *)
let bus_ts bus ~tech =
  match List.assoc_opt tech bus.b_ts_by_tech with Some v -> v | None -> bus.b_ts_us

(** Cross-component transfer time on [bus] between technologies [a] and
    [b]; the pair is unordered. *)
let bus_td bus ~a ~b =
  match List.assoc_opt (a, b) bus.b_td_by_pair with
  | Some v -> v
  | None -> (
      match List.assoc_opt (b, a) bus.b_td_by_pair with
      | Some v -> v
      | None -> bus.b_td_us)

type t = {
  design_name : string;
  nodes : node array;
  ports : port array;
  chans : channel array;
  procs : processor array;
  mems : memory array;
  buses : bus array;
}

let is_behavior n = match n.n_kind with Behavior _ -> true | Variable _ -> false
let is_process n = match n.n_kind with Behavior { is_process } -> is_process | Variable _ -> false
let is_variable n = match n.n_kind with Variable _ -> true | Behavior _ -> false

let node_by_name t name =
  let found = ref None in
  Array.iter (fun n -> if n.n_name = name then found := Some n) t.nodes;
  !found

let port_by_name t name =
  let found = ref None in
  Array.iter (fun p -> if p.pt_name = name then found := Some p) t.ports;
  !found

(** Weight lookup: the paper's GetBvIct / GetBvSize, keyed by technology. *)
let ict_on n tech = List.assoc_opt tech n.n_ict
let size_on n tech = List.assoc_opt tech n.n_size

(** Structural equality of two SLIFs — the round-trip check for stable
    serializers ([Slif_store]).  Float fields compare with [=] (IEEE
    semantics), so a serializer that preserves bit patterns passes and
    one that loses precision fails; the only difference from bit
    equality is that it cannot distinguish [0.] from [-0.] and would
    reject NaN weights, neither of which the annotators produce. *)
let equal (a : t) (b : t) = a = b

let with_components t ~procs ~mems ~buses =
  { t with
    procs = Array.of_list procs;
    mems = Array.of_list mems;
    buses = Array.of_list buses;
  }
