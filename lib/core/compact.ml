type t = {
  n_nodes : int;
  n_chans : int;
  n_techs : int;
  node_is_var : Bytes.t;
  ict_off : int array;
  ict_tech : int array;
  ict_val : float array;
  size_off : int array;
  size_tech : int array;
  size_val : float array;
  chan_src : int array;
  chan_dst : int array;
  chan_bits : int array;
  chan_tag : int array;
  chan_kind : int array;
  chan_freq : float array;
  chan_freq_min : float array;
  chan_freq_max : float array;
  out_off : int array;
  out_chan : int array;
  in_off : int array;
  in_chan : int array;
  tech_names : string array;
  proc_tech : int array;
  mem_tech : int array;
  bus_width : int array;
  bus_ts : float array;
  bus_td : float array;
  bus_td_default : float array;
}

let kind_call = 0
let kind_var_access = 1
let kind_port_access = 2
let kind_message = 3

let kind_code = function
  | Types.Call -> kind_call
  | Types.Var_access -> kind_var_access
  | Types.Port_access -> kind_port_access
  | Types.Message -> kind_message

let make (s : Types.t) =
  let n_nodes = Array.length s.nodes in
  let n_chans = Array.length s.chans in
  (* Intern every technology name that can reach a lookup: component
     technologies, per-node weight keys and per-bus annotation keys.  A
     dense id per name lets the weight rows and bus matrices below replace
     string-keyed assoc scans with array reads. *)
  let tech_ix = Hashtbl.create 16 in
  let tech_rev = ref [] in
  let next_tech = ref 0 in
  let intern name =
    match Hashtbl.find_opt tech_ix name with
    | Some i -> i
    | None ->
        let i = !next_tech in
        Hashtbl.add tech_ix name i;
        tech_rev := name :: !tech_rev;
        incr next_tech;
        i
  in
  let proc_tech = Array.map (fun (p : Types.processor) -> intern p.p_tech) s.procs in
  let mem_tech = Array.map (fun (m : Types.memory) -> intern m.m_tech) s.mems in
  Array.iter
    (fun (b : Types.bus) ->
      List.iter (fun (tn, _) -> ignore (intern tn)) b.b_ts_by_tech;
      List.iter
        (fun ((a, bt), _) ->
          ignore (intern a);
          ignore (intern bt))
        b.b_td_by_pair)
    s.buses;
  Array.iter
    (fun (n : Types.node) ->
      List.iter (fun (tn, _) -> ignore (intern tn)) n.n_ict;
      List.iter (fun (tn, _) -> ignore (intern tn)) n.n_size)
    s.nodes;
  let n_techs = !next_tech in
  let tech_names = Array.of_list (List.rev !tech_rev) in
  (* Node kinds and weight rows. *)
  let node_is_var = Bytes.make n_nodes '\000' in
  let ict_off = Array.make (n_nodes + 1) 0 in
  let size_off = Array.make (n_nodes + 1) 0 in
  for i = 0 to n_nodes - 1 do
    let n = s.nodes.(i) in
    (match n.n_kind with
    | Types.Variable _ -> Bytes.unsafe_set node_is_var i '\001'
    | Types.Behavior _ -> ());
    ict_off.(i + 1) <- ict_off.(i) + List.length n.n_ict;
    size_off.(i + 1) <- size_off.(i) + List.length n.n_size
  done;
  let ict_tech = Array.make ict_off.(n_nodes) 0 in
  let ict_val = Array.make ict_off.(n_nodes) 0.0 in
  let size_tech = Array.make size_off.(n_nodes) 0 in
  let size_val = Array.make size_off.(n_nodes) 0.0 in
  for i = 0 to n_nodes - 1 do
    let n = s.nodes.(i) in
    let k = ref ict_off.(i) in
    List.iter
      (fun (tn, v) ->
        ict_tech.(!k) <- intern tn;
        ict_val.(!k) <- v;
        incr k)
      n.n_ict;
    let k = ref size_off.(i) in
    List.iter
      (fun (tn, v) ->
        size_tech.(!k) <- intern tn;
        size_val.(!k) <- v;
        incr k)
      n.n_size
  done;
  (* Channels as parallel arrays. *)
  let chan_src = Array.make n_chans 0 in
  let chan_dst = Array.make n_chans 0 in
  let chan_bits = Array.make n_chans 0 in
  let chan_tag = Array.make n_chans (-1) in
  let chan_kind = Array.make n_chans 0 in
  let chan_freq = Array.make n_chans 0.0 in
  let chan_freq_min = Array.make n_chans 0.0 in
  let chan_freq_max = Array.make n_chans 0.0 in
  for c = 0 to n_chans - 1 do
    let ch = s.chans.(c) in
    chan_src.(c) <- ch.c_src;
    chan_dst.(c) <-
      (match ch.c_dst with Types.Dnode d -> d | Types.Dport p -> -(p + 1));
    chan_bits.(c) <- ch.c_bits;
    chan_tag.(c) <- (match ch.c_tag with Some tag -> tag | None -> -1);
    chan_kind.(c) <- kind_code ch.c_kind;
    chan_freq.(c) <- ch.c_accfreq;
    chan_freq_min.(c) <- ch.c_accfreq_min;
    chan_freq_max.(c) <- ch.c_accfreq_max
  done;
  (* CSR adjacency: count degrees, prefix-sum, then fill forward so
     channel ids ascend within each row (the order of Graph's per-node
     lists, hence of every float summation downstream). *)
  let out_off = Array.make (n_nodes + 1) 0 in
  let in_off = Array.make (n_nodes + 1) 0 in
  for c = 0 to n_chans - 1 do
    out_off.(chan_src.(c) + 1) <- out_off.(chan_src.(c) + 1) + 1;
    let d = chan_dst.(c) in
    if d >= 0 then in_off.(d + 1) <- in_off.(d + 1) + 1
  done;
  for i = 1 to n_nodes do
    out_off.(i) <- out_off.(i) + out_off.(i - 1);
    in_off.(i) <- in_off.(i) + in_off.(i - 1)
  done;
  let out_chan = Array.make out_off.(n_nodes) 0 in
  let in_chan = Array.make in_off.(n_nodes) 0 in
  let out_cur = Array.copy out_off in
  let in_cur = Array.copy in_off in
  for c = 0 to n_chans - 1 do
    let src = chan_src.(c) in
    out_chan.(out_cur.(src)) <- c;
    out_cur.(src) <- out_cur.(src) + 1;
    let d = chan_dst.(c) in
    if d >= 0 then begin
      in_chan.(in_cur.(d)) <- c;
      in_cur.(d) <- in_cur.(d) + 1
    end
  done;
  (* Buses: resolve ts/td against the interned table once, including the
     default fallbacks, so the transfer-time inner loop is two array
     reads. *)
  let n_buses = Array.length s.buses in
  let bus_width = Array.map (fun (b : Types.bus) -> b.b_bitwidth) s.buses in
  let bus_td_default = Array.map (fun (b : Types.bus) -> b.b_td_us) s.buses in
  let bus_ts = Array.make (n_buses * n_techs) 0.0 in
  let bus_td = Array.make (n_buses * n_techs * n_techs) 0.0 in
  for b = 0 to n_buses - 1 do
    let bus = s.buses.(b) in
    for a = 0 to n_techs - 1 do
      bus_ts.((b * n_techs) + a) <- Types.bus_ts bus ~tech:tech_names.(a);
      for b2 = 0 to n_techs - 1 do
        bus_td.((((b * n_techs) + a) * n_techs) + b2) <-
          Types.bus_td bus ~a:tech_names.(a) ~b:tech_names.(b2)
      done
    done
  done;
  {
    n_nodes;
    n_chans;
    n_techs;
    node_is_var;
    ict_off;
    ict_tech;
    ict_val;
    size_off;
    size_tech;
    size_val;
    chan_src;
    chan_dst;
    chan_bits;
    chan_tag;
    chan_kind;
    chan_freq;
    chan_freq_min;
    chan_freq_max;
    out_off;
    out_chan;
    in_off;
    in_chan;
    tech_names;
    proc_tech;
    mem_tech;
    bus_width;
    bus_ts;
    bus_td;
    bus_td_default;
  }

let comp_tech_id t = function
  | Partition.Cproc p -> t.proc_tech.(p)
  | Partition.Cmem m -> t.mem_tech.(m)

let ict_ix t id tech =
  let stop = t.ict_off.(id + 1) in
  let rec go k = if k >= stop then -1 else if t.ict_tech.(k) = tech then k else go (k + 1) in
  go t.ict_off.(id)

let size_ix t id tech =
  let stop = t.size_off.(id + 1) in
  let rec go k =
    if k >= stop then -1 else if t.size_tech.(k) = tech then k else go (k + 1)
  in
  go t.size_off.(id)

let is_var t id = Bytes.unsafe_get t.node_is_var id <> '\000'
