module Ast = Vhdl.Ast
module Sem = Vhdl.Sem

(* Accumulated per-channel statistics before aggregation. *)
type site = {
  s_mult : Flow.Count.mult;
  s_par : int option;
  s_seq : int;
}

type proto_chan = {
  pc_src : int;
  pc_dst : Types.dest;
  pc_bits : int;
  pc_kind : Types.chan_kind;
  mutable pc_sites : site list;
}

let port_dir_of = function
  | Ast.In -> Types.Pin
  | Ast.Out -> Types.Pout
  | Ast.Inout -> Types.Pinout

let build ?(profile = Flow.Profile.empty) ?name sem =
  Slif_obs.Span.with_ "slif.build" @@ fun () ->
  let design = Sem.design sem in
  let design_name = Option.value name ~default:design.Ast.entity_name in
  (* --- Nodes: behaviors first (processes then subprograms), then
     architecture-level variables and signals. --- *)
  let node_names = Hashtbl.create 64 in
  let nodes = ref [] in
  let n_nodes = ref 0 in
  let add_node name kind =
    let id = !n_nodes in
    incr n_nodes;
    Hashtbl.replace node_names name id;
    nodes := (name, kind) :: !nodes
  in
  List.iter
    (fun (p : Ast.process) -> add_node p.proc_name (Types.Behavior { is_process = true }))
    design.processes;
  List.iter
    (fun (s : Ast.subprogram) -> add_node s.sub_name (Types.Behavior { is_process = false }))
    design.subprograms;
  List.iter
    (fun d ->
      match d with
      | Ast.Var_decl { v_name; v_type; _ } | Ast.Sig_decl { s_name = v_name; s_type = v_type } ->
          add_node v_name
            (Types.Variable
               {
                 storage_bits = Sem.storage_bits sem v_type;
                 transfer_bits = Sem.transfer_bits sem v_type;
               })
      | Ast.Const_decl _ | Ast.Type_decl _ -> ())
    design.arch_decls;
  (* --- Ports --- *)
  let ports = ref [] in
  let n_ports = ref 0 in
  let port_ids = Hashtbl.create 16 in
  let add_port name bits dir =
    let id = !n_ports in
    incr n_ports;
    Hashtbl.replace port_ids name id;
    ports :=
      { Types.pt_id = id; pt_name = name; pt_bits = bits; pt_dir = dir } :: !ports;
    id
  in
  List.iter
    (fun (p : Ast.port) ->
      ignore
        (add_port p.port_name (Sem.transfer_bits sem p.port_type) (port_dir_of p.port_mode)))
    design.ports;
  (* --- Message channel endpoints: collect receivers per abstract name --- *)
  let receivers = Hashtbl.create 8 in
  List.iter
    (fun (bname, _, body) ->
      List.iter
        (fun (e : Flow.Count.event) ->
          match e.access with
          | Flow.Count.Message_in ch ->
              let prev = Option.value (Hashtbl.find_opt receivers ch) ~default:[] in
              if not (List.mem bname prev) then Hashtbl.replace receivers ch (bname :: prev)
          | _ -> ())
        (Flow.Count.events ~profile ~behavior:bname body))
    (Ast.behaviors design);
  (* --- Channels --- *)
  let chans = Hashtbl.create 128 in
  let chan_order = ref [] in
  let record ~src ~dst ~bits ~kind site =
    let key = (src, dst, kind) in
    match Hashtbl.find_opt chans key with
    | Some pc -> pc.pc_sites <- site :: pc.pc_sites
    | None ->
        let pc = { pc_src = src; pc_dst = dst; pc_bits = bits; pc_kind = kind; pc_sites = [ site ] } in
        Hashtbl.replace chans key pc;
        chan_order := key :: !chan_order
  in
  let process_behavior (bname, _decls, body) =
    match Hashtbl.find_opt node_names bname with
    | None -> ()
    | Some src ->
        let env = Sem.env_of_behavior sem bname in
        let events = Flow.Count.events ~profile ~behavior:bname body in
        List.iter
          (fun (e : Flow.Count.event) ->
            let site = { s_mult = e.mult; s_par = e.par_group; s_seq = e.seq } in
            match e.access with
            | Flow.Count.Read n | Flow.Count.Write n -> (
                match Sem.lookup env n with
                | Some (Sem.Global_var ty) -> (
                    match Hashtbl.find_opt node_names n with
                    | Some dst ->
                        record ~src ~dst:(Types.Dnode dst)
                          ~bits:(Sem.transfer_bits sem ty) ~kind:Types.Var_access site
                    | None -> ())
                | Some (Sem.Port (_, ty)) -> (
                    match Hashtbl.find_opt port_ids n with
                    | Some pid ->
                        record ~src ~dst:(Types.Dport pid)
                          ~bits:(Sem.transfer_bits sem ty) ~kind:Types.Port_access site
                    | None -> ())
                | Some (Sem.Subprogram sub) ->
                    (* A one-argument call parsed as an index. *)
                    (match Hashtbl.find_opt node_names sub.Ast.sub_name with
                    | Some dst ->
                        record ~src ~dst:(Types.Dnode dst)
                          ~bits:(Sem.params_bits sem sub) ~kind:Types.Call site
                    | None -> ())
                | Some (Sem.Local_var _ | Sem.Param _ | Sem.Constant _) | None -> ())
            | Flow.Count.Call n -> (
                match Sem.lookup env n with
                | Some (Sem.Subprogram sub) -> (
                    match Hashtbl.find_opt node_names n with
                    | Some dst ->
                        record ~src ~dst:(Types.Dnode dst)
                          ~bits:(Sem.params_bits sem sub) ~kind:Types.Call site
                    | None -> ())
                | _ -> ())
            | Flow.Count.Message_out ch -> (
                (* Messages are encoded in a 32-bit word (DESIGN.md §5). *)
                let bits = 32 in
                match Hashtbl.find_opt receivers ch with
                | Some rs ->
                    List.iter
                      (fun r ->
                        if r <> bname then
                          match Hashtbl.find_opt node_names r with
                          | Some dst ->
                              record ~src ~dst:(Types.Dnode dst) ~bits ~kind:Types.Message site
                          | None -> ())
                      rs
                | None ->
                    let pid =
                      match Hashtbl.find_opt port_ids ch with
                      | Some pid -> pid
                      | None -> add_port ch bits Types.Pout
                    in
                    record ~src ~dst:(Types.Dport pid) ~bits ~kind:Types.Message site)
            | Flow.Count.Message_in _ -> ())
          events
  in
  List.iter process_behavior (Ast.behaviors design);
  (* --- Aggregate proto-channels --- *)
  let chan_list = List.rev !chan_order in
  let channels =
    List.mapi
      (fun i key ->
        let pc = Hashtbl.find chans key in
        let sites = List.rev pc.pc_sites in
        let sum f = List.fold_left (fun acc s -> acc +. f s.s_mult) 0.0 sites in
        let tag =
          (* A tag from a par block when all sites agree on one; otherwise a
             statement-level tag when all sites share a statement. *)
          match sites with
          | [] -> None
          | first :: rest -> (
              match first.s_par with
              | Some g when List.for_all (fun s -> s.s_par = Some g) rest -> Some g
              | _ ->
                  if List.for_all (fun s -> s.s_seq = first.s_seq) rest then
                    Some (1_000_000 + first.s_seq)
                  else None)
        in
        {
          Types.c_id = i;
          c_src = pc.pc_src;
          c_dst = pc.pc_dst;
          c_accfreq = sum (fun m -> m.Flow.Count.avg);
          c_accfreq_min = sum (fun m -> m.Flow.Count.mn);
          c_accfreq_max = sum (fun m -> m.Flow.Count.mx);
          c_bits = pc.pc_bits;
          c_tag = tag;
          c_kind = pc.pc_kind;
        })
      chan_list
  in
  let node_array =
    Array.of_list
      (List.rev_map
         (fun (name, kind) ->
           { Types.n_id = 0; n_name = name; n_kind = kind; n_ict = []; n_size = [] })
         !nodes)
  in
  Array.iteri (fun i n -> node_array.(i) <- { n with Types.n_id = i }) node_array;
  Slif_obs.Counter.add "build.nodes" (Array.length node_array);
  Slif_obs.Counter.add "build.channels" (List.length channels);
  {
    Types.design_name;
    nodes = node_array;
    ports = Array.of_list (List.rev !ports);
    chans = Array.of_list channels;
    procs = [||];
    mems = [||];
    buses = [||];
  }
