exception Recursive_specification of string

type mode = Avg | Min | Max

(* The execution-time memo is an unboxed generation-stamped pair of
   arrays: entry [i] is valid iff [memo_gen.(i) = gen].  Compared to the
   [float option array] it replaces, a memo store no longer allocates a
   [Some] box (the old layout produced one short-lived block per miss —
   tens of millions per sweep — which was the single biggest source of
   minor-GC pressure in parallel exploration), and [invalidate_all]
   becomes a generation bump instead of an O(nodes) fill.  The estimator
   is single-domain by design: in the share-nothing exploration stack
   each pool worker owns its own estimator, so no cell here is ever
   written by two domains.

   The traversal itself runs on the graph's [Compact] arrays: CSR
   adjacency rows instead of channel-record lists, interned technology
   ids instead of [List.assoc] on string keys, and pre-resolved per-bus
   ts/td matrices.  Iteration order (channel ids ascending per node) and
   every float operation match the record path exactly, so estimates are
   bitwise unchanged — only the constant factor per channel hop drops. *)
type t = {
  graph : Graph.t;
  cg : Compact.t;                   (* the graph's struct-of-arrays mirror *)
  mutable part : Partition.t;  (* mutable so a replica can [rebind] it *)
  mode : mode;
  concurrency : bool;
  recursion_depth : int;
  cyclic : bool;                    (* call cycle present: disable caching *)
  freqs : float array;              (* the mode's per-channel access frequency *)
  memo_val : float array;           (* exectime per node, valid per memo_gen *)
  memo_gen : int array;
  mutable gen : int;                (* current generation, always >= 1 *)
  visit : int array;                (* recursion depths; all zero between calls *)
  mutable synced_version : int;
  mutable queries : int;
  mutable hits : int;
  (* Resolved counter cells: the memo path bumps these tens of millions
     of times per profiled sweep, so it must not pay a hash lookup per
     bump.  Resolved on the creating domain — the domain that runs the
     estimator, in the per-domain replica architecture. *)
  c_exectime : Slif_obs.Counter.cell;
  c_hit : Slif_obs.Counter.cell;
  c_miss : Slif_obs.Counter.cell;
  c_inval_full : Slif_obs.Counter.cell;
  c_inval_incr : Slif_obs.Counter.cell;
}

let create ?(mode = Avg) ?(concurrency = false) ?(recursion_depth = 0) graph part =
  let s = Graph.slif graph in
  let n_nodes = Array.length s.Types.nodes in
  let cg = Graph.compact graph in
  {
    graph;
    cg;
    part;
    mode;
    concurrency;
    recursion_depth;
    cyclic = Graph.has_call_cycle graph;
    freqs =
      (match mode with
      | Avg -> cg.Compact.chan_freq
      | Min -> cg.Compact.chan_freq_min
      | Max -> cg.Compact.chan_freq_max);
    memo_val = Array.make n_nodes 0.0;
    memo_gen = Array.make n_nodes 0;
    gen = 1;
    visit = Array.make n_nodes 0;
    synced_version = Partition.version part;
    queries = 0;
    hits = 0;
    c_exectime = Slif_obs.Counter.cell "estimate.exectime_calls";
    c_hit = Slif_obs.Counter.cell "estimate.memo_hit";
    c_miss = Slif_obs.Counter.cell "estimate.memo_miss";
    c_inval_full = Slif_obs.Counter.cell "estimate.invalidate_full";
    c_inval_incr = Slif_obs.Counter.cell "estimate.invalidate_incremental";
  }

let graph t = t.graph
let partition t = t.part

let invalidate_all t =
  Slif_obs.Counter.bump t.c_inval_full;
  (* A generation bump orphans every memo entry at once; the arrays are
     left in place and entries rewrite lazily as queries return. *)
  t.gen <- t.gen + 1;
  t.synced_version <- Partition.version t.part

let invalidate_nodes t ids =
  Slif_obs.Counter.bump t.c_inval_incr;
  (* Generations start at 1, so 0 never matches [t.gen]. *)
  List.iter (fun id -> t.memo_gen.(id) <- 0) ids;
  t.synced_version <- Partition.version t.part

let note_node_moved t node = invalidate_nodes t (Graph.transitive_callers t.graph node)

let note_chan_moved t chan =
  let s = Graph.slif t.graph in
  if chan < 0 || chan >= Array.length s.Types.chans then
    invalid_arg "Estimate.note_chan_moved: no such channel";
  invalidate_nodes t (Graph.transitive_callers t.graph s.Types.chans.(chan).Types.c_src)

(* Re-point the estimator at another (total) partition of the same SLIF,
   dropping the whole memo.  This is how an engine replica re-engages a
   new candidate without reallocating any of the arrays above. *)
let rebind t part =
  t.part <- part;
  invalidate_all t

let sync t = if Partition.version t.part <> t.synced_version then invalidate_all t

let freq t (c : Types.channel) =
  match t.mode with
  | Avg -> c.c_accfreq
  | Min -> c.c_accfreq_min
  | Max -> c.c_accfreq_max

(* ict weight of node [id] on the technology (id) of its component; the
   slow path rebuilds the record-world error message. *)
let no_ict_weight t id tid =
  let s = Graph.slif t.graph in
  invalid_arg
    (Printf.sprintf "Estimate: node %s has no ict weight for technology %s"
       s.Types.nodes.(id).Types.n_name
       t.cg.Compact.tech_names.(tid))

let node_ict_tid t id tid =
  let ix = Compact.ict_ix t.cg id tid in
  if ix >= 0 then t.cg.Compact.ict_val.(ix) else no_ict_weight t id tid

let node_ict t id comp = node_ict_tid t id (Compact.comp_tech_id t.cg comp)

(* Transfer time of channel [c] (by id): [ceil(bits/width)] bus transfers
   at ts (same component) or td (cross-component / port).  The ts/td
   values come from the compact per-bus matrices, which [Compact.make]
   resolved with Types.bus_ts/bus_td — fallbacks included — so the
   result is the record path's to the bit. *)
let transfer_time_by_id t c =
  let cg = t.cg in
  let bus = Partition.bus_of_exn t.part c in
  let transfers = Slif_util.Bitmath.ceil_div cg.Compact.chan_bits.(c) cg.Compact.bus_width.(bus) in
  let src = cg.Compact.chan_src.(c) in
  let st = Compact.comp_tech_id cg (Partition.comp_of_exn t.part src) in
  let d = cg.Compact.chan_dst.(c) in
  let nt = cg.Compact.n_techs in
  let bdt =
    if d >= 0 && Partition.same_component_nodes t.part src d then
      cg.Compact.bus_ts.((bus * nt) + st)
    else if d < 0 then
      (* External pins have no technology: the default td applies. *)
      cg.Compact.bus_td_default.(bus)
    else
      let dt = Compact.comp_tech_id cg (Partition.comp_of_exn t.part d) in
      cg.Compact.bus_td.((((bus * nt) + st) * nt) + dt)
  in
  float_of_int transfers *. bdt

(* Communication cost of one channel access: bus transfer plus the accessed
   object's execution time (eq. 1).  [exec] recurses for callees. *)
let chan_cost_by_id t exec c =
  let cg = t.cg in
  let transfer = transfer_time_by_id t c in
  let d = cg.Compact.chan_dst.(c) in
  let dst_time =
    if d < 0 then 0.0
    else if Compact.is_var cg d then node_ict t d (Partition.comp_of_exn t.part d)
    else if
      (* Messages do not serialize the receiver (DESIGN.md §5). *)
      cg.Compact.chan_kind.(c) = Compact.kind_message
    then 0.0
    else exec d
  in
  t.freqs.(c) *. (transfer +. dst_time)

(* Group same-tag channels: within a tag group, accesses can overlap, so
   the group costs the max of its members (fork/join semantics).  The
   channels are the CSR out-row of [id], walked in ascending channel id
   order — the record path's list order. *)
let comm_time t exec id =
  let cg = t.cg in
  let lo = cg.Compact.out_off.(id) and hi = cg.Compact.out_off.(id + 1) in
  if not t.concurrency then begin
    let acc = ref 0.0 in
    for k = lo to hi - 1 do
      acc := !acc +. chan_cost_by_id t exec cg.Compact.out_chan.(k)
    done;
    !acc
  end
  else begin
    let tagged = Hashtbl.create 8 in
    let untagged = ref 0.0 in
    for k = lo to hi - 1 do
      let c = cg.Compact.out_chan.(k) in
      let cost = chan_cost_by_id t exec c in
      let tag = cg.Compact.chan_tag.(c) in
      if tag < 0 then untagged := !untagged +. cost
      else
        let prev = Option.value (Hashtbl.find_opt tagged tag) ~default:0.0 in
        Hashtbl.replace tagged tag (max prev cost)
    done;
    Hashtbl.fold (fun _ cost acc -> acc +. cost) tagged !untagged
  end

(* The recursion-depth scratch ([t.visit]) is zero outside a call; every
   recursive entry restores its slot on the way out, so the only way to
   leave residue is an exception mid-recursion — cleaned up here so a
   caught [Recursive_specification] cannot poison later queries. *)
let with_clean_visit t f =
  match f () with
  | v -> v
  | exception e ->
      Array.fill t.visit 0 (Array.length t.visit) 0;
      raise e

let exectime_us t id =
  sync t;
  Slif_obs.Counter.bump t.c_exectime;
  with_clean_visit t @@ fun () ->
  let rec exec id =
    t.queries <- t.queries + 1;
    if t.memo_gen.(id) = t.gen then begin
      t.hits <- t.hits + 1;
      Slif_obs.Counter.bump t.c_hit;
      t.memo_val.(id)
    end
    else begin
      Slif_obs.Counter.bump t.c_miss;
      let depth = t.visit.(id) in
      if depth > 0 && t.recursion_depth = 0 then
        raise
          (Recursive_specification (Graph.slif t.graph).Types.nodes.(id).Types.n_name);
      if depth > t.recursion_depth then 0.0
      else begin
        t.visit.(id) <- depth + 1;
        let comp = Partition.comp_of_exn t.part id in
        let ict = node_ict t id comp in
        let value = ict +. comm_time t exec id in
        t.visit.(id) <- depth;
        if not t.cyclic then begin
          t.memo_val.(id) <- value;
          t.memo_gen.(id) <- t.gen
        end;
        value
      end
    end
  in
  exec id

let transfer_time_us t (c : Types.channel) =
  sync t;
  transfer_time_by_id t c.c_id

let chan_bitrate_by_id t c =
  let cg = t.cg in
  let src_time = exectime_us t cg.Compact.chan_src.(c) in
  if src_time <= 0.0 then 0.0
  else t.freqs.(c) *. float_of_int cg.Compact.chan_bits.(c) /. src_time

let chan_bitrate_mbps t (c : Types.channel) =
  let src_time = exectime_us t c.c_src in
  if src_time <= 0.0 then 0.0
  else freq t c *. float_of_int c.c_bits /. src_time

let bus_bitrate_mbps t bus =
  List.fold_left
    (fun acc cid -> acc +. chan_bitrate_by_id t cid)
    0.0
    (Partition.chans_of_bus t.part bus)

let bus_bitrate_capacity_limited_mbps t bus =
  let s = Graph.slif t.graph in
  let raw = bus_bitrate_mbps t bus in
  match s.Types.buses.(bus).Types.b_capacity_mbps with
  | Some cap -> min raw cap
  | None -> raw

(* --- Capacity-aware (contended) execution time --------------------------
   Transfers on an over-committed bus slow by the demand/capacity ratio;
   slower transfers stretch execution times, which lowers demand, so the
   factors are iterated to a fixpoint. *)

let exectime_scaled t factors id =
  let s = Graph.slif t.graph in
  let cg = t.cg in
  with_clean_visit t @@ fun () ->
  let rec exec id =
    let depth = t.visit.(id) in
    if depth > 0 && t.recursion_depth = 0 then
      raise (Recursive_specification s.Types.nodes.(id).Types.n_name);
    if depth > t.recursion_depth then 0.0
    else begin
      t.visit.(id) <- depth + 1;
      let comp = Partition.comp_of_exn t.part id in
      let ict = node_ict t id comp in
      let comm = ref 0.0 in
      for k = cg.Compact.out_off.(id) to cg.Compact.out_off.(id + 1) - 1 do
        let c = cg.Compact.out_chan.(k) in
        let bus = Partition.bus_of_exn t.part c in
        let transfer = transfer_time_by_id t c *. factors.(bus) in
        let d = cg.Compact.chan_dst.(c) in
        let dst_time =
          if d < 0 then 0.0
          else if Compact.is_var cg d then node_ict t d (Partition.comp_of_exn t.part d)
          else if cg.Compact.chan_kind.(c) = Compact.kind_message then 0.0
          else exec d
        in
        comm := !comm +. (t.freqs.(c) *. (transfer +. dst_time))
      done;
      t.visit.(id) <- depth;
      ict +. !comm
    end
  in
  exec id

let bus_slowdowns ?(iterations = 8) t =
  Slif_obs.Span.with_ "estimate.bus_slowdowns" @@ fun () ->
  sync t;
  let s = Graph.slif t.graph in
  let cg = t.cg in
  let n_buses = Array.length s.Types.buses in
  let factors = Array.make n_buses 1.0 in
  for _ = 1 to iterations do
    (* Demand per bus under the current factors. *)
    let demand = Array.make n_buses 0.0 in
    for c = 0 to cg.Compact.n_chans - 1 do
      let bus = Partition.bus_of_exn t.part c in
      let src_time = exectime_scaled t factors cg.Compact.chan_src.(c) in
      if src_time > 0.0 then
        demand.(bus) <-
          demand.(bus) +. (t.freqs.(c) *. float_of_int cg.Compact.chan_bits.(c) /. src_time)
    done;
    Array.iteri
      (fun i (b : Types.bus) ->
        match b.Types.b_capacity_mbps with
        | Some cap when cap > 0.0 ->
            (* Scale toward demand = capacity; the factor may shrink again
               after an overshoot but never drops below 1 (an uncontended
               bus runs at full speed). *)
            factors.(i) <- Float.max 1.0 (factors.(i) *. (demand.(i) /. cap))
        | _ -> ())
      s.Types.buses
  done;
  factors

let exectime_contended_us ?iterations t id =
  let factors = bus_slowdowns ?iterations t in
  exectime_scaled t factors id

let no_size_weight t id tid =
  let s = Graph.slif t.graph in
  invalid_arg
    (Printf.sprintf "Estimate: node %s has no size weight for technology %s"
       s.Types.nodes.(id).Types.n_name
       t.cg.Compact.tech_names.(tid))

let size t comp =
  Slif_obs.Counter.incr "estimate.size_calls";
  let cg = t.cg in
  let tid = Compact.comp_tech_id cg comp in
  List.fold_left
    (fun acc id ->
      let ix = Compact.size_ix cg id tid in
      if ix >= 0 then acc +. cg.Compact.size_val.(ix) else no_size_weight t id tid)
    0.0
    (Partition.nodes_of_comp t.part comp)

let crosses t comp (c : Types.channel) =
  let src_in = Partition.comp_of t.part c.c_src = Some comp in
  let dst_in =
    match c.c_dst with
    | Types.Dport _ -> false
    | Types.Dnode d -> Partition.comp_of t.part d = Some comp
  in
  src_in <> dst_in

let cut_chans t comp =
  sync t;
  let s = Graph.slif t.graph in
  Array.to_list s.Types.chans |> List.filter (crosses t comp)

let io_pins t comp =
  Slif_obs.Counter.incr "estimate.io_pins_calls";
  let s = Graph.slif t.graph in
  let cut_buses =
    List.sort_uniq compare
      (List.map (fun (c : Types.channel) -> Partition.bus_of_exn t.part c.c_id)
         (cut_chans t comp))
  in
  List.fold_left (fun acc b -> acc + s.Types.buses.(b).Types.b_bitwidth) 0 cut_buses

let stats_queries t = t.queries
let stats_cache_hits t = t.hits
