exception Recursive_specification of string

type mode = Avg | Min | Max

type t = {
  graph : Graph.t;
  part : Partition.t;
  mode : mode;
  concurrency : bool;
  recursion_depth : int;
  cyclic : bool;                    (* call cycle present: disable caching *)
  cache : float option array;       (* exectime per node *)
  mutable synced_version : int;
  mutable queries : int;
  mutable hits : int;
}

let create ?(mode = Avg) ?(concurrency = false) ?(recursion_depth = 0) graph part =
  let s = Graph.slif graph in
  {
    graph;
    part;
    mode;
    concurrency;
    recursion_depth;
    cyclic = Graph.has_call_cycle graph;
    cache = Array.make (Array.length s.Types.nodes) None;
    synced_version = Partition.version part;
    queries = 0;
    hits = 0;
  }

let graph t = t.graph
let partition t = t.part

let invalidate_all t =
  Slif_obs.Counter.incr "estimate.invalidate_full";
  Array.fill t.cache 0 (Array.length t.cache) None;
  t.synced_version <- Partition.version t.part

let invalidate_nodes t ids =
  Slif_obs.Counter.incr "estimate.invalidate_incremental";
  List.iter (fun id -> t.cache.(id) <- None) ids;
  t.synced_version <- Partition.version t.part

let note_node_moved t node = invalidate_nodes t (Graph.transitive_callers t.graph node)

let note_chan_moved t chan =
  let s = Graph.slif t.graph in
  if chan < 0 || chan >= Array.length s.Types.chans then
    invalid_arg "Estimate.note_chan_moved: no such channel";
  invalidate_nodes t (Graph.transitive_callers t.graph s.Types.chans.(chan).Types.c_src)

let sync t = if Partition.version t.part <> t.synced_version then invalidate_all t

let freq t (c : Types.channel) =
  match t.mode with
  | Avg -> c.c_accfreq
  | Min -> c.c_accfreq_min
  | Max -> c.c_accfreq_max

let node_ict t id comp =
  let s = Graph.slif t.graph in
  let node = s.Types.nodes.(id) in
  let tech = Partition.comp_tech s comp in
  match Types.ict_on node tech with
  | Some v -> v
  | None ->
      invalid_arg
        (Printf.sprintf "Estimate: node %s has no ict weight for technology %s"
           node.Types.n_name tech)

let transfer_time_us_inner t (c : Types.channel) =
  let s = Graph.slif t.graph in
  let bus = s.Types.buses.(Partition.bus_of_exn t.part c.c_id) in
  let transfers = Slif_util.Bitmath.ceil_div c.c_bits bus.Types.b_bitwidth in
  let src_tech = Partition.comp_tech s (Partition.comp_of_exn t.part c.c_src) in
  let bdt =
    if Partition.same_component t.part c.c_src c.c_dst then
      Types.bus_ts bus ~tech:src_tech
    else
      match c.c_dst with
      | Types.Dport _ ->
          (* External pins have no technology: the default td applies. *)
          bus.Types.b_td_us
      | Types.Dnode d ->
          let dst_tech = Partition.comp_tech s (Partition.comp_of_exn t.part d) in
          Types.bus_td bus ~a:src_tech ~b:dst_tech
  in
  float_of_int transfers *. bdt

(* Communication cost of one channel access: bus transfer plus the accessed
   object's execution time (eq. 1).  [exec] recurses for callees. *)
let chan_cost t exec (c : Types.channel) =
  let s = Graph.slif t.graph in
  let transfer = transfer_time_us_inner t c in
  let dst_time =
    match c.c_dst with
    | Types.Dport _ -> 0.0
    | Types.Dnode d -> (
        let node = s.Types.nodes.(d) in
        match node.Types.n_kind with
        | Types.Variable _ -> node_ict t d (Partition.comp_of_exn t.part d)
        | Types.Behavior _ ->
            (* Messages do not serialize the receiver (DESIGN.md §5). *)
            if c.c_kind = Types.Message then 0.0 else exec d)
  in
  freq t c *. (transfer +. dst_time)

(* Group same-tag channels: within a tag group, accesses can overlap, so
   the group costs the max of its members (fork/join semantics). *)
let comm_time t exec chans =
  if not t.concurrency then List.fold_left (fun acc c -> acc +. chan_cost t exec c) 0.0 chans
  else begin
    let tagged = Hashtbl.create 8 in
    let untagged = ref 0.0 in
    List.iter
      (fun (c : Types.channel) ->
        let cost = chan_cost t exec c in
        match c.c_tag with
        | None -> untagged := !untagged +. cost
        | Some tag ->
            let prev = Option.value (Hashtbl.find_opt tagged tag) ~default:0.0 in
            Hashtbl.replace tagged tag (max prev cost))
      chans;
    Hashtbl.fold (fun _ cost acc -> acc +. cost) tagged !untagged
  end

let exectime_us t id =
  sync t;
  Slif_obs.Counter.incr "estimate.exectime_calls";
  let visiting = Hashtbl.create 8 in
  let rec exec id =
    t.queries <- t.queries + 1;
    match t.cache.(id) with
    | Some v ->
        t.hits <- t.hits + 1;
        Slif_obs.Counter.incr "estimate.memo_hit";
        v
    | None ->
        Slif_obs.Counter.incr "estimate.memo_miss";
        let depth = Option.value (Hashtbl.find_opt visiting id) ~default:0 in
        if depth > 0 && t.recursion_depth = 0 then
          raise
            (Recursive_specification (Graph.slif t.graph).Types.nodes.(id).Types.n_name);
        if depth > t.recursion_depth then 0.0
        else begin
          Hashtbl.replace visiting id (depth + 1);
          let comp = Partition.comp_of_exn t.part id in
          let ict = node_ict t id comp in
          let value = ict +. comm_time t exec (Graph.out_chans t.graph id) in
          Hashtbl.replace visiting id depth;
          if not t.cyclic then t.cache.(id) <- Some value;
          value
        end
  in
  exec id

let transfer_time_us t c =
  sync t;
  transfer_time_us_inner t c

let chan_bitrate_mbps t (c : Types.channel) =
  let src_time = exectime_us t c.c_src in
  if src_time <= 0.0 then 0.0
  else freq t c *. float_of_int c.c_bits /. src_time

let bus_bitrate_mbps t bus =
  let s = Graph.slif t.graph in
  List.fold_left
    (fun acc cid -> acc +. chan_bitrate_mbps t s.Types.chans.(cid))
    0.0
    (Partition.chans_of_bus t.part bus)

let bus_bitrate_capacity_limited_mbps t bus =
  let s = Graph.slif t.graph in
  let raw = bus_bitrate_mbps t bus in
  match s.Types.buses.(bus).Types.b_capacity_mbps with
  | Some cap -> min raw cap
  | None -> raw

(* --- Capacity-aware (contended) execution time --------------------------
   Transfers on an over-committed bus slow by the demand/capacity ratio;
   slower transfers stretch execution times, which lowers demand, so the
   factors are iterated to a fixpoint. *)

let exectime_scaled t factors id =
  let s = Graph.slif t.graph in
  let visiting = Hashtbl.create 8 in
  let rec exec id =
    let depth = Option.value (Hashtbl.find_opt visiting id) ~default:0 in
    if depth > 0 && t.recursion_depth = 0 then
      raise (Recursive_specification s.Types.nodes.(id).Types.n_name);
    if depth > t.recursion_depth then 0.0
    else begin
      Hashtbl.replace visiting id (depth + 1);
      let comp = Partition.comp_of_exn t.part id in
      let ict = node_ict t id comp in
      let cost (c : Types.channel) =
        let bus = Partition.bus_of_exn t.part c.Types.c_id in
        let transfer = transfer_time_us_inner t c *. factors.(bus) in
        let dst_time =
          match c.Types.c_dst with
          | Types.Dport _ -> 0.0
          | Types.Dnode d -> (
              let node = s.Types.nodes.(d) in
              match node.Types.n_kind with
              | Types.Variable _ -> node_ict t d (Partition.comp_of_exn t.part d)
              | Types.Behavior _ -> if c.Types.c_kind = Types.Message then 0.0 else exec d)
        in
        freq t c *. (transfer +. dst_time)
      in
      let comm =
        List.fold_left (fun acc c -> acc +. cost c) 0.0 (Graph.out_chans t.graph id)
      in
      Hashtbl.replace visiting id depth;
      ict +. comm
    end
  in
  exec id

let bus_slowdowns ?(iterations = 8) t =
  Slif_obs.Span.with_ "estimate.bus_slowdowns" @@ fun () ->
  sync t;
  let s = Graph.slif t.graph in
  let n_buses = Array.length s.Types.buses in
  let factors = Array.make n_buses 1.0 in
  for _ = 1 to iterations do
    (* Demand per bus under the current factors. *)
    let demand = Array.make n_buses 0.0 in
    Array.iter
      (fun (c : Types.channel) ->
        let bus = Partition.bus_of_exn t.part c.Types.c_id in
        let src_time = exectime_scaled t factors c.Types.c_src in
        if src_time > 0.0 then
          demand.(bus) <- demand.(bus) +. (freq t c *. float_of_int c.Types.c_bits /. src_time))
      s.Types.chans;
    Array.iteri
      (fun i (b : Types.bus) ->
        match b.Types.b_capacity_mbps with
        | Some cap when cap > 0.0 ->
            (* Scale toward demand = capacity; the factor may shrink again
               after an overshoot but never drops below 1 (an uncontended
               bus runs at full speed). *)
            factors.(i) <- Float.max 1.0 (factors.(i) *. (demand.(i) /. cap))
        | _ -> ())
      s.Types.buses
  done;
  factors

let exectime_contended_us ?iterations t id =
  let factors = bus_slowdowns ?iterations t in
  exectime_scaled t factors id

let size t comp =
  Slif_obs.Counter.incr "estimate.size_calls";
  let s = Graph.slif t.graph in
  let tech = Partition.comp_tech s comp in
  List.fold_left
    (fun acc id ->
      let node = s.Types.nodes.(id) in
      match Types.size_on node tech with
      | Some v -> acc +. v
      | None ->
          invalid_arg
            (Printf.sprintf "Estimate: node %s has no size weight for technology %s"
               node.Types.n_name tech))
    0.0
    (Partition.nodes_of_comp t.part comp)

let crosses t comp (c : Types.channel) =
  let src_in = Partition.comp_of t.part c.c_src = Some comp in
  let dst_in =
    match c.c_dst with
    | Types.Dport _ -> false
    | Types.Dnode d -> Partition.comp_of t.part d = Some comp
  in
  src_in <> dst_in

let cut_chans t comp =
  sync t;
  let s = Graph.slif t.graph in
  Array.to_list s.Types.chans |> List.filter (crosses t comp)

let io_pins t comp =
  Slif_obs.Counter.incr "estimate.io_pins_calls";
  let s = Graph.slif t.graph in
  let cut_buses =
    List.sort_uniq compare
      (List.map (fun (c : Types.channel) -> Partition.bus_of_exn t.part c.c_id)
         (cut_chans t comp))
  in
  List.fold_left (fun acc b -> acc + s.Types.buses.(b).Types.b_bitwidth) 0 cut_buses

let stats_queries t = t.queries
let stats_cache_hits t = t.hits
