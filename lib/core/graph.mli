(** Adjacency queries over a SLIF access graph.

    Precomputes per-node outgoing/incoming channel lists so that the
    estimators' GetBehChans is O(out-degree) (paper, Section 3.1). *)

type t

val make : Types.t -> t

val slif : t -> Types.t

val compact : t -> Compact.t
(** The struct-of-arrays mirror built by {!make} — the representation the
    estimation and engine hot paths index instead of the record lists. *)

val out_chans : t -> int -> Types.channel list
(** Channels whose source is the given behavior node — GetBehChans(b). *)

val in_chans : t -> int -> Types.channel list
(** Channels whose destination is the given node. *)

val callers : t -> int -> int list
(** Source nodes of incoming [Call] channels, deduplicated. *)

val callees : t -> int -> int list
(** Destination behavior nodes of outgoing [Call] channels, deduplicated. *)

val has_call_cycle : t -> bool
(** True when the call-channel subgraph has a cycle — recursion in the
    specification (the paper notes an AG cycle represents recursion). *)

val reachable_from : t -> int -> int list
(** All nodes reachable from the given node over any channel kind,
    including itself. *)

val transitive_callers : t -> int -> int list
(** All behaviors whose execution time depends on the given node: the
    node itself (when a behavior) plus everything upstream over call
    channels — the invalidation set for incremental estimation. *)
