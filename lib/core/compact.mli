(** Struct-of-arrays mirror of a SLIF access graph.

    Estimation at million-node scale cannot afford the record-and-list
    representation ([Types.channel list] per node): every hop chases a
    cons cell, a channel record and two assoc lists, none of which sit in
    the same cache line.  [Compact.t] flattens the whole graph into
    int-indexed unboxed arrays once, at [Graph.make] time:

    - channels as parallel arrays (source, destination code, bits, tag,
      kind, and the three access-frequency weights);
    - adjacency as CSR rows ([out_off]/[out_chan] and [in_off]/[in_chan]),
      channel ids ascending within a row — the exact order of the
      [Graph.out_chans] lists, so float summation order (and therefore
      every estimate, to the last bit) is unchanged;
    - technology names interned to dense ids, with per-node ict/size
      weight rows and per-bus transfer-time matrices pre-resolved against
      the interned table, replacing [List.assoc] on the innermost loop.

    The arrays are exposed directly (reads on the estimation hot path
    must not pay a function call per field); treat them as frozen after
    {!make}. *)

type t = {
  n_nodes : int;
  n_chans : int;
  n_techs : int;
  node_is_var : Bytes.t;  (** 1 byte per node: 1 for variables, 0 for behaviors *)
  (* Per-node weight rows: entries [off.(id) .. off.(id+1)-1] hold the
     node's (tech id, value) pairs in declaration order, so a forward
     scan matches [List.assoc_opt]'s first-hit semantics. *)
  ict_off : int array;
  ict_tech : int array;
  ict_val : float array;
  size_off : int array;
  size_tech : int array;
  size_val : float array;
  (* Channels, struct-of-arrays; index = channel id. *)
  chan_src : int array;
  chan_dst : int array;  (** destination node id, or [-(port+1)] for a port *)
  chan_bits : int array;
  chan_tag : int array;  (** concurrency tag, [-1] when untagged *)
  chan_kind : int array;  (** {!kind_call} … {!kind_message} *)
  chan_freq : float array;
  chan_freq_min : float array;
  chan_freq_max : float array;
  (* CSR adjacency; channel ids ascend within each row. *)
  out_off : int array;  (** length [n_nodes + 1] *)
  out_chan : int array;
  in_off : int array;
  in_chan : int array;
  (* Interned technologies. *)
  tech_names : string array;
  proc_tech : int array;  (** tech id per processor *)
  mem_tech : int array;  (** tech id per memory *)
  (* Buses, with ts/td resolved for every (bus, tech [pair]) up front. *)
  bus_width : int array;
  bus_ts : float array;  (** [(bus * n_techs) + tech] — {!Types.bus_ts} *)
  bus_td : float array;  (** [((bus * n_techs) + a) * n_techs + b] — {!Types.bus_td} *)
  bus_td_default : float array;  (** per bus: [b_td_us], for port destinations *)
}

val kind_call : int
val kind_var_access : int
val kind_port_access : int
val kind_message : int

val make : Types.t -> t
(** One O(nodes + channels + weight entries) pass; no further allocation
    is needed to answer adjacency or weight queries. *)

val comp_tech_id : t -> Partition.comp -> int
(** Interned technology of a component (always present: every processor
    and memory technology is interned by {!make}). *)

val ict_ix : t -> int -> int -> int
(** [ict_ix t node tech] is the index into [ict_val] of the node's ict
    weight on [tech], or [-1] when the node carries none. *)

val size_ix : t -> int -> int -> int
(** Same for the size weight row. *)

val is_var : t -> int -> bool
