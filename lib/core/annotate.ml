module Ast = Vhdl.Ast
module Sem = Vhdl.Sem

let local_storage_bits sem bname =
  let design = Sem.design sem in
  let decls =
    let proc = List.find_opt (fun p -> p.Ast.proc_name = bname) design.Ast.processes in
    let sub = List.find_opt (fun s -> s.Ast.sub_name = bname) design.Ast.subprograms in
    match (proc, sub) with
    | Some p, _ -> p.Ast.proc_decls
    | None, Some s -> s.Ast.sub_decls
    | None, None -> []
  in
  List.fold_left
    (fun acc d ->
      match d with
      | Ast.Var_decl { v_type; _ } -> acc + Sem.storage_bits sem v_type
      | Ast.Sig_decl _ | Ast.Const_decl _ | Ast.Type_decl _ -> acc)
    0 decls

let behavior_body sem bname =
  let design = Sem.design sem in
  match List.find_opt (fun p -> p.Ast.proc_name = bname) design.Ast.processes with
  | Some p -> Some p.Ast.proc_body
  | None -> (
      match List.find_opt (fun s -> s.Ast.sub_name = bname) design.Ast.subprograms with
      | Some s -> Some s.Ast.sub_body
      | None -> None)

let behavior_weights ~profile ~techs sem bname =
  match behavior_body sem bname with
  | None -> ([], [])
  | Some body ->
      let env = Sem.env_of_behavior sem bname in
      let is_local name =
        match Sem.lookup env name with
        | Some (Sem.Local_var _ | Sem.Param _ | Sem.Constant _) -> true
        | Some (Sem.Global_var _ | Sem.Port _ | Sem.Subprogram _) -> false
        | None -> true (* unknown names (e.g. loop indices) stay internal *)
      in
      let is_sub name = Sem.is_function_name sem name in
      let census = Tech.Census.of_behavior ~profile ~is_local ~is_sub ~name:bname body in
      let local_bits = local_storage_bits sem bname in
      List.fold_left
        (fun (icts, sizes) tech ->
          match tech with
          | Tech.Parts.Proc p ->
              let code = Tech.Proc_model.behavior_size_bytes p census in
              let data =
                Tech.Proc_model.variable_size_bytes p ~storage_bits:(max 1 local_bits)
              in
              ( (p.Tech.Proc_model.name, Tech.Proc_model.behavior_ict_us p census) :: icts,
                (p.Tech.Proc_model.name, code +. data) :: sizes )
          | Tech.Parts.Asic a ->
              ( (a.Tech.Asic_model.name, Tech.Asic_model.behavior_ict_us a census) :: icts,
                (a.Tech.Asic_model.name, Tech.Asic_model.behavior_size_gates a census ~local_bits)
                :: sizes )
          | Tech.Parts.Mem _ -> (icts, sizes))
        ([], []) techs

let variable_weights ~techs ~storage_bits =
  List.fold_left
    (fun (icts, sizes) tech ->
      match tech with
      | Tech.Parts.Proc p ->
          ( (p.Tech.Proc_model.name, p.Tech.Proc_model.var_access_us) :: icts,
            (p.Tech.Proc_model.name, Tech.Proc_model.variable_size_bytes p ~storage_bits)
            :: sizes )
      | Tech.Parts.Asic a ->
          ( (a.Tech.Asic_model.name, a.Tech.Asic_model.var_access_us) :: icts,
            (a.Tech.Asic_model.name, Tech.Asic_model.variable_size_gates a ~storage_bits)
            :: sizes )
      | Tech.Parts.Mem m ->
          ( (m.Tech.Mem_model.name, Tech.Mem_model.variable_access_us m) :: icts,
            (m.Tech.Mem_model.name, Tech.Mem_model.variable_size_words m ~storage_bits)
            :: sizes ))
    ([], []) techs

let run ?(profile = Flow.Profile.empty) ~techs sem (slif : Types.t) =
  Slif_obs.Span.with_ "slif.annotate"
    ~args:[ ("design", slif.Types.design_name) ]
  @@ fun () ->
  let nodes =
    Array.map
      (fun (node : Types.node) ->
        let icts, sizes =
          match node.n_kind with
          | Types.Behavior _ -> behavior_weights ~profile ~techs sem node.n_name
          | Types.Variable { storage_bits; _ } -> variable_weights ~techs ~storage_bits
        in
        { node with Types.n_ict = List.rev icts; n_size = List.rev sizes })
      slif.nodes
  in
  { slif with Types.nodes }
