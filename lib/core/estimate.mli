(** Estimation of quality metrics from SLIF annotations (paper, Section 3).

    All estimators work purely from the preprocessed annotations and the
    current partition — no re-compilation or re-synthesis — which is the
    paper's central claim.  A stateful estimator memoizes execution times
    and invalidates on partition version changes; {!create_incremental}
    additionally invalidates only the transitive accessors of moved nodes.

    Deviations from the paper's equations are documented in DESIGN.md §5:
    message channels contribute transfer time but not the receiver's
    execution time (the receiver runs concurrently), and recursion (an AG
    call cycle) raises {!Recursive_specification} unless an unrolling
    depth is supplied. *)

exception Recursive_specification of string
(** Raised when execution-time estimation meets a call cycle and no
    [recursion_depth] was given; carries the cycling node's name. *)

type mode = Avg | Min | Max
(** Which access-frequency weight drives the estimate (Section 2.4.1's
    average / minimum / maximum accesses). *)

type t

val create :
  ?mode:mode ->
  ?concurrency:bool ->
  ?recursion_depth:int ->
  Graph.t ->
  Partition.t ->
  t
(** [concurrency] (default false) makes same-tag channels of one behavior
    cost the maximum instead of the sum of their communication times —
    the fork/join extension of Section 2.4.1.  [recursion_depth] unrolls
    call cycles that many times instead of failing. *)

val graph : t -> Graph.t
val partition : t -> Partition.t

val exectime_us : t -> int -> float
(** Equation 1: ict on the node's component plus communication time over
    all outgoing channels.  For variable destinations the accessed
    object's "execution time" is its storage access time; external ports
    contribute transfer time only.  Raises [Invalid_argument] when the
    partition is partial, {!Recursive_specification} on call cycles. *)

val transfer_time_us : t -> Types.channel -> float
(** Bus data-transfer time for one access: [ceil(bits / bitwidth)]
    transfers at [ts] (same component) or [td] (different components). *)

val chan_bitrate_mbps : t -> Types.channel -> float
(** Equation 2: bits per access x accesses per execution / execution time
    of the source.  (bits/us = Mbit/s.) *)

val chan_bitrate_by_id : t -> int -> float
(** {!chan_bitrate_mbps} by channel id, reading the compact arrays —
    what the engine's delta-refresh loop calls so it never materializes
    channel records. *)

val bus_bitrate_mbps : t -> int -> float
(** Equation 3: sum of the bus's channel bitrates. *)

val bus_bitrate_capacity_limited_mbps : t -> int -> float
(** Bitrate clipped to the bus's capacity when one is declared — the
    "more sophisticated" estimate the paper defers to reference [2]. *)

val bus_slowdowns : ?iterations:int -> t -> float array
(** Per-bus contention factors (>= 1): when the aggregate demand on a bus
    exceeds its declared capacity, its transfers slow by the excess ratio,
    which stretches execution times and in turn lowers demand; the factors
    are iterated to a fixpoint (default 8 rounds).  Buses without a
    capacity keep factor 1. *)

val exectime_contended_us : ?iterations:int -> t -> int -> float
(** Equation 1 with each channel's transfer time scaled by its bus's
    contention factor — the capacity-aware execution time.  Channel
    accesses are treated as sequential here (concurrency tags are a
    property of the uncontended estimate). *)

val size : t -> Partition.comp -> float
(** Equations 4-5: sum of member size weights on the component's
    technology (bytes for standard processors, gates for custom ones,
    words for memories). *)

val io_pins : t -> Partition.comp -> int
(** Equation 6: total bitwidth of buses carrying at least one channel that
    crosses the component's boundary. *)

val cut_chans : t -> Partition.comp -> Types.channel list
(** The channels crossing the component boundary (CutChans). *)

(* --- Cache control ----------------------------------------------------- *)

val invalidate_all : t -> unit

val note_node_moved : t -> int -> unit
(** Incremental invalidation: drop cached execution times of the moved
    node's transitive accessors only (ablation A1). *)

val note_chan_moved : t -> int -> unit
(** Incremental invalidation after a channel moved to another bus: only
    the channel's source node and its transitive accessors see a changed
    transfer time, so only their memo entries are dropped — the
    fine-grained replacement for {!invalidate_all} on channel moves.
    Raises [Invalid_argument] when the channel id is out of range. *)

val invalidate_nodes : t -> int list -> unit
(** Drop the memo entries of exactly the given nodes and mark the
    estimator as synced with the partition's current version.  For
    callers (the move engine) that already computed the invalidation set;
    {!note_node_moved} and {!note_chan_moved} are the curated wrappers. *)

val rebind : t -> Partition.t -> unit
(** Re-point the estimator at another partition of the same SLIF and
    drop the whole memo (an O(1) generation bump — no arrays are
    reallocated or cleared).  This is what lets a per-domain engine
    replica evaluate a fresh candidate without rebuilding its estimator;
    the caller is responsible for the partition really belonging to the
    same specification. *)

val stats_queries : t -> int
val stats_cache_hits : t -> int
