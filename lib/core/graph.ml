(* The compact struct-of-arrays mirror is the primary representation:
   every adjacency query below reads CSR rows.  The per-node channel
   *record* lists survive for callers that want them ([out_chans]), but
   are materialized lazily — a million-node graph whose consumers stay on
   the compact arrays never pays for the cons cells. *)
type t = {
  slif : Types.t;
  compact : Compact.t;
  out_ : Types.channel list array Lazy.t;   (* by source node id *)
  in_ : Types.channel list array Lazy.t;    (* by destination node id *)
}

let make (s : Types.t) =
  let n = Array.length s.nodes in
  let lists () =
    let out_ = Array.make n [] in
    let in_ = Array.make n [] in
    (* Iterate in reverse so the per-node lists end up in channel order. *)
    for i = Array.length s.chans - 1 downto 0 do
      let c = s.chans.(i) in
      out_.(c.c_src) <- c :: out_.(c.c_src);
      match c.c_dst with
      | Types.Dnode d -> in_.(d) <- c :: in_.(d)
      | Types.Dport _ -> ()
    done;
    (out_, in_)
  in
  let adj = Lazy.from_fun lists in
  {
    slif = s;
    compact = Compact.make s;
    out_ = lazy (fst (Lazy.force adj));
    in_ = lazy (snd (Lazy.force adj));
  }

let slif t = t.slif
let compact t = t.compact

let out_chans t id = (Lazy.force t.out_).(id)
let in_chans t id = (Lazy.force t.in_).(id)

let dedup ids = List.sort_uniq compare ids

let callers t id =
  let cg = t.compact in
  let acc = ref [] in
  for k = cg.Compact.in_off.(id) to cg.Compact.in_off.(id + 1) - 1 do
    let c = cg.Compact.in_chan.(k) in
    if cg.Compact.chan_kind.(c) = Compact.kind_call then
      acc := cg.Compact.chan_src.(c) :: !acc
  done;
  dedup !acc

let callees t id =
  let cg = t.compact in
  let acc = ref [] in
  for k = cg.Compact.out_off.(id) to cg.Compact.out_off.(id + 1) - 1 do
    let c = cg.Compact.out_chan.(k) in
    if cg.Compact.chan_kind.(c) = Compact.kind_call && cg.Compact.chan_dst.(c) >= 0 then
      acc := cg.Compact.chan_dst.(c) :: !acc
  done;
  dedup !acc

let has_call_cycle t =
  let n = Array.length t.slif.nodes in
  (* 0 = unvisited, 1 = on stack, 2 = done *)
  let state = Array.make n 0 in
  let rec visit id =
    if state.(id) = 1 then true
    else if state.(id) = 2 then false
    else begin
      state.(id) <- 1;
      let cyclic = List.exists visit (callees t id) in
      state.(id) <- 2;
      cyclic
    end
  in
  let rec any id = id < n && (visit id || any (id + 1)) in
  any 0

let bfs ~next start =
  let seen = Hashtbl.create 16 in
  let rec loop acc = function
    | [] -> List.rev acc
    | id :: rest ->
        if Hashtbl.mem seen id then loop acc rest
        else begin
          Hashtbl.add seen id ();
          loop (id :: acc) (next id @ rest)
        end
  in
  loop [] [ start ]

let reachable_from t id =
  let cg = t.compact in
  bfs id ~next:(fun id ->
      let acc = ref [] in
      for k = cg.Compact.out_off.(id + 1) - 1 downto cg.Compact.out_off.(id) do
        let c = cg.Compact.out_chan.(k) in
        if cg.Compact.chan_dst.(c) >= 0 then acc := cg.Compact.chan_dst.(c) :: !acc
      done;
      !acc)

let transitive_callers t id =
  (* Any behavior with a channel to [id] depends on its mapping; so do that
     behavior's transitive accessors. *)
  let cg = t.compact in
  bfs id ~next:(fun id ->
      let acc = ref [] in
      for k = cg.Compact.in_off.(id) to cg.Compact.in_off.(id + 1) - 1 do
        acc := cg.Compact.chan_src.(cg.Compact.in_chan.(k)) :: !acc
      done;
      dedup !acc)
