type comp = Cproc of int | Cmem of int

type t = {
  slif : Types.t;
  node_comp : comp option array;
  chan_bus : int option array;
  mutable version : int;
}

let create (s : Types.t) =
  {
    slif = s;
    node_comp = Array.make (Array.length s.nodes) None;
    chan_bus = Array.make (Array.length s.chans) None;
    version = 0;
  }

let copy t =
  {
    slif = t.slif;
    node_comp = Array.copy t.node_comp;
    chan_bus = Array.copy t.chan_bus;
    version = t.version;
  }

let slif t = t.slif

let version t = t.version

let bump t = t.version <- t.version + 1

let restore_version t v =
  if v < 0 || v > t.version then invalid_arg "Partition.restore_version: version from the future";
  t.version <- v

let check_comp t = function
  | Cproc p ->
      if p < 0 || p >= Array.length t.slif.Types.procs then
        invalid_arg "Partition.assign_node: no such processor"
  | Cmem m ->
      if m < 0 || m >= Array.length t.slif.Types.mems then
        invalid_arg "Partition.assign_node: no such memory"

let assign_node t ~node comp =
  if node < 0 || node >= Array.length t.node_comp then
    invalid_arg "Partition.assign_node: no such node";
  check_comp t comp;
  t.node_comp.(node) <- Some comp;
  bump t

let unassign_node t ~node =
  if node < 0 || node >= Array.length t.node_comp then
    invalid_arg "Partition.unassign_node: no such node";
  t.node_comp.(node) <- None;
  bump t

let assign_chan t ~chan ~bus =
  if chan < 0 || chan >= Array.length t.chan_bus then
    invalid_arg "Partition.assign_chan: no such channel";
  if bus < 0 || bus >= Array.length t.slif.Types.buses then
    invalid_arg "Partition.assign_chan: no such bus";
  t.chan_bus.(chan) <- Some bus;
  bump t

let comp_of t node = t.node_comp.(node)

let comp_of_exn t node =
  match t.node_comp.(node) with
  | Some c -> c
  | None ->
      invalid_arg
        (Printf.sprintf "Partition.comp_of_exn: node %s is unassigned"
           t.slif.Types.nodes.(node).Types.n_name)

let bus_of t chan = t.chan_bus.(chan)

let bus_of_exn t chan =
  match t.chan_bus.(chan) with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Partition.bus_of_exn: channel %d is unassigned" chan)

let is_total t =
  Array.for_all Option.is_some t.node_comp && Array.for_all Option.is_some t.chan_bus

let nodes_of_comp t comp =
  let acc = ref [] in
  Array.iteri (fun i c -> if c = Some comp then acc := i :: !acc) t.node_comp;
  List.rev !acc

let chans_of_bus t bus =
  let acc = ref [] in
  Array.iteri (fun i b -> if b = Some bus then acc := i :: !acc) t.chan_bus;
  List.rev !acc

let same_component_nodes t src d =
  match (t.node_comp.(src), t.node_comp.(d)) with
  | Some a, Some b -> a = b
  | _ -> false

let same_component t src dst =
  match dst with
  | Types.Dport _ -> false
  | Types.Dnode d -> (
      match (t.node_comp.(src), t.node_comp.(d)) with
      | Some a, Some b -> a = b
      | _ -> false)

let comp_name (s : Types.t) = function
  | Cproc p -> s.procs.(p).Types.p_name
  | Cmem m -> s.mems.(m).Types.m_name

let comp_tech (s : Types.t) = function
  | Cproc p -> s.procs.(p).Types.p_tech
  | Cmem m -> s.mems.(m).Types.m_tech

let assignments t =
  let acc = ref [] in
  Array.iteri
    (fun i c -> match c with Some comp -> acc := (i, comp) :: !acc | None -> ())
    t.node_comp;
  List.rev !acc

let chan_assignments t =
  let acc = ref [] in
  Array.iteri
    (fun i b -> match b with Some bus -> acc := (i, bus) :: !acc | None -> ())
    t.chan_bus;
  List.rev !acc

let assign_all_chans t ~bus =
  Array.iteri (fun i _ -> t.chan_bus.(i) <- Some bus) t.chan_bus;
  bump t
