(** A partition: the mapping of functional objects onto system components.

    The paper requires a proper partition to map every behavior to exactly
    one processor, every variable to exactly one processor or memory, and
    every channel to exactly one bus (Section 2.2).  The representation —
    one component slot per node, one bus slot per channel — makes the
    exactly-one property structural; {!Validate} checks the remaining
    rules.

    Assignments bump a version counter so estimator caches can notice
    staleness cheaply. *)

type comp = Cproc of int | Cmem of int

type t

val create : Types.t -> t
(** All slots initially unassigned. *)

val copy : t -> t

val slif : t -> Types.t

val version : t -> int
(** Monotone counter, incremented by every assignment. *)

val restore_version : t -> int -> unit
(** Transactional-rollback support: reset the counter to a value captured
    with {!version} earlier.  The caller must have undone every assignment
    made since the capture, so that the mapping associated with the
    restored version is back in place — {!Estimate} caches keyed on the
    version then remain coherent.  Raises [Invalid_argument] when the
    value is negative or ahead of the current version. *)

val assign_node : t -> node:int -> comp -> unit
val unassign_node : t -> node:int -> unit
val assign_chan : t -> chan:int -> bus:int -> unit

val comp_of : t -> int -> comp option
val comp_of_exn : t -> int -> comp
(** Raises [Invalid_argument] when the node is unassigned — the paper's
    GetBvComp. *)

val bus_of : t -> int -> int option
val bus_of_exn : t -> int -> int
(** The paper's GetChanBus. *)

val is_total : t -> bool
(** Every node and every channel is assigned. *)

val nodes_of_comp : t -> comp -> int list
val chans_of_bus : t -> int -> int list

val same_component_nodes : t -> int -> int -> bool
(** Whether two nodes are currently mapped to the same component; false
    when either is unassigned.  The int-indexed variant the compact
    estimation path uses ({!same_component} takes a [Types.dest]). *)

val same_component : t -> int -> Types.dest -> bool
(** Whether a channel's source node and destination lie on the same
    component; destinations that are external ports are never on a
    component. *)

val comp_name : Types.t -> comp -> string
val comp_tech : Types.t -> comp -> Types.tech_name

val assign_all_chans : t -> bus:int -> unit
(** Convenience: map every channel to the given bus. *)

val assignments : t -> (int * comp) list
(** Every assigned node as [(node id, component)], ascending by id — the
    stable enumeration serializers ({!Decision}, [Slif_store]) walk. *)

val chan_assignments : t -> (int * int) list
(** Every assigned channel as [(channel id, bus id)], ascending by id. *)
