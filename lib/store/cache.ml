let tech_fingerprint () =
  let names = List.map Tech.Parts.technology_name Tech.Parts.all in
  Printf.sprintf "techs=%s;store=%d" (String.concat "," names) Store.format_version

(* Length-prefix each component so concatenations cannot collide. *)
let key ~source ?profile () =
  let buf = Buffer.create (String.length source + 64) in
  let add s =
    Buffer.add_string buf (string_of_int (String.length s));
    Buffer.add_char buf ':';
    Buffer.add_string buf s
  in
  add source;
  add (match profile with None -> "<no-profile>" | Some p -> "profile:" ^ p);
  add (tech_fingerprint ());
  Digest.to_hex (Digest.string (Buffer.contents buf))

let entry_path ~dir ~key = Filename.concat dir (key ^ ".slifstore")

let rec ensure_dir dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then begin
    if dir <> "" && Sys.file_exists dir && not (Sys.is_directory dir) then
      raise (Store.Store_error (Store.Io (dir ^ ": not a directory")))
  end
  else begin
    ensure_dir (Filename.dirname dir);
    match Sys.mkdir dir 0o755 with
    | () -> ()
    | exception Sys_error msg -> raise (Store.Store_error (Store.Io msg))
  end

let load_or_build ~dir ~source ?profile ~build () =
  ensure_dir dir;
  let source_md5 = Digest.to_hex (Digest.string source) in
  let k = key ~source ?profile () in
  let path = entry_path ~dir ~key:k in
  let provenance =
    { Store.pv_source_md5 = source_md5; pv_profile = profile; pv_tech = tech_fingerprint () }
  in
  let build_and_save status =
    let slif = build () in
    Store.save_slif ~path ~provenance slif;
    (slif, status)
  in
  if Sys.file_exists path then begin
    match Store.load_slif ~path with
    | Ok (slif, prov) when prov.Store.pv_source_md5 = source_md5 ->
        Slif_obs.Counter.incr "store.cache_hit";
        (slif, `Hit)
    | Ok _ | Error _ ->
        (* Hash-collision paranoia or on-disk corruption: rebuild. *)
        Slif_obs.Counter.incr "store.cache_invalid";
        build_and_save `Rebuilt
  end
  else begin
    Slif_obs.Counter.incr "store.cache_miss";
    build_and_save `Miss
  end
