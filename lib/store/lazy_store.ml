type map = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type identity = { id_dev : int; id_ino : int; id_size : int; id_mtime : float }

type t = {
  path : string;
  size : int;
  map : map;
  entries : Store.v2_entry list;
  meta : Store.v2_meta;
  ident : identity;
  lock : Mutex.t;
  (* The decoded graph is held weakly: the caller (the daemon's LRU) owns
     the only strong reference, so evicting it actually releases the
     heap — a handle never pins a decode.  Decode *errors* are memoized
     strongly; they are small and a corrupt file stays corrupt. *)
  memo : (Slif.Types.t * Store.provenance) Weak.t;
  mutable memo_err : Store.error option;
}

(* Copy a byte range out of the mapping.  The copy is what the Codec
   readers need anyway (they consume strings), and it confines page
   faults to decode time — an un-forced handle touches only the header
   pages.  Subtraction-form bounds check: [pos + len] can wrap past
   max_int on a crafted directory entry, so never sum untrusted
   offsets; the reads stay bounds-checked too. *)
let fetch_map map size ~pos ~len =
  if pos < 0 || len < 0 || pos > size || len > size - pos then ""
  else String.init len (fun i -> Bigarray.Array1.get map (pos + i))

(* A corrupt directory can still drive the codec into [String.sub] /
   [String.init] with absurd arguments; keep the [result] contract by
   mapping those to a typed decode error instead of escaping. *)
let guarded f =
  match f () with
  | r -> r
  | exception Invalid_argument msg -> Error (Store.Decode msg)

let ( let* ) = Result.bind

let open_file path =
  match
    let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        let st = Unix.fstat fd in
        let size = st.Unix.st_size in
        if size = 0 then Error Store.Bad_magic
        else begin
          (* The mapping outlives the descriptor; the kernel drops it when
             the bigarray is collected. *)
          let map =
            Bigarray.array1_of_genarray
              (Unix.map_file fd Bigarray.char Bigarray.c_layout false [| size |])
          in
          let fetch = fetch_map map size in
          let* entries = guarded (fun () -> Store.v2_directory ~total:size fetch) in
          let* meta_p = guarded (fun () -> Store.v2_section ~fetch entries "META") in
          let* meta = Store.v2_decode_meta meta_p in
          Ok
            {
              path;
              size;
              map;
              entries;
              meta;
              ident =
                {
                  id_dev = st.Unix.st_dev;
                  id_ino = st.Unix.st_ino;
                  id_size = st.Unix.st_size;
                  id_mtime = st.Unix.st_mtime;
                };
              lock = Mutex.create ();
              memo = Weak.create 1;
              memo_err = None;
            }
        end)
  with
  | r -> r
  | exception Unix.Unix_error (e, _, _) -> Error (Store.Io (Unix.error_message e))
  | exception Sys_error msg -> Error (Store.Io msg)
  | exception Invalid_argument msg -> Error (Store.Decode msg)

let path t = t.path
let file_size t = t.size
let meta t = t.meta
let design t = t.meta.Store.vm_design
let kind t = t.meta.Store.vm_kind
let decoded_bytes_estimate t = t.meta.Store.vm_decoded_bytes
let identity t = t.ident

(* [save_slif] replaces a store by renaming a fresh temporary over it, so
   a regenerated file is a different inode; size/mtime catch in-place
   rewrites.  An unlinked or unstattable path counts as stale — callers
   reopen and surface the error. *)
let stale t =
  match Unix.stat t.path with
  | exception Unix.Unix_error _ -> true
  | exception Sys_error _ -> true
  | st ->
      st.Unix.st_dev <> t.ident.id_dev
      || st.Unix.st_ino <> t.ident.id_ino
      || st.Unix.st_size <> t.ident.id_size
      || st.Unix.st_mtime <> t.ident.id_mtime

let sections t =
  List.map
    (fun (e : Store.v2_entry) ->
      {
        Store.sec_tag = e.Store.v2_tag;
        sec_offset = e.Store.v2_off;
        sec_size = e.Store.v2_len;
        sec_crc = e.Store.v2_crc;
      })
    t.entries

let provenance t =
  guarded (fun () ->
      let* p = Store.v2_section ~fetch:(fetch_map t.map t.size) t.entries "PROV" in
      Store.decode_prov p)

let decoded t =
  Mutex.lock t.lock;
  let d = Weak.check t.memo 0 || t.memo_err <> None in
  Mutex.unlock t.lock;
  d

let slif t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      match t.memo_err with
      | Some e -> Error e
      | None -> (
          match Weak.get t.memo 0 with
          | Some v -> Ok v
          | None -> (
              match
                guarded (fun () ->
                    Store.v2_decode_slif ~fetch:(fetch_map t.map t.size) t.entries)
              with
              | Ok v as r ->
                  Slif_obs.Counter.incr "store.lazy.full_decode";
                  Weak.set t.memo 0 (Some v);
                  r
              | Error e as r ->
                  t.memo_err <- Some e;
                  r)))
