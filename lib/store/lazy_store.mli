(** Lazily decoded, memory-mapped v2 store containers.

    [open_file] maps the container with [Unix.map_file] and parses only
    the fixed-size header, the CRC-guarded section directory and the META
    section — a few hundred bytes of work however large the file is.
    Metadata queries (design name, object counts, the decoded-heap
    estimate) are then answered without touching the graph sections, which
    is how the daemon serves a graph larger than its LRU budget: the bytes
    stay in the page cache behind the mapping, and nothing lands on the
    OCaml heap until {!slif} forces a full decode.

    A handle is domain-safe: the mapping is read-only and the decode memo
    is guarded by a mutex, so worker domains can share one handle.  The
    memo holds the decoded graph {e weakly}: the caller keeps the only
    strong reference (the daemon's LRU), so dropping that reference really
    releases the heap — a long-lived handle never pins a decode.  Every
    completed full decode bumps the [store.lazy.full_decode] counter — the
    hook the "served without decoding" test assertions (and operators)
    watch. *)

type t

val open_file : string -> (t, Store.error) result
(** Maps the file and validates header + directory + META.  v1
    containers (which cannot be decoded piecemeal) yield
    [Unsupported_version 1]; callers fall back to {!Store.load_slif}.
    Malformed directories — including offset/length pairs engineered to
    overflow — yield a typed error, never an exception. *)

val path : t -> string
val file_size : t -> int
val design : t -> string
val kind : t -> Store.kind
val meta : t -> Store.v2_meta

val decoded_bytes_estimate : t -> int
(** META's write-time estimate of the decoded graph's heap bytes. *)

type identity = { id_dev : int; id_ino : int; id_size : int; id_mtime : float }

val identity : t -> identity
(** The (device, inode, size, mtime) of the file as it was mapped. *)

val stale : t -> bool
(** Whether the path now names different bytes than the mapping serves:
    [save_slif] renames a fresh inode over the old one, which the mmap
    pins.  True when the file was replaced, rewritten, or unlinked —
    callers should drop the handle and reopen. *)

val sections : t -> Store.section_info list

val provenance : t -> (Store.provenance, Store.error) result
(** Decodes the (small) PROV section on demand. *)

val decoded : t -> bool
(** Whether a forced decode (graph or error) is currently memoized.
    Flips back to [false] once an evicted graph is collected. *)

val slif : t -> (Slif.Types.t * Store.provenance, Store.error) result
(** Force the full decode (per-section CRCs are verified now, not at
    open time) and bump [store.lazy.full_decode].  The result is
    memoized weakly — callers that keep it alive share one decode;
    once every caller drops it the memory is reclaimable and a later
    force decodes again. *)
