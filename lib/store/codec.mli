(** Binary primitives for the store format.

    The encoding is designed for exact round-trips and total decoding:
    floats travel as their IEEE-754 bit pattern (little-endian 64-bit),
    so a loaded SLIF yields bit-identical estimates; non-negative
    integers use LEB128 varints and signed ones zigzag on top; strings,
    lists and arrays are length-prefixed.  The reader bounds-checks every
    access and raises the local {!R.Error} — never an out-of-bounds
    exception — so arbitrary bytes cannot crash a decoder, only fail
    it. *)

module W : sig
  type t

  val create : unit -> t
  val contents : t -> string
  val byte : t -> int -> unit
  (** Low 8 bits only. *)

  val uint : t -> int -> unit
  (** LEB128; raises [Invalid_argument] on a negative value. *)

  val int : t -> int -> unit
  (** Zigzag + LEB128, any OCaml int. *)

  val f64 : t -> float -> unit
  val str : t -> string -> unit
  val bool : t -> bool -> unit
  val option : t -> (t -> 'a -> unit) -> 'a option -> unit
  val list : t -> (t -> 'a -> unit) -> 'a list -> unit
  val array : t -> (t -> 'a -> unit) -> 'a array -> unit
  val pair : t -> (t -> 'a -> unit) -> (t -> 'b -> unit) -> 'a * 'b -> unit
end

module R : sig
  type t

  exception Error of string
  (** Malformed input: truncation, oversized length, varint overflow.
      The only exception any reader function raises. *)

  val of_string : string -> t
  val eof : t -> bool
  val byte : t -> int
  val uint : t -> int
  val int : t -> int
  val f64 : t -> float
  val str : t -> string
  val bool : t -> bool
  val option : t -> (t -> 'a) -> 'a option
  val list : t -> (t -> 'a) -> 'a list
  val array : t -> (t -> 'a) -> 'a array
  val pair : t -> (t -> 'a) -> (t -> 'b) -> 'a * 'b
end
