(** Content-addressed cache of annotated SLIF store files.

    The cache key is the MD5 of (source text, profile text, technology
    fingerprint, format version): any input that changes the annotation
    result changes the key, so entries never go stale silently — a new
    input simply misses.  Entries live as [<dir>/<key>.slifstore]
    containers written by {!Store.save_slif}; a corrupt or mismatched
    entry is rebuilt and overwritten, never trusted.

    Counters (when {!Slif_obs} records): [store.cache_hit],
    [store.cache_miss], [store.cache_invalid] (present but unreadable or
    failing provenance validation — counted as a rebuild). *)

val tech_fingerprint : unit -> string
(** Identifies the {!Tech.Parts} catalog baked into this binary (names
    plus the store format version).  Annotation weights are pure
    functions of (source, profile, catalog), so this is the third key
    component. *)

val key : source:string -> ?profile:string -> unit -> string
(** Hex MD5 content key.  [profile] is the branch-probability file text
    (omit for the static defaults — a distinct key from any real
    profile). *)

val entry_path : dir:string -> key:string -> string
(** [<dir>/<key>.slifstore]. *)

val load_or_build :
  dir:string ->
  source:string ->
  ?profile:string ->
  build:(unit -> Slif.Types.t) ->
  unit ->
  Slif.Types.t * [ `Hit | `Miss | `Rebuilt ]
(** The load-or-build step: return the cached annotated SLIF when a
    valid entry exists, otherwise run [build], persist the result and
    return it.  Creates [dir] (and parents) on first use.  Raises
    [Store.Store_error (Io _)] when the directory cannot be created, read or
    written — the caller turns that into a one-line diagnostic. *)
