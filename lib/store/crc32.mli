(** CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven.

    Every section of a {!Store} container carries the checksum of its
    payload so corruption — a flipped bit, a truncated write, a partial
    download — is detected before decoding begins.  The stdlib has no
    CRC, and Marshal checksums nothing, hence this 30-line
    implementation. *)

val string : string -> int32
(** Checksum of a whole string. *)

val sub : string -> pos:int -> len:int -> int32
(** Checksum of a substring; [pos]/[len] must be in bounds. *)
