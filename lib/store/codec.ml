module W = struct
  type t = Buffer.t

  let create () = Buffer.create 4096
  let contents = Buffer.contents
  let byte b n = Buffer.add_char b (Char.chr (n land 0xFF))

  let uint b n =
    if n < 0 then invalid_arg "Codec.W.uint: negative";
    let rec go n =
      if n < 0x80 then byte b n
      else begin
        byte b (0x80 lor (n land 0x7F));
        go (n lsr 7)
      end
    in
    go n

  (* LEB128 over a raw bit pattern: [lsr] and the mask treat [n] as
     unsigned, so the full 63-bit range encodes — including patterns
     with the top bit set, which [uint]'s negative guard rejects. *)
  let raw b n =
    let rec go n =
      if n land lnot 0x7F = 0 then byte b n
      else begin
        byte b (0x80 lor (n land 0x7F));
        go (n lsr 7)
      end
    in
    go n

  (* Zigzag maps the sign bit into bit 0 so small negatives stay short.
     The fold of [min_int]/[max_int] sets the pattern's top bit, hence
     [raw] rather than [uint]: every OCaml int round-trips. *)
  let int b n = raw b ((n lsl 1) lxor (n asr (Sys.int_size - 1)))
  let f64 b v = Buffer.add_int64_le b (Int64.bits_of_float v)

  let str b s =
    uint b (String.length s);
    Buffer.add_string b s

  let bool b v = byte b (if v then 1 else 0)
  let option b f = function None -> byte b 0 | Some v -> byte b 1; f b v

  let list b f xs =
    uint b (List.length xs);
    List.iter (f b) xs

  let array b f xs =
    uint b (Array.length xs);
    Array.iter (f b) xs

  let pair b f g (x, y) = f b x; g b y
end

module R = struct
  type t = { s : string; mutable pos : int }

  exception Error of string

  let fail msg = raise (Error msg)
  let of_string s = { s; pos = 0 }
  let eof r = r.pos >= String.length r.s

  let byte r =
    if r.pos >= String.length r.s then fail "unexpected end of input";
    let c = Char.code r.s.[r.pos] in
    r.pos <- r.pos + 1;
    c

  let uint r =
    let rec go shift acc =
      if shift > Sys.int_size then fail "varint too long";
      let c = byte r in
      let acc = acc lor ((c land 0x7F) lsl shift) in
      if acc < 0 then fail "varint overflow";
      if c land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  (* Unsigned companion of [W.raw]: accumulates a raw bit pattern, so
     a zigzagged [min_int]/[max_int] (top bit set) decodes instead of
     tripping [uint]'s overflow guard. *)
  let raw r =
    let rec go shift acc =
      if shift >= Sys.int_size then fail "varint too long";
      let c = byte r in
      let acc = acc lor ((c land 0x7F) lsl shift) in
      if c land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let int r =
    let n = raw r in
    (n lsr 1) lxor (-(n land 1))

  let f64 r =
    if r.pos + 8 > String.length r.s then fail "unexpected end of input in float";
    let v = Int64.float_of_bits (String.get_int64_le r.s r.pos) in
    r.pos <- r.pos + 8;
    v

  let str r =
    let n = uint r in
    if n > String.length r.s - r.pos then fail "string length past end of input";
    let v = String.sub r.s r.pos n in
    r.pos <- r.pos + n;
    v

  let bool r =
    match byte r with 0 -> false | 1 -> true | n -> fail (Printf.sprintf "bad bool tag %d" n)

  let option r f =
    match byte r with
    | 0 -> None
    | 1 -> Some (f r)
    | n -> fail (Printf.sprintf "bad option tag %d" n)

  let seq_len r =
    let n = uint r in
    (* Every element takes at least one byte, so a count past the
       remaining bytes is corrupt — reject it before allocating. *)
    if n > String.length r.s - r.pos then fail "sequence length past end of input";
    n

  (* Not List.init/Array.init: their application order is unspecified,
     and the reader is stateful. *)
  let list r f =
    let n = seq_len r in
    let rec go i acc = if i = n then List.rev acc else go (i + 1) (f r :: acc) in
    go 0 []

  let array r f =
    let n = seq_len r in
    if n = 0 then [||]
    else begin
      let first = f r in
      let a = Array.make n first in
      for i = 1 to n - 1 do
        a.(i) <- f r
      done;
      a
    end

  let pair r f g =
    let x = f r in
    let y = g r in
    (x, y)
end
