type error =
  | Io of string
  | Bad_magic
  | Unsupported_version of int
  | Truncated of string
  | Checksum_mismatch of string
  | Decode of string

let error_message = function
  | Io msg -> msg
  | Bad_magic -> "not a SLIF store file (bad magic)"
  | Unsupported_version v ->
      Printf.sprintf "store format version %d is newer than this tool (max %d)" v 2
  | Truncated what -> Printf.sprintf "truncated store file (%s)" what
  | Checksum_mismatch tag -> Printf.sprintf "checksum mismatch in section %S" tag
  | Decode msg -> Printf.sprintf "malformed store file: %s" msg

exception Store_error of error

let magic = "SLIFSTOR"

(* v1 is the default write format (content-addressed cache keys and the
   golden corpus are pinned to its bytes); v2 adds the offset-indexed
   section directory that makes containers lazily decodable. *)
let format_version = 1
let format_version_v2 = 2
let max_format_version = 2
let tool_name = "slif-store/1"

type provenance = {
  pv_source_md5 : string;
  pv_profile : string option;
  pv_tech : string;
}

let no_provenance = { pv_source_md5 = ""; pv_profile = None; pv_tech = "" }

type kind = Kslif | Kdecision

(* --- Container framing ---------------------------------------------------- *)

let add_u32_le buf v = Buffer.add_int32_le buf (Int32.of_int v)

let section buf tag payload =
  assert (String.length tag = 4);
  Buffer.add_string buf tag;
  add_u32_le buf (String.length payload);
  Buffer.add_int32_le buf (Crc32.string payload);
  Buffer.add_string buf payload

let container sections =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf magic;
  add_u32_le buf format_version;
  List.iter (fun (tag, payload) -> section buf tag payload) sections;
  Buffer.contents buf

let u32_le s pos = Int32.to_int (Int32.logand (String.get_int32_le s pos) 0xFFFFFFFFl)

(* Split a container into (version, [tag, payload]) or a framing error. *)
let split s =
  let len = String.length s in
  if len < String.length magic then Error Bad_magic
  else if String.sub s 0 (String.length magic) <> magic then Error Bad_magic
  else if len < String.length magic + 4 then Error (Truncated "version field")
  else begin
    let version = u32_le s (String.length magic) in
    if version < 1 || version > format_version then Error (Unsupported_version version)
    else begin
      let rec sections pos acc =
        if pos = len then Ok (List.rev acc)
        else if len - pos < 12 then Error (Truncated "section header")
        else begin
          let tag = String.sub s pos 4 in
          let plen = u32_le s (pos + 4) in
          let crc = Int32.of_int (u32_le s (pos + 8)) in
          if plen > len - pos - 12 then Error (Truncated (Printf.sprintf "section %S" tag))
          else if Crc32.sub s ~pos:(pos + 12) ~len:plen <> crc then
            Error (Checksum_mismatch tag)
          else if List.mem_assoc tag acc then
            Error (Decode (Printf.sprintf "duplicate section %S" tag))
          else sections (pos + 12 + plen) ((tag, String.sub s (pos + 12) plen) :: acc)
        end
      in
      match sections (String.length magic + 4) [] with
      | Ok secs -> Ok (version, secs)
      | Error _ as e -> e
    end
  end

let find_section sections tag =
  match List.assoc_opt tag sections with
  | Some payload -> Ok payload
  | None -> Error (Decode (Printf.sprintf "missing section %S" tag))

(* Run a Codec-level decoder over a payload, mapping reader failures to
   the typed error and insisting the payload is fully consumed. *)
let decode_payload tag payload f =
  let r = Codec.R.of_string payload in
  match f r with
  | v ->
      if Codec.R.eof r then Ok v
      else Error (Decode (Printf.sprintf "trailing bytes in section %S" tag))
  | exception Codec.R.Error msg ->
      Error (Decode (Printf.sprintf "section %S: %s" tag msg))

let ( let* ) = Result.bind

(* --- META / PROV sections -------------------------------------------------- *)

let meta_payload ~kind ~design =
  let b = Codec.W.create () in
  Codec.W.byte b (match kind with Kslif -> 0 | Kdecision -> 1);
  Codec.W.str b design;
  Codec.W.str b tool_name;
  Codec.W.contents b

let decode_meta payload =
  decode_payload "META" payload (fun r ->
      let kind =
        match Codec.R.byte r with
        | 0 -> Kslif
        | 1 -> Kdecision
        | n -> raise (Codec.R.Error (Printf.sprintf "unknown container kind %d" n))
      in
      let design = Codec.R.str r in
      let _tool = Codec.R.str r in
      (kind, design))

let prov_payload p =
  let b = Codec.W.create () in
  Codec.W.str b p.pv_source_md5;
  Codec.W.option b Codec.W.str p.pv_profile;
  Codec.W.str b p.pv_tech;
  Codec.W.contents b

let decode_prov payload =
  decode_payload "PROV" payload (fun r ->
      let pv_source_md5 = Codec.R.str r in
      let pv_profile = Codec.R.option r Codec.R.str in
      let pv_tech = Codec.R.str r in
      { pv_source_md5; pv_profile; pv_tech })

(* --- SLIF graph sections --------------------------------------------------- *)

open Slif.Types

let w_weights b = Codec.W.list b (fun b (t, v) -> Codec.W.str b t; Codec.W.f64 b v)
let r_weights r = Codec.R.list r (fun r -> Codec.R.pair r Codec.R.str Codec.R.f64)

let w_node b (n : node) =
  Codec.W.int b n.n_id;
  Codec.W.str b n.n_name;
  (match n.n_kind with
  | Behavior { is_process } ->
      Codec.W.byte b 0;
      Codec.W.bool b is_process
  | Variable { storage_bits; transfer_bits } ->
      Codec.W.byte b 1;
      Codec.W.int b storage_bits;
      Codec.W.int b transfer_bits);
  w_weights b n.n_ict;
  w_weights b n.n_size

let r_node r =
  let n_id = Codec.R.int r in
  let n_name = Codec.R.str r in
  let n_kind =
    match Codec.R.byte r with
    | 0 -> Behavior { is_process = Codec.R.bool r }
    | 1 ->
        let storage_bits = Codec.R.int r in
        let transfer_bits = Codec.R.int r in
        Variable { storage_bits; transfer_bits }
    | n -> raise (Codec.R.Error (Printf.sprintf "unknown node kind %d" n))
  in
  let n_ict = r_weights r in
  let n_size = r_weights r in
  { n_id; n_name; n_kind; n_ict; n_size }

let w_port b (p : port) =
  Codec.W.int b p.pt_id;
  Codec.W.str b p.pt_name;
  Codec.W.int b p.pt_bits;
  Codec.W.byte b (match p.pt_dir with Pin -> 0 | Pout -> 1 | Pinout -> 2)

let r_port r =
  let pt_id = Codec.R.int r in
  let pt_name = Codec.R.str r in
  let pt_bits = Codec.R.int r in
  let pt_dir =
    match Codec.R.byte r with
    | 0 -> Pin
    | 1 -> Pout
    | 2 -> Pinout
    | n -> raise (Codec.R.Error (Printf.sprintf "unknown port direction %d" n))
  in
  { pt_id; pt_name; pt_bits; pt_dir }

let w_chan b (c : channel) =
  Codec.W.int b c.c_id;
  Codec.W.int b c.c_src;
  (match c.c_dst with
  | Dnode n -> Codec.W.byte b 0; Codec.W.int b n
  | Dport p -> Codec.W.byte b 1; Codec.W.int b p);
  Codec.W.f64 b c.c_accfreq;
  Codec.W.f64 b c.c_accfreq_min;
  Codec.W.f64 b c.c_accfreq_max;
  Codec.W.int b c.c_bits;
  Codec.W.option b Codec.W.int c.c_tag;
  Codec.W.byte b
    (match c.c_kind with Call -> 0 | Var_access -> 1 | Port_access -> 2 | Message -> 3)

let r_chan r =
  let c_id = Codec.R.int r in
  let c_src = Codec.R.int r in
  let c_dst =
    match Codec.R.byte r with
    | 0 -> Dnode (Codec.R.int r)
    | 1 -> Dport (Codec.R.int r)
    | n -> raise (Codec.R.Error (Printf.sprintf "unknown channel destination %d" n))
  in
  let c_accfreq = Codec.R.f64 r in
  let c_accfreq_min = Codec.R.f64 r in
  let c_accfreq_max = Codec.R.f64 r in
  let c_bits = Codec.R.int r in
  let c_tag = Codec.R.option r Codec.R.int in
  let c_kind =
    match Codec.R.byte r with
    | 0 -> Call
    | 1 -> Var_access
    | 2 -> Port_access
    | 3 -> Message
    | n -> raise (Codec.R.Error (Printf.sprintf "unknown channel kind %d" n))
  in
  { c_id; c_src; c_dst; c_accfreq; c_accfreq_min; c_accfreq_max; c_bits; c_tag; c_kind }

let w_proc b (p : processor) =
  Codec.W.int b p.p_id;
  Codec.W.str b p.p_name;
  Codec.W.byte b (match p.p_kind with Standard -> 0 | Custom -> 1);
  Codec.W.str b p.p_tech;
  Codec.W.option b Codec.W.f64 p.p_size_constraint;
  Codec.W.option b Codec.W.int p.p_io_constraint

let r_proc r =
  let p_id = Codec.R.int r in
  let p_name = Codec.R.str r in
  let p_kind =
    match Codec.R.byte r with
    | 0 -> Standard
    | 1 -> Custom
    | n -> raise (Codec.R.Error (Printf.sprintf "unknown processor kind %d" n))
  in
  let p_tech = Codec.R.str r in
  let p_size_constraint = Codec.R.option r Codec.R.f64 in
  let p_io_constraint = Codec.R.option r Codec.R.int in
  { p_id; p_name; p_kind; p_tech; p_size_constraint; p_io_constraint }

let w_mem b (m : memory) =
  Codec.W.int b m.m_id;
  Codec.W.str b m.m_name;
  Codec.W.str b m.m_tech;
  Codec.W.option b Codec.W.f64 m.m_size_constraint

let r_mem r =
  let m_id = Codec.R.int r in
  let m_name = Codec.R.str r in
  let m_tech = Codec.R.str r in
  let m_size_constraint = Codec.R.option r Codec.R.f64 in
  { m_id; m_name; m_tech; m_size_constraint }

let w_bus b (bus : bus) =
  Codec.W.int b bus.b_id;
  Codec.W.str b bus.b_name;
  Codec.W.int b bus.b_bitwidth;
  Codec.W.f64 b bus.b_ts_us;
  Codec.W.f64 b bus.b_td_us;
  Codec.W.option b Codec.W.f64 bus.b_capacity_mbps;
  Codec.W.list b (fun b (t, v) -> Codec.W.str b t; Codec.W.f64 b v) bus.b_ts_by_tech;
  Codec.W.list b
    (fun b ((ta, tb), v) ->
      Codec.W.str b ta;
      Codec.W.str b tb;
      Codec.W.f64 b v)
    bus.b_td_by_pair

let r_bus r =
  let b_id = Codec.R.int r in
  let b_name = Codec.R.str r in
  let b_bitwidth = Codec.R.int r in
  let b_ts_us = Codec.R.f64 r in
  let b_td_us = Codec.R.f64 r in
  let b_capacity_mbps = Codec.R.option r Codec.R.f64 in
  let b_ts_by_tech = Codec.R.list r (fun r -> Codec.R.pair r Codec.R.str Codec.R.f64) in
  let b_td_by_pair =
    Codec.R.list r (fun r ->
        let ta = Codec.R.str r in
        let tb = Codec.R.str r in
        let v = Codec.R.f64 r in
        ((ta, tb), v))
  in
  { b_id; b_name; b_bitwidth; b_ts_us; b_td_us; b_capacity_mbps; b_ts_by_tech; b_td_by_pair }

let payload_of f x =
  let b = Codec.W.create () in
  f b x;
  Codec.W.contents b

(* --- Format v2: offset-indexed, lazily decodable containers ----------------

   v1 frames sections back-to-back, so reaching any section means walking
   (and CRC-summing) everything before it — a reader cannot answer "how
   many nodes?" without touching the whole file.  v2 puts a directory up
   front:

     magic | u32 version=2 | u32 count | count x (tag4, u64 off, u64 len,
     u32 crc) | u32 dir-crc | payloads...

   so a reader maps the file, verifies ~a hundred directory bytes, and
   then decodes exactly the sections it needs; each payload's CRC is
   checked when (and only when) that payload is decoded.  Two payload
   changes ride along: META carries the object counts and a decoded-heap
   estimate (metadata queries and admission-control budgets need neither
   NODE nor CHAN), and NODE references an interned TECH string table
   instead of repeating technology names per weight — the dominant
   per-node byte cost in v1, and a heap saving on decode since all nodes
   share one string per technology. *)

type v2_entry = { v2_tag : string; v2_off : int; v2_len : int; v2_crc : int32 }

type v2_meta = {
  vm_kind : kind;
  vm_design : string;
  vm_nodes : int;
  vm_ports : int;
  vm_chans : int;
  vm_procs : int;
  vm_mems : int;
  vm_buses : int;
  vm_decoded_bytes : int;  (* estimated heap bytes of the decoded Types.t *)
}

let v2_dir_entry_size = 24
let v2_header_size count = 8 + 4 + 4 + (count * v2_dir_entry_size) + 4

(* Rough decoded-heap model (bytes), computed at write time so admission
   control can reject an over-budget graph from META alone.  Counts the
   records, boxes and strings [slif_of_string] allocates; it is an
   estimate, not an accounting — §15 documents the model. *)
let v2_decoded_estimate (s : t) =
  let str name = 8 * (3 + (String.length name / 8)) in
  let weights l = List.fold_left (fun acc (tn, _) -> acc + 80 + str tn) 0 l in
  let node acc (n : node) = acc + 96 + str n.n_name + weights n.n_ict + weights n.n_size in
  let port acc (p : port) = acc + 56 + str p.pt_name in
  let proc acc (p : processor) = acc + 96 + str p.p_name + str p.p_tech in
  let mem acc (m : memory) = acc + 72 + str m.m_name + str m.m_tech in
  let bus acc (b : bus) =
    acc + 120 + str b.b_name
    + List.fold_left (fun a (tn, _) -> a + 80 + str tn) 0 b.b_ts_by_tech
    + List.fold_left (fun a ((ta, tb), _) -> a + 104 + str ta + str tb) 0 b.b_td_by_pair
  in
  Array.fold_left node 0 s.nodes
  + Array.fold_left port 0 s.ports
  + (Array.length s.chans * 112)
  + Array.fold_left proc 0 s.procs
  + Array.fold_left mem 0 s.mems
  + Array.fold_left bus 0 s.buses

let v2_meta_payload (s : t) =
  let b = Codec.W.create () in
  Codec.W.byte b 0 (* Kslif *);
  Codec.W.str b s.design_name;
  Codec.W.str b tool_name;
  Codec.W.uint b (Array.length s.nodes);
  Codec.W.uint b (Array.length s.ports);
  Codec.W.uint b (Array.length s.chans);
  Codec.W.uint b (Array.length s.procs);
  Codec.W.uint b (Array.length s.mems);
  Codec.W.uint b (Array.length s.buses);
  Codec.W.uint b (v2_decoded_estimate s);
  Codec.W.contents b

let v2_decode_meta payload =
  decode_payload "META" payload (fun r ->
      let vm_kind =
        match Codec.R.byte r with
        | 0 -> Kslif
        | 1 -> Kdecision
        | n -> raise (Codec.R.Error (Printf.sprintf "unknown container kind %d" n))
      in
      let vm_design = Codec.R.str r in
      let _tool = Codec.R.str r in
      let vm_nodes = Codec.R.uint r in
      let vm_ports = Codec.R.uint r in
      let vm_chans = Codec.R.uint r in
      let vm_procs = Codec.R.uint r in
      let vm_mems = Codec.R.uint r in
      let vm_buses = Codec.R.uint r in
      let vm_decoded_bytes = Codec.R.uint r in
      {
        vm_kind;
        vm_design;
        vm_nodes;
        vm_ports;
        vm_chans;
        vm_procs;
        vm_mems;
        vm_buses;
        vm_decoded_bytes;
      })

(* NODE with interned technology names: weight entries are (tech index,
   value) against the TECH table. *)
let v2_tech_table (s : t) =
  let ix = Hashtbl.create 16 in
  let rev = ref [] in
  let n = ref 0 in
  let intern name =
    if not (Hashtbl.mem ix name) then begin
      Hashtbl.add ix name !n;
      rev := name :: !rev;
      incr n
    end
  in
  Array.iter
    (fun (nd : node) ->
      List.iter (fun (tn, _) -> intern tn) nd.n_ict;
      List.iter (fun (tn, _) -> intern tn) nd.n_size)
    s.nodes;
  (Array.of_list (List.rev !rev), ix)

let v2_w_node ix b (n : node) =
  Codec.W.int b n.n_id;
  Codec.W.str b n.n_name;
  (match n.n_kind with
  | Behavior { is_process } ->
      Codec.W.byte b 0;
      Codec.W.bool b is_process
  | Variable { storage_bits; transfer_bits } ->
      Codec.W.byte b 1;
      Codec.W.int b storage_bits;
      Codec.W.int b transfer_bits);
  let w_weights b l =
    Codec.W.list b
      (fun b (tn, v) ->
        Codec.W.uint b (Hashtbl.find ix tn);
        Codec.W.f64 b v)
      l
  in
  w_weights b n.n_ict;
  w_weights b n.n_size

let v2_r_node techs r =
  let n_id = Codec.R.int r in
  let n_name = Codec.R.str r in
  let n_kind =
    match Codec.R.byte r with
    | 0 -> Behavior { is_process = Codec.R.bool r }
    | 1 ->
        let storage_bits = Codec.R.int r in
        let transfer_bits = Codec.R.int r in
        Variable { storage_bits; transfer_bits }
    | n -> raise (Codec.R.Error (Printf.sprintf "unknown node kind %d" n))
  in
  let r_weights r =
    Codec.R.list r (fun r ->
        let k = Codec.R.uint r in
        if k >= Array.length techs then
          raise (Codec.R.Error (Printf.sprintf "tech index %d out of table" k));
        let v = Codec.R.f64 r in
        (techs.(k), v))
  in
  let n_ict = r_weights r in
  let n_size = r_weights r in
  { n_id; n_name; n_kind; n_ict; n_size }

let add_u64_le buf v = Buffer.add_int64_le buf (Int64.of_int v)

let v2_container sections =
  let count = List.length sections in
  let base = v2_header_size count in
  let dir = Buffer.create (count * v2_dir_entry_size) in
  let off = ref base in
  List.iter
    (fun (tag, payload) ->
      assert (String.length tag = 4);
      Buffer.add_string dir tag;
      add_u64_le dir !off;
      add_u64_le dir (String.length payload);
      Buffer.add_int32_le dir (Crc32.string payload);
      off := !off + String.length payload)
    sections;
  let dir = Buffer.contents dir in
  let buf = Buffer.create (!off) in
  Buffer.add_string buf magic;
  add_u32_le buf format_version_v2;
  add_u32_le buf count;
  Buffer.add_string buf dir;
  Buffer.add_int32_le buf (Crc32.string dir);
  List.iter (fun (_, payload) -> Buffer.add_string buf payload) sections;
  Buffer.contents buf

(* Version of a container (any format), from the fixed 12-byte prelude. *)
let container_version s =
  if String.length s < 8 || String.sub s 0 8 <> magic then Error Bad_magic
  else if String.length s < 12 then Error (Truncated "version field")
  else Ok (u32_le s 8)

(* Parse a v2 directory through a [fetch ~pos ~len] callback, so the same
   code serves an in-memory string and an mmap'd file.  [total] is the
   container size in bytes; every entry is bounds-checked against it. *)
let v2_directory ~total fetch =
  if total < 16 then Error (Truncated "directory header")
  else begin
    let head = fetch ~pos:0 ~len:16 in
    if String.sub head 0 8 <> magic then Error Bad_magic
    else begin
      let version = u32_le head 8 in
      if version <> format_version_v2 then Error (Unsupported_version version)
      else begin
        let count = u32_le head 12 in
        let hsize = v2_header_size count in
        if count < 0 || total < hsize then Error (Truncated "section directory")
        else begin
          let dir = fetch ~pos:16 ~len:(count * v2_dir_entry_size) in
          let crc = fetch ~pos:(16 + String.length dir) ~len:4 in
          if Crc32.string dir <> Int32.of_int (u32_le crc 0) then
            Error (Checksum_mismatch "directory")
          else begin
            let rec entries i acc =
              if i = count then Ok (List.rev acc)
              else begin
                let p = i * v2_dir_entry_size in
                let v2_tag = String.sub dir p 4 in
                let v2_off = Int64.to_int (String.get_int64_le dir (p + 4)) in
                let v2_len = Int64.to_int (String.get_int64_le dir (p + 12)) in
                let v2_crc = Int32.of_int (u32_le dir (p + 20)) in
                (* Subtraction-form bounds check: [v2_off + v2_len] can
                   wrap past max_int on a crafted directory, so never
                   sum attacker-controlled offsets. *)
                if v2_off < hsize || v2_len < 0 || v2_off > total
                   || v2_len > total - v2_off then
                  Error (Truncated (Printf.sprintf "section %S" v2_tag))
                else if List.exists (fun e -> e.v2_tag = v2_tag) acc then
                  Error (Decode (Printf.sprintf "duplicate section %S" v2_tag))
                else
                  entries (i + 1)
                    ({ v2_tag; v2_off; v2_len; v2_crc } :: acc)
              end
            in
            entries 0 []
          end
        end
      end
    end
  end

(* Fetch one section's payload and verify its CRC — the per-section lazy
   integrity check. *)
let v2_section ~fetch entries tag =
  match List.find_opt (fun e -> e.v2_tag = tag) entries with
  | None -> Error (Decode (Printf.sprintf "missing section %S" tag))
  | Some e ->
      let payload = fetch ~pos:e.v2_off ~len:e.v2_len in
      if Crc32.string payload <> e.v2_crc then Error (Checksum_mismatch tag)
      else Ok payload

let v2_slif_to_string ?(provenance = no_provenance) (s : t) =
  let techs, ix = v2_tech_table s in
  v2_container
    [
      ("META", v2_meta_payload s);
      ("PROV", prov_payload provenance);
      ("TECH", payload_of (fun b -> Codec.W.array b Codec.W.str) techs);
      ("NODE", payload_of (fun b -> Codec.W.array b (v2_w_node ix)) s.nodes);
      ("PORT", payload_of (fun b -> Codec.W.array b w_port) s.ports);
      ("CHAN", payload_of (fun b -> Codec.W.array b w_chan) s.chans);
      ( "COMP",
        let b = Codec.W.create () in
        Codec.W.array b w_proc s.procs;
        Codec.W.array b w_mem s.mems;
        Codec.W.array b w_bus s.buses;
        Codec.W.contents b );
    ]

(* Decode a full SLIF out of a v2 directory; shared by the eager string
   reader below and Lazy_store's on-demand path. *)
let v2_decode_slif ~fetch entries =
  let* meta_p = v2_section ~fetch entries "META" in
  let* meta = v2_decode_meta meta_p in
  match meta.vm_kind with
  | Kdecision -> Error (Decode "container holds a decision, not a SLIF")
  | Kslif ->
      let* prov =
        match List.find_opt (fun e -> e.v2_tag = "PROV") entries with
        | None -> Ok no_provenance
        | Some _ ->
            let* p = v2_section ~fetch entries "PROV" in
            decode_prov p
      in
      let* tech_p = v2_section ~fetch entries "TECH" in
      let* techs =
        decode_payload "TECH" tech_p (fun r -> Codec.R.array r Codec.R.str)
      in
      let* node_p = v2_section ~fetch entries "NODE" in
      let* nodes =
        decode_payload "NODE" node_p (fun r -> Codec.R.array r (v2_r_node techs))
      in
      let* port_p = v2_section ~fetch entries "PORT" in
      let* ports = decode_payload "PORT" port_p (fun r -> Codec.R.array r r_port) in
      let* chan_p = v2_section ~fetch entries "CHAN" in
      let* chans = decode_payload "CHAN" chan_p (fun r -> Codec.R.array r r_chan) in
      let* comp_p = v2_section ~fetch entries "COMP" in
      let* procs, mems, buses =
        decode_payload "COMP" comp_p (fun r ->
            let procs = Codec.R.array r r_proc in
            let mems = Codec.R.array r r_mem in
            let buses = Codec.R.array r r_bus in
            (procs, mems, buses))
      in
      Ok
        ( { design_name = meta.vm_design; nodes; ports; chans; procs; mems; buses },
          prov )

let string_fetch text ~pos ~len =
  let total = String.length text in
  if pos < 0 || len < 0 || pos > total || len > total - pos then ""
  else String.sub text pos len

let slif_to_string ?(version = format_version) ?provenance (s : t) =
  match version with
  | 1 -> (
      let sections =
        [
          ("META", meta_payload ~kind:Kslif ~design:s.design_name);
          ( "PROV",
            prov_payload (Option.value provenance ~default:no_provenance) );
          ("NODE", payload_of (fun b -> Codec.W.array b w_node) s.nodes);
          ("PORT", payload_of (fun b -> Codec.W.array b w_port) s.ports);
          ("CHAN", payload_of (fun b -> Codec.W.array b w_chan) s.chans);
          ( "COMP",
            let b = Codec.W.create () in
            Codec.W.array b w_proc s.procs;
            Codec.W.array b w_mem s.mems;
            Codec.W.array b w_bus s.buses;
            Codec.W.contents b );
        ]
      in
      container sections)
  | 2 -> v2_slif_to_string ?provenance s
  | v -> invalid_arg (Printf.sprintf "Store.slif_to_string: unknown format version %d" v)

let slif_of_string text =
  let* version = container_version text in
  if version = format_version_v2 then
    let fetch = string_fetch text in
    let* entries = v2_directory ~total:(String.length text) fetch in
    v2_decode_slif ~fetch entries
  else
    let* _version, sections = split text in
    let* meta = find_section sections "META" in
    let* kind, design_name = decode_meta meta in
    match kind with
    | Kdecision -> Error (Decode "container holds a decision, not a SLIF")
    | Kslif ->
        let* prov =
          match List.assoc_opt "PROV" sections with
          | None -> Ok no_provenance
          | Some payload -> decode_prov payload
        in
        let* node_p = find_section sections "NODE" in
        let* nodes = decode_payload "NODE" node_p (fun r -> Codec.R.array r r_node) in
        let* port_p = find_section sections "PORT" in
        let* ports = decode_payload "PORT" port_p (fun r -> Codec.R.array r r_port) in
        let* chan_p = find_section sections "CHAN" in
        let* chans = decode_payload "CHAN" chan_p (fun r -> Codec.R.array r r_chan) in
        let* comp_p = find_section sections "COMP" in
        let* procs, mems, buses =
          decode_payload "COMP" comp_p (fun r ->
              let procs = Codec.R.array r r_proc in
              let mems = Codec.R.array r r_mem in
              let buses = Codec.R.array r r_bus in
              (procs, mems, buses))
        in
        Ok ({ design_name; nodes; ports; chans; procs; mems; buses }, prov)

(* --- Decisions ------------------------------------------------------------- *)

let dest_name (s : t) = function
  | Dnode d -> (0, s.nodes.(d).n_name)
  | Dport p -> (1, s.ports.(p).pt_name)

let chan_kind_code = function Call -> 0 | Var_access -> 1 | Port_access -> 2 | Message -> 3

let decision_to_string ?note part =
  let s = Slif.Partition.slif part in
  let maps =
    Array.to_list s.nodes
    |> List.filter_map (fun (n : node) ->
           match Slif.Partition.comp_of part n.n_id with
           | None -> None
           | Some (Slif.Partition.Cproc i) -> Some (n.n_name, 0, s.procs.(i).p_name)
           | Some (Slif.Partition.Cmem i) -> Some (n.n_name, 1, s.mems.(i).m_name))
  in
  let chans =
    Array.to_list s.chans
    |> List.filter_map (fun (c : channel) ->
           match Slif.Partition.bus_of part c.c_id with
           | None -> None
           | Some bus ->
               let dkind, dname = dest_name s c.c_dst in
               Some
                 ( s.nodes.(c.c_src).n_name,
                   dkind,
                   dname,
                   chan_kind_code c.c_kind,
                   s.buses.(bus).b_name ))
  in
  let decn =
    let b = Codec.W.create () in
    Codec.W.option b Codec.W.str note;
    Codec.W.list b
      (fun b (node, kind, comp) ->
        Codec.W.str b node;
        Codec.W.byte b kind;
        Codec.W.str b comp)
      maps;
    Codec.W.list b
      (fun b (src, dkind, dname, ckind, bus) ->
        Codec.W.str b src;
        Codec.W.byte b dkind;
        Codec.W.str b dname;
        Codec.W.byte b ckind;
        Codec.W.str b bus)
      chans;
    Codec.W.contents b
  in
  container
    [ ("META", meta_payload ~kind:Kdecision ~design:s.design_name); ("DECN", decn) ]

let decision_of_string (s : t) text =
  let* _version, sections = split text in
  let* meta = find_section sections "META" in
  let* kind, design_name = decode_meta meta in
  match kind with
  | Kslif -> Error (Decode "container holds a SLIF, not a decision")
  | Kdecision ->
      if design_name <> s.design_name then
        Error
          (Decode
             (Printf.sprintf "decision recorded for design %S, not %S" design_name
                s.design_name))
      else
        let* decn = find_section sections "DECN" in
        let* note, maps, chans =
          decode_payload "DECN" decn (fun r ->
              let note = Codec.R.option r Codec.R.str in
              let maps =
                Codec.R.list r (fun r ->
                    let node = Codec.R.str r in
                    let kind = Codec.R.byte r in
                    let comp = Codec.R.str r in
                    (node, kind, comp))
              in
              let chans =
                Codec.R.list r (fun r ->
                    let src = Codec.R.str r in
                    let dkind = Codec.R.byte r in
                    let dname = Codec.R.str r in
                    let ckind = Codec.R.byte r in
                    let bus = Codec.R.str r in
                    (src, dkind, dname, ckind, bus))
              in
              (note, maps, chans))
        in
        let part = Slif.Partition.create s in
        let find_index what arr name_of name =
          let found = ref None in
          Array.iteri (fun i x -> if name_of x = name then found := Some i) arr;
          match !found with
          | Some i -> Ok i
          | None -> Error (Decode (Printf.sprintf "no %s named %S in design" what name))
        in
        let rec apply_maps = function
          | [] -> Ok ()
          | (node_name, kind, comp_name) :: rest -> (
              match Slif.Types.node_by_name s node_name with
              | None -> Error (Decode (Printf.sprintf "no node named %S in design" node_name))
              | Some node ->
                  let* comp =
                    match kind with
                    | 0 ->
                        let* i =
                          find_index "processor" s.procs (fun p -> p.p_name) comp_name
                        in
                        Ok (Slif.Partition.Cproc i)
                    | 1 ->
                        let* i = find_index "memory" s.mems (fun m -> m.m_name) comp_name in
                        Ok (Slif.Partition.Cmem i)
                    | k -> Error (Decode (Printf.sprintf "bad component kind %d" k))
                  in
                  Slif.Partition.assign_node part ~node:node.n_id comp;
                  apply_maps rest)
        in
        let find_chan src dkind dname ckind =
          let matches (c : channel) =
            s.nodes.(c.c_src).n_name = src
            && chan_kind_code c.c_kind = ckind
            && dest_name s c.c_dst = (dkind, dname)
          in
          let found = ref None in
          Array.iter (fun c -> if matches c then found := Some c.c_id) s.chans;
          match !found with
          | Some id -> Ok id
          | None ->
              Error (Decode (Printf.sprintf "no channel %s -> %s in design" src dname))
        in
        let rec apply_chans = function
          | [] -> Ok ()
          | (src, dkind, dname, ckind, bus_name) :: rest ->
              let* chan = find_chan src dkind dname ckind in
              let* bus = find_index "bus" s.buses (fun b -> b.b_name) bus_name in
              Slif.Partition.assign_chan part ~chan ~bus;
              apply_chans rest
        in
        let* () = apply_maps maps in
        let* () = apply_chans chans in
        Ok (part, note)

(* --- Files ----------------------------------------------------------------- *)

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> Ok text
  | exception Sys_error msg -> Error (Io msg)

let write_file path text =
  (* Write-then-rename so readers never observe a torn file. *)
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  match
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc text);
    Sys.rename tmp path
  with
  | () -> ()
  | exception Sys_error msg ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise (Store_error (Io msg))

let save_slif ~path ?version ?provenance s =
  write_file path (slif_to_string ?version ?provenance s)

let load_slif ~path =
  let* text = read_file path in
  slif_of_string text

let save_decision ~path ?note part = write_file path (decision_to_string ?note part)

let load_decision s ~path =
  let* text = read_file path in
  decision_of_string s text

(* --- Inspection ------------------------------------------------------------ *)

type section_info = {
  sec_tag : string;
  sec_offset : int;  (* byte offset of the payload within the container *)
  sec_size : int;
  sec_crc : int32;
}

type info = {
  si_version : int;
  si_kind : kind;
  si_design : string;
  si_sections : section_info list;
  si_provenance : provenance option;
}

(* Payload offsets of a v1 container; the caller has already run [split],
   so the framing is known to be well-formed. *)
let v1_section_table text =
  let len = String.length text in
  let rec go pos acc =
    if pos >= len then List.rev acc
    else
      let sec_tag = String.sub text pos 4 in
      let plen = u32_le text (pos + 4) in
      let sec_crc = Int32.of_int (u32_le text (pos + 8)) in
      go
        (pos + 12 + plen)
        ({ sec_tag; sec_offset = pos + 12; sec_size = plen; sec_crc } :: acc)
  in
  go 12 []

let inspect text =
  let* version = container_version text in
  if version = format_version_v2 then begin
    let fetch = string_fetch text in
    let* entries = v2_directory ~total:(String.length text) fetch in
    let* meta_p = v2_section ~fetch entries "META" in
    let* meta = v2_decode_meta meta_p in
    let* si_provenance =
      match List.find_opt (fun e -> e.v2_tag = "PROV") entries with
      | None -> Ok None
      | Some _ ->
          let* p = v2_section ~fetch entries "PROV" in
          let* p = decode_prov p in
          Ok (Some p)
    in
    Ok
      {
        si_version = version;
        si_kind = meta.vm_kind;
        si_design = meta.vm_design;
        si_sections =
          List.map
            (fun e ->
              {
                sec_tag = e.v2_tag;
                sec_offset = e.v2_off;
                sec_size = e.v2_len;
                sec_crc = e.v2_crc;
              })
            entries;
        si_provenance;
      }
  end
  else
    let* si_version, sections = split text in
    let* meta = find_section sections "META" in
    let* si_kind, si_design = decode_meta meta in
    let* si_provenance =
      match List.assoc_opt "PROV" sections with
      | None -> Ok None
      | Some payload ->
          let* p = decode_prov payload in
          Ok (Some p)
    in
    Ok { si_version; si_kind; si_design; si_sections = v1_section_table text; si_provenance }
