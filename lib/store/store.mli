(** The persistent SLIF container (DESIGN.md §11).

    A store file is the durable form of the paper's one-time
    preprocessing step: the fully annotated access graph — nodes with
    their per-technology [ict]/[size] weight lists, channels with
    [accfreq]/[bits]/concurrency tags, the component and bus tables —
    serialized so a later process evaluates design metrics without
    re-parsing or re-annotating anything.  The same container also
    carries recorded partition decisions ([slif partition --save]).

    Layout (v1): an 8-byte magic, a 4-byte little-endian format version,
    then a sequence of sections, each [4-byte tag | 4-byte LE payload
    length | 4-byte LE CRC-32 of the payload | payload].  Payloads use
    {!Codec}.

    Layout (v2): the same magic/version prelude, then a CRC-guarded
    section {e directory} — [u32 count], [count] entries of [tag(4) |
    u64 payload offset | u64 payload length | u32 payload CRC-32], a
    [u32] CRC of the directory bytes — followed by the payloads.  The
    directory makes a v2 container lazily decodable: a reader (or an
    [Unix.map_file] mapping, see {!Lazy_store}) can verify the directory
    alone, answer metadata queries from META (which carries object counts
    and a decoded-heap estimate in v2), and decode individual sections on
    demand, checking each payload CRC only when that payload is read.
    v2 NODE weights reference an interned TECH string table instead of
    repeating technology names per node.

    Decoding is total: any byte sequence either decodes or yields a typed
    {!error} — never an exception escaping this module's [_of_string]
    functions, never a crash. *)

type error =
  | Io of string  (** file could not be read/written (carries the OS message) *)
  | Bad_magic  (** the file does not start with {!magic} *)
  | Unsupported_version of int  (** written by a newer format revision *)
  | Truncated of string  (** input ended inside the named structure *)
  | Checksum_mismatch of string  (** the named section's CRC-32 does not match *)
  | Decode of string  (** structurally invalid payload *)

val error_message : error -> string
(** One-line human-readable rendering (what the CLI prints). *)

exception Store_error of error
(** Raised only by the [save_*] functions (on I/O failure); the read
    path returns [result]s. *)

val magic : string
(** ["SLIFSTOR"], 8 bytes. *)

val format_version : int
(** The default {e write} format (1 — the content-addressed cache and the
    golden corpus are pinned to its bytes); readers accept every version
    up to {!max_format_version} and reject newer ones with
    {!Unsupported_version} rather than misdecode. *)

val format_version_v2 : int
(** The offset-indexed, lazily decodable format (2). *)

val max_format_version : int

(** Where an annotated SLIF came from — enough to decide whether a cached
    store file still matches its inputs. *)
type provenance = {
  pv_source_md5 : string;  (** MD5 hex digest of the specification text; [""] unknown *)
  pv_profile : string option;  (** the branch-probability file text, verbatim *)
  pv_tech : string;  (** technology-catalog fingerprint ({!Cache.tech_fingerprint}) *)
}

val no_provenance : provenance

(** {2 Annotated SLIF bundles} *)

val slif_to_string : ?version:int -> ?provenance:provenance -> Slif.Types.t -> string
(** [version] is {!format_version} (1) by default or {!format_version_v2};
    anything else raises [Invalid_argument]. *)

val slif_of_string : string -> (Slif.Types.t * provenance, error) result
(** Exact inverse of {!slif_to_string} for either format version (the
    container's version field decides): every float comes back with the
    identical bit pattern, so estimates computed from the loaded SLIF
    equal the originals to the bit. *)

val save_slif :
  path:string -> ?version:int -> ?provenance:provenance -> Slif.Types.t -> unit
(** Write-then-rename, so a concurrent reader never sees a half-written
    file.  Raises [Error (Io _)]. *)

val load_slif : path:string -> (Slif.Types.t * provenance, error) result

(** {2 Recorded partition decisions} *)

val decision_to_string : ?note:string -> Slif.Partition.t -> string
(** Assignments are recorded by object {e name} (like the legacy text
    format), so a decision survives node renumbering as long as names are
    stable. *)

val decision_of_string :
  Slif.Types.t -> string -> (Slif.Partition.t * string option, error) result
(** Replays the recorded assignments onto a partition of the given SLIF;
    the note travels back too.  Unknown names, a design-name mismatch or
    a SLIF-kind container yield [Decode]. *)

val save_decision : path:string -> ?note:string -> Slif.Partition.t -> unit
val load_decision : Slif.Types.t -> path:string -> (Slif.Partition.t * string option, error) result

(** {2 Inspection (the [slif store info] subcommand)} *)

type kind = Kslif | Kdecision

type section_info = {
  sec_tag : string;
  sec_offset : int;  (** byte offset of the payload within the container *)
  sec_size : int;  (** payload bytes *)
  sec_crc : int32;  (** payload CRC-32, as recorded in the container *)
}

type info = {
  si_version : int;
  si_kind : kind;
  si_design : string;
  si_sections : section_info list;  (** file order *)
  si_provenance : provenance option;
}

val inspect : string -> (info, error) result
(** Checks magic and version, validates the container's integrity
    metadata (every v1 section checksum; the v2 directory checksum), and
    decodes the metadata — without rebuilding the graph. *)

val read_file : string -> (string, error) result
(** Slurp a file, mapping I/O failures to [Io]. *)

(** {2 v2 internals shared with {!Lazy_store}} *)

type v2_entry = { v2_tag : string; v2_off : int; v2_len : int; v2_crc : int32 }

type v2_meta = {
  vm_kind : kind;
  vm_design : string;
  vm_nodes : int;
  vm_ports : int;
  vm_chans : int;
  vm_procs : int;
  vm_mems : int;
  vm_buses : int;
  vm_decoded_bytes : int;
      (** write-time estimate of the decoded [Types.t]'s heap bytes — the
          number admission control compares against [--max-graph-mb] *)
}

val v2_directory :
  total:int -> (pos:int -> len:int -> string) -> (v2_entry list, error) result
(** Parse and CRC-verify a v2 section directory through a byte-range
    fetch callback ([String.sub] over a loaded container, or a copy out
    of an [Unix.map_file] mapping); entries are bounds-checked against
    [total]. *)

val v2_section :
  fetch:(pos:int -> len:int -> string) -> v2_entry list -> string -> (string, error) result
(** Fetch one section's payload and verify its CRC — the per-section
    lazy integrity check. *)

val v2_decode_meta : string -> (v2_meta, error) result

val decode_prov : string -> (provenance, error) result
(** Decode a PROV payload (shared with {!Lazy_store}). *)

val v2_decode_slif :
  fetch:(pos:int -> len:int -> string) ->
  v2_entry list ->
  (Slif.Types.t * provenance, error) result
(** Full decode out of a v2 directory (eager path and {!Lazy_store}'s
    on-demand path share this). *)
