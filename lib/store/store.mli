(** The persistent SLIF container (DESIGN.md §11).

    A store file is the durable form of the paper's one-time
    preprocessing step: the fully annotated access graph — nodes with
    their per-technology [ict]/[size] weight lists, channels with
    [accfreq]/[bits]/concurrency tags, the component and bus tables —
    serialized so a later process evaluates design metrics without
    re-parsing or re-annotating anything.  The same container also
    carries recorded partition decisions ([slif partition --save]).

    Layout: an 8-byte magic, a 4-byte little-endian format version, then
    a sequence of sections, each [4-byte tag | 4-byte LE payload length |
    4-byte LE CRC-32 of the payload | payload].  Payloads use {!Codec}.
    Decoding is total: any byte sequence either decodes or yields a typed
    {!error} — never an exception escaping this module's [_of_string]
    functions, never a crash. *)

type error =
  | Io of string  (** file could not be read/written (carries the OS message) *)
  | Bad_magic  (** the file does not start with {!magic} *)
  | Unsupported_version of int  (** written by a newer format revision *)
  | Truncated of string  (** input ended inside the named structure *)
  | Checksum_mismatch of string  (** the named section's CRC-32 does not match *)
  | Decode of string  (** structurally invalid payload *)

val error_message : error -> string
(** One-line human-readable rendering (what the CLI prints). *)

exception Store_error of error
(** Raised only by the [save_*] functions (on I/O failure); the read
    path returns [result]s. *)

val magic : string
(** ["SLIFSTOR"], 8 bytes. *)

val format_version : int
(** Bumped on any encoding change; readers reject newer versions with
    {!Unsupported_version} rather than misdecode. *)

(** Where an annotated SLIF came from — enough to decide whether a cached
    store file still matches its inputs. *)
type provenance = {
  pv_source_md5 : string;  (** MD5 hex digest of the specification text; [""] unknown *)
  pv_profile : string option;  (** the branch-probability file text, verbatim *)
  pv_tech : string;  (** technology-catalog fingerprint ({!Cache.tech_fingerprint}) *)
}

val no_provenance : provenance

(** {2 Annotated SLIF bundles} *)

val slif_to_string : ?provenance:provenance -> Slif.Types.t -> string

val slif_of_string : string -> (Slif.Types.t * provenance, error) result
(** Exact inverse of {!slif_to_string}: every float comes back with the
    identical bit pattern, so estimates computed from the loaded SLIF
    equal the originals to the bit. *)

val save_slif : path:string -> ?provenance:provenance -> Slif.Types.t -> unit
(** Write-then-rename, so a concurrent reader never sees a half-written
    file.  Raises [Error (Io _)]. *)

val load_slif : path:string -> (Slif.Types.t * provenance, error) result

(** {2 Recorded partition decisions} *)

val decision_to_string : ?note:string -> Slif.Partition.t -> string
(** Assignments are recorded by object {e name} (like the legacy text
    format), so a decision survives node renumbering as long as names are
    stable. *)

val decision_of_string :
  Slif.Types.t -> string -> (Slif.Partition.t * string option, error) result
(** Replays the recorded assignments onto a partition of the given SLIF;
    the note travels back too.  Unknown names, a design-name mismatch or
    a SLIF-kind container yield [Decode]. *)

val save_decision : path:string -> ?note:string -> Slif.Partition.t -> unit
val load_decision : Slif.Types.t -> path:string -> (Slif.Partition.t * string option, error) result

(** {2 Inspection (the [slif store info] subcommand)} *)

type kind = Kslif | Kdecision

type info = {
  si_version : int;
  si_kind : kind;
  si_design : string;
  si_sections : (string * int) list;  (** tag, payload bytes; file order *)
  si_provenance : provenance option;
}

val inspect : string -> (info, error) result
(** Checks magic, version and every section checksum, and decodes the
    metadata — without rebuilding the graph. *)

val read_file : string -> (string, error) result
(** Slurp a file, mapping I/O failures to [Io]. *)
