(** Timing helpers for the experiment harness (Figure 4 reports T-slif
    and T-est in seconds).

    Deprecated: thin wrappers over {!Slif_obs.Clock} kept for the
    benches and existing callers.  New code should prefer
    [Slif_obs.Span.with_] (records into the trace/metrics exports) or
    [Slif_obs.Clock] directly.  Historically these used
    [Unix.gettimeofday], so timings could go negative under clock
    adjustment; they now read the monotonic clock. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result together with the
    elapsed monotonic-clock seconds. *)

val time_n : int -> (unit -> 'a) -> float
(** [time_n n f] runs [f] [n] times and returns the average elapsed
    seconds per run.  Raises [Invalid_argument] when [n <= 0]. *)
