(** Fixed-size domain pool for deterministic task-parallel sweeps.

    Design-space exploration scores thousands of independent (allocation x
    algorithm x seed) combinations; on OCaml 5 each combination can run on
    its own domain with zero new dependencies.  The pool is built from
    stdlib [Domain] + [Mutex]/[Condition] only and is engineered for
    reproducibility first:

    - {!map} returns results in submission order, so the output of a sweep
      is bit-identical no matter how many domains execute it;
    - {!map_seeded} hands every task a private {!Prng} derived from a root
      seed and the task's submission index ({!Prng.derive}), never from
      shared generator state, so random searches are a pure function of
      (root seed, task index);
    - a pool of [jobs = 1] executes everything in the submitting domain —
      the serial and parallel code paths are the same code.

    The submitting domain participates in the work (a pool of [jobs = n]
    spawns [n - 1] worker domains), and tasks must therefore not block on
    each other.  A pool is meant to be driven from one domain at a time;
    concurrent {!map} calls from different domains are not supported.

    The pool is also the parallelism profiler's main probe site.  Its
    internal mutex is the {!Slif_obs.Lockprof} lock ["pool.queue"]
    (waits charged to {!Slif_obs.Attribution.Queue_wait}); while
    profiling is enabled each task feeds the [pool.task_run_us] and
    [pool.task_queue_wait_us] histograms and the per-domain
    {!Slif_obs.Attribution} cells (task bodies as task-run, condition
    parks as idle, worker loop lifetimes and map-call spans as wall
    time).  Instrumented or not, the queue discipline is identical, so
    results never depend on whether a sweep was profiled. *)

type t

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — what the CLI's [-j] defaults
    to. *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains (default
    {!default_jobs}).  Raises [Invalid_argument] when [jobs < 1]. *)

val jobs : t -> int
(** The parallelism the pool was created with (including the submitter). *)

val shutdown : t -> unit
(** Join all worker domains.  Idempotent; the pool must be idle. *)

type stats = {
  st_jobs : int;  (** parallelism, including the submitter *)
  st_worker_domains : int;  (** spawned domains still attached (jobs - 1, 0 after shutdown) *)
  st_queued : int;  (** tasks sitting in the queue right now *)
  st_submitted : int;  (** tasks ever handed to {!mapi} on this pool *)
  st_completed : int;  (** tasks whose body has settled *)
}

val stats : t -> stats
(** A consistent snapshot (taken under the queue lock).  Safe to call
    concurrently with a running {!map}. *)

type global_stats = {
  g_pools_created : int;
  g_pools_live : int;  (** created minus shut down *)
  g_tasks_submitted : int;
  g_tasks_completed : int;
}

val global_stats : unit -> global_stats
(** Process-wide totals across every pool that ever existed — what the
    daemon's metrics scrape exports, since pools are transient. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [create], run the function, [shutdown] — even on exceptions. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f tasks] runs [f] on every task (in parallel when the pool
    has more than one domain) and returns the results in submission
    order.  When several tasks raise, the exception of the
    lowest-indexed failing task is re-raised after all tasks have
    settled, so failure behavior is deterministic too. *)

val mapi : t -> (int -> 'a -> 'b) -> 'a list -> 'b list
(** {!map} with the task's submission index. *)

val map_seeded : t -> seed:int -> (Prng.t -> 'a -> 'b) -> 'a list -> 'b list
(** [map_seeded pool ~seed f tasks] gives task [i] the private generator
    [Prng.derive ~root:seed i].  Identical results for every [jobs]. *)
