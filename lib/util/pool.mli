(** Fixed-size domain pool for deterministic task-parallel sweeps.

    Design-space exploration scores thousands of independent (allocation x
    algorithm x seed) combinations; on OCaml 5 each combination can run on
    its own domain with zero new dependencies.  The pool is built from
    stdlib [Domain] + [Mutex]/[Condition] only and is engineered for
    reproducibility first:

    - {!map} returns results in submission order, so the output of a sweep
      is bit-identical no matter how many domains execute it;
    - {!map_seeded} hands every task a private {!Prng} derived from a root
      seed and the task's submission index ({!Prng.derive}), never from
      shared generator state, so random searches are a pure function of
      (root seed, task index);
    - a pool of [jobs = 1] executes everything in the submitting domain —
      the serial and parallel code paths are the same code.

    The submitting domain participates in the work (a pool of [jobs = n]
    spawns [n - 1] worker domains), and tasks must therefore not block on
    each other.  A pool is meant to be driven from one domain at a time;
    concurrent {!map} calls from different domains are not supported. *)

type t

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — what the CLI's [-j] defaults
    to. *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains (default
    {!default_jobs}).  Raises [Invalid_argument] when [jobs < 1]. *)

val jobs : t -> int
(** The parallelism the pool was created with (including the submitter). *)

val shutdown : t -> unit
(** Join all worker domains.  Idempotent; the pool must be idle. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [create], run the function, [shutdown] — even on exceptions. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f tasks] runs [f] on every task (in parallel when the pool
    has more than one domain) and returns the results in submission
    order.  When several tasks raise, the exception of the
    lowest-indexed failing task is re-raised after all tasks have
    settled, so failure behavior is deterministic too. *)

val mapi : t -> (int -> 'a -> 'b) -> 'a list -> 'b list
(** {!map} with the task's submission index. *)

val map_seeded : t -> seed:int -> (Prng.t -> 'a -> 'b) -> 'a list -> 'b list
(** [map_seeded pool ~seed f tasks] gives task [i] the private generator
    [Prng.derive ~root:seed i].  Identical results for every [jobs]. *)
