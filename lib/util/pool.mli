(** Fixed-size domain pool for deterministic task-parallel sweeps.

    Design-space exploration scores thousands of independent (allocation x
    algorithm x seed) combinations; on OCaml 5 each combination can run on
    its own domain with zero new dependencies.  The pool is built from
    stdlib [Domain] + [Mutex]/[Condition] only and is engineered for
    reproducibility first:

    - {!map} returns results in submission order, so the output of a sweep
      is bit-identical no matter how many domains execute it;
    - {!map_seeded} hands every task a private {!Prng} derived from a root
      seed and the task's submission index ({!Prng.derive}), never from
      shared generator state, so random searches are a pure function of
      (root seed, task index);
    - a pool of [jobs = 1] executes everything in the submitting domain —
      the serial and parallel code paths are the same code.

    The submitting domain participates in the work (a pool of [jobs = n]
    spawns [n - 1] worker domains), and tasks must therefore not block on
    each other.  A pool is meant to be driven from one domain at a time;
    concurrent {!map} calls from different domains are not supported.

    The pool is also the parallelism profiler's main probe site.  Its
    internal mutex is the {!Slif_obs.Lockprof} lock ["pool.queue"]
    (waits charged to {!Slif_obs.Attribution.Queue_wait}); while
    profiling is enabled each task feeds the [pool.task_run_us] and
    [pool.task_queue_wait_us] histograms and the per-domain
    {!Slif_obs.Attribution} cells (task bodies as task-run, condition
    parks as idle, worker loop lifetimes and map-call spans as wall
    time).  Instrumented or not, the queue discipline is identical, so
    results never depend on whether a sweep was profiled. *)

type t

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — what the CLI's [-j] defaults
    to. *)

val create : ?name:string -> ?jobs:int -> ?oversubscribe:bool -> unit -> t
(** [create ~jobs ()] builds a pool of logical parallelism [jobs]
    (default {!default_jobs}), spawning at most
    [Domain.recommended_domain_count () - 1] worker domains: domains
    beyond the hardware's parallelism cannot run concurrently and only
    multiply stop-the-world GC barriers (the measured cause of parallel
    sweeps running {e slower} than serial ones on small machines).
    [jobs] keeps its full value for everything deterministic — seeds,
    chunk heuristics, {!jobs} — so results are a function of the
    requested [-j] alone, independent of the machine the sweep ran on.
    [oversubscribe] (default false) lifts the cap and spawns [jobs - 1]
    domains unconditionally — for contention experiments that want the
    pathology back, and for pools whose tasks park on conditions rather
    than compute (the daemon's worker pool).  [name] gives the pool's
    queue lock its own {!Slif_obs.Lockprof} series
    (["pool.queue:<name>"]), so a long-lived pool's contention is not
    aggregated with every transient sweep pool's.
    Raises [Invalid_argument] when [jobs < 1]. *)

val jobs : t -> int
(** The logical parallelism the pool was created with (including the
    submitter) — the value that drives seeds and chunk sizing. *)

val domains : t -> int
(** Domains actually executing tasks (including the submitter):
    [min jobs (recommended_domain_count)] unless the pool was created
    with [~oversubscribe:true]. *)

val shutdown : t -> unit
(** Join all worker domains and tear down the submitting domain's
    {!local} slots.  Idempotent; the pool must be idle.  If any slot
    teardown raised (on any domain), the first such exception — in
    registration order, so deterministic — is re-raised here after every
    domain has joined. *)

type stats = {
  st_jobs : int;  (** parallelism, including the submitter *)
  st_worker_domains : int;  (** spawned domains still attached (jobs - 1, 0 after shutdown) *)
  st_queued : int;  (** tasks sitting in the queue right now *)
  st_submitted : int;  (** tasks ever handed to {!mapi} on this pool *)
  st_completed : int;  (** tasks whose body has settled *)
}

val stats : t -> stats
(** A consistent snapshot (taken under the queue lock).  Safe to call
    concurrently with a running {!map}. *)

type global_stats = {
  g_pools_created : int;
  g_pools_live : int;  (** created minus shut down *)
  g_tasks_submitted : int;
  g_tasks_completed : int;
}

val global_stats : unit -> global_stats
(** Process-wide totals across every pool that ever existed — what the
    daemon's metrics scrape exports, since pools are transient. *)

val with_pool : ?name:string -> ?jobs:int -> ?oversubscribe:bool -> (t -> 'a) -> 'a
(** [create], run the function, [shutdown] — even on exceptions. *)

(* --- Domain-local slots -------------------------------------------------- *)

type 'a local
(** One lazily initialized value per domain participating in the pool's
    work — the carrier of share-nothing sweep state (an engine replica
    per domain, say).  No slot is ever visible to two domains. *)

val local : t -> ?teardown:('a -> unit) -> (unit -> 'a) -> 'a local
(** [local pool ~teardown init] declares a slot family on the pool.
    [init] runs on first {!get} {e on the requesting domain} (so
    domain-affine resources — DLS-backed counter handles, estimator
    scratch — land on the domain that will use them); [teardown] runs on
    that same domain when its worker exits, or at {!shutdown} for the
    submitting domain.  An [init] that raises stores nothing: the
    exception propagates to the calling task (surfacing deterministically
    through {!map}'s lowest-index rule) and the next {!get} retries.
    A raising [teardown] is caught, never wedges a worker join, and is
    re-raised from {!shutdown}. *)

val get : 'a local -> 'a
(** The calling domain's slot, initializing it on first use.  Meant to be
    called from task bodies (or the submitting domain). *)

(* --- Chunking ------------------------------------------------------------- *)

val chunks : chunk:int -> int -> (int * int) list
(** [chunks ~chunk n] slices the index range [0 .. n-1] into
    [(start, len)] runs of at most [chunk] indices, in order.  Callers
    keep determinism by deriving per-index seeds ({!Prng.derive} on the
    {e index}, never on the chunk) and merging earliest-index-wins, which
    makes the outcome a pure function of [n] and the root seed —
    byte-identical for every [chunk] and every job count.  Raises
    [Invalid_argument] when [chunk < 1]. *)

val default_chunk : jobs:int -> int -> int
(** The chunk-size heuristic behind the CLI's [--chunk 0] (auto): about
    four chunks per job — [ceil (n / (4 * jobs))] clamped to [1 .. 64] —
    coarse enough to amortize queue traffic and per-chunk replica
    acquisition, fine enough that one straggler chunk cannot idle the
    other domains for long.  Depends only on [n] and the requested
    [jobs], so auto-chunked sweeps stay machine-independent. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f tasks] runs [f] on every task (in parallel when the pool
    has more than one domain) and returns the results in submission
    order.  When several tasks raise, the exception of the
    lowest-indexed failing task is re-raised after all tasks have
    settled, so failure behavior is deterministic too.

    Causality: each task runs under the submitter's ambient trace id and
    open span id (via {!Slif_obs.Registry.with_causality}), and — with
    the flight recorder on — records a [pool.queue_wait] span parented
    under the submitter's span, so a request's tree stays connected
    across the domain hop. *)

val mapi : t -> (int -> 'a -> 'b) -> 'a list -> 'b list
(** {!map} with the task's submission index. *)

val map_seeded : t -> seed:int -> (Prng.t -> 'a -> 'b) -> 'a list -> 'b list
(** [map_seeded pool ~seed f tasks] gives task [i] the private generator
    [Prng.derive ~root:seed i].  Identical results for every [jobs]. *)
