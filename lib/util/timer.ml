let time f = Slif_obs.Clock.time f

let time_n n f =
  if n <= 0 then invalid_arg "Timer.time_n";
  Slif_obs.Clock.time_n n f
