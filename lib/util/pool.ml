(* Work queue shared by the submitter and the worker domains.  Tasks are
   packaged as [unit -> unit] thunks that write into a per-call results
   array, so one queue serves map calls of any element type.  Everything
   below the public API is guarded by one profiled mutex (the
   [Slif_obs.Lockprof] lock "pool.queue"); the hot path (the task bodies)
   runs without it.

   Instrumentation never changes scheduling: tasks still execute in
   submission order off one queue, results are still reassembled by
   index, so a profiled sweep returns byte-identical results.  With both
   the span registry and the attribution switch off, the added cost per
   task is one atomic load and a [Gc.quick_stat] at completion. *)

type t = {
  n_jobs : int;                  (* requested parallelism; drives seeds/chunks *)
  n_domains : int;               (* domains actually running (capped to hardware) *)
  queue : (unit -> unit) Queue.t;
  lock : Slif_obs.Lockprof.t;
  work : Condition.t;            (* signalled when tasks arrive or at shutdown *)
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  mutable submitted : int;       (* tasks ever handed to [mapi]; under [lock] *)
  mutable completed : int;       (* tasks whose thunk settled; under [lock] *)
  (* Domain-local slot machinery (cold paths, own plain mutex so the
     profiled queue lock never sees it). *)
  aux_mu : Mutex.t;
  mutable cleanups : (int -> unit) list;  (* newest first; arg = domain id *)
  mutable teardown_exn : exn option;      (* first teardown failure, raised by [shutdown] *)
}

type stats = {
  st_jobs : int;
  st_worker_domains : int;
  st_queued : int;
  st_submitted : int;
  st_completed : int;
}

(* Process-wide totals for the daemon's metrics: pools are transient
   (one per sweep), so the scrape needs counters that survive them. *)
let g_pools_created = Atomic.make 0
let g_pools_live = Atomic.make 0
let g_submitted = Atomic.make 0
let g_completed = Atomic.make 0

type global_stats = {
  g_pools_created : int;
  g_pools_live : int;
  g_tasks_submitted : int;
  g_tasks_completed : int;
}

let global_stats () =
  {
    g_pools_created = Atomic.get g_pools_created;
    g_pools_live = Atomic.get g_pools_live;
    g_tasks_submitted = Atomic.get g_submitted;
    g_tasks_completed = Atomic.get g_completed;
  }

let default_jobs () = Domain.recommended_domain_count ()

(* Run every registered domain-local teardown for the calling domain.
   A raising teardown must not abandon the remaining slots or wedge
   [shutdown]'s joins, so failures are recorded (first one wins — the
   registration order is deterministic) and re-raised later from
   [shutdown] on the submitting domain. *)
let run_cleanups pool =
  let dom = (Domain.self () :> int) in
  Mutex.lock pool.aux_mu;
  let fs = List.rev pool.cleanups in
  Mutex.unlock pool.aux_mu;
  List.iter
    (fun f ->
      try f dom
      with e ->
        Mutex.lock pool.aux_mu;
        if pool.teardown_exn = None then pool.teardown_exn <- Some e;
        Mutex.unlock pool.aux_mu)
    fs

let rec worker_loop pool =
  Slif_obs.Lockprof.lock pool.lock;
  while Queue.is_empty pool.queue && not pool.stop do
    (* Parked with nothing to run: idle time, not queue contention. *)
    Slif_obs.Lockprof.wait pool.lock pool.work
  done;
  if Queue.is_empty pool.queue then Slif_obs.Lockprof.unlock pool.lock (* stop requested *)
  else begin
    let thunk = Queue.pop pool.queue in
    Slif_obs.Lockprof.unlock pool.lock;
    thunk ();
    worker_loop pool
  end

(* Workers report their whole loop lifetime as wall time when they join,
   so an attribution report taken after [shutdown] has the full
   denominator for every worker domain.  Domain-local slots are torn
   down on the worker itself, after its last task and before it exits —
   the other half of the init-on-first-use lifecycle. *)
let worker_main pool () =
  let t0 = Slif_obs.Clock.now_us () in
  Fun.protect
    ~finally:(fun () ->
      run_cleanups pool;
      Slif_obs.Attribution.add_wall (Slif_obs.Clock.now_us () -. t0))
    (fun () -> worker_loop pool)

let create ?name ?jobs ?(oversubscribe = false) () =
  let n_jobs = match jobs with Some j -> j | None -> default_jobs () in
  if n_jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  (* Domains beyond the hardware's parallelism cannot run concurrently;
     they only multiply stop-the-world GC barriers and scheduling
     latency (the measured A8 inversion).  The requested [n_jobs] keeps
     driving seeds and chunk sizes — results depend on it alone — while
     the domain count is capped to what the machine can actually run, so
     [-j 8] on a small box degrades to fewer domains, never to a
     slowdown.  [oversubscribe] bypasses the cap (the contention tests
     and the profiler's worst-case mode want the pathology back). *)
  let n_domains =
    if oversubscribe then n_jobs
    else min n_jobs (max 1 (Domain.recommended_domain_count ()))
  in
  let pool =
    {
      n_jobs;
      n_domains;
      queue = Queue.create ();
      lock =
        (* A named pool (the daemon's long-lived worker pool, say) gets
           its own Lockprof series, so its queue contention is not
           pooled with every transient sweep pool's. *)
        Slif_obs.Lockprof.create ~category:Slif_obs.Attribution.Queue_wait
          (match name with
          | Some n -> "pool.queue:" ^ n
          | None -> "pool.queue");
      work = Condition.create ();
      stop = false;
      workers = [];
      submitted = 0;
      completed = 0;
      aux_mu = Mutex.create ();
      cleanups = [];
      teardown_exn = None;
    }
  in
  Atomic.incr g_pools_created;
  Atomic.incr g_pools_live;
  pool.workers <- List.init (n_domains - 1) (fun _ -> Domain.spawn (worker_main pool));
  pool

let jobs t = t.n_jobs
let domains t = t.n_domains

let stats t =
  Slif_obs.Lockprof.lock t.lock;
  let s =
    {
      st_jobs = t.n_jobs;
      st_worker_domains = List.length t.workers;
      st_queued = Queue.length t.queue;
      st_submitted = t.submitted;
      st_completed = t.completed;
    }
  in
  Slif_obs.Lockprof.unlock t.lock;
  s

let shutdown t =
  Slif_obs.Lockprof.lock t.lock;
  let was_stopped = t.stop in
  t.stop <- true;
  Condition.broadcast t.work;
  Slif_obs.Lockprof.unlock t.lock;
  let workers = t.workers in
  t.workers <- [];
  List.iter Domain.join workers;
  if not was_stopped then begin
    Atomic.decr g_pools_live;
    (* The submitting domain participates in the work, so it may hold
       initialized slots too. *)
    run_cleanups t;
    Mutex.lock t.aux_mu;
    let e = t.teardown_exn in
    t.teardown_exn <- None;
    Mutex.unlock t.aux_mu;
    match e with None -> () | Some e -> raise e
  end

let with_pool ?name ?jobs ?oversubscribe f =
  let pool = create ?name ?jobs ?oversubscribe () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* --- Domain-local slots ---------------------------------------------------

   One value per domain that participates in the pool's work, created
   lazily on the domain that will use it (so an [init] that resolves
   DLS-backed observability handles resolves them on the right domain)
   and torn down when the worker exits or the pool shuts down.  This is
   the carrier of the share-nothing architecture: an exploration sweep
   keeps one engine replica per domain in a slot, and no task ever
   touches another domain's replica.

   Only the table structure is locked; each domain reads and writes its
   own key exclusively, so [get] never blocks on another domain's init
   and an initialized slot is reached with one small critical section
   per task. *)

type 'a local = {
  l_init : unit -> 'a;
  l_mu : Mutex.t;
  l_tbl : (int, 'a) Hashtbl.t;  (* domain id -> slot *)
}

let local pool ?teardown init =
  let l = { l_init = init; l_mu = Mutex.create (); l_tbl = Hashtbl.create 8 } in
  (match teardown with
  | None -> ()
  | Some td ->
      let cleanup dom =
        Mutex.lock l.l_mu;
        let v = Hashtbl.find_opt l.l_tbl dom in
        Hashtbl.remove l.l_tbl dom;
        Mutex.unlock l.l_mu;
        match v with None -> () | Some v -> td v
      in
      Mutex.lock pool.aux_mu;
      pool.cleanups <- cleanup :: pool.cleanups;
      Mutex.unlock pool.aux_mu);
  l

let get (l : 'a local) =
  let dom = (Domain.self () :> int) in
  Mutex.lock l.l_mu;
  let v = Hashtbl.find_opt l.l_tbl dom in
  Mutex.unlock l.l_mu;
  match v with
  | Some v -> v
  | None ->
      (* Init runs outside the lock: it may be expensive (an engine
         replica build) and no other domain can race for this key.  An
         init that raises stores nothing — the exception surfaces as the
         calling task's deterministic failure, and a later [get] retries. *)
      let v = l.l_init () in
      Mutex.lock l.l_mu;
      Hashtbl.add l.l_tbl dom v;
      Mutex.unlock l.l_mu;
      v

(* --- Chunking -------------------------------------------------------------

   Coarse work units for sweeps whose natural tasks are tiny.  The
   helpers only slice index space; determinism is the caller's side of
   the contract — derive per *index* (not per chunk) from the root seed
   and merge earliest-index-wins, and the result is a pure function of
   the index range, byte-identical for every chunk size and job count. *)

let chunks ~chunk n =
  if chunk < 1 then invalid_arg "Pool.chunks: chunk must be >= 1";
  let rec go start acc =
    if start >= n then List.rev acc
    else go (start + chunk) ((start, min chunk (n - start)) :: acc)
  in
  go 0 []

let default_chunk ~jobs n =
  if jobs < 1 then invalid_arg "Pool.default_chunk: jobs must be >= 1";
  if n <= 0 then 1
  else
    (* About four chunks per domain: coarse enough to amortize queue
       traffic and per-chunk setup, fine enough that a straggler chunk
       cannot idle the other domains for long.  The cap keeps single-job
       runs from degenerating into one giant task that a later [-j]
       comparison could not split. *)
    max 1 (min 64 ((n + (4 * jobs) - 1) / (4 * jobs)))

(* Tasks never let an exception escape into the worker loop: the thunk
   stores the outcome and the failure is re-raised from [mapi], picking
   the lowest submission index so the raised exception does not depend on
   scheduling. *)
let mapi pool f tasks =
  match tasks with
  | [] -> []
  | _ ->
      let arr = Array.of_list tasks in
      let n = Array.length arr in
      let results = Array.make n None in
      let failures = Array.make n None in
      let remaining = ref n in
      let settled = Condition.create () in
      (* One flag per call: with every profiling surface off, the thunks
         skip the clock reads entirely.  The always-on flight recorder
         is its own (cheaper) switch: a queue-wait span per task plus
         causality propagation, so a task executing on another domain
         still parents its spans under the submitter's open span. *)
      let profiled = Slif_obs.Registry.on () || Slif_obs.Attribution.on () in
      let fl = Slif_obs.Flight.on () in
      let sub_trace = Slif_obs.Registry.current_trace () in
      let sub_span = Slif_obs.Registry.current_span () in
      let wall0 = if profiled then Slif_obs.Clock.now_us () else 0.0 in
      let t_submit = if profiled then Slif_obs.Clock.now_us () else 0.0 in
      let t_submit_ns = if fl then Int64.to_int (Slif_obs.Clock.now_ns ()) else 0 in
      let run_task i =
        Slif_obs.Registry.with_causality ?trace:sub_trace
          ?parent:(if sub_span = 0 then None else Some sub_span)
          (fun () ->
            if fl then begin
              (* Submission-to-start as a span on the *executing*
                 domain, parented under the submitter's open span: the
                 cross-domain queue-wait linkage. *)
              let now = Int64.to_int (Slif_obs.Clock.now_ns ()) in
              Slif_obs.Flight.record_span ?trace:sub_trace
                ~id:(Slif_obs.Flight.next_id ()) ~parent:sub_span
                ~name:"pool.queue_wait" ~t0_ns:t_submit_ns ~dur_ns:(now - t_submit_ns)
                ()
            end;
            match f i arr.(i) with
            | v -> results.(i) <- Some v
            | exception e -> failures.(i) <- Some e)
      in
      let thunk i () =
        (if profiled then begin
           let t_start = Slif_obs.Clock.now_us () in
           (* Submission-to-start latency: how long the task sat queued. *)
           Slif_obs.Histogram.observe "pool.task_queue_wait_us" (t_start -. t_submit);
           run_task i;
           let dur = Slif_obs.Clock.now_us () -. t_start in
           Slif_obs.Histogram.observe "pool.task_run_us" dur;
           Slif_obs.Attribution.add Slif_obs.Attribution.Task_run dur
         end
         else run_task i);
        (* Always-on, sub-microsecond: keeps per-domain GC pressure
           counters live for the daemon without any switch. *)
        Slif_obs.Gcprof.sample ();
        Slif_obs.Lockprof.lock pool.lock;
        pool.completed <- pool.completed + 1;
        decr remaining;
        if profiled then begin
          (* Counter tracks for the trace export: queue drain and task
             completion over time. *)
          Slif_obs.Registry.sample "pool.queue_depth"
            (float_of_int (Queue.length pool.queue));
          Slif_obs.Registry.sample "pool.tasks_completed" (float_of_int pool.completed)
        end;
        if !remaining = 0 then Condition.broadcast settled;
        Slif_obs.Lockprof.unlock pool.lock
      in
      Slif_obs.Counter.add "pool.tasks" n;
      Atomic.fetch_and_add g_submitted n |> ignore;
      if pool.n_domains = 1 || n = 1 then begin
        Slif_obs.Lockprof.lock pool.lock;
        pool.submitted <- pool.submitted + n;
        Slif_obs.Lockprof.unlock pool.lock;
        for i = 0 to n - 1 do
          thunk i ()
        done
      end
      else begin
        Slif_obs.Lockprof.lock pool.lock;
        pool.submitted <- pool.submitted + n;
        for i = 0 to n - 1 do
          Queue.add (thunk i) pool.queue
        done;
        Condition.broadcast pool.work;
        (* The submitter drains the queue alongside the workers, then
           sleeps until the last in-flight task settles. *)
        while not (Queue.is_empty pool.queue) do
          let thunk = Queue.pop pool.queue in
          Slif_obs.Lockprof.unlock pool.lock;
          thunk ();
          Slif_obs.Lockprof.lock pool.lock
        done;
        while !remaining > 0 do
          (* Waiting for stragglers is idle time on the submitter. *)
          Slif_obs.Lockprof.wait pool.lock settled
        done;
        Slif_obs.Lockprof.unlock pool.lock
      end;
      Atomic.fetch_and_add g_completed n |> ignore;
      (* The submitting domain's wall denominator: each map call's span. *)
      if profiled then Slif_obs.Attribution.add_wall (Slif_obs.Clock.now_us () -. wall0);
      Array.iter (function Some e -> raise e | None -> ()) failures;
      Array.to_list (Array.map Option.get results)

let map pool f tasks = mapi pool (fun _ x -> f x) tasks

let map_seeded pool ~seed f tasks =
  mapi pool (fun i task -> f (Prng.derive ~root:seed i) task) tasks
