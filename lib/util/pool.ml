(* Work queue shared by the submitter and the worker domains.  Tasks are
   packaged as [unit -> unit] thunks that write into a per-call results
   array, so one queue serves map calls of any element type.  Everything
   below the public API is guarded by one mutex; the hot path (the task
   bodies) runs without it. *)

type t = {
  n_jobs : int;
  queue : (unit -> unit) Queue.t;
  mu : Mutex.t;
  work : Condition.t;            (* signalled when tasks arrive or at shutdown *)
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let default_jobs () = Domain.recommended_domain_count ()

let rec worker_loop pool =
  Mutex.lock pool.mu;
  while Queue.is_empty pool.queue && not pool.stop do
    Condition.wait pool.work pool.mu
  done;
  if Queue.is_empty pool.queue then Mutex.unlock pool.mu (* stop requested *)
  else begin
    let thunk = Queue.pop pool.queue in
    Mutex.unlock pool.mu;
    thunk ();
    worker_loop pool
  end

let create ?jobs () =
  let n_jobs = match jobs with Some j -> j | None -> default_jobs () in
  if n_jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let pool =
    {
      n_jobs;
      queue = Queue.create ();
      mu = Mutex.create ();
      work = Condition.create ();
      stop = false;
      workers = [];
    }
  in
  pool.workers <- List.init (n_jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let jobs t = t.n_jobs

let shutdown t =
  Mutex.lock t.mu;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mu;
  let workers = t.workers in
  t.workers <- [];
  List.iter Domain.join workers

let with_pool ?jobs f =
  let pool = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* Tasks never let an exception escape into the worker loop: the thunk
   stores the outcome and the failure is re-raised from [mapi], picking
   the lowest submission index so the raised exception does not depend on
   scheduling. *)
let mapi pool f tasks =
  match tasks with
  | [] -> []
  | _ ->
      let arr = Array.of_list tasks in
      let n = Array.length arr in
      let results = Array.make n None in
      let failures = Array.make n None in
      let remaining = ref n in
      let settled = Condition.create () in
      let thunk i () =
        (match f i arr.(i) with
        | v -> results.(i) <- Some v
        | exception e -> failures.(i) <- Some e);
        Mutex.lock pool.mu;
        decr remaining;
        if !remaining = 0 then Condition.broadcast settled;
        Mutex.unlock pool.mu
      in
      if pool.n_jobs = 1 || n = 1 then
        for i = 0 to n - 1 do
          thunk i ()
        done
      else begin
        Mutex.lock pool.mu;
        for i = 0 to n - 1 do
          Queue.add (thunk i) pool.queue
        done;
        Condition.broadcast pool.work;
        (* The submitter drains the queue alongside the workers, then
           sleeps until the last in-flight task settles. *)
        while not (Queue.is_empty pool.queue) do
          let thunk = Queue.pop pool.queue in
          Mutex.unlock pool.mu;
          thunk ();
          Mutex.lock pool.mu
        done;
        while !remaining > 0 do
          Condition.wait settled pool.mu
        done;
        Mutex.unlock pool.mu
      end;
      Array.iter (function Some e -> raise e | None -> ()) failures;
      Array.to_list (Array.map Option.get results)

let map pool f tasks = mapi pool (fun _ x -> f x) tasks

let map_seeded pool ~seed f tasks =
  mapi pool (fun i task -> f (Prng.derive ~root:seed i) task) tasks
