(** Deterministic pseudo-random number generator (SplitMix64).

    The partitioning heuristics (simulated annealing, random restarts) must
    be reproducible across runs and platforms, so they use this explicit
    generator instead of the ambient [Random] state.

    {2 Per-task state}

    There is deliberately no module-level generator state: every stream
    lives in an explicit [t], owned by exactly one task.  Parallel sweeps
    ({!Pool.map_seeded}) give task [i] the stream [derive ~root i], so the
    draws a task sees are a pure function of [(root, i)] — independent of
    how many domains run the sweep, of scheduling order, and of every
    other task.

    {2 Seed-derivation scheme}

    [derive ~root i] hashes the root and the task index through two
    applications of the SplitMix64 finalizer [mix64]:

    {[ state_i = mix64 (mix64 root lxor ((i + 1) * 0x9E3779B97F4A7C15)) ]}

    Hashing (rather than offsetting the root state by [i] gammas) keeps
    the streams of neighboring indices unrelated: with a plain offset,
    stream [i+1] would be stream [i] advanced by one draw. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator from [seed]. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val int : t -> int -> int
(** [int t bound] draws a uniform integer in [0, bound).
    Raises [Invalid_argument] when [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] draws a uniform float in [0, bound). *)

val bool : t -> bool
(** [bool t] draws a uniform boolean. *)

val split : t -> t
(** [split t] derives a new independent generator, advancing [t]. *)

val derive : root:int -> int -> t
(** [derive ~root index] is the private generator of task [index] under
    root seed [root] (see the seed-derivation scheme above).  Unlike
    {!split} it consults no shared state: any task can derive its own
    stream from the pair alone.  Raises [Invalid_argument] when [index]
    is negative. *)
