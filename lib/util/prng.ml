type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 finalizer (Steele, Lea, Flood 2014). *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: non-positive bound";
  let mask = Int64.shift_right_logical (next t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

let float t bound =
  let bits53 = Int64.shift_right_logical (next t) 11 in
  Int64.to_float bits53 /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next t) 1L = 1L

let split t = { state = next t }

(* Double-mix derivation: hashing both the root and the index through the
   finalizer puts stream [i] and stream [i+1] at unrelated points of the
   SplitMix64 state space.  The naive [base + i * gamma] scheme would make
   stream [i+1] equal to stream [i] shifted by one draw — exactly the
   cross-task correlation per-task generators exist to rule out. *)
let derive ~root index =
  if index < 0 then invalid_arg "Prng.derive: negative index";
  let base = mix64 (Int64.of_int root) in
  let salt = Int64.mul golden_gamma (Int64.of_int (index + 1)) in
  { state = mix64 (Int64.logxor base salt) }
