lib/specs/registry.ml: List Spec_ans Spec_ether Spec_fuzzy Spec_vol String
