lib/specs/spec_ether.ml:
