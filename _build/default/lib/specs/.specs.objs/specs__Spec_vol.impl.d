lib/specs/spec_vol.ml:
