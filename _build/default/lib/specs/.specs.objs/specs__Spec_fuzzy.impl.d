lib/specs/spec_fuzzy.ml:
