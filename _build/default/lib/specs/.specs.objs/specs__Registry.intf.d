lib/specs/registry.mli:
