lib/specs/spec_ans.ml:
