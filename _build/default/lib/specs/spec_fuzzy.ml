(** The fuzzy-logic controller benchmark ([fuzzy] in Figure 4).

    Expanded from the paper's Figure 1 fragment: two sampled inputs are
    fuzzified against 384-entry membership-rule tables, the truncated
    memberships are convolved, a centroid defuzzifies the result, and the
    output is smoothed and clipped before driving [out1].  A self-test
    process exercises the rule tables in the background. *)

let name = "fuzzy"

let text =
  {|-- Fuzzy-logic controller (paper Figure 1, completed).
entity fuzzycontroller is
  port (
    in1  : in integer range 0 to 255;
    in2  : in integer range 0 to 255;
    out1 : out integer range 0 to 255;
    mode_pin : in integer range 0 to 3;
    alarm    : out boolean );
end;

architecture behavior of fuzzycontroller is
  type mr_array  is array (1 to 384) of integer range 0 to 255;
  type tmr_array is array (1 to 128) of integer range 0 to 255;
  type conv_array is array (1 to 128) of integer range 0 to 511;
  type gain_array is array (0 to 3) of integer range 0 to 15;

  -- Sampled inputs and their history.
  shared variable in1val   : integer range 0 to 255;
  shared variable in2val   : integer range 0 to 255;
  shared variable in1prev  : integer range 0 to 255;
  shared variable in2prev  : integer range 0 to 255;
  shared variable delta1   : integer range -255 to 255;
  shared variable delta2   : integer range -255 to 255;

  -- Membership rules and their truncated forms.
  shared variable mr1  : mr_array;
  shared variable mr2  : mr_array;
  shared variable tmr1 : tmr_array;
  shared variable tmr2 : tmr_array;
  shared variable conv : conv_array;

  -- Defuzzification accumulators.
  shared variable weight_sum : integer;
  shared variable area_sum   : integer;
  shared variable centroid   : integer range 0 to 255;

  -- Output conditioning.
  shared variable out1val    : integer range 0 to 255;
  shared variable prev_out   : integer range 0 to 255;
  shared variable smooth_acc : integer;
  shared variable deadband   : integer range 0 to 31;

  -- Configuration and status.
  shared variable gain_table : gain_array;
  shared variable rule_gain  : integer range 0 to 15;
  shared variable mode       : integer range 0 to 3;
  shared variable init_done  : boolean;
  shared variable err_code   : integer range 0 to 7;
  shared variable test_phase : integer range 0 to 2;
  shared variable test_sum   : integer;

  -- Input linearization.
  type lin_array is array (1 to 32) of integer range 0 to 255;
  shared variable lin_table   : lin_array;
  shared variable lin_ready   : boolean;

  -- Closed-loop gain adaptation.
  shared variable setpoint    : integer range 0 to 255;
  shared variable loop_error  : integer range -255 to 255;
  shared variable error_acc   : integer;
  shared variable adapt_count : integer range 0 to 255;

  -- Output hysteresis state.
  shared variable hyst_band   : integer range 0 to 31;
  shared variable hyst_state  : integer range 0 to 2;

  -- Diagnostics.
  shared variable diag_cycles : integer;
  shared variable diag_worst  : integer range 0 to 255;

  function min2(a : in integer; b : in integer) return integer is
  begin
    if a < b then
      return a;
    else
      return b;
    end if;
  end min2;

  function max2(a : in integer; b : in integer) return integer is
  begin
    if a > b then
      return a;
    else
      return b;
    end if;
  end max2;

  -- Triangular membership functions: three overlapping ramps per input.
  procedure init_rules is
    variable peak : integer;
  begin
    for i in 1 to 128 loop
      peak := min2(2 * i, 255);
      mr1(i) := peak;
      mr2(i) := 255 - peak;
    end loop;
    for i in 129 to 256 loop
      peak := max2(511 - 2 * i, 0);
      mr1(i) := peak;
      mr2(i) := min2(2 * i - 256, 255);
    end loop;
    for i in 257 to 384 loop
      mr1(i) := max2(767 - 2 * i, 0);
      mr2(i) := max2(2 * i - 512, 0);
    end loop;
    rule_gain := gain_table(mode);
  end init_rules;

  -- Figure 1's EvaluateRule: truncate one input's membership rules.
  procedure evaluate_rule(num : in integer) is
    variable trunc : integer;
  begin
    if num = 1 then
      trunc := min2(mr1(in1val), mr1(128 + in1val));
    elsif num = 2 then
      trunc := min2(mr2(in2val), mr2(128 + in2val));
    end if;
    for i in 1 to 128 loop
      if num = 1 then
        tmr1(i) := min2(trunc, mr1(256 + i));
      elsif num = 2 then
        tmr2(i) := min2(trunc, mr2(256 + i));
      end if;
    end loop;
  end evaluate_rule;

  -- Combine both truncated rules, weighted by the configured gain.
  procedure convolve is
    variable mixed : integer;
  begin
    for i in 1 to 128 loop
      mixed := max2(tmr1(i), tmr2(i)) + min2(tmr1(i), tmr2(i)) / 2;
      conv(i) := min2(mixed * rule_gain / 8, 511);
    end loop;
  end convolve;

  function compute_centroid return integer is
  begin
    weight_sum := 0;
    area_sum := 0;
    for i in 1 to 128 loop
      weight_sum := weight_sum + conv(i) * i;
      area_sum := area_sum + conv(i);
    end loop;
    if area_sum = 0 then
      err_code := 3;
      return prev_out;
    end if;
    return min2(2 * (weight_sum / area_sum), 255);
  end compute_centroid;

  -- First-order smoothing of the defuzzified output.
  procedure smooth_output is
  begin
    smooth_acc := 3 * prev_out + centroid;
    out1val := smooth_acc / 4;
    prev_out := out1val;
  end smooth_output;

  -- Suppress changes within the configured deadband.
  procedure clip_output is
    variable change : integer;
  begin
    change := out1val - prev_out;
    if change < 0 then
      change := 0 - change;
    end if;
    if change < deadband then
      out1val := prev_out;
    end if;
    if out1val > 250 then
      err_code := 1;
    end if;
  end clip_output;

  -- Track input slew rates; a large step raises the alarm.
  procedure track_inputs is
  begin
    delta1 := in1val - in1prev;
    delta2 := in2val - in2prev;
    in1prev := in1val;
    in2prev := in2val;
    if delta1 > 200 or delta2 > 200 then
      err_code := 2;
    end if;
  end track_inputs;

  -- Piecewise-linear sensor correction: build the table once, then map
  -- each raw sample through it.
  procedure init_linearization is
    variable slope : integer;
  begin
    for i in 1 to 32 loop
      slope := 8 - abs (i - 16) / 4;
      lin_table(i) := min2(i * slope, 255);
    end loop;
    lin_ready := true;
  end init_linearization;

  function linearize(raw : in integer) return integer is
    variable seg : integer;
    variable base : integer;
  begin
    seg := raw / 8 + 1;
    if seg > 32 then
      seg := 32;
    end if;
    base := lin_table(seg);
    return min2(base + raw mod 8, 255);
  end linearize;

  -- Slow integral adaptation of the rule gain toward the setpoint.
  procedure adapt_gain is
  begin
    loop_error := setpoint - out1val;
    error_acc := error_acc + loop_error;
    adapt_count := (adapt_count + 1) mod 256;
    if adapt_count = 0 then
      if error_acc > 512 and rule_gain < 15 then
        rule_gain := rule_gain + 1;
      elsif error_acc < -512 and rule_gain > 1 then
        rule_gain := rule_gain - 1;
      end if;
      error_acc := 0;
    end if;
  end adapt_gain;

  -- Three-state hysteresis on the conditioned output.
  procedure apply_hysteresis is
  begin
    if hyst_state = 0 then
      if out1val > prev_out + hyst_band then
        hyst_state := 1;
      elsif out1val + hyst_band < prev_out then
        hyst_state := 2;
      end if;
    elsif hyst_state = 1 then
      if out1val + hyst_band < prev_out then
        hyst_state := 0;
        out1val := prev_out;
      end if;
    else
      if out1val > prev_out + hyst_band then
        hyst_state := 0;
        out1val := prev_out;
      end if;
    end if;
  end apply_hysteresis;

begin
  fuzzymain: process
  begin
    if init_done = false then
      init_rules;
      init_linearization;
      init_done := true;
    end if;
    mode := mode_pin;
    in1val := linearize(in1);
    in2val := linearize(in2);
    track_inputs;
    evaluate_rule(1);
    evaluate_rule(2);
    convolve;
    centroid := compute_centroid;
    smooth_output;
    clip_output;
    apply_hysteresis;
    adapt_gain;
    out1 <= out1val;
    alarm <= err_code > 0;
    wait for 100 us;
  end process;

  -- Long-horizon diagnostics: track the worst smoothing error seen and
  -- periodically cross-check the linearization table.
  diagnostics: process
    variable observed : integer;
  begin
    diag_cycles := diag_cycles + 1;
    observed := abs (centroid - out1val);
    if observed > diag_worst then
      diag_worst := observed;
    end if;
    if diag_cycles mod 64 = 0 then
      if lin_ready = true and lin_table(16) = 0 then
        err_code := 5;
      end if;
      if diag_worst > 128 then
        err_code := 6;
      end if;
      diag_worst := 0;
    end if;
    wait for 10 ms;
  end process;

  selftest: process
  begin
    test_sum := 0;
    if test_phase = 0 then
      for i in 1 to 64 loop
        test_sum := test_sum + mr1(i);
      end loop;
    elsif test_phase = 1 then
      for i in 1 to 64 loop
        test_sum := test_sum + mr2(i);
      end loop;
    else
      test_sum := tmr1(1) + tmr2(1);
    end if;
    if test_sum = 0 and init_done = true then
      err_code := 4;
    end if;
    test_phase := (test_phase + 1) mod 3;
    wait for 1 ms;
  end process;
end;
|}
