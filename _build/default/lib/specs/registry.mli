(** The four benchmark specifications of the paper's Figure 4. *)

type spec = {
  spec_name : string;     (* ans | ether | fuzzy | vol *)
  source : string;        (* VHDL-subset text *)
  paper_lines : int;      (* columns of the paper's Figure 4 *)
  paper_bv : int;
  paper_c : int;
}

val all : spec list
(** In the paper's order: ans, ether, fuzzy, vol. *)

val find : string -> spec option

val find_exn : string -> spec
(** Raises [Not_found]. *)

val line_count : spec -> int
(** Number of non-empty source lines (the paper's "Lines" column). *)
