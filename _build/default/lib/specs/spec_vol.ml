(** The volume-measuring medical instrument benchmark ([vol] in Figure 4).

    A spirometer-style instrument: a flow sensor is sampled continuously,
    a median-of-three filter rejects spikes, flow is integrated into a
    volume, breath start/end detection segments the signal, and results
    are scaled for a 7-segment display with limit alarms and a
    pushbutton-triggered calibration cycle. *)

let name = "vol"

let text =
  {|-- Volume-measuring medical instrument.
entity volmeter is
  port (
    flow_in    : in integer range 0 to 1023;
    patient_on : in boolean;
    cal_btn    : in boolean;
    display_out : out integer range 0 to 9999;
    alarm_out   : out boolean;
    ready_out   : out boolean );
end;

architecture behavior of volmeter is
  type sample_buf is array (1 to 16) of integer range 0 to 1023;

  -- Acquisition state.
  shared variable raw_sample  : integer range 0 to 1023;
  shared variable filt_sample : integer range 0 to 1023;
  shared variable window      : sample_buf;
  shared variable wr_index    : integer range 1 to 16;

  -- Calibration.
  shared variable cal_offset  : integer range 0 to 255;
  shared variable cal_gain    : integer range 1 to 255;
  shared variable cal_pending : boolean;

  -- Integration and breath segmentation.
  shared variable volume_acc   : integer;
  shared variable breath_vol   : integer;
  shared variable in_breath    : boolean;
  shared variable breath_count : integer range 0 to 255;
  shared variable flow_thresh  : integer range 0 to 1023;

  -- Results and display.
  shared variable display_val : integer range 0 to 9999;
  shared variable peak_flow   : integer range 0 to 1023;
  shared variable alarm_flag  : boolean;
  shared variable limit_high  : integer;
  shared variable limit_low   : integer;
  shared variable status      : integer range 0 to 7;

  -- Temperature compensation (BTPS correction).
  shared variable temp_raw    : integer range 0 to 255;
  shared variable temp_factor : integer range 64 to 192;

  -- Battery supervision.
  shared variable batt_level  : integer range 0 to 255;
  shared variable batt_low    : boolean;

  function median3(a : in integer; b : in integer; c : in integer) return integer is
  begin
    if a > b then
      if b > c then
        return b;
      elsif a > c then
        return c;
      else
        return a;
      end if;
    else
      if a > c then
        return a;
      elsif b > c then
        return c;
      else
        return b;
      end if;
    end if;
  end median3;

  -- Read the sensor, correct by calibration, and spike-filter.
  procedure sample_flow is
    variable corrected : integer;
    variable prev1 : integer;
    variable prev2 : integer;
  begin
    raw_sample := flow_in;
    corrected := (raw_sample - cal_offset) * cal_gain / 128;
    if corrected < 0 then
      corrected := 0;
    end if;
    prev1 := window(wr_index);
    if wr_index > 1 then
      prev2 := window(wr_index - 1);
    else
      prev2 := window(16);
    end if;
    filt_sample := median3(corrected, prev1, prev2);
    wr_index := wr_index mod 16 + 1;
    window(wr_index) := filt_sample;
  end sample_flow;

  -- Trapezoidal integration of filtered flow into the running volume.
  procedure integrate_step is
  begin
    volume_acc := volume_acc + filt_sample;
    if filt_sample > peak_flow then
      peak_flow := filt_sample;
    end if;
  end integrate_step;

  -- Breath segmentation with hysteresis around the threshold.
  procedure detect_breath is
  begin
    if in_breath = false and filt_sample > flow_thresh + 16 then
      in_breath := true;
      volume_acc := 0;
      peak_flow := 0;
    elsif in_breath = true and filt_sample < flow_thresh - 16 then
      in_breath := false;
      breath_vol := volume_acc;
      breath_count := (breath_count + 1) mod 256;
    end if;
  end detect_breath;

  -- Scale the final volume to display units (centiliters).
  procedure update_display is
    variable scaled : integer;
  begin
    scaled := breath_vol / 50;
    if scaled > 9999 then
      scaled := 9999;
      status := 5;
    end if;
    display_val := scaled;
  end update_display;

  procedure check_limits is
  begin
    alarm_flag := false;
    if breath_vol > limit_high then
      alarm_flag := true;
      status := 2;
    end if;
    if breath_vol < limit_low and breath_count > 0 then
      alarm_flag := true;
      status := 3;
    end if;
  end check_limits;

  -- Zero-flow calibration cycle: average 16 idle samples.
  procedure calibrate is
    variable acc : integer;
  begin
    acc := 0;
    for i in 1 to 16 loop
      acc := acc + window(i);
    end loop;
    cal_offset := acc / 16;
    if cal_offset > 200 then
      status := 4;
      cal_offset := 200;
    end if;
    cal_pending := false;
  end calibrate;

  -- Body-temperature (BTPS) correction of the integrated volume: gas
  -- expands between the sensor and body conditions.
  procedure compensate_temperature is
  begin
    temp_factor := 128 + (37 - temp_raw / 8) * 2;
    if temp_factor < 64 then
      temp_factor := 64;
    elsif temp_factor > 192 then
      temp_factor := 192;
    end if;
    breath_vol := breath_vol * temp_factor / 128;
  end compensate_temperature;

  -- Low-battery detection with a latching flag below 20%.
  procedure check_battery is
  begin
    batt_level := batt_level - batt_level / 64;
    if batt_level < 51 then
      batt_low := true;
      status := 6;
    end if;
  end check_battery;

begin
  volmain: process
  begin
    if cal_btn = true then
      cal_pending := true;
    end if;
    if patient_on = true then
      sample_flow;
      integrate_step;
      detect_breath;
      if in_breath = false then
        compensate_temperature;
        update_display;
        check_limits;
      end if;
      check_battery;
    elsif cal_pending = true then
      sample_flow;
      calibrate;
    end if;
    wait for 10 ms;
  end process;

  display_drv: process
  begin
    display_out <= display_val;
    alarm_out <= alarm_flag;
    ready_out <= patient_on and in_breath = false;
    wait for 50 ms;
  end process;
end;
|}
