type spec = {
  spec_name : string;
  source : string;
  paper_lines : int;
  paper_bv : int;
  paper_c : int;
}

let all =
  [
    {
      spec_name = Spec_ans.name;
      source = Spec_ans.text;
      paper_lines = 632;
      paper_bv = 45;
      paper_c = 64;
    };
    {
      spec_name = Spec_ether.name;
      source = Spec_ether.text;
      paper_lines = 1021;
      paper_bv = 123;
      paper_c = 112;
    };
    {
      spec_name = Spec_fuzzy.name;
      source = Spec_fuzzy.text;
      paper_lines = 350;
      paper_bv = 35;
      paper_c = 56;
    };
    {
      spec_name = Spec_vol.name;
      source = Spec_vol.text;
      paper_lines = 214;
      paper_bv = 30;
      paper_c = 41;
    };
  ]

let find name = List.find_opt (fun s -> s.spec_name = name) all

let find_exn name =
  match find name with Some s -> s | None -> raise Not_found

let line_count spec =
  String.split_on_char '\n' spec.source
  |> List.filter (fun l -> String.trim l <> "")
  |> List.length
