(** The ethernet coprocessor benchmark ([ether] in Figure 4).

    A MAC-layer coprocessor: a transmit path (host FIFO, preamble
    generation, bytewise CRC-32, truncated binary exponential backoff), a
    receive path (preamble sync, destination-address filtering against a
    unicast address and a small multicast table, CRC check, receive FIFO),
    a control/status register bank driven by host commands (delivered by
    message passing), and a statistics block.  This is the largest of the
    four specifications, dominated by its register file — which is what
    pushes its BV count far above its channel count, as in the paper. *)

let name = "ether"

let text =
  {|-- Ethernet MAC coprocessor.
entity ethercop is
  port (
    -- Host side.
    host_data_in  : in integer range 0 to 255;
    host_data_out : out integer range 0 to 255;
    host_cmd      : in integer range 0 to 15;
    host_irq      : out boolean;
    -- Medium side.
    rx_bit_in     : in integer range 0 to 1;
    tx_bit_out    : out integer range 0 to 1;
    carrier_sense : in boolean;
    collision_in  : in boolean;
    link_ok       : out boolean );
end;

architecture behavior of ethercop is
  type fifo_mem   is array (1 to 1536) of integer range 0 to 255;
  type mcast_tab  is array (1 to 8) of integer range 0 to 255;
  type crc_tab    is array (0 to 255) of integer;

  -- ---- Transmit datapath state ----
  shared variable tx_fifo      : fifo_mem;
  shared variable tx_head      : integer range 0 to 1536;
  shared variable tx_tail      : integer range 0 to 1536;
  shared variable tx_count     : integer range 0 to 1536;
  shared variable tx_byte      : integer range 0 to 255;
  shared variable tx_bitpos    : integer range 0 to 7;
  shared variable tx_crc       : integer;
  shared variable tx_state     : integer range 0 to 7;
  shared variable tx_frame_len : integer range 0 to 1536;
  shared variable tx_sent      : integer range 0 to 1536;
  shared variable tx_busy      : boolean;
  shared variable tx_done      : boolean;
  shared variable tx_underrun  : boolean;

  -- ---- Collision and backoff state ----
  shared variable retry_count  : integer range 0 to 15;
  shared variable backoff_slots : integer;
  shared variable backoff_timer : integer;
  shared variable jam_counter  : integer range 0 to 63;
  shared variable lfsr         : integer;
  shared variable defer_flag   : boolean;
  shared variable excess_coll  : boolean;

  -- ---- Receive datapath state ----
  shared variable rx_fifo      : fifo_mem;
  shared variable rx_head      : integer range 0 to 1536;
  shared variable rx_tail      : integer range 0 to 1536;
  shared variable rx_count     : integer range 0 to 1536;
  shared variable rx_byte      : integer range 0 to 255;
  shared variable rx_bitpos    : integer range 0 to 7;
  shared variable rx_crc       : integer;
  shared variable rx_state     : integer range 0 to 7;
  shared variable rx_frame_len : integer range 0 to 1536;
  shared variable rx_sync_cnt  : integer range 0 to 63;
  shared variable rx_drop      : boolean;
  shared variable rx_ready     : boolean;
  shared variable rx_overflow  : boolean;

  -- ---- Address recognition ----
  shared variable mac_addr0    : integer range 0 to 255;
  shared variable mac_addr1    : integer range 0 to 255;
  shared variable mac_addr2    : integer range 0 to 255;
  shared variable mac_addr3    : integer range 0 to 255;
  shared variable mac_addr4    : integer range 0 to 255;
  shared variable mac_addr5    : integer range 0 to 255;
  shared variable mcast_table  : mcast_tab;
  shared variable mcast_count  : integer range 0 to 8;
  shared variable addr_byte_ix : integer range 0 to 5;
  shared variable addr_match   : boolean;
  shared variable bcast_match  : boolean;
  shared variable promiscuous  : boolean;

  -- ---- CRC support ----
  shared variable crc_table    : crc_tab;
  shared variable crc_init_done : boolean;

  -- ---- Control / status registers ----
  shared variable csr_enable_tx : boolean;
  shared variable csr_enable_rx : boolean;
  shared variable csr_loopback  : boolean;
  shared variable csr_irq_mask  : integer range 0 to 15;
  shared variable csr_irq_pend  : integer range 0 to 15;
  shared variable csr_cmd_arg   : integer range 0 to 255;
  shared variable csr_result    : integer range 0 to 255;
  shared variable link_state    : boolean;
  shared variable duplex_full   : boolean;

  -- ---- Statistics counters ----
  shared variable stat_tx_frames : integer;
  shared variable stat_tx_octets : integer;
  shared variable stat_rx_frames : integer;
  shared variable stat_rx_octets : integer;
  shared variable stat_crc_errs  : integer;
  shared variable stat_collisions : integer;
  shared variable stat_drops     : integer;
  shared variable stat_deferrals : integer;
  shared variable stat_runts     : integer;
  shared variable stat_giants    : integer;

  -- ---- MII management interface (PHY register access) ----
  shared variable mii_clk_div   : integer range 1 to 64;
  shared variable mii_phy_addr  : integer range 0 to 31;
  shared variable mii_reg_addr  : integer range 0 to 31;
  shared variable mii_data_wr   : integer range 0 to 65535;
  shared variable mii_data_rd   : integer range 0 to 65535;
  shared variable mii_shift     : integer;
  shared variable mii_busy      : boolean;
  shared variable mii_op_write  : boolean;
  shared variable phy_status    : integer range 0 to 65535;
  shared variable phy_autoneg   : boolean;

  -- ---- Flow control (802.3x pause frames) ----
  shared variable flow_ctrl_en   : boolean;
  shared variable pause_timer    : integer;
  shared variable pause_quanta   : integer range 0 to 65535;
  shared variable pause_requested : boolean;
  shared variable pause_frames_rx : integer;

  -- ---- Configuration EEPROM shadow ----
  shared variable eeprom_mem    : mcast_tab;
  shared variable eeprom_addr   : integer range 0 to 255;
  shared variable eeprom_loaded : boolean;
  shared variable config_word   : integer range 0 to 255;

  -- ---- Inter-frame gap and deferral ----
  shared variable ifg_timer     : integer range 0 to 255;
  shared variable ifg_len       : integer range 0 to 255;

  -- ---- Transmit descriptor ring ----
  type txd_tab is array (1 to 16) of integer range 0 to 1536;
  shared variable txd_lengths   : txd_tab;
  shared variable txd_head_ix   : integer range 1 to 16;
  shared variable txd_tail_ix   : integer range 1 to 16;
  shared variable txd_pending   : integer range 0 to 16;

  -- ---- Frame-size histogram and extended statistics ----
  shared variable size_hist_64   : integer;
  shared variable size_hist_128  : integer;
  shared variable size_hist_256  : integer;
  shared variable size_hist_512  : integer;
  shared variable size_hist_1024 : integer;
  shared variable size_hist_1518 : integer;
  shared variable stat_broadcast : integer;
  shared variable stat_multicast : integer;
  shared variable stat_late_coll : integer;
  shared variable stat_tx_errors : integer;
  shared variable stat_summary   : integer;

  -- ---- Loopback self-test ----
  shared variable lb_pattern    : integer range 0 to 255;
  shared variable lb_errors     : integer range 0 to 255;
  shared variable lb_running    : boolean;

  -- ---- Receive descriptor ring ----
  type rxd_tab is array (1 to 16) of integer range 0 to 1536;
  shared variable rxd_lengths   : rxd_tab;
  shared variable rxd_head_ix   : integer range 1 to 16;
  shared variable rxd_tail_ix   : integer range 1 to 16;
  shared variable rxd_pending   : integer range 0 to 16;

  -- ---- Interrupt moderation ----
  shared variable irq_holdoff   : integer range 0 to 255;
  shared variable irq_batch     : integer range 0 to 255;
  shared variable irq_timer     : integer;

  -- ---- Heartbeat (SQE) supervision ----
  shared variable sqe_expected  : boolean;
  shared variable sqe_seen      : boolean;
  shared variable sqe_failures  : integer range 0 to 255;

  -- ---- Host DMA engine state ----
  shared variable dma_active    : boolean;
  shared variable dma_addr      : integer;
  shared variable dma_remaining : integer range 0 to 1536;
  shared variable dma_burst     : integer range 1 to 64;

  -- ---- Transmit padding and jabber protection ----
  shared variable pad_enable    : boolean;
  shared variable pad_count     : integer range 0 to 64;
  shared variable jabber_timer  : integer;
  shared variable jabber_limit  : integer;
  shared variable jabber_tripped : boolean;
  shared variable stat_pads     : integer;
  shared variable stat_jabbers  : integer;

  -- Build the byte-indexed CRC-32 remainder table once at startup.
  procedure init_crc_table is
    variable crc : integer;
  begin
    for n in 0 to 255 loop
      crc := n;
      for k in 1 to 8 loop
        if crc mod 2 = 1 then
          crc := crc / 2 + 79764919;
        else
          crc := crc / 2;
        end if;
      end loop;
      crc_table(n) := crc;
    end loop;
    crc_init_done := true;
  end init_crc_table;

  -- One byte step of the table-driven CRC.
  function crc_step(crc : in integer; data : in integer) return integer is
    variable index : integer;
  begin
    index := (crc + data) mod 256;
    return crc / 256 + crc_table(index);
  end crc_step;

  -- Pseudo-random slot count for truncated binary exponential backoff.
  function backoff_random(bound : in integer) return integer is
  begin
    lfsr := (lfsr * 5 + 1) mod 65536;
    return lfsr mod bound;
  end backoff_random;

  -- ---- Transmit helpers ----

  procedure tx_fifo_push(b : in integer) is
  begin
    if tx_count >= 1536 then
      tx_underrun := true;
    else
      tx_tail := tx_tail mod 1536 + 1;
      tx_fifo(tx_tail) := b;
      tx_count := tx_count + 1;
    end if;
  end tx_fifo_push;

  function tx_fifo_pop return integer is
    variable b : integer;
  begin
    if tx_count = 0 then
      tx_underrun := true;
      return 0;
    end if;
    tx_head := tx_head mod 1536 + 1;
    b := tx_fifo(tx_head);
    tx_count := tx_count - 1;
    return b;
  end tx_fifo_pop;

  -- Send 7 preamble bytes plus the start-frame delimiter, bit by bit.
  procedure tx_preamble is
  begin
    for i in 1 to 62 loop
      tx_bit_out <= (i + 1) mod 2;
      wait for 100 ns;
    end loop;
    tx_bit_out <= 1;
    wait for 100 ns;
    tx_bit_out <= 1;
    wait for 100 ns;
  end tx_preamble;

  -- Serialize one byte, LSB first, watching for collisions.
  procedure tx_send_byte(b : in integer) is
    variable shreg : integer;
  begin
    shreg := b;
    for i in 0 to 7 loop
      tx_bit_out <= shreg mod 2;
      shreg := shreg / 2;
      if collision_in = true then
        tx_state := 4;
      end if;
      wait for 100 ns;
    end loop;
    tx_crc := crc_step(tx_crc, b);
    tx_sent := tx_sent + 1;
  end tx_send_byte;

  -- Jam then wait a random number of slot times.
  procedure tx_backoff is
  begin
    stat_collisions := stat_collisions + 1;
    for j in 1 to 32 loop
      tx_bit_out <= 1;
      wait for 100 ns;
    end loop;
    retry_count := retry_count + 1;
    if retry_count > 15 then
      excess_coll := true;
      tx_state := 0;
      return;
    end if;
    if retry_count < 10 then
      backoff_slots := backoff_random(2 * retry_count + 2);
    else
      backoff_slots := backoff_random(1024);
    end if;
    backoff_timer := backoff_slots * 512;
    while backoff_timer > 0 loop
      backoff_timer := backoff_timer - 1;
    end loop;
  end tx_backoff;

  -- Append the 4 CRC octets to the outgoing frame.
  procedure tx_send_crc is
    variable crc_out : integer;
  begin
    crc_out := tx_crc;
    for i in 1 to 4 loop
      tx_send_byte(crc_out mod 256);
      crc_out := crc_out / 256;
    end loop;
  end tx_send_crc;

  -- ---- Receive helpers ----

  procedure rx_fifo_push(b : in integer) is
  begin
    if rx_count >= 1536 then
      rx_overflow := true;
      stat_drops := stat_drops + 1;
    else
      rx_tail := rx_tail mod 1536 + 1;
      rx_fifo(rx_tail) := b;
      rx_count := rx_count + 1;
    end if;
  end rx_fifo_push;

  function rx_fifo_pop return integer is
    variable b : integer;
  begin
    if rx_count = 0 then
      return 0;
    end if;
    rx_head := rx_head mod 1536 + 1;
    b := rx_fifo(rx_head);
    rx_count := rx_count - 1;
    return b;
  end rx_fifo_pop;

  -- Hunt for the 1010... preamble and the 11 start-frame delimiter.
  procedure rx_sync is
    variable expected : integer;
  begin
    rx_sync_cnt := 0;
    expected := 1;
    while rx_sync_cnt < 48 loop
      if rx_bit_in = expected then
        rx_sync_cnt := rx_sync_cnt + 1;
        expected := 1 - expected;
      else
        rx_sync_cnt := 0;
        expected := 1;
      end if;
      wait for 100 ns;
    end loop;
    while rx_bit_in = 0 loop
      wait for 100 ns;
    end loop;
    rx_state := 1;
  end rx_sync;

  -- Deserialize one byte from the medium, LSB first.
  procedure rx_get_byte is
    variable acc : integer;
    variable weight : integer;
  begin
    acc := 0;
    weight := 1;
    for i in 0 to 7 loop
      acc := acc + rx_bit_in * weight;
      weight := weight * 2;
      wait for 100 ns;
    end loop;
    rx_byte := acc;
  end rx_get_byte;

  -- Match one destination-address byte against unicast/broadcast/mcast.
  procedure rx_filter_byte is
    variable want : integer;
  begin
    if addr_byte_ix = 0 then
      want := mac_addr0;
    elsif addr_byte_ix = 1 then
      want := mac_addr1;
    elsif addr_byte_ix = 2 then
      want := mac_addr2;
    elsif addr_byte_ix = 3 then
      want := mac_addr3;
    elsif addr_byte_ix = 4 then
      want := mac_addr4;
    else
      want := mac_addr5;
    end if;
    if rx_byte /= want then
      addr_match := false;
    end if;
    if rx_byte /= 255 then
      bcast_match := false;
    end if;
    if addr_byte_ix = 0 and rx_byte mod 2 = 1 then
      for m in 1 to 8 loop
        if m <= mcast_count and mcast_table(m) = rx_byte then
          addr_match := true;
        end if;
      end loop;
    end if;
    addr_byte_ix := addr_byte_ix + 1;
  end rx_filter_byte;

  -- Frame-size sanity per 802.3: runts under 64, giants over 1518.
  procedure rx_classify is
  begin
    if rx_frame_len < 64 then
      stat_runts := stat_runts + 1;
      rx_drop := true;
    end if;
    if rx_frame_len > 1518 then
      stat_giants := stat_giants + 1;
      rx_drop := true;
    end if;
  end rx_classify;

  -- ---- Host command dispatch ----

  procedure exec_host_command is
  begin
    case host_cmd is
      when 1 =>
        csr_enable_tx := true;
      when 2 =>
        csr_enable_tx := false;
      when 3 =>
        csr_enable_rx := true;
      when 4 =>
        csr_enable_rx := false;
      when 5 =>
        tx_fifo_push(host_data_in);
      when 6 =>
        host_data_out <= rx_fifo_pop;
      when 7 =>
        send(tx_go, tx_frame_len);
      when 8 =>
        csr_loopback := true;
      when 9 =>
        csr_loopback := false;
      when 10 =>
        mcast_count := mcast_count mod 8 + 1;
        mcast_table(mcast_count) := host_data_in;
      when 11 =>
        promiscuous := csr_cmd_arg > 0;
      when 12 =>
        csr_result := stat_crc_errs mod 256;
      when 13 =>
        csr_result := stat_collisions mod 256;
      when 14 =>
        txd_enqueue(csr_cmd_arg * 8);
      when 15 =>
        loopback_test;
        csr_result := lb_errors;
      when others =>
        null;
    end case;
  end exec_host_command;

  procedure raise_irq(cause : in integer) is
  begin
    csr_irq_pend := csr_irq_pend + cause;
    if csr_irq_pend mod 16 > 0 and csr_irq_mask > 0 then
      host_irq <= true;
    end if;
  end raise_irq;

  -- ---- MII management helpers ----

  -- Clause-22 write: 32 preamble bits, start/op, then 16 data bits.
  procedure mii_write_reg is
    variable frame : integer;
  begin
    mii_busy := true;
    mii_op_write := true;
    frame := mii_phy_addr * 32 + mii_reg_addr;
    mii_shift := frame * 65536 + mii_data_wr;
    for i in 1 to 64 loop
      mii_shift := mii_shift * 2;
      wait for 400 ns;
    end loop;
    mii_busy := false;
  end mii_write_reg;

  procedure mii_read_reg is
    variable acc : integer;
  begin
    mii_busy := true;
    mii_op_write := false;
    acc := 0;
    for i in 1 to 16 loop
      acc := acc * 2 + rx_bit_in;
      wait for 400 ns;
    end loop;
    mii_data_rd := acc mod 65536;
    mii_busy := false;
  end mii_read_reg;

  -- Poll the PHY status register and track autonegotiation.
  procedure poll_phy is
  begin
    mii_reg_addr := 1;
    mii_read_reg;
    phy_status := mii_data_rd;
    phy_autoneg := phy_status mod 32 >= 16;
    duplex_full := phy_status mod 256 >= 128;
  end poll_phy;

  -- ---- Flow control ----

  -- Queue a pause frame: destination 01-80-C2-00-00-01, opcode 1.
  procedure send_pause_frame is
  begin
    if flow_ctrl_en = true then
      tx_fifo_push(1);
      tx_fifo_push(128);
      tx_fifo_push(194);
      tx_fifo_push(0);
      tx_fifo_push(0);
      tx_fifo_push(1);
      tx_fifo_push(pause_quanta / 256);
      tx_fifo_push(pause_quanta mod 256);
      pause_requested := false;
    end if;
  end send_pause_frame;

  -- React to a received pause frame: stall transmission for its quanta.
  procedure handle_pause_frame is
  begin
    pause_frames_rx := pause_frames_rx + 1;
    pause_timer := pause_quanta * 512;
    while pause_timer > 0 loop
      pause_timer := pause_timer - 1;
    end loop;
  end handle_pause_frame;

  -- ---- Configuration load ----

  -- Shadow the serial EEPROM into the CSR defaults at reset.
  procedure load_config is
  begin
    for a in 1 to 8 loop
      eeprom_addr := a;
      config_word := eeprom_mem(a);
      if a = 1 then
        mac_addr0 := config_word;
      elsif a = 2 then
        mac_addr1 := config_word;
      elsif a = 3 then
        mac_addr2 := config_word;
      elsif a = 4 then
        mac_addr3 := config_word;
      elsif a = 5 then
        mac_addr4 := config_word;
      elsif a = 6 then
        mac_addr5 := config_word;
      elsif a = 7 then
        flow_ctrl_en := config_word mod 2 = 1;
        promiscuous := config_word mod 4 >= 2;
      else
        ifg_len := config_word;
      end if;
    end loop;
    eeprom_loaded := true;
  end load_config;

  -- ---- Inter-frame gap ----

  procedure wait_ifg is
  begin
    ifg_timer := ifg_len;
    while ifg_timer > 0 loop
      ifg_timer := ifg_timer - 1;
      wait for 100 ns;
    end loop;
  end wait_ifg;

  -- ---- Descriptor ring ----

  procedure txd_enqueue(len : in integer) is
  begin
    if txd_pending >= 16 then
      stat_tx_errors := stat_tx_errors + 1;
    else
      txd_lengths(txd_tail_ix) := len;
      txd_tail_ix := txd_tail_ix mod 16 + 1;
      txd_pending := txd_pending + 1;
    end if;
  end txd_enqueue;

  function txd_dequeue return integer is
    variable len : integer;
  begin
    if txd_pending = 0 then
      return 0;
    end if;
    len := txd_lengths(txd_head_ix);
    txd_head_ix := txd_head_ix mod 16 + 1;
    txd_pending := txd_pending - 1;
    return len;
  end txd_dequeue;

  -- ---- Statistics helpers ----

  -- Bucket a completed frame into the RMON size histogram.
  procedure classify_size(len : in integer) is
  begin
    if len <= 64 then
      size_hist_64 := size_hist_64 + 1;
    elsif len <= 128 then
      size_hist_128 := size_hist_128 + 1;
    elsif len <= 256 then
      size_hist_256 := size_hist_256 + 1;
    elsif len <= 512 then
      size_hist_512 := size_hist_512 + 1;
    elsif len <= 1024 then
      size_hist_1024 := size_hist_1024 + 1;
    else
      size_hist_1518 := size_hist_1518 + 1;
    end if;
  end classify_size;

  -- Cast classification of an accepted frame's first address byte.
  procedure classify_cast(first_byte : in integer) is
  begin
    if first_byte = 255 then
      stat_broadcast := stat_broadcast + 1;
    elsif first_byte mod 2 = 1 then
      stat_multicast := stat_multicast + 1;
    end if;
  end classify_cast;

  -- ---- Receive descriptor ring ----

  procedure rxd_enqueue(len : in integer) is
  begin
    if rxd_pending >= 16 then
      rx_overflow := true;
      stat_drops := stat_drops + 1;
    else
      rxd_lengths(rxd_tail_ix) := len;
      rxd_tail_ix := rxd_tail_ix mod 16 + 1;
      rxd_pending := rxd_pending + 1;
    end if;
  end rxd_enqueue;

  function rxd_dequeue return integer is
    variable len : integer;
  begin
    if rxd_pending = 0 then
      return 0;
    end if;
    len := rxd_lengths(rxd_head_ix);
    rxd_head_ix := rxd_head_ix mod 16 + 1;
    rxd_pending := rxd_pending - 1;
    return len;
  end rxd_dequeue;

  -- ---- Interrupt moderation ----

  -- Batch interrupt causes: raise the host line only when the batch
  -- counter or the holdoff timer trips.
  procedure moderate_irq(cause : in integer) is
  begin
    csr_irq_pend := csr_irq_pend + cause;
    irq_batch := irq_batch + 1;
    if irq_batch >= irq_holdoff or irq_timer <= 0 then
      if csr_irq_mask > 0 then
        host_irq <= true;
      end if;
      irq_batch := 0;
      irq_timer := 1000;
    end if;
  end moderate_irq;

  -- ---- Heartbeat (SQE) supervision ----

  -- After each transmission the transceiver must pulse SQE; count
  -- misses and flag the transceiver after 8 consecutive failures.
  procedure check_sqe is
  begin
    if sqe_expected = true then
      if sqe_seen = false then
        sqe_failures := sqe_failures + 1;
        if sqe_failures >= 8 then
          link_state := false;
          raise_irq(4);
        end if;
      else
        sqe_failures := 0;
      end if;
    end if;
    sqe_expected := false;
    sqe_seen := false;
  end check_sqe;

  -- ---- Transmit padding ----

  -- 802.3 frames must carry at least 60 octets before the CRC: pad short
  -- payloads with zero octets.
  procedure tx_pad_frame is
  begin
    pad_count := 0;
    if pad_enable = true and tx_sent < 60 then
      while tx_sent < 60 loop
        tx_send_byte(0);
        pad_count := pad_count + 1;
      end loop;
      stat_pads := stat_pads + 1;
    end if;
  end tx_pad_frame;

  -- ---- Jabber protection ----

  -- A transmitter stuck on the medium must be cut off: the jabber timer
  -- runs while transmitting and trips past the configured limit.
  procedure jabber_watch is
  begin
    if tx_busy = true then
      jabber_timer := jabber_timer + 1;
      if jabber_timer > jabber_limit then
        jabber_tripped := true;
        stat_jabbers := stat_jabbers + 1;
        excess_coll := true;
        tx_state := 0;
        raise_irq(8);
      end if;
    else
      jabber_timer := 0;
      jabber_tripped := false;
    end if;
  end jabber_watch;

  -- ---- Loopback self-test ----

  -- Push a walking pattern through both FIFOs and compare.
  procedure loopback_test is
    variable got : integer;
  begin
    lb_running := true;
    lb_errors := 0;
    lb_pattern := 1;
    for i in 1 to 32 loop
      tx_fifo_push(lb_pattern);
      rx_fifo_push(tx_fifo_pop);
      got := rx_fifo_pop;
      if got /= lb_pattern then
        lb_errors := lb_errors + 1;
      end if;
      lb_pattern := (lb_pattern * 2 + 1) mod 256;
    end loop;
    if lb_errors > 0 then
      raise_irq(8);
    end if;
    lb_running := false;
  end loopback_test;

begin
  -- Transmit engine: wait for a go message, defer to carrier, send the
  -- frame with CRC, and back off on collisions.
  txctl: process
    variable frame_len : integer;
  begin
    if crc_init_done = false then
      init_crc_table;
    end if;
    if eeprom_loaded = false then
      load_config;
    end if;
    receive(tx_go, frame_len);
    if frame_len = 0 then
      frame_len := txd_dequeue;
    end if;
    if pause_requested = true then
      send_pause_frame;
    end if;
    if csr_enable_tx = true then
      tx_busy := true;
      tx_frame_len := frame_len;
      tx_sent := 0;
      tx_crc := 0;
      retry_count := 0;
      excess_coll := false;
      while carrier_sense = true loop
        stat_deferrals := stat_deferrals + 1;
        defer_flag := true;
        wait for 100 ns;
      end loop;
      defer_flag := false;
      tx_preamble;
      while tx_sent < tx_frame_len and excess_coll = false loop
        tx_byte := tx_fifo_pop;
        tx_send_byte(tx_byte);
        if tx_state = 4 then
          tx_backoff;
          tx_state := 1;
        end if;
      end loop;
      tx_pad_frame;
      tx_send_crc;
      wait_ifg;
      sqe_expected := true;
      check_sqe;
      stat_tx_frames := stat_tx_frames + 1;
      stat_tx_octets := stat_tx_octets + tx_sent;
      classify_size(tx_sent);
      tx_busy := false;
      tx_done := true;
      moderate_irq(1);
    end if;
  end process;

  -- Receive engine: sync, filter, store, and verify CRC.
  rxctl: process
  begin
    if crc_init_done = false then
      init_crc_table;
    end if;
    if csr_enable_rx = true then
      rx_sync;
      rx_crc := 0;
      rx_frame_len := 0;
      rx_drop := false;
      addr_match := true;
      bcast_match := true;
      addr_byte_ix := 0;
      while rx_state = 1 and rx_frame_len < 1536 loop
        rx_get_byte;
        if addr_byte_ix < 6 then
          rx_filter_byte;
        end if;
        rx_crc := crc_step(rx_crc, rx_byte);
        if addr_match = true or bcast_match = true or promiscuous = true then
          rx_fifo_push(rx_byte);
        end if;
        rx_frame_len := rx_frame_len + 1;
        if carrier_sense = false then
          rx_state := 2;
        end if;
      end loop;
      rx_classify;
      if rx_crc mod 65536 /= 0 then
        stat_crc_errs := stat_crc_errs + 1;
        rx_drop := true;
      end if;
      if rx_drop = false then
        stat_rx_frames := stat_rx_frames + 1;
        stat_rx_octets := stat_rx_octets + rx_frame_len;
        classify_size(rx_frame_len);
        classify_cast(rx_fifo(1));
        rxd_enqueue(rx_frame_len);
        if rx_fifo(1) = 1 and flow_ctrl_en = true then
          handle_pause_frame;
        end if;
        rx_ready := true;
        moderate_irq(2);
      end if;
      rx_state := 0;
    end if;
    wait for 1 us;
  end process;

  -- Host interface: latch commands into the CSR block.
  hostif: process
  begin
    csr_cmd_arg := host_data_in;
    if host_cmd > 0 then
      exec_host_command;
    end if;
    if rx_overflow = true or tx_underrun = true then
      raise_irq(4);
    end if;
    wait for 500 ns;
  end process;

  -- Link supervision: a crude carrier-activity watchdog plus the jabber
  -- cutoff check, sampled together.
  linkmon: process
    variable quiet : integer;
  begin
    quiet := 0;
    for i in 1 to 100 loop
      if carrier_sense = false and tx_busy = false then
        quiet := quiet + 1;
      end if;
      jabber_watch;
      wait for 10 us;
    end loop;
    link_state := quiet < 100 or duplex_full;
    if jabber_tripped = true then
      link_state := false;
    end if;
    link_ok <= link_state;
  end process;

  -- MII management engine: periodic PHY polling and host-requested
  -- register writes.
  miimgmt: process
  begin
    if mii_busy = false then
      poll_phy;
      if phy_autoneg = false and mii_op_write = false then
        mii_data_wr := 4096 + mii_clk_div;
        mii_write_reg;
      end if;
    end if;
    link_state := phy_status mod 4 >= 2;
    wait for 100 us;
  end process;

  -- Host DMA engine: drain completed receive descriptors to the host in
  -- bounded bursts, one byte of the receive FIFO per cycle.
  dmaeng: process
    variable burst_left : integer;
  begin
    if dma_active = false and rxd_pending > 0 then
      dma_remaining := rxd_dequeue;
      dma_active := true;
    end if;
    if dma_active = true then
      burst_left := dma_burst;
      while dma_remaining > 0 and burst_left > 0 loop
        host_data_out <= rx_fifo_pop;
        dma_addr := dma_addr + 1;
        dma_remaining := dma_remaining - 1;
        burst_left := burst_left - 1;
        wait for 200 ns;
      end loop;
      if dma_remaining = 0 then
        dma_active := false;
        moderate_irq(2);
      end if;
    end if;
    irq_timer := irq_timer - dma_burst;
    wait for 2 us;
  end process;

  -- Statistics aggregation: fold the counter file into a summary word the
  -- host can read in one access.
  statagg: process
  begin
    stat_summary :=
      stat_tx_frames + stat_rx_frames + stat_crc_errs * 256
      + stat_collisions * 16 + stat_drops * 64;
    if stat_late_coll > 0 or stat_tx_errors > 128 then
      raise_irq(8);
    end if;
    if jam_counter > 32 then
      stat_late_coll := stat_late_coll + 1;
      jam_counter := 0;
    end if;
    host_data_out <= stat_summary mod 256;
    wait for 1 ms;
  end process;
end;
|}
