(** The telephone answering machine benchmark ([ans] in Figure 4).

    Ring detection with validation, line seizure, outgoing-announcement
    playback, incoming-message recording into a banked message memory with
    silence-based end detection, DTMF decoding for remote control, a
    3-digit remote access code, and a local user interface (play back,
    delete, set announcement). *)

let name = "ans"

let text =
  {|-- Telephone answering machine.
entity ansmachine is
  port (
    ring_in      : in boolean;
    line_sample  : in integer range 0 to 255;
    hook_ctl     : out boolean;
    speaker_out  : out integer range 0 to 255;
    line_out     : out integer range 0 to 255;
    btn_play     : in boolean;
    btn_delete   : in boolean;
    btn_record   : in boolean;
    led_msgs     : out integer range 0 to 99;
    led_busy     : out boolean );
end;

architecture behavior of ansmachine is
  type audio_mem  is array (1 to 4096) of integer range 0 to 255;
  type msg_table  is array (1 to 16) of integer range 0 to 4095;
  type dtmf_hist  is array (1 to 8) of integer range 0 to 15;

  -- Line and ring state.
  shared variable ring_count   : integer range 0 to 15;
  shared variable ring_valid   : boolean;
  shared variable off_hook     : boolean;
  shared variable line_level   : integer range 0 to 255;
  shared variable silence_cnt  : integer range 0 to 1023;

  -- Announcement (outgoing message) storage.
  shared variable ogm_mem      : audio_mem;
  shared variable ogm_len      : integer range 0 to 4095;
  shared variable ogm_pos      : integer range 0 to 4095;

  -- Incoming message storage: banked audio memory with a directory.
  shared variable msg_mem      : audio_mem;
  shared variable msg_starts   : msg_table;
  shared variable msg_lengths  : msg_table;
  shared variable msg_count    : integer range 0 to 16;
  shared variable write_pos    : integer range 0 to 4095;
  shared variable play_pos     : integer range 0 to 4095;
  shared variable play_msg     : integer range 0 to 16;

  -- DTMF decoding.
  shared variable goertzel_low  : integer;
  shared variable goertzel_high : integer;
  shared variable dtmf_digit    : integer range 0 to 15;
  shared variable dtmf_valid    : boolean;
  shared variable dtmf_history  : dtmf_hist;
  shared variable dtmf_idx      : integer range 1 to 8;

  -- Remote access.
  shared variable access_code   : integer range 0 to 999;
  shared variable entered_code  : integer range 0 to 999;
  shared variable code_digits   : integer range 0 to 3;
  shared variable remote_auth   : boolean;

  -- Machine mode and status.
  shared variable mode         : integer range 0 to 7;
  shared variable answer_after : integer range 1 to 9;
  shared variable error_code   : integer range 0 to 7;
  shared variable busy         : boolean;

  -- Wall clock and per-message timestamps.
  type stamp_table is array (1 to 16) of integer;
  shared variable clock_mins   : integer;
  shared variable msg_stamps   : stamp_table;

  -- Beep/prompt tone generator.
  shared variable tone_phase   : integer range 0 to 255;
  shared variable tone_step    : integer range 1 to 64;
  shared variable tone_ticks   : integer;

  -- Playback volume.
  shared variable volume       : integer range 0 to 7;

  -- Toll-saver: answer earlier when new messages are waiting.
  shared variable toll_saver   : boolean;
  shared variable new_messages : integer range 0 to 16;

  -- Call screening.
  shared variable screen_on    : boolean;
  shared variable screened     : integer range 0 to 255;

  -- Power-fail ride-through state.
  shared variable power_good   : boolean;
  shared variable backup_ticks : integer;
  shared variable settings_dirty : boolean;

  -- Two-mailbox support: messages are routed by the digit dialed after
  -- the announcement; each mailbox has its own count and access code.
  shared variable mailbox_sel   : integer range 1 to 2;
  shared variable mb1_count     : integer range 0 to 16;
  shared variable mb2_count     : integer range 0 to 16;
  shared variable mb2_code      : integer range 0 to 999;
  type owner_table is array (1 to 16) of integer range 1 to 2;
  shared variable msg_owner     : owner_table;

  -- Memo mode: record a local note without an incoming call.
  shared variable memo_pending  : boolean;

  function clamp_byte(v : in integer) return integer is
  begin
    if v < 0 then
      return 0;
    elsif v > 255 then
      return 255;
    else
      return v;
    end if;
  end clamp_byte;

  -- Debounced ring validation: a ring burst must persist across samples.
  procedure detect_ring is
  begin
    if ring_in = true then
      if ring_count < 15 then
        ring_count := ring_count + 1;
      end if;
    else
      if ring_count > 0 then
        ring_count := ring_count - 1;
      end if;
    end if;
    ring_valid := ring_count >= answer_after;
  end detect_ring;

  procedure seize_line is
  begin
    off_hook := true;
    hook_ctl <= true;
    busy := true;
    silence_cnt := 0;
  end seize_line;

  procedure release_line is
  begin
    off_hook := false;
    hook_ctl <= false;
    busy := false;
    remote_auth := false;
    code_digits := 0;
    entered_code := 0;
  end release_line;

  -- Track line energy for silence detection.
  procedure monitor_line is
    variable level : integer;
  begin
    level := line_sample;
    if level > 128 then
      level := level - 128;
    else
      level := 128 - level;
    end if;
    line_level := clamp_byte(line_level * 3 / 4 + level / 4);
    if line_level < 8 then
      silence_cnt := silence_cnt + 1;
    else
      silence_cnt := 0;
    end if;
  end monitor_line;

  -- Play the outgoing announcement to the line.
  procedure play_announcement is
  begin
    ogm_pos := 0;
    while ogm_pos < ogm_len loop
      ogm_pos := ogm_pos + 1;
      line_out <= ogm_mem(ogm_pos);
      wait for 125 us;
    end loop;
  end play_announcement;

  -- Record from the line into the next free message slot.
  procedure record_message is
    variable start : integer;
    variable sample : integer;
  begin
    if msg_count >= 16 then
      error_code := 2;
      return;
    end if;
    start := write_pos;
    silence_cnt := 0;
    while silence_cnt < 400 and write_pos < 4095 loop
      monitor_line;
      sample := clamp_byte(line_sample);
      write_pos := write_pos + 1;
      msg_mem(write_pos) := sample;
      wait for 125 us;
    end loop;
    msg_count := msg_count + 1;
    msg_starts(msg_count) := start + 1;
    msg_lengths(msg_count) := write_pos - start;
    if write_pos >= 4095 then
      error_code := 3;
    end if;
  end record_message;

  -- Play back one recorded message to the speaker (or line when remote).
  procedure play_message(num : in integer) is
    variable pos : integer;
    variable remaining : integer;
  begin
    if num < 1 or num > msg_count then
      error_code := 1;
      return;
    end if;
    play_msg := num;
    pos := msg_starts(num);
    remaining := msg_lengths(num);
    while remaining > 0 loop
      if remote_auth = true then
        line_out <= msg_mem(pos);
      else
        speaker_out <= msg_mem(pos);
      end if;
      pos := pos + 1;
      remaining := remaining - 1;
      wait for 125 us;
    end loop;
  end play_message;

  procedure delete_all_messages is
  begin
    msg_count := 0;
    write_pos := 0;
    play_msg := 0;
    for i in 1 to 16 loop
      msg_starts(i) := 0;
      msg_lengths(i) := 0;
    end loop;
  end delete_all_messages;

  -- Two-tone (Goertzel-like) energy accumulation over the line samples.
  procedure dtmf_step is
    variable centered : integer;
  begin
    centered := line_sample - 128;
    goertzel_low := goertzel_low + centered * centered / 64 - goertzel_low / 8;
    goertzel_high := goertzel_high + centered * centered / 16 - goertzel_high / 8;
  end dtmf_step;

  -- Map the two band energies to a digit estimate.
  procedure dtmf_decide is
    variable row : integer;
    variable col : integer;
  begin
    dtmf_valid := false;
    if goertzel_low > 2000 and goertzel_high > 2000 then
      row := goertzel_low / 2048;
      col := goertzel_high / 2048;
      if row > 3 then
        row := 3;
      end if;
      if col > 3 then
        col := 3;
      end if;
      dtmf_digit := row * 4 + col;
      dtmf_valid := true;
      dtmf_history(dtmf_idx) := dtmf_digit;
      dtmf_idx := dtmf_idx mod 8 + 1;
    end if;
  end dtmf_decide;

  -- Accumulate remote-access digits and check the 3-digit code.
  procedure check_access_code is
  begin
    if dtmf_valid = true then
      entered_code := (entered_code * 10 + dtmf_digit) mod 1000;
      code_digits := code_digits + 1;
      if code_digits >= 3 then
        if entered_code = access_code then
          remote_auth := true;
        else
          error_code := 4;
          code_digits := 0;
          entered_code := 0;
        end if;
      end if;
    end if;
  end check_access_code;

  -- Message navigation for remote review.
  procedure next_message is
  begin
    if play_msg < msg_count then
      play_msg := play_msg + 1;
    else
      play_msg := 1;
    end if;
    play_message(play_msg);
  end next_message;

  procedure previous_message is
  begin
    if play_msg > 1 then
      play_msg := play_msg - 1;
    else
      play_msg := msg_count;
    end if;
    play_message(play_msg);
  end previous_message;

  -- Speak a small number as beep groups (tens then units), used to
  -- announce the message count to a remote caller.
  procedure speak_count(value : in integer) is
    variable tens : integer;
    variable units : integer;
  begin
    tens := value / 10;
    units := value mod 10;
    for t in 1 to 9 loop
      if t <= tens then
        play_beep(80);
      end if;
    end loop;
    for u in 1 to 9 loop
      if u <= units then
        play_beep(30);
      end if;
    end loop;
  end speak_count;

  -- Announce the timestamp of the current message as beep groups.
  procedure speak_stamp is
    variable stamp : integer;
  begin
    if play_msg >= 1 and play_msg <= 16 then
      stamp := msg_stamps(play_msg);
      speak_count(stamp / 60 mod 24);
      speak_count(stamp mod 60);
    end if;
  end speak_stamp;

  -- Interpret a DTMF digit as a remote command once authenticated.
  procedure remote_command is
  begin
    if dtmf_valid = true and remote_auth = true then
      case dtmf_digit is
        when 1 =>
          play_message(msg_count);
        when 2 =>
          for m in 1 to 16 loop
            if m <= msg_count then
              play_message(m);
            end if;
          end loop;
        when 3 =>
          delete_all_messages;
        when 4 =>
          next_message;
        when 5 =>
          previous_message;
        when 6 =>
          speak_count(new_messages);
          new_messages := 0;
        when 8 =>
          speak_stamp;
        when 7 =>
          release_line;
        when others =>
          null;
      end case;
    end if;
  end remote_command;

  -- Emit a confirmation beep of the given duration to the speaker.
  procedure play_beep(duration : in integer) is
  begin
    tone_ticks := duration;
    tone_phase := 0;
    while tone_ticks > 0 loop
      tone_phase := (tone_phase + tone_step) mod 256;
      if tone_phase < 128 then
        speaker_out <= 40 * volume;
      else
        speaker_out <= 0;
      end if;
      tone_ticks := tone_ticks - 1;
      wait for 125 us;
    end loop;
  end play_beep;

  -- Reclaim the audio memory by sliding surviving messages down over the
  -- holes left by deletions.
  procedure compact_memory is
    variable dst : integer;
    variable src : integer;
    variable remaining : integer;
  begin
    dst := 0;
    for m in 1 to 16 loop
      if m <= msg_count and msg_lengths(m) > 0 then
        src := msg_starts(m);
        remaining := msg_lengths(m);
        msg_starts(m) := dst + 1;
        while remaining > 0 loop
          dst := dst + 1;
          msg_mem(dst) := msg_mem(src);
          src := src + 1;
          remaining := remaining - 1;
        end loop;
      end if;
    end loop;
    write_pos := dst;
  end compact_memory;

  -- Record the wall-clock minute against a newly stored message.
  procedure stamp_message(num : in integer) is
  begin
    if num >= 1 and num <= 16 then
      msg_stamps(num) := clock_mins;
      new_messages := new_messages + 1;
    end if;
  end stamp_message;

  -- Toll-saver ring threshold: two rings with news, five without.
  procedure update_answer_threshold is
  begin
    if toll_saver = true then
      if new_messages > 0 then
        answer_after := 2;
      else
        answer_after := 5;
      end if;
    end if;
  end update_answer_threshold;

  -- Route caller audio to the speaker while recording (call screening).
  procedure screen_call is
  begin
    if screen_on = true then
      screened := line_sample * volume / 8;
      speaker_out <= screened;
    end if;
  end screen_call;

  -- On power failure, freeze recording and count ride-through ticks; on
  -- recovery, flag the settings for re-verification.
  procedure handle_power is
  begin
    if power_good = false then
      backup_ticks := backup_ticks + 1;
      busy := true;
      if backup_ticks > 1000 then
        error_code := 5;
      end if;
    elsif backup_ticks > 0 then
      backup_ticks := 0;
      settings_dirty := true;
      busy := false;
    end if;
    if settings_dirty = true then
      if access_code > 999 then
        access_code := 0;
        error_code := 6;
      end if;
      settings_dirty := false;
    end if;
  end handle_power;

  -- Route the newest message into the selected mailbox.
  procedure route_message is
  begin
    if msg_count >= 1 and msg_count <= 16 then
      msg_owner(msg_count) := mailbox_sel;
      if mailbox_sel = 1 then
        mb1_count := mb1_count + 1;
      else
        mb2_count := mb2_count + 1;
      end if;
    end if;
    mailbox_sel := 1;
  end route_message;

  -- Select a mailbox from the first DTMF digit after the announcement.
  procedure select_mailbox is
  begin
    if dtmf_valid = true and dtmf_digit = 2 then
      mailbox_sel := 2;
    else
      mailbox_sel := 1;
    end if;
  end select_mailbox;

  -- Play back only the selected mailbox's messages.
  procedure play_mailbox(which : in integer) is
  begin
    for m in 1 to 16 loop
      if m <= msg_count and msg_owner(m) = which then
        play_message(m);
      end if;
    end loop;
    if which = 1 then
      mb1_count := 0;
    else
      mb2_count := 0;
    end if;
  end play_mailbox;

  -- A memo is an incoming message recorded from the local microphone.
  procedure record_memo is
  begin
    if memo_pending = true and busy = false then
      busy := true;
      play_beep(100);
      record_message;
      route_message;
      memo_pending := false;
      busy := false;
    end if;
  end record_memo;

begin
  -- Call handling: answer validated rings, play the announcement, then
  -- record while watching for DTMF remote control.
  callctl: process
  begin
    detect_ring;
    update_answer_threshold;
    if ring_valid = true and off_hook = false and mode > 0 then
      seize_line;
      play_announcement;
      play_beep(200);
      select_mailbox;
      record_message;
      stamp_message(msg_count);
      route_message;
      dtmf_decide;
      check_access_code;
      remote_command;
      if remote_auth = false then
        release_line;
      end if;
    end if;
    wait for 10 ms;
  end process;

  -- Continuous line monitoring and tone accumulation while off hook.
  linemon: process
  begin
    if off_hook = true then
      monitor_line;
      dtmf_step;
      screen_call;
      if silence_cnt > 800 then
        release_line;
      end if;
    end if;
    wait for 125 us;
  end process;

  -- Housekeeping: the wall clock, power supervision, and opportunistic
  -- memory compaction while the machine is idle.
  housekeeping: process
  begin
    clock_mins := clock_mins + 1;
    handle_power;
    if busy = false and off_hook = false then
      if write_pos > 3500 and msg_count < 16 then
        compact_memory;
        play_beep(50);
      end if;
    end if;
    if new_messages > 0 and busy = false then
      led_msgs <= new_messages * 10 + msg_count;
    end if;
    wait for 50 ms;
  end process;

  -- Local user interface: buttons and the message-count display.
  userio: process
  begin
    if btn_play = true and busy = false then
      play_mailbox(1);
      if entered_code = mb2_code then
        play_mailbox(2);
      end if;
    end if;
    record_memo;
    if btn_delete = true and busy = false then
      delete_all_messages;
    end if;
    if btn_record = true and busy = false then
      busy := true;
      ogm_len := 0;
      while ogm_len < 2048 and btn_record = true loop
        ogm_len := ogm_len + 1;
        ogm_mem(ogm_len) := clamp_byte(line_sample);
        wait for 125 us;
      end loop;
      busy := false;
    end if;
    led_msgs <= msg_count * 6 + error_code;
    led_busy <= busy;
    wait for 20 ms;
  end process;
end;
|}
