let escape s =
  String.concat "" (List.map (fun c -> if c = '"' then "\\\"" else String.make 1 c)
                      (List.init (String.length s) (String.get s)))

let node_attrs ?(annotations = false) (n : Types.node) =
  match n.n_kind with
  | Types.Behavior { is_process } ->
      let label =
        if annotations && n.n_ict <> [] then
          let icts =
            String.concat "\\n"
              (List.map (fun (tech, v) -> Printf.sprintf "%s: %.1f us" tech v) n.n_ict)
          in
          Printf.sprintf "%s\\n%s" n.n_name icts
        else n.n_name
      in
      if is_process then
        Printf.sprintf "[shape=ellipse style=bold label=\"%s\"]" (escape label)
      else Printf.sprintf "[shape=ellipse label=\"%s\"]" (escape label)
  | Types.Variable _ -> Printf.sprintf "[shape=box label=\"%s\"]" (escape n.n_name)

let to_dot ?(annotations = false) ?partition (s : Types.t) =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "digraph \"%s\" {\n" (escape s.design_name);
  pr "  rankdir=TB;\n";
  let emit_node (n : Types.node) = pr "  n%d %s;\n" n.n_id (node_attrs ~annotations n) in
  (match partition with
  | None -> Array.iter emit_node s.nodes
  | Some part ->
      let comps =
        Array.to_list (Array.mapi (fun i _ -> Partition.Cproc i) s.procs)
        @ Array.to_list (Array.mapi (fun i _ -> Partition.Cmem i) s.mems)
      in
      List.iteri
        (fun k comp ->
          pr "  subgraph cluster_%d {\n" k;
          pr "    label=\"%s\";\n" (escape (Partition.comp_name s comp));
          List.iter (fun id -> emit_node s.nodes.(id)) (Partition.nodes_of_comp part comp);
          pr "  }\n")
        comps;
      (* Unassigned nodes are emitted outside any cluster. *)
      Array.iter
        (fun (n : Types.node) ->
          if Partition.comp_of part n.n_id = None then emit_node n)
        s.nodes);
  Array.iter
    (fun (p : Types.port) ->
      pr "  p%d [shape=diamond label=\"%s\"];\n" p.pt_id (escape p.pt_name))
    s.ports;
  Array.iter
    (fun (c : Types.channel) ->
      let dst = match c.c_dst with Types.Dnode d -> Printf.sprintf "n%d" d | Types.Dport p -> Printf.sprintf "p%d" p in
      if annotations then
        pr "  n%d -> %s [label=\"%gx%db\"];\n" c.c_src dst c.c_accfreq c.c_bits
      else pr "  n%d -> %s;\n" c.c_src dst)
    s.chans;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
