(** Recording partitioning decisions.

    The paper's introduction faults current practice because
    "documentation of decisions is scarce": design choices live in heads
    and hand calculations.  This module makes a partition a durable,
    reviewable artifact — a name-based text form that survives re-running
    the front end (ids may shift; names are the identity) and can be
    reloaded onto a freshly built SLIF of the same design. *)

val to_string : ?note:string -> Partition.t -> string
(** Serialize the partition's node and channel assignments by name.
    Unassigned objects are omitted; [note] adds a free-form comment line. *)

val of_string : Types.t -> string -> Partition.t
(** Re-apply a recorded decision to a SLIF.  Node mappings are matched by
    node and component name; channels by (source name, destination name,
    kind).  Raises [Failure] with a line number for an unknown name, a
    design-name mismatch, or malformed input. *)

val note : string -> string option
(** Extract the note line from a recorded decision, if present. *)
