let kind_to_string = function
  | Types.Call -> "call"
  | Types.Var_access -> "var"
  | Types.Port_access -> "port"
  | Types.Message -> "msg"

let kind_of_string lineno = function
  | "call" -> Types.Call
  | "var" -> Types.Var_access
  | "port" -> Types.Port_access
  | "msg" -> Types.Message
  | s -> failwith (Printf.sprintf "Decision line %d: bad channel kind %S" lineno s)

let dest_name (s : Types.t) = function
  | Types.Dnode d -> ("node", s.nodes.(d).Types.n_name)
  | Types.Dport p -> ("port", s.ports.(p).Types.pt_name)

let to_string ?note part =
  let s = Partition.slif part in
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (fun line -> Buffer.add_string buf (line ^ "\n")) fmt in
  pr "decision %s" s.Types.design_name;
  (match note with
  | Some n -> pr "note %s" (String.concat " " (String.split_on_char '\n' n))
  | None -> ());
  Array.iter
    (fun (node : Types.node) ->
      match Partition.comp_of part node.n_id with
      | None -> ()
      | Some comp ->
          let kind = match comp with Partition.Cproc _ -> "proc" | Partition.Cmem _ -> "mem" in
          pr "map %s %s %s" node.n_name kind (Partition.comp_name s comp))
    s.Types.nodes;
  Array.iter
    (fun (c : Types.channel) ->
      match Partition.bus_of part c.c_id with
      | None -> ()
      | Some bus ->
          let dkind, dname = dest_name s c.c_dst in
          pr "chan %s %s %s %s %s" s.Types.nodes.(c.c_src).Types.n_name dkind dname
            (kind_to_string c.c_kind) s.Types.buses.(bus).Types.b_name)
    s.Types.chans;
  Buffer.contents buf

let note text =
  String.split_on_char '\n' text
  |> List.find_map (fun line ->
         if String.length line > 5 && String.sub line 0 5 = "note " then
           Some (String.sub line 5 (String.length line - 5))
         else None)

let of_string (s : Types.t) text =
  let part = Partition.create s in
  let find_comp lineno kind name =
    match kind with
    | "proc" -> (
        let found = ref None in
        Array.iteri
          (fun i (p : Types.processor) -> if p.p_name = name then found := Some (Partition.Cproc i))
          s.procs;
        match !found with
        | Some c -> c
        | None -> failwith (Printf.sprintf "Decision line %d: no processor %S" lineno name))
    | "mem" -> (
        let found = ref None in
        Array.iteri
          (fun i (m : Types.memory) -> if m.m_name = name then found := Some (Partition.Cmem i))
          s.mems;
        match !found with
        | Some c -> c
        | None -> failwith (Printf.sprintf "Decision line %d: no memory %S" lineno name))
    | k -> failwith (Printf.sprintf "Decision line %d: bad component kind %S" lineno k)
  in
  let find_bus lineno name =
    let found = ref None in
    Array.iteri
      (fun i (b : Types.bus) -> if b.b_name = name then found := Some i)
      s.buses;
    match !found with
    | Some b -> b
    | None -> failwith (Printf.sprintf "Decision line %d: no bus %S" lineno name)
  in
  let find_chan lineno src dkind dname kind =
    let matches (c : Types.channel) =
      s.nodes.(c.c_src).Types.n_name = src
      && c.c_kind = kind
      && dest_name s c.c_dst = (dkind, dname)
    in
    let found = ref None in
    Array.iter (fun c -> if matches c then found := Some c.Types.c_id) s.chans;
    match !found with
    | Some id -> id
    | None ->
        failwith
          (Printf.sprintf "Decision line %d: no channel %s -> %s (%s)" lineno src dname
             (kind_to_string kind))
  in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      match String.split_on_char ' ' (String.trim line) |> List.filter (fun x -> x <> "") with
      | [] -> ()
      | "decision" :: rest ->
          let name = String.concat " " rest in
          if name <> s.Types.design_name then
            failwith
              (Printf.sprintf "Decision line %d: recorded for design %S, not %S" lineno name
                 s.Types.design_name)
      | "note" :: _ -> ()
      | [ "map"; node_name; kind; comp_name ] -> (
          match Types.node_by_name s node_name with
          | Some node ->
              Partition.assign_node part ~node:node.n_id (find_comp lineno kind comp_name)
          | None -> failwith (Printf.sprintf "Decision line %d: no node %S" lineno node_name))
      | [ "chan"; src; dkind; dname; kind; bus_name ] ->
          let chan = find_chan lineno src dkind dname (kind_of_string lineno kind) in
          Partition.assign_chan part ~chan ~bus:(find_bus lineno bus_name)
      | word :: _ ->
          failwith (Printf.sprintf "Decision line %d: unrecognized entry %S" lineno word))
    (String.split_on_char '\n' text);
  part
