(* Floats are serialized as hexadecimal literals ("%h") so that parsing
   reproduces them bit-exactly. *)

let fl v = Printf.sprintf "%h" v

let opt_fl = function None -> "-" | Some v -> fl v
let opt_int = function None -> "-" | Some v -> string_of_int v

let to_string (s : Types.t) =
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (fun line -> Buffer.add_string buf (line ^ "\n")) fmt in
  pr "slif %s" s.design_name;
  Array.iter
    (fun (n : Types.node) ->
      (match n.n_kind with
      | Types.Behavior { is_process } ->
          pr "node %d %s %s" n.n_id (if is_process then "process" else "behavior") n.n_name
      | Types.Variable { storage_bits; transfer_bits } ->
          pr "node %d variable %s %d %d" n.n_id n.n_name storage_bits transfer_bits);
      List.iter (fun (tech, v) -> pr "ict %d %s %s" n.n_id tech (fl v)) n.n_ict;
      List.iter (fun (tech, v) -> pr "size %d %s %s" n.n_id tech (fl v)) n.n_size)
    s.nodes;
  Array.iter
    (fun (p : Types.port) ->
      let dir =
        match p.pt_dir with Types.Pin -> "in" | Types.Pout -> "out" | Types.Pinout -> "inout"
      in
      pr "port %d %s %d %s" p.pt_id p.pt_name p.pt_bits dir)
    s.ports;
  Array.iter
    (fun (c : Types.channel) ->
      let dst_kind, dst_id =
        match c.c_dst with Types.Dnode d -> ("node", d) | Types.Dport p -> ("port", p)
      in
      let kind =
        match c.c_kind with
        | Types.Call -> "call"
        | Types.Var_access -> "var"
        | Types.Port_access -> "port"
        | Types.Message -> "msg"
      in
      pr "chan %d %d %s %d %s %s %s %d %s %s" c.c_id c.c_src dst_kind dst_id
        (fl c.c_accfreq) (fl c.c_accfreq_min) (fl c.c_accfreq_max) c.c_bits
        (opt_int c.c_tag) kind)
    s.chans;
  Array.iter
    (fun (p : Types.processor) ->
      pr "proc %d %s %s %s %s %s" p.p_id p.p_name
        (match p.p_kind with Types.Standard -> "standard" | Types.Custom -> "custom")
        p.p_tech (opt_fl p.p_size_constraint) (opt_int p.p_io_constraint))
    s.procs;
  Array.iter
    (fun (m : Types.memory) ->
      pr "mem %d %s %s %s" m.m_id m.m_name m.m_tech (opt_fl m.m_size_constraint))
    s.mems;
  Array.iter
    (fun (b : Types.bus) ->
      pr "bus %d %s %d %s %s %s" b.b_id b.b_name b.b_bitwidth (fl b.b_ts_us) (fl b.b_td_us)
        (opt_fl b.b_capacity_mbps);
      List.iter (fun (tech, v) -> pr "busts %d %s %s" b.b_id tech (fl v)) b.b_ts_by_tech;
      List.iter
        (fun ((a, bt), v) -> pr "bustd %d %s %s %s" b.b_id a bt (fl v))
        b.b_td_by_pair)
    s.buses;
  Buffer.contents buf

(* --- Parsing ------------------------------------------------------------- *)

type builder = {
  mutable name : string;
  mutable nodes : Types.node list;          (* reversed *)
  mutable ports : Types.port list;
  mutable chans : Types.channel list;
  mutable procs : Types.processor list;
  mutable mems : Types.memory list;
  mutable buses : Types.bus list;
}

let parse_error lineno msg = failwith (Printf.sprintf "Slif.Text line %d: %s" lineno msg)

let parse_float lineno s =
  match float_of_string_opt s with
  | Some v -> v
  | None -> parse_error lineno (Printf.sprintf "bad float %S" s)

let parse_int lineno s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> parse_error lineno (Printf.sprintf "bad int %S" s)

let parse_opt_fl lineno = function "-" -> None | s -> Some (parse_float lineno s)
let parse_opt_int lineno = function "-" -> None | s -> Some (parse_int lineno s)

let amend_node b lineno id f =
  let rec go = function
    | [] -> parse_error lineno (Printf.sprintf "no node %d yet" id)
    | (n : Types.node) :: rest when n.n_id = id -> f n :: rest
    | n :: rest -> n :: go rest
  in
  b.nodes <- go b.nodes

let amend_bus b lineno id f =
  let rec go = function
    | [] -> parse_error lineno (Printf.sprintf "no bus %d yet" id)
    | (bus : Types.bus) :: rest when bus.b_id = id -> f bus :: rest
    | bus :: rest -> bus :: go rest
  in
  b.buses <- go b.buses

let of_string text =
  let b =
    { name = ""; nodes = []; ports = []; chans = []; procs = []; mems = []; buses = [] }
  in
  let handle lineno line =
    match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
    | [] -> ()
    | "slif" :: rest -> b.name <- String.concat " " rest
    | [ "node"; id; kind; name ] when kind = "process" || kind = "behavior" ->
        b.nodes <-
          {
            Types.n_id = parse_int lineno id;
            n_name = name;
            n_kind = Types.Behavior { is_process = kind = "process" };
            n_ict = [];
            n_size = [];
          }
          :: b.nodes
    | [ "node"; id; "variable"; name; storage; transfer ] ->
        b.nodes <-
          {
            Types.n_id = parse_int lineno id;
            n_name = name;
            n_kind =
              Types.Variable
                {
                  storage_bits = parse_int lineno storage;
                  transfer_bits = parse_int lineno transfer;
                };
            n_ict = [];
            n_size = [];
          }
          :: b.nodes
    | [ "ict"; id; tech; v ] ->
        amend_node b lineno (parse_int lineno id) (fun n ->
            { n with Types.n_ict = n.Types.n_ict @ [ (tech, parse_float lineno v) ] })
    | [ "size"; id; tech; v ] ->
        amend_node b lineno (parse_int lineno id) (fun n ->
            { n with Types.n_size = n.Types.n_size @ [ (tech, parse_float lineno v) ] })
    | [ "port"; id; name; bits; dir ] ->
        let pt_dir =
          match dir with
          | "in" -> Types.Pin
          | "out" -> Types.Pout
          | "inout" -> Types.Pinout
          | _ -> parse_error lineno (Printf.sprintf "bad direction %S" dir)
        in
        b.ports <-
          {
            Types.pt_id = parse_int lineno id;
            pt_name = name;
            pt_bits = parse_int lineno bits;
            pt_dir;
          }
          :: b.ports
    | [ "chan"; id; src; dst_kind; dst_id; freq; mn; mx; bits; tag; kind ] ->
        let c_dst =
          match dst_kind with
          | "node" -> Types.Dnode (parse_int lineno dst_id)
          | "port" -> Types.Dport (parse_int lineno dst_id)
          | _ -> parse_error lineno (Printf.sprintf "bad dst kind %S" dst_kind)
        in
        let c_kind =
          match kind with
          | "call" -> Types.Call
          | "var" -> Types.Var_access
          | "port" -> Types.Port_access
          | "msg" -> Types.Message
          | _ -> parse_error lineno (Printf.sprintf "bad channel kind %S" kind)
        in
        b.chans <-
          {
            Types.c_id = parse_int lineno id;
            c_src = parse_int lineno src;
            c_dst;
            c_accfreq = parse_float lineno freq;
            c_accfreq_min = parse_float lineno mn;
            c_accfreq_max = parse_float lineno mx;
            c_bits = parse_int lineno bits;
            c_tag = parse_opt_int lineno tag;
            c_kind;
          }
          :: b.chans
    | [ "proc"; id; name; kind; tech; sizecon; iocon ] ->
        let p_kind =
          match kind with
          | "standard" -> Types.Standard
          | "custom" -> Types.Custom
          | _ -> parse_error lineno (Printf.sprintf "bad processor kind %S" kind)
        in
        b.procs <-
          {
            Types.p_id = parse_int lineno id;
            p_name = name;
            p_kind;
            p_tech = tech;
            p_size_constraint = parse_opt_fl lineno sizecon;
            p_io_constraint = parse_opt_int lineno iocon;
          }
          :: b.procs
    | [ "mem"; id; name; tech; sizecon ] ->
        b.mems <-
          {
            Types.m_id = parse_int lineno id;
            m_name = name;
            m_tech = tech;
            m_size_constraint = parse_opt_fl lineno sizecon;
          }
          :: b.mems
    | [ "bus"; id; name; bitwidth; ts; td; cap ] ->
        b.buses <-
          {
            Types.b_id = parse_int lineno id;
            b_name = name;
            b_bitwidth = parse_int lineno bitwidth;
            b_ts_us = parse_float lineno ts;
            b_td_us = parse_float lineno td;
            b_capacity_mbps = parse_opt_fl lineno cap;
            b_ts_by_tech = [];
            b_td_by_pair = [];
          }
          :: b.buses
    | [ "busts"; id; tech; v ] ->
        amend_bus b lineno (parse_int lineno id) (fun bus ->
            {
              bus with
              Types.b_ts_by_tech =
                bus.Types.b_ts_by_tech @ [ (tech, parse_float lineno v) ];
            })
    | [ "bustd"; id; ta; tb; v ] ->
        amend_bus b lineno (parse_int lineno id) (fun bus ->
            {
              bus with
              Types.b_td_by_pair =
                bus.Types.b_td_by_pair @ [ ((ta, tb), parse_float lineno v) ];
            })
    | word :: _ -> parse_error lineno (Printf.sprintf "unrecognized line starting %S" word)
  in
  List.iteri
    (fun i line -> if String.trim line <> "" then handle (i + 1) (String.trim line))
    (String.split_on_char '\n' text);
  let by_id f l = List.sort (fun a b -> compare (f a) (f b)) l in
  {
    Types.design_name = b.name;
    nodes = Array.of_list (by_id (fun (n : Types.node) -> n.n_id) b.nodes);
    ports = Array.of_list (by_id (fun (p : Types.port) -> p.pt_id) b.ports);
    chans = Array.of_list (by_id (fun (c : Types.channel) -> c.c_id) b.chans);
    procs = Array.of_list (by_id (fun (p : Types.processor) -> p.p_id) b.procs);
    mems = Array.of_list (by_id (fun (m : Types.memory) -> m.m_id) b.mems);
    buses = Array.of_list (by_id (fun (bus : Types.bus) -> bus.b_id) b.buses);
  }
