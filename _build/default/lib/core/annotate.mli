(** Preprocessing pass: attach per-technology ict and size weights.

    This is the paper's one-time "compile / synthesize each behavior
    beforehand" step (Sections 2.1 and 2.4): for every behavior node and
    every candidate technology, a pseudo-compilation (standard processor)
    or pseudo-synthesis (custom processor) yields the internal computation
    time and size weights; variable nodes get storage sizes and access
    times per technology.  After this pass, all estimation is lookups. *)

val run :
  ?profile:Flow.Profile.t ->
  techs:Tech.Parts.technology list ->
  Vhdl.Sem.t ->
  Types.t ->
  Types.t
(** [run ~techs sem slif] returns the SLIF with [n_ict] and [n_size]
    filled in for each node and each applicable technology (behaviors get
    no weights on memory technologies, in line with the paper's rule that
    behaviors map only to processors). *)

val local_storage_bits : Vhdl.Sem.t -> string -> int
(** Total bits of a behavior's local variables (registers / data segment
    that travel with the behavior). *)
