(** Reference textual serialization of an annotated SLIF.

    A line-oriented format covering the full sextuple and all annotations.
    [of_string (to_string t)] reproduces [t] exactly (property tested), so
    a preprocessed SLIF can be stored next to the specification and
    reloaded without re-running the front end or the technology models. *)

val to_string : Types.t -> string

val of_string : string -> Types.t
(** Raises [Failure] with a line number on malformed input. *)
