module Smap = Map.Make (String)

(* Per behavior, per custom technology: units allocated per op class and
   their total area. *)
type alloc = { units : (Tech.Optype.t * int) list; fu_area : float }

type t = { by_behavior : alloc Smap.t Smap.t (* behavior -> tech -> alloc *) }

let allocation_of_census (asic : Tech.Asic_model.t) census =
  let units =
    List.filter_map
      (fun op ->
        let n = Tech.Asic_model.allocate asic census op in
        if n = 0 then None else Some (op, n))
      Tech.Optype.all
  in
  let fu_area =
    List.fold_left
      (fun acc (op, n) ->
        acc +. (float_of_int n *. (asic.Tech.Asic_model.fu_of op).Tech.Asic_model.area_gates))
      0.0 units
  in
  { units; fu_area }

let demands ?(profile = Flow.Profile.empty) ~techs sem =
  let design = Vhdl.Sem.design sem in
  let asics =
    List.filter_map (function Tech.Parts.Asic a -> Some a | _ -> None) techs
  in
  let by_behavior =
    List.fold_left
      (fun acc (name, _decls, body) ->
        let env = Vhdl.Sem.env_of_behavior sem name in
        let is_local n =
          match Vhdl.Sem.lookup env n with
          | Some (Vhdl.Sem.Local_var _ | Vhdl.Sem.Param _ | Vhdl.Sem.Constant _) -> true
          | Some (Vhdl.Sem.Global_var _ | Vhdl.Sem.Port _ | Vhdl.Sem.Subprogram _) -> false
          | None -> true
        in
        let census =
          Tech.Census.of_behavior ~profile ~is_local
            ~is_sub:(Vhdl.Sem.is_function_name sem) ~name body
        in
        let per_tech =
          List.fold_left
            (fun m (asic : Tech.Asic_model.t) ->
              Smap.add asic.name (allocation_of_census asic census) m)
            Smap.empty asics
        in
        Smap.add name per_tech acc)
      Smap.empty (Vhdl.Ast.behaviors design)
  in
  { by_behavior }

let lookup t ~tech name =
  Option.bind (Smap.find_opt name t.by_behavior) (Smap.find_opt tech)

let behavior_fu_area t ~tech name =
  Option.map (fun a -> a.fu_area) (lookup t ~tech name)

let find_asic tech =
  match Tech.Parts.find tech with Some (Tech.Parts.Asic a) -> Some a | _ -> None

let size est t comp =
  let naive = Estimate.size est comp in
  let s = Graph.slif (Estimate.graph est) in
  let tech = Partition.comp_tech s comp in
  match (comp, find_asic tech) with
  | Partition.Cmem _, _ | _, None -> naive
  | Partition.Cproc _, Some asic ->
      let part = Estimate.partition est in
      let members = Partition.nodes_of_comp part comp in
      (* Behaviors time-share the datapath: the component needs the peak
         per-class unit count across members, not the sum. *)
      let shared : (Tech.Optype.t, int) Hashtbl.t = Hashtbl.create 16 in
      let summed_fu = ref 0.0 in
      List.iter
        (fun id ->
          let node = s.Types.nodes.(id) in
          if Types.is_behavior node then
            match lookup t ~tech node.n_name with
            | None -> ()
            | Some a ->
                summed_fu := !summed_fu +. a.fu_area;
                List.iter
                  (fun (op, n) ->
                    let prev = Option.value (Hashtbl.find_opt shared op) ~default:0 in
                    Hashtbl.replace shared op (max prev n))
                  a.units)
        members;
      let shared_fu =
        Hashtbl.fold
          (fun op n acc ->
            acc +. (float_of_int n *. (asic.Tech.Asic_model.fu_of op).Tech.Asic_model.area_gates))
          shared 0.0
      in
      naive -. !summed_fu +. shared_fu

let sharing_saving est t comp = Float.max 0.0 (Estimate.size est comp -. size est t comp)
