lib/core/build.ml: Array Flow Hashtbl List Option Types Vhdl
