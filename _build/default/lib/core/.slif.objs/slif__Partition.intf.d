lib/core/partition.mli: Types
