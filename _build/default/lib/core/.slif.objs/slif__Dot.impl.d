lib/core/dot.ml: Array Buffer List Partition Printf String Types
