lib/core/text.ml: Array Buffer List Printf String Types
