lib/core/validate.ml: Array List Partition Printf Types
