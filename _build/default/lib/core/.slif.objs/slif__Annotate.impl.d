lib/core/annotate.ml: Array Flow List Tech Types Vhdl
