lib/core/annotate.mli: Flow Tech Types Vhdl
