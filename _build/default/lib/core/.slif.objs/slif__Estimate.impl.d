lib/core/estimate.ml: Array Float Graph Hashtbl List Option Partition Printf Slif_util Types
