lib/core/hierarchy.mli: Estimate Partition Types
