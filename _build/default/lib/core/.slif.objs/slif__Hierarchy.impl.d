lib/core/hierarchy.ml: Array Estimate Graph List Partition Types
