lib/core/validate.mli: Partition Types
