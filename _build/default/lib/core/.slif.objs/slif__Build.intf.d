lib/core/build.mli: Flow Types Vhdl
