lib/core/types.ml: Array List
