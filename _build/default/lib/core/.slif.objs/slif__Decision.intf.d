lib/core/decision.mli: Partition Types
