lib/core/graph.ml: Array Hashtbl List Types
