lib/core/hwshare.ml: Array Estimate Float Flow Graph Hashtbl List Map Option Partition String Tech Types Vhdl
