lib/core/text.mli: Types
