lib/core/partition.ml: Array List Option Printf Types
