lib/core/stats.ml: Array Printf Types
