lib/core/dot.mli: Partition Types
