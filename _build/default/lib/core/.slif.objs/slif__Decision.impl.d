lib/core/decision.ml: Array Buffer List Partition Printf String Types
