lib/core/hwshare.mli: Estimate Flow Partition Tech Types Vhdl
