lib/core/graph.mli: Types
