lib/core/estimate.mli: Graph Partition Types
