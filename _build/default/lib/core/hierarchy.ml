type group = { g_name : string; g_members : Partition.comp list }

let make ~name members =
  if members = [] then invalid_arg "Hierarchy.make: empty group";
  if List.length (List.sort_uniq compare members) <> List.length members then
    invalid_arg "Hierarchy.make: duplicate members";
  { g_name = name; g_members = members }

let contains group comp = List.mem comp group.g_members

let endpoint_inside part group node =
  match Partition.comp_of part node with
  | Some comp -> contains group comp
  | None -> false

let crosses est group (c : Types.channel) =
  let part = Estimate.partition est in
  let src_in = endpoint_inside part group c.c_src in
  let dst_in =
    match c.c_dst with
    | Types.Dport _ -> false
    | Types.Dnode d -> endpoint_inside part group d
  in
  src_in <> dst_in

let inside est group (c : Types.channel) =
  let part = Estimate.partition est in
  endpoint_inside part group c.c_src
  &&
  match c.c_dst with
  | Types.Dport _ -> false
  | Types.Dnode d -> endpoint_inside part group d

let all_chans est = Array.to_list (Graph.slif (Estimate.graph est)).Types.chans

let cut_chans est group = List.filter (crosses est group) (all_chans est)

let io_pins est group =
  let s = Graph.slif (Estimate.graph est) in
  let part = Estimate.partition est in
  let buses =
    List.sort_uniq compare
      (List.map (fun (c : Types.channel) -> Partition.bus_of_exn part c.c_id)
         (cut_chans est group))
  in
  List.fold_left (fun acc b -> acc + s.Types.buses.(b).Types.b_bitwidth) 0 buses

let internal_traffic_mbps est group =
  List.fold_left
    (fun acc c -> if inside est group c then acc +. Estimate.chan_bitrate_mbps est c else acc)
    0.0 (all_chans est)

let sizes est group =
  let s = Graph.slif (Estimate.graph est) in
  List.map
    (fun comp -> (Partition.comp_name s comp, Estimate.size est comp))
    group.g_members
