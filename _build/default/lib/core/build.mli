(** Construction of the SLIF access graph from a parsed specification.

    One node per process, per subprogram and per architecture-level
    variable or signal; one port per entity port; one channel per distinct
    (accessor behavior, accessed object) pair, with access frequencies
    summed over all access sites (paper: the two calls of EvaluateRule by
    FuzzyMain form a single edge).  Subprogram locals, parameters,
    constants and loop indices stay inside their behavior.

    Message-pass [send]/[receive] statements connect the sending behavior
    to every behavior that receives on the same abstract channel name; a
    send with no receiver becomes a channel to an implicit port of that
    name.

    Concurrency tags: channels whose every access site lies in the same
    [par] block share a tag, as do channels whose every site lies in the
    same statement (the schedule-derived tags of Section 2.4.1). *)

val build :
  ?profile:Flow.Profile.t -> ?name:string -> Vhdl.Sem.t -> Types.t
(** [build sem] constructs the access graph with empty component sets and
    no ict/size annotations (see {!Annotate}).  [name] defaults to the
    design's entity name. *)
