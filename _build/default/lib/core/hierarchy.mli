(** Hierarchical components (the paper's future-work extension).

    A {e group} is a set of components implemented together — chips on a
    board, cores in a package.  Estimation lifts to the group boundary:
    a channel is internal when both endpoints are inside the group (even
    on different member components), and the group's I/O is the total
    bitwidth of buses carrying channels that cross its boundary — eq. 6
    applied one level up. *)

type group = { g_name : string; g_members : Partition.comp list }

val make : name:string -> Partition.comp list -> group
(** Raises [Invalid_argument] on an empty member list or duplicates. *)

val contains : group -> Partition.comp -> bool

val cut_chans : Estimate.t -> group -> Types.channel list
(** Channels with exactly one endpoint inside the group (port
    destinations count as outside). *)

val io_pins : Estimate.t -> group -> int
(** Total bitwidth of buses carrying at least one group-crossing channel. *)

val internal_traffic_mbps : Estimate.t -> group -> float
(** Sum of bitrates of channels entirely inside the group — the traffic a
    board-level bus would not see. *)

val sizes : Estimate.t -> group -> (string * float) list
(** Per-member sizes (component name, size on its own technology); sizes
    of different technologies are not summed because their units differ
    (bytes / gates / words). *)
