(** Proper-partition checks (paper, Section 2.2).

    A partition is proper when every behavior is on exactly one processor,
    every variable on exactly one processor or memory, every channel on
    exactly one bus, and every assigned technology actually carries a
    weight for the object placed on it. *)

type violation =
  | Unassigned_node of int
  | Unassigned_chan of int
  | Behavior_on_memory of int        (* behaviors may only go to processors *)
  | Missing_weight of int * string   (* node has no ict/size for its component's tech *)

val violation_to_string : Types.t -> violation -> string

val check : Partition.t -> violation list
(** Empty list = proper partition. *)

val is_proper : Partition.t -> bool
