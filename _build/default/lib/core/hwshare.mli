(** Shared-hardware size estimation (the paper's reference [1] refinement).

    Section 2.4.3 concedes that summing per-behavior gate weights
    "may be inaccurate for datapath-intensive behaviors on a custom
    processor, since such behaviors will likely share much hardware",
    and defers the solution to reference [1].  This module is that
    solution, kept preprocessed in SLIF style:

    - {!demands} runs once, next to {!Annotate}: for each behavior and
      each custom technology it records the functional units the
      pseudo-synthesizer would allocate;
    - {!size} answers per-partition queries by lookups: behaviors mapped
      to one custom component execute at different times, so the
      component needs only the {e maximum} unit count per operation class
      across its members — not the sum — while registers, steering and
      control remain per-behavior.

    The naive eq. 4 estimate is an upper bound: [size est d comp <=
    Estimate.size est comp], with equality for single-behavior components
    and components whose members use disjoint unit classes. *)

type t
(** Preprocessed per-behavior functional-unit allocations. *)

val demands :
  ?profile:Flow.Profile.t ->
  techs:Tech.Parts.technology list ->
  Vhdl.Sem.t ->
  t
(** One pseudo-synthesis census per behavior per custom technology, as in
    {!Annotate.run} (the two are meant to be computed together). *)

val behavior_fu_area : t -> tech:Types.tech_name -> string -> float option
(** Unit area the named behavior would occupy alone on [tech]; [None] for
    unknown behaviors or non-custom technologies. *)

val size : Estimate.t -> t -> Partition.comp -> float
(** Equations 4-5 with unit sharing on custom processors.  For standard
    processors and memories this equals [Estimate.size] (bytes and words
    do not share).  Raises like [Estimate.size] on missing weights. *)

val sharing_saving : Estimate.t -> t -> Partition.comp -> float
(** [Estimate.size] minus {!size}: the gates the naive summation
    over-reports for this component (>= 0). *)
