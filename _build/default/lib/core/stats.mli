(** Size statistics of a SLIF access graph — the numbers the paper's
    Results section reports per example (BV and C counts) and compares
    against finer-grained formats. *)

type t = {
  behaviors : int;
  processes : int;     (* subset of behaviors *)
  variables : int;
  bv : int;            (* behaviors + variables: the paper's BV column *)
  ports : int;
  channels : int;      (* the paper's C column *)
  call_chans : int;
  var_chans : int;
  port_chans : int;
  message_chans : int;
  max_out_degree : int;
}

val of_slif : Types.t -> t

val to_string : t -> string
