type t = {
  behaviors : int;
  processes : int;
  variables : int;
  bv : int;
  ports : int;
  channels : int;
  call_chans : int;
  var_chans : int;
  port_chans : int;
  message_chans : int;
  max_out_degree : int;
}

let of_slif (s : Types.t) =
  let behaviors = ref 0 and processes = ref 0 and variables = ref 0 in
  Array.iter
    (fun (n : Types.node) ->
      match n.n_kind with
      | Types.Behavior { is_process } ->
          incr behaviors;
          if is_process then incr processes
      | Types.Variable _ -> incr variables)
    s.nodes;
  let count kind =
    Array.fold_left
      (fun acc (c : Types.channel) -> if c.c_kind = kind then acc + 1 else acc)
      0 s.chans
  in
  let out_degree = Array.make (Array.length s.nodes) 0 in
  Array.iter (fun (c : Types.channel) -> out_degree.(c.c_src) <- out_degree.(c.c_src) + 1) s.chans;
  {
    behaviors = !behaviors;
    processes = !processes;
    variables = !variables;
    bv = !behaviors + !variables;
    ports = Array.length s.ports;
    channels = Array.length s.chans;
    call_chans = count Types.Call;
    var_chans = count Types.Var_access;
    port_chans = count Types.Port_access;
    message_chans = count Types.Message;
    max_out_degree = Array.fold_left max 0 out_degree;
  }

let to_string t =
  Printf.sprintf
    "BV=%d (behaviors=%d of which processes=%d, variables=%d) ports=%d C=%d \
     (call=%d var=%d port=%d msg=%d) max-out-degree=%d"
    t.bv t.behaviors t.processes t.variables t.ports t.channels t.call_chans t.var_chans
    t.port_chans t.message_chans t.max_out_degree
