type t = {
  slif : Types.t;
  out_ : Types.channel list array;   (* by source node id *)
  in_ : Types.channel list array;    (* by destination node id *)
}

let make (s : Types.t) =
  let n = Array.length s.nodes in
  let out_ = Array.make n [] in
  let in_ = Array.make n [] in
  (* Iterate in reverse so the per-node lists end up in channel order. *)
  for i = Array.length s.chans - 1 downto 0 do
    let c = s.chans.(i) in
    out_.(c.c_src) <- c :: out_.(c.c_src);
    match c.c_dst with
    | Types.Dnode d -> in_.(d) <- c :: in_.(d)
    | Types.Dport _ -> ()
  done;
  { slif = s; out_; in_ }

let slif t = t.slif

let out_chans t id = t.out_.(id)
let in_chans t id = t.in_.(id)

let dedup ids = List.sort_uniq compare ids

let callers t id =
  dedup
    (List.filter_map
       (fun (c : Types.channel) -> if c.c_kind = Types.Call then Some c.c_src else None)
       (in_chans t id))

let callees t id =
  dedup
    (List.filter_map
       (fun (c : Types.channel) ->
         match (c.c_kind, c.c_dst) with
         | Types.Call, Types.Dnode d -> Some d
         | _ -> None)
       (out_chans t id))

let has_call_cycle t =
  let n = Array.length t.slif.nodes in
  (* 0 = unvisited, 1 = on stack, 2 = done *)
  let state = Array.make n 0 in
  let rec visit id =
    if state.(id) = 1 then true
    else if state.(id) = 2 then false
    else begin
      state.(id) <- 1;
      let cyclic = List.exists visit (callees t id) in
      state.(id) <- 2;
      cyclic
    end
  in
  let rec any id = id < n && (visit id || any (id + 1)) in
  any 0

let bfs ~next start =
  let seen = Hashtbl.create 16 in
  let rec loop acc = function
    | [] -> List.rev acc
    | id :: rest ->
        if Hashtbl.mem seen id then loop acc rest
        else begin
          Hashtbl.add seen id ();
          loop (id :: acc) (next id @ rest)
        end
  in
  loop [] [ start ]

let reachable_from t id =
  bfs id ~next:(fun id ->
      List.filter_map
        (fun (c : Types.channel) ->
          match c.c_dst with Types.Dnode d -> Some d | Types.Dport _ -> None)
        (out_chans t id))

let transitive_callers t id =
  (* Any behavior with a channel to [id] depends on its mapping; so do that
     behavior's transitive accessors. *)
  bfs id ~next:(fun id -> dedup (List.map (fun (c : Types.channel) -> c.c_src) (in_chans t id)))
