type violation =
  | Unassigned_node of int
  | Unassigned_chan of int
  | Behavior_on_memory of int
  | Missing_weight of int * string

let violation_to_string (s : Types.t) = function
  | Unassigned_node n ->
      Printf.sprintf "node %s is not mapped to any component" s.nodes.(n).Types.n_name
  | Unassigned_chan c -> Printf.sprintf "channel %d is not mapped to any bus" c
  | Behavior_on_memory n ->
      Printf.sprintf "behavior %s is mapped to a memory" s.nodes.(n).Types.n_name
  | Missing_weight (n, tech) ->
      Printf.sprintf "node %s has no weight for technology %s" s.nodes.(n).Types.n_name tech

let check part =
  let s = Partition.slif part in
  let violations = ref [] in
  let add v = violations := v :: !violations in
  Array.iteri
    (fun i (node : Types.node) ->
      match Partition.comp_of part i with
      | None -> add (Unassigned_node i)
      | Some comp -> (
          (match (node.n_kind, comp) with
          | Types.Behavior _, Partition.Cmem _ -> add (Behavior_on_memory i)
          | _ -> ());
          let tech = Partition.comp_tech s comp in
          match (Types.ict_on node tech, Types.size_on node tech) with
          | Some _, Some _ -> ()
          | _ -> add (Missing_weight (i, tech))))
    s.nodes;
  Array.iteri
    (fun i (_ : Types.channel) ->
      match Partition.bus_of part i with None -> add (Unassigned_chan i) | Some _ -> ())
    s.chans;
  List.rev !violations

let is_proper part = check part = []
