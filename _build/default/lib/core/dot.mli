(** Graphviz export of a SLIF access graph (Figures 2 and 3).

    Process nodes are drawn bold, other behaviors as ellipses, variables
    as boxes and ports as diamonds.  With [annotations] the edges carry
    accfreq / bits labels and behavior nodes list their ict weights, as in
    the paper's Figure 3. *)

val to_dot : ?annotations:bool -> ?partition:Partition.t -> Types.t -> string
(** When [partition] is given, nodes are clustered by component. *)
