(** Abstract operation classes used by the technology cost models.

    The pseudo-compiler and pseudo-synthesizer both reduce a behavior to a
    census over these classes; each concrete technology then assigns
    cycles / bytes / gates / delays per class. *)

type t =
  | Add       (* additive: +, -, negate, abs, address computations *)
  | Mul
  | Div       (* division, mod, rem *)
  | Cmp       (* relational operators *)
  | Logic     (* and/or/xor/not/concat *)
  | Move      (* register-to-register / assignment overhead *)
  | Load      (* read of a stored variable *)
  | Store     (* write of a stored variable *)
  | Branch    (* control transfer: if/case/loop back-edge *)
  | Call_op   (* subprogram call/return linkage *)
  | Io_op     (* port or message-channel access *)

let all = [ Add; Mul; Div; Cmp; Logic; Move; Load; Store; Branch; Call_op; Io_op ]

let to_string = function
  | Add -> "add" | Mul -> "mul" | Div -> "div" | Cmp -> "cmp" | Logic -> "logic"
  | Move -> "move" | Load -> "load" | Store -> "store" | Branch -> "branch"
  | Call_op -> "call" | Io_op -> "io"

let index = function
  | Add -> 0 | Mul -> 1 | Div -> 2 | Cmp -> 3 | Logic -> 4 | Move -> 5
  | Load -> 6 | Store -> 7 | Branch -> 8 | Call_op -> 9 | Io_op -> 10

let count = 11

let of_binop : Vhdl.Ast.binop -> t = function
  | Vhdl.Ast.Add | Vhdl.Ast.Sub -> Add
  | Vhdl.Ast.Mul -> Mul
  | Vhdl.Ast.Div | Vhdl.Ast.Mod | Vhdl.Ast.Rem -> Div
  | Vhdl.Ast.Eq | Vhdl.Ast.Neq | Vhdl.Ast.Lt | Vhdl.Ast.Le | Vhdl.Ast.Gt | Vhdl.Ast.Ge -> Cmp
  | Vhdl.Ast.And | Vhdl.Ast.Or | Vhdl.Ast.Xor | Vhdl.Ast.Concat -> Logic

let of_unop : Vhdl.Ast.unop -> t = function
  | Vhdl.Ast.Neg | Vhdl.Ast.Abs -> Add
  | Vhdl.Ast.Not -> Logic
