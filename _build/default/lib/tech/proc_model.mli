(** Pseudo-compiler: standard-processor cost model.

    Stands in for the paper's "compile each procedure into the processor's
    instruction set" preprocessing step (Section 2.1): a one-pass,
    deterministic mapping from a behavior's operation census to instruction
    bytes (size weight) and cycles (ict weight).  See DESIGN.md §5. *)

type t = {
  name : string;               (* technology identifier, e.g. "cpu32" *)
  clock_mhz : float;
  cycles : Optype.t -> float;  (* average cycles per executed op *)
  bytes : Optype.t -> int;     (* instruction bytes per static op site *)
  code_overhead_bytes : int;   (* per-behavior prologue/epilogue *)
  word_bits : int;             (* natural data width, for variable sizing *)
  var_access_us : float;       (* ict of a variable stored on this processor *)
}

val behavior_ict_us : t -> Census.t -> float
(** Internal computation time: dynamic census weighted by per-op cycles,
    divided by the clock. *)

val behavior_size_bytes : t -> Census.t -> float
(** Code size: static census weighted by per-op instruction bytes, plus
    the per-behavior overhead. *)

val variable_size_bytes : t -> storage_bits:int -> float
(** Data bytes when the variable lives in the processor's memory: storage
    rounded up to whole words. *)
