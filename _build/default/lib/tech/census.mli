(** Operation census of a behavior.

    Reduces a behavior body to per-{!Optype} counts:
    - [dynamic]: expected executions per start-to-finish run (loop- and
      probability-weighted), with loads/stores/calls of {e non-local}
      objects excluded — those are channel accesses whose cost the SLIF
      execution-time equation adds separately (paper, eq. 1);
    - [static]: one count per site, communication included — the basis of
      code size and hardware area.

    [is_local name] decides whether an accessed name is internal to the
    behavior (locals, parameters, loop indices, constants) or a functional
    object of its own (global variable, signal, port, subprogram). *)

type t = { dynamic : float array; static : int array }
(** Arrays indexed by [Optype.index]. *)

val dyn : t -> Optype.t -> float
val stat : t -> Optype.t -> int

val of_behavior :
  profile:Flow.Profile.t ->
  is_local:(string -> bool) ->
  is_sub:(string -> bool) ->
  name:string ->
  Vhdl.Ast.stmt list ->
  t
(** [is_sub name] identifies subprogram names, so that a single-argument
    call (syntactically identical to an array index) is counted as call
    linkage rather than as a load. *)

val total_dynamic : t -> float
val total_static : t -> int
