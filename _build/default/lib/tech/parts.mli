(** Stock catalog of component technologies and buses.

    Every SLIF component instance references one of these technologies by
    name; the annotator computes one ict / size weight per technology for
    every functional object, which is exactly the paper's "list of
    weights, one weight for each type of system component on which that
    node could possibly be implemented". *)

type technology =
  | Proc of Proc_model.t
  | Asic of Asic_model.t
  | Mem of Mem_model.t

val technology_name : technology -> string

type bus_kind = {
  bk_name : string;
  bk_bitwidth : int;
  bk_ts_us : float;          (* transfer time within one component *)
  bk_td_us : float;          (* transfer time between components *)
  bk_capacity_mbps : float;  (* peak bitrate, for capacity-limited estimates *)
}

(* Processors *)
val mcu8 : Proc_model.t    (* small 8-bit microcontroller *)
val cpu32 : Proc_model.t   (* 32-bit embedded RISC *)
val dsp16 : Proc_model.t   (* 16-bit DSP: single-cycle MAC, weak control *)

(* Custom processors *)
val asic_gal : Asic_model.t   (* gate-array ASIC *)
val fpga : Asic_model.t       (* field-programmable *)

(* Memories *)
val sram16 : Mem_model.t
val dram32 : Mem_model.t
val eeprom8 : Mem_model.t  (* slow serial configuration store *)

(* Buses *)
val bus8 : bus_kind
val bus16 : bus_kind
val bus32 : bus_kind

val all : technology list
val find : string -> technology option
val find_bus : string -> bus_kind option
val all_buses : bus_kind list
