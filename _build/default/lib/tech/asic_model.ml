type fu = { area_gates : float; cycles_per_op : int; available : int }

type t = {
  name : string;
  clock_ns : float;
  fu_of : Optype.t -> fu;
  reg_gates_per_bit : float;
  mux_gates_per_op : float;
  ctrl_gates_per_op : float;
  var_access_us : float;
}

let allocate t census op =
  let stat = Census.stat census op in
  if stat = 0 then 0
  else
    let wanted = max 1 ((stat + 9) / 10) in
    min wanted (t.fu_of op).available

let behavior_ict_us t census =
  let cycles =
    List.fold_left
      (fun acc op ->
        let d = Census.dyn census op in
        if d = 0.0 then acc
        else
          let units = max 1 (allocate t census op) in
          let fu = t.fu_of op in
          acc +. (d /. float_of_int units *. float_of_int fu.cycles_per_op))
      0.0 Optype.all
  in
  cycles *. t.clock_ns /. 1000.0

let behavior_size_gates t census ~local_bits =
  let fu_area =
    List.fold_left
      (fun acc op ->
        acc +. (float_of_int (allocate t census op) *. (t.fu_of op).area_gates))
      0.0 Optype.all
  in
  let sites = float_of_int (Census.total_static census) in
  fu_area
  +. (float_of_int local_bits *. t.reg_gates_per_bit)
  +. (sites *. t.mux_gates_per_op)
  +. (sites *. t.ctrl_gates_per_op)

let variable_size_gates t ~storage_bits = float_of_int storage_bits *. t.reg_gates_per_bit
