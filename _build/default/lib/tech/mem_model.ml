type t = { name : string; word_bits : int; access_us : float }

let variable_size_words t ~storage_bits =
  float_of_int (Slif_util.Bitmath.ceil_div storage_bits t.word_bits)

let variable_access_us t = t.access_us
