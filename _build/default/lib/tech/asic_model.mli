(** Pseudo-synthesizer: custom-processor (ASIC / FPGA) cost model.

    Stands in for the paper's "synthesize the behavior to a structure using
    that component's technology" step: functional units are allocated from
    a finite library, dynamic operations are serialized over the allocated
    units to yield control steps (→ ict), and area sums allocated units,
    local registers, steering logic and control (→ gates).  The same
    schedule determines which accesses of a behavior can occur in the same
    control step, which is where SLIF's concurrency tags come from
    (Section 2.4.1). *)

type fu = {
  area_gates : float;     (* one functional unit of this class *)
  cycles_per_op : int;    (* control steps one operation occupies *)
  available : int;        (* library bound on parallel units *)
}

type t = {
  name : string;              (* technology identifier, e.g. "asic_gal" *)
  clock_ns : float;
  fu_of : Optype.t -> fu;
  reg_gates_per_bit : float;
  mux_gates_per_op : float;   (* steering overhead per static op site *)
  ctrl_gates_per_op : float;  (* FSM overhead per static op site *)
  var_access_us : float;      (* ict of a variable registered on this ASIC *)
}

val allocate : t -> Census.t -> Optype.t -> int
(** Units allocated for an op class: zero when the class is unused, else
    one unit per ten static sites, clamped to the library's [available]. *)

val behavior_ict_us : t -> Census.t -> float
(** Scheduled cycles: each op class's dynamic count serialized over its
    allocated units, times [cycles_per_op], times the clock period. *)

val behavior_size_gates : t -> Census.t -> local_bits:int -> float
(** Area: allocated FUs + [local_bits] of registers + mux and control
    overhead proportional to static op sites. *)

val variable_size_gates : t -> storage_bits:int -> float
(** A variable kept on the ASIC occupies register area. *)
