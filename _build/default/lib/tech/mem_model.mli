(** Standard-memory cost model: variables mapped to a memory component are
    sized in words (paper, Section 2.4.3), and their ict is the storage
    access time. *)

type t = {
  name : string;       (* technology identifier, e.g. "sram16" *)
  word_bits : int;
  access_us : float;   (* average of read and write time *)
}

val variable_size_words : t -> storage_bits:int -> float
val variable_access_us : t -> float
