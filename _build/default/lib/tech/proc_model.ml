type t = {
  name : string;
  clock_mhz : float;
  cycles : Optype.t -> float;
  bytes : Optype.t -> int;
  code_overhead_bytes : int;
  word_bits : int;
  var_access_us : float;
}

let behavior_ict_us t census =
  let cycles =
    List.fold_left
      (fun acc op -> acc +. (Census.dyn census op *. t.cycles op))
      0.0 Optype.all
  in
  cycles /. t.clock_mhz

let behavior_size_bytes t census =
  let bytes =
    List.fold_left
      (fun acc op -> acc + (Census.stat census op * t.bytes op))
      0 Optype.all
  in
  float_of_int (bytes + t.code_overhead_bytes)

let variable_size_bytes t ~storage_bits =
  let word_bytes = (t.word_bits + 7) / 8 in
  float_of_int (Slif_util.Bitmath.ceil_div storage_bits t.word_bits * word_bytes)
