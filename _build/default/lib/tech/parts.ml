type technology =
  | Proc of Proc_model.t
  | Asic of Asic_model.t
  | Mem of Mem_model.t

let technology_name = function
  | Proc p -> p.Proc_model.name
  | Asic a -> a.Asic_model.name
  | Mem m -> m.Mem_model.name

type bus_kind = {
  bk_name : string;
  bk_bitwidth : int;
  bk_ts_us : float;
  bk_td_us : float;
  bk_capacity_mbps : float;
}

(* --- Processors --------------------------------------------------------- *)

let mcu8 : Proc_model.t =
  {
    name = "mcu8";
    clock_mhz = 8.0;
    cycles =
      (function
      | Optype.Add -> 2.0 | Optype.Mul -> 12.0 | Optype.Div -> 40.0
      | Optype.Cmp -> 2.0 | Optype.Logic -> 1.0 | Optype.Move -> 1.0
      | Optype.Load -> 3.0 | Optype.Store -> 3.0 | Optype.Branch -> 3.0
      | Optype.Call_op -> 6.0 | Optype.Io_op -> 4.0);
    bytes =
      (function
      | Optype.Add -> 2 | Optype.Mul -> 4 | Optype.Div -> 6
      | Optype.Cmp -> 2 | Optype.Logic -> 2 | Optype.Move -> 2
      | Optype.Load -> 3 | Optype.Store -> 3 | Optype.Branch -> 3
      | Optype.Call_op -> 4 | Optype.Io_op -> 3);
    code_overhead_bytes = 16;
    word_bits = 8;
    var_access_us = 0.375;  (* 3 cycles at 8 MHz *)
  }

let cpu32 : Proc_model.t =
  {
    name = "cpu32";
    clock_mhz = 25.0;
    cycles =
      (function
      | Optype.Add -> 1.0 | Optype.Mul -> 4.0 | Optype.Div -> 18.0
      | Optype.Cmp -> 1.0 | Optype.Logic -> 1.0 | Optype.Move -> 1.0
      | Optype.Load -> 2.0 | Optype.Store -> 2.0 | Optype.Branch -> 2.0
      | Optype.Call_op -> 4.0 | Optype.Io_op -> 3.0);
    bytes =
      (function
      | Optype.Add -> 4 | Optype.Mul -> 4 | Optype.Div -> 4
      | Optype.Cmp -> 4 | Optype.Logic -> 4 | Optype.Move -> 4
      | Optype.Load -> 4 | Optype.Store -> 4 | Optype.Branch -> 4
      | Optype.Call_op -> 8 | Optype.Io_op -> 4);
    code_overhead_bytes = 32;
    word_bits = 32;
    var_access_us = 0.08;  (* 2 cycles at 25 MHz *)
  }

(* A 16-bit DSP: single-cycle multiply-accumulate, weak control flow. *)
let dsp16 : Proc_model.t =
  {
    name = "dsp16";
    clock_mhz = 40.0;
    cycles =
      (function
      | Optype.Add -> 1.0 | Optype.Mul -> 1.0 | Optype.Div -> 40.0
      | Optype.Cmp -> 1.0 | Optype.Logic -> 1.0 | Optype.Move -> 1.0
      | Optype.Load -> 1.0 | Optype.Store -> 1.0 | Optype.Branch -> 4.0
      | Optype.Call_op -> 6.0 | Optype.Io_op -> 3.0);
    bytes =
      (function
      | Optype.Add -> 2 | Optype.Mul -> 2 | Optype.Div -> 6
      | Optype.Cmp -> 2 | Optype.Logic -> 2 | Optype.Move -> 2
      | Optype.Load -> 2 | Optype.Store -> 2 | Optype.Branch -> 4
      | Optype.Call_op -> 4 | Optype.Io_op -> 2);
    code_overhead_bytes = 24;
    word_bits = 16;
    var_access_us = 0.025;  (* 1 cycle at 40 MHz *)
  }

(* --- Custom processors --------------------------------------------------- *)

let asic_gal : Asic_model.t =
  {
    name = "asic_gal";
    clock_ns = 20.0;
    fu_of =
      (function
      | Optype.Add -> { area_gates = 180.0; cycles_per_op = 1; available = 4 }
      | Optype.Mul -> { area_gates = 1100.0; cycles_per_op = 2; available = 2 }
      | Optype.Div -> { area_gates = 2100.0; cycles_per_op = 8; available = 1 }
      | Optype.Cmp -> { area_gates = 90.0; cycles_per_op = 1; available = 4 }
      | Optype.Logic -> { area_gates = 40.0; cycles_per_op = 1; available = 8 }
      | Optype.Move -> { area_gates = 20.0; cycles_per_op = 1; available = 8 }
      | Optype.Load -> { area_gates = 60.0; cycles_per_op = 1; available = 2 }
      | Optype.Store -> { area_gates = 60.0; cycles_per_op = 1; available = 2 }
      | Optype.Branch -> { area_gates = 30.0; cycles_per_op = 1; available = 4 }
      | Optype.Call_op -> { area_gates = 50.0; cycles_per_op = 2; available = 2 }
      | Optype.Io_op -> { area_gates = 80.0; cycles_per_op = 2; available = 2 });
    reg_gates_per_bit = 8.0;
    mux_gates_per_op = 3.0;
    ctrl_gates_per_op = 5.0;
    var_access_us = 0.02;
  }

let fpga : Asic_model.t =
  {
    name = "fpga";
    clock_ns = 40.0;
    fu_of =
      (function
      | Optype.Add -> { area_gates = 260.0; cycles_per_op = 1; available = 4 }
      | Optype.Mul -> { area_gates = 1600.0; cycles_per_op = 3; available = 1 }
      | Optype.Div -> { area_gates = 3000.0; cycles_per_op = 12; available = 1 }
      | Optype.Cmp -> { area_gates = 130.0; cycles_per_op = 1; available = 4 }
      | Optype.Logic -> { area_gates = 60.0; cycles_per_op = 1; available = 8 }
      | Optype.Move -> { area_gates = 30.0; cycles_per_op = 1; available = 8 }
      | Optype.Load -> { area_gates = 90.0; cycles_per_op = 1; available = 2 }
      | Optype.Store -> { area_gates = 90.0; cycles_per_op = 1; available = 2 }
      | Optype.Branch -> { area_gates = 45.0; cycles_per_op = 1; available = 4 }
      | Optype.Call_op -> { area_gates = 75.0; cycles_per_op = 2; available = 2 }
      | Optype.Io_op -> { area_gates = 120.0; cycles_per_op = 2; available = 2 });
    reg_gates_per_bit = 12.0;
    mux_gates_per_op = 4.0;
    ctrl_gates_per_op = 7.0;
    var_access_us = 0.04;
  }

(* --- Memories ------------------------------------------------------------ *)

let sram16 : Mem_model.t = { name = "sram16"; word_bits = 16; access_us = 0.05 }
let dram32 : Mem_model.t = { name = "dram32"; word_bits = 32; access_us = 0.15 }

(* Slow serial EEPROM for configuration tables. *)
let eeprom8 : Mem_model.t = { name = "eeprom8"; word_bits = 8; access_us = 2.0 }

(* --- Buses ---------------------------------------------------------------- *)

let bus8 =
  { bk_name = "bus8"; bk_bitwidth = 8; bk_ts_us = 0.05; bk_td_us = 0.4; bk_capacity_mbps = 20.0 }

let bus16 =
  { bk_name = "bus16"; bk_bitwidth = 16; bk_ts_us = 0.04; bk_td_us = 0.25; bk_capacity_mbps = 64.0 }

let bus32 =
  { bk_name = "bus32"; bk_bitwidth = 32; bk_ts_us = 0.03; bk_td_us = 0.15; bk_capacity_mbps = 200.0 }

let all =
  [
    Proc mcu8; Proc cpu32; Proc dsp16;
    Asic asic_gal; Asic fpga;
    Mem sram16; Mem dram32; Mem eeprom8;
  ]

let find name =
  List.find_opt (fun t -> technology_name t = name) all

let all_buses = [ bus8; bus16; bus32 ]

let find_bus name = List.find_opt (fun b -> b.bk_name = name) all_buses
