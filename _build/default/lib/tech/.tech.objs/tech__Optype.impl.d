lib/tech/optype.ml: Vhdl
