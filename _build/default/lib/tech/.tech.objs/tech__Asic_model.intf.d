lib/tech/asic_model.mli: Census Optype
