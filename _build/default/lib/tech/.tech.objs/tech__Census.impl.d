lib/tech/census.ml: Array Flow List Optype Vhdl
