lib/tech/parts.ml: Asic_model List Mem_model Optype Proc_model
