lib/tech/mem_model.ml: Slif_util
