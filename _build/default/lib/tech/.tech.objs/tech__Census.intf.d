lib/tech/census.mli: Flow Optype Vhdl
