lib/tech/asic_model.ml: Census List Optype
