lib/tech/proc_model.ml: Census List Optype Slif_util
