lib/tech/proc_model.mli: Census Optype
