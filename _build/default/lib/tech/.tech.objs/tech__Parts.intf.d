lib/tech/parts.mli: Asic_model Mem_model Proc_model
