lib/tech/mem_model.mli:
