type t = { dynamic : float array; static : int array }

let dyn t op = t.dynamic.(Optype.index op)
let stat t op = t.static.(Optype.index op)

let add_dyn t op x = t.dynamic.(Optype.index op) <- t.dynamic.(Optype.index op) +. x
let add_stat t op n = t.static.(Optype.index op) <- t.static.(Optype.index op) + n

(* Count the pure-computation ops of one expression occurrence (loads and
   calls are accounted from access events instead). *)
let rec expr_ops f e =
  match e with
  | Vhdl.Ast.Int_lit _ | Vhdl.Ast.Bool_lit _ | Vhdl.Ast.Name _ | Vhdl.Ast.Attr _ -> ()
  | Vhdl.Ast.Index (_, i) ->
      (* Address computation for the element select. *)
      f Optype.Add;
      expr_ops f i
  | Vhdl.Ast.Call (_, args) -> List.iter (expr_ops f) args
  | Vhdl.Ast.Binop (op, a, b) ->
      f (Optype.of_binop op);
      expr_ops f a;
      expr_ops f b
  | Vhdl.Ast.Unop (op, a) ->
      f (Optype.of_unop op);
      expr_ops f a

let stmt_ops t (mult : Flow.Count.mult) s =
  let both op ~d ~s:n =
    add_dyn t op d;
    add_stat t op n
  in
  match s with
  | Vhdl.Ast.Assign _ | Vhdl.Ast.Signal_assign _ -> both Optype.Move ~d:mult.avg ~s:1
  | Vhdl.Ast.If (arms, _) ->
      let n = List.length arms in
      both Optype.Branch ~d:(mult.avg *. float_of_int (n + 1) /. 2.0) ~s:n
  | Vhdl.Ast.Case (_, alts) -> both Optype.Branch ~d:mult.avg ~s:(List.length alts)
  | Vhdl.Ast.For (_, lo, hi, _) ->
      let trips = float_of_int (hi - lo + 1) in
      both Optype.Add ~d:(mult.avg *. trips) ~s:1;
      both Optype.Cmp ~d:(mult.avg *. trips) ~s:1;
      both Optype.Branch ~d:(mult.avg *. trips) ~s:1
  | Vhdl.Ast.While _ ->
      (* The condition's own ops arrive trip-scaled via [fold_exprs]; only
         the back-edge is approximated with the default trip count. *)
      both Optype.Branch ~d:(mult.avg *. Flow.Profile.default_while_trips) ~s:1
  | Vhdl.Ast.Loop_forever _ -> both Optype.Branch ~d:mult.avg ~s:1
  | Vhdl.Ast.Wait_for _ | Vhdl.Ast.Wait_until _ | Vhdl.Ast.Wait_on _ ->
      both Optype.Io_op ~d:mult.avg ~s:1
  | Vhdl.Ast.Return _ -> both Optype.Move ~d:mult.avg ~s:1
  | Vhdl.Ast.Pcall _ | Vhdl.Ast.Par _ | Vhdl.Ast.Send _ | Vhdl.Ast.Receive _
  | Vhdl.Ast.Null_stmt | Vhdl.Ast.Exit_loop ->
      ()

let of_behavior ~profile ~is_local ~is_sub ~name body =
  let t =
    { dynamic = Array.make Optype.count 0.0; static = Array.make Optype.count 0 }
  in
  (* Pure computation from expressions, with exact evaluation multipliers. *)
  Flow.Count.fold_exprs ~profile ~behavior:name body ~init:()
    ~f:(fun () (mult : Flow.Count.mult) e ->
      expr_ops
        (fun op ->
          add_dyn t op mult.avg;
          add_stat t op 1)
        e);
  (* Statement-level overheads. *)
  Flow.Count.fold_stmts ~profile ~behavior:name body ~init:() ~f:(fun () mult s ->
      stmt_ops t mult s);
  (* Storage and linkage traffic from access events.  Local accesses are
     internal computation; non-local ones are channels, whose time the
     estimator adds, so they contribute to static size only. *)
  let events = Flow.Count.events ~profile ~behavior:name body in
  List.iter
    (fun (e : Flow.Count.event) ->
      match e.access with
      | Flow.Count.Read n when is_sub n -> add_stat t Optype.Call_op 1
      | Flow.Count.Read n ->
          add_stat t Optype.Load 1;
          if is_local n then add_dyn t Optype.Load e.mult.avg
      | Flow.Count.Write n ->
          add_stat t Optype.Store 1;
          if is_local n then add_dyn t Optype.Store e.mult.avg
      | Flow.Count.Call _ -> add_stat t Optype.Call_op 1
      | Flow.Count.Message_out _ | Flow.Count.Message_in _ -> add_stat t Optype.Io_op 1)
    events;
  t

let total_dynamic t = Array.fold_left ( +. ) 0.0 t.dynamic
let total_static t = Array.fold_left ( + ) 0 t.static
