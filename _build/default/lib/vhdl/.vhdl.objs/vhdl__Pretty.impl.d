lib/vhdl/pretty.ml: Ast List Printf String
