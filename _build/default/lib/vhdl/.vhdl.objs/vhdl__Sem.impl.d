lib/vhdl/sem.ml: Ast List Map Slif_util String
