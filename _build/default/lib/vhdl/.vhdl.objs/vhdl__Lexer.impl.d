lib/vhdl/lexer.ml: Buffer List Loc String Token
