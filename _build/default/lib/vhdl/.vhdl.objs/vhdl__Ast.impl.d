lib/vhdl/ast.ml: List
