lib/vhdl/pretty.mli: Ast
