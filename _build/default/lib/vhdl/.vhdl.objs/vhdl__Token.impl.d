lib/vhdl/token.ml: Printf String
