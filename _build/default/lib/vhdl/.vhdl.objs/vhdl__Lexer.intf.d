lib/vhdl/lexer.mli: Loc Token
