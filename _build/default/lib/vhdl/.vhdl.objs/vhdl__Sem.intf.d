lib/vhdl/sem.mli: Ast
