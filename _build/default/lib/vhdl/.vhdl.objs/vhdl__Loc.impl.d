lib/vhdl/loc.ml: Printf
