open Ast

let mode_to_string = function In -> "in" | Out -> "out" | Inout -> "inout"

let rec type_to_string = function
  | Integer -> "integer"
  | Natural -> "natural"
  | Boolean -> "boolean"
  | Bit -> "bit"
  | Bit_vector w -> Printf.sprintf "bit_vector(%d)" w
  | Int_range (lo, hi) -> Printf.sprintf "integer range %d to %d" lo hi
  | Array_of { length; lo; elem } ->
      Printf.sprintf "array (%d to %d) of %s" lo (lo + length - 1) (type_to_string elem)
  | Named n -> n

let binop_to_string = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"
  | Mod -> "mod" | Rem -> "rem"
  | Eq -> "=" | Neq -> "/=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "and" | Or -> "or" | Xor -> "xor" | Concat -> "&"

let unop_to_string = function Neg -> "-" | Not -> "not " | Abs -> "abs "

let rec expr_to_string = function
  | Int_lit n -> string_of_int n
  | Bool_lit b -> if b then "true" else "false"
  | Name n -> n
  | Index (n, e) -> Printf.sprintf "%s(%s)" n (expr_to_string e)
  | Attr (n, a) -> Printf.sprintf "%s'%s" n a
  | Call (n, args) ->
      Printf.sprintf "%s(%s)" n (String.concat ", " (List.map expr_to_string args))
  | Binop (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (expr_to_string a) (binop_to_string op) (expr_to_string b)
  | Unop (op, a) -> Printf.sprintf "(%s%s)" (unop_to_string op) (expr_to_string a)

let target_to_string = function
  | Tname n -> n
  | Tindex (n, e) -> Printf.sprintf "%s(%s)" n (expr_to_string e)

let delay_unit_to_string = function Ns -> "ns" | Us -> "us" | Ms -> "ms"

let rec stmt_lines ind stmt =
  let pad = String.make ind ' ' in
  let block body = List.concat_map (stmt_lines (ind + 2)) body in
  match stmt with
  | Assign (t, e) -> [ Printf.sprintf "%s%s := %s;" pad (target_to_string t) (expr_to_string e) ]
  | Signal_assign (t, e) ->
      [ Printf.sprintf "%s%s <= %s;" pad (target_to_string t) (expr_to_string e) ]
  | If (arms, els) ->
      let arm_lines =
        List.concat
          (List.mapi
             (fun i (cond, body) ->
               let kw = if i = 0 then "if" else "elsif" in
               Printf.sprintf "%s%s %s then" pad kw (expr_to_string cond) :: block body)
             arms)
      in
      let else_lines =
        match els with [] -> [] | _ -> (pad ^ "else") :: block els
      in
      arm_lines @ else_lines @ [ pad ^ "end if;" ]
  | Case (subject, alts) ->
      let alt_lines =
        List.concat_map
          (fun (choices, body) ->
            let cs =
              String.concat " | "
                (List.map
                   (function Ch_others -> "others" | Ch_expr e -> expr_to_string e)
                   choices)
            in
            (* Alternative bodies sit one level below their [when]. *)
            Printf.sprintf "%s  when %s =>" pad cs
            :: List.concat_map (stmt_lines (ind + 4)) body)
          alts
      in
      (Printf.sprintf "%scase %s is" pad (expr_to_string subject) :: alt_lines)
      @ [ pad ^ "end case;" ]
  | For (v, lo, hi, body) ->
      (Printf.sprintf "%sfor %s in %d to %d loop" pad v lo hi :: block body)
      @ [ pad ^ "end loop;" ]
  | While (cond, body) ->
      (Printf.sprintf "%swhile %s loop" pad (expr_to_string cond) :: block body)
      @ [ pad ^ "end loop;" ]
  | Loop_forever body -> ((pad ^ "loop") :: block body) @ [ pad ^ "end loop;" ]
  | Pcall (n, []) -> [ Printf.sprintf "%s%s;" pad n ]
  | Pcall (n, args) ->
      [ Printf.sprintf "%s%s(%s);" pad n (String.concat ", " (List.map expr_to_string args)) ]
  | Par calls ->
      let call_lines =
        List.map
          (fun (n, args) ->
            match args with
            | [] -> Printf.sprintf "%s  %s;" pad n
            | _ ->
                Printf.sprintf "%s  %s(%s);" pad n
                  (String.concat ", " (List.map expr_to_string args)))
          calls
      in
      ((pad ^ "par") :: call_lines) @ [ pad ^ "end par;" ]
  | Send (ch, e) -> [ Printf.sprintf "%ssend(%s, %s);" pad ch (expr_to_string e) ]
  | Receive (ch, t) -> [ Printf.sprintf "%sreceive(%s, %s);" pad ch (target_to_string t) ]
  | Wait_for (n, u) -> [ Printf.sprintf "%swait for %d %s;" pad n (delay_unit_to_string u) ]
  | Wait_until e -> [ Printf.sprintf "%swait until %s;" pad (expr_to_string e) ]
  | Wait_on [] -> [ pad ^ "wait;" ]
  | Wait_on names -> [ Printf.sprintf "%swait on %s;" pad (String.concat ", " names) ]
  | Return None -> [ pad ^ "return;" ]
  | Return (Some e) -> [ Printf.sprintf "%sreturn %s;" pad (expr_to_string e) ]
  | Null_stmt -> [ pad ^ "null;" ]
  | Exit_loop -> [ pad ^ "exit;" ]

let stmt_to_string ?(indent = 0) s = String.concat "\n" (stmt_lines indent s)

let decl_lines ind d =
  let pad = String.make ind ' ' in
  match d with
  | Var_decl { v_name; v_type; v_init; v_shared } ->
      let shared = if v_shared then "shared " else "" in
      let init =
        match v_init with None -> "" | Some e -> " := " ^ expr_to_string e
      in
      [ Printf.sprintf "%s%svariable %s : %s%s;" pad shared v_name (type_to_string v_type) init ]
  | Sig_decl { s_name; s_type } ->
      [ Printf.sprintf "%ssignal %s : %s;" pad s_name (type_to_string s_type) ]
  | Const_decl { c_name; c_type; c_value } ->
      [ Printf.sprintf "%sconstant %s : %s := %s;" pad c_name (type_to_string c_type)
          (expr_to_string c_value) ]
  | Type_decl (n, td) -> [ Printf.sprintf "%stype %s is %s;" pad n (type_to_string td) ]

let subprogram_lines s =
  let params =
    match s.sub_params with
    | [] -> ""
    | ps ->
        let p_str p =
          Printf.sprintf "%s : %s %s" p.par_name (mode_to_string p.par_mode)
            (type_to_string p.par_type)
        in
        Printf.sprintf "(%s)" (String.concat "; " (List.map p_str ps))
  in
  let header =
    match s.sub_ret with
    | None -> Printf.sprintf "  procedure %s%s is" s.sub_name params
    | Some ty ->
        Printf.sprintf "  function %s%s return %s is" s.sub_name params (type_to_string ty)
  in
  (header :: List.concat_map (decl_lines 4) s.sub_decls)
  @ ("  begin" :: List.concat_map (stmt_lines 4) s.sub_body)
  @ [ Printf.sprintf "  end %s;" s.sub_name ]

let process_lines p =
  (Printf.sprintf "  %s: process" p.proc_name :: List.concat_map (decl_lines 4) p.proc_decls)
  @ ("  begin" :: List.concat_map (stmt_lines 4) p.proc_body)
  @ [ "  end process;" ]

let design_to_string d =
  let port_lines =
    match d.ports with
    | [] -> []
    | ps ->
        let p_str p =
          Printf.sprintf "    %s : %s %s" p.port_name (mode_to_string p.port_mode)
            (type_to_string p.port_type)
        in
        [ "  port (\n" ^ String.concat ";\n" (List.map p_str ps) ^ " );" ]
  in
  let entity =
    (Printf.sprintf "entity %s is" d.entity_name :: port_lines) @ [ "end;"; "" ]
  in
  let arch_header = Printf.sprintf "architecture %s of %s is" d.arch_name d.entity_name in
  let decls = List.concat_map (decl_lines 2) d.arch_decls in
  let subs = List.concat_map (fun s -> subprogram_lines s @ [ "" ]) d.subprograms in
  let procs = List.concat_map (fun p -> process_lines p @ [ "" ]) d.processes in
  String.concat "\n"
    (entity @ (arch_header :: decls) @ ("" :: subs) @ ("begin" :: procs) @ [ "end;" ])
