type state = { src : string; mutable pos : int; mutable line : int; mutable bol : int }

let loc st = Loc.make ~line:st.line ~col:(st.pos - st.bol + 1)

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.bol <- st.pos + 1
  | _ -> ());
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_alpha c || is_digit c

let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_trivia st
  | Some '-' when st.pos + 1 < String.length st.src && st.src.[st.pos + 1] = '-' ->
      let rec to_eol () =
        match peek st with
        | Some '\n' | None -> ()
        | Some _ ->
            advance st;
            to_eol ()
      in
      to_eol ();
      skip_trivia st
  | _ -> ()

let lex_ident st =
  let start = st.pos in
  while (match peek st with Some c -> is_ident c | None -> false) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let lex_int st =
  let start = st.pos in
  while (match peek st with Some c -> is_digit c | None -> false) do
    advance st
  done;
  int_of_string (String.sub st.src start (st.pos - start))

let lex_string st =
  let l = loc st in
  advance st;
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> Loc.error l "unterminated string literal"
    | Some '"' -> advance st
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        loop ()
  in
  loop ();
  Buffer.contents buf

let next_token st =
  skip_trivia st;
  let l = loc st in
  match peek st with
  | None -> (Token.Eof, l)
  | Some c when is_digit c -> (Token.Int_lit (lex_int st), l)
  | Some c when is_alpha c -> (
      let word = lex_ident st in
      match Token.keyword_of_string word with
      | Some k -> (Token.Keyword k, l)
      | None -> (Token.Ident (String.lowercase_ascii word), l))
  | Some '"' -> (Token.Str_lit (lex_string st), l)
  | Some c ->
      let two target result =
        if st.pos + 1 < String.length st.src && st.src.[st.pos + 1] = target then begin
          advance st;
          advance st;
          Some result
        end
        else None
      in
      let tok =
        match c with
        | ':' -> (
            match two '=' Token.Assign with
            | Some t -> t
            | None ->
                advance st;
                Token.Colon)
        | '=' -> (
            match two '>' Token.Arrow with
            | Some t -> t
            | None ->
                advance st;
                Token.Eq)
        | '<' -> (
            match two '=' Token.Le_or_sigassign with
            | Some t -> t
            | None ->
                advance st;
                Token.Lt)
        | '>' -> (
            match two '=' Token.Ge with
            | Some t -> t
            | None ->
                advance st;
                Token.Gt)
        | '/' -> (
            match two '=' Token.Neq with
            | Some t -> t
            | None ->
                advance st;
                Token.Slash)
        | '(' ->
            advance st;
            Token.Lparen
        | ')' ->
            advance st;
            Token.Rparen
        | ';' ->
            advance st;
            Token.Semicolon
        | ',' ->
            advance st;
            Token.Comma
        | '.' ->
            advance st;
            Token.Dot
        | '+' ->
            advance st;
            Token.Plus
        | '-' ->
            advance st;
            Token.Minus
        | '*' ->
            advance st;
            Token.Star
        | '&' ->
            advance st;
            Token.Amp
        | '\'' ->
            advance st;
            Token.Tick
        | '|' ->
            advance st;
            Token.Bar
        | _ -> Loc.error l "illegal character %C" c
      in
      (tok, l)

let tokenize src =
  let st = { src; pos = 0; line = 1; bol = 0 } in
  let rec loop acc =
    let tok, l = next_token st in
    match tok with
    | Token.Eof -> List.rev ((tok, l) :: acc)
    | _ -> loop ((tok, l) :: acc)
  in
  loop []
