(** Abstract syntax of the behavioral-VHDL subset.

    The subset is the slice of VHDL (plus the SpecCharts-style [par] and
    message-pass extensions) that SLIF construction needs: entities with
    ports, one architecture containing shared declarations, subprograms and
    processes, and sequential statements whose variable / signal / port /
    subprogram accesses become SLIF channels. *)

type mode = In | Out | Inout

(* Type denotations.  [Named] refers to a user [type] declaration and is
   resolved by {!Sem}. *)
type type_def =
  | Integer
  | Natural
  | Boolean
  | Bit
  | Bit_vector of int                               (* width in bits *)
  | Int_range of int * int                          (* integer range lo to hi *)
  | Array_of of { length : int; lo : int; elem : type_def }
  | Named of string

type binop =
  | Add | Sub | Mul | Div | Mod | Rem
  | Eq | Neq | Lt | Le | Gt | Ge
  | And | Or | Xor
  | Concat

type unop = Neg | Not | Abs

type expr =
  | Int_lit of int
  | Bool_lit of bool
  | Name of string                                  (* variable/signal/port/constant *)
  | Index of string * expr                          (* array element  a(i)       *)
  | Attr of string * string                         (* a'length etc.             *)
  | Call of string * expr list                      (* function call             *)
  | Binop of binop * expr * expr
  | Unop of unop * expr

type target =
  | Tname of string
  | Tindex of string * expr

(* A [when] alternative of a [case]. *)
type choice = Ch_expr of expr | Ch_others

type delay_unit = Ns | Us | Ms

type stmt =
  | Assign of target * expr                         (* v := e                    *)
  | Signal_assign of target * expr                  (* s <= e                    *)
  | If of (expr * stmt list) list * stmt list       (* arms (cond, body), else   *)
  | Case of expr * (choice list * stmt list) list
  | For of string * int * int * stmt list           (* for i in lo to hi loop    *)
  | While of expr * stmt list
  | Loop_forever of stmt list                       (* loop ... end loop         *)
  | Pcall of string * expr list                     (* procedure call            *)
  | Par of (string * expr list) list                (* fork/join of calls        *)
  | Send of string * expr                           (* message pass: send(ch,e)  *)
  | Receive of string * target                      (* receive(ch,v)             *)
  | Wait_for of int * delay_unit
  | Wait_until of expr
  | Wait_on of string list
  | Return of expr option
  | Null_stmt
  | Exit_loop                                       (* exit;                     *)

type param = { par_name : string; par_mode : mode; par_type : type_def }

type decl =
  | Var_decl of { v_name : string; v_type : type_def; v_init : expr option; v_shared : bool }
  | Sig_decl of { s_name : string; s_type : type_def }
  | Const_decl of { c_name : string; c_type : type_def; c_value : expr }
  | Type_decl of string * type_def

type subprogram = {
  sub_name : string;
  sub_params : param list;
  sub_ret : type_def option;                        (* Some _ for functions *)
  sub_decls : decl list;
  sub_body : stmt list;
}

type process = {
  proc_name : string;
  proc_decls : decl list;
  proc_body : stmt list;
}

type port = { port_name : string; port_mode : mode; port_type : type_def }

type design = {
  entity_name : string;
  ports : port list;
  arch_name : string;
  arch_decls : decl list;
  subprograms : subprogram list;
  processes : process list;
}

(** [behaviors d] lists every behavior of the design: processes first, then
    subprograms, each paired with its declarations and body. *)
let behaviors d =
  List.map (fun p -> (p.proc_name, p.proc_decls, p.proc_body)) d.processes
  @ List.map (fun s -> (s.sub_name, s.sub_decls, s.sub_body)) d.subprograms
