(** Recursive-descent parser for the behavioral-VHDL subset.

    Accepts one entity followed by one architecture; see {!Ast} for the
    supported constructs.  Raises [Loc.Error] with a located message on any
    syntax error. *)

val parse : string -> Ast.design
(** [parse source] lexes and parses a complete design. *)

val parse_expr : string -> Ast.expr
(** [parse_expr source] parses a standalone expression (used by tests and
    the branch-probability tooling). *)
