(** Hand-written lexer for the behavioral-VHDL subset.

    Comments ([-- ... \n]) and whitespace are skipped; identifiers and
    keywords are case-insensitive (identifiers are lowered). *)

val tokenize : string -> (Token.t * Loc.t) list
(** [tokenize source] scans the whole input and returns the token stream
    terminated by [Token.Eof].  Raises [Loc.Error] on an illegal character
    or an unterminated string literal. *)
