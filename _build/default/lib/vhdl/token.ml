(** Tokens of the behavioral-VHDL subset.

    Keywords are recognized case-insensitively, as in VHDL.  The [Par] and
    [Send]/[Receive] extensions support the fork/join and message-passing
    constructs SLIF models (paper, Sections 2.2-2.3). *)

type keyword =
  | K_entity | K_is | K_port | K_in | K_out | K_inout | K_end
  | K_architecture | K_of | K_begin | K_process | K_procedure | K_function
  | K_variable | K_signal | K_constant | K_type | K_array | K_to | K_downto
  | K_if | K_then | K_elsif | K_else | K_case | K_when | K_others
  | K_for | K_loop | K_while | K_wait | K_until | K_on | K_return
  | K_and | K_or | K_not | K_xor | K_mod | K_rem | K_abs
  | K_integer | K_boolean | K_bit | K_bit_vector | K_natural | K_range
  | K_true | K_false | K_null | K_par | K_shared | K_us | K_ns | K_ms

type t =
  | Ident of string
  | Int_lit of int
  | Str_lit of string
  | Keyword of keyword
  | Lparen | Rparen
  | Semicolon | Colon | Comma | Dot
  | Assign          (* := *)
  | Arrow           (* => *)
  | Le_or_sigassign (* <= : context decides signal assign vs comparison *)
  | Lt | Gt | Ge | Eq | Neq
  | Plus | Minus | Star | Slash | Amp
  | Tick            (* ' attribute *)
  | Bar             (* | choice separator *)
  | Eof

let keyword_of_string s =
  match String.lowercase_ascii s with
  | "entity" -> Some K_entity
  | "is" -> Some K_is
  | "port" -> Some K_port
  | "in" -> Some K_in
  | "out" -> Some K_out
  | "inout" -> Some K_inout
  | "end" -> Some K_end
  | "architecture" -> Some K_architecture
  | "of" -> Some K_of
  | "begin" -> Some K_begin
  | "process" -> Some K_process
  | "procedure" -> Some K_procedure
  | "function" -> Some K_function
  | "variable" -> Some K_variable
  | "signal" -> Some K_signal
  | "constant" -> Some K_constant
  | "type" -> Some K_type
  | "array" -> Some K_array
  | "to" -> Some K_to
  | "downto" -> Some K_downto
  | "if" -> Some K_if
  | "then" -> Some K_then
  | "elsif" -> Some K_elsif
  | "else" -> Some K_else
  | "case" -> Some K_case
  | "when" -> Some K_when
  | "others" -> Some K_others
  | "for" -> Some K_for
  | "loop" -> Some K_loop
  | "while" -> Some K_while
  | "wait" -> Some K_wait
  | "until" -> Some K_until
  | "on" -> Some K_on
  | "return" -> Some K_return
  | "and" -> Some K_and
  | "or" -> Some K_or
  | "not" -> Some K_not
  | "xor" -> Some K_xor
  | "mod" -> Some K_mod
  | "rem" -> Some K_rem
  | "abs" -> Some K_abs
  | "integer" -> Some K_integer
  | "boolean" -> Some K_boolean
  | "bit" -> Some K_bit
  | "bit_vector" -> Some K_bit_vector
  | "natural" -> Some K_natural
  | "range" -> Some K_range
  | "true" -> Some K_true
  | "false" -> Some K_false
  | "null" -> Some K_null
  | "par" -> Some K_par
  | "shared" -> Some K_shared
  | "us" -> Some K_us
  | "ns" -> Some K_ns
  | "ms" -> Some K_ms
  | _ -> None

let keyword_to_string = function
  | K_entity -> "entity" | K_is -> "is" | K_port -> "port" | K_in -> "in"
  | K_out -> "out" | K_inout -> "inout" | K_end -> "end"
  | K_architecture -> "architecture" | K_of -> "of" | K_begin -> "begin"
  | K_process -> "process" | K_procedure -> "procedure" | K_function -> "function"
  | K_variable -> "variable" | K_signal -> "signal" | K_constant -> "constant"
  | K_type -> "type" | K_array -> "array" | K_to -> "to" | K_downto -> "downto"
  | K_if -> "if" | K_then -> "then" | K_elsif -> "elsif" | K_else -> "else"
  | K_case -> "case" | K_when -> "when" | K_others -> "others"
  | K_for -> "for" | K_loop -> "loop" | K_while -> "while" | K_wait -> "wait"
  | K_until -> "until" | K_on -> "on" | K_return -> "return"
  | K_and -> "and" | K_or -> "or" | K_not -> "not" | K_xor -> "xor"
  | K_mod -> "mod" | K_rem -> "rem" | K_abs -> "abs"
  | K_integer -> "integer" | K_boolean -> "boolean" | K_bit -> "bit"
  | K_bit_vector -> "bit_vector" | K_natural -> "natural" | K_range -> "range"
  | K_true -> "true" | K_false -> "false" | K_null -> "null" | K_par -> "par"
  | K_shared -> "shared" | K_us -> "us" | K_ns -> "ns" | K_ms -> "ms"

let to_string = function
  | Ident s -> s
  | Int_lit n -> string_of_int n
  | Str_lit s -> Printf.sprintf "%S" s
  | Keyword k -> keyword_to_string k
  | Lparen -> "(" | Rparen -> ")"
  | Semicolon -> ";" | Colon -> ":" | Comma -> "," | Dot -> "."
  | Assign -> ":=" | Arrow -> "=>" | Le_or_sigassign -> "<="
  | Lt -> "<" | Gt -> ">" | Ge -> ">=" | Eq -> "=" | Neq -> "/="
  | Plus -> "+" | Minus -> "-" | Star -> "*" | Slash -> "/" | Amp -> "&"
  | Tick -> "'"
  | Bar -> "|"
  | Eof -> "<eof>"
