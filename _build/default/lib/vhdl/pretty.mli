(** Printing the AST back to VHDL-subset concrete syntax.

    The output re-parses to an equal design (round-trip property tested),
    which also makes it the reference serialization of specifications. *)

val type_to_string : Ast.type_def -> string
val expr_to_string : Ast.expr -> string
val stmt_to_string : ?indent:int -> Ast.stmt -> string
val design_to_string : Ast.design -> string
