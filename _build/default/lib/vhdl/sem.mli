(** Name resolution and type queries over a parsed design.

    The SLIF builder and the technology models need to know, for every name
    appearing in a behavior, whether it is a local variable, a global
    (architecture-level) variable or signal, a port, a constant, a
    subprogram parameter, or a subprogram — and how many bits its type
    occupies, both per access and in total storage. *)

type kind =
  | Local_var of Ast.type_def
  | Global_var of Ast.type_def   (* architecture signal or shared variable *)
  | Port of Ast.mode * Ast.type_def
  | Param of Ast.mode * Ast.type_def
  | Constant of Ast.type_def * Ast.expr
  | Subprogram of Ast.subprogram

type t

type env
(** Scope of one behavior: its locals and parameters over the design
    globals. *)

exception Unbound of string
(** Raised by [lookup_exn] and the width queries on an unknown name or
    unresolvable named type. *)

val build : Ast.design -> t
(** [build design] indexes the design's globals, ports and subprograms.
    Raises [Unbound] if a named type has no [type] declaration. *)

val design : t -> Ast.design

val env_of_behavior : t -> string -> env
(** [env_of_behavior t name] is the scope of the process or subprogram
    called [name].  Raises [Unbound] when no such behavior exists. *)

val global_env : t -> env
(** Scope containing only ports, architecture declarations and
    subprograms. *)

val lookup : env -> string -> kind option
val lookup_exn : env -> string -> kind

val resolve : t -> Ast.type_def -> Ast.type_def
(** [resolve t ty] chases [Named] references to a concrete type. *)

val scalar_bits : t -> Ast.type_def -> int
(** Encoding width of a scalar type (arrays: width of the element type). *)

val transfer_bits : t -> Ast.type_def -> int
(** Bits moved by one access: scalar width for scalars; element width plus
    address width for arrays (paper, Section 2.4.1). *)

val storage_bits : t -> Ast.type_def -> int
(** Total storage: arrays are length x element width. *)

val array_length : t -> Ast.type_def -> int option
(** [Some n] when the resolved type is an array of [n] elements. *)

val is_function_name : t -> string -> bool
(** True when the name is a declared function or procedure; used to
    disambiguate [a(i)] between array indexing and a call. *)

val params_bits : t -> Ast.subprogram -> int
(** Sum of per-access bits over a subprogram's parameters, plus the result
    width for a function — the [bits] weight of a channel to that
    behavior.  Zero for a parameterless procedure (a pure control
    transfer). *)

val behavior_names : t -> string list
(** All behavior names: processes first, then subprograms, in declaration
    order. *)
