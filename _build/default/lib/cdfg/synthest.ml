type result = {
  gates : float;
  csteps : int;
  fu_used : (Tech.Optype.t * int) list;
}

(* ASAP levels over data edges restricted to the selected nodes. *)
let asap_levels ~selected (t : Graph.t) =
  let n = Array.length t.nodes in
  let level = Array.make n 0 in
  let preds = Array.make n [] in
  Array.iter
    (fun (e : Graph.edge) ->
      if e.e_kind = Graph.Data && selected.(e.e_src) && selected.(e.e_dst) then
        preds.(e.e_dst) <- e.e_src :: preds.(e.e_dst))
    t.edges;
  (* Nodes are created in topological order of data dependence (producers
     before consumers), so one forward pass suffices. *)
  for id = 0 to n - 1 do
    if selected.(id) then
      level.(id) <- List.fold_left (fun acc p -> max acc (level.(p) + 1)) 0 preds.(id)
  done;
  level

let rough_synthesis ?(belongs = fun _ -> true) (asic : Tech.Asic_model.t) (t : Graph.t) =
  let n = Array.length t.nodes in
  let selected = Array.make n false in
  Array.iter (fun (node : Graph.node) -> selected.(node.id) <- belongs node) t.nodes;
  let level = asap_levels ~selected t in
  (* Demand per (level, op class): the FUs needed in each control step. *)
  let demand : (int * Tech.Optype.t, int) Hashtbl.t = Hashtbl.create 64 in
  let max_level = ref 0 in
  let reg_bits = ref 0 in
  Array.iter
    (fun (node : Graph.node) ->
      if selected.(node.id) then begin
        max_level := max !max_level level.(node.id);
        match node.kind with
        | Graph.Op op ->
            let key = (level.(node.id), op) in
            Hashtbl.replace demand key
              (1 + Option.value (Hashtbl.find_opt demand key) ~default:0)
        | Graph.Read _ | Graph.Write _ ->
            (* Each distinct access holds a value in a register; widths are
               unknown at this granularity, so a 8-bit default is used. *)
            reg_bits := !reg_bits + 8
        | _ -> ()
      end)
    t.nodes;
  (* FU binding with sharing: allocate, per op class, the peak demand over
     all levels (bounded by the library), and stretch levels whose demand
     exceeds the allocation. *)
  let alloc : (Tech.Optype.t, int) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter
    (fun (_, op) d ->
      let cap = (asic.Tech.Asic_model.fu_of op).Tech.Asic_model.available in
      let prev = Option.value (Hashtbl.find_opt alloc op) ~default:0 in
      Hashtbl.replace alloc op (min cap (max prev d)))
    demand;
  let csteps = ref 0 in
  for l = 0 to !max_level do
    let stretch = ref 1 in
    Hashtbl.iter
      (fun (lvl, op) d ->
        if lvl = l then begin
          let a = max 1 (Option.value (Hashtbl.find_opt alloc op) ~default:1) in
          let fu = asic.Tech.Asic_model.fu_of op in
          stretch :=
            max !stretch
              (Slif_util.Bitmath.ceil_div d a * fu.Tech.Asic_model.cycles_per_op)
        end)
      demand;
    csteps := !csteps + !stretch
  done;
  let fu_used = Hashtbl.fold (fun op d acc -> (op, d) :: acc) alloc [] in
  let fu_area =
    List.fold_left
      (fun acc (op, d) ->
        acc +. (float_of_int d *. (asic.Tech.Asic_model.fu_of op).Tech.Asic_model.area_gates))
      0.0 fu_used
  in
  let gates =
    fu_area
    +. (float_of_int !reg_bits *. asic.Tech.Asic_model.reg_gates_per_bit)
    +. (float_of_int !csteps *. asic.Tech.Asic_model.ctrl_gates_per_op)
  in
  { gates; csteps = !csteps; fu_used = List.sort compare fu_used }
