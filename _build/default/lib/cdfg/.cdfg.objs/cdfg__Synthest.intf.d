lib/cdfg/synthest.mli: Graph Tech
