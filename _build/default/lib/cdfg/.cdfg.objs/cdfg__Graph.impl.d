lib/cdfg/graph.ml: Array List String Tech Vhdl
