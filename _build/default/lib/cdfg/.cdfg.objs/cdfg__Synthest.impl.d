lib/cdfg/synthest.ml: Array Graph Hashtbl List Option Slif_util Tech
