lib/cdfg/graph.mli: Tech Vhdl
