(** Control-dataflow graph — the fine-grained comparator format.

    This is the representation high-level synthesis tools use and that the
    paper's Results section compares SLIF against: one node per arithmetic
    operation, constant, variable read or write, branch or call; data
    edges between producers and consumers; control edges sequencing
    statements and framing loops.  For the fuzzy example the paper reports
    over 1100 nodes and 900 edges at this granularity, versus 35/56 for
    the SLIF access graph. *)

type node_kind =
  | Op of Tech.Optype.t      (* one arithmetic / logic / compare operation *)
  | Const of int
  | Read of string           (* one read access of a variable or port *)
  | Write of string          (* one write access *)
  | Branch                   (* fork of control on a condition *)
  | Join                     (* merge of control *)
  | Loop_head
  | Call_site of string
  | Io of string             (* wait / message primitive *)

type node = { id : int; kind : node_kind; behavior : string }

type edge_kind = Data | Control

type edge = { e_src : int; e_dst : int; e_kind : edge_kind }

type t = { nodes : node array; edges : edge array }

val of_design : Vhdl.Ast.design -> t
(** Builds the CDFG for every behavior of the design. *)

val node_count : t -> int
val edge_count : t -> int

val op_nodes : t -> node list
(** The schedulable operation nodes (kind [Op]). *)

val data_predecessors : t -> int -> int list
(** Ids of nodes feeding data into the given node. *)
