module Ast = Vhdl.Ast

type node_kind =
  | Op of Tech.Optype.t
  | Const of int
  | Read of string
  | Write of string
  | Branch
  | Join
  | Loop_head
  | Call_site of string
  | Io of string

type node = { id : int; kind : node_kind; behavior : string }

type edge_kind = Data | Control

type edge = { e_src : int; e_dst : int; e_kind : edge_kind }

type t = { nodes : node array; edges : edge array }

type builder = {
  mutable nodes : node list;     (* reversed *)
  mutable edges : edge list;
  mutable next : int;
  mutable behavior : string;
}

let add_node b kind =
  let id = b.next in
  b.next <- id + 1;
  b.nodes <- { id; kind; behavior = b.behavior } :: b.nodes;
  id

let add_edge b e_src e_dst e_kind = b.edges <- { e_src; e_dst; e_kind } :: b.edges

(* Returns the node producing the expression's value. *)
let rec expr_node b e =
  match e with
  | Ast.Int_lit n -> add_node b (Const n)
  | Ast.Bool_lit v -> add_node b (Const (if v then 1 else 0))
  | Ast.Name n -> add_node b (Read n)
  | Ast.Attr (n, _) -> add_node b (Read n)
  | Ast.Index (n, i) ->
      (* Address computation feeding an indexed read. *)
      let addr = expr_node b i in
      let plus = add_node b (Op Tech.Optype.Add) in
      add_edge b addr plus Data;
      let rd = add_node b (Read n) in
      add_edge b plus rd Data;
      rd
  | Ast.Call (n, args) ->
      (* Operands are created before the call node so that node ids remain
         topological over data edges (Synthest relies on this). *)
      let arg_nodes = List.map (expr_node b) args in
      let call = add_node b (Call_site n) in
      List.iter (fun a -> add_edge b a call Data) arg_nodes;
      call
  | Ast.Binop (op, x, y) ->
      let nx = expr_node b x and ny = expr_node b y in
      let node = add_node b (Op (Tech.Optype.of_binop op)) in
      add_edge b nx node Data;
      add_edge b ny node Data;
      node
  | Ast.Unop (op, x) ->
      let nx = expr_node b x in
      let node = add_node b (Op (Tech.Optype.of_unop op)) in
      add_edge b nx node Data;
      node

let target_node b value = function
  | Ast.Tname n ->
      let w = add_node b (Write n) in
      add_edge b value w Data;
      w
  | Ast.Tindex (n, i) ->
      let addr = expr_node b i in
      let plus = add_node b (Op Tech.Optype.Add) in
      add_edge b addr plus Data;
      let w = add_node b (Write n) in
      add_edge b plus w Data;
      add_edge b value w Data;
      w

(* Statements are chained by control edges; each returns its exit node. *)
let rec stmt_node b prev s =
  let seq node =
    add_edge b prev node Control;
    node
  in
  match s with
  | Ast.Assign (t, e) | Ast.Signal_assign (t, e) ->
      let v = expr_node b e in
      seq (target_node b v t)
  | Ast.If (arms, els) ->
      let join = add_node b Join in
      let rec chain prev = function
        | [] ->
            let last = stmts_node b prev els in
            add_edge b last join Control
        | (cond, body) :: rest ->
            let c = expr_node b cond in
            let br = add_node b Branch in
            add_edge b c br Data;
            add_edge b prev br Control;
            let last = stmts_node b br body in
            add_edge b last join Control;
            chain br rest
      in
      chain prev arms;
      join
  | Ast.Case (subject, alts) ->
      let c = expr_node b subject in
      let br = seq (add_node b Branch) in
      add_edge b c br Data;
      let join = add_node b Join in
      List.iter
        (fun (choices, body) ->
          List.iter
            (function
              | Ast.Ch_expr e ->
                  let v = expr_node b e in
                  let cmp = add_node b (Op Tech.Optype.Cmp) in
                  add_edge b v cmp Data;
                  add_edge b cmp br Data
              | Ast.Ch_others -> ())
            choices;
          let last = stmts_node b br body in
          add_edge b last join Control)
        alts;
      join
  | Ast.For (_, lo, hi, body) ->
      let head = seq (add_node b Loop_head) in
      let bound = add_node b (Const (hi - lo + 1)) in
      add_edge b bound head Data;
      let last = stmts_node b head body in
      add_edge b last head Control;
      head
  | Ast.While (cond, body) ->
      let head = seq (add_node b Loop_head) in
      let c = expr_node b cond in
      add_edge b c head Data;
      let last = stmts_node b head body in
      add_edge b last head Control;
      head
  | Ast.Loop_forever body ->
      let head = seq (add_node b Loop_head) in
      let last = stmts_node b head body in
      add_edge b last head Control;
      head
  | Ast.Pcall (n, args) ->
      let arg_nodes = List.map (expr_node b) args in
      let call = add_node b (Call_site n) in
      List.iter (fun a -> add_edge b a call Data) arg_nodes;
      seq call
  | Ast.Par calls ->
      let join = add_node b Join in
      List.iter
        (fun (n, args) ->
          let arg_nodes = List.map (expr_node b) args in
          let call = add_node b (Call_site n) in
          List.iter (fun a -> add_edge b a call Data) arg_nodes;
          add_edge b prev call Control;
          add_edge b call join Control)
        calls;
      join
  | Ast.Send (ch, e) ->
      let v = expr_node b e in
      let io = seq (add_node b (Io ch)) in
      add_edge b v io Data;
      io
  | Ast.Receive (ch, t) ->
      let io = seq (add_node b (Io ch)) in
      target_node b io t
  | Ast.Wait_for _ -> seq (add_node b (Io "time"))
  | Ast.Wait_until e ->
      let v = expr_node b e in
      let io = seq (add_node b (Io "event")) in
      add_edge b v io Data;
      io
  | Ast.Wait_on names -> seq (add_node b (Io (String.concat "," names)))
  | Ast.Return (Some e) ->
      let v = expr_node b e in
      let w = seq (add_node b (Write "return")) in
      add_edge b v w Data;
      w
  | Ast.Return None -> seq (add_node b (Write "return"))
  | Ast.Null_stmt | Ast.Exit_loop -> prev

and stmts_node b prev body = List.fold_left (stmt_node b) prev body

let of_design (design : Ast.design) =
  let b = { nodes = []; edges = []; next = 0; behavior = "" } in
  List.iter
    (fun (name, _decls, body) ->
      b.behavior <- name;
      let entry = add_node b Join in
      ignore (stmts_node b entry body))
    (Ast.behaviors design);
  {
    nodes = Array.of_list (List.rev b.nodes);
    edges = Array.of_list (List.rev b.edges);
  }

let node_count (t : t) = Array.length t.nodes
let edge_count (t : t) = Array.length t.edges

let op_nodes (t : t) =
  Array.to_list t.nodes |> List.filter (fun n -> match n.kind with Op _ -> true | _ -> false)

let data_predecessors (t : t) id =
  Array.to_list t.edges
  |> List.filter_map (fun e -> if e.e_dst = id && e.e_kind = Data then Some e.e_src else None)
