(** Rough synthesis over a CDFG node set.

    The paper's Results section argues that a fine-grained format cannot
    pre-compute per-node sizes — summing per-operation areas would ignore
    all functional-unit sharing — so every size query must re-run a rough
    synthesis over the whole node set, costing seconds instead of
    microseconds.  This module is that rough synthesis: an ASAP
    levelization of the operation nodes followed by per-level functional
    unit binding with sharing across levels.  Its cost is O(nodes + edges)
    per query, and it must be re-run from scratch for every candidate
    node set. *)

type result = {
  gates : float;       (* area after FU sharing *)
  csteps : int;        (* schedule length *)
  fu_used : (Tech.Optype.t * int) list;  (* allocated units per op class *)
}

val rough_synthesis :
  ?belongs:(Graph.node -> bool) -> Tech.Asic_model.t -> Graph.t -> result
(** [rough_synthesis asic cdfg] synthesizes the operation nodes selected
    by [belongs] (default: all).  Registers for carried values are charged
    per read/write node in the selection. *)
