module Ast = Vhdl.Ast

type node_kind =
  | Decision of string
  | Condition
  | Operation of Tech.Optype.t
  | Access of string

type node = { id : int; kind : node_kind; behavior : string }

type edge = { e_src : int; e_dst : int }

type t = { nodes : node array; edges : edge array }

type builder = {
  mutable nodes : node list;
  mutable edges : edge list;
  mutable next : int;
  mutable behavior : string;
  accesses : (string * string, int) Hashtbl.t;  (* (behavior, name) -> node *)
}

let add_node b kind =
  let id = b.next in
  b.next <- id + 1;
  b.nodes <- { id; kind; behavior = b.behavior } :: b.nodes;
  id

let add_edge b e_src e_dst = b.edges <- { e_src; e_dst } :: b.edges

(* One access node per (behavior, variable): the ADD shares read points. *)
let access_node b name =
  let key = (b.behavior, name) in
  match Hashtbl.find_opt b.accesses key with
  | Some id -> id
  | None ->
      let id = add_node b (Access name) in
      Hashtbl.replace b.accesses key id;
      id

let rec expr_nodes b e =
  match e with
  | Ast.Int_lit _ | Ast.Bool_lit _ -> None
  | Ast.Name n | Ast.Attr (n, _) -> Some (access_node b n)
  | Ast.Index (n, i) ->
      let acc = access_node b n in
      (match expr_nodes b i with Some v -> add_edge b v acc | None -> ());
      Some acc
  | Ast.Call (n, args) ->
      let acc = access_node b n in
      List.iter (fun a -> match expr_nodes b a with Some v -> add_edge b v acc | None -> ()) args;
      Some acc
  | Ast.Binop (op, x, y) ->
      let node = add_node b (Operation (Tech.Optype.of_binop op)) in
      (match expr_nodes b x with Some v -> add_edge b v node | None -> ());
      (match expr_nodes b y with Some v -> add_edge b v node | None -> ());
      Some node
  | Ast.Unop (op, x) ->
      let node = add_node b (Operation (Tech.Optype.of_unop op)) in
      (match expr_nodes b x with Some v -> add_edge b v node | None -> ());
      Some node

let target_name = function Ast.Tname n -> n | Ast.Tindex (n, _) -> n

(* Walk statements carrying the stack of guard nodes in scope; every
   assignment creates a decision wired to all live guards and its value. *)
let rec stmt_nodes b guards s =
  let decide t value_opt =
    let d = add_node b (Decision (target_name t)) in
    List.iter (fun g -> add_edge b g d) guards;
    (match value_opt with Some v -> add_edge b v d | None -> ());
    (match t with
    | Ast.Tindex (_, i) -> (
        match expr_nodes b i with Some v -> add_edge b v d | None -> ())
    | Ast.Tname _ -> ())
  in
  match s with
  | Ast.Assign (t, e) | Ast.Signal_assign (t, e) -> decide t (expr_nodes b e)
  | Ast.If (arms, els) ->
      List.iter
        (fun (cond, body) ->
          let g = add_node b Condition in
          (match expr_nodes b cond with Some v -> add_edge b v g | None -> ());
          List.iter (stmt_nodes b (g :: guards)) body)
        arms;
      (match els with
      | [] -> ()
      | _ ->
          let g = add_node b Condition in
          List.iter (stmt_nodes b (g :: guards)) els)
  | Ast.Case (subject, alts) ->
      let subj = expr_nodes b subject in
      List.iter
        (fun (_, body) ->
          let g = add_node b Condition in
          (match subj with Some v -> add_edge b v g | None -> ());
          List.iter (stmt_nodes b (g :: guards)) body)
        alts
  | Ast.For (_, _, _, body) | Ast.While (_, body) | Ast.Loop_forever body ->
      let g = add_node b Condition in
      (match s with
      | Ast.While (cond, _) -> (
          match expr_nodes b cond with Some v -> add_edge b v g | None -> ())
      | _ -> ());
      List.iter (stmt_nodes b (g :: guards)) body
  | Ast.Pcall (n, args) ->
      let acc = access_node b n in
      List.iter
        (fun a -> match expr_nodes b a with Some v -> add_edge b v acc | None -> ())
        args;
      List.iter (fun g -> add_edge b g acc) guards
  | Ast.Par calls ->
      List.iter
        (fun (n, args) ->
          let acc = access_node b n in
          List.iter
            (fun a -> match expr_nodes b a with Some v -> add_edge b v acc | None -> ())
            args)
        calls
  | Ast.Send (ch, e) ->
      let acc = access_node b ch in
      (match expr_nodes b e with Some v -> add_edge b v acc | None -> ())
  | Ast.Receive (ch, t) ->
      let acc = access_node b ch in
      decide t (Some acc)
  | Ast.Wait_until e -> ignore (expr_nodes b e)
  | Ast.Return (Some e) -> decide (Ast.Tname "return") (expr_nodes b e)
  | Ast.Wait_for _ | Ast.Wait_on _ | Ast.Return None | Ast.Null_stmt | Ast.Exit_loop -> ()

let of_design (design : Ast.design) =
  let b =
    { nodes = []; edges = []; next = 0; behavior = ""; accesses = Hashtbl.create 64 }
  in
  List.iter
    (fun (name, _decls, body) ->
      b.behavior <- name;
      List.iter (stmt_nodes b []) body)
    (Ast.behaviors design);
  { nodes = Array.of_list (List.rev b.nodes); edges = Array.of_list (List.rev b.edges) }

let node_count (t : t) = Array.length t.nodes
let edge_count (t : t) = Array.length t.edges
