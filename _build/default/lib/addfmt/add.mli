(** Assignment-decision-diagram-like format (the VT/ADD comparator).

    The Results section cites the ADD format — "similar in form and
    complexity to the VT format" — at roughly 450 nodes / 400 edges for
    the fuzzy example: coarser than a CDFG (no explicit control nodes, no
    constant nodes) but far finer than the SLIF access graph.  We model
    that granularity faithfully: one {e assignment decision} node per
    assignment target occurrence, one {e condition} node per guard in
    scope, one {e operation} node per operator of the assigned value, and
    one {e access} node per distinct variable referenced by a behavior;
    edges wire guards and values into decisions.  See DESIGN.md §5. *)

type node_kind =
  | Decision of string        (* assignment decision for a target *)
  | Condition                 (* a guard expression *)
  | Operation of Tech.Optype.t
  | Access of string          (* variable/port access point *)

type node = { id : int; kind : node_kind; behavior : string }

type edge = { e_src : int; e_dst : int }

type t = { nodes : node array; edges : edge array }

val of_design : Vhdl.Ast.design -> t

val node_count : t -> int
val edge_count : t -> int
