lib/addfmt/add.ml: Array Hashtbl List Tech Vhdl
