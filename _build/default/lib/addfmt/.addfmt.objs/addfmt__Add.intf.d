lib/addfmt/add.mli: Tech Vhdl
