let time f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  let t1 = Unix.gettimeofday () in
  (result, t1 -. t0)

let time_n n f =
  if n <= 0 then invalid_arg "Timer.time_n";
  let t0 = Unix.gettimeofday () in
  for _ = 1 to n do
    ignore (Sys.opaque_identity (f ()))
  done;
  let t1 = Unix.gettimeofday () in
  (t1 -. t0) /. float_of_int n
