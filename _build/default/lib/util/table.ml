type t = { header : string list; mutable rows : string list list }

let create ~header = { header; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.header then
    invalid_arg "Table.add_row: row width mismatch";
  t.rows <- cells :: t.rows

let is_numeric s =
  s <> ""
  && String.for_all
       (fun c -> (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '+' || c = 'e')
       s

let render t =
  let rows = List.rev t.rows in
  let cols = List.length t.header in
  let widths = Array.make cols 0 in
  let numeric = Array.make cols true in
  let scan row =
    List.iteri
      (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
      row
  in
  scan t.header;
  List.iter scan rows;
  List.iter
    (fun row ->
      List.iteri (fun i cell -> if not (is_numeric cell) then numeric.(i) <- false) row)
    rows;
  let pad i cell =
    let w = widths.(i) in
    let n = w - String.length cell in
    if numeric.(i) then String.make n ' ' ^ cell else cell ^ String.make n ' '
  in
  let line row = String.concat "  " (List.mapi pad row) in
  let sep =
    String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  String.concat "\n" ((line t.header :: sep :: List.map line rows) @ [])

let print t =
  print_string (render t);
  print_newline ()
