(** Wall-clock timing helpers for the experiment harness (Figure 4 reports
    T-slif and T-est in seconds). *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result together with the elapsed
    wall-clock seconds. *)

val time_n : int -> (unit -> 'a) -> float
(** [time_n n f] runs [f] [n] times and returns the average elapsed seconds
    per run.  Raises [Invalid_argument] when [n <= 0]. *)
