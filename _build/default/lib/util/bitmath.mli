(** Bit-width arithmetic used when computing channel [bits] weights.

    SLIF annotates each channel with the number of bits transferred per
    access: the encoding width of a scalar, or element width plus address
    width for an array (paper, Section 2.4.1). *)

val clog2 : int -> int
(** [clog2 n] is the ceiling of log2 [n] for [n >= 1]; [clog2 1 = 0].
    Raises [Invalid_argument] for [n <= 0]. *)

val bits_for_cardinality : int -> int
(** [bits_for_cardinality n] is the number of bits needed to distinguish
    [n] values, i.e. [clog2 n] with a minimum of 1 bit for [n >= 1].
    Raises [Invalid_argument] for [n <= 0]. *)

val bits_for_range : lo:int -> hi:int -> int
(** [bits_for_range ~lo ~hi] is the number of bits to encode the integer
    range [lo..hi]: unsigned binary when [lo >= 0], two's complement
    otherwise.  Raises [Invalid_argument] when [hi < lo]. *)

val address_bits : length:int -> int
(** [address_bits ~length] is the number of address bits needed to select
    one element of an array with [length] elements (paper: 7 address bits
    for a 128-element array). *)

val ceil_div : int -> int -> int
(** [ceil_div a b] is ceiling(a / b) for [a >= 0], [b > 0]; used to count
    how many bus transfers move [a] bits over a [b]-bit-wide bus. *)
