(** Deterministic pseudo-random number generator (SplitMix64).

    The partitioning heuristics (simulated annealing, random restarts) must
    be reproducible across runs and platforms, so they use this explicit
    generator instead of the ambient [Random] state. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator from [seed]. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val int : t -> int -> int
(** [int t bound] draws a uniform integer in [0, bound).
    Raises [Invalid_argument] when [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] draws a uniform float in [0, bound). *)

val bool : t -> bool
(** [bool t] draws a uniform boolean. *)

val split : t -> t
(** [split t] derives a new independent generator, advancing [t]. *)
