(** Plain-text table rendering for experiment reports and the CLI.

    Columns are right-aligned when every body cell parses as a number,
    left-aligned otherwise, mirroring the layout of the paper's Figure 4. *)

type t

val create : header:string list -> t
(** [create ~header] starts a table with the given column titles. *)

val add_row : t -> string list -> unit
(** [add_row t cells] appends a row.  Raises [Invalid_argument] when the
    row width differs from the header width. *)

val render : t -> string
(** [render t] lays the table out with aligned columns and a separator
    under the header. *)

val print : t -> unit
(** [print t] renders to stdout followed by a newline. *)
