lib/util/timer.ml: Sys Unix
