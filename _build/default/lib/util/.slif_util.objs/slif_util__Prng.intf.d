lib/util/prng.mli:
