lib/util/table.mli:
