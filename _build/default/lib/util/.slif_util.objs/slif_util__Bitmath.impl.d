lib/util/bitmath.ml:
