lib/util/timer.mli:
