lib/util/bitmath.mli:
