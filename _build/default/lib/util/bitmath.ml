let clog2 n =
  if n <= 0 then invalid_arg "Bitmath.clog2: non-positive argument";
  let rec loop acc pow = if pow >= n then acc else loop (acc + 1) (pow * 2) in
  loop 0 1

let bits_for_cardinality n =
  if n <= 0 then invalid_arg "Bitmath.bits_for_cardinality";
  max 1 (clog2 n)

let bits_for_range ~lo ~hi =
  if hi < lo then invalid_arg "Bitmath.bits_for_range: empty range";
  if lo >= 0 then bits_for_cardinality (hi + 1)
  else
    (* Two's complement: need enough magnitude bits for both extremes. *)
    let magnitude = max (abs lo) (abs (hi + 1)) in
    1 + bits_for_cardinality magnitude

let address_bits ~length =
  if length <= 0 then invalid_arg "Bitmath.address_bits";
  if length = 1 then 0 else clog2 length

let ceil_div a b =
  if b <= 0 then invalid_arg "Bitmath.ceil_div: non-positive divisor";
  if a < 0 then invalid_arg "Bitmath.ceil_div: negative dividend";
  (a + b - 1) / b
