type constraints = { deadlines_us : (string * float) list }

let no_constraints = { deadlines_us = [] }

type weights = { w_size : float; w_io : float; w_time : float; w_bitrate : float }

let default_weights = { w_size = 1.0; w_io = 1.0; w_time = 1.0; w_bitrate = 0.5 }

type breakdown = {
  size_violation : float;
  io_violation : float;
  time_violation : float;
  bitrate_violation : float;
  total : float;
}

(* Relative excess over a cap: 0 when within budget. *)
let excess value = function
  | None -> 0.0
  | Some cap -> if cap <= 0.0 then 0.0 else max 0.0 ((value -. cap) /. cap)

let evaluate ?(weights = default_weights) ~constraints est =
  let s = Slif.Graph.slif (Slif.Estimate.graph est) in
  let size_violation = ref 0.0 and io_violation = ref 0.0 in
  Array.iteri
    (fun i (p : Slif.Types.processor) ->
      let comp = Slif.Partition.Cproc i in
      size_violation :=
        !size_violation +. excess (Slif.Estimate.size est comp) p.p_size_constraint;
      match p.p_io_constraint with
      | None -> ()
      | Some cap ->
          io_violation :=
            !io_violation
            +. excess (float_of_int (Slif.Estimate.io_pins est comp)) (Some (float_of_int cap)))
    s.Slif.Types.procs;
  Array.iteri
    (fun i (m : Slif.Types.memory) ->
      let comp = Slif.Partition.Cmem i in
      size_violation :=
        !size_violation +. excess (Slif.Estimate.size est comp) m.m_size_constraint)
    s.Slif.Types.mems;
  let time_violation =
    List.fold_left
      (fun acc (pname, deadline) ->
        match Slif.Types.node_by_name s pname with
        | None -> acc
        | Some node ->
            acc +. excess (Slif.Estimate.exectime_us est node.n_id) (Some deadline))
      0.0 constraints.deadlines_us
  in
  let bitrate_violation =
    let acc = ref 0.0 in
    Array.iteri
      (fun i (b : Slif.Types.bus) ->
        match b.b_capacity_mbps with
        | None -> ()
        | Some cap -> acc := !acc +. excess (Slif.Estimate.bus_bitrate_mbps est i) (Some cap))
      s.Slif.Types.buses;
    !acc
  in
  let total =
    (weights.w_size *. !size_violation)
    +. (weights.w_io *. !io_violation)
    +. (weights.w_time *. time_violation)
    +. (weights.w_bitrate *. bitrate_violation)
  in
  {
    size_violation = !size_violation;
    io_violation = !io_violation;
    time_violation;
    bitrate_violation;
    total;
  }

let total ?weights ~constraints est = (evaluate ?weights ~constraints est).total
