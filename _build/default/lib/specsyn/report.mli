(** Formatted design reports: per-component size / I/O / members, bus
    bitrates, process execution times — the rapid feedback a designer sees
    during interactive exploration. *)

val partition_report :
  ?constraints:Cost.constraints -> Slif.Estimate.t -> string

val explore_report : Explore.entry list -> string
