type t = {
  alloc_name : string;
  procs : Slif.Types.processor list;
  mems : Slif.Types.memory list;
  buses : Slif.Types.bus list;
}

let bus_of_kind ~id ?(capacity = true) (k : Tech.Parts.bus_kind) =
  {
    Slif.Types.b_id = id;
    b_name = k.bk_name;
    b_bitwidth = k.bk_bitwidth;
    b_ts_us = k.bk_ts_us;
    b_td_us = k.bk_td_us;
    b_capacity_mbps = (if capacity then Some k.bk_capacity_mbps else None);
    b_ts_by_tech = [];
    b_td_by_pair = [];
  }

let proc ~id ~name ~kind ~tech ?size_cap ?pins () =
  {
    Slif.Types.p_id = id;
    p_name = name;
    p_kind = kind;
    p_tech = tech;
    p_size_constraint = size_cap;
    p_io_constraint = pins;
  }

let single_cpu ?size_cap () =
  {
    alloc_name = "single-cpu";
    procs = [ proc ~id:0 ~name:"cpu" ~kind:Slif.Types.Standard ~tech:"cpu32" ?size_cap () ];
    mems = [];
    buses = [ bus_of_kind ~id:0 Tech.Parts.bus16 ];
  }

let proc_asic ?cpu_cap ?asic_cap ?asic_pins () =
  {
    alloc_name = "proc-asic";
    procs =
      [
        proc ~id:0 ~name:"cpu" ~kind:Slif.Types.Standard ~tech:"cpu32" ?size_cap:cpu_cap ();
        proc ~id:1 ~name:"asic" ~kind:Slif.Types.Custom ~tech:"asic_gal" ?size_cap:asic_cap
          ?pins:asic_pins ();
      ];
    mems = [];
    buses = [ bus_of_kind ~id:0 Tech.Parts.bus16 ];
  }

let proc_asic_mem () =
  {
    alloc_name = "proc-asic-mem";
    procs =
      [
        proc ~id:0 ~name:"cpu" ~kind:Slif.Types.Standard ~tech:"cpu32" ();
        proc ~id:1 ~name:"asic" ~kind:Slif.Types.Custom ~tech:"asic_gal" ();
      ];
    mems =
      [ { Slif.Types.m_id = 0; m_name = "ram"; m_tech = "sram16"; m_size_constraint = None } ];
    buses = [ bus_of_kind ~id:0 Tech.Parts.bus16; bus_of_kind ~id:1 Tech.Parts.bus8 ];
  }

let cpu_dsp () =
  {
    alloc_name = "cpu-dsp";
    procs =
      [
        proc ~id:0 ~name:"cpu" ~kind:Slif.Types.Standard ~tech:"cpu32" ();
        proc ~id:1 ~name:"dsp" ~kind:Slif.Types.Standard ~tech:"dsp16" ();
      ];
    mems = [];
    buses = [ bus_of_kind ~id:0 Tech.Parts.bus16 ];
  }

let dual_asic () =
  {
    alloc_name = "dual-asic";
    procs =
      [
        proc ~id:0 ~name:"asic0" ~kind:Slif.Types.Custom ~tech:"asic_gal" ();
        proc ~id:1 ~name:"asic1" ~kind:Slif.Types.Custom ~tech:"fpga" ();
      ];
    mems = [];
    buses = [ bus_of_kind ~id:0 Tech.Parts.bus32 ];
  }

let catalog = [ single_cpu (); proc_asic (); proc_asic_mem (); cpu_dsp (); dual_asic () ]

let apply slif t =
  Slif.Types.with_components slif ~procs:t.procs ~mems:t.mems ~buses:t.buses
