(** Greedy constructive partitioning.

    Starting from the all-software seed, nodes are visited in decreasing
    size order (largest objects are placed while the most freedom
    remains) and each is moved to the feasible component that minimizes
    total cost given the placements made so far.  One pass; deterministic. *)

val run : Search.problem -> Search.solution
