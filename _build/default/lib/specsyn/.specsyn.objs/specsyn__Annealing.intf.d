lib/specsyn/annealing.mli: Search Slif
