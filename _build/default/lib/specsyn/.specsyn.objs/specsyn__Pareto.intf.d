lib/specsyn/pareto.mli: Cost Slif
