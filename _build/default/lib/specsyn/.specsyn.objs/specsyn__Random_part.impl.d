lib/specsyn/random_part.ml: Array List Search Slif Slif_util
