lib/specsyn/cost.mli: Slif
