lib/specsyn/greedy.ml: Array List Search Slif
