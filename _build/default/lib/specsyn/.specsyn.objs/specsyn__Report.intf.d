lib/specsyn/report.mli: Cost Explore Slif
