lib/specsyn/alloc.mli: Slif Tech
