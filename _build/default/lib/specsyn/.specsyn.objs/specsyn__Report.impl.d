lib/specsyn/report.ml: Alloc Array Buffer Cost Explore List Printf Search Slif Slif_util String
