lib/specsyn/transform.ml: Array Hashtbl List Option Printf Slif
