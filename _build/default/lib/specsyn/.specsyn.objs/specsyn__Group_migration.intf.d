lib/specsyn/group_migration.mli: Search Slif
