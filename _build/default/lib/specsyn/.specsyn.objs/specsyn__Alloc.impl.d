lib/specsyn/alloc.ml: Slif Tech
