lib/specsyn/random_part.mli: Search
