lib/specsyn/cost.ml: Array List Slif
