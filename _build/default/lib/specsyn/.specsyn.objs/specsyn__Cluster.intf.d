lib/specsyn/cluster.mli: Search Slif
