lib/specsyn/explore.mli: Alloc Annealing Cost Search Slif
