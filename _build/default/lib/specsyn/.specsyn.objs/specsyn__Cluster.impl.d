lib/specsyn/cluster.ml: Array Hashtbl List Option Search Slif
