lib/specsyn/transform.mli: Slif
