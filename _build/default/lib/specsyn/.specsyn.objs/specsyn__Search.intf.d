lib/specsyn/search.mli: Cost Slif
