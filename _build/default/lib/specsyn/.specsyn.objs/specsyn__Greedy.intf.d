lib/specsyn/greedy.mli: Search
