lib/specsyn/search.ml: Array Cost Slif
