lib/specsyn/pareto.ml: Array Cost Float List Search Slif Slif_util
