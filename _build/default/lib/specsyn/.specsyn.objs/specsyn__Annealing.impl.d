lib/specsyn/annealing.ml: Array List Search Slif Slif_util
