lib/specsyn/group_migration.ml: Array List Search Slif
