lib/specsyn/explore.ml: Alloc Annealing Cluster Greedy Group_migration List Printf Random_part Search Slif Slif_util
