exception Not_a_call of string

(* Sum two weight lists over the union of their technologies, scaling the
   second list by [scale]. *)
let merge_weights ?(scale = 1.0) a b =
  let techs = List.sort_uniq compare (List.map fst a @ List.map fst b) in
  List.map
    (fun tech ->
      let va = Option.value (List.assoc_opt tech a) ~default:0.0 in
      let vb = Option.value (List.assoc_opt tech b) ~default:0.0 in
      (tech, va +. (scale *. vb)))
    techs

(* Rebuild a SLIF from node and channel lists: renumber nodes densely,
   remap channel endpoints, drop channels whose endpoints vanished, and
   aggregate same-(src,dst,kind) channels by summing frequencies. *)
let rebuild (s : Slif.Types.t) nodes chans =
  let remap = Hashtbl.create 64 in
  List.iteri (fun i (n : Slif.Types.node) -> Hashtbl.replace remap n.n_id i) nodes;
  let nodes =
    Array.of_list (List.mapi (fun i (n : Slif.Types.node) -> { n with Slif.Types.n_id = i }) nodes)
  in
  let live (c : Slif.Types.channel) =
    Hashtbl.mem remap c.c_src
    && match c.c_dst with Slif.Types.Dnode d -> Hashtbl.mem remap d | Slif.Types.Dport _ -> true
  in
  let aggregated = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (c : Slif.Types.channel) ->
      if live c then begin
        let src = Hashtbl.find remap c.c_src in
        let dst =
          match c.c_dst with
          | Slif.Types.Dnode d -> Slif.Types.Dnode (Hashtbl.find remap d)
          | Slif.Types.Dport p -> Slif.Types.Dport p
        in
        let key = (src, dst, c.c_kind) in
        match Hashtbl.find_opt aggregated key with
        | Some (prev : Slif.Types.channel) ->
            Hashtbl.replace aggregated key
              {
                prev with
                Slif.Types.c_accfreq = prev.c_accfreq +. c.c_accfreq;
                c_accfreq_min = prev.c_accfreq_min +. c.c_accfreq_min;
                c_accfreq_max = prev.c_accfreq_max +. c.c_accfreq_max;
                c_bits = max prev.c_bits c.c_bits;
                c_tag = (if prev.c_tag = c.c_tag then prev.c_tag else None);
              }
        | None ->
            Hashtbl.replace aggregated key { c with Slif.Types.c_src = src; c_dst = dst };
            order := key :: !order
      end)
    chans;
  let chans =
    List.rev !order
    |> List.mapi (fun i key -> { (Hashtbl.find aggregated key) with Slif.Types.c_id = i })
    |> Array.of_list
  in
  { s with Slif.Types.nodes; chans }

let find_node_exn (s : Slif.Types.t) name =
  match Slif.Types.node_by_name s name with Some n -> n | None -> raise Not_found

let inline ~caller ~callee (s : Slif.Types.t) =
  let caller_node = find_node_exn s caller in
  let callee_node = find_node_exn s callee in
  let chans = Array.to_list s.chans in
  let call_chan =
    match
      List.find_opt
        (fun (c : Slif.Types.channel) ->
          c.c_kind = Slif.Types.Call
          && c.c_src = caller_node.n_id
          && c.c_dst = Slif.Types.Dnode callee_node.n_id)
        chans
    with
    | Some c -> c
    | None -> raise (Not_a_call (Printf.sprintf "%s does not call %s" caller callee))
  in
  let call_freq = call_chan.c_accfreq in
  let other_callers =
    List.exists
      (fun (c : Slif.Types.channel) ->
        c.c_kind = Slif.Types.Call
        && c.c_dst = Slif.Types.Dnode callee_node.n_id
        && c.c_src <> caller_node.n_id)
      chans
  in
  (* The caller absorbs the callee's computation and code. *)
  let caller_node' =
    {
      caller_node with
      Slif.Types.n_ict = merge_weights ~scale:call_freq caller_node.n_ict callee_node.n_ict;
      n_size = merge_weights caller_node.n_size callee_node.n_size;
    }
  in
  let nodes =
    Array.to_list s.nodes
    |> List.filter_map (fun (n : Slif.Types.node) ->
           if n.n_id = caller_node.n_id then Some caller_node'
           else if n.n_id = callee_node.n_id && not other_callers then None
           else Some n)
  in
  (* Re-source the callee's accesses at the caller, scaled by how often the
     caller invoked it; drop the call channel itself. *)
  let chans' =
    List.concat_map
      (fun (c : Slif.Types.channel) ->
        if c.c_id = call_chan.c_id then []
        else if c.c_src = callee_node.n_id then
          let hoisted =
            {
              c with
              Slif.Types.c_src = caller_node.n_id;
              c_accfreq = c.c_accfreq *. call_freq;
              c_accfreq_min = c.c_accfreq_min *. call_chan.c_accfreq_min;
              c_accfreq_max = c.c_accfreq_max *. call_chan.c_accfreq_max;
              c_tag = None;
            }
          in
          if other_callers then [ c; hoisted ] else [ hoisted ]
        else [ c ])
      chans
  in
  rebuild s nodes chans'

let merge_processes (s : Slif.Types.t) p1 p2 =
  let n1 = find_node_exn s p1 and n2 = find_node_exn s p2 in
  if not (Slif.Types.is_process n1) then invalid_arg (p1 ^ " is not a process");
  if not (Slif.Types.is_process n2) then invalid_arg (p2 ^ " is not a process");
  let merged =
    {
      n1 with
      Slif.Types.n_name = p1 ^ "_" ^ p2;
      n_ict = merge_weights n1.n_ict n2.n_ict;
      n_size = merge_weights n1.n_size n2.n_size;
    }
  in
  let nodes =
    Array.to_list s.nodes
    |> List.filter_map (fun (n : Slif.Types.node) ->
           if n.n_id = n1.n_id then Some merged
           else if n.n_id = n2.n_id then None
           else Some n)
  in
  (* Redirect p2's endpoints to the merged node; channels between the two
     processes become internal and vanish. *)
  let redirect (c : Slif.Types.channel) =
    let src = if c.c_src = n2.n_id then n1.n_id else c.c_src in
    let dst =
      match c.c_dst with
      | Slif.Types.Dnode d when d = n2.n_id -> Slif.Types.Dnode n1.n_id
      | other -> other
    in
    if src = n1.n_id && dst = Slif.Types.Dnode n1.n_id then None
    else Some { c with Slif.Types.c_src = src; c_dst = dst }
  in
  let chans = Array.to_list s.chans |> List.filter_map redirect in
  rebuild s nodes chans
