(** Specification transformations over SLIF (the third system-design task).

    The paper defers transformations to future work but states exactly
    what they require: "modification of certain nodes and edges, along
    with recomputation of certain annotations" (Section 3).  Both
    transformations below work purely on the annotated access graph.

    {b Procedure inlining} merges a callee into one caller: the call
    channel disappears, the callee's channels are re-sourced at the caller
    with frequencies multiplied by the call frequency, and the caller's
    ict/size weights absorb the callee's (ict scaled by call frequency; a
    full size copy, since the code is duplicated into the caller).  When
    the callee has no other callers its node is removed.

    {b Process merging} fuses two processes into one sequential process:
    channel sets are united (same-destination channels aggregate their
    frequencies) and weights are summed — the "merging processes into a
    single process for implementation with a single controller" use case
    of Section 1. *)

exception Not_a_call of string
(** Raised by [inline] when no call channel links caller to callee. *)

val inline : caller:string -> callee:string -> Slif.Types.t -> Slif.Types.t
(** Raises [Not_found] when either behavior does not exist, {!Not_a_call}
    when the caller does not call the callee. *)

val merge_processes : Slif.Types.t -> string -> string -> Slif.Types.t
(** [merge_processes slif p1 p2] produces a SLIF where processes [p1] and
    [p2] are replaced by a process named ["p1_p2"].  Channels between the
    two become internal and disappear.  Raises [Not_found] when either
    process is missing, [Invalid_argument] when a name is not a process. *)
