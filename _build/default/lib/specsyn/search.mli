(** Shared infrastructure for the partitioning algorithms. *)

type problem = {
  graph : Slif.Graph.t;
  constraints : Cost.constraints;
  weights : Cost.weights;
}

val problem :
  ?constraints:Cost.constraints -> ?weights:Cost.weights -> Slif.Graph.t -> problem

type solution = {
  part : Slif.Partition.t;
  cost : float;
  evaluated : int;   (* number of partitions scored *)
}

val all_comps : Slif.Types.t -> Slif.Partition.comp list

val comps_for_node : Slif.Types.t -> Slif.Types.node -> Slif.Partition.comp list
(** Feasible components: behaviors go to processors only; variables to
    processors or memories (paper, Section 2.2). *)

val seed_partition : Slif.Types.t -> Slif.Partition.t
(** Everything on processor 0, every channel on bus 0 — the initial
    all-software partition.  Raises [Invalid_argument] when the SLIF has
    no processor or no bus. *)

val evaluate : problem -> Slif.Estimate.t -> float
(** Cost of the estimator's partition under the problem's constraints. *)

val estimator : Slif.Graph.t -> Slif.Partition.t -> Slif.Estimate.t
(** Estimator configured for search (average mode, recursion unrolled a
    few levels so a recursive spec does not abort the search). *)
