(** Random-restart partitioning: the baseline search.

    Draws uniformly random proper partitions (nodes onto feasible
    components, channels onto buses) and keeps the cheapest — the simplest
    consumer of SLIF's fast estimation, and the baseline the heuristics
    are compared against. *)

val run : ?seed:int -> restarts:int -> Search.problem -> Search.solution
