(** Simulated-annealing partitioner.

    Random single-object moves (a node to a feasible component, or a
    channel to another bus when the allocation has several) accepted by
    the Metropolis criterion under a geometric cooling schedule.  This is
    the "algorithms that explore thousands of possible designs" workload
    the paper's estimation speed enables; the run reports how many
    partitions were scored. *)

type params = {
  initial_temp : float;
  cooling : float;        (* geometric factor per step, e.g. 0.995 *)
  steps : int;
  seed : int;
}

val default_params : params

val run : ?params:params -> ?initial:Slif.Partition.t -> Search.problem -> Search.solution
