(** System-component allocation (the first system-design task).

    An allocation instantiates processors, memories and buses — each
    referencing a technology from the {!Tech.Parts} catalog — onto which a
    partition then maps the functional objects.  The stock allocations
    below cover the architectures the paper's experiments discuss
    (notably the processor+ASIC architecture of Figure 4). *)

type t = {
  alloc_name : string;
  procs : Slif.Types.processor list;
  mems : Slif.Types.memory list;
  buses : Slif.Types.bus list;
}

val bus_of_kind : id:int -> ?capacity:bool -> Tech.Parts.bus_kind -> Slif.Types.bus
(** Instantiate a catalog bus; [capacity] (default true) carries the
    catalog's peak bitrate into the instance for capacity-aware
    estimates. *)

val single_cpu : ?size_cap:float -> unit -> t
(** One standard 32-bit processor and one 16-bit bus. *)

val proc_asic : ?cpu_cap:float -> ?asic_cap:float -> ?asic_pins:int -> unit -> t
(** The paper's evaluation architecture: one standard processor, one
    gate-array ASIC, one 16-bit bus. *)

val proc_asic_mem : unit -> t
(** Processor + ASIC + standalone memory, two buses (16- and 8-bit). *)

val cpu_dsp : unit -> t
(** A control processor next to a DSP, sharing a 16-bit bus. *)

val dual_asic : unit -> t
(** Two custom components (gate array + FPGA) and a 32-bit bus. *)

val catalog : t list
(** All stock allocations, for design-space exploration. *)

val apply : Slif.Types.t -> t -> Slif.Types.t
(** Install the allocation's components into the SLIF (the P, M, I sets of
    the sextuple). *)
