lib/spc/ast.ml: List Vhdl
