lib/spc/lower.mli: Ast Vhdl
