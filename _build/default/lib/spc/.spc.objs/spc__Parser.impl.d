lib/spc/parser.ml: Array Ast List Printf String Vhdl
