lib/spc/lower.ml: Ast List Printf Vhdl
