lib/spc/parser.mli: Ast
