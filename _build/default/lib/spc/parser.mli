(** Parser for SpecCharts-lite (see {!Ast} for the syntax).

    Reuses the VHDL subset's lexer; leaf statement lists, declaration
    regions and transition guards are delegated to the VHDL parser, so
    leaves accept exactly the VHDL statement subset.  Raises
    [Vhdl.Loc.Error] on syntax errors. *)

val parse : string -> Ast.spec
