(** Lowering SpecCharts-lite to the behavioral-VHDL subset.

    Each behavior becomes one subprogram (so the SLIF builder gives it its
    own node):
    - a leaf keeps its declarations and statements;
    - a concurrent composite forks its children with a [par] block;
    - a sequential composite becomes the classic state-machine encoding: a
      state variable, a while loop, and one dispatch arm per child; after
      a child completes, its transitions are evaluated in declaration
      order (first match wins), an unconditional arc always fires, and
      with no matching arc control falls through to the next sibling —
      the last sibling completes the composite.

    Composite declarations are hoisted to architecture level (shared
    variables) so the whole subtree can access them; leaf declarations
    stay local.  The top behavior is driven by a process named
    [<spec>_main]. *)

exception Lowering_error of string
(** Duplicate behavior names, or a transition naming a non-sibling. *)

val design_of_spec : Ast.spec -> Vhdl.Ast.design
