module Token = Vhdl.Token
module Loc = Vhdl.Loc

type state = { toks : (Token.t * Loc.t) array; mutable pos : int }

let current st = fst st.toks.(st.pos)
let current_loc st = snd st.toks.(st.pos)
let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let fail st fmt =
  Printf.ksprintf
    (fun msg ->
      Loc.error (current_loc st) "%s (found %s)" msg (Token.to_string (current st)))
    fmt

let eat st tok =
  if current st = tok then advance st else fail st "expected %s" (Token.to_string tok)

let accept st tok =
  if current st = tok then begin
    advance st;
    true
  end
  else false

let ident st =
  match current st with
  | Token.Ident s ->
      advance st;
      s
  | _ -> fail st "expected identifier"

let keyword_ident st expected =
  match current st with
  | Token.Ident s when s = expected -> advance st
  | _ -> fail st "expected '%s'" expected

let at_ident st name = match current st with Token.Ident s -> s = name | _ -> false

(* --- Token-slice re-parsing -------------------------------------------------

   Leaf bodies, declaration regions, transition guards and the port clause
   are re-rendered to text and fed to the VHDL parser, so their grammar is
   exactly the VHDL subset's. *)

let render tokens = String.concat " " (List.map Token.to_string tokens)

let slice st ~from_ =
  Array.to_list (Array.sub st.toks from_ (st.pos - from_)) |> List.map fst

(* Statements between 'begin' and the matching 'end': every [if], [case],
   [loop] and [par] opens one more 'end'; 'end' closes one and swallows
   its tag token. *)
let skip_leaf_body st =
  let depth = ref 1 in
  let continue_ = ref true in
  while !continue_ do
    match current st with
    | Token.Eof -> fail st "unterminated leaf behavior"
    | Token.Keyword Token.K_end ->
        decr depth;
        if !depth = 0 then continue_ := false
        else begin
          advance st;
          match current st with
          | Token.Keyword (Token.K_if | Token.K_loop | Token.K_case | Token.K_par)
          | Token.Ident _ ->
              advance st
          | _ -> ()
        end
    | Token.Keyword (Token.K_if | Token.K_case | Token.K_loop | Token.K_par) ->
        incr depth;
        advance st
    | _ -> advance st
  done

let parse_vhdl_fragment ~decls_text ~body_text =
  let source =
    Printf.sprintf
      {|entity frag is end;
architecture a of frag is
begin
  frag_proc: process
%s
  begin
%s
  end process;
end;|}
      decls_text body_text
  in
  match (Vhdl.Parser.parse source).Vhdl.Ast.processes with
  | [ p ] -> (p.Vhdl.Ast.proc_decls, p.Vhdl.Ast.proc_body)
  | _ -> assert false

let parse_port_fragment ~port_text =
  let source =
    Printf.sprintf {|entity frag is
  port ( %s );
end;
architecture a of frag is
begin
end;|}
      port_text
  in
  (Vhdl.Parser.parse source).Vhdl.Ast.ports

(* --- SpecCharts structure ----------------------------------------------- *)

let parse_kind st =
  match current st with
  | Token.Ident "seq" | Token.Ident "sequential" ->
      advance st;
      Ast.Sequential
  | Token.Keyword Token.K_par ->
      advance st;
      Ast.Concurrent
  | Token.Ident "code" | Token.Ident "leaf" ->
      advance st;
      Ast.Leaf
  | _ -> fail st "expected a behavior type: seq, par or code"

(* Declarations run until 'begin' (leaves) or until a child 'behavior' /
   'transitions' / 'end' (composites). *)
let skip_decls st =
  let continue_ = ref true in
  while !continue_ do
    match current st with
    | Token.Keyword (Token.K_begin | Token.K_end) -> continue_ := false
    | Token.Ident ("behavior" | "transitions") -> continue_ := false
    | Token.Eof -> fail st "unterminated declarations"
    | _ -> advance st
  done

let parse_transition st =
  let tr_from = ident st in
  eat st Token.Minus;
  eat st Token.Gt;
  let tr_to = ident st in
  let tr_cond =
    if accept st (Token.Keyword Token.K_on) then begin
      let start = st.pos in
      while current st <> Token.Semicolon && current st <> Token.Eof do
        advance st
      done;
      Some (Vhdl.Parser.parse_expr (render (slice st ~from_:start)))
    end
    else None
  in
  eat st Token.Semicolon;
  { Ast.tr_from; tr_to; tr_cond }

let rec parse_behavior st =
  keyword_ident st "behavior";
  let name = ident st in
  (* 'type' is a VHDL keyword, so it arrives as a keyword token. *)
  eat st (Token.Keyword Token.K_type);
  let kind = parse_kind st in
  eat st (Token.Keyword Token.K_is);
  let decl_start = st.pos in
  skip_decls st;
  let decls_text = render (slice st ~from_:decl_start) in
  let decls, body, children, transitions =
    match kind with
    | Ast.Leaf ->
        eat st (Token.Keyword Token.K_begin);
        let body_start = st.pos in
        skip_leaf_body st;
        let body_text = render (slice st ~from_:body_start) in
        let decls, body = parse_vhdl_fragment ~decls_text ~body_text in
        (decls, body, [], [])
    | Ast.Sequential | Ast.Concurrent ->
        let decls, _ = parse_vhdl_fragment ~decls_text ~body_text:"null;" in
        let children = ref [] in
        while at_ident st "behavior" do
          children := parse_behavior st :: !children
        done;
        let transitions = ref [] in
        if at_ident st "transitions" then begin
          keyword_ident st "transitions";
          while not (current st = Token.Keyword Token.K_end) do
            transitions := parse_transition st :: !transitions
          done
        end;
        (decls, [], List.rev !children, List.rev !transitions)
  in
  eat st (Token.Keyword Token.K_end);
  (match current st with Token.Ident _ -> ignore (ident st) | _ -> ());
  eat st Token.Semicolon;
  if kind <> Ast.Leaf && children = [] then
    fail st "composite behavior %s has no children" name;
  {
    Ast.b_name = name;
    b_kind = kind;
    b_decls = decls;
    b_body = body;
    b_children = children;
    b_transitions = transitions;
  }

let parse_ports st =
  if accept st (Token.Keyword Token.K_port) then begin
    eat st Token.Lparen;
    let start = st.pos in
    let depth = ref 1 in
    while !depth > 0 do
      (match current st with
      | Token.Lparen -> incr depth
      | Token.Rparen -> decr depth
      | Token.Eof -> fail st "unterminated port clause"
      | _ -> ());
      if !depth > 0 then advance st
    done;
    let text = render (slice st ~from_:start) in
    eat st Token.Rparen;
    eat st Token.Semicolon;
    parse_port_fragment ~port_text:text
  end
  else []

let parse source =
  let st = { toks = Array.of_list (Vhdl.Lexer.tokenize source); pos = 0 } in
  keyword_ident st "spec";
  let spec_name = ident st in
  eat st (Token.Keyword Token.K_is);
  let spec_ports = parse_ports st in
  let spec_top = parse_behavior st in
  eat st (Token.Keyword Token.K_end);
  (match current st with Token.Ident _ -> ignore (ident st) | _ -> ());
  eat st Token.Semicolon;
  if current st <> Token.Eof then fail st "trailing input after specification";
  { Ast.spec_name; spec_ports; spec_top }
