module V = Vhdl.Ast

exception Lowering_error of string

let error fmt = Printf.ksprintf (fun msg -> raise (Lowering_error msg)) fmt

let state_var = "spc_state"

(* Dispatch value of each child within its sequential parent: children are
   numbered 1..n; 0 means the composite has completed. *)
let child_index children name =
  let rec go k = function
    | [] -> None
    | (c : Ast.behavior) :: rest -> if c.b_name = name then Some k else go (k + 1) rest
  in
  go 1 children

(* After child [k] completes: evaluate its arcs in order (first match
   wins); fall through to the next sibling (or completion) otherwise. *)
let successor_stmts (b : Ast.behavior) k (child : Ast.behavior) =
  let n = List.length b.b_children in
  let target name =
    match child_index b.b_children name with
    | Some ix -> ix
    | None -> error "behavior %s: transition target %s is not a child" b.b_name name
  in
  let default = V.Assign (V.Tname state_var, V.Int_lit (if k = n then 0 else k + 1)) in
  let arcs =
    List.filter (fun (t : Ast.transition) -> t.tr_from = child.b_name) b.b_transitions
  in
  List.fold_right
    (fun (t : Ast.transition) acc ->
      let assign = V.Assign (V.Tname state_var, V.Int_lit (target t.tr_to)) in
      match t.tr_cond with
      | None -> [ assign ]
      | Some cond -> [ V.If ([ (cond, [ assign ]) ], acc) ])
    arcs [ default ]

let lower_sequential (b : Ast.behavior) =
  let arms =
    List.mapi
      (fun i child ->
        let k = i + 1 in
        ( V.Binop (V.Eq, V.Name state_var, V.Int_lit k),
          V.Pcall (child.Ast.b_name, []) :: successor_stmts b k child ))
      b.b_children
  in
  [
    V.Assign (V.Tname state_var, V.Int_lit 1);
    V.While (V.Binop (V.Gt, V.Name state_var, V.Int_lit 0), [ V.If (arms, []) ]);
  ]

let lower_concurrent (b : Ast.behavior) =
  [ V.Par (List.map (fun (c : Ast.behavior) -> (c.Ast.b_name, [])) b.b_children) ]

let subprogram_of_behavior (b : Ast.behavior) =
  let decls, body =
    match b.b_kind with
    | Ast.Leaf -> (b.b_decls, b.b_body)
    | Ast.Sequential ->
        ( [
            V.Var_decl
              {
                v_name = state_var;
                v_type = V.Int_range (0, List.length b.b_children);
                v_init = None;
                v_shared = false;
              };
          ],
          lower_sequential b )
    | Ast.Concurrent -> ([], lower_concurrent b)
  in
  { V.sub_name = b.b_name; sub_params = []; sub_ret = None; sub_decls = decls; sub_body = body }

let design_of_spec (spec : Ast.spec) =
  let all = Ast.behaviors_preorder spec.spec_top in
  let names = List.map (fun (b : Ast.behavior) -> b.b_name) all in
  if List.length (List.sort_uniq compare names) <> List.length names then
    error "duplicate behavior names in %s" spec.spec_name;
  (* Composite declarations become architecture-level shared state. *)
  let arch_decls =
    List.concat_map
      (fun (b : Ast.behavior) ->
        if b.b_kind = Ast.Leaf then []
        else
          List.map
            (fun d ->
              match d with
              | V.Var_decl v -> V.Var_decl { v with v_shared = true }
              | other -> other)
            b.b_decls)
      all
  in
  let subprograms = List.map subprogram_of_behavior all in
  let processes =
    [
      {
        V.proc_name = spec.spec_name ^ "_main";
        proc_decls = [];
        proc_body = [ V.Pcall (spec.spec_top.b_name, []); V.Wait_for (1, V.Us) ];
      };
    ]
  in
  {
    V.entity_name = spec.spec_name;
    ports = spec.spec_ports;
    arch_name = "lowered";
    arch_decls;
    subprograms;
    processes;
  }
