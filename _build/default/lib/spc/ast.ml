(** Abstract syntax of SpecCharts-lite.

    SpecSyn's specifications were written in SpecCharts — hierarchically
    composed behaviors with completion transitions — which compile into
    VHDL.  This front end supports that style: a specification is a tree
    of behaviors; leaves hold sequential statements (reusing the VHDL
    subset's statements and declarations), composites are sequential
    (children run one at a time, completion arcs choose the successor) or
    concurrent (children fork and join).

    Concrete syntax sketch:
    {v
    spec fuzzy is
      port ( in1 : in integer range 0 to 255; ... );
      behavior top type seq is
        variable shared_state : integer;        -- visible to the subtree
        behavior init type code is
          variable tmp : integer;               -- leaf-local
        begin
          ...statements...
        end init;
        behavior run type par is
          behavior sample type code is begin ... end sample;
          behavior react type code is begin ... end react;
        end run;
        transitions
          init -> run;
          run -> init on mode = 0;              -- else the spec completes
      end top;
    end;
    v} *)

type kind =
  | Leaf                    (* 'code': a statement list *)
  | Sequential              (* 'seq': children + completion transitions *)
  | Concurrent              (* 'par': fork/join of all children *)

type transition = {
  tr_from : string;
  tr_to : string;
  tr_cond : Vhdl.Ast.expr option;   (* None = unconditional completion arc *)
}

type behavior = {
  b_name : string;
  b_kind : kind;
  b_decls : Vhdl.Ast.decl list;
  b_body : Vhdl.Ast.stmt list;      (* leaves only *)
  b_children : behavior list;       (* composites only *)
  b_transitions : transition list;  (* sequential composites only *)
}

type spec = {
  spec_name : string;
  spec_ports : Vhdl.Ast.port list;
  spec_top : behavior;
}

(** [behaviors_preorder top] lists the behavior tree in pre-order. *)
let rec behaviors_preorder b = b :: List.concat_map behaviors_preorder b.b_children
