(** Predicted dynamic workload of a behavior.

    [expected_statements] is the frequency model underneath every SLIF
    annotation, applied to statement counts: the statements one
    start-to-finish execution of a behavior runs, including everything its
    callees run, with loop trip counts and branch probabilities from the
    given profile.  Because {!Interp} charges exactly one step per
    executed statement, this prediction can be validated against a real
    execution: with a profile measured from a deterministic run, the
    prediction matches the interpreter's step count exactly — the
    quantitative accuracy check the paper leaves to future work. *)

val expected_statements :
  profile:Profile.t -> Vhdl.Sem.t -> behavior:string -> float
(** Raises [Invalid_argument] on an unknown behavior or a recursive call
    chain. *)
