(** Concrete interpreter for the VHDL subset, with execution profiling.

    The paper allows the branch-probability file to be "obtained manually
    or through profiling" (Section 2.4.1).  This interpreter is the
    profiling path: it executes behaviors on concrete port stimuli,
    records which branch arms are taken and how often while loops
    iterate, and exports the observations as a {!Profile} whose site
    numbering matches {!Count}'s.

    Execution model, aligned with the static analysis:
    - one [run_process] call is one start-to-finish pass (the outer
      [loop ... end loop] of a process body executes once);
    - [wait] statements are no-ops (time is not modeled);
    - [par] calls execute sequentially;
    - message [send]/[receive] go through per-channel FIFOs, an empty
      FIFO yields 0.

    Runaway protection: every statement costs one step against
    [max_steps] (a per-pass budget, reset by [run_process]), and each
    while loop is cut off at [max_while_iters] iterations per entry. *)

type value = Vint of int | Vbool of bool | Varr of int array

type limits = { max_steps : int; max_while_iters : int }

val default_limits : limits
(** 200_000 steps, 10_000 iterations. *)

exception Limit_exceeded of string
(** Step or iteration budget exhausted; carries the behavior name. *)

exception Runtime_error of string
(** Division by zero, unbound name, out-of-bounds index, arity mismatch. *)

type t

val create : ?limits:limits -> inputs:(string -> int) -> Vhdl.Sem.t -> t
(** [create ~inputs sem] builds a machine with all architecture-level
    variables and signals initialized (declared initializers evaluated,
    otherwise zero / false / range minimum).  [inputs name] supplies the
    value read from input port [name]. *)

val set_inputs : t -> (string -> int) -> unit
(** Replace the stimulus between passes. *)

val run_process : t -> string -> unit
(** One start-to-finish execution of the named process.
    Raises [Not_found] for an unknown process. *)

val run_all_processes : t -> unit
(** One pass of every process, in declaration order. *)

val port_output : t -> string -> int option
(** Last value written to an output port, if any. *)

val read_global : t -> string -> value option
(** Current value of an architecture-level variable or signal. *)

val profile : t -> Profile.t
(** Snapshot the recorded branch and loop statistics as a
    branch-probability profile (covering the control sites that executed
    at least once). *)

val steps : t -> int
(** Statements executed in the current (or last) pass. *)
