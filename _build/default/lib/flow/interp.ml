module Ast = Vhdl.Ast
module Sem = Vhdl.Sem

type value = Vint of int | Vbool of bool | Varr of int array

type limits = { max_steps : int; max_while_iters : int }

let default_limits = { max_steps = 200_000; max_while_iters = 10_000 }

exception Limit_exceeded of string
exception Runtime_error of string

exception Return_value of value option
exception Exit_loop_exn

let error fmt = Printf.ksprintf (fun msg -> raise (Runtime_error msg)) fmt

(* Per-site observation counters. *)
type branch_stat = { mutable visits : int; arms : (int, int) Hashtbl.t; n_arms : int }
type while_stat = { mutable entries : int; mutable iters : int }

type recorder = {
  branch_stats : (string * int, branch_stat) Hashtbl.t;  (* behavior, site *)
  while_stats : (string * int, while_stat) Hashtbl.t;
}

type t = {
  sem : Sem.t;
  globals : (string, value ref) Hashtbl.t;
  mutable inputs : string -> int;
  outputs : (string, int) Hashtbl.t;
  queues : (string, int Queue.t) Hashtbl.t;
  limits : limits;
  mutable step_count : int;
  recorder : recorder;
  sites : (string, Sites.t) Hashtbl.t;
}

(* --- Values and defaults -------------------------------------------------- *)

let rec default_value sem ty =
  match Sem.resolve sem ty with
  | Ast.Integer | Ast.Natural | Ast.Bit | Ast.Bit_vector _ -> Vint 0
  | Ast.Boolean -> Vbool false
  | Ast.Int_range (lo, hi) -> Vint (if lo <= 0 && 0 <= hi then 0 else lo)
  | Ast.Array_of { length; elem; _ } ->
      let e = match default_value sem elem with Vint v -> v | Vbool _ -> 0 | Varr _ -> 0 in
      Varr (Array.make length e)
  | Ast.Named _ -> assert false

let as_int = function
  | Vint v -> v
  | Vbool b -> if b then 1 else 0
  | Varr _ -> error "array used as a scalar"

let as_bool = function
  | Vbool b -> b
  | Vint v -> v <> 0
  | Varr _ -> error "array used as a condition"

(* Arrays index from their declared low bound. *)
let array_lo sem ty =
  match Sem.resolve sem ty with Ast.Array_of { lo; _ } -> lo | _ -> 0

(* --- Machine construction -------------------------------------------------- *)

let eval_const_expr e =
  (* Initializers in the subset are literals or simple arithmetic. *)
  let rec go = function
    | Ast.Int_lit n -> n
    | Ast.Bool_lit b -> if b then 1 else 0
    | Ast.Unop (Ast.Neg, a) -> -go a
    | Ast.Binop (Ast.Add, a, b) -> go a + go b
    | Ast.Binop (Ast.Sub, a, b) -> go a - go b
    | Ast.Binop (Ast.Mul, a, b) -> go a * go b
    | _ -> 0
  in
  go e

let create ?(limits = default_limits) ~inputs sem =
  let design = Sem.design sem in
  let globals = Hashtbl.create 64 in
  List.iter
    (fun d ->
      match d with
      | Ast.Var_decl { v_name; v_type; v_init; _ } ->
          let base = default_value sem v_type in
          let v =
            match (v_init, base) with
            | Some e, Vint _ -> Vint (eval_const_expr e)
            | Some e, Vbool _ -> Vbool (eval_const_expr e <> 0)
            | _ -> base
          in
          Hashtbl.replace globals v_name (ref v)
      | Ast.Sig_decl { s_name; s_type } ->
          Hashtbl.replace globals s_name (ref (default_value sem s_type))
      | Ast.Const_decl _ | Ast.Type_decl _ -> ())
    design.Ast.arch_decls;
  let sites = Hashtbl.create 16 in
  List.iter
    (fun (name, _, body) -> Hashtbl.replace sites name (Sites.of_body body))
    (Ast.behaviors design);
  {
    sem;
    globals;
    inputs;
    outputs = Hashtbl.create 16;
    queues = Hashtbl.create 8;
    limits;
    step_count = 0;
    recorder = { branch_stats = Hashtbl.create 32; while_stats = Hashtbl.create 8 };
    sites;
  }

let set_inputs t f = t.inputs <- f

(* --- Recording ------------------------------------------------------------- *)

let record_branch t ~behavior ~site ~arm ~n_arms =
  let key = (behavior, site) in
  let stat =
    match Hashtbl.find_opt t.recorder.branch_stats key with
    | Some s -> s
    | None ->
        let s = { visits = 0; arms = Hashtbl.create 4; n_arms } in
        Hashtbl.replace t.recorder.branch_stats key s;
        s
  in
  stat.visits <- stat.visits + 1;
  Hashtbl.replace stat.arms arm (1 + Option.value (Hashtbl.find_opt stat.arms arm) ~default:0)

let record_while_entry t ~behavior ~site ~iters =
  let key = (behavior, site) in
  let stat =
    match Hashtbl.find_opt t.recorder.while_stats key with
    | Some s -> s
    | None ->
        let s = { entries = 0; iters = 0 } in
        Hashtbl.replace t.recorder.while_stats key s;
        s
  in
  stat.entries <- stat.entries + 1;
  stat.iters <- stat.iters + iters

(* --- Execution ------------------------------------------------------------- *)

type frame = {
  behavior : string;
  env : Sem.env;
  locals : (string, value ref) Hashtbl.t;
  site_map : Sites.t;
}

let tick t behavior =
  t.step_count <- t.step_count + 1;
  if t.step_count > t.limits.max_steps then raise (Limit_exceeded behavior)

let find_subprogram t name =
  match Sem.lookup (Sem.global_env t.sem) name with
  | Some (Sem.Subprogram sub) -> Some sub
  | _ -> None

let queue_for t ch =
  match Hashtbl.find_opt t.queues ch with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.replace t.queues ch q;
      q

let rec eval t frame e =
  match e with
  | Ast.Int_lit n -> Vint n
  | Ast.Bool_lit b -> Vbool b
  | Ast.Name n -> (
      (* A bare name can be a zero-argument function call. *)
      match Hashtbl.mem frame.locals n with
      | true -> read_name t frame n
      | false -> (
          match find_subprogram t n with
          | Some sub -> call_subprogram t frame sub []
          | None -> read_name t frame n))
  | Ast.Attr (n, attr) -> (
      match (read_name_opt t frame n, attr) with
      | Some (Varr a), "length" -> Vint (Array.length a)
      | _ -> Vint 0)
  | Ast.Index (n, ix) -> (
      match find_subprogram t n with
      | Some sub -> call_subprogram t frame sub [ ix ]
      | None -> (
          let i = as_int (eval t frame ix) in
          match read_name t frame n with
          | Varr a ->
              let ty = type_of_name t frame n in
              let lo = array_lo t.sem ty in
              if i - lo < 0 || i - lo >= Array.length a then
                error "%s(%d): index out of bounds in %s" n i frame.behavior
              else Vint a.(i - lo)
          | _ -> error "%s is not an array" n))
  | Ast.Call (n, args) -> (
      match find_subprogram t n with
      | Some sub -> call_subprogram t frame sub args
      | None -> error "unknown function %s" n)
  | Ast.Binop (op, a, b) -> eval_binop t frame op a b
  | Ast.Unop (op, a) -> (
      match op with
      | Ast.Neg -> Vint (-as_int (eval t frame a))
      | Ast.Abs -> Vint (abs (as_int (eval t frame a)))
      | Ast.Not -> Vbool (not (as_bool (eval t frame a))))

and eval_binop t frame op a b =
  match op with
  | Ast.And -> Vbool (as_bool (eval t frame a) && as_bool (eval t frame b))
  | Ast.Or -> Vbool (as_bool (eval t frame a) || as_bool (eval t frame b))
  | Ast.Xor -> Vbool (as_bool (eval t frame a) <> as_bool (eval t frame b))
  | _ -> (
      let x = as_int (eval t frame a) and y = as_int (eval t frame b) in
      match op with
      | Ast.Add -> Vint (x + y)
      | Ast.Sub -> Vint (x - y)
      | Ast.Mul -> Vint (x * y)
      | Ast.Div -> if y = 0 then error "division by zero in %s" frame.behavior else Vint (x / y)
      | Ast.Mod -> if y = 0 then error "mod by zero in %s" frame.behavior else Vint (((x mod y) + y) mod y)
      | Ast.Rem -> if y = 0 then error "rem by zero in %s" frame.behavior else Vint (x mod y)
      | Ast.Eq -> Vbool (x = y)
      | Ast.Neq -> Vbool (x <> y)
      | Ast.Lt -> Vbool (x < y)
      | Ast.Le -> Vbool (x <= y)
      | Ast.Gt -> Vbool (x > y)
      | Ast.Ge -> Vbool (x >= y)
      | Ast.Concat -> Vint ((x * 2) + y)
      | Ast.And | Ast.Or | Ast.Xor -> assert false)

and type_of_name _t frame n =
  match Sem.lookup frame.env n with
  | Some (Sem.Local_var ty | Sem.Global_var ty | Sem.Port (_, ty) | Sem.Param (_, ty)
         | Sem.Constant (ty, _)) ->
      ty
  | _ -> Ast.Integer

and read_name_opt t frame n =
  match Hashtbl.find_opt frame.locals n with
  | Some r -> Some !r
  | None -> (
      match Sem.lookup frame.env n with
      | Some (Sem.Constant (_, e)) -> Some (Vint (eval_const_expr e))
      | Some (Sem.Port _) -> Some (Vint (t.inputs n))
      | Some (Sem.Global_var _) -> (
          match Hashtbl.find_opt t.globals n with Some r -> Some !r | None -> None)
      | Some (Sem.Local_var _ | Sem.Param _) ->
          (* Declared but never initialized in this frame: default. *)
          Some (default_value t.sem (type_of_name t frame n))
      | Some (Sem.Subprogram _) | None -> None)

and read_name t frame n =
  match read_name_opt t frame n with
  | Some v -> v
  | None -> error "unbound name %s in %s" n frame.behavior

and write_name t frame n v =
  match Hashtbl.find_opt frame.locals n with
  | Some r -> r := v
  | None -> (
      match Sem.lookup frame.env n with
      | Some (Sem.Port _) -> Hashtbl.replace t.outputs n (as_int v)
      | Some (Sem.Global_var _) -> (
          match Hashtbl.find_opt t.globals n with
          | Some r -> r := v
          | None -> Hashtbl.replace t.globals n (ref v))
      | Some (Sem.Local_var _ | Sem.Param _) -> Hashtbl.replace frame.locals n (ref v)
      | _ -> error "cannot assign to %s in %s" n frame.behavior)

and write_target t frame target v =
  match target with
  | Ast.Tname n -> write_name t frame n v
  | Ast.Tindex (n, ix) -> (
      let i = as_int (eval t frame ix) in
      match read_name t frame n with
      | Varr a ->
          let lo = array_lo t.sem (type_of_name t frame n) in
          if i - lo < 0 || i - lo >= Array.length a then
            error "%s(%d): index out of bounds in %s" n i frame.behavior
          else a.(i - lo) <- as_int v
      | _ -> error "%s is not an array" n)

and call_subprogram t frame sub args =
  let name = sub.Ast.sub_name in
  let locals = Hashtbl.create 8 in
  if List.length args <> List.length sub.Ast.sub_params then
    error "%s expects %d arguments" name (List.length sub.Ast.sub_params);
  (* Copy-in. *)
  List.iter2
    (fun (p : Ast.param) arg ->
      let v =
        match p.par_mode with
        | Ast.In | Ast.Inout -> eval t frame arg
        | Ast.Out -> default_value t.sem p.par_type
      in
      Hashtbl.replace locals p.par_name (ref v))
    sub.Ast.sub_params args;
  List.iter
    (fun d ->
      match d with
      | Ast.Var_decl { v_name; v_type; v_init; _ } ->
          let v =
            match v_init with
            | Some e -> Vint (eval_const_expr e)
            | None -> default_value t.sem v_type
          in
          Hashtbl.replace locals v_name (ref v)
      | _ -> ())
    sub.Ast.sub_decls;
  let callee_frame =
    {
      behavior = name;
      env = Sem.env_of_behavior t.sem name;
      locals;
      site_map =
        (match Hashtbl.find_opt t.sites name with
        | Some s -> s
        | None -> Sites.of_body sub.Ast.sub_body);
    }
  in
  let result =
    try
      exec_stmts t callee_frame [] sub.Ast.sub_body;
      None
    with Return_value v -> v
  in
  (* Copy-out for out/inout parameters bound to lvalue arguments. *)
  List.iter2
    (fun (p : Ast.param) arg ->
      match p.par_mode with
      | Ast.Out | Ast.Inout -> (
          let v = !(Hashtbl.find locals p.par_name) in
          match arg with
          | Ast.Name n -> write_name t frame n v
          | Ast.Index (n, ix) -> write_target t frame (Ast.Tindex (n, ix)) v
          | _ -> ())
      | Ast.In -> ())
    sub.Ast.sub_params args;
  match result with Some v -> v | None -> Vint 0

and exec_stmts t frame path body =
  List.iteri (fun i s -> exec_stmt t frame (i :: path) s) body

and exec_stmt t frame path s =
  tick t frame.behavior;
  match s with
  | Ast.Assign (target, e) | Ast.Signal_assign (target, e) ->
      write_target t frame target (eval t frame e)
  | Ast.If (arms, els) ->
      let n_arms = List.length arms + 1 in
      let site = Sites.branch_site frame.site_map path in
      let rec try_arms k = function
        | [] ->
            record t frame site ~arm:(List.length arms) ~n_arms;
            exec_stmts t frame (List.length arms :: path) els
        | (cond, body) :: rest ->
            if as_bool (eval t frame cond) then begin
              record t frame site ~arm:k ~n_arms;
              exec_stmts t frame (k :: path) body
            end
            else try_arms (k + 1) rest
      in
      try_arms 0 arms
  | Ast.Case (subject, alts) ->
      let n_arms = List.length alts in
      let site = Sites.branch_site frame.site_map path in
      let v = as_int (eval t frame subject) in
      let matches choices =
        List.exists
          (function
            | Ast.Ch_others -> true
            | Ast.Ch_expr e -> as_int (eval t frame e) = v)
          choices
      in
      let rec try_alts k = function
        | [] -> ()
        | (choices, body) :: rest ->
            if matches choices then begin
              record t frame site ~arm:k ~n_arms;
              exec_stmts t frame (k :: path) body
            end
            else try_alts (k + 1) rest
      in
      try_alts 0 alts
  | Ast.For (v, lo, hi, body) ->
      let saved = Hashtbl.find_opt frame.locals v in
      (try
         for i = lo to hi do
           Hashtbl.replace frame.locals v (ref (Vint i));
           exec_stmts t frame (0 :: path) body
         done
       with Exit_loop_exn -> ());
      (match saved with
      | Some r -> Hashtbl.replace frame.locals v r
      | None -> Hashtbl.remove frame.locals v)
  | Ast.While (cond, body) ->
      let site = Sites.while_site frame.site_map path in
      let iters = ref 0 in
      (try
         while as_bool (eval t frame cond) do
           incr iters;
           if !iters > t.limits.max_while_iters then raise (Limit_exceeded frame.behavior);
           exec_stmts t frame (0 :: path) body
         done
       with Exit_loop_exn -> ());
      (match site with
      | Some site -> record_while_entry t ~behavior:frame.behavior ~site ~iters:!iters
      | None -> ())
  | Ast.Loop_forever body -> (
      (* One start-to-finish pass, consistent with the static analysis. *)
      try exec_stmts t frame (0 :: path) body with Exit_loop_exn -> ())
  | Ast.Pcall (n, args) -> (
      match find_subprogram t n with
      | Some sub -> ignore (call_subprogram t frame sub args)
      | None -> error "unknown procedure %s" n)
  | Ast.Par calls ->
      List.iter
        (fun (n, args) ->
          match find_subprogram t n with
          | Some sub -> ignore (call_subprogram t frame sub args)
          | None -> error "unknown procedure %s" n)
        calls
  | Ast.Send (ch, e) -> Queue.push (as_int (eval t frame e)) (queue_for t ch)
  | Ast.Receive (ch, target) ->
      let q = queue_for t ch in
      let v = if Queue.is_empty q then 0 else Queue.pop q in
      write_target t frame target (Vint v)
  | Ast.Wait_for _ | Ast.Wait_on _ -> ()
  | Ast.Wait_until e -> ignore (eval t frame e)
  | Ast.Return e -> raise (Return_value (Option.map (eval t frame) e))
  | Ast.Null_stmt -> ()
  | Ast.Exit_loop -> raise Exit_loop_exn

and record t frame site ~arm ~n_arms =
  match site with
  | Some site -> record_branch t ~behavior:frame.behavior ~site ~arm ~n_arms
  | None -> ()

(* --- Entry points ------------------------------------------------------------ *)

let run_process t name =
  (* The step budget is per pass. *)
  t.step_count <- 0;
  let design = Sem.design t.sem in
  let proc =
    match List.find_opt (fun p -> p.Ast.proc_name = name) design.Ast.processes with
    | Some p -> p
    | None -> raise Not_found
  in
  let locals = Hashtbl.create 8 in
  List.iter
    (fun d ->
      match d with
      | Ast.Var_decl { v_name; v_type; v_init; _ } ->
          let v =
            match v_init with
            | Some e -> Vint (eval_const_expr e)
            | None -> default_value t.sem v_type
          in
          Hashtbl.replace locals v_name (ref v)
      | _ -> ())
    proc.Ast.proc_decls;
  let frame =
    {
      behavior = name;
      env = Sem.env_of_behavior t.sem name;
      locals;
      site_map = Hashtbl.find t.sites name;
    }
  in
  try exec_stmts t frame [] proc.Ast.proc_body with Return_value _ -> ()

let run_all_processes t =
  let design = Sem.design t.sem in
  List.iter (fun (p : Ast.process) -> run_process t p.Ast.proc_name) design.Ast.processes

let port_output t name = Hashtbl.find_opt t.outputs name

let read_global t name = Option.map ( ! ) (Hashtbl.find_opt t.globals name)

let profile t =
  let p = ref Profile.empty in
  Hashtbl.iter
    (fun (behavior, site) (stat : branch_stat) ->
      if stat.visits > 0 then
        for arm = 0 to stat.n_arms - 1 do
          let count = Option.value (Hashtbl.find_opt stat.arms arm) ~default:0 in
          p :=
            Profile.set_branch !p ~behavior ~site ~arm
              (float_of_int count /. float_of_int stat.visits)
        done)
    t.recorder.branch_stats;
  Hashtbl.iter
    (fun (behavior, site) (stat : while_stat) ->
      if stat.entries > 0 then
        p :=
          Profile.set_while !p ~behavior ~site
            ~trips:(float_of_int stat.iters /. float_of_int stat.entries))
    t.recorder.while_stats;
  !p

let steps t = t.step_count
