(** Static execution-count analysis of a behavior.

    Walks a behavior body once, multiplying loop trip counts and branch
    probabilities, and reports every access site (variable read/write,
    subprogram call, message pass) together with how many times it executes
    during one average start-to-finish execution of the behavior — exactly
    the [accfreq] weight of the paper, plus the min / max variants the
    paper mentions as simple extensions.

    Conventions (documented deviations are in DESIGN.md §5):
    - [for] loops use their exact static trip count for avg, min and max;
    - [while] loops use the profile's expected trips for avg, 0 for min
      and twice the expected trips for max;
    - [loop ... end loop] (the process's forever loop) counts as a single
      pass, since the metric is per start-to-finish execution;
    - code under a condition contributes 0 to the min count and its full
      multiplier to the max count;
    - the condition of arm [k] of an if-chain is evaluated only when no
      earlier arm was taken. *)

type mult = { avg : float; mn : float; mx : float }

val mult_one : mult
val mult_scale : mult -> mult -> mult

type access =
  | Read of string          (* variable / signal / port / constant read *)
  | Write of string         (* variable / signal / port write *)
  | Call of string          (* subprogram call (statement or expression) *)
  | Message_out of string   (* send on an abstract message channel *)
  | Message_in of string    (* receive on an abstract message channel *)

type event = {
  access : access;
  mult : mult;
  par_group : int option;  (* same group <=> inside the same [par] block *)
  seq : int;               (* pre-order statement index, for tagging *)
}

val events : profile:Profile.t -> behavior:string -> Vhdl.Ast.stmt list -> event list
(** All access events of the behavior body, in traversal order.  Loop
    indices are recognized and do not generate read events. *)

val fold_stmts :
  profile:Profile.t ->
  behavior:string ->
  Vhdl.Ast.stmt list ->
  init:'a ->
  f:('a -> mult -> Vhdl.Ast.stmt -> 'a) ->
  'a
(** [fold_stmts] calls [f] on every statement (composite statements
    included, before their children) with that statement's execution
    multiplier.  The technology models use this for their op censuses. *)

val fold_exprs :
  profile:Profile.t ->
  behavior:string ->
  Vhdl.Ast.stmt list ->
  init:'a ->
  f:('a -> mult -> Vhdl.Ast.expr -> 'a) ->
  'a
(** [fold_exprs] calls [f] on every source-level expression occurrence
    (assignment right-hand sides, branch and loop conditions — each with
    its exact evaluation multiplier, e.g. a while condition scaled by its
    trip count) but not on subexpressions; consumers walk the expression
    themselves. *)
