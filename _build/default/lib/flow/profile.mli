(** Branch-probability files.

    The paper derives each channel's [accfreq] weight "from a branch
    probability file", obtained manually or through profiling (Section
    2.4.1).  A profile maps control sites of a behavior to probabilities
    (branch arms) or expected trip counts (while loops).  Sites are
    numbered in pre-order per behavior by {!Count}; anything not present in
    the file takes a documented default.

    File syntax, one entry per line ([#] starts a comment):
    {v
      behavior.branch<k>.arm<i>  <probability>
      behavior.while<k>          <expected-trips>
    v} *)

type t

val empty : t
(** Profile with only defaults: uniform probability over the arms of a
    branch (counting the implicit or explicit else arm), and
    {!default_while_trips} iterations per while loop. *)

val default_while_trips : float

val set_branch : t -> behavior:string -> site:int -> arm:int -> float -> t
val set_while : t -> behavior:string -> site:int -> trips:float -> t

val branch_prob : t -> behavior:string -> site:int -> arm:int -> arms:int -> float
(** [branch_prob t ~behavior ~site ~arm ~arms] is the probability of
    taking arm [arm] of the branch at [site], where [arms] counts all arms
    including the else arm.  Defaults to [1 /. arms]. *)

val while_trips : t -> behavior:string -> site:int -> float

val of_string : string -> t
(** Parses the file syntax above.  Raises [Failure] with a line number on a
    malformed entry. *)

val to_string : t -> string
(** Serializes all explicit entries, sorted; [of_string (to_string t)]
    equals [t] on explicit entries. *)
