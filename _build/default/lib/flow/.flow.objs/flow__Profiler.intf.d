lib/flow/profiler.mli: Interp Profile Vhdl
