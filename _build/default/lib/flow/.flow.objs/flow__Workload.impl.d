lib/flow/workload.ml: Count Hashtbl List Option Printf Vhdl
