lib/flow/interp.mli: Profile Vhdl
