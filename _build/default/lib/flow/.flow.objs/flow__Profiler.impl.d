lib/flow/profiler.ml: Interp List Slif_util Vhdl
