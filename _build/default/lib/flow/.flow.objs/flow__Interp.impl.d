lib/flow/interp.ml: Array Hashtbl List Option Printf Profile Queue Sites Vhdl
