lib/flow/count.mli: Profile Vhdl
