lib/flow/profile.ml: Buffer List Map Printf String
