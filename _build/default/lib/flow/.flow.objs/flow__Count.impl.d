lib/flow/count.ml: List Profile Vhdl
