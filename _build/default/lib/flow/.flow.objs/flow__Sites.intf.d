lib/flow/sites.mli: Vhdl
