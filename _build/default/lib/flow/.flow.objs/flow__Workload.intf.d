lib/flow/workload.mli: Profile Vhdl
