lib/flow/sites.ml: Hashtbl List Vhdl
