lib/flow/profile.mli:
