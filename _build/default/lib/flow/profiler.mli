(** Automatic profiling driver.

    Runs every process of a design for a number of passes under
    pseudo-random port stimuli and returns the observed branch-probability
    profile — the push-button version of the paper's "obtained ...
    through profiling".  Processes that exhaust the step budget or hit a
    runtime error contribute the observations gathered up to that point. *)

val auto :
  ?runs:int -> ?seed:int -> ?limits:Interp.limits -> Vhdl.Sem.t -> Profile.t
(** [auto sem] runs 10 passes with seed 1 by default.  Port inputs are
    drawn uniformly from [0, 256) (scaled into small ranges by the
    specifications' own arithmetic). *)
