(** Static numbering of control sites.

    {!Count} numbers branch sites (if/case) and while sites in pre-order
    during its walk; the dynamic profiler must attribute executed branches
    to the same numbers.  This module reproduces the numbering as a map
    from statement {e paths} — the chain of (child-list, index) steps from
    the behavior body to the statement — to site ids. *)

type path = int list
(** Flattened pre-order statement index chain; element [k] is the position
    of the statement within the [k]-th nesting level's statement list,
    counting every list the walker descends into (if-arms, else, case
    alternatives, loop bodies) in traversal order. *)

type t

val of_body : Vhdl.Ast.stmt list -> t

val branch_site : t -> path -> int option
(** Site id of the if/case statement at [path]. *)

val while_site : t -> path -> int option
