module Ast = Vhdl.Ast

let expected_statements ~profile sem ~behavior =
  let design = Vhdl.Sem.design sem in
  let bodies = Hashtbl.create 16 in
  List.iter (fun (name, _, body) -> Hashtbl.replace bodies name body) (Ast.behaviors design);
  let memo = Hashtbl.create 16 in
  let rec total name stack =
    if List.mem name stack then
      invalid_arg (Printf.sprintf "Workload.expected_statements: recursion through %s" name);
    match Hashtbl.find_opt memo name with
    | Some v -> v
    | None ->
        let body =
          match Hashtbl.find_opt bodies name with
          | Some b -> b
          | None ->
              invalid_arg
                (Printf.sprintf "Workload.expected_statements: unknown behavior %s" name)
        in
        (* Own statements, loop- and probability-weighted. *)
        let own =
          Count.fold_stmts ~profile ~behavior:name body ~init:0.0
            ~f:(fun acc mult _ -> acc +. mult.Count.avg)
        in
        (* Callee statements, weighted by how often each callee runs. *)
        let callees = Hashtbl.create 8 in
        List.iter
          (fun (e : Count.event) ->
            match e.access with
            | Count.Call callee when Hashtbl.mem bodies callee ->
                Hashtbl.replace callees callee
                  (e.mult.Count.avg
                  +. Option.value (Hashtbl.find_opt callees callee) ~default:0.0)
            | Count.Read r when Hashtbl.mem bodies r ->
                (* A zero-argument function call parsed as a name read. *)
                Hashtbl.replace callees r
                  (e.mult.Count.avg +. Option.value (Hashtbl.find_opt callees r) ~default:0.0)
            | _ -> ())
          (Count.events ~profile ~behavior:name body);
        let v =
          Hashtbl.fold
            (fun callee freq acc -> acc +. (freq *. total callee (name :: stack)))
            callees own
        in
        Hashtbl.replace memo name v;
        v
  in
  total behavior []
