open Vhdl.Ast

type mult = { avg : float; mn : float; mx : float }

let mult_one = { avg = 1.0; mn = 1.0; mx = 1.0 }

let mult_scale a b = { avg = a.avg *. b.avg; mn = a.mn *. b.mn; mx = a.mx *. b.mx }

type access =
  | Read of string
  | Write of string
  | Call of string
  | Message_out of string
  | Message_in of string

type event = { access : access; mult : mult; par_group : int option; seq : int }

type walk_state = {
  profile : Profile.t;
  behavior : string;
  mutable branch_site : int;
  mutable while_site : int;
  mutable seq : int;
  mutable par_counter : int;
  mutable loop_vars : string list;
}

let fresh_branch_site st =
  let s = st.branch_site in
  st.branch_site <- s + 1;
  s

let fresh_while_site st =
  let s = st.while_site in
  st.while_site <- s + 1;
  s

let next_seq st =
  let s = st.seq in
  st.seq <- s + 1;
  s

(* Generic walker shared by [events] and [fold_stmts].  [on_stmt] sees every
   statement with its multiplier; [on_access] sees every access event. *)
let walk st ~on_stmt ~on_access ~on_expr body =
  let emit access mult par_group seq = on_access { access; mult; par_group; seq } in
  let rec expr_reads mult par seq e =
    on_expr mult e;
    expr_reads_inner mult par seq e
  and expr_reads_inner mult par seq e =
    match e with
    | Int_lit _ | Bool_lit _ | Attr _ -> ()
    | Name n -> if not (List.mem n st.loop_vars) then emit (Read n) mult par seq
    | Index (n, i) ->
        if not (List.mem n st.loop_vars) then emit (Read n) mult par seq;
        expr_reads_inner mult par seq i
    | Call (n, args) ->
        emit (Call n) mult par seq;
        List.iter (expr_reads_inner mult par seq) args
    | Binop (_, a, b) ->
        expr_reads_inner mult par seq a;
        expr_reads_inner mult par seq b
    | Unop (_, a) -> expr_reads_inner mult par seq a
  in
  let target_accesses mult par seq = function
    | Tname n -> emit (Write n) mult par seq
    | Tindex (n, i) ->
        emit (Write n) mult par seq;
        expr_reads mult par seq i
  in
  let rec stmt mult s =
    on_stmt mult s;
    let seq = next_seq st in
    match s with
    | Assign (t, e) | Signal_assign (t, e) ->
        expr_reads mult None seq e;
        target_accesses mult None seq t
    | If (arms, els) ->
        let site = fresh_branch_site st in
        let n_arms = List.length arms + 1 in
        (* Probability that control reaches the test of arm k. *)
        let reach = ref 1.0 in
        List.iteri
          (fun arm (cond, body) ->
            let p =
              Profile.branch_prob st.profile ~behavior:st.behavior ~site ~arm
                ~arms:n_arms
            in
            (* Arm 0's condition is always evaluated; later conditions only
               when no earlier arm was taken. *)
            let cond_mult =
              {
                avg = mult.avg *. !reach;
                mn = (if arm = 0 then mult.mn else 0.0);
                mx = mult.mx;
              }
            in
            let cond_seq = next_seq st in
            expr_reads cond_mult None cond_seq cond;
            reach := !reach -. p;
            let body_mult = mult_scale mult { avg = p; mn = 0.0; mx = 1.0 } in
            List.iter (stmt body_mult) body)
          arms;
        let p_else =
          let taken =
            List.mapi
              (fun arm _ ->
                Profile.branch_prob st.profile ~behavior:st.behavior ~site ~arm
                  ~arms:n_arms)
              arms
          in
          max 0.0 (1.0 -. List.fold_left ( +. ) 0.0 taken)
        in
        let else_mult = mult_scale mult { avg = p_else; mn = 0.0; mx = 1.0 } in
        List.iter (stmt else_mult) els
    | Case (subject, alts) ->
        let site = fresh_branch_site st in
        let n_arms = List.length alts in
        let subj_seq = next_seq st in
        expr_reads mult None subj_seq subject;
        List.iteri
          (fun arm (choices, body) ->
            let p =
              Profile.branch_prob st.profile ~behavior:st.behavior ~site ~arm
                ~arms:n_arms
            in
            List.iter
              (function Ch_expr e -> expr_reads mult None subj_seq e | Ch_others -> ())
              choices;
            let body_mult = mult_scale mult { avg = p; mn = 0.0; mx = 1.0 } in
            List.iter (stmt body_mult) body)
          alts
    | For (v, lo, hi, body) ->
        let trips = float_of_int (hi - lo + 1) in
        let body_mult = mult_scale mult { avg = trips; mn = trips; mx = trips } in
        st.loop_vars <- v :: st.loop_vars;
        List.iter (stmt body_mult) body;
        st.loop_vars <- List.tl st.loop_vars
    | While (cond, body) ->
        let site = fresh_while_site st in
        let trips = Profile.while_trips st.profile ~behavior:st.behavior ~site in
        let cond_mult = mult_scale mult { avg = trips; mn = 1.0; mx = 2.0 *. trips } in
        let cond_seq = next_seq st in
        expr_reads cond_mult None cond_seq cond;
        let body_mult = mult_scale mult { avg = trips; mn = 0.0; mx = 2.0 *. trips } in
        List.iter (stmt body_mult) body
    | Loop_forever body ->
        (* One start-to-finish pass of the enclosing process. *)
        List.iter (stmt mult) body
    | Pcall (n, args) ->
        emit (Call n) mult None seq;
        List.iter (expr_reads mult None seq) args
    | Par calls ->
        let gid = st.par_counter in
        st.par_counter <- gid + 1;
        List.iter
          (fun (n, args) ->
            emit (Call n) mult (Some gid) seq;
            List.iter (expr_reads mult (Some gid) seq) args)
          calls
    | Send (ch, e) ->
        expr_reads mult None seq e;
        emit (Message_out ch) mult None seq
    | Receive (ch, t) ->
        emit (Message_in ch) mult None seq;
        target_accesses mult None seq t
    | Wait_until e -> expr_reads mult None seq e
    | Return (Some e) -> expr_reads mult None seq e
    | Wait_for _ | Wait_on _ | Return None | Null_stmt | Exit_loop -> ()
  in
  List.iter (stmt mult_one) body

let make_state ~profile ~behavior =
  {
    profile;
    behavior;
    branch_site = 0;
    while_site = 0;
    seq = 0;
    par_counter = 0;
    loop_vars = [];
  }

let no_expr _ _ = ()

let events ~profile ~behavior body =
  let st = make_state ~profile ~behavior in
  let acc = ref [] in
  walk st
    ~on_stmt:(fun _ _ -> ())
    ~on_access:(fun e -> acc := e :: !acc)
    ~on_expr:no_expr body;
  List.rev !acc

let fold_stmts ~profile ~behavior body ~init ~f =
  let st = make_state ~profile ~behavior in
  let acc = ref init in
  walk st
    ~on_stmt:(fun mult s -> acc := f !acc mult s)
    ~on_access:(fun _ -> ())
    ~on_expr:no_expr body;
  !acc

let fold_exprs ~profile ~behavior body ~init ~f =
  let st = make_state ~profile ~behavior in
  let acc = ref init in
  walk st
    ~on_stmt:(fun _ _ -> ())
    ~on_access:(fun _ -> ())
    ~on_expr:(fun mult e -> acc := f !acc mult e)
    body;
  !acc
