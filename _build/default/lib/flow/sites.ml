type path = int list

type t = { branches : (path, int) Hashtbl.t; whiles : (path, int) Hashtbl.t }

(* The traversal below must mirror Count.walk exactly: branch sites are
   assigned at each if/case in pre-order, while sites at each while, and
   every nested statement list is entered in source order. *)
let of_body body =
  let t = { branches = Hashtbl.create 32; whiles = Hashtbl.create 8 } in
  let branch_ctr = ref 0 and while_ctr = ref 0 in
  let rec stmts path list =
    List.iteri (fun i s -> stmt (i :: path) s) list
  and stmt path s =
    match s with
    | Vhdl.Ast.If (arms, els) ->
        Hashtbl.replace t.branches path !branch_ctr;
        incr branch_ctr;
        List.iteri (fun k (_, body) -> stmts (k :: path) body) arms;
        stmts (List.length arms :: path) els
    | Vhdl.Ast.Case (_, alts) ->
        Hashtbl.replace t.branches path !branch_ctr;
        incr branch_ctr;
        List.iteri (fun k (_, body) -> stmts (k :: path) body) alts
    | Vhdl.Ast.While (_, body) ->
        Hashtbl.replace t.whiles path !while_ctr;
        incr while_ctr;
        stmts (0 :: path) body
    | Vhdl.Ast.For (_, _, _, body) | Vhdl.Ast.Loop_forever body -> stmts (0 :: path) body
    | Vhdl.Ast.Assign _ | Vhdl.Ast.Signal_assign _ | Vhdl.Ast.Pcall _ | Vhdl.Ast.Par _
    | Vhdl.Ast.Send _ | Vhdl.Ast.Receive _ | Vhdl.Ast.Wait_for _ | Vhdl.Ast.Wait_until _
    | Vhdl.Ast.Wait_on _ | Vhdl.Ast.Return _ | Vhdl.Ast.Null_stmt | Vhdl.Ast.Exit_loop ->
        ()
  in
  stmts [] body;
  t

let branch_site t path = Hashtbl.find_opt t.branches path
let while_site t path = Hashtbl.find_opt t.whiles path
