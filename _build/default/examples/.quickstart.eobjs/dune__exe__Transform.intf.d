examples/transform.mli:
