examples/compare_formats.ml: Addfmt Cdfg List Printf Slif Slif_util Specs Specsyn Tech Vhdl
