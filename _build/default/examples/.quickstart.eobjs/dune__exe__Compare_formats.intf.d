examples/compare_formats.mli:
