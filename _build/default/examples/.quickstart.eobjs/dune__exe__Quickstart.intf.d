examples/quickstart.mli:
