examples/transform.ml: Array Printf Slif Specs Specsyn Tech Vhdl
