examples/quickstart.ml: Array List Printf Slif Specs Specsyn String Tech Vhdl
