examples/profiling.ml: Array Flow Printf Slif Specs Specsyn Tech Vhdl
