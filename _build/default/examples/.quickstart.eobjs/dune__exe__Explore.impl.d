examples/explore.ml: List Printf Slif Specs Specsyn Tech Vhdl
