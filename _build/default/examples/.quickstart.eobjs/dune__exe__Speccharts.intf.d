examples/speccharts.mli:
