examples/speccharts.ml: Flow List Printf Slif Spc Specsyn String Tech Vhdl
