examples/profiling.mli:
