examples/explore.mli:
