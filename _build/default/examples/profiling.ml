(* Profiling-driven estimation on the volume-measuring instrument.

   The paper's accfreq weights come from a branch-probability file,
   "obtained manually or through profiling".  This example takes the
   profiling path: it executes the spec's processes in the bundled
   interpreter under two different stimulus scenarios, derives a profile
   from each, and shows how the measured branch probabilities move the
   execution-time estimates relative to the static (uniform) defaults.

   Run with: dune exec examples/profiling.exe *)

let estimate_with profile label =
  let spec = Specs.Registry.find_exn "vol" in
  let sem = Vhdl.Sem.build (Vhdl.Parser.parse spec.source) in
  let slif =
    Slif.Annotate.run ?profile ~techs:Tech.Parts.all sem
      (Slif.Build.build ?profile sem)
  in
  let s = Specsyn.Alloc.apply slif (Specsyn.Alloc.proc_asic ()) in
  let graph = Slif.Graph.make s in
  let part = Specsyn.Search.seed_partition s in
  let est = Specsyn.Search.estimator graph part in
  Printf.printf "%-34s" label;
  Array.iter
    (fun (n : Slif.Types.node) ->
      if Slif.Types.is_process n then
        Printf.printf "  %s=%8.2fus" n.n_name (Slif.Estimate.exectime_us est n.n_id))
    s.Slif.Types.nodes;
  print_newline ()

let profile_scenario ~label ~inputs ~runs =
  let spec = Specs.Registry.find_exn "vol" in
  let sem = Vhdl.Sem.build (Vhdl.Parser.parse spec.source) in
  let machine = Flow.Interp.create ~inputs sem in
  for pass = 1 to runs do
    ignore pass;
    Flow.Interp.run_all_processes machine
  done;
  let profile = Flow.Interp.profile machine in
  Printf.printf "\nscenario %s: measured profile entries:\n%s" label
    (Flow.Profile.to_string profile);
  profile

let () =
  print_endline "== Volume instrument: static defaults vs measured profiles ==\n";
  estimate_with None "static defaults (0.5 / uniform)";

  (* Scenario A: patient connected and breathing — the measurement path
     (sample/integrate/detect) runs every pass. *)
  let breathing =
    profile_scenario ~label:"A (patient breathing)" ~runs:8 ~inputs:(fun name ->
        match name with
        | "patient_on" -> 1
        | "cal_btn" -> 0
        | "flow_in" -> 600
        | _ -> 0)
  in
  estimate_with (Some breathing) "profiled: patient breathing";

  (* Scenario B: idle with a calibration request — only the calibration
     branch runs, so the measurement-path frequencies collapse. *)
  let calibrating =
    profile_scenario ~label:"B (idle, calibrating)" ~runs:8 ~inputs:(fun name ->
        match name with
        | "patient_on" -> 0
        | "cal_btn" -> 1
        | "flow_in" -> 12
        | _ -> 0)
  in
  estimate_with (Some calibrating) "profiled: idle + calibration";

  print_endline
    "\nThe same specification yields different accfreq annotations per usage\n\
     scenario, and the execution-time estimates follow the measured control\n\
     flow rather than the uniform-branch assumption."
