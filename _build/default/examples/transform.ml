(* Specification transformations on the answering machine.

   Shows the two SLIF transformations (the paper's third system-design
   task): inlining a helper procedure into its caller, and merging two
   processes for single-controller implementation — each followed by
   re-estimation, demonstrating that annotations stay consistent.

   Run with: dune exec examples/transform.exe *)

let metrics slif label =
  let s = Specsyn.Alloc.apply slif (Specsyn.Alloc.proc_asic ()) in
  let graph = Slif.Graph.make s in
  let part = Specsyn.Search.seed_partition s in
  let est = Specsyn.Search.estimator graph part in
  let stats = Slif.Stats.of_slif s in
  Printf.printf "%-28s BV=%-3d C=%-3d size(cpu)=%-7.0f" label stats.Slif.Stats.bv
    stats.Slif.Stats.channels
    (Slif.Estimate.size est (Slif.Partition.Cproc 0));
  Array.iter
    (fun (n : Slif.Types.node) ->
      if Slif.Types.is_process n then
        Printf.printf "  %s=%.0fus" n.n_name (Slif.Estimate.exectime_us est n.n_id))
    s.Slif.Types.nodes;
  print_newline ()

let () =
  let spec = Specs.Registry.find_exn "ans" in
  let sem = Vhdl.Sem.build (Vhdl.Parser.parse spec.source) in
  let slif = Slif.Annotate.run ~techs:Tech.Parts.all sem (Slif.Build.build sem) in

  print_endline "== Telephone answering machine: transformation chain ==\n";
  metrics slif "original";

  (* Inline the line-monitoring helper into the call-control process: one
     fewer behavior to place, no more call channel between them. *)
  let inlined = Specsyn.Transform.inline ~caller:"linemon" ~callee:"dtmf_step" slif in
  metrics inlined "+ inline dtmf_step";

  let inlined2 = Specsyn.Transform.inline ~caller:"callctl" ~callee:"seize_line" inlined in
  metrics inlined2 "+ inline seize_line";

  (* Merge the line monitor into call control: one sequential process, one
     controller (the paper's process-merging use case). *)
  let merged = Specsyn.Transform.merge_processes inlined2 "callctl" "linemon" in
  metrics merged "+ merge callctl/linemon";

  print_endline "\nNodes after the chain:";
  Array.iter
    (fun (n : Slif.Types.node) ->
      if Slif.Types.is_behavior n then
        Printf.printf "  %s%s\n" n.n_name (if Slif.Types.is_process n then " (process)" else ""))
    merged.Slif.Types.nodes
