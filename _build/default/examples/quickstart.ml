(* Quickstart: the full SLIF flow on the paper's fuzzy-logic controller.

   Parses the Figure-1-style specification, builds the basic access graph
   (Figure 2), annotates it with per-technology weights (Figure 3), and
   queries the Section 3 estimators for a processor+ASIC partition.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. Parse the specification and build the basic SLIF-AG. *)
  let spec = Specs.Registry.find_exn "fuzzy" in
  let design = Vhdl.Parser.parse spec.source in
  let sem = Vhdl.Sem.build design in
  let basic = Slif.Build.build sem in
  Printf.printf "== Basic SLIF-AG (paper Figure 2) ==\n%s\n\n"
    (Slif.Stats.to_string (Slif.Stats.of_slif basic));
  Array.iter
    (fun (c : Slif.Types.channel) ->
      let dst =
        match c.c_dst with
        | Slif.Types.Dnode d -> basic.Slif.Types.nodes.(d).n_name
        | Slif.Types.Dport p -> basic.Slif.Types.ports.(p).pt_name ^ " (port)"
      in
      if c.c_src = 0 then
        Printf.printf "  %s -> %-18s accfreq=%-6g bits=%d\n"
          basic.Slif.Types.nodes.(c.c_src).n_name dst c.c_accfreq c.c_bits)
    basic.Slif.Types.chans;

  (* 2. Annotate: pseudo-compile / pseudo-synthesize each behavior for
     every candidate technology (the one-time preprocessing step). *)
  let slif = Slif.Annotate.run ~techs:Tech.Parts.all sem basic in
  print_endline "\n== Annotations (paper Figure 3) ==";
  List.iter
    (fun name ->
      match Slif.Types.node_by_name slif name with
      | Some n ->
          let show (tech, v) = Printf.sprintf "%s: %.1f us" tech v in
          Printf.printf "  ict(%s) = { %s }\n" name
            (String.concat "; " (List.map show n.n_ict))
      | None -> ())
    [ "fuzzymain"; "evaluate_rule"; "convolve"; "compute_centroid" ];

  (* 3. Allocate a processor + ASIC architecture and estimate. *)
  let s = Specsyn.Alloc.apply slif (Specsyn.Alloc.proc_asic ()) in
  let graph = Slif.Graph.make s in
  let part = Specsyn.Search.seed_partition s in
  (* Move the datapath-heavy behaviors and their tables to the ASIC. *)
  List.iter
    (fun name ->
      match Slif.Types.node_by_name s name with
      | Some n -> Slif.Partition.assign_node part ~node:n.n_id (Slif.Partition.Cproc 1)
      | None -> ())
    [ "evaluate_rule"; "convolve"; "min2"; "max2"; "tmr1"; "tmr2"; "mr1"; "mr2"; "conv" ];
  let est = Specsyn.Search.estimator graph part in
  print_endline "\n== Estimates for a hand partition (cpu + asic) ==";
  print_endline (Specsyn.Report.partition_report est);

  (* 4. Export the annotated graph for graphviz. *)
  let dot = Slif.Dot.to_dot ~annotations:true ~partition:part s in
  let oc = open_out "fuzzy_slif.dot" in
  output_string oc dot;
  close_out oc;
  print_endline "wrote fuzzy_slif.dot (render with: dot -Tpdf fuzzy_slif.dot)"
