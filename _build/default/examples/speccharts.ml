(* SpecCharts-lite: hierarchical specification of an elevator controller.

   SpecSyn's input language was SpecCharts — hierarchically composed
   behaviors with completion transitions.  This example writes one, lowers
   it to the behavioral-VHDL subset, builds and annotates its SLIF,
   estimates a processor+ASIC partition, and finally executes the lowered
   state machine in the interpreter.

   Run with: dune exec examples/speccharts.exe *)

let elevator =
  {|spec elevator is
  port ( request  : in integer range 0 to 15;
         position : in integer range 0 to 15;
         motor    : out integer range 0 to 2;
         doors    : out integer range 0 to 1 );
  behavior top type seq is
    variable target : integer range 0 to 15;
    variable moving : integer range 0 to 2;
    variable door_timer : integer;
    behavior await type code is
    begin
      target := request;
      motor <= 0;
      moving := 0;
    end await;
    behavior travel type seq is
      behavior decide type code is
      begin
        if target > position then
          moving := 1;
        elsif target < position then
          moving := 2;
        else
          moving := 0;
        end if;
        motor <= moving;
      end decide;
      behavior cruise type code is
        variable steps : integer;
      begin
        steps := abs (target - position);
        for i in 1 to 15 loop
          if i <= steps then
            motor <= moving;
          end if;
        end loop;
      end cruise;
      transitions
        decide -> cruise on moving > 0;
    end travel;
    behavior serve_floor type par is
      behavior open_doors type code is
      begin
        doors <= 1;
        door_timer := 300;
        while door_timer > 0 loop
          door_timer := door_timer - 1;
        end loop;
        doors <= 0;
      end open_doors;
      behavior watch_obstruction type code is
      begin
        if request = 15 then
          door_timer := 600;
        end if;
      end watch_obstruction;
    end serve_floor;
    transitions
      await -> travel on request /= position;
      await -> serve_floor;
      travel -> serve_floor;
  end top;
end;
|}

let () =
  (* 1. Parse and lower. *)
  let spec = Spc.Parser.parse elevator in
  let design = Spc.Lower.design_of_spec spec in
  Printf.printf "parsed %s: %d behaviors in the hierarchy\n" spec.Spc.Ast.spec_name
    (List.length (Spc.Ast.behaviors_preorder spec.Spc.Ast.spec_top));
  print_endline "\n== Lowered VHDL (excerpt) ==";
  let text = Vhdl.Pretty.design_to_string design in
  String.split_on_char '\n' text
  |> List.filteri (fun i _ -> i < 24)
  |> List.iter print_endline;
  print_endline "  ...";

  (* 2. The standard SLIF flow applies unchanged. *)
  let sem = Vhdl.Sem.build design in
  let slif = Slif.Annotate.run ~techs:Tech.Parts.all sem (Slif.Build.build sem) in
  Printf.printf "\n== SLIF ==\n%s\n" (Slif.Stats.to_string (Slif.Stats.of_slif slif));
  let s = Specsyn.Alloc.apply slif (Specsyn.Alloc.proc_asic ()) in
  let graph = Slif.Graph.make s in
  let part = Specsyn.Search.seed_partition s in
  let est = Specsyn.Search.estimator graph part in
  (match Slif.Types.node_by_name s "elevator_main" with
  | Some n ->
      Printf.printf "exectime(elevator_main) all-software: %.2f us\n"
        (Slif.Estimate.exectime_us est n.n_id)
  | None -> ());

  (* 3. Execute the lowered state machine: floor 3 -> floor 7. *)
  let m =
    Flow.Interp.create
      ~inputs:(fun name -> if name = "request" then 7 else if name = "position" then 3 else 0)
      sem
  in
  Flow.Interp.run_process m "elevator_main";
  Printf.printf "\n== Interpreted run (request=7, position=3) ==\n";
  Printf.printf "motor ends at %s, doors end at %s (%d statements executed)\n"
    (match Flow.Interp.port_output m "motor" with Some v -> string_of_int v | None -> "-")
    (match Flow.Interp.port_output m "doors" with Some v -> string_of_int v | None -> "-")
    (Flow.Interp.steps m)
