(* Design-space exploration of the ethernet coprocessor.

   The paper motivates SLIF with "algorithms that explore thousands of
   possible designs": this example sweeps the stock allocation catalog
   with four partitioning algorithms under performance constraints on the
   transmit and receive engines, then details the winning design.

   Run with: dune exec examples/explore.exe *)

let () =
  let spec = Specs.Registry.find_exn "ether" in
  let sem = Vhdl.Sem.build (Vhdl.Parser.parse spec.source) in
  let slif = Slif.Annotate.run ~techs:Tech.Parts.all sem (Slif.Build.build sem) in
  Printf.printf "ether: %s\n\n" (Slif.Stats.to_string (Slif.Stats.of_slif slif));

  let constraints =
    { Specsyn.Cost.deadlines_us = [ ("txctl", 2000.0); ("rxctl", 2000.0) ] }
  in
  let entries =
    Specsyn.Explore.run ~constraints
      ~algos:
        [
          Specsyn.Explore.Random 100;
          Specsyn.Explore.Greedy;
          Specsyn.Explore.Group_migration;
          Specsyn.Explore.Annealing { Specsyn.Annealing.default_params with steps = 1500 };
        ]
      slif
  in
  print_endline "== Allocation x algorithm sweep (sorted by cost) ==";
  print_endline (Specsyn.Report.explore_report entries);

  let total_partitions =
    List.fold_left (fun acc e -> acc + e.Specsyn.Explore.solution.Specsyn.Search.evaluated) 0 entries
  in
  let total_time =
    List.fold_left (fun acc e -> acc +. e.Specsyn.Explore.elapsed_s) 0.0 entries
  in
  Printf.printf "\n%d partitions evaluated in %.2fs (%.0f designs/second)\n\n"
    total_partitions total_time
    (float_of_int total_partitions /. total_time);

  (match entries with
  | best :: _ ->
      Printf.printf "== Best design: %s / %s ==\n"
        best.Specsyn.Explore.alloc.Specsyn.Alloc.alloc_name
        (Specsyn.Explore.algo_name best.Specsyn.Explore.algo);
      let s = Specsyn.Alloc.apply slif best.Specsyn.Explore.alloc in
      let graph = Slif.Graph.make s in
      (* Re-evaluate the winning partition against the same constraints. *)
      let est =
        Specsyn.Search.estimator graph best.Specsyn.Explore.solution.Specsyn.Search.part
      in
      print_endline (Specsyn.Report.partition_report ~constraints est)
  | [] -> print_endline "no designs produced");

  (* The designer's view: the performance/area trade-off curve. *)
  let s = Specsyn.Alloc.apply slif (Specsyn.Alloc.proc_asic ()) in
  let graph = Slif.Graph.make s in
  let points = Specsyn.Pareto.sweep ~constraints graph in
  print_endline "\n== Pareto front (worst-case time vs custom hardware) ==";
  List.iter
    (fun (p : Specsyn.Pareto.point) ->
      Printf.printf "  %8.1f us  |  %8.0f gates  |  %6.0f bytes software\n"
        p.worst_exectime_us p.hw_gates p.sw_bytes)
    points
