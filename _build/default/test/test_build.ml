(* Builder tests: the AST -> access-graph mapping rules of Section 2.2. *)

let build src =
  let sem = Vhdl.Sem.build (Vhdl.Parser.parse src) in
  Slif.Build.build sem

let fixture =
  {|entity fix is
  port ( din : in integer range 0 to 255; dout : out integer range 0 to 255 );
end;
architecture a of fix is
  type tab is array (1 to 128) of integer range 0 to 255;
  shared variable gv : integer range 0 to 255;
  shared variable arr : tab;
  constant limit : integer := 100;
  procedure helper(n : in integer range 0 to 255) is
    variable tmp : integer;
  begin
    tmp := arr(n) + limit;
    gv := tmp mod 256;
  end helper;
begin
  main: process
  begin
    gv := din;
    helper(1);
    helper(2);
    dout <= gv;
    wait for 1 us;
  end process;
end;|}

let slif = lazy (build fixture)

let find_node name =
  match Slif.Types.node_by_name (Lazy.force slif) name with
  | Some n -> n
  | None -> Alcotest.fail ("missing node " ^ name)

let find_chan ~src ~dst =
  let s = Lazy.force slif in
  let src_id = (find_node src).n_id in
  let dst_id = (find_node dst).n_id in
  match
    Array.to_list s.Slif.Types.chans
    |> List.find_opt (fun (c : Slif.Types.channel) ->
           c.c_src = src_id && c.c_dst = Slif.Types.Dnode dst_id)
  with
  | Some c -> c
  | None -> Alcotest.fail (Printf.sprintf "missing channel %s -> %s" src dst)

let test_nodes_created () =
  let s = Lazy.force slif in
  Alcotest.(check bool) "main is a process" true (Slif.Types.is_process (find_node "main"));
  let helper = find_node "helper" in
  Alcotest.(check bool) "helper is a behavior" true (Slif.Types.is_behavior helper);
  Alcotest.(check bool) "helper is not a process" false (Slif.Types.is_process helper);
  Alcotest.(check bool) "gv is a variable" true (Slif.Types.is_variable (find_node "gv"));
  Alcotest.(check bool) "arr is a variable" true (Slif.Types.is_variable (find_node "arr"));
  (* 2 behaviors + 2 variables; constants and locals get no node. *)
  Alcotest.(check int) "node count" 4 (Array.length s.Slif.Types.nodes);
  Alcotest.(check bool) "no node for the constant" true
    (Slif.Types.node_by_name s "limit" = None);
  Alcotest.(check bool) "no node for the local" true (Slif.Types.node_by_name s "tmp" = None)

let test_ports_created () =
  let s = Lazy.force slif in
  Alcotest.(check int) "two ports" 2 (Array.length s.Slif.Types.ports);
  match Slif.Types.port_by_name s "din" with
  | Some p ->
      Alcotest.(check int) "din is 8 bits" 8 p.pt_bits;
      Alcotest.(check bool) "din is an input" true (p.pt_dir = Slif.Types.Pin)
  | None -> Alcotest.fail "din port missing"

let test_call_aggregation () =
  (* Two calls of helper by main collapse to one channel with accfreq 2 —
     the paper's EvaluateRule example. *)
  let c = find_chan ~src:"main" ~dst:"helper" in
  Alcotest.(check (float 1e-9)) "accfreq 2" 2.0 c.c_accfreq;
  Alcotest.(check bool) "kind call" true (c.c_kind = Slif.Types.Call);
  (* helper's one in-parameter is a byte. *)
  Alcotest.(check int) "bits = parameter bits" 8 c.c_bits

let test_array_access_bits () =
  (* Figure 3: a 128-entry byte array moves 8 data + 7 address bits. *)
  let c = find_chan ~src:"helper" ~dst:"arr" in
  Alcotest.(check int) "15 bits" 15 c.c_bits;
  Alcotest.(check bool) "kind var" true (c.c_kind = Slif.Types.Var_access)

let test_variable_node_bits () =
  match (find_node "arr").n_kind with
  | Slif.Types.Variable { storage_bits; transfer_bits } ->
      Alcotest.(check int) "storage 128*8" 1024 storage_bits;
      Alcotest.(check int) "transfer 15" 15 transfer_bits
  | _ -> Alcotest.fail "arr is not a variable"

let test_port_channels () =
  let s = Lazy.force slif in
  let main = (find_node "main").n_id in
  let port_chans =
    Array.to_list s.Slif.Types.chans
    |> List.filter (fun (c : Slif.Types.channel) ->
           c.c_src = main && match c.c_dst with Slif.Types.Dport _ -> true | _ -> false)
  in
  Alcotest.(check int) "main touches both ports" 2 (List.length port_chans)

let test_gv_accessed_by_both () =
  let c_main = find_chan ~src:"main" ~dst:"gv" in
  let c_helper = find_chan ~src:"helper" ~dst:"gv" in
  (* main writes then reads gv: 2 accesses; helper writes it once. *)
  Alcotest.(check (float 1e-9)) "main accesses gv twice" 2.0 c_main.c_accfreq;
  Alcotest.(check (float 1e-9)) "helper accesses gv once" 1.0 c_helper.c_accfreq

let test_no_annotation_before_annotate () =
  let n = find_node "main" in
  Alcotest.(check bool) "no ict yet" true (n.n_ict = []);
  let annotated =
    let sem = Vhdl.Sem.build (Vhdl.Parser.parse fixture) in
    Slif.Annotate.run ~techs:Tech.Parts.all sem (Lazy.force slif)
  in
  match Slif.Types.node_by_name annotated "main" with
  | Some n' ->
      Alcotest.(check bool) "behavior annotated on processors only" true
        (List.mem_assoc "cpu32" n'.n_ict
        && List.mem_assoc "asic_gal" n'.n_ict
        && not (List.mem_assoc "sram16" n'.n_ict))
  | None -> Alcotest.fail "main lost by annotate"

let test_variable_annotations () =
  let sem = Vhdl.Sem.build (Vhdl.Parser.parse fixture) in
  let annotated = Slif.Annotate.run ~techs:Tech.Parts.all sem (Lazy.force slif) in
  match Slif.Types.node_by_name annotated "arr" with
  | Some n ->
      Alcotest.(check (option (float 1e-9))) "arr on sram16 = 64 words" (Some 64.0)
        (Slif.Types.size_on n "sram16");
      Alcotest.(check bool) "variables get weights on all techs" true
        (List.length n.n_size = List.length Tech.Parts.all)
  | None -> Alcotest.fail "arr lost by annotate"

let test_message_channels () =
  let s =
    build
      {|entity m is end;
architecture a of m is
begin
  producer: process
  begin
    send(box, 5);
    wait for 1 us;
  end process;
  consumer: process
    variable v : integer;
  begin
    receive(box, v);
  end process;
end;|}
  in
  let producer =
    match Slif.Types.node_by_name s "producer" with Some n -> n | None -> Alcotest.fail "producer"
  in
  let consumer =
    match Slif.Types.node_by_name s "consumer" with Some n -> n | None -> Alcotest.fail "consumer"
  in
  let msg =
    Array.to_list s.Slif.Types.chans
    |> List.find_opt (fun (c : Slif.Types.channel) -> c.c_kind = Slif.Types.Message)
  in
  match msg with
  | Some c ->
      Alcotest.(check int) "from producer" producer.n_id c.c_src;
      Alcotest.(check bool) "to consumer" true (c.c_dst = Slif.Types.Dnode consumer.n_id)
  | None -> Alcotest.fail "no message channel"

let test_send_without_receiver_becomes_port () =
  let s =
    build
      {|entity m is end;
architecture a of m is
begin
  p: process
  begin
    send(orphan, 1);
    wait for 1 us;
  end process;
end;|}
  in
  Alcotest.(check bool) "implicit port created" true
    (Slif.Types.port_by_name s "orphan" <> None)

let test_par_tags () =
  let s =
    build
      {|entity m is end;
architecture a of m is
  procedure a1 is begin null; end a1;
  procedure a2 is begin null; end a2;
  procedure b1 is begin null; end b1;
begin
  p: process
  begin
    par a1; a2; end par;
    b1;
    wait for 1 us;
  end process;
end;|}
  in
  let tag_of name =
    let node =
      match Slif.Types.node_by_name s name with Some n -> n | None -> Alcotest.fail name
    in
    Array.to_list s.Slif.Types.chans
    |> List.find_map (fun (c : Slif.Types.channel) ->
           if c.c_dst = Slif.Types.Dnode node.n_id then Some c.c_tag else None)
  in
  match (tag_of "a1", tag_of "a2", tag_of "b1") with
  | Some (Some t1), Some (Some t2), Some t3 ->
      Alcotest.(check bool) "par channels share a tag" true (t1 = t2);
      Alcotest.(check bool) "sequential call has a different tag" true (t3 <> Some t1)
  | _ -> Alcotest.fail "tags missing"

let test_fuzzy_counts_near_paper () =
  (* Same order of magnitude as the paper's 35 BV / 56 C — tens of
     objects, not the hundreds/thousands of the fine-grained formats. *)
  let stats = Slif.Stats.of_slif (Lazy.force Helpers.fuzzy_slif) in
  Alcotest.(check bool) "BV within 2x of 35" true
    (stats.Slif.Stats.bv >= 18 && stats.Slif.Stats.bv <= 70);
  Alcotest.(check bool) "C within 2x of 56" true
    (stats.Slif.Stats.channels >= 28 && stats.Slif.Stats.channels <= 112)

let suite =
  [
    Alcotest.test_case "nodes created per rules" `Quick test_nodes_created;
    Alcotest.test_case "ports created" `Quick test_ports_created;
    Alcotest.test_case "repeated calls aggregate" `Quick test_call_aggregation;
    Alcotest.test_case "array access bits (Figure 3)" `Quick test_array_access_bits;
    Alcotest.test_case "variable node bit annotations" `Quick test_variable_node_bits;
    Alcotest.test_case "port channels" `Quick test_port_channels;
    Alcotest.test_case "shared variable fan-in" `Quick test_gv_accessed_by_both;
    Alcotest.test_case "annotate fills weights" `Quick test_no_annotation_before_annotate;
    Alcotest.test_case "variable weights per technology" `Quick test_variable_annotations;
    Alcotest.test_case "message channels pair sender/receiver" `Quick test_message_channels;
    Alcotest.test_case "orphan send becomes a port" `Quick test_send_without_receiver_becomes_port;
    Alcotest.test_case "par concurrency tags" `Quick test_par_tags;
    Alcotest.test_case "fuzzy counts near the paper" `Quick test_fuzzy_counts_near_paper;
  ]
