let body_of src stmts =
  ignore src;
  match
    (Vhdl.Parser.parse
       (Printf.sprintf
          {|entity e is end;
architecture a of e is
  shared variable g : integer;
begin
  main: process
    variable l : integer;
  begin
%s
  end process;
end;|}
          stmts))
      .Vhdl.Ast.processes
  with
  | [ p ] -> p.Vhdl.Ast.proc_body
  | _ -> Alcotest.fail "expected one process"

let census ?(is_local = fun n -> n = "l") ?(is_sub = fun _ -> false) stmts =
  Tech.Census.of_behavior ~profile:Flow.Profile.empty ~is_local ~is_sub ~name:"main"
    (body_of () stmts)

let checkf = Alcotest.(check (float 1e-9))
let checki = Alcotest.(check int)

let test_census_arith_ops () =
  let c = census "l := l + 1; l := l * 2;" in
  checkf "one dynamic add" 1.0 (Tech.Census.dyn c Tech.Optype.Add);
  checkf "one dynamic mul" 1.0 (Tech.Census.dyn c Tech.Optype.Mul);
  checki "one static add" 1 (Tech.Census.stat c Tech.Optype.Add);
  checki "one static mul" 1 (Tech.Census.stat c Tech.Optype.Mul);
  checkf "two moves" 2.0 (Tech.Census.dyn c Tech.Optype.Move)

let test_census_loop_scaling () =
  let c = census "for i in 1 to 10 loop l := l + 1; end loop;" in
  (* Body add executes 10x, plus the loop's own increment 10x. *)
  checkf "adds scaled by trips" 20.0 (Tech.Census.dyn c Tech.Optype.Add);
  checki "static adds: body + loop overhead" 2 (Tech.Census.stat c Tech.Optype.Add);
  checkf "loop compare each trip" 10.0 (Tech.Census.dyn c Tech.Optype.Cmp)

let test_census_local_vs_global_loads () =
  let c = census "l := g;" in
  (* The read of [g] is a channel access: static only. *)
  checkf "no dynamic load for global" 0.0 (Tech.Census.dyn c Tech.Optype.Load);
  checki "static load for global" 1 (Tech.Census.stat c Tech.Optype.Load);
  checkf "dynamic store for local" 1.0 (Tech.Census.dyn c Tech.Optype.Store);
  let c2 = census "g := l;" in
  checkf "dynamic load for local" 1.0 (Tech.Census.dyn c2 Tech.Optype.Load);
  checkf "no dynamic store for global" 0.0 (Tech.Census.dyn c2 Tech.Optype.Store)

let test_census_sub_reads_are_calls () =
  let c = census ~is_sub:(fun n -> n = "getval") "l := getval(3);" in
  checki "call linkage counted" 1 (Tech.Census.stat c Tech.Optype.Call_op);
  checki "no load for the subprogram name" 0 (Tech.Census.stat c Tech.Optype.Load)

let test_census_branch_ops () =
  let c = census "if l > 0 then l := 1; end if;" in
  checki "one static branch" 1 (Tech.Census.stat c Tech.Optype.Branch);
  checkf "one dynamic cmp" 1.0 (Tech.Census.dyn c Tech.Optype.Cmp)

let test_proc_model_ict () =
  let c = census "for i in 1 to 100 loop l := l + 1; end loop;" in
  let small = Tech.Proc_model.behavior_ict_us Tech.Parts.mcu8 c in
  let big = Tech.Proc_model.behavior_ict_us Tech.Parts.cpu32 c in
  Alcotest.(check bool) "ict positive" true (small > 0.0);
  Alcotest.(check bool) "faster cpu has smaller ict" true (big < small)

let test_proc_model_size () =
  let small = census "l := 1;" in
  let large = census "l := 1; l := 2; l := 3; l := l + l * 2;" in
  let s1 = Tech.Proc_model.behavior_size_bytes Tech.Parts.cpu32 small in
  let s2 = Tech.Proc_model.behavior_size_bytes Tech.Parts.cpu32 large in
  Alcotest.(check bool) "more code, more bytes" true (s2 > s1);
  Alcotest.(check bool) "overhead floor" true
    (s1 >= float_of_int Tech.Parts.cpu32.Tech.Proc_model.code_overhead_bytes)

let test_proc_variable_size () =
  checkf "1024 bits on a 16-bit-word cpu32? (32-bit words, 4 bytes each)"
    128.0
    (Tech.Proc_model.variable_size_bytes Tech.Parts.cpu32 ~storage_bits:1024);
  checkf "7 bits round up to one 8-bit word" 1.0
    (Tech.Proc_model.variable_size_bytes Tech.Parts.mcu8 ~storage_bits:7)

let test_asic_allocate () =
  let c = census "l := l + 1;" in
  checki "single add site allocates one FU" 1
    (Tech.Asic_model.allocate Tech.Parts.asic_gal c Tech.Optype.Add);
  checki "unused class allocates nothing" 0
    (Tech.Asic_model.allocate Tech.Parts.asic_gal c Tech.Optype.Div)

let test_asic_allocation_bounded () =
  let many = census (String.concat " " (List.init 30 (fun i -> Printf.sprintf "l := l / %d;" (i + 2)))) in
  let div_alloc = Tech.Asic_model.allocate Tech.Parts.asic_gal many Tech.Optype.Div in
  Alcotest.(check bool) "bounded by library availability" true
    (div_alloc <= (Tech.Parts.asic_gal.Tech.Asic_model.fu_of Tech.Optype.Div).Tech.Asic_model.available)

let test_asic_ict_faster_than_cpu () =
  (* Datapath-heavy behavior: custom hardware beats the standard CPU, the
     shape behind Figure 3's 80us-vs-10us ict example. *)
  let c = census "for i in 1 to 100 loop l := l * 3 + l / 2; end loop;" in
  let cpu = Tech.Proc_model.behavior_ict_us Tech.Parts.cpu32 c in
  let asic = Tech.Asic_model.behavior_ict_us Tech.Parts.asic_gal c in
  Alcotest.(check bool) "asic faster" true (asic < cpu)

let test_asic_size_grows_with_registers () =
  let c = census "l := 1;" in
  let small = Tech.Asic_model.behavior_size_gates Tech.Parts.asic_gal c ~local_bits:8 in
  let big = Tech.Asic_model.behavior_size_gates Tech.Parts.asic_gal c ~local_bits:512 in
  Alcotest.(check bool) "register area grows" true (big > small)

let test_mem_model () =
  checkf "1024 bits = 64 sram16 words" 64.0
    (Tech.Mem_model.variable_size_words Tech.Parts.sram16 ~storage_bits:1024);
  checkf "17 bits = 2 words" 2.0
    (Tech.Mem_model.variable_size_words Tech.Parts.sram16 ~storage_bits:17);
  Alcotest.(check bool) "access time positive" true
    (Tech.Mem_model.variable_access_us Tech.Parts.sram16 > 0.0)

let test_parts_find () =
  (match Tech.Parts.find "cpu32" with
  | Some (Tech.Parts.Proc p) -> Alcotest.(check string) "name" "cpu32" p.Tech.Proc_model.name
  | _ -> Alcotest.fail "cpu32 missing");
  (match Tech.Parts.find "asic_gal" with
  | Some (Tech.Parts.Asic _) -> ()
  | _ -> Alcotest.fail "asic_gal missing");
  (match Tech.Parts.find "sram16" with
  | Some (Tech.Parts.Mem _) -> ()
  | _ -> Alcotest.fail "sram16 missing");
  Alcotest.(check bool) "unknown" true (Tech.Parts.find "nonsense" = None);
  Alcotest.(check bool) "bus catalog" true (Tech.Parts.find_bus "bus16" <> None)

let test_dsp_beats_cpu_on_mac_code () =
  (* The DSP's reason to exist: single-cycle multiply-accumulate. *)
  let c = census "for i in 1 to 64 loop l := l + l * 3; end loop;" in
  let dsp = Tech.Proc_model.behavior_ict_us Tech.Parts.dsp16 c in
  let cpu = Tech.Proc_model.behavior_ict_us Tech.Parts.cpu32 c in
  Alcotest.(check bool) "dsp faster on MAC loops" true (dsp < cpu);
  (* ...but not on division-heavy code. *)
  let d = census "for i in 1 to 64 loop l := l / 3; end loop;" in
  Alcotest.(check bool) "dsp slower on division" true
    (Tech.Proc_model.behavior_ict_us Tech.Parts.dsp16 d
    > Tech.Proc_model.behavior_ict_us Tech.Parts.cpu32 d)

let test_eeprom_slow_but_dense () =
  Alcotest.(check bool) "eeprom slower than sram" true
    (Tech.Mem_model.variable_access_us Tech.Parts.eeprom8
    > Tech.Mem_model.variable_access_us Tech.Parts.sram16);
  Alcotest.(check (float 1e-9)) "8 bits = 1 word" 1.0
    (Tech.Mem_model.variable_size_words Tech.Parts.eeprom8 ~storage_bits:8)

let test_all_technologies_distinct_names () =
  let names = List.map Tech.Parts.technology_name Tech.Parts.all in
  Alcotest.(check int) "no duplicates" (List.length names)
    (List.length (List.sort_uniq compare names))

let suite =
  [
    Alcotest.test_case "census arithmetic ops" `Quick test_census_arith_ops;
    Alcotest.test_case "census loop scaling" `Quick test_census_loop_scaling;
    Alcotest.test_case "census local vs global accesses" `Quick test_census_local_vs_global_loads;
    Alcotest.test_case "census subprogram reads are calls" `Quick test_census_sub_reads_are_calls;
    Alcotest.test_case "census branch ops" `Quick test_census_branch_ops;
    Alcotest.test_case "proc model ict" `Quick test_proc_model_ict;
    Alcotest.test_case "proc model size" `Quick test_proc_model_size;
    Alcotest.test_case "proc variable sizing" `Quick test_proc_variable_size;
    Alcotest.test_case "asic FU allocation" `Quick test_asic_allocate;
    Alcotest.test_case "asic allocation bounded" `Quick test_asic_allocation_bounded;
    Alcotest.test_case "asic faster than cpu on datapath code" `Quick test_asic_ict_faster_than_cpu;
    Alcotest.test_case "asic register area" `Quick test_asic_size_grows_with_registers;
    Alcotest.test_case "memory model" `Quick test_mem_model;
    Alcotest.test_case "parts catalog lookup" `Quick test_parts_find;
    Alcotest.test_case "dsp MAC advantage" `Quick test_dsp_beats_cpu_on_mac_code;
    Alcotest.test_case "eeprom characteristics" `Quick test_eeprom_slow_but_dense;
    Alcotest.test_case "technology names unique" `Quick test_all_technologies_distinct_names;
  ]
