(* Serialization round-trips and error reporting. *)

let slif_testable =
  Alcotest.testable
    (fun fmt s -> Format.pp_print_string fmt (Slif.Text.to_string s))
    ( = )

let test_roundtrip_fuzzy () =
  let s, _ = Helpers.all_on_cpu (Lazy.force Helpers.fuzzy_slif) in
  let s' = Slif.Text.of_string (Slif.Text.to_string s) in
  Alcotest.check slif_testable "fuzzy round-trips with components" s s'

let test_roundtrip_all_specs () =
  List.iter
    (fun (spec : Specs.Registry.spec) ->
      let sem = Vhdl.Sem.build (Vhdl.Parser.parse spec.Specs.Registry.source) in
      let s = Slif.Annotate.run ~techs:Tech.Parts.all sem (Slif.Build.build sem) in
      let s' = Slif.Text.of_string (Slif.Text.to_string s) in
      Alcotest.check slif_testable (spec.spec_name ^ " round-trips") s s')
    Specs.Registry.all

let test_empty_slif () =
  let s =
    {
      Slif.Types.design_name = "empty";
      nodes = [||];
      ports = [||];
      chans = [||];
      procs = [||];
      mems = [||];
      buses = [||];
    }
  in
  Alcotest.check slif_testable "empty round-trips" s (Slif.Text.of_string (Slif.Text.to_string s))

let expect_failure name text =
  match Slif.Text.of_string text with
  | exception Failure msg ->
      Alcotest.(check bool) (name ^ " mentions a line") true
        (String.length msg > 0)
  | _ -> Alcotest.fail ("accepted malformed input: " ^ name)

let test_malformed_inputs () =
  expect_failure "unknown record" "frobnicate 1 2 3";
  expect_failure "bad float" "node 0 process a\nict 0 tp notafloat";
  expect_failure "bad node kind" "node 0 gizmo a";
  expect_failure "ict before node" "ict 3 tp 1.0";
  expect_failure "bad direction" "port 0 p 8 sideways";
  expect_failure "bad channel kind" "chan 0 0 node 1 1.0 1.0 1.0 8 - teleport"

let test_hex_floats_exact () =
  let v = 0.1 +. 0.2 in
  let nodes =
    [|
      {
        Slif.Types.n_id = 0;
        n_name = "x";
        n_kind = Slif.Types.Behavior { is_process = false };
        n_ict = [ ("t", v) ];
        n_size = [ ("t", v *. 3.0) ];
      };
    |]
  in
  let s =
    {
      Slif.Types.design_name = "h";
      nodes;
      ports = [||];
      chans = [||];
      procs = [||];
      mems = [||];
      buses = [||];
    }
  in
  let s' = Slif.Text.of_string (Slif.Text.to_string s) in
  Alcotest.(check bool) "bit-exact floats" true (s = s')

let suite =
  [
    Alcotest.test_case "fuzzy + components round-trip" `Quick test_roundtrip_fuzzy;
    Alcotest.test_case "all specs round-trip" `Quick test_roundtrip_all_specs;
    Alcotest.test_case "empty SLIF round-trips" `Quick test_empty_slif;
    Alcotest.test_case "malformed inputs rejected" `Quick test_malformed_inputs;
    Alcotest.test_case "floats survive bit-exactly" `Quick test_hex_floats_exact;
  ]
