(* Interpreter and dynamic profiler. *)

let machine ?limits ?(inputs = fun _ -> 0) src =
  let sem = Vhdl.Sem.build (Vhdl.Parser.parse src) in
  (sem, Flow.Interp.create ?limits ~inputs sem)

let wrap ?(decls = "") ?(subs = "") stmts =
  Printf.sprintf
    {|entity e is
  port ( inp : in integer range 0 to 255; outp : out integer );
end;
architecture a of e is
  shared variable x : integer;
  shared variable y : integer;
  type buf is array (1 to 8) of integer range 0 to 255;
  shared variable arr : buf;
%s
%s
begin
  main: process
  begin
%s
  end process;
end;|}
    decls subs stmts

let run ?limits ?inputs ?decls ?subs stmts =
  let _, m = machine ?limits ?inputs (wrap ?decls ?subs stmts) in
  Flow.Interp.run_process m "main";
  m

let check_global m name expected =
  match Flow.Interp.read_global m name with
  | Some (Flow.Interp.Vint v) -> Alcotest.(check int) name expected v
  | Some (Flow.Interp.Vbool b) -> Alcotest.(check int) name expected (if b then 1 else 0)
  | _ -> Alcotest.fail ("missing global " ^ name)

let test_arithmetic () =
  let m = run "x := 2 + 3 * 4; y := (2 + 3) * 4;" in
  check_global m "x" 14;
  check_global m "y" 20;
  let m = run "x := 17 mod 5; y := -17 mod 5;" in
  check_global m "x" 2;
  (* VHDL mod follows the divisor's sign; ours is non-negative for a
     positive divisor. *)
  check_global m "y" 3;
  let m = run "x := abs (3 - 10); y := 17 / 5;" in
  check_global m "x" 7;
  check_global m "y" 3

let test_branches () =
  let m = run "if inp = 0 then x := 1; else x := 2; end if;" in
  check_global m "x" 1;
  let m = run ~inputs:(fun _ -> 7) "if inp = 0 then x := 1; elsif inp = 7 then x := 5; end if;" in
  check_global m "x" 5;
  let m =
    run ~inputs:(fun _ -> 2)
      "case inp is when 1 => x := 10; when 2 | 3 => x := 20; when others => x := 30; end case;"
  in
  check_global m "x" 20

let test_loops () =
  let m = run "x := 0; for i in 1 to 10 loop x := x + i; end loop;" in
  check_global m "x" 55;
  let m = run "x := 0; y := 10; while y > 0 loop x := x + 2; y := y - 1; end loop;" in
  check_global m "x" 20;
  let m = run "x := 0; for i in 1 to 10 loop if i = 4 then exit; end if; x := x + 1; end loop;" in
  check_global m "x" 3

let test_arrays () =
  let m = run "for i in 1 to 8 loop arr(i) := i * 2; end loop; x := arr(5);" in
  check_global m "x" 10;
  match run "x := arr(99);" with
  | exception Flow.Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "out-of-bounds accepted"

let test_functions_and_procedures () =
  let subs =
    {|
  function double(v : in integer) return integer is
  begin
    return v * 2;
  end double;
  procedure bump(amount : in integer; result : out integer) is
  begin
    result := amount + 1;
  end bump;
|}
  in
  let m = run ~subs "x := double(21); bump(5, y);" in
  check_global m "x" 42;
  check_global m "y" 6

let test_recursion_through_functions () =
  (* Functions calling functions (non-recursive nesting). *)
  let subs =
    {|
  function inc(v : in integer) return integer is
  begin
    return v + 1;
  end inc;
  function inc2(v : in integer) return integer is
  begin
    return inc(inc(v));
  end inc2;
|}
  in
  let m = run ~subs "x := inc2(40);" in
  check_global m "x" 42

let test_ports () =
  let m = run ~inputs:(fun _ -> 123) "x := inp; outp <= x + 1;" in
  check_global m "x" 123;
  Alcotest.(check (option int)) "output port" (Some 124) (Flow.Interp.port_output m "outp")

let test_messages () =
  let src =
    {|entity e is end;
architecture a of e is
  shared variable got : integer;
begin
  producer: process
  begin
    send(box, 41);
    send(box, 42);
  end process;
  consumer: process
    variable v : integer;
  begin
    receive(box, v);
    receive(box, v);
    got := v;
    receive(box, v);
    got := got + v;
  end process;
end;|}
  in
  let sem = Vhdl.Sem.build (Vhdl.Parser.parse src) in
  let m = Flow.Interp.create ~inputs:(fun _ -> 0) sem in
  Flow.Interp.run_all_processes m;
  (* Second receive got 42; third finds the queue empty -> 0. *)
  check_global m "got" 42

let test_initializers () =
  let m = run ~decls:"  shared variable z : integer := 7;" "x := z;" in
  check_global m "x" 7

let test_step_limit () =
  match
    run ~limits:{ Flow.Interp.max_steps = 50; max_while_iters = 1000 }
      "x := 1; while x > 0 loop x := x + 1; end loop;"
  with
  | exception Flow.Interp.Limit_exceeded _ -> ()
  | _ -> Alcotest.fail "runaway loop not stopped"

let test_division_by_zero () =
  match run "x := 0; y := 4 / x;" with
  | exception Flow.Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "division by zero accepted"

(* --- Profiling ------------------------------------------------------------- *)

let test_profile_branch_counts () =
  (* inp alternates 0,1,0,1,... over runs; the if splits 50/50. *)
  let sem = Vhdl.Sem.build (Vhdl.Parser.parse (wrap "if inp = 0 then x := 1; else x := 2; end if;")) in
  let counter = ref 0 in
  let m = Flow.Interp.create ~inputs:(fun _ -> !counter mod 2) sem in
  for i = 0 to 9 do
    counter := i;
    Flow.Interp.run_process m "main"
  done;
  let p = Flow.Interp.profile m in
  Alcotest.(check (float 1e-9)) "then-arm at 0.5" 0.5
    (Flow.Profile.branch_prob p ~behavior:"main" ~site:0 ~arm:0 ~arms:2);
  Alcotest.(check (float 1e-9)) "else-arm at 0.5" 0.5
    (Flow.Profile.branch_prob p ~behavior:"main" ~site:0 ~arm:1 ~arms:2)

let test_profile_while_trips () =
  let src = wrap "y := inp; while y > 0 loop y := y - 1; end loop;" in
  let sem = Vhdl.Sem.build (Vhdl.Parser.parse src) in
  let m = Flow.Interp.create ~inputs:(fun _ -> 6) sem in
  Flow.Interp.run_process m "main";
  let p = Flow.Interp.profile m in
  Alcotest.(check (float 1e-9)) "6 trips observed" 6.0
    (Flow.Profile.while_trips p ~behavior:"main" ~site:0)

let test_profile_site_numbering_matches_count () =
  (* Two ifs in sequence: the profiler's sites must line up with Count's
     numbering, so feeding the measured profile into Count reproduces the
     observed frequencies. *)
  let stmts =
    "if inp = 0 then x := 1; end if; if inp > 100 then y := arr(2); end if;"
  in
  let src = wrap stmts in
  let design = Vhdl.Parser.parse src in
  let sem = Vhdl.Sem.build design in
  let m = Flow.Interp.create ~inputs:(fun _ -> 200) sem in
  Flow.Interp.run_process m "main";
  let p = Flow.Interp.profile m in
  (* With inp = 200: first if never taken, second always taken. *)
  let body =
    match design.Vhdl.Ast.processes with [ pr ] -> pr.Vhdl.Ast.proc_body | _ -> assert false
  in
  let events = Flow.Count.events ~profile:p ~behavior:"main" body in
  let freq access =
    List.fold_left
      (fun acc (e : Flow.Count.event) ->
        if e.access = access then acc +. e.mult.Flow.Count.avg else acc)
      0.0 events
  in
  Alcotest.(check (float 1e-9)) "first if body never runs" 0.0
    (freq (Flow.Count.Write "x"));
  Alcotest.(check (float 1e-9)) "second if body always runs" 1.0
    (freq (Flow.Count.Read "arr"))

let test_auto_profiler_on_benchmarks () =
  (* The push-button profiler must terminate on all four specs and return
     a profile that the builder accepts. *)
  List.iter
    (fun (spec : Specs.Registry.spec) ->
      let sem = Vhdl.Sem.build (Vhdl.Parser.parse spec.source) in
      let profile = Flow.Profiler.auto ~runs:2 ~seed:3 sem in
      let slif = Slif.Build.build ~profile sem in
      Alcotest.(check bool) (spec.spec_name ^ " builds with measured profile") true
        (Array.length slif.Slif.Types.chans > 0))
    Specs.Registry.all

(* --- Workload prediction vs real execution --------------------------------- *)

let test_workload_matches_execution_exactly () =
  (* With a profile measured from a deterministic run, the statement-count
     prediction must equal the interpreter's step count exactly. *)
  let src =
    {|entity e is
  port ( inp : in integer range 0 to 255 );
end;
architecture a of e is
  shared variable x : integer;
  shared variable y : integer;
  shared variable w : integer;
  function f(v : in integer) return integer is
  begin
    return v + 1;
  end f;
  procedure helper is
  begin
    w := w + 1;
    y := w * 2;
  end helper;
begin
  main: process
  begin
    x := 1;
    for i in 1 to 5 loop
      helper;
    end loop;
    if inp = 0 then
      y := f(3);
    end if;
  end process;
end;|}
  in
  let sem = Vhdl.Sem.build (Vhdl.Parser.parse src) in
  let m = Flow.Interp.create ~inputs:(fun _ -> 0) sem in
  Flow.Interp.run_process m "main";
  let measured = Flow.Interp.steps m in
  let profile = Flow.Interp.profile m in
  let predicted = Flow.Workload.expected_statements ~profile sem ~behavior:"main" in
  Alcotest.(check (float 1e-9)) "prediction equals execution"
    (float_of_int measured) predicted

let test_workload_matches_fuzzy () =
  (* Same property on the real controller: exact up to floating error. *)
  let spec = Specs.Registry.find_exn "fuzzy" in
  let sem = Vhdl.Sem.build (Vhdl.Parser.parse spec.source) in
  let m =
    Flow.Interp.create
      ~limits:{ Flow.Interp.max_steps = 5_000_000; max_while_iters = 10_000 }
      ~inputs:(fun name -> if name = "in1" then 80 else if name = "in2" then 30 else 0)
      sem
  in
  Flow.Interp.run_process m "fuzzymain";
  let measured = float_of_int (Flow.Interp.steps m) in
  let profile = Flow.Interp.profile m in
  let predicted = Flow.Workload.expected_statements ~profile sem ~behavior:"fuzzymain" in
  Alcotest.(check bool)
    (Printf.sprintf "within 0.1%% (measured %.0f, predicted %.1f)" measured predicted)
    true
    (abs_float (predicted -. measured) /. measured < 0.001)

let test_workload_static_defaults_differ () =
  (* Without profiling, uniform defaults give a different (biased) answer
     — the reason the paper wants measured branch probabilities. *)
  let spec = Specs.Registry.find_exn "fuzzy" in
  let sem = Vhdl.Sem.build (Vhdl.Parser.parse spec.source) in
  let static_ =
    Flow.Workload.expected_statements ~profile:Flow.Profile.empty sem ~behavior:"fuzzymain"
  in
  let m =
    Flow.Interp.create
      ~limits:{ Flow.Interp.max_steps = 5_000_000; max_while_iters = 10_000 }
      ~inputs:(fun _ -> 0) sem
  in
  Flow.Interp.run_process m "fuzzymain";
  let measured = float_of_int (Flow.Interp.steps m) in
  Alcotest.(check bool) "defaults deviate from this run" true
    (abs_float (static_ -. measured) /. measured > 0.01)

let test_workload_rejects_unknown () =
  let sem = Vhdl.Sem.build (Vhdl.Parser.parse Helpers.tiny_source) in
  match
    Flow.Workload.expected_statements ~profile:Flow.Profile.empty sem ~behavior:"ghost"
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown behavior accepted"

let test_fuzzy_executes () =
  (* End-to-end: the fuzzy controller actually computes an output. *)
  let spec = Specs.Registry.find_exn "fuzzy" in
  let sem = Vhdl.Sem.build (Vhdl.Parser.parse spec.source) in
  let m =
    Flow.Interp.create
      ~limits:{ Flow.Interp.max_steps = 2_000_000; max_while_iters = 10_000 }
      ~inputs:(fun name -> if name = "in1" then 100 else if name = "in2" then 50 else 0)
      sem
  in
  Flow.Interp.run_process m "fuzzymain";
  match Flow.Interp.port_output m "out1" with
  | Some v -> Alcotest.(check bool) "output in range" true (v >= 0 && v <= 255)
  | None -> Alcotest.fail "fuzzymain produced no output"

let suite =
  [
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "branches" `Quick test_branches;
    Alcotest.test_case "loops and exit" `Quick test_loops;
    Alcotest.test_case "arrays and bounds" `Quick test_arrays;
    Alcotest.test_case "functions and out-params" `Quick test_functions_and_procedures;
    Alcotest.test_case "nested function calls" `Quick test_recursion_through_functions;
    Alcotest.test_case "ports" `Quick test_ports;
    Alcotest.test_case "message queues" `Quick test_messages;
    Alcotest.test_case "initializers" `Quick test_initializers;
    Alcotest.test_case "step limit" `Quick test_step_limit;
    Alcotest.test_case "division by zero" `Quick test_division_by_zero;
    Alcotest.test_case "profile branch counts" `Quick test_profile_branch_counts;
    Alcotest.test_case "profile while trips" `Quick test_profile_while_trips;
    Alcotest.test_case "profiler/Count site agreement" `Quick test_profile_site_numbering_matches_count;
    Alcotest.test_case "auto profiler on all specs" `Slow test_auto_profiler_on_benchmarks;
    Alcotest.test_case "fuzzy controller executes" `Quick test_fuzzy_executes;
    Alcotest.test_case "workload prediction exact on fixture" `Quick
      test_workload_matches_execution_exactly;
    Alcotest.test_case "workload prediction exact on fuzzy" `Quick test_workload_matches_fuzzy;
    Alcotest.test_case "static defaults deviate" `Quick test_workload_static_defaults_differ;
    Alcotest.test_case "workload rejects unknown behaviors" `Quick test_workload_rejects_unknown;
  ]
