test/test_integration.ml: Alcotest Array Float Flow Lazy List Option Printf Slif Slif_util Specs Specsyn String Tech Vhdl
