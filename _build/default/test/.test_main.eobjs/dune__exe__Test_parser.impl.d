test/test_parser.ml: Alcotest Ast Format List Loc Parser Pretty Printf Specs String Vhdl
