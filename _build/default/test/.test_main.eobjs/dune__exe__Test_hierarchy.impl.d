test/test_hierarchy.ml: Alcotest Array Helpers Lazy List Slif Specsyn
