test/test_hwshare.ml: Alcotest List Printf Slif Specs Specsyn Tech Vhdl
