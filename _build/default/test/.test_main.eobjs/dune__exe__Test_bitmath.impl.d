test/test_bitmath.ml: Alcotest Bitmath Slif_util
