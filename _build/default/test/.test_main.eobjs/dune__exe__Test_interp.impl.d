test/test_interp.ml: Alcotest Array Flow Helpers List Printf Slif Specs Vhdl
