test/test_flow.ml: Alcotest Flow List Printf Vhdl
