test/test_lexer.ml: Alcotest Format Lexer List Loc String Token Vhdl
