test/test_tech.ml: Alcotest Flow List Printf String Tech Vhdl
