test/test_sem.ml: Alcotest Ast Lazy Parser Sem Vhdl
