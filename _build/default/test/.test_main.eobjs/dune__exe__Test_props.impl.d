test/test_props.ml: Array Float Gen List Option Printf QCheck QCheck_alcotest Random Slif Slif_util Specsyn Test
