test/test_util.ml: Alcotest Array List Prng Slif_util String Sys Table Timer
