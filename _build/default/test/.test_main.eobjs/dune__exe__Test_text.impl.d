test/test_text.ml: Alcotest Format Helpers Lazy List Slif Specs String Tech Vhdl
