test/test_build.ml: Alcotest Array Helpers Lazy List Printf Slif Tech Vhdl
