test/test_estimate.ml: Alcotest Array Float List Slif
