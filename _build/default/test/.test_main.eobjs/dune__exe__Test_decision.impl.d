test/test_decision.ml: Alcotest Array Helpers Lazy List Slif Specs Specsyn String Tech Vhdl
