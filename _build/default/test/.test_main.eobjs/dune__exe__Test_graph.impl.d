test/test_graph.ml: Alcotest List Slif
