test/test_specsyn.ml: Alcotest Array Float Helpers Lazy List Slif Specsyn String
