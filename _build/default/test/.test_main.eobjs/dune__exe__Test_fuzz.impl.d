test/test_fuzz.ml: Array Cdfg Float Flow Gen List Printf QCheck QCheck_alcotest Random Slif Slif_util Specsyn Tech Test Vhdl
