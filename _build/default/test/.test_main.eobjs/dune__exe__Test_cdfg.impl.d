test/test_cdfg.ml: Addfmt Alcotest Array Cdfg Helpers Lazy List Printf Slif Specs Tech Vhdl
