test/test_pretty.ml: Alcotest Helpers Printf String Vhdl
