test/test_partition.ml: Alcotest Array Helpers Lazy List Slif String
