test/test_spc.ml: Alcotest Array Flow Lazy List Printf Slif Spc Tech Vhdl
