test/test_pareto.ml: Alcotest Helpers Lazy List Slif Specsyn
