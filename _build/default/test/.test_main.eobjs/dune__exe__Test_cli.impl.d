test/test_cli.ml: Alcotest Filename Lazy Printf String Sys
