test/helpers.ml: Array Lazy Slif Specs Tech Vhdl
