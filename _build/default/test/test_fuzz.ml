(* Grammar-directed fuzzing: random designs through printer, parser,
   builder, annotator and estimators. *)

open QCheck

(* --- Random design generator ----------------------------------------------

   Generates a well-formed design over a fixed vocabulary: a few ports,
   architecture variables (scalar and array), nested statements of bounded
   depth, and a procedure layer with an acyclic call structure (procedure
   [k] may only call procedures with larger indexes). *)

type gdesign = { seed : int; design : Vhdl.Ast.design }

let gen_design_of_seed seed =
  let rng = Slif_util.Prng.create seed in
  let pick xs = List.nth xs (Slif_util.Prng.int rng (List.length xs)) in
  let int_between lo hi = lo + Slif_util.Prng.int rng (hi - lo + 1) in
  let n_vars = int_between 1 5 in
  let n_arrays = int_between 0 2 in
  let n_subs = int_between 0 4 in
  let var_names = List.init n_vars (fun i -> Printf.sprintf "gv%d" i) in
  let arr_names = List.init n_arrays (fun i -> Printf.sprintf "ga%d" i) in
  let sub_names = List.init n_subs (fun i -> Printf.sprintf "sub%d" i) in
  let port_names = [ "pin0"; "pin1" ] in
  let rec gen_expr depth =
    if depth = 0 then
      match Slif_util.Prng.int rng 4 with
      | 0 -> Vhdl.Ast.Int_lit (int_between 0 99)
      | 1 -> Vhdl.Ast.Name (pick (var_names @ port_names))
      | 2 when arr_names <> [] ->
          Vhdl.Ast.Index (pick arr_names, Vhdl.Ast.Int_lit (int_between 1 8))
      | _ -> Vhdl.Ast.Name (pick var_names)
    else
      match Slif_util.Prng.int rng 5 with
      | 0 ->
          let op = pick Vhdl.Ast.[ Add; Sub; Mul ] in
          Vhdl.Ast.Binop (op, gen_expr (depth - 1), gen_expr (depth - 1))
      | 1 ->
          let op = pick Vhdl.Ast.[ Eq; Lt; Gt; Le; Ge; Neq ] in
          Vhdl.Ast.Binop (op, gen_expr 0, gen_expr 0)
      | 2 -> Vhdl.Ast.Unop (Vhdl.Ast.Neg, gen_expr (depth - 1))
      | 3 -> Vhdl.Ast.Binop (Vhdl.Ast.Div, gen_expr (depth - 1), Vhdl.Ast.Int_lit (int_between 1 9))
      | _ -> gen_expr 0
  in
  let gen_cond () =
    Vhdl.Ast.Binop (pick Vhdl.Ast.[ Eq; Lt; Gt ], gen_expr 0, gen_expr 0)
  in
  (* Procedures callable from level [lvl] are those with larger index. *)
  let callable lvl = List.filteri (fun i _ -> i > lvl) sub_names in
  let rec gen_stmt depth lvl =
    let choice = Slif_util.Prng.int rng (if depth = 0 then 3 else 8) in
    match choice with
    | 0 -> Vhdl.Ast.Assign (Vhdl.Ast.Tname (pick var_names), gen_expr 1)
    | 1 when arr_names <> [] ->
        Vhdl.Ast.Assign
          (Vhdl.Ast.Tindex (pick arr_names, Vhdl.Ast.Int_lit (int_between 1 8)), gen_expr 1)
    | 1 | 2 -> Vhdl.Ast.Assign (Vhdl.Ast.Tname (pick var_names), gen_expr 0)
    | 3 ->
        Vhdl.Ast.If
          ( [ (gen_cond (), gen_stmts (depth - 1) lvl (int_between 1 2)) ],
            if Slif_util.Prng.bool rng then gen_stmts (depth - 1) lvl 1 else [] )
    | 4 ->
        Vhdl.Ast.For
          (Printf.sprintf "i%d" depth, 1, int_between 2 6, gen_stmts (depth - 1) lvl (int_between 1 2))
    | 5 when callable lvl <> [] -> Vhdl.Ast.Pcall (pick (callable lvl), [])
    | 5 | 6 ->
        Vhdl.Ast.Case
          ( gen_expr 0,
            [
              ([ Vhdl.Ast.Ch_expr (Vhdl.Ast.Int_lit 1) ], gen_stmts (depth - 1) lvl 1);
              ([ Vhdl.Ast.Ch_others ], gen_stmts (depth - 1) lvl 1);
            ] )
    | _ -> Vhdl.Ast.While (gen_cond (), gen_stmts (depth - 1) lvl 1)
  and gen_stmts depth lvl n = List.init n (fun _ -> gen_stmt (max 0 depth) lvl)
  in
  let arch_decls =
    List.map
      (fun v ->
        Vhdl.Ast.Var_decl
          { v_name = v; v_type = Vhdl.Ast.Int_range (0, 255); v_init = None; v_shared = true })
      var_names
    @ (if arr_names = [] then []
       else [ Vhdl.Ast.Type_decl ("tarr", Vhdl.Ast.Array_of { length = 8; lo = 1; elem = Vhdl.Ast.Int_range (0, 255) }) ])
    @ List.map
        (fun a ->
          Vhdl.Ast.Var_decl
            { v_name = a; v_type = Vhdl.Ast.Named "tarr"; v_init = None; v_shared = true })
        arr_names
  in
  let subprograms =
    List.mapi
      (fun i name ->
        {
          Vhdl.Ast.sub_name = name;
          sub_params = [];
          sub_ret = None;
          sub_decls = [];
          sub_body = gen_stmts (int_between 1 2) i (int_between 1 3);
        })
      sub_names
  in
  let processes =
    [
      {
        Vhdl.Ast.proc_name = "mainp";
        proc_decls = [];
        proc_body =
          gen_stmts (int_between 1 3) (-1) (int_between 2 5)
          @ [ Vhdl.Ast.Wait_for (10, Vhdl.Ast.Us) ];
      };
    ]
  in
  let design =
    {
      Vhdl.Ast.entity_name = "fuzzed";
      ports =
        [
          { Vhdl.Ast.port_name = "pin0"; port_mode = Vhdl.Ast.In; port_type = Vhdl.Ast.Int_range (0, 255) };
          { Vhdl.Ast.port_name = "pin1"; port_mode = Vhdl.Ast.In; port_type = Vhdl.Ast.Int_range (0, 255) };
          { Vhdl.Ast.port_name = "pout"; port_mode = Vhdl.Ast.Out; port_type = Vhdl.Ast.Int_range (0, 255) };
        ];
      arch_name = "a";
      arch_decls;
      subprograms;
      processes;
    }
  in
  { seed; design }

let arb_design =
  make
    ~print:(fun g -> Printf.sprintf "seed=%d\n%s" g.seed (Vhdl.Pretty.design_to_string g.design))
    (Gen.map gen_design_of_seed Gen.nat)

(* --- Properties -------------------------------------------------------------- *)

let prop_print_parse_roundtrip =
  Test.make ~name:"print -> parse is identity on random designs" ~count:150 arb_design
    (fun g -> Vhdl.Parser.parse (Vhdl.Pretty.design_to_string g.design) = g.design)

let prop_pipeline_total =
  Test.make ~name:"build+annotate never fails on random designs" ~count:100 arb_design
    (fun g ->
      let sem = Vhdl.Sem.build g.design in
      let slif = Slif.Annotate.run ~techs:Tech.Parts.all sem (Slif.Build.build sem) in
      Array.for_all
        (fun (n : Slif.Types.node) -> n.n_size <> [])
        slif.Slif.Types.nodes)

let prop_estimators_total =
  Test.make ~name:"estimators finite on random designs" ~count:100 arb_design (fun g ->
      let sem = Vhdl.Sem.build g.design in
      let slif = Slif.Annotate.run ~techs:Tech.Parts.all sem (Slif.Build.build sem) in
      let s = Specsyn.Alloc.apply slif (Specsyn.Alloc.proc_asic ()) in
      let graph = Slif.Graph.make s in
      let part = Specsyn.Search.seed_partition s in
      let est = Specsyn.Search.estimator graph part in
      Array.for_all
        (fun (n : Slif.Types.node) ->
          let t = Slif.Estimate.exectime_us est n.n_id in
          Float.is_finite t && t >= 0.0)
        s.Slif.Types.nodes
      && Float.is_finite (Slif.Estimate.size est (Slif.Partition.Cproc 0))
      && Slif.Estimate.io_pins est (Slif.Partition.Cproc 0) >= 0)

let prop_text_roundtrip_on_random_designs =
  Test.make ~name:"Text round-trips SLIFs of random designs" ~count:100 arb_design
    (fun g ->
      let sem = Vhdl.Sem.build g.design in
      let slif = Slif.Annotate.run ~techs:Tech.Parts.all sem (Slif.Build.build sem) in
      Slif.Text.of_string (Slif.Text.to_string slif) = slif)

let prop_cdfg_covers_statements =
  (* Every statement of every behavior materializes at least one CDFG
     node, plus one entry node per behavior. *)
  Test.make ~name:"CDFG covers every statement" ~count:100 arb_design (fun g ->
      let stmt_count =
        List.fold_left
          (fun acc (_, _, body) -> acc + List.length body)
          0
          (Vhdl.Ast.behaviors g.design)
      in
      let behaviors = List.length (Vhdl.Ast.behaviors g.design) in
      Cdfg.Graph.node_count (Cdfg.Graph.of_design g.design) >= stmt_count + behaviors)

let prop_interp_terminates =
  Test.make ~name:"interpreter terminates or reports limits on random designs" ~count:100
    arb_design (fun g ->
      let sem = Vhdl.Sem.build g.design in
      let m =
        Flow.Interp.create
          ~limits:{ Flow.Interp.max_steps = 20_000; max_while_iters = 100 }
          ~inputs:(fun _ -> 1)
          sem
      in
      match Flow.Interp.run_process m "mainp" with
      | () -> true
      | exception Flow.Interp.Limit_exceeded _ -> true
      | exception Flow.Interp.Runtime_error _ -> true)

let prop_workload_matches_interp_on_random_designs =
  Test.make ~name:"workload prediction exact on random deterministic designs" ~count:80
    arb_design (fun g ->
      let sem = Vhdl.Sem.build g.design in
      let m =
        Flow.Interp.create
          ~limits:{ Flow.Interp.max_steps = 50_000; max_while_iters = 50 }
          ~inputs:(fun _ -> 1)
          sem
      in
      match Flow.Interp.run_process m "mainp" with
      | exception (Flow.Interp.Limit_exceeded _ | Flow.Interp.Runtime_error _) ->
          true (* property only applies to clean runs *)
      | () ->
          let measured = float_of_int (Flow.Interp.steps m) in
          let profile = Flow.Interp.profile m in
          let predicted =
            Flow.Workload.expected_statements ~profile sem ~behavior:"mainp"
          in
          abs_float (predicted -. measured) <= 1e-6 *. (1.0 +. measured))

let suite =
  (* A fixed random state keeps the generated corpus identical run to run. *)
  List.map
    (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 20260705 |]))
    [
      prop_print_parse_roundtrip;
      prop_pipeline_total;
      prop_estimators_total;
      prop_text_roundtrip_on_random_designs;
      prop_cdfg_covers_statements;
      prop_interp_terminates;
      prop_workload_matches_interp_on_random_designs;
    ]
