open Slif_util

let check_int = Alcotest.(check int)

let test_clog2 () =
  check_int "clog2 1" 0 (Bitmath.clog2 1);
  check_int "clog2 2" 1 (Bitmath.clog2 2);
  check_int "clog2 3" 2 (Bitmath.clog2 3);
  check_int "clog2 4" 2 (Bitmath.clog2 4);
  check_int "clog2 5" 3 (Bitmath.clog2 5);
  check_int "clog2 128" 7 (Bitmath.clog2 128);
  check_int "clog2 129" 8 (Bitmath.clog2 129);
  check_int "clog2 1024" 10 (Bitmath.clog2 1024)

let test_clog2_invalid () =
  Alcotest.check_raises "clog2 0" (Invalid_argument "Bitmath.clog2: non-positive argument")
    (fun () -> ignore (Bitmath.clog2 0));
  Alcotest.check_raises "clog2 -3" (Invalid_argument "Bitmath.clog2: non-positive argument")
    (fun () -> ignore (Bitmath.clog2 (-3)))

let test_bits_for_cardinality () =
  check_int "1 value still needs a wire" 1 (Bitmath.bits_for_cardinality 1);
  check_int "2 values" 1 (Bitmath.bits_for_cardinality 2);
  check_int "256 values" 8 (Bitmath.bits_for_cardinality 256);
  check_int "257 values" 9 (Bitmath.bits_for_cardinality 257)

let test_bits_for_range_unsigned () =
  check_int "0..255 is 8 bits" 8 (Bitmath.bits_for_range ~lo:0 ~hi:255);
  check_int "0..0 is 1 bit" 1 (Bitmath.bits_for_range ~lo:0 ~hi:0);
  check_int "0..1023 is 10 bits" 10 (Bitmath.bits_for_range ~lo:0 ~hi:1023);
  check_int "1..16 is 5 bits" 5 (Bitmath.bits_for_range ~lo:1 ~hi:16)

let test_bits_for_range_signed () =
  check_int "-255..255 needs sign" 9 (Bitmath.bits_for_range ~lo:(-255) ~hi:255);
  check_int "-1..0 is 1+1 bits" 2 (Bitmath.bits_for_range ~lo:(-1) ~hi:0);
  check_int "-128..127 is 8 bits" 8 (Bitmath.bits_for_range ~lo:(-128) ~hi:127)

let test_bits_for_range_invalid () =
  Alcotest.check_raises "empty range" (Invalid_argument "Bitmath.bits_for_range: empty range")
    (fun () -> ignore (Bitmath.bits_for_range ~lo:3 ~hi:2))

let test_address_bits () =
  (* The paper's Figure 3: a 128-element array needs 7 address bits. *)
  check_int "128 elements -> 7 bits" 7 (Bitmath.address_bits ~length:128);
  check_int "1 element -> 0 bits" 0 (Bitmath.address_bits ~length:1);
  check_int "384 elements -> 9 bits" 9 (Bitmath.address_bits ~length:384)

let test_ceil_div () =
  check_int "32/16" 2 (Bitmath.ceil_div 32 16);
  check_int "33/16" 3 (Bitmath.ceil_div 33 16);
  check_int "0/16" 0 (Bitmath.ceil_div 0 16);
  check_int "15/16" 1 (Bitmath.ceil_div 15 16);
  Alcotest.check_raises "zero divisor"
    (Invalid_argument "Bitmath.ceil_div: non-positive divisor") (fun () ->
      ignore (Bitmath.ceil_div 4 0))

let suite =
  [
    Alcotest.test_case "clog2 values" `Quick test_clog2;
    Alcotest.test_case "clog2 rejects non-positives" `Quick test_clog2_invalid;
    Alcotest.test_case "bits_for_cardinality" `Quick test_bits_for_cardinality;
    Alcotest.test_case "bits_for_range unsigned" `Quick test_bits_for_range_unsigned;
    Alcotest.test_case "bits_for_range signed" `Quick test_bits_for_range_signed;
    Alcotest.test_case "bits_for_range rejects empty" `Quick test_bits_for_range_invalid;
    Alcotest.test_case "address_bits" `Quick test_address_bits;
    Alcotest.test_case "ceil_div" `Quick test_ceil_div;
  ]
