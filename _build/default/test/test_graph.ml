(* Adjacency and call-graph queries over hand-built access graphs. *)

let mk_node id name kind =
  { Slif.Types.n_id = id; n_name = name; n_kind = kind; n_ict = []; n_size = [] }

let behavior = Slif.Types.Behavior { is_process = false }
let variable = Slif.Types.Variable { storage_bits = 8; transfer_bits = 8 }

let mk_chan id src dst kind =
  {
    Slif.Types.c_id = id;
    c_src = src;
    c_dst = dst;
    c_accfreq = 1.0;
    c_accfreq_min = 1.0;
    c_accfreq_max = 1.0;
    c_bits = 8;
    c_tag = None;
    c_kind = kind;
  }

(* a -> b -> c (calls); a -> v, c -> v (var accesses). *)
let chain () =
  let nodes =
    [| mk_node 0 "a" behavior; mk_node 1 "b" behavior; mk_node 2 "c" behavior;
       mk_node 3 "v" variable |]
  in
  let chans =
    [|
      mk_chan 0 0 (Slif.Types.Dnode 1) Slif.Types.Call;
      mk_chan 1 1 (Slif.Types.Dnode 2) Slif.Types.Call;
      mk_chan 2 0 (Slif.Types.Dnode 3) Slif.Types.Var_access;
      mk_chan 3 2 (Slif.Types.Dnode 3) Slif.Types.Var_access;
    |]
  in
  Slif.Graph.make
    {
      Slif.Types.design_name = "chain";
      nodes;
      ports = [||];
      chans;
      procs = [||];
      mems = [||];
      buses = [||];
    }

let test_out_in_chans () =
  let g = chain () in
  Alcotest.(check int) "a has two out-channels" 2 (List.length (Slif.Graph.out_chans g 0));
  Alcotest.(check int) "v has none out" 0 (List.length (Slif.Graph.out_chans g 3));
  Alcotest.(check int) "v has two in-channels" 2 (List.length (Slif.Graph.in_chans g 3));
  Alcotest.(check int) "a has none in" 0 (List.length (Slif.Graph.in_chans g 0))

let test_callers_callees () =
  let g = chain () in
  Alcotest.(check (list int)) "a calls b" [ 1 ] (Slif.Graph.callees g 0);
  Alcotest.(check (list int)) "b called by a" [ 0 ] (Slif.Graph.callers g 1);
  Alcotest.(check (list int)) "variable accesses are not calls" []
    (Slif.Graph.callers g 3)

let test_reachability () =
  let g = chain () in
  Alcotest.(check (list int)) "a reaches everything" [ 0; 1; 2; 3 ]
    (List.sort compare (Slif.Graph.reachable_from g 0));
  Alcotest.(check (list int)) "c reaches only itself and v" [ 2; 3 ]
    (List.sort compare (Slif.Graph.reachable_from g 2))

let test_transitive_callers () =
  let g = chain () in
  (* Moving v invalidates c (direct), b (calls c), a (calls b, accesses v). *)
  Alcotest.(check (list int)) "v's dependents" [ 0; 1; 2; 3 ]
    (List.sort compare (Slif.Graph.transitive_callers g 3));
  Alcotest.(check (list int)) "c's dependents" [ 0; 1; 2 ]
    (List.sort compare (Slif.Graph.transitive_callers g 2))

let test_no_cycle_on_chain () =
  Alcotest.(check bool) "chain is acyclic" false (Slif.Graph.has_call_cycle (chain ()))

let test_cycle_detection () =
  let nodes = [| mk_node 0 "a" behavior; mk_node 1 "b" behavior |] in
  let chans =
    [|
      mk_chan 0 0 (Slif.Types.Dnode 1) Slif.Types.Call;
      mk_chan 1 1 (Slif.Types.Dnode 0) Slif.Types.Call;
    |]
  in
  let g =
    Slif.Graph.make
      {
        Slif.Types.design_name = "cyc";
        nodes;
        ports = [||];
        chans;
        procs = [||];
        mems = [||];
        buses = [||];
      }
  in
  Alcotest.(check bool) "two-node call cycle found" true (Slif.Graph.has_call_cycle g)

let test_self_recursion_detected () =
  let nodes = [| mk_node 0 "a" behavior |] in
  let chans = [| mk_chan 0 0 (Slif.Types.Dnode 0) Slif.Types.Call |] in
  let g =
    Slif.Graph.make
      {
        Slif.Types.design_name = "self";
        nodes;
        ports = [||];
        chans;
        procs = [||];
        mems = [||];
        buses = [||];
      }
  in
  Alcotest.(check bool) "self-call is a cycle" true (Slif.Graph.has_call_cycle g)

let test_var_cycle_is_not_call_cycle () =
  (* a and b both accessing each other's variables is fine. *)
  let nodes = [| mk_node 0 "a" behavior; mk_node 1 "v" variable |] in
  let chans = [| mk_chan 0 0 (Slif.Types.Dnode 1) Slif.Types.Var_access |] in
  let g =
    Slif.Graph.make
      {
        Slif.Types.design_name = "vc";
        nodes;
        ports = [||];
        chans;
        procs = [||];
        mems = [||];
        buses = [||];
      }
  in
  Alcotest.(check bool) "no call cycle" false (Slif.Graph.has_call_cycle g)

let test_channel_order_preserved () =
  let g = chain () in
  match Slif.Graph.out_chans g 0 with
  | [ c0; c1 ] ->
      Alcotest.(check int) "first channel first" 0 c0.Slif.Types.c_id;
      Alcotest.(check int) "second channel second" 2 c1.Slif.Types.c_id
  | _ -> Alcotest.fail "expected two channels"

let suite =
  [
    Alcotest.test_case "out/in channels" `Quick test_out_in_chans;
    Alcotest.test_case "callers and callees" `Quick test_callers_callees;
    Alcotest.test_case "reachability" `Quick test_reachability;
    Alcotest.test_case "transitive callers" `Quick test_transitive_callers;
    Alcotest.test_case "chain acyclic" `Quick test_no_cycle_on_chain;
    Alcotest.test_case "call cycle detected" `Quick test_cycle_detection;
    Alcotest.test_case "self recursion detected" `Quick test_self_recursion_detected;
    Alcotest.test_case "variable edges are not call cycles" `Quick test_var_cycle_is_not_call_cycle;
    Alcotest.test_case "channel order preserved" `Quick test_channel_order_preserved;
  ]
