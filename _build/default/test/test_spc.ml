(* SpecCharts-lite: parsing, lowering, and end-to-end behavior. *)

let sample =
  {|spec traffic is
  port ( sensor : in integer range 0 to 255;
         lamp   : out integer range 0 to 3 );
  behavior top type seq is
    variable phase : integer range 0 to 3;
    variable waiting : integer;
    behavior idle type code is
    begin
      phase := 0;
      lamp <= phase;
      waiting := sensor;
    end idle;
    behavior serve type par is
      behavior green type code is
        variable hold : integer;
      begin
        phase := 1;
        hold := waiting * 2;
        lamp <= phase;
      end green;
      behavior monitor type code is
      begin
        if sensor > 200 then
          waiting := 255;
        end if;
      end monitor;
    end serve;
    behavior flush type code is
    begin
      phase := 3;
      lamp <= phase;
      waiting := 0;
    end flush;
    transitions
      idle -> serve on sensor > 10;
      idle -> flush;
      serve -> flush;
  end top;
end;
|}

let spec = lazy (Spc.Parser.parse sample)

let design = lazy (Spc.Lower.design_of_spec (Lazy.force spec))

let test_parse_structure () =
  let s = Lazy.force spec in
  Alcotest.(check string) "name" "traffic" s.Spc.Ast.spec_name;
  Alcotest.(check int) "two ports" 2 (List.length s.Spc.Ast.spec_ports);
  let top = s.Spc.Ast.spec_top in
  Alcotest.(check bool) "top sequential" true (top.b_kind = Spc.Ast.Sequential);
  Alcotest.(check int) "three children" 3 (List.length top.b_children);
  Alcotest.(check int) "three transitions" 3 (List.length top.b_transitions);
  Alcotest.(check int) "two composite decls" 2 (List.length top.b_decls);
  match top.b_children with
  | [ idle; serve; flush ] ->
      Alcotest.(check bool) "idle leaf" true (idle.b_kind = Spc.Ast.Leaf);
      Alcotest.(check bool) "serve concurrent" true (serve.b_kind = Spc.Ast.Concurrent);
      Alcotest.(check int) "serve has two children" 2 (List.length serve.b_children);
      Alcotest.(check int) "idle body statements" 3 (List.length idle.b_body);
      Alcotest.(check string) "flush name" "flush" flush.b_name
  | _ -> Alcotest.fail "child shapes"

let test_guard_parsed () =
  let top = (Lazy.force spec).Spc.Ast.spec_top in
  match top.b_transitions with
  | { tr_from = "idle"; tr_to = "serve"; tr_cond = Some (Vhdl.Ast.Binop (Vhdl.Ast.Gt, _, _)) }
    :: _ ->
      ()
  | _ -> Alcotest.fail "guard shape"

let test_lowering_shape () =
  let d = Lazy.force design in
  Alcotest.(check string) "entity" "traffic" d.Vhdl.Ast.entity_name;
  Alcotest.(check int) "one driver process" 1 (List.length d.Vhdl.Ast.processes);
  (* One subprogram per behavior: top, idle, serve, green, monitor, flush. *)
  Alcotest.(check int) "six subprograms" 6 (List.length d.Vhdl.Ast.subprograms);
  (* Composite decls hoisted to shared architecture state. *)
  Alcotest.(check bool) "phase hoisted" true
    (List.exists
       (function
         | Vhdl.Ast.Var_decl { v_name = "phase"; v_shared = true; _ } -> true
         | _ -> false)
       d.Vhdl.Ast.arch_decls);
  (* Leaf locals stay local. *)
  Alcotest.(check bool) "hold not hoisted" true
    (not
       (List.exists
          (function Vhdl.Ast.Var_decl { v_name = "hold"; _ } -> true | _ -> false)
          d.Vhdl.Ast.arch_decls))

let test_lowered_design_parses_back () =
  (* The lowered design survives printing and reparsing. *)
  let d = Lazy.force design in
  Alcotest.(check bool) "pretty/parse identity" true
    (Vhdl.Parser.parse (Vhdl.Pretty.design_to_string d) = d)

let test_slif_pipeline () =
  let sem = Vhdl.Sem.build (Lazy.force design) in
  let slif = Slif.Annotate.run ~techs:Tech.Parts.all sem (Slif.Build.build sem) in
  let stats = Slif.Stats.of_slif slif in
  (* 7 behaviors (driver + 6), 2 shared variables. *)
  Alcotest.(check int) "BV" 9 stats.Slif.Stats.bv;
  Alcotest.(check bool) "par children share a tag" true
    (let serve =
       match Slif.Types.node_by_name slif "serve" with Some n -> n | None -> assert false
     in
     let tags =
       Array.to_list slif.Slif.Types.chans
       |> List.filter_map (fun (c : Slif.Types.channel) ->
              if c.c_src = serve.n_id && c.c_kind = Slif.Types.Call then Some c.c_tag
              else None)
     in
     match tags with [ Some a; Some b ] -> a = b | _ -> false)

let run_lowered ~sensor =
  let sem = Vhdl.Sem.build (Lazy.force design) in
  let m =
    Flow.Interp.create
      ~inputs:(fun name -> if name = "sensor" then sensor else 0)
      sem
  in
  Flow.Interp.run_process m "traffic_main";
  m

let test_execution_follows_transitions () =
  (* sensor = 50: idle -> serve (guard true) -> flush. *)
  let m = run_lowered ~sensor:50 in
  (match Flow.Interp.read_global m "waiting" with
  | Some (Flow.Interp.Vint 0) -> ()  (* flush reset it *)
  | other ->
      Alcotest.fail
        (Printf.sprintf "expected waiting=0, got %s"
           (match other with
           | Some (Flow.Interp.Vint v) -> string_of_int v
           | _ -> "none")));
  Alcotest.(check (option int)) "flush drove the lamp" (Some 3)
    (Flow.Interp.port_output m "lamp")

let test_execution_guard_false () =
  (* sensor = 5: the guarded arc fails, the unconditional idle -> flush
     arc fires, serve is skipped entirely (phase never reaches 1). *)
  let m = run_lowered ~sensor:5 in
  Alcotest.(check (option int)) "lamp ends at flush" (Some 3)
    (Flow.Interp.port_output m "lamp");
  match Flow.Interp.read_global m "phase" with
  | Some (Flow.Interp.Vint 3) -> ()
  | _ -> Alcotest.fail "phase should be flush's value"

let test_errors () =
  (match Spc.Parser.parse "spec x is behavior a type bogus is begin end a; end;" with
  | exception Vhdl.Loc.Error _ -> ()
  | _ -> Alcotest.fail "bad kind accepted");
  let dup =
    {|spec x is
  behavior top type seq is
    behavior a type code is begin null; end a;
    behavior a type code is begin null; end a;
  end top;
end;|}
  in
  (match Spc.Lower.design_of_spec (Spc.Parser.parse dup) with
  | exception Spc.Lower.Lowering_error _ -> ()
  | _ -> Alcotest.fail "duplicate names accepted");
  let bad_arc =
    {|spec x is
  behavior top type seq is
    behavior a type code is begin null; end a;
    transitions
      a -> nowhere;
  end top;
end;|}
  in
  match Spc.Lower.design_of_spec (Spc.Parser.parse bad_arc) with
  | exception Spc.Lower.Lowering_error _ -> ()
  | _ -> Alcotest.fail "dangling transition accepted"

let test_empty_composite_rejected () =
  match Spc.Parser.parse "spec x is behavior top type seq is end top; end;" with
  | exception Vhdl.Loc.Error _ -> ()
  | _ -> Alcotest.fail "childless composite accepted"

let suite =
  [
    Alcotest.test_case "parse structure" `Quick test_parse_structure;
    Alcotest.test_case "transition guards" `Quick test_guard_parsed;
    Alcotest.test_case "lowering shape" `Quick test_lowering_shape;
    Alcotest.test_case "lowered design reparses" `Quick test_lowered_design_parses_back;
    Alcotest.test_case "SLIF pipeline on lowered spec" `Quick test_slif_pipeline;
    Alcotest.test_case "execution follows guarded arcs" `Quick test_execution_follows_transitions;
    Alcotest.test_case "execution with failing guard" `Quick test_execution_guard_false;
    Alcotest.test_case "parse/lower errors" `Quick test_errors;
    Alcotest.test_case "childless composite rejected" `Quick test_empty_composite_rejected;
  ]
