(* Shared-hardware area estimation (the paper's reference [1] refinement). *)

let setup () =
  let sem = Vhdl.Sem.build (Vhdl.Parser.parse Specs.Spec_fuzzy.text) in
  let slif = Slif.Annotate.run ~techs:Tech.Parts.all sem (Slif.Build.build sem) in
  let demands = Slif.Hwshare.demands ~techs:Tech.Parts.all sem in
  let s = Specsyn.Alloc.apply slif (Specsyn.Alloc.proc_asic ()) in
  let graph = Slif.Graph.make s in
  let part = Specsyn.Search.seed_partition s in
  (s, graph, part, demands)

let move_to_asic s part names =
  List.iter
    (fun name ->
      match Slif.Types.node_by_name s name with
      | Some n -> Slif.Partition.assign_node part ~node:n.n_id (Slif.Partition.Cproc 1)
      | None -> Alcotest.fail (name ^ " missing"))
    names

let test_demands_cover_custom_techs () =
  let _, _, _, demands = setup () in
  (match Slif.Hwshare.behavior_fu_area demands ~tech:"asic_gal" "convolve" with
  | Some area -> Alcotest.(check bool) "positive unit area" true (area > 0.0)
  | None -> Alcotest.fail "convolve demand missing");
  Alcotest.(check (option (float 1e-9))) "no demand on a cpu tech" None
    (Slif.Hwshare.behavior_fu_area demands ~tech:"cpu32" "convolve");
  Alcotest.(check (option (float 1e-9))) "unknown behavior" None
    (Slif.Hwshare.behavior_fu_area demands ~tech:"asic_gal" "ghost")

let test_single_behavior_equals_naive () =
  let s, graph, part, demands = setup () in
  move_to_asic s part [ "convolve" ];
  let est = Specsyn.Search.estimator graph part in
  Alcotest.(check (float 1e-6)) "one behavior: nothing to share"
    (Slif.Estimate.size est (Slif.Partition.Cproc 1))
    (Slif.Hwshare.size est demands (Slif.Partition.Cproc 1))

let test_sharing_never_exceeds_naive () =
  let s, graph, part, demands = setup () in
  move_to_asic s part [ "convolve"; "evaluate_rule"; "compute_centroid"; "smooth_output" ];
  let est = Specsyn.Search.estimator graph part in
  let naive = Slif.Estimate.size est (Slif.Partition.Cproc 1) in
  let shared = Slif.Hwshare.size est demands (Slif.Partition.Cproc 1) in
  Alcotest.(check bool) "upper bound" true (shared <= naive +. 1e-9);
  (* These behaviors all use adders/multipliers: real sharing occurs. *)
  Alcotest.(check bool)
    (Printf.sprintf "strict saving (%.0f < %.0f)" shared naive)
    true (shared < naive);
  Alcotest.(check (float 1e-6)) "saving consistency" (naive -. shared)
    (Slif.Hwshare.sharing_saving est demands (Slif.Partition.Cproc 1))

let test_monotone_in_members () =
  let s, graph, part, demands = setup () in
  move_to_asic s part [ "convolve" ];
  let est = Specsyn.Search.estimator graph part in
  let one = Slif.Hwshare.size est demands (Slif.Partition.Cproc 1) in
  move_to_asic s part [ "evaluate_rule" ];
  let est = Specsyn.Search.estimator graph part in
  let two = Slif.Hwshare.size est demands (Slif.Partition.Cproc 1) in
  Alcotest.(check bool) "more members, more area" true (two > one)

let test_standard_components_unchanged () =
  let _, graph, part, demands = setup () in
  let est = Specsyn.Search.estimator graph part in
  Alcotest.(check (float 1e-9)) "cpu bytes identical"
    (Slif.Estimate.size est (Slif.Partition.Cproc 0))
    (Slif.Hwshare.size est demands (Slif.Partition.Cproc 0));
  Alcotest.(check (float 1e-9)) "no saving on software" 0.0
    (Slif.Estimate.size est (Slif.Partition.Cproc 0)
    -. Slif.Hwshare.size est demands (Slif.Partition.Cproc 0))

let test_variables_do_not_share () =
  (* Variables contribute register area; mapping only variables to the
     ASIC leaves naive and shared equal. *)
  let s, graph, part, demands = setup () in
  move_to_asic s part [ "mr1"; "mr2" ];
  let est = Specsyn.Search.estimator graph part in
  Alcotest.(check (float 1e-6)) "registers are not shared"
    (Slif.Estimate.size est (Slif.Partition.Cproc 1))
    (Slif.Hwshare.size est demands (Slif.Partition.Cproc 1))

let suite =
  [
    Alcotest.test_case "demands table" `Quick test_demands_cover_custom_techs;
    Alcotest.test_case "single member equals naive" `Quick test_single_behavior_equals_naive;
    Alcotest.test_case "sharing bounded by naive sum" `Quick test_sharing_never_exceeds_naive;
    Alcotest.test_case "monotone in members" `Quick test_monotone_in_members;
    Alcotest.test_case "standard components unchanged" `Quick test_standard_components_unchanged;
    Alcotest.test_case "variables do not share" `Quick test_variables_do_not_share;
  ]
