open Vhdl

let toks src = List.map fst (Lexer.tokenize src)

let token_list = Alcotest.testable (fun fmt ts ->
    Format.pp_print_string fmt (String.concat " " (List.map Token.to_string ts)))
    ( = )

let check = Alcotest.check token_list

let test_simple_tokens () =
  check "punctuation"
    [ Token.Lparen; Token.Rparen; Token.Semicolon; Token.Colon; Token.Comma; Token.Eof ]
    (toks "();:,");
  check "operators"
    [ Token.Plus; Token.Minus; Token.Star; Token.Slash; Token.Amp; Token.Bar; Token.Eof ]
    (toks "+ - * / & |")

let test_compound_operators () =
  check ":=" [ Token.Assign; Token.Eof ] (toks ":=");
  check "=>" [ Token.Arrow; Token.Eof ] (toks "=>");
  check "<=" [ Token.Le_or_sigassign; Token.Eof ] (toks "<=");
  check ">=" [ Token.Ge; Token.Eof ] (toks ">=");
  check "/=" [ Token.Neq; Token.Eof ] (toks "/=");
  check "< = distinct" [ Token.Lt; Token.Eq; Token.Eof ] (toks "< =")

let test_keywords_case_insensitive () =
  check "lower" [ Token.Keyword Token.K_entity; Token.Eof ] (toks "entity");
  check "upper" [ Token.Keyword Token.K_entity; Token.Eof ] (toks "ENTITY");
  check "mixed" [ Token.Keyword Token.K_process; Token.Eof ] (toks "PrOcEsS")

let test_identifiers_lowered () =
  check "FooBar -> foobar" [ Token.Ident "foobar"; Token.Eof ] (toks "FooBar");
  check "underscores" [ Token.Ident "a_b_c1"; Token.Eof ] (toks "a_b_c1")

let test_integers () =
  check "42" [ Token.Int_lit 42; Token.Eof ] (toks "42");
  check "0" [ Token.Int_lit 0; Token.Eof ] (toks "0")

let test_comments_skipped () =
  check "comment to eol"
    [ Token.Int_lit 1; Token.Int_lit 2; Token.Eof ]
    (toks "1 -- a comment ; with stuff\n2");
  check "comment at eof" [ Token.Int_lit 1; Token.Eof ] (toks "1 -- trailing")

let test_minus_vs_comment () =
  check "single minus is an operator" [ Token.Int_lit 1; Token.Minus; Token.Int_lit 2; Token.Eof ]
    (toks "1 - 2")

let test_string_literal () =
  check "string" [ Token.Str_lit "hello"; Token.Eof ] (toks "\"hello\"")

let test_locations () =
  let all = Lexer.tokenize "ab\n  cd" in
  match all with
  | [ (_, l1); (_, l2); _ ] ->
      Alcotest.(check string) "first at 1:1" "1:1" (Loc.to_string l1);
      Alcotest.(check string) "second at 2:3" "2:3" (Loc.to_string l2)
  | _ -> Alcotest.fail "expected two tokens"

let test_illegal_character () =
  match Lexer.tokenize "a $ b" with
  | exception Loc.Error (loc, msg) ->
      Alcotest.(check string) "at 1:3" "1:3" (Loc.to_string loc);
      Alcotest.(check bool) "mentions char" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "expected a lex error"

let test_unterminated_string () =
  match Lexer.tokenize "\"abc" with
  | exception Loc.Error (_, msg) ->
      Alcotest.(check string) "message" "unterminated string literal" msg
  | _ -> Alcotest.fail "expected a lex error"

let suite =
  [
    Alcotest.test_case "simple tokens" `Quick test_simple_tokens;
    Alcotest.test_case "compound operators" `Quick test_compound_operators;
    Alcotest.test_case "keywords are case-insensitive" `Quick test_keywords_case_insensitive;
    Alcotest.test_case "identifiers lowered" `Quick test_identifiers_lowered;
    Alcotest.test_case "integers" `Quick test_integers;
    Alcotest.test_case "comments skipped" `Quick test_comments_skipped;
    Alcotest.test_case "minus vs comment" `Quick test_minus_vs_comment;
    Alcotest.test_case "string literal" `Quick test_string_literal;
    Alcotest.test_case "locations tracked" `Quick test_locations;
    Alcotest.test_case "illegal character reported" `Quick test_illegal_character;
    Alcotest.test_case "unterminated string reported" `Quick test_unterminated_string;
  ]
