(* Allocation, cost, the partitioning algorithms, and transformations. *)

let annotated = Helpers.fuzzy_slif

let problem_for alloc =
  let s = Specsyn.Alloc.apply (Lazy.force annotated) alloc in
  let graph = Slif.Graph.make s in
  (s, Specsyn.Search.problem graph)

let checkf = Alcotest.(check (float 1e-9))

let test_alloc_apply () =
  let s = Specsyn.Alloc.apply (Lazy.force annotated) (Specsyn.Alloc.proc_asic ()) in
  Alcotest.(check int) "two processors" 2 (Array.length s.Slif.Types.procs);
  Alcotest.(check int) "one bus" 1 (Array.length s.Slif.Types.buses);
  Alcotest.(check string) "cpu tech" "cpu32" s.Slif.Types.procs.(0).p_tech

let test_alloc_catalog_names_unique () =
  let names = List.map (fun a -> a.Specsyn.Alloc.alloc_name) Specsyn.Alloc.catalog in
  Alcotest.(check int) "unique" (List.length names) (List.length (List.sort_uniq compare names))

let test_seed_partition_proper () =
  let _, problem = problem_for (Specsyn.Alloc.proc_asic ()) in
  let part = Specsyn.Search.seed_partition (Slif.Graph.slif problem.Specsyn.Search.graph) in
  Alcotest.(check bool) "proper" true (Slif.Validate.is_proper part)

let test_seed_partition_requires_components () =
  match Specsyn.Search.seed_partition (Lazy.force annotated) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected failure without components"

let test_cost_zero_when_unconstrained () =
  let s = Specsyn.Alloc.apply (Lazy.force annotated) (Specsyn.Alloc.single_cpu ()) in
  (* Remove the bus capacity so no term can fire. *)
  let buses = Array.map (fun b -> { b with Slif.Types.b_capacity_mbps = None }) s.Slif.Types.buses in
  let s = { s with Slif.Types.buses } in
  let graph = Slif.Graph.make s in
  let part = Specsyn.Search.seed_partition s in
  let est = Specsyn.Search.estimator graph part in
  checkf "no constraints, no cost" 0.0
    (Specsyn.Cost.total ~constraints:Specsyn.Cost.no_constraints est)

let test_cost_size_violation () =
  let s =
    Specsyn.Alloc.apply (Lazy.force annotated) (Specsyn.Alloc.single_cpu ~size_cap:1.0 ())
  in
  let graph = Slif.Graph.make s in
  let part = Specsyn.Search.seed_partition s in
  let est = Specsyn.Search.estimator graph part in
  let b = Specsyn.Cost.evaluate ~constraints:Specsyn.Cost.no_constraints est in
  Alcotest.(check bool) "size violation fires" true (b.Specsyn.Cost.size_violation > 0.0)

let test_cost_deadline_violation () =
  let _, problem = problem_for (Specsyn.Alloc.proc_asic ()) in
  let part = Specsyn.Search.seed_partition (Slif.Graph.slif problem.Specsyn.Search.graph) in
  let est = Specsyn.Search.estimator problem.Specsyn.Search.graph part in
  let constraints = { Specsyn.Cost.deadlines_us = [ ("fuzzymain", 0.001) ] } in
  let b = Specsyn.Cost.evaluate ~constraints est in
  Alcotest.(check bool) "deadline violation fires" true (b.Specsyn.Cost.time_violation > 0.0);
  let loose = { Specsyn.Cost.deadlines_us = [ ("fuzzymain", 1e9) ] } in
  let b2 = Specsyn.Cost.evaluate ~constraints:loose est in
  checkf "loose deadline costs nothing" 0.0 b2.Specsyn.Cost.time_violation

let solution_is_proper (sol : Specsyn.Search.solution) =
  Slif.Validate.is_proper sol.Specsyn.Search.part

let test_random_solutions_proper () =
  let _, problem = problem_for (Specsyn.Alloc.proc_asic_mem ()) in
  let sol = Specsyn.Random_part.run ~seed:3 ~restarts:20 problem in
  Alcotest.(check bool) "proper" true (solution_is_proper sol);
  Alcotest.(check int) "evaluated = restarts" 20 sol.Specsyn.Search.evaluated

let test_random_deterministic_per_seed () =
  let _, problem = problem_for (Specsyn.Alloc.proc_asic ()) in
  let a = Specsyn.Random_part.run ~seed:5 ~restarts:10 problem in
  let b = Specsyn.Random_part.run ~seed:5 ~restarts:10 problem in
  checkf "same cost for same seed" a.Specsyn.Search.cost b.Specsyn.Search.cost

let test_greedy_no_worse_than_seed () =
  let _, problem = problem_for (Specsyn.Alloc.proc_asic ()) in
  let s = Slif.Graph.slif problem.Specsyn.Search.graph in
  let seed = Specsyn.Search.seed_partition s in
  let seed_cost =
    Specsyn.Search.evaluate problem (Specsyn.Search.estimator problem.Specsyn.Search.graph seed)
  in
  let sol = Specsyn.Greedy.run problem in
  Alcotest.(check bool) "greedy <= seed" true (sol.Specsyn.Search.cost <= seed_cost +. 1e-9);
  Alcotest.(check bool) "proper" true (solution_is_proper sol)

let test_group_migration_improves () =
  let _, problem = problem_for (Specsyn.Alloc.proc_asic ()) in
  let s = Slif.Graph.slif problem.Specsyn.Search.graph in
  let seed = Specsyn.Search.seed_partition s in
  let seed_cost =
    Specsyn.Search.evaluate problem (Specsyn.Search.estimator problem.Specsyn.Search.graph seed)
  in
  let sol = Specsyn.Group_migration.run problem in
  Alcotest.(check bool) "gm <= seed" true (sol.Specsyn.Search.cost <= seed_cost +. 1e-9);
  Alcotest.(check bool) "proper" true (solution_is_proper sol);
  Alcotest.(check bool) "explored many partitions" true (sol.Specsyn.Search.evaluated > 50)

let test_annealing_deterministic_and_proper () =
  let _, problem = problem_for (Specsyn.Alloc.proc_asic_mem ()) in
  let params = { Specsyn.Annealing.default_params with steps = 300; seed = 11 } in
  let a = Specsyn.Annealing.run ~params problem in
  let b = Specsyn.Annealing.run ~params problem in
  checkf "deterministic" a.Specsyn.Search.cost b.Specsyn.Search.cost;
  Alcotest.(check bool) "proper" true (solution_is_proper a)

let test_annealing_beats_or_ties_seed () =
  let _, problem = problem_for (Specsyn.Alloc.proc_asic ()) in
  let s = Slif.Graph.slif problem.Specsyn.Search.graph in
  let seed = Specsyn.Search.seed_partition s in
  let seed_cost =
    Specsyn.Search.evaluate problem (Specsyn.Search.estimator problem.Specsyn.Search.graph seed)
  in
  let sol = Specsyn.Annealing.run ~params:{ Specsyn.Annealing.default_params with steps = 500 } problem in
  Alcotest.(check bool) "sa <= seed" true (sol.Specsyn.Search.cost <= seed_cost +. 1e-9)

let test_explore_sorted () =
  let entries =
    Specsyn.Explore.run
      ~algos:[ Specsyn.Explore.Random 10; Specsyn.Explore.Greedy ]
      ~allocs:[ Specsyn.Alloc.single_cpu (); Specsyn.Alloc.proc_asic () ]
      (Lazy.force annotated)
  in
  Alcotest.(check int) "2x2 entries" 4 (List.length entries);
  let costs = List.map (fun e -> e.Specsyn.Explore.solution.Specsyn.Search.cost) entries in
  Alcotest.(check bool) "sorted ascending" true (costs = List.sort compare costs)

let test_reports_render () =
  let _, problem = problem_for (Specsyn.Alloc.proc_asic ()) in
  let part = Specsyn.Search.seed_partition (Slif.Graph.slif problem.Specsyn.Search.graph) in
  let est = Specsyn.Search.estimator problem.Specsyn.Search.graph part in
  let report = Specsyn.Report.partition_report est in
  let contains needle haystack =
    let nl = String.length needle and hl = String.length haystack in
    let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "mentions the cpu" true (contains "cpu" report);
  Alcotest.(check bool) "mentions the processes" true (contains "fuzzymain" report);
  let entries =
    Specsyn.Explore.run ~algos:[ Specsyn.Explore.Greedy ]
      ~allocs:[ Specsyn.Alloc.single_cpu () ] (Lazy.force annotated)
  in
  Alcotest.(check bool) "explore report renders" true
    (contains "greedy" (Specsyn.Report.explore_report entries))

(* --- Clustering ---------------------------------------------------------- *)

let test_closeness_symmetric_nonneg () =
  let s = Specsyn.Alloc.apply (Lazy.force annotated) (Specsyn.Alloc.proc_asic ()) in
  let graph = Slif.Graph.make s in
  let n = Array.length s.Slif.Types.nodes in
  for a = 0 to min 9 (n - 1) do
    for b = 0 to min 9 (n - 1) do
      let cab = Specsyn.Cluster.closeness graph a b in
      let cba = Specsyn.Cluster.closeness graph b a in
      Alcotest.(check (float 1e-9)) "symmetric" cab cba;
      Alcotest.(check bool) "non-negative" true (cab >= 0.0)
    done
  done;
  Alcotest.(check (float 1e-9)) "self closeness zero" 0.0
    (Specsyn.Cluster.closeness graph 0 0)

let test_closeness_tracks_traffic () =
  (* evaluate_rule talks to mr1 heavily (65x15-bit-style accesses) and to
     err_code not at all: closeness must reflect it. *)
  let s = Specsyn.Alloc.apply (Lazy.force annotated) (Specsyn.Alloc.proc_asic ()) in
  let graph = Slif.Graph.make s in
  let id name =
    match Slif.Types.node_by_name s name with Some n -> n.n_id | None -> Alcotest.fail name
  in
  let hot = Specsyn.Cluster.closeness graph (id "evaluate_rule") (id "mr1") in
  let cold = Specsyn.Cluster.closeness graph (id "evaluate_rule") (id "deadband") in
  Alcotest.(check bool) "traffic dominates" true (hot > cold)

let test_clusters_partition_nodes () =
  let s = Specsyn.Alloc.apply (Lazy.force annotated) (Specsyn.Alloc.proc_asic ()) in
  let graph = Slif.Graph.make s in
  let n = Array.length s.Slif.Types.nodes in
  let groups = Specsyn.Cluster.clusters graph ~k:4 in
  let all = List.concat groups |> List.sort compare in
  Alcotest.(check (list int)) "every node exactly once" (List.init n (fun i -> i)) all;
  Alcotest.(check bool) "at most n groups, at least k-ish" true
    (List.length groups >= 1 && List.length groups <= n)

let test_clusters_merge_reduces_count () =
  let s = Specsyn.Alloc.apply (Lazy.force annotated) (Specsyn.Alloc.proc_asic ()) in
  let graph = Slif.Graph.make s in
  let few = List.length (Specsyn.Cluster.clusters graph ~k:2) in
  let many = List.length (Specsyn.Cluster.clusters graph ~k:12) in
  Alcotest.(check bool) "k=2 groups fewer than k=12" true (few <= many)

let test_cluster_run_proper () =
  let _, problem = problem_for (Specsyn.Alloc.proc_asic ()) in
  let sol = Specsyn.Cluster.run ~k:2 problem in
  Alcotest.(check bool) "proper partition" true (solution_is_proper sol)

let test_cluster_rejects_bad_k () =
  let _, problem = problem_for (Specsyn.Alloc.proc_asic ()) in
  match Specsyn.Cluster.run ~k:0 problem with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "k=0 accepted"

(* --- Transformations ---------------------------------------------------- *)

let test_inline_removes_call_channel () =
  let s = Lazy.force annotated in
  let s' = Specsyn.Transform.inline ~caller:"fuzzymain" ~callee:"convolve" s in
  (match Slif.Types.node_by_name s' "convolve" with
  | None -> ()
  | Some _ -> Alcotest.fail "convolve should be gone (single caller)");
  let main =
    match Slif.Types.node_by_name s' "fuzzymain" with
    | Some n -> n
    | None -> Alcotest.fail "fuzzymain missing"
  in
  let orig_main =
    match Slif.Types.node_by_name s "fuzzymain" with Some n -> n | None -> assert false
  in
  Alcotest.(check bool) "caller ict grew" true
    (List.assoc "cpu32" main.n_ict > List.assoc "cpu32" orig_main.n_ict);
  Alcotest.(check bool) "caller size grew" true
    (List.assoc "cpu32" main.n_size > List.assoc "cpu32" orig_main.n_size)

let test_inline_rescales_frequencies () =
  let s = Lazy.force annotated in
  (* evaluate_rule is called twice; its channel to tmr1 must arrive at
     fuzzymain with double frequency. *)
  let freq_to name (slif : Slif.Types.t) src_name =
    let src =
      match Slif.Types.node_by_name slif src_name with Some n -> n.n_id | None -> -1
    in
    let dst =
      match Slif.Types.node_by_name slif name with Some n -> n.n_id | None -> -1
    in
    Array.to_list slif.Slif.Types.chans
    |> List.fold_left
         (fun acc (c : Slif.Types.channel) ->
           if c.c_src = src && c.c_dst = Slif.Types.Dnode dst then acc +. c.c_accfreq else acc)
         0.0
  in
  let before = freq_to "tmr1" s "evaluate_rule" in
  let s' = Specsyn.Transform.inline ~caller:"fuzzymain" ~callee:"evaluate_rule" s in
  let after_via_main = freq_to "tmr1" s' "fuzzymain" in
  Alcotest.(check bool) "frequency scaled by call count (2x)" true
    (after_via_main >= 2.0 *. before -. 1e-9)

let test_inline_keeps_shared_callee () =
  let s = Lazy.force annotated in
  (* min2 is called by several behaviors; inlining into convolve must keep
     the node for the other callers. *)
  let s' = Specsyn.Transform.inline ~caller:"convolve" ~callee:"min2" s in
  Alcotest.(check bool) "min2 survives" true (Slif.Types.node_by_name s' "min2" <> None)

let test_inline_errors () =
  let s = Lazy.force annotated in
  (match Specsyn.Transform.inline ~caller:"fuzzymain" ~callee:"nonexistent" s with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "missing callee accepted");
  match Specsyn.Transform.inline ~caller:"convolve" ~callee:"fuzzymain" s with
  | exception Specsyn.Transform.Not_a_call _ -> ()
  | _ -> Alcotest.fail "non-call inline accepted"

let test_merge_processes () =
  let s = Lazy.force annotated in
  let s' = Specsyn.Transform.merge_processes s "fuzzymain" "selftest" in
  (match Slif.Types.node_by_name s' "fuzzymain_selftest" with
  | Some merged ->
      Alcotest.(check bool) "merged is a process" true (Slif.Types.is_process merged);
      let orig_main =
        match Slif.Types.node_by_name s "fuzzymain" with Some n -> n | None -> assert false
      in
      let orig_st =
        match Slif.Types.node_by_name s "selftest" with Some n -> n | None -> assert false
      in
      checkf "ict sums"
        (List.assoc "cpu32" orig_main.n_ict +. List.assoc "cpu32" orig_st.n_ict)
        (List.assoc "cpu32" merged.n_ict)
  | None -> Alcotest.fail "merged node missing");
  Alcotest.(check bool) "originals gone" true
    (Slif.Types.node_by_name s' "fuzzymain" = None
    && Slif.Types.node_by_name s' "selftest" = None);
  (* One fewer process overall. *)
  let count_processes (slif : Slif.Types.t) =
    Array.to_list slif.Slif.Types.nodes |> List.filter Slif.Types.is_process |> List.length
  in
  Alcotest.(check int) "process count drops" (count_processes s - 1) (count_processes s')

let test_merge_rejects_non_process () =
  let s = Lazy.force annotated in
  match Specsyn.Transform.merge_processes s "fuzzymain" "convolve" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "merging a procedure accepted"

let test_transform_result_still_estimable () =
  let s = Lazy.force annotated in
  let s' = Specsyn.Transform.inline ~caller:"fuzzymain" ~callee:"convolve" s in
  let s'' = Specsyn.Transform.merge_processes s' "fuzzymain" "selftest" in
  let with_comps = Specsyn.Alloc.apply s'' (Specsyn.Alloc.proc_asic ()) in
  let graph = Slif.Graph.make with_comps in
  let part = Specsyn.Search.seed_partition with_comps in
  let est = Specsyn.Search.estimator graph part in
  let merged =
    match Slif.Types.node_by_name with_comps "fuzzymain_selftest" with
    | Some n -> n
    | None -> Alcotest.fail "merged node"
  in
  let t = Slif.Estimate.exectime_us est merged.n_id in
  Alcotest.(check bool) "exectime finite" true (Float.is_finite t && t > 0.0)

let suite =
  [
    Alcotest.test_case "allocation applies components" `Quick test_alloc_apply;
    Alcotest.test_case "allocation catalog names unique" `Quick test_alloc_catalog_names_unique;
    Alcotest.test_case "seed partition is proper" `Quick test_seed_partition_proper;
    Alcotest.test_case "seed partition needs components" `Quick test_seed_partition_requires_components;
    Alcotest.test_case "cost zero when unconstrained" `Quick test_cost_zero_when_unconstrained;
    Alcotest.test_case "cost: size violations" `Quick test_cost_size_violation;
    Alcotest.test_case "cost: deadline violations" `Quick test_cost_deadline_violation;
    Alcotest.test_case "random solutions proper" `Quick test_random_solutions_proper;
    Alcotest.test_case "random deterministic per seed" `Quick test_random_deterministic_per_seed;
    Alcotest.test_case "greedy no worse than seed" `Quick test_greedy_no_worse_than_seed;
    Alcotest.test_case "group migration improves" `Quick test_group_migration_improves;
    Alcotest.test_case "annealing deterministic" `Quick test_annealing_deterministic_and_proper;
    Alcotest.test_case "annealing beats seed" `Quick test_annealing_beats_or_ties_seed;
    Alcotest.test_case "explore results sorted" `Quick test_explore_sorted;
    Alcotest.test_case "closeness symmetric" `Quick test_closeness_symmetric_nonneg;
    Alcotest.test_case "closeness tracks traffic" `Quick test_closeness_tracks_traffic;
    Alcotest.test_case "clusters partition the nodes" `Quick test_clusters_partition_nodes;
    Alcotest.test_case "clusters merge monotonically" `Quick test_clusters_merge_reduces_count;
    Alcotest.test_case "cluster seeding is proper" `Quick test_cluster_run_proper;
    Alcotest.test_case "cluster rejects bad k" `Quick test_cluster_rejects_bad_k;
    Alcotest.test_case "reports render" `Quick test_reports_render;
    Alcotest.test_case "inline removes the call channel" `Quick test_inline_removes_call_channel;
    Alcotest.test_case "inline rescales frequencies" `Quick test_inline_rescales_frequencies;
    Alcotest.test_case "inline keeps shared callees" `Quick test_inline_keeps_shared_callee;
    Alcotest.test_case "inline error cases" `Quick test_inline_errors;
    Alcotest.test_case "merge processes" `Quick test_merge_processes;
    Alcotest.test_case "merge rejects non-processes" `Quick test_merge_rejects_non_process;
    Alcotest.test_case "transforms keep SLIF estimable" `Quick test_transform_result_still_estimable;
  ]
