let body_of src =
  match (Vhdl.Parser.parse src).Vhdl.Ast.processes with
  | [ p ] -> p.Vhdl.Ast.proc_body
  | _ -> Alcotest.fail "expected one process"

let wrap stmts =
  body_of
    (Printf.sprintf
       {|entity e is end;
architecture a of e is
  shared variable x : integer;
  shared variable y : integer;
  shared variable z : integer;
begin
  main: process
  begin
%s
  end process;
end;|}
       stmts)

let events ?(profile = Flow.Profile.empty) stmts =
  Flow.Count.events ~profile ~behavior:"main" (wrap stmts)

let freq_of access evs =
  List.fold_left
    (fun acc (e : Flow.Count.event) ->
      if e.access = access then acc +. e.mult.Flow.Count.avg else acc)
    0.0 evs

let min_of access evs =
  List.fold_left
    (fun acc (e : Flow.Count.event) ->
      if e.access = access then acc +. e.mult.Flow.Count.mn else acc)
    0.0 evs

let max_of access evs =
  List.fold_left
    (fun acc (e : Flow.Count.event) ->
      if e.access = access then acc +. e.mult.Flow.Count.mx else acc)
    0.0 evs

let checkf = Alcotest.(check (float 1e-9))

(* --- Profile files ------------------------------------------------------- *)

let test_profile_roundtrip () =
  let p =
    Flow.Profile.set_while
      (Flow.Profile.set_branch Flow.Profile.empty ~behavior:"b" ~site:0 ~arm:1 0.25)
      ~behavior:"b" ~site:2 ~trips:12.5
  in
  let p' = Flow.Profile.of_string (Flow.Profile.to_string p) in
  checkf "branch prob survives" 0.25
    (Flow.Profile.branch_prob p' ~behavior:"b" ~site:0 ~arm:1 ~arms:2);
  checkf "while trips survive" 12.5 (Flow.Profile.while_trips p' ~behavior:"b" ~site:2)

let test_profile_defaults () =
  let p = Flow.Profile.empty in
  checkf "uniform over arms" 0.5
    (Flow.Profile.branch_prob p ~behavior:"b" ~site:0 ~arm:0 ~arms:2);
  checkf "uniform over 4 arms" 0.25
    (Flow.Profile.branch_prob p ~behavior:"b" ~site:0 ~arm:3 ~arms:4);
  checkf "default while trips" Flow.Profile.default_while_trips
    (Flow.Profile.while_trips p ~behavior:"b" ~site:9)

let test_profile_parse_comments () =
  let p = Flow.Profile.of_string "# comment\nmain.branch0.arm0 0.9 # tail\n\nmain.while1 3\n" in
  checkf "branch" 0.9 (Flow.Profile.branch_prob p ~behavior:"main" ~site:0 ~arm:0 ~arms:2);
  checkf "while" 3.0 (Flow.Profile.while_trips p ~behavior:"main" ~site:1)

let test_profile_parse_errors () =
  (match Flow.Profile.of_string "main.branch0.arm0 notanumber" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "bad number accepted");
  (match Flow.Profile.of_string "justakey 1.0" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "bad key accepted");
  match Flow.Profile.set_branch Flow.Profile.empty ~behavior:"b" ~site:0 ~arm:0 1.5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "probability out of range accepted"

(* --- Counting ------------------------------------------------------------- *)

let test_straight_line () =
  let evs = events "x := y + 1;" in
  checkf "read y once" 1.0 (freq_of (Flow.Count.Read "y") evs);
  checkf "write x once" 1.0 (freq_of (Flow.Count.Write "x") evs);
  checkf "min equals avg in straight line" 1.0 (min_of (Flow.Count.Write "x") evs)

let test_for_loop_multiplier () =
  let evs = events "for i in 1 to 10 loop x := y; end loop;" in
  checkf "read y 10x" 10.0 (freq_of (Flow.Count.Read "y") evs);
  checkf "min is also 10" 10.0 (min_of (Flow.Count.Read "y") evs);
  checkf "max is also 10" 10.0 (max_of (Flow.Count.Read "y") evs)

let test_nested_loops_multiply () =
  let evs = events "for i in 1 to 4 loop for j in 1 to 5 loop x := y; end loop; end loop;" in
  checkf "4*5 reads" 20.0 (freq_of (Flow.Count.Read "y") evs)

let test_loop_index_not_an_access () =
  let evs = events "for i in 1 to 3 loop x := i; end loop;" in
  checkf "no read of i" 0.0 (freq_of (Flow.Count.Read "i") evs)

let test_if_probability_default () =
  (* if/else: two arms, uniform default 1/2 each. *)
  let evs = events "if z > 0 then x := y; else x := 1; end if;" in
  checkf "then-arm read at 0.5" 0.5 (freq_of (Flow.Count.Read "y") evs);
  checkf "conditional min is 0" 0.0 (min_of (Flow.Count.Read "y") evs);
  checkf "conditional max is 1" 1.0 (max_of (Flow.Count.Read "y") evs);
  (* Condition read always executes. *)
  checkf "condition read z" 1.0 (freq_of (Flow.Count.Read "z") evs)

let test_if_probability_profiled () =
  let profile = Flow.Profile.set_branch Flow.Profile.empty ~behavior:"main" ~site:0 ~arm:0 0.9 in
  let evs = events ~profile "if z > 0 then x := y; end if;" in
  checkf "then-arm read at 0.9" 0.9 (freq_of (Flow.Count.Read "y") evs)

let test_while_defaults () =
  let evs = events "while z > 0 loop x := y; end loop;" in
  checkf "body at default trips" Flow.Profile.default_while_trips
    (freq_of (Flow.Count.Read "y") evs);
  checkf "while body min is 0" 0.0 (min_of (Flow.Count.Read "y") evs);
  checkf "while body max is 2x trips" (2.0 *. Flow.Profile.default_while_trips)
    (max_of (Flow.Count.Read "y") evs)

let test_while_profiled () =
  let profile = Flow.Profile.set_while Flow.Profile.empty ~behavior:"main" ~site:0 ~trips:100.0 in
  let evs = events ~profile "while z > 0 loop x := y; end loop;" in
  checkf "body at 100 trips" 100.0 (freq_of (Flow.Count.Read "y") evs)

let test_forever_loop_single_pass () =
  let evs = events "loop x := y; end loop;" in
  checkf "one pass" 1.0 (freq_of (Flow.Count.Read "y") evs)

let test_calls_counted () =
  let evs = events "for i in 1 to 7 loop helper; end loop;" in
  checkf "helper called 7x" 7.0 (freq_of (Flow.Count.Call "helper") evs)

let test_par_groups () =
  let evs = events "par a; b; end par; par c; end par;" in
  let group_of name =
    List.find_map
      (fun (e : Flow.Count.event) ->
        if e.access = Flow.Count.Call name then Some e.par_group else None)
      evs
  in
  (match (group_of "a", group_of "b", group_of "c") with
  | Some (Some ga), Some (Some gb), Some (Some gc) ->
      Alcotest.(check bool) "a and b share a group" true (ga = gb);
      Alcotest.(check bool) "c in a different group" true (gc <> ga)
  | _ -> Alcotest.fail "missing par groups");
  let seq_call = events "d;" in
  match seq_call with
  | [ { par_group = None; _ } ] -> ()
  | _ -> Alcotest.fail "sequential call has no par group"

let test_messages () =
  let evs = events "send(mbox, x); receive(mbox, y);" in
  checkf "one send" 1.0 (freq_of (Flow.Count.Message_out "mbox") evs);
  checkf "one receive" 1.0 (freq_of (Flow.Count.Message_in "mbox") evs);
  checkf "receive writes target" 1.0 (freq_of (Flow.Count.Write "y") evs)

let test_case_alternatives () =
  let evs =
    events "case z is when 1 => x := y; when 2 => x := 1; when others => null; end case;"
  in
  (* Three alternatives, uniform default 1/3. *)
  checkf "alternative body at 1/3" (1.0 /. 3.0) (freq_of (Flow.Count.Read "y") evs);
  checkf "subject read once" 1.0 (freq_of (Flow.Count.Read "z") evs)

let test_elsif_chain_reach () =
  (* Three-arm chain (if/elsif + implicit else): arm probabilities default
     to 1/3; the second condition is only reached when the first failed. *)
  let evs = events "if z = 1 then x := 1; elsif y = 1 then x := 2; end if;" in
  checkf "first condition always read" 1.0 (freq_of (Flow.Count.Read "z") evs);
  checkf "second condition read at reach probability" (2.0 /. 3.0)
    (freq_of (Flow.Count.Read "y") evs)

let test_fold_stmts_multipliers () =
  let body = wrap "for i in 1 to 6 loop x := 1; end loop; y := 2;" in
  let assigns =
    Flow.Count.fold_stmts ~profile:Flow.Profile.empty ~behavior:"main" body ~init:[]
      ~f:(fun acc mult s ->
        match s with Vhdl.Ast.Assign _ -> mult.Flow.Count.avg :: acc | _ -> acc)
  in
  Alcotest.(check (list (float 1e-9))) "multipliers" [ 1.0; 6.0 ] assigns

let test_fold_exprs_condition_scaling () =
  let body = wrap "while z > 0 loop x := 1; end loop;" in
  let cond_mults =
    Flow.Count.fold_exprs ~profile:Flow.Profile.empty ~behavior:"main" body ~init:[]
      ~f:(fun acc mult e ->
        match e with Vhdl.Ast.Binop (Vhdl.Ast.Gt, _, _) -> mult.Flow.Count.avg :: acc | _ -> acc)
  in
  Alcotest.(check (list (float 1e-9))) "condition scaled by trips"
    [ Flow.Profile.default_while_trips ] cond_mults

(* --- Control-site numbering (Sites must mirror Count) --------------------- *)

let test_sites_numbering () =
  let body =
    wrap
      {|if x > 0 then
  if y > 0 then
    z := 1;
  end if;
end if;
while x > 0 loop
  x := x - 1;
end loop;
case z is
  when 1 => x := 1;
  when others => null;
end case;|}
  in
  let sites = Flow.Sites.of_body body in
  (* Pre-order: outer if = branch 0, nested if = branch 1, case = branch 2;
     the while is while-site 0. *)
  Alcotest.(check (option int)) "outer if" (Some 0) (Flow.Sites.branch_site sites [ 0 ]);
  Alcotest.(check (option int)) "nested if in arm 0" (Some 1)
    (Flow.Sites.branch_site sites [ 0; 0; 0 ]);
  Alcotest.(check (option int)) "case" (Some 2) (Flow.Sites.branch_site sites [ 2 ]);
  Alcotest.(check (option int)) "while" (Some 0) (Flow.Sites.while_site sites [ 1 ]);
  Alcotest.(check (option int)) "plain stmt has no site" None
    (Flow.Sites.branch_site sites [ 3 ])

let test_sites_loop_bodies_descend () =
  let body = wrap "for i in 1 to 3 loop if x > 0 then x := 1; end if; end loop;" in
  let sites = Flow.Sites.of_body body in
  (* The if lives at: statement 0 (for), body-list 0, statement 0. *)
  Alcotest.(check (option int)) "if inside for" (Some 0)
    (Flow.Sites.branch_site sites [ 0; 0; 0 ])

let suite =
  [
    Alcotest.test_case "profile round-trips" `Quick test_profile_roundtrip;
    Alcotest.test_case "profile defaults" `Quick test_profile_defaults;
    Alcotest.test_case "profile comments" `Quick test_profile_parse_comments;
    Alcotest.test_case "profile rejects malformed input" `Quick test_profile_parse_errors;
    Alcotest.test_case "straight-line counts" `Quick test_straight_line;
    Alcotest.test_case "for-loop multiplier" `Quick test_for_loop_multiplier;
    Alcotest.test_case "nested loops multiply" `Quick test_nested_loops_multiply;
    Alcotest.test_case "loop index is not an access" `Quick test_loop_index_not_an_access;
    Alcotest.test_case "if default probability" `Quick test_if_probability_default;
    Alcotest.test_case "if profiled probability" `Quick test_if_probability_profiled;
    Alcotest.test_case "while defaults" `Quick test_while_defaults;
    Alcotest.test_case "while profiled" `Quick test_while_profiled;
    Alcotest.test_case "forever loop is one pass" `Quick test_forever_loop_single_pass;
    Alcotest.test_case "calls counted" `Quick test_calls_counted;
    Alcotest.test_case "par groups" `Quick test_par_groups;
    Alcotest.test_case "messages" `Quick test_messages;
    Alcotest.test_case "case alternatives" `Quick test_case_alternatives;
    Alcotest.test_case "elsif reach probabilities" `Quick test_elsif_chain_reach;
    Alcotest.test_case "fold_stmts multipliers" `Quick test_fold_stmts_multipliers;
    Alcotest.test_case "fold_exprs condition scaling" `Quick test_fold_exprs_condition_scaling;
    Alcotest.test_case "control-site numbering" `Quick test_sites_numbering;
    Alcotest.test_case "sites inside loop bodies" `Quick test_sites_loop_bodies_descend;
  ]
