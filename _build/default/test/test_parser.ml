open Vhdl

let expr = Parser.parse_expr

let expr_testable =
  Alcotest.testable (fun fmt e -> Format.pp_print_string fmt (Pretty.expr_to_string e)) ( = )

let check_expr = Alcotest.check expr_testable

let test_precedence_arith () =
  check_expr "mul binds tighter than add"
    Ast.(Binop (Add, Int_lit 1, Binop (Mul, Int_lit 2, Name "x")))
    (expr "1 + 2 * x");
  check_expr "left associativity"
    Ast.(Binop (Sub, Binop (Sub, Int_lit 9, Int_lit 3), Int_lit 2))
    (expr "9 - 3 - 2");
  check_expr "parens override"
    Ast.(Binop (Mul, Binop (Add, Int_lit 1, Int_lit 2), Name "x"))
    (expr "(1 + 2) * x")

let test_precedence_bool () =
  check_expr "and binds tighter than or"
    Ast.(Binop (Or, Name "a", Binop (And, Name "b", Name "c")))
    (expr "a or b and c");
  check_expr "relational below and"
    Ast.(Binop (And, Binop (Lt, Name "a", Int_lit 1), Binop (Gt, Name "b", Int_lit 2)))
    (expr "a < 1 and b > 2")

let test_unary () =
  check_expr "negation" Ast.(Unop (Neg, Name "x")) (expr "-x");
  check_expr "not" Ast.(Unop (Not, Name "p")) (expr "not p");
  check_expr "abs" Ast.(Unop (Abs, Name "x")) (expr "abs x")

let test_mod_rem () =
  check_expr "mod" Ast.(Binop (Mod, Name "x", Int_lit 16)) (expr "x mod 16");
  check_expr "rem" Ast.(Binop (Rem, Name "x", Int_lit 3)) (expr "x rem 3")

let test_index_vs_call () =
  check_expr "single arg is Index" Ast.(Index ("a", Name "i")) (expr "a(i)");
  check_expr "two args is Call"
    Ast.(Call ("min2", [ Name "x"; Name "y" ]))
    (expr "min2(x, y)")

let test_attr () =
  check_expr "attribute" Ast.(Attr ("arr", "length")) (expr "arr'length")

let parse_tiny body =
  Parser.parse
    (Printf.sprintf
       {|entity e is end;
architecture a of e is
begin
  p: process
  begin
%s
  end process;
end;|}
       body)

let first_stmt body =
  match (parse_tiny body).Ast.processes with
  | [ { proc_body = [ s ]; _ } ] -> s
  | _ -> Alcotest.fail "expected one statement"

let test_if_elsif_else () =
  match first_stmt "if a = 1 then x := 1; elsif a = 2 then x := 2; else x := 3; end if;" with
  | Ast.If (arms, els) ->
      Alcotest.(check int) "two arms" 2 (List.length arms);
      Alcotest.(check int) "else body" 1 (List.length els)
  | _ -> Alcotest.fail "expected if"

let test_case_with_choices () =
  match
    first_stmt "case v is when 1 | 2 => x := 1; when others => x := 0; end case;"
  with
  | Ast.Case (_, [ (choices, _); ([ Ast.Ch_others ], _) ]) ->
      Alcotest.(check int) "two choices in first alt" 2 (List.length choices)
  | _ -> Alcotest.fail "expected case with two alternatives"

let test_for_normalizes_downto () =
  (match first_stmt "for i in 5 downto 1 loop x := i; end loop;" with
  | Ast.For (_, 1, 5, _) -> ()
  | _ -> Alcotest.fail "expected normalized for range");
  match first_stmt "for i in 1 to 5 loop x := i; end loop;" with
  | Ast.For (_, 1, 5, _) -> ()
  | _ -> Alcotest.fail "expected for 1..5"

let test_while_and_forever () =
  (match first_stmt "while x < 10 loop x := x + 1; end loop;" with
  | Ast.While (_, [ _ ]) -> ()
  | _ -> Alcotest.fail "expected while");
  match first_stmt "loop x := 1; end loop;" with
  | Ast.Loop_forever [ _ ] -> ()
  | _ -> Alcotest.fail "expected forever loop"

let test_par_block () =
  match first_stmt "par a; b(1); end par;" with
  | Ast.Par [ ("a", []); ("b", [ Ast.Int_lit 1 ]) ] -> ()
  | _ -> Alcotest.fail "expected par of two calls"

let test_send_receive () =
  (match first_stmt "send(chan1, x + 1);" with
  | Ast.Send ("chan1", Ast.Binop (Ast.Add, _, _)) -> ()
  | _ -> Alcotest.fail "expected send");
  match first_stmt "receive(chan1, buf(3));" with
  | Ast.Receive ("chan1", Ast.Tindex ("buf", Ast.Int_lit 3)) -> ()
  | _ -> Alcotest.fail "expected receive into an element"

let test_wait_forms () =
  (match first_stmt "wait for 100 ns;" with
  | Ast.Wait_for (100, Ast.Ns) -> ()
  | _ -> Alcotest.fail "wait for");
  (match first_stmt "wait until x > 3;" with
  | Ast.Wait_until _ -> ()
  | _ -> Alcotest.fail "wait until");
  (match first_stmt "wait on a, b;" with
  | Ast.Wait_on [ "a"; "b" ] -> ()
  | _ -> Alcotest.fail "wait on");
  match first_stmt "wait;" with
  | Ast.Wait_on [] -> ()
  | _ -> Alcotest.fail "bare wait"

let test_signal_vs_variable_assign () =
  (match first_stmt "y <= x;" with
  | Ast.Signal_assign (Ast.Tname "y", _) -> ()
  | _ -> Alcotest.fail "signal assign");
  match first_stmt "y := x;" with
  | Ast.Assign (Ast.Tname "y", _) -> ()
  | _ -> Alcotest.fail "variable assign"

let test_entity_ports () =
  let d =
    Parser.parse
      {|entity top is
  port ( a, b : in integer; y : out integer range 0 to 7 );
end;
architecture rtl of top is
begin
end;|}
  in
  Alcotest.(check int) "three ports" 3 (List.length d.Ast.ports);
  match d.Ast.ports with
  | [ pa; _; py ] ->
      Alcotest.(check string) "first port" "a" pa.Ast.port_name;
      Alcotest.(check bool) "a is input" true (pa.Ast.port_mode = Ast.In);
      Alcotest.(check bool) "y is output" true (py.Ast.port_mode = Ast.Out)
  | _ -> Alcotest.fail "port shapes"

let test_subprograms_and_decls () =
  let d =
    Parser.parse
      {|entity e is end;
architecture a of e is
  type buf is array (1 to 8) of integer range 0 to 255;
  shared variable v : buf;
  constant k : integer := 42;
  signal s : bit;
  function f(x : in integer) return integer is
  begin
    return x + k;
  end f;
  procedure p(a : in integer; b : out integer) is
    variable t : integer;
  begin
    t := f(a);
    b := t;
  end p;
begin
  main: process
  begin
    p(1, 2);
    wait for 1 us;
  end process;
end;|}
  in
  Alcotest.(check int) "two subprograms" 2 (List.length d.Ast.subprograms);
  Alcotest.(check int) "four arch decls" 4 (List.length d.Ast.arch_decls);
  match d.Ast.subprograms with
  | [ f; p ] ->
      Alcotest.(check bool) "f is a function" true (f.Ast.sub_ret <> None);
      Alcotest.(check bool) "p is a procedure" true (p.Ast.sub_ret = None);
      Alcotest.(check int) "p has two params" 2 (List.length p.Ast.sub_params)
  | _ -> Alcotest.fail "subprogram shapes"

let test_roundtrip_through_pretty () =
  List.iter
    (fun (spec : Specs.Registry.spec) ->
      let d1 = Parser.parse spec.source in
      let d2 = Parser.parse (Pretty.design_to_string d1) in
      Alcotest.(check bool)
        (spec.spec_name ^ " round-trips") true (d1 = d2))
    Specs.Registry.all

let test_error_has_location () =
  match Parser.parse "entity e is end" with
  | exception Loc.Error (loc, _) ->
      Alcotest.(check bool) "line 1" true (String.length (Loc.to_string loc) > 0)
  | _ -> Alcotest.fail "expected parse error"

let test_trailing_garbage_rejected () =
  let src = {|entity e is end;
architecture a of e is
begin
end;
garbage|} in
  match Parser.parse src with
  | exception Loc.Error _ -> ()
  | _ -> Alcotest.fail "expected trailing-input error"

let suite =
  [
    Alcotest.test_case "arithmetic precedence" `Quick test_precedence_arith;
    Alcotest.test_case "boolean precedence" `Quick test_precedence_bool;
    Alcotest.test_case "unary operators" `Quick test_unary;
    Alcotest.test_case "mod and rem" `Quick test_mod_rem;
    Alcotest.test_case "index vs call" `Quick test_index_vs_call;
    Alcotest.test_case "attributes" `Quick test_attr;
    Alcotest.test_case "if/elsif/else" `Quick test_if_elsif_else;
    Alcotest.test_case "case choices" `Quick test_case_with_choices;
    Alcotest.test_case "for normalizes downto" `Quick test_for_normalizes_downto;
    Alcotest.test_case "while and forever loops" `Quick test_while_and_forever;
    Alcotest.test_case "par block" `Quick test_par_block;
    Alcotest.test_case "send/receive" `Quick test_send_receive;
    Alcotest.test_case "wait forms" `Quick test_wait_forms;
    Alcotest.test_case "signal vs variable assignment" `Quick test_signal_vs_variable_assign;
    Alcotest.test_case "entity ports" `Quick test_entity_ports;
    Alcotest.test_case "subprograms and declarations" `Quick test_subprograms_and_decls;
    Alcotest.test_case "all specs round-trip via printer" `Quick test_roundtrip_through_pretty;
    Alcotest.test_case "parse error carries location" `Quick test_error_has_location;
    Alcotest.test_case "trailing input rejected" `Quick test_trailing_garbage_rejected;
  ]
