(* Pretty-printer goldens: exact concrete syntax for each construct. *)

let check = Alcotest.(check string)

let test_types () =
  check "integer" "integer" (Vhdl.Pretty.type_to_string Vhdl.Ast.Integer);
  check "range" "integer range 0 to 255"
    (Vhdl.Pretty.type_to_string (Vhdl.Ast.Int_range (0, 255)));
  check "vector" "bit_vector(12)" (Vhdl.Pretty.type_to_string (Vhdl.Ast.Bit_vector 12));
  check "array" "array (1 to 8) of integer range 0 to 15"
    (Vhdl.Pretty.type_to_string
       (Vhdl.Ast.Array_of { length = 8; lo = 1; elem = Vhdl.Ast.Int_range (0, 15) }));
  check "named" "mr_array" (Vhdl.Pretty.type_to_string (Vhdl.Ast.Named "mr_array"))

let test_exprs () =
  let e = Vhdl.Parser.parse_expr in
  check "binop parens" "(a + (b * 2))" (Vhdl.Pretty.expr_to_string (e "a + b * 2"));
  check "index" "tbl(i)" (Vhdl.Pretty.expr_to_string (e "tbl(i)"));
  check "call" "min2(x, y)" (Vhdl.Pretty.expr_to_string (e "min2(x, y)"));
  check "unary" "(not p)" (Vhdl.Pretty.expr_to_string (e "not p"));
  check "attr" "v'length" (Vhdl.Pretty.expr_to_string (e "v'length"))

let stmt_of src =
  match
    (Vhdl.Parser.parse
       (Printf.sprintf
          "entity e is end; architecture a of e is begin p: process begin %s end process; end;"
          src))
      .Vhdl.Ast.processes
  with
  | [ { proc_body = [ s ]; _ } ] -> s
  | _ -> Alcotest.fail "expected one statement"

let test_stmt_layout () =
  check "assignment" "x := (y + 1);" (Vhdl.Pretty.stmt_to_string (stmt_of "x := y + 1;"));
  check "signal assignment" "out1 <= v;" (Vhdl.Pretty.stmt_to_string (stmt_of "out1 <= v;"));
  check "if/else"
    "if (a = 1) then\n  x := 1;\nelse\n  x := 2;\nend if;"
    (Vhdl.Pretty.stmt_to_string (stmt_of "if a = 1 then x := 1; else x := 2; end if;"));
  check "for loop" "for i in 1 to 4 loop\n  x := i;\nend loop;"
    (Vhdl.Pretty.stmt_to_string (stmt_of "for i in 1 to 4 loop x := i; end loop;"));
  check "par block" "par\n  a;\n  b(1);\nend par;"
    (Vhdl.Pretty.stmt_to_string (stmt_of "par a; b(1); end par;"));
  check "send" "send(ch, (v + 1));" (Vhdl.Pretty.stmt_to_string (stmt_of "send(ch, v + 1);"));
  check "wait" "wait for 10 us;" (Vhdl.Pretty.stmt_to_string (stmt_of "wait for 10 us;"))

let test_indent_parameter () =
  check "indented" "    null;" (Vhdl.Pretty.stmt_to_string ~indent:4 (stmt_of "null;"))

let test_case_layout () =
  check "case"
    "case v is\n  when 1 | 2 =>\n    x := 1;\n  when others =>\n    x := 0;\nend case;"
    (Vhdl.Pretty.stmt_to_string
       (stmt_of "case v is when 1 | 2 => x := 1; when others => x := 0; end case;"))

let test_design_header () =
  let d = Vhdl.Parser.parse Helpers.tiny_source in
  let text = Vhdl.Pretty.design_to_string d in
  Alcotest.(check bool) "starts with entity" true
    (String.length text > 12 && String.sub text 0 12 = "entity tiny ")

let suite =
  [
    Alcotest.test_case "type syntax" `Quick test_types;
    Alcotest.test_case "expression syntax" `Quick test_exprs;
    Alcotest.test_case "statement layout" `Quick test_stmt_layout;
    Alcotest.test_case "indent parameter" `Quick test_indent_parameter;
    Alcotest.test_case "case layout" `Quick test_case_layout;
    Alcotest.test_case "design header" `Quick test_design_header;
  ]
